// Crash recovery: the paper's headline scenario. The same buggy app
// runs under the monolithic architecture (Figure 1 left: the crash
// takes the controller down) and under LegoSDN (Figure 1 right:
// Crash-Pad restores the app, rolls the network back and opens a
// problem ticket).
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// fragileSwitch is a learning switch with a deterministic bug: any
// packet to TCP port 23 (telnet! nobody tested telnet) panics.
type fragileSwitch struct {
	*apps.LearningSwitch
}

func (f *fragileSwitch) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok {
		if fr, err := netsim.ParseFrame(pin.Data); err == nil && fr.TpDst == 23 {
			panic("fragileSwitch: telnet handling was never implemented")
		}
	}
	return f.LearningSwitch.HandleEvent(ctx, ev)
}

func newFragile() controller.App {
	return &fragileSwitch{LearningSwitch: apps.NewLearningSwitch()}
}

func run(mode core.Mode) {
	fmt.Printf("--- architecture: %s ---\n", mode)
	stack := core.NewStack(core.Config{
		Mode: mode,
		OnTicket: func(tk *crashpad.Ticket) {
			fmt.Printf("problem ticket #%d: app=%s outcome=%v recovery=%v\n",
				tk.ID, tk.App, tk.Outcome, tk.RecoveryTime.Round(time.Microsecond))
		},
	})
	defer stack.Close()
	if err := stack.AddApp(newFragile); err != nil {
		log.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		log.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Normal traffic works.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 80, nil))
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("http flow delivered: %v\n", h2.ReceivedCount() > 0)

	// The killer packet.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 23, nil))
	time.Sleep(100 * time.Millisecond)

	switch {
	case stack.Controller.Crashed():
		fmt.Println("controller: CRASHED (fate sharing)")
	case stack.Controller.AppDisabled("learning-switch"):
		fmt.Println("controller: alive, but the app is quarantined")
	default:
		fmt.Println("controller: alive, app recovered")
	}

	// Can new flows still be set up?
	h2.ClearReceived()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 2000, 443, nil))
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("post-failure https flow delivered: %v\n\n", h2.ReceivedCount() > 0)
}

func main() {
	run(core.ModeMonolithic)
	run(core.ModeLegoSDN)
}
