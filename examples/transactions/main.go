// Transactions: direct use of the NetLog layer (§3.2). A policy
// spanning several FlowMods is bundled into one network-wide
// transaction; aborting it rolls every switch back to a byte-identical
// rule state, preserving destroyed counters through the counter-cache.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"

	"legosdn/internal/controller"
	"legosdn/internal/netlog"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

func main() {
	c := controller.New(controller.Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)

	// NetLog installs as an outbound hook + stats rewriter + event
	// subscriber; the controller itself is unmodified.
	mgr := netlog.NewManager(c, nil)
	mgr.Install(c)

	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			log.Fatal(err)
		}
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			log.Fatal(err)
		}
	}

	rule := func(inPort uint16, out uint16) *openflow.FlowMod {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardInPort
		m.InPort = inPort
		return &openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: 10,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: out}},
		}
	}

	// A committed baseline rule.
	c.SendFlowMod(1, rule(100, 101))
	c.Barrier(1)
	fmt.Printf("baseline: %d rule(s)\n%s\n", n.Switch(1).Table().Len(), n.Switch(1).Table().Fingerprint())

	// A transaction: three new rules plus a delete of the baseline.
	tx := mgr.Begin()
	mgr.SetActive(tx)
	c.SendFlowMod(1, rule(1, 101))
	c.SendFlowMod(1, rule(2, 101))
	del := rule(100, 0)
	del.Command = openflow.FlowModDeleteStrict
	del.Actions = nil
	c.SendFlowMod(1, del)
	mgr.SetActive(nil)
	c.Barrier(1)
	fmt.Printf("mid-transaction: %d rule(s)\n%s\n", n.Switch(1).Table().Len(), n.Switch(1).Table().Fingerprint())

	// Something went wrong — abort. Every effect is undone: the adds
	// are deleted and the deleted baseline rule is restored with its
	// remaining timeout budget.
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after abort: %d rule(s) (rolled back %d mods)\n%s\n",
		n.Switch(1).Table().Len(), mgr.RolledBackMods.Load(), n.Switch(1).Table().Fingerprint())

	// A second transaction that commits normally.
	tx2 := mgr.Begin()
	mgr.SetActive(tx2)
	c.SendFlowMod(1, rule(3, 101))
	mgr.SetActive(nil)
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after commit: %d rule(s), committed txns: %d\n",
		n.Switch(1).Table().Len(), mgr.CommittedTxns.Load())
}
