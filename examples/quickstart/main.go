// Quickstart: bring up a LegoSDN stack on a simulated network, host a
// learning switch in an isolated stub, and watch traffic get installed
// into flow tables.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/netsim"
)

func main() {
	// 1. A full LegoSDN stack: AppVisor isolation + NetLog transactions
	//    + Crash-Pad recovery, behind one constructor.
	stack := core.NewStack(core.Config{Mode: core.ModeLegoSDN})
	defer stack.Close()

	// 2. Host an SDN-App. The factory runs once per stub launch — after
	//    a crash, Crash-Pad respawns the stub from the same factory and
	//    restores the last checkpoint.
	if err := stack.AddApp(func() controller.App { return apps.NewLearningSwitch() }); err != nil {
		log.Fatal(err)
	}

	// 3. A simulated network: one switch, three hosts.
	n := netsim.Single(3, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		log.Fatal(err)
	}

	// 4. Drive traffic. The first packet floods (unknown destination);
	//    the reply triggers a learned forwarding rule.
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 5000, 80, []byte("hello")))
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 80, 5000, []byte("world")))
	time.Sleep(100 * time.Millisecond) // let the control loop settle

	// 5. Inspect the result.
	fmt.Printf("h1 received %d frame(s), h2 received %d frame(s)\n",
		h1.ReceivedCount(), h2.ReceivedCount())
	fmt.Printf("switch s1 flow table (%d entries):\n", n.Switch(1).Table().Len())
	for _, e := range n.Switch(1).Table().Entries() {
		fmt.Printf("  prio=%-3d match=[%v] actions=%d idle=%ds\n",
			e.Priority, e.Match, len(e.Actions), e.IdleTimeout)
	}

	// Subsequent packets forward entirely in the dataplane.
	before := n.Switch(1).PacketIns.Load()
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 80, 5000, []byte("again")))
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("packet-ins for the repeat flow: %d (rules handled it)\n",
		n.Switch(1).PacketIns.Load()-before)
}
