// N-version programming (§3.4): three independently implemented
// versions of one app vote on every event. One version is byzantine —
// it installs a bogus rule — and the majority masks it. A hot clone
// then demonstrates the §5 switchover for transient bugs.
//
//	go run ./examples/nversion
package main

import (
	"fmt"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/diversity"
	"legosdn/internal/faultinject"
	"legosdn/internal/openflow"
	"legosdn/internal/workload"
)

// sink counts what reaches the "network".
type sink struct {
	flowMods int
	badRules int
}

func (s *sink) SendMessage(dpid uint64, msg openflow.Message) error {
	if fm, ok := msg.(*openflow.FlowMod); ok {
		s.flowMods++
		if fm.Priority == 999 {
			s.badRules++
		}
	}
	return nil
}
func (s *sink) SendFlowMod(d uint64, m *openflow.FlowMod) error     { return s.SendMessage(d, m) }
func (s *sink) SendPacketOut(d uint64, m *openflow.PacketOut) error { return s.SendMessage(d, m) }
func (s *sink) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return &openflow.StatsReply{}, nil
}
func (s *sink) Barrier(uint64) error            { return nil }
func (s *sink) Switches() []uint64              { return []uint64{1} }
func (s *sink) Ports(uint64) []openflow.PhyPort { return nil }
func (s *sink) Topology() []controller.LinkInfo { return nil }

func main() {
	// Version 2 is byzantine: every 4th packet-in it emits a bogus
	// priority-999 rule instead of its real output.
	buggy := faultinject.Wrap(apps.NewLearningSwitch(), faultinject.Bug{
		Severity:     faultinject.ByzantineSev,
		TriggerKind:  controller.EventPacketIn,
		TriggerEvery: 4,
		Description:  "team 2 shipped a broken build",
	}, 1)

	voter := diversity.NewVoter("learning-switch",
		apps.NewLearningSwitch(), // team 1
		buggy,                    // team 2
		apps.NewLearningSwitch(), // team 3
	)

	net := &sink{}
	for _, ev := range workload.PacketInEvents(100, 1, 8, 42) {
		if err := voter.HandleEvent(net, ev); err != nil {
			fmt.Println("voter error:", err)
		}
	}
	fmt.Printf("events: 100, disagreements: %d, masked by majority: %d\n",
		voter.Disagreements, voter.Masked)
	fmt.Printf("flow mods reaching the network: %d, bogus rules that got through: %d\n",
		net.flowMods, net.badRules)

	// Hot standby: the clone shadows the primary and takes over on the
	// primary's (transient) crash without losing a single event.
	primary := faultinject.Wrap(apps.NewLearningSwitch(), faultinject.Bug{
		Severity:     faultinject.Catastrophic,
		TriggerKind:  controller.EventPacketIn,
		TriggerEvery: 50,
		Probability:  0.99, // effectively deterministic for the demo
		Description:  "rare heap corruption",
	}, 9)
	hs := diversity.NewHotStandby("learning-switch", primary, apps.NewLearningSwitch())
	lost := 0
	for _, ev := range workload.PacketInEvents(100, 1, 8, 43) {
		if err := hs.HandleEvent(&sink{}, ev); err != nil {
			lost++
		}
	}
	fmt.Printf("hot standby: switchovers=%d, events lost=%d, using clone=%v\n",
		hs.Switchovers, lost, hs.UsingClone())
}
