// Operator policies (§3.3): the same crash under three different
// availability/correctness policies, written in the paper's policy
// language. A security app is marked No-Compromise (it must never act
// on guessed state), the routing app transforms switch-downs, and
// everything else just ignores what it cannot survive.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/netsim"
)

const operatorPolicy = `
# Availability/correctness policy, per §3.3 of the LegoSDN paper.
default absolute                       # most apps: ignore what kills them
app firewall default no                # security: never compromise
app learning-switch on SWITCH_DOWN equivalence
`

// downCrasher wraps an app with a crash on SWITCH_DOWN events.
type downCrasher struct{ inner controller.App }

func (a *downCrasher) Name() string                          { return a.inner.Name() }
func (a *downCrasher) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *downCrasher) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if ev.Kind == controller.EventSwitchDown {
		panic(a.inner.Name() + ": switch-down handling was never implemented")
	}
	return a.inner.HandleEvent(ctx, ev)
}
func (a *downCrasher) Snapshot() ([]byte, error) {
	return a.inner.(controller.Snapshotter).Snapshot()
}
func (a *downCrasher) Restore(b []byte) error {
	return a.inner.(controller.Snapshotter).Restore(b)
}

func main() {
	policies, err := crashpad.ParsePolicies(operatorPolicy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operator policy loaded:")
	fmt.Print(operatorPolicy, "\n")

	stack := core.NewStack(core.Config{
		Mode:     core.ModeLegoSDN,
		Policies: policies,
		OnTicket: func(tk *crashpad.Ticket) {
			fmt.Printf("ticket #%d: app=%-16s policy=%-12v outcome=%v\n",
				tk.ID, tk.App, tk.Policy, tk.Outcome)
		},
	})
	defer stack.Close()

	// Both apps crash on SWITCH_DOWN; their policies differ.
	stack.AddApp(func() controller.App {
		return &downCrasher{inner: apps.NewLearningSwitch()}
	})
	stack.AddApp(func() controller.App {
		return &downCrasher{inner: apps.NewFirewall([]apps.FirewallRule{{TpDst: 22}})}
	})

	n := netsim.Linear(3, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		log.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\nfailing switch 3 ...")
	n.SetSwitchDown(3, true)
	time.Sleep(200 * time.Millisecond)

	fmt.Println()
	for _, app := range []string{"learning-switch", "firewall"} {
		state := "live"
		if stack.Controller.AppDisabled(app) {
			state = "quarantined (by policy)"
		}
		fmt.Printf("app %-16s -> %s\n", app, state)
	}
	fmt.Printf("crash-pad: transformed=%d ignored=%d recoveries=%d\n",
		stack.CrashPad.TransformedEvents.Load(),
		stack.CrashPad.IgnoredEvents.Load(),
		stack.CrashPad.Recoveries.Load())

	// The learning switch received the equivalent link-down events: its
	// forwarding for the unaffected pair still works.
	h2.ClearReceived()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 9, 80, nil))
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("h1->h2 after the failure: delivered=%v\n", h2.ReceivedCount() > 0)
}
