// Package legosdn is a from-scratch Go reproduction of "Tolerating SDN
// Application Failures with LegoSDN" (Chandrasekaran & Benson,
// HotNets-XIII 2014). The implementation lives under internal/: an
// OpenFlow 1.0 wire codec, a switch/network simulator, a
// FloodLight-style controller, the AppVisor isolation layer, the NetLog
// transaction engine, the Crash-Pad recovery engine, invariant
// checkers, sample SDN applications and the evaluation harness. See
// README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for reproduced results. The root-level bench_test.go
// regenerates every table and figure via `go test -bench=.`.
package legosdn
