module legosdn

go 1.22
