package legosdn_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"legosdn/internal/appvisor"
	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
	"legosdn/internal/experiments"
	"legosdn/internal/flowtable"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/workload"
)

// Each table/figure benchmark regenerates its experiment and prints the
// rows once, so `go test -bench=.` reproduces the whole evaluation.
// cmd/legosdn-bench prints the same tables without the testing harness.

var printOnce sync.Map

func report(b *testing.B, t experiments.Table) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(t.ID, true); !dup {
		fmt.Println(t.Render())
	}
}

func BenchmarkTable1FateSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Table1FateSharing())
	}
}

func BenchmarkTable2AppSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Table2AppSurvey())
	}
}

func BenchmarkFigure1ArchLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.Figure1ArchLatency(2000))
	}
}

func BenchmarkClaimBugCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimBugCorpus(50, 7))
	}
}

func BenchmarkClaimControlLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimControlLoop(20))
	}
}

func BenchmarkClaimNetLogRollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimNetLogRollback([]int{1, 2, 4, 8, 16, 32, 64}))
	}
}

func BenchmarkClaimCrashPadRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimCrashPadRecovery(10))
	}
}

func BenchmarkClaimEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimEquivalence())
	}
}

func BenchmarkClaimUpgrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimUpgrade(6))
	}
}

func BenchmarkClaimAtomicUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimAtomicUpdate())
	}
}

func BenchmarkClaimCheckpointSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimCheckpointSweep([]int{1, 2, 4, 8, 16, 32}, 1000))
	}
}

func BenchmarkClaimCloneSwitchover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimCloneSwitchover(200))
	}
}

func BenchmarkClaimNVersion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimNVersion(120))
	}
}

func BenchmarkClaimMCS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimMCS(48))
	}
}

func BenchmarkClaimResourceLimits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimResourceLimits(300))
	}
}

func BenchmarkClaimInvariantEscalation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimInvariantEscalation())
	}
}

func BenchmarkClaimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimThroughput(true))
	}
}

func BenchmarkClaimScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimScale(true))
	}
}

func BenchmarkClaimRecoveryForensics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, experiments.ClaimRecoveryForensics(true))
	}
}

// --- Micro-benchmarks: the hot paths the tables are built from. ---

func BenchmarkOpenFlowEncodeFlowMod(b *testing.B) {
	fm := &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = openflow.AppendMessage(buf[:0], fm)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenFlowDecodeFlowMod(b *testing.B) {
	fm := &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}},
	}
	raw, _ := openflow.Encode(fm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := openflow.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	ft := flowtable.New(nil)
	for i := 0; i < 256; i++ {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardInPort
		m.InPort = uint16(i)
		ft.Apply(&openflow.FlowMod{Match: m, Command: openflow.FlowModAdd, Priority: uint16(i % 16),
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone})
	}
	p := openflow.PacketFields{InPort: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(p, 64)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	f := &netsim.Frame{
		DlSrc: netsim.HostMAC(1), DlDst: netsim.HostMAC(2),
		DlType: netsim.EtherTypeIPv4, NwProto: netsim.IPProtoTCP,
		NwSrc: netsim.HostIP(1), NwDst: netsim.HostIP(2), TpSrc: 1, TpDst: 80,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.ParseFrame(f.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppVisorEventRoundTrip(b *testing.B) {
	proxy, err := appvisor.NewProxy("bench", benchCtx{},
		appvisor.InProcessFactory(func() controller.App { return nopApp{} }, appvisor.StubOptions{}),
		appvisor.ProxyOptions{EventTimeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer proxy.Close()
	ev := workload.PacketInEvents(1, 1, 4, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proxy.HandleEvent(nil, ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppVisorEventBatchRoundTrip(b *testing.B) {
	proxy, err := appvisor.NewProxy("bench", benchCtx{},
		appvisor.InProcessFactory(func() controller.App { return nopApp{} }, appvisor.StubOptions{}),
		appvisor.ProxyOptions{EventTimeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer proxy.Close()
	evs := workload.PacketInEvents(16, 4, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proxy.HandleEventBatch(nil, evs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

func BenchmarkCheckpointSnapshotStore(b *testing.B) {
	store := checkpoint.NewStore(0)
	state := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Put("bench", uint64(i), state)
	}
}

func BenchmarkDataplaneForward(b *testing.B) {
	n := netsim.Linear(3, nil)
	h3 := n.Host("h3")
	for _, cfg := range []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, 2}, {3, 100}} {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlDst
		m.DlDst = h3.MAC
		n.Switch(cfg.dpid).Table().Apply(&openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: 10,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: cfg.out}},
		})
	}
	h1 := n.Host("h1")
	frame := netsim.TCPFrame(h1, h3, 1, 80, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SendFromHost("h1", frame)
	}
}

// nopApp does nothing, isolating the RPC cost.
type nopApp struct{}

func (nopApp) Name() string                                           { return "bench" }
func (nopApp) Subscriptions() []controller.EventKind                  { return controller.AllEventKinds() }
func (nopApp) HandleEvent(controller.Context, controller.Event) error { return nil }

// benchCtx is a no-op context for proxy benches.
type benchCtx struct{}

func (benchCtx) SendMessage(uint64, openflow.Message) error      { return nil }
func (benchCtx) SendFlowMod(uint64, *openflow.FlowMod) error     { return nil }
func (benchCtx) SendPacketOut(uint64, *openflow.PacketOut) error { return nil }
func (benchCtx) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return &openflow.StatsReply{}, nil
}
func (benchCtx) Barrier(uint64) error            { return nil }
func (benchCtx) Switches() []uint64              { return nil }
func (benchCtx) Ports(uint64) []openflow.PhyPort { return nil }
func (benchCtx) Topology() []controller.LinkInfo { return nil }
