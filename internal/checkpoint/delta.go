package checkpoint

import (
	"encoding/binary"
	"fmt"
)

// Delta encoding: a checkpoint can be stored as a byte-range patch
// against the previous checkpoint's state instead of a full image. The
// store takes a full image every DeltaEvery-th put and deltas between,
// which is what makes per-event checkpointing affordable once app state
// grows past a few kilobytes (§5's overhead concern) — the journaled
// and fsynced bytes shrink to the changed ranges.
//
// Wire format (big-endian, shared with the durable journal):
//
//	[u32 target length] op* until exhausted
//	op := 0x00 [u32 base offset] [u32 length]      copy from base
//	    | 0x01 [u32 length] [bytes]                literal
//
// Encoding walks base and target in lockstep and emits copy ops for
// aligned matching runs of at least minCopyRun bytes; everything else
// (including any tail past the base's length) becomes literals. The
// result is deterministic: the same (base, target) pair always encodes
// to the same bytes, which the durable log's reconstruction relies on.
//
// Apply is defensive: deltas cross process lifetimes through the WAL,
// so every read is bounds-checked and damage surfaces as an error,
// never a panic or an out-of-spec output length.

const (
	opCopy byte = 0
	opLit  byte = 1

	// minCopyRun is the shortest matching run worth a copy op; shorter
	// matches cost more in framing (9 bytes) than they save.
	minCopyRun = 16
)

// EncodeDelta encodes target as a patch against base. The result is
// independent of both inputs (no aliasing). Identical inputs encode to
// a single copy op; an empty target encodes to just the length header.
func EncodeDelta(base, target []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(target)))
	n := len(base)
	if len(target) < n {
		n = len(target)
	}
	lit := 0 // start of the pending literal run in target
	i := 0
	for i < n {
		start := i
		for i < n && base[i] == target[i] {
			i++
		}
		if i-start >= minCopyRun {
			out = appendLiteral(out, target[lit:start])
			out = append(out, opCopy)
			out = binary.BigEndian.AppendUint32(out, uint32(start))
			out = binary.BigEndian.AppendUint32(out, uint32(i-start))
			lit = i
		}
		for i < n && base[i] != target[i] {
			i++
		}
	}
	return appendLiteral(out, target[lit:])
}

func appendLiteral(out, lit []byte) []byte {
	if len(lit) == 0 {
		return out
	}
	out = append(out, opLit)
	out = binary.BigEndian.AppendUint32(out, uint32(len(lit)))
	return append(out, lit...)
}

// ApplyDelta reconstructs the target state from base and a delta
// produced by EncodeDelta. The result never aliases base or delta. Any
// malformed input — truncated ops, copy ranges outside base, output
// exceeding the declared length — returns an error.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	if len(delta) < 4 {
		return nil, fmt.Errorf("checkpoint: delta shorter than its length header")
	}
	targetLen := int(binary.BigEndian.Uint32(delta))
	d := delta[4:]
	out := make([]byte, 0, targetLen)
	for len(d) > 0 {
		op := d[0]
		d = d[1:]
		switch op {
		case opCopy:
			if len(d) < 8 {
				return nil, fmt.Errorf("checkpoint: truncated copy op")
			}
			off := int(binary.BigEndian.Uint32(d))
			length := int(binary.BigEndian.Uint32(d[4:]))
			d = d[8:]
			if off < 0 || length < 0 || off+length > len(base) || off+length < off {
				return nil, fmt.Errorf("checkpoint: copy op [%d,%d) outside base of %d bytes", off, off+length, len(base))
			}
			if len(out)+length > targetLen {
				return nil, fmt.Errorf("checkpoint: delta output exceeds declared length %d", targetLen)
			}
			out = append(out, base[off:off+length]...)
		case opLit:
			if len(d) < 4 {
				return nil, fmt.Errorf("checkpoint: truncated literal op")
			}
			length := int(binary.BigEndian.Uint32(d))
			d = d[4:]
			if length < 0 || length > len(d) {
				return nil, fmt.Errorf("checkpoint: literal of %d bytes overruns delta", length)
			}
			if len(out)+length > targetLen {
				return nil, fmt.Errorf("checkpoint: delta output exceeds declared length %d", targetLen)
			}
			out = append(out, d[:length]...)
			d = d[length:]
		default:
			return nil, fmt.Errorf("checkpoint: unknown delta op %d", op)
		}
	}
	if len(out) != targetLen {
		return nil, fmt.Errorf("checkpoint: delta reconstructed %d bytes, declared %d", len(out), targetLen)
	}
	return out, nil
}
