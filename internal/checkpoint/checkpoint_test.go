package checkpoint

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestStorePutLatestBefore(t *testing.T) {
	s := NewStore(0)
	s.Put("app", 1, []byte("one"))
	s.Put("app", 5, []byte("five"))
	s.Put("app", 9, []byte("nine"))
	s.Put("other", 2, []byte("x"))

	if got := s.Latest("app"); got == nil || string(got.State) != "nine" {
		t.Fatalf("latest = %+v", got)
	}
	if got := s.Latest("missing"); got != nil {
		t.Fatal("missing app should have no checkpoint")
	}
	if got := s.Before("app", 7); got == nil || got.Seq != 5 {
		t.Fatalf("before(7) = %+v", got)
	}
	if got := s.Before("app", 9); got == nil || got.Seq != 9 {
		t.Fatalf("before(9) = %+v", got)
	}
	if got := s.Before("app", 0); got != nil {
		t.Fatal("before(0) should be nil")
	}
	if h := s.History("app"); len(h) != 3 || h[0].Seq != 1 {
		t.Fatalf("history %v", h)
	}
	if s.Saves != 4 || s.Bytes != uint64(len("one")+len("five")+len("nine")+1) {
		t.Fatalf("saves=%d bytes=%d", s.Saves, s.Bytes)
	}
	s.Drop("app")
	if s.Latest("app") != nil {
		t.Fatal("drop failed")
	}
}

func TestStoreBounded(t *testing.T) {
	s := NewStore(3)
	for i := uint64(1); i <= 10; i++ {
		s.Put("a", i, []byte{byte(i)})
	}
	h := s.History("a")
	if len(h) != 3 || h[0].Seq != 8 || h[2].Seq != 10 {
		t.Fatalf("history %v", h)
	}
}

func TestStateCopied(t *testing.T) {
	s := NewStore(0)
	buf := []byte("mutable")
	s.Put("a", 1, buf)
	buf[0] = 'X'
	if string(s.Latest("a").State) != "mutable" {
		t.Fatal("store aliased caller's buffer")
	}
}

func TestEveryN(t *testing.T) {
	p := NewEveryN(3)
	want := []bool{true, false, false, true, false, false, true}
	for i, w := range want {
		if got := p.ShouldCheckpoint("a"); got != w {
			t.Fatalf("event %d: got %v want %v", i, got, w)
		}
	}
	// Independent cadence per app.
	if !p.ShouldCheckpoint("b") {
		t.Fatal("fresh app should checkpoint immediately")
	}
	// Reset restarts the cadence.
	p.Reset("a")
	if !p.ShouldCheckpoint("a") {
		t.Fatal("reset should force a checkpoint")
	}
	if NewEveryN(0).N() != 1 {
		t.Fatal("n<1 should clamp to 1")
	}
}

// Property: Before(seq) returns the newest checkpoint with Seq <= seq.
func TestQuickBeforeIsNewestNotAfter(t *testing.T) {
	f := func(seqs []uint64, q uint64) bool {
		s := NewStore(0)
		var sorted []uint64
		last := uint64(0)
		for _, x := range seqs {
			last += x%100 + 1 // strictly increasing
			sorted = append(sorted, last)
			s.Put("a", last, nil)
		}
		got := s.Before("a", q)
		var want uint64
		found := false
		for _, x := range sorted {
			if x <= q {
				want, found = x, true
			}
		}
		if !found {
			return got == nil
		}
		return got != nil && got.Seq == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreString(t *testing.T) {
	s := NewStore(0)
	s.Put("a", 1, []byte("zz"))
	if !strings.Contains(s.String(), "saves=1") {
		t.Fatalf("String() = %q", s.String())
	}
}

// Regression: Latest and Before used to return pointers into the stored
// history, so a recovery path that patched the returned State bytes (or
// the struct) corrupted the checkpoint every later rollback restored.
func TestAccessorsReturnDefensiveCopies(t *testing.T) {
	s := NewStore(0)
	s.Put("a", 1, []byte("pristine"))
	s.Put("a", 5, []byte("newest"))

	cp := s.Latest("a")
	cp.State[0] = 'X'
	cp.Seq = 999
	if got := s.Latest("a"); string(got.State) != "newest" || got.Seq != 5 {
		t.Fatalf("mutating Latest's result corrupted the store: %+v", got)
	}

	cp = s.Before("a", 1)
	cp.State[0] = 'X'
	if got := s.Before("a", 1); string(got.State) != "pristine" {
		t.Fatalf("mutating Before's result corrupted the store: %q", got.State)
	}

	for _, h := range s.History("a") {
		if len(h.State) > 0 {
			h.State[0] = '!'
		}
	}
	if got := s.Latest("a"); string(got.State) != "newest" {
		t.Fatalf("mutating History's results corrupted the store: %q", got.State)
	}
}

// The sink sees every Put and Drop, in order, under the store's
// serialization.
type recordingSink struct {
	got   []Checkpoint
	drops []string
	err   error
}

func (r *recordingSink) AppendCheckpoint(cp Checkpoint) error {
	r.got = append(r.got, cp)
	return r.err
}

func (r *recordingSink) AppendDrop(app string) error {
	r.drops = append(r.drops, app)
	return r.err
}

func TestSinkObservesPutsInOrder(t *testing.T) {
	s := NewStore(0)
	sink := &recordingSink{}
	s.SetSink(sink)
	s.Put("a", 1, []byte("one"))
	s.Put("b", 2, []byte("two"))
	s.RestorePut("c", 3, []byte("restored"), time.Unix(1, 0)) // bypasses the sink
	if len(sink.got) != 2 || sink.got[0].Seq != 1 || sink.got[1].Seq != 2 {
		t.Fatalf("sink saw %+v", sink.got)
	}
	if s.Saves != 2 {
		t.Fatalf("RestorePut must not count as a save: saves=%d", s.Saves)
	}
	if cp := s.Latest("c"); cp == nil || string(cp.State) != "restored" {
		t.Fatalf("RestorePut lost: %+v", cp)
	}
}

// Regression: Drop used to leave the sink unnotified, so the durable
// mirror kept the dropped history and a compaction resurrected it.
func TestDropNotifiesSink(t *testing.T) {
	s := NewStore(0)
	sink := &recordingSink{}
	s.SetSink(sink)
	s.Put("a", 1, []byte("one"))
	s.Drop("a")
	if len(sink.drops) != 1 || sink.drops[0] != "a" {
		t.Fatalf("sink drops = %v, want [a]", sink.drops)
	}
	// Dropping resets the delta cadence: the next put must be a full
	// image, not a delta against evicted state.
	s.SetDeltaEvery(4)
	s.Put("a", 2, []byte("after-drop"))
	if last := sink.got[len(sink.got)-1]; last.Delta {
		t.Fatalf("first put after drop was a delta: %+v", last)
	}
}

// A failing sink must be counted, never silent: every lost checkpoint
// (and drop) increments the sink-error counter.
func TestSinkErrorsCounted(t *testing.T) {
	s := NewStore(0)
	sink := &recordingSink{err: fmt.Errorf("disk gone")}
	s.SetSink(sink)
	s.Put("a", 1, []byte("one"))
	s.Put("a", 2, []byte("two"))
	s.Drop("a")
	if got := s.SinkErrors.Load(); got != 3 {
		t.Fatalf("sink errors = %d, want 3", got)
	}
}
