package checkpoint

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, base, target []byte) []byte {
	t.Helper()
	delta := EncodeDelta(base, target)
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatalf("apply(encode(%d bytes -> %d bytes)): %v", len(base), len(target), err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return delta
}

func TestDeltaRoundTripEdgeCases(t *testing.T) {
	big := bytes.Repeat([]byte("abcdefgh"), 512)
	cases := []struct{ name string; base, target []byte }{
		{"both empty", nil, nil},
		{"empty base", nil, []byte("fresh state")},
		{"empty target", []byte("old state"), nil},
		{"identical", big, big},
		{"grown", big, append(append([]byte(nil), big...), []byte("tail growth")...)},
		{"shrunk", big, big[:100]},
		{"single byte changed", big, func() []byte {
			b := append([]byte(nil), big...)
			b[2048] ^= 0xFF
			return b
		}()},
		{"disjoint", []byte("completely different"), []byte("no shared content at all")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			roundTrip(t, tc.base, tc.target)
		})
	}
	// The whole point: a small in-place mutation must encode much
	// smaller than the full image.
	mutated := append([]byte(nil), big...)
	mutated[17] = 'X'
	mutated[3000] = 'Y'
	if delta := roundTrip(t, big, mutated); len(delta) > len(mutated)/10 {
		t.Fatalf("delta of a 2-byte mutation is %d bytes for a %d-byte state", len(delta), len(mutated))
	}
	// Identical states collapse to a near-empty patch.
	if delta := roundTrip(t, big, big); len(delta) > 32 {
		t.Fatalf("identical-state delta is %d bytes", len(delta))
	}
}

// Property: apply(base, encode(base, target)) == target for random
// pairs, including mutated/grown/shrunk variants of the base.
func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(base []byte, mutations []uint16, grow []byte, shrink uint8) bool {
		target := append([]byte(nil), base...)
		for _, m := range mutations {
			if len(target) > 0 {
				target[int(m)%len(target)] ^= byte(m >> 8)
			}
		}
		if int(shrink) < len(target) {
			target = target[int(shrink):]
		}
		target = append(target, grow...)
		got, err := ApplyDelta(base, EncodeDelta(base, target))
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Encoding is deterministic: same inputs, same bytes — the durable
// log's replay reconstruction depends on it.
func TestDeltaDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]byte, 4096)
	rng.Read(base)
	target := append([]byte(nil), base...)
	for i := 0; i < 40; i++ {
		target[rng.Intn(len(target))] ^= byte(1 + rng.Intn(255))
	}
	if !bytes.Equal(EncodeDelta(base, target), EncodeDelta(base, target)) {
		t.Fatal("same (base, target) produced different deltas")
	}
}

// ApplyDelta must reject damage with an error, never panic or return
// an out-of-spec length.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	base := []byte("some base state bytes for copy ops")
	cases := map[string][]byte{
		"empty":               nil,
		"short header":        {0, 0, 1},
		"truncated copy op":   append(EncodeDelta(base, base)[:4], opCopy, 0, 0),
		"copy outside base":   {0, 0, 0, 4, opCopy, 0, 0, 1, 0, 0, 0, 0, 200},
		"literal overrun":     {0, 0, 0, 9, opLit, 0, 0, 0, 9, 'x'},
		"unknown op":          {0, 0, 0, 1, 0xEE},
		"declared too long":   {0, 0, 0, 99, opLit, 0, 0, 0, 1, 'x'},
		"output past declare": {0, 0, 0, 1, opLit, 0, 0, 0, 2, 'x', 'y'},
	}
	for name, delta := range cases {
		if _, err := ApplyDelta(base, delta); err == nil {
			t.Fatalf("%s: malformed delta accepted", name)
		}
	}
}

// FuzzDeltaCodec drives both directions: arbitrary (base, target)
// pairs must round-trip, and arbitrary delta bytes applied to an
// arbitrary base must either error or produce exactly the declared
// length — never panic.
func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte("base"), []byte("target"))
	f.Add([]byte(nil), []byte("grown from nothing"))
	f.Add(bytes.Repeat([]byte{7}, 300), bytes.Repeat([]byte{7}, 299))
	f.Add([]byte("x"), EncodeDelta([]byte("x"), []byte("y")))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		got, err := ApplyDelta(a, EncodeDelta(a, b))
		if err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("round trip mismatch: %d bytes vs %d", len(got), len(b))
		}
		// b as a raw delta against a: must not panic, and any success
		// must honor the declared output length.
		if out, err := ApplyDelta(a, b); err == nil && len(b) >= 4 {
			declared := int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
			if len(out) != declared {
				t.Fatalf("accepted delta produced %d bytes, declared %d", len(out), declared)
			}
		}
	})
}

func TestStoreDeltaMode(t *testing.T) {
	s := NewStore(0)
	s.SetDeltaEvery(4)
	sink := &recordingSink{}
	s.SetSink(sink)

	state := bytes.Repeat([]byte("flowtable-entry."), 256) // 4 KiB
	var want [][]byte
	for i := 0; i < 10; i++ {
		st := append([]byte(nil), state...)
		st[i*16] = byte('A' + i) // small in-place mutation per event
		st = append(st, []byte(fmt.Sprintf("entry-%d", i))...)
		state = st
		want = append(want, st)
		s.Put("app", uint64(i+1), st)
	}

	// Accessors reconstruct transparently: full images, never deltas.
	for i, w := range want {
		cp := s.Before("app", uint64(i+1))
		if cp == nil || cp.Delta || !bytes.Equal(cp.State, w) {
			t.Fatalf("Before(%d): delta=%v, state mismatch", i+1, cp != nil && cp.Delta)
		}
	}
	if cp := s.Latest("app"); !bytes.Equal(cp.State, want[9]) {
		t.Fatal("Latest reconstruction mismatch")
	}
	h := s.History("app")
	if len(h) != 10 {
		t.Fatalf("history length %d", len(h))
	}
	for i, cp := range h {
		if cp.Delta || !bytes.Equal(cp.State, want[i]) {
			t.Fatalf("History[%d] not a reconstructed full image", i)
		}
	}

	// Cadence: puts 1,5,9 are full (every 4th), the rest deltas.
	if s.DeltaSaves != 7 {
		t.Fatalf("delta saves = %d, want 7", s.DeltaSaves)
	}
	for i, cp := range sink.got {
		wantDelta := i%4 != 0
		if cp.Delta != wantDelta {
			t.Fatalf("sink record %d: delta=%v, want %v", i, cp.Delta, wantDelta)
		}
		if wantDelta && cp.BaseSeq != uint64(i) {
			t.Fatalf("sink record %d: base seq %d, want %d", i, cp.BaseSeq, i)
		}
	}
	// Stored bytes must be far below 10 full images: 3 fulls + 7 small
	// deltas lands just over 3 images, nowhere near 10.
	if s.Bytes > uint64(4*len(want[9])) {
		t.Fatalf("delta mode stored %d bytes for 10 puts of ~%d", s.Bytes, len(want[9]))
	}
}

// Trimming the bounded history must rebase the new oldest entry to a
// full image — its delta base is about to be evicted.
func TestStoreDeltaTrimRebases(t *testing.T) {
	s := NewStore(3)
	s.SetDeltaEvery(8) // every trimmed-in entry is mid-chain
	var want [][]byte
	state := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 10; i++ {
		st := append([]byte(nil), state...)
		st[i*7] = byte(i)
		state = st
		want = append(want, st)
		s.Put("a", uint64(i+1), st)
	}
	h := s.History("a")
	if len(h) != 3 {
		t.Fatalf("history %d, want 3", len(h))
	}
	for i, cp := range h {
		if !bytes.Equal(cp.State, want[7+i]) {
			t.Fatalf("trimmed history entry %d reconstructs wrong state (seq %d)", i, cp.Seq)
		}
	}
}

func TestStoreDeltaPerAppIndependence(t *testing.T) {
	s := NewStore(0)
	s.SetDeltaEvery(3)
	sink := &recordingSink{}
	s.SetSink(sink)
	s.Put("a", 1, []byte("aaaa-state-one-is-long-enough"))
	s.Put("b", 1, []byte("bbbb-state-one-is-long-enough"))
	s.Put("a", 2, []byte("aaaa-state-two-is-long-enough"))
	s.Put("b", 2, []byte("bbbb-state-two-is-long-enough"))
	if sink.got[0].Delta || sink.got[1].Delta {
		t.Fatal("first put per app must be full")
	}
	if !sink.got[2].Delta || !sink.got[3].Delta {
		t.Fatal("second put per app must be a delta")
	}
	if got := s.Latest("a"); string(got.State) != "aaaa-state-two-is-long-enough" {
		t.Fatalf("app a latest = %q", got.State)
	}
}
