// Package checkpoint is LegoSDN's CRIU substitute: a store of SDN-App
// state snapshots taken before event processing, plus the every-N
// checkpointing policy from §5 of the paper ("rather than checkpointing
// after every event, we can checkpoint after every few events... and
// replay all events since that checkpoint").
//
// The paper's prototype freezes whole JVM processes with CRIU; here an
// app exposes its state through controller.Snapshotter and the store
// keeps the serialized images. The measurable quantity — per-event
// checkpoint cost versus recovery-time replay cost — is the same
// trade-off §5 discusses.
package checkpoint

import (
	"fmt"
	"sync"
	"time"
)

// Checkpoint is one stored app image.
type Checkpoint struct {
	App   string
	Seq   uint64 // sequence number of the first event NOT reflected in State
	State []byte
	Taken time.Time
}

// Store keeps bounded per-app checkpoint histories. It is safe for
// concurrent use.
type Store struct {
	mu        sync.Mutex
	histories map[string][]*Checkpoint
	maxPerApp int

	// Saves and Bytes count stored checkpoints and their cumulative
	// size, for the overhead benchmarks.
	Saves uint64
	Bytes uint64
}

// NewStore creates a store keeping at most maxPerApp checkpoints per app
// (default 64 when <= 0). History depth matters for the §5 extension:
// multi-event failures roll back to older checkpoints.
func NewStore(maxPerApp int) *Store {
	if maxPerApp <= 0 {
		maxPerApp = 64
	}
	return &Store{histories: make(map[string][]*Checkpoint), maxPerApp: maxPerApp}
}

// Put stores a checkpoint of app state taken just before the event with
// sequence number seq.
func (s *Store) Put(app string, seq uint64, state []byte) *Checkpoint {
	cp := &Checkpoint{App: app, Seq: seq, State: append([]byte(nil), state...), Taken: time.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := append(s.histories[app], cp)
	if len(h) > s.maxPerApp {
		h = h[len(h)-s.maxPerApp:]
	}
	s.histories[app] = h
	s.Saves++
	s.Bytes += uint64(len(state))
	return cp
}

// Latest returns the most recent checkpoint for app, or nil.
func (s *Store) Latest(app string) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	if len(h) == 0 {
		return nil
	}
	return h[len(h)-1]
}

// Before returns the most recent checkpoint whose Seq is <= seq, i.e.
// the image to restore when every event from Seq onward must be
// reconsidered. Returns nil when no checkpoint is old enough.
func (s *Store) Before(app string, seq uint64) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Seq <= seq {
			return h[i]
		}
	}
	return nil
}

// History returns the app's checkpoints, oldest first.
func (s *Store) History(app string) []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Checkpoint(nil), s.histories[app]...)
}

// Drop discards all checkpoints for app.
func (s *Store) Drop(app string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.histories, app)
}

// String summarizes the store for logs.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("checkpoint.Store{apps=%d saves=%d bytes=%d}", len(s.histories), s.Saves, s.Bytes)
}

// EveryN decides when to checkpoint: every Nth event per app. N=1 is
// the paper's base design (checkpoint before every event); larger N
// trades recovery-time replay for lower steady-state overhead (§5).
type EveryN struct {
	mu     sync.Mutex
	n      int
	counts map[string]int
}

// NewEveryN creates the policy; n < 1 is treated as 1.
func NewEveryN(n int) *EveryN {
	if n < 1 {
		n = 1
	}
	return &EveryN{n: n, counts: make(map[string]int)}
}

// N reports the configured interval.
func (p *EveryN) N() int { return p.n }

// ShouldCheckpoint reports whether app's next event needs a checkpoint
// first, advancing the per-app counter.
func (p *EveryN) ShouldCheckpoint(app string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.counts[app]
	p.counts[app] = c + 1
	return c%p.n == 0
}

// Reset restarts app's cadence (used after a recovery, which always
// re-checkpoints immediately).
func (p *EveryN) Reset(app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.counts, app)
}
