// Package checkpoint is LegoSDN's CRIU substitute: a store of SDN-App
// state snapshots taken before event processing, plus the every-N
// checkpointing policy from §5 of the paper ("rather than checkpointing
// after every event, we can checkpoint after every few events... and
// replay all events since that checkpoint").
//
// The paper's prototype freezes whole JVM processes with CRIU; here an
// app exposes its state through controller.Snapshotter and the store
// keeps the serialized images. The measurable quantity — per-event
// checkpoint cost versus recovery-time replay cost — is the same
// trade-off §5 discusses.
package checkpoint

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Checkpoint is one stored app image.
type Checkpoint struct {
	App   string
	Seq   uint64 // sequence number of the first event NOT reflected in State
	State []byte
	Taken time.Time
}

// clone deep-copies the checkpoint so accessors never hand out State
// slices aliased with stored history: a caller that mutates the
// returned bytes (e.g. patching a snapshot before replay) must not
// corrupt the store's copy.
func (c *Checkpoint) clone() *Checkpoint {
	cp := *c
	cp.State = append([]byte(nil), c.State...)
	return &cp
}

// Sink observes every checkpoint the moment it is stored; the durable
// backend implements it to journal Puts to disk. The checkpoint is
// passed by value and must be treated as read-only — its State slice
// is the store's own copy.
type Sink interface {
	AppendCheckpoint(cp Checkpoint) error
}

// Store keeps bounded per-app checkpoint histories. It is safe for
// concurrent use.
type Store struct {
	mu        sync.Mutex
	histories map[string][]*Checkpoint
	maxPerApp int
	sink      Sink

	// Saves and Bytes count stored checkpoints and their cumulative
	// size, for the overhead benchmarks.
	Saves uint64
	Bytes uint64
}

// NewStore creates a store keeping at most maxPerApp checkpoints per app
// (default 64 when <= 0). History depth matters for the §5 extension:
// multi-event failures roll back to older checkpoints.
func NewStore(maxPerApp int) *Store {
	if maxPerApp <= 0 {
		maxPerApp = 64
	}
	return &Store{histories: make(map[string][]*Checkpoint), maxPerApp: maxPerApp}
}

// SetSink installs (or, with nil, removes) the persistence sink. The
// sink is invoked synchronously under the store's lock, so the on-disk
// journal order always matches history order; install it before
// traffic flows.
func (s *Store) SetSink(sink Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// Put stores a checkpoint of app state taken just before the event with
// sequence number seq.
func (s *Store) Put(app string, seq uint64, state []byte) *Checkpoint {
	cp := &Checkpoint{App: app, Seq: seq, State: append([]byte(nil), state...), Taken: time.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(cp)
	s.Saves++
	s.Bytes += uint64(len(state))
	if s.sink != nil {
		// Persistence is best-effort by design: a failed journal append
		// degrades durability, never availability.
		_ = s.sink.AppendCheckpoint(*cp)
	}
	return cp
}

// RestorePut inserts a checkpoint recovered from a persistent backend,
// bypassing the sink (the record is already on disk) and the save
// counters (it is not a new checkpoint). Callers must supply records in
// chronological order.
func (s *Store) RestorePut(app string, seq uint64, state []byte, taken time.Time) {
	cp := &Checkpoint{App: app, Seq: seq, State: append([]byte(nil), state...), Taken: taken}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(cp)
}

func (s *Store) insertLocked(cp *Checkpoint) {
	h := append(s.histories[cp.App], cp)
	if len(h) > s.maxPerApp {
		h = h[len(h)-s.maxPerApp:]
	}
	s.histories[cp.App] = h
}

// Latest returns the most recent checkpoint for app, or nil. The
// returned checkpoint is a defensive copy: mutating it (or its State
// bytes) cannot corrupt the stored history.
func (s *Store) Latest(app string) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	if len(h) == 0 {
		return nil
	}
	return h[len(h)-1].clone()
}

// Before returns the most recent checkpoint whose Seq is <= seq, i.e.
// the image to restore when every event from Seq onward must be
// reconsidered. Returns nil when no checkpoint is old enough. Like
// Latest, the result is a defensive copy.
func (s *Store) Before(app string, seq uint64) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Seq <= seq {
			return h[i].clone()
		}
	}
	return nil
}

// History returns the app's checkpoints, oldest first, as defensive
// copies.
func (s *Store) History(app string) []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Checkpoint, len(s.histories[app]))
	for i, cp := range s.histories[app] {
		out[i] = cp.clone()
	}
	return out
}

// Apps returns every app with stored history, sorted, so a persistent
// backend can serialize the store deterministically.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.histories))
	for app := range s.histories {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Drop discards all checkpoints for app.
func (s *Store) Drop(app string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.histories, app)
}

// String summarizes the store for logs.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("checkpoint.Store{apps=%d saves=%d bytes=%d}", len(s.histories), s.Saves, s.Bytes)
}

// EveryN decides when to checkpoint: every Nth event per app. N=1 is
// the paper's base design (checkpoint before every event); larger N
// trades recovery-time replay for lower steady-state overhead (§5).
type EveryN struct {
	mu     sync.Mutex
	n      int
	counts map[string]int
}

// NewEveryN creates the policy; n < 1 is treated as 1.
func NewEveryN(n int) *EveryN {
	if n < 1 {
		n = 1
	}
	return &EveryN{n: n, counts: make(map[string]int)}
}

// N reports the configured interval.
func (p *EveryN) N() int { return p.n }

// ShouldCheckpoint reports whether app's next event needs a checkpoint
// first, advancing the per-app counter.
func (p *EveryN) ShouldCheckpoint(app string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.counts[app]
	p.counts[app] = c + 1
	return c%p.n == 0
}

// Reset restarts app's cadence (used after a recovery, which always
// re-checkpoints immediately).
func (p *EveryN) Reset(app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.counts, app)
}
