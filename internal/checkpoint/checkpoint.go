// Package checkpoint is LegoSDN's CRIU substitute: a store of SDN-App
// state snapshots taken before event processing, plus the every-N
// checkpointing policy from §5 of the paper ("rather than checkpointing
// after every event, we can checkpoint after every few events... and
// replay all events since that checkpoint").
//
// The paper's prototype freezes whole JVM processes with CRIU; here an
// app exposes its state through controller.Snapshotter and the store
// keeps the serialized images. The measurable quantity — per-event
// checkpoint cost versus recovery-time replay cost — is the same
// trade-off §5 discusses.
//
// Beyond the every-N cadence the store supports incremental storage: a
// full image every DeltaEvery-th put and byte-range deltas between
// (delta.go). Accessors reconstruct full images transparently, so the
// recovery paths never see a delta; the reconstruction depth is bounded
// by DeltaEvery-1 (the replay-window bound on recovery cost).
package checkpoint

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"legosdn/internal/metrics"
)

// Checkpoint is one stored app image. When Delta is set, State holds a
// byte-range patch (delta.go) against the state of the same app's
// checkpoint with sequence number BaseSeq — always the immediately
// preceding put. Store accessors only ever return full images; delta
// checkpoints appear outside the store solely on the Sink path, where
// the durable backend journals them verbatim.
type Checkpoint struct {
	App   string
	Seq   uint64 // sequence number of the first event NOT reflected in State
	State []byte
	Taken time.Time

	Delta   bool
	BaseSeq uint64
}

// clone deep-copies the checkpoint so accessors never hand out State
// slices aliased with stored history: a caller that mutates the
// returned bytes (e.g. patching a snapshot before replay) must not
// corrupt the store's copy.
func (c *Checkpoint) clone() *Checkpoint {
	cp := *c
	cp.State = append([]byte(nil), c.State...)
	return &cp
}

// Sink observes every store mutation the moment it happens; the durable
// backend implements it to journal Puts (full or delta) and Drops to
// disk. Checkpoints are passed by value and must be treated as
// read-only — the State slice is the store's own copy. A sink may
// process asynchronously, but it must preserve per-store call order.
type Sink interface {
	AppendCheckpoint(cp Checkpoint) error
	// AppendDrop records that every checkpoint for app was discarded,
	// so a compaction after the drop cannot resurrect them.
	AppendDrop(app string) error
}

// Store keeps bounded per-app checkpoint histories. It is safe for
// concurrent use.
type Store struct {
	mu         sync.Mutex
	histories  map[string][]*Checkpoint
	maxPerApp  int
	deltaEvery int               // <=1 stores every put as a full image
	deltaRuns  map[string]int    // puts since the last full image, per app
	lastState  map[string][]byte // latest reconstructed full image, per app
	sink       Sink

	// Saves and Bytes count stored checkpoints and their cumulative
	// (post-encoding) size; DeltaSaves counts the subset stored as
	// deltas. All three feed the overhead benchmarks.
	Saves      uint64
	Bytes      uint64
	DeltaSaves uint64

	// SinkErrors counts sink appends that failed — each one is a
	// checkpoint (or drop) that never became durable. Exposed as
	// legosdn_checkpoint_sink_errors_total via Instrument.
	SinkErrors metrics.Counter

	warnMu   sync.Mutex
	logger   *slog.Logger
	lastWarn time.Time
}

// NewStore creates a store keeping at most maxPerApp checkpoints per app
// (default 64 when <= 0). History depth matters for the §5 extension:
// multi-event failures roll back to older checkpoints.
func NewStore(maxPerApp int) *Store {
	if maxPerApp <= 0 {
		maxPerApp = 64
	}
	return &Store{
		histories: make(map[string][]*Checkpoint),
		maxPerApp: maxPerApp,
		deltaRuns: make(map[string]int),
		lastState: make(map[string][]byte),
	}
}

// SetDeltaEvery switches the store to incremental mode: a full image
// every n-th put per app, byte-range deltas between. n <= 1 restores
// full-image-per-put. Reconstruction cost on recovery is bounded by
// n-1 delta applications. Configure before traffic flows.
func (s *Store) SetDeltaEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.deltaEvery = n
}

// DeltaEvery reports the configured full-image interval (1 = every put
// is a full image).
func (s *Store) DeltaEvery() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deltaEvery < 1 {
		return 1
	}
	return s.deltaEvery
}

// SetSink installs (or, with nil, removes) the persistence sink. The
// sink is invoked synchronously under the store's lock, so the sink
// call order always matches history order; install it before traffic
// flows.
func (s *Store) SetSink(sink Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// SetLogger installs the logger for rate-limited durability warnings.
func (s *Store) SetLogger(lg *slog.Logger) {
	s.warnMu.Lock()
	defer s.warnMu.Unlock()
	s.logger = lg
}

// Instrument registers the store's durability-loss counter.
func (s *Store) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("legosdn_checkpoint_sink_errors_total",
		"checkpoint sink appends that failed (checkpoints that never became durable)", &s.SinkErrors)
}

// NoteSinkError counts one failed sink append and emits a rate-limited
// warning. The synchronous Put path calls it directly; an asynchronous
// sink (the durable backend's ordered queue) calls it from its worker
// when a journal append fails after Put already returned — the
// "silent durability loss" signal.
func (s *Store) NoteSinkError(err error) {
	s.SinkErrors.Add(1)
	s.warnMu.Lock()
	lg := s.logger
	throttled := time.Since(s.lastWarn) < time.Second
	if !throttled {
		s.lastWarn = time.Now()
	}
	s.warnMu.Unlock()
	if lg != nil && !throttled {
		lg.Warn("checkpoint persistence failing; durability degraded",
			"err", err, "sink_errors", s.SinkErrors.Load())
	}
}

// Put stores a checkpoint of app state taken just before the event with
// sequence number seq. In incremental mode the stored (and journaled)
// bytes are a delta against the previous put unless the cadence calls
// for a full image.
func (s *Store) Put(app string, seq uint64, state []byte) *Checkpoint {
	cp := &Checkpoint{App: app, Seq: seq, State: append([]byte(nil), state...), Taken: time.Now()}
	s.mu.Lock()
	if s.deltaEvery > 1 {
		if base, ok := s.lastState[app]; ok && s.deltaRuns[app] > 0 {
			h := s.histories[app]
			cp.Delta = true
			cp.BaseSeq = h[len(h)-1].Seq
			cp.State = EncodeDelta(base, state)
			s.DeltaSaves++
		}
		s.deltaRuns[app] = (s.deltaRuns[app] + 1) % s.deltaEvery
	}
	s.lastState[app] = append([]byte(nil), state...)
	s.insertLocked(cp)
	s.Saves++
	s.Bytes += uint64(len(cp.State))
	sink := s.sink
	var sinkErr error
	if sink != nil {
		// Persistence degrades durability, never availability — but a
		// failed journal append must not be silent.
		sinkErr = sink.AppendCheckpoint(*cp)
	}
	s.mu.Unlock()
	if sinkErr != nil {
		s.NoteSinkError(sinkErr)
	}
	return cp
}

// RestorePut inserts a checkpoint recovered from a persistent backend,
// bypassing the sink (the record is already on disk) and the save
// counters (it is not a new checkpoint). The state must be a full
// image — the durable backend reconstructs deltas before restoring —
// and callers must supply records in chronological order.
func (s *Store) RestorePut(app string, seq uint64, state []byte, taken time.Time) {
	cp := &Checkpoint{App: app, Seq: seq, State: append([]byte(nil), state...), Taken: taken}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastState[app] = append([]byte(nil), state...)
	s.insertLocked(cp)
}

func (s *Store) insertLocked(cp *Checkpoint) {
	h := append(s.histories[cp.App], cp)
	if len(h) > s.maxPerApp {
		cut := len(h) - s.maxPerApp
		// The new oldest entry must be a full image or later
		// reconstructions would chase an evicted base. Rebase it before
		// the chain below it disappears.
		if h[cut].Delta {
			if full, err := reconstruct(h, cut); err == nil {
				rb := *h[cut]
				rb.State, rb.Delta, rb.BaseSeq = full, false, 0
				h[cut] = &rb
			} else {
				// Unreconstructable chain (a store bug, not an input): cut
				// at the next full image instead of keeping broken deltas.
				for cut < len(h) && h[cut].Delta {
					cut++
				}
			}
		}
		h = h[cut:]
	}
	s.histories[cp.App] = h
}

// reconstruct returns the full image of history entry idx, applying the
// delta chain forward from the nearest full image at or below idx. The
// chain length is bounded by DeltaEvery-1.
func reconstruct(h []*Checkpoint, idx int) ([]byte, error) {
	base := idx
	for base >= 0 && h[base].Delta {
		base--
	}
	if base < 0 {
		return nil, fmt.Errorf("checkpoint: no full image below %s seq %d", h[idx].App, h[idx].Seq)
	}
	state := h[base].State
	for i := base + 1; i <= idx; i++ {
		var err error
		state, err = ApplyDelta(state, h[i].State)
		if err != nil {
			return nil, err
		}
	}
	if base == idx {
		state = append([]byte(nil), state...)
	}
	return state, nil
}

// cloneFullLocked returns entry idx as a full-image defensive copy.
func (s *Store) cloneFullLocked(h []*Checkpoint, idx int) *Checkpoint {
	cp := h[idx]
	if !cp.Delta {
		return cp.clone()
	}
	state, err := reconstruct(h, idx)
	if err != nil {
		return nil
	}
	out := *cp
	out.State, out.Delta, out.BaseSeq = state, false, 0
	return &out
}

// Latest returns the most recent checkpoint for app, or nil. The
// returned checkpoint is a full-image defensive copy: mutating it (or
// its State bytes) cannot corrupt the stored history.
func (s *Store) Latest(app string) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	if len(h) == 0 {
		return nil
	}
	return s.cloneFullLocked(h, len(h)-1)
}

// Before returns the most recent checkpoint whose Seq is <= seq, i.e.
// the image to restore when every event from Seq onward must be
// reconsidered. Returns nil when no checkpoint is old enough. Like
// Latest, the result is a full-image defensive copy.
func (s *Store) Before(app string, seq uint64) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Seq <= seq {
			return s.cloneFullLocked(h, i)
		}
	}
	return nil
}

// History returns the app's checkpoints, oldest first, as full-image
// defensive copies.
func (s *Store) History(app string) []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histories[app]
	out := make([]*Checkpoint, 0, len(h))
	for i := range h {
		if cp := s.cloneFullLocked(h, i); cp != nil {
			out = append(out, cp)
		}
	}
	return out
}

// Apps returns every app with stored history, sorted, so a persistent
// backend can serialize the store deterministically.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.histories))
	for app := range s.histories {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Drop discards all checkpoints for app, resets its delta cadence, and
// notifies the sink so the durable journal forgets the history too —
// without the drop record, a compaction after a drop would snapshot the
// old mirror and resurrect the checkpoints on the next restart.
func (s *Store) Drop(app string) {
	s.mu.Lock()
	delete(s.histories, app)
	delete(s.deltaRuns, app)
	delete(s.lastState, app)
	sink := s.sink
	var sinkErr error
	if sink != nil {
		sinkErr = sink.AppendDrop(app)
	}
	s.mu.Unlock()
	if sinkErr != nil {
		s.NoteSinkError(sinkErr)
	}
}

// String summarizes the store for logs.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("checkpoint.Store{apps=%d saves=%d bytes=%d}", len(s.histories), s.Saves, s.Bytes)
}

// EveryN decides when to checkpoint: every Nth event per app. N=1 is
// the paper's base design (checkpoint before every event); larger N
// trades recovery-time replay for lower steady-state overhead (§5).
type EveryN struct {
	mu     sync.Mutex
	n      int
	counts map[string]int
}

// NewEveryN creates the policy; n < 1 is treated as 1.
func NewEveryN(n int) *EveryN {
	if n < 1 {
		n = 1
	}
	return &EveryN{n: n, counts: make(map[string]int)}
}

// N reports the configured interval.
func (p *EveryN) N() int { return p.n }

// ShouldCheckpoint reports whether app's next event needs a checkpoint
// first, advancing the per-app counter.
func (p *EveryN) ShouldCheckpoint(app string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.counts[app]
	p.counts[app] = c + 1
	return c%p.n == 0
}

// Reset restarts app's cadence (used after a recovery, which always
// re-checkpoints immediately). It also frees the app's counter entry,
// so dropping an app does not leak cadence state.
func (p *EveryN) Reset(app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.counts, app)
}
