package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
	// Nil instruments are inert, not crashes.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Load() != 0 || ng.Load() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatal("nil instruments should read zero")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Observations land in the first bucket whose bound is >= value
	// (Prometheus `le` semantics).
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		value  float64
		bucket int
	}{
		{0.5, 0},
		{1, 0}, // exactly on a bound: le-inclusive
		{1.5, 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},  // overflow bucket
		{-1, 0}, // negative observations clamp to zero
	}
	for _, tc := range cases {
		h := NewHistogram([]float64{1, 2, 4})
		h.Observe(tc.value)
		s := h.Snapshot()
		for i, c := range s.Buckets {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.value, i, c, want)
			}
		}
	}
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got := s.Buckets; got[0] != 2 || got[1] != 2 || got[2] != 2 || got[3] != 1 {
		t.Fatalf("buckets = %v, want [2 2 2 1]", got)
	}
	if s.Max != 5 {
		t.Fatalf("max = %v, want 5", s.Max)
	}
	if math.Abs(s.Sum-17) > 1e-6 {
		t.Fatalf("sum = %v, want 17", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
		tol    float64
	}{
		{
			name:   "uniform single bucket interpolates",
			bounds: []float64{10},
			obs:    []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			q:      0.5,
			want:   5, // rank 5 of 10 in (0,10] -> 10*5/10
			tol:    1e-9,
		},
		{
			name:   "median on bucket edge",
			bounds: []float64{1, 2, 3},
			obs:    []float64{0.5, 1.5, 2.5, 2.6},
			q:      0.5,
			want:   2, // rank 2 of 4: second bucket fully consumed
			tol:    1e-9,
		},
		{
			name:   "p99 in top finite bucket clamps to observed max",
			bounds: []float64{1, 10},
			obs:    repeat(0.5, 90, 9.0, 10),
			q:      0.99,
			want:   9.0, // interpolation says 9.1, but nothing above 9.0 was observed
			tol:    1e-9,
		},
		{
			name:   "overflow bucket reports max",
			bounds: []float64{1},
			obs:    []float64{0.5, 50},
			q:      1.0,
			want:   50,
			tol:    1e-9,
		},
		{
			name: "empty histogram",
			obs:  nil,
			q:    0.5,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if math.Abs(got-tc.want) > tc.tol {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func repeat(a float64, na int, b float64, nb int) []float64 {
	var out []float64
	for i := 0; i < na; i++ {
		out = append(out, a)
	}
	for i := 0; i < nb; i++ {
		out = append(out, b)
	}
	return out
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var cum uint64
	for _, c := range s.Buckets {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket total %d != count %d", cum, s.Count)
	}
	wantMax := float64(workers*per-1) * 1e-6
	if math.Abs(s.Max-wantMax) > 1e-12 {
		t.Fatalf("max = %v, want %v", s.Max, wantMax)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registering a counter should return the same instrument")
	}
	var field Counter
	if got := r.RegisterCounter("y_total", "", &field); got != &field {
		t.Fatal("RegisterCounter should hand back the field")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.RegisterGaugeFunc("d", "", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	r.WritePrometheus(&strings.Builder{})
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("legosdn_events_total", "events processed").Add(3)
	r.Counter(`legosdn_crashes_total{reason="reported"}`, "crashes by reason").Add(2)
	r.Counter(`legosdn_crashes_total{reason="rpc-timeout"}`, "crashes by reason").Add(1)
	r.Gauge("legosdn_depth", "queue depth").Set(4)
	r.RegisterGaugeFunc("legosdn_live", "live readout", func() float64 { return 2.5 })
	h := r.Histogram("legosdn_latency_seconds", "event latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE legosdn_events_total counter\n",
		"legosdn_events_total 3\n",
		`legosdn_crashes_total{reason="reported"} 2` + "\n",
		`legosdn_crashes_total{reason="rpc-timeout"} 1` + "\n",
		"# TYPE legosdn_depth gauge\n",
		"legosdn_depth 4\n",
		"legosdn_live 2.5\n",
		"# TYPE legosdn_latency_seconds histogram\n",
		`legosdn_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`legosdn_latency_seconds_bucket{le="1"} 2` + "\n",
		`legosdn_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"legosdn_latency_seconds_sum 5.55\n",
		"legosdn_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with two labeled series.
	if n := strings.Count(out, "# TYPE legosdn_crashes_total"); n != 1 {
		t.Errorf("crashes_total TYPE headers = %d, want 1", n)
	}

	// The HTTP handler serves the same body.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.String() != out {
		t.Error("handler body differs from WritePrometheus output")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	h := r.Histogram("lat_seconds", "", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Duration(i) * 100 * time.Microsecond)
	}
	s := r.Snapshot()
	if s.Counters["a_total"] != 7 {
		t.Fatalf("snapshot counter = %d", s.Counters["a_total"])
	}
	hs := s.Histograms["lat_seconds"]
	if hs.Count != 100 || hs.P50 <= 0 || hs.P95 < hs.P50 || hs.P99 < hs.P95 {
		t.Fatalf("snapshot histogram malformed: %+v", hs)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"a_total":7`) || !strings.Contains(string(b), `"p95":`) {
		t.Fatalf("snapshot JSON missing fields: %s", b)
	}
}

func TestLabeledNameSplicing(t *testing.T) {
	cases := []struct{ name, extra, want string }{
		{"x", `le="1"`, `x{le="1"}`},
		{`x{a="1"}`, `le="2"`, `x{a="1",le="2"}`},
	}
	for _, tc := range cases {
		if got := labeledName(tc.name, tc.extra); got != tc.want {
			t.Errorf("labeledName(%q, %q) = %q, want %q", tc.name, tc.extra, got, tc.want)
		}
	}
	if got := baseSeries(`x{a="1"}`, "_sum"); got != `x_sum{a="1"}` {
		t.Errorf("baseSeries = %q", got)
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// The snapshot of an empty histogram is likewise all-zero.
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// Out-of-range q on a populated histogram stays in range.
	h.Observe(1)
	if h.Quantile(-1) != 0 {
		t.Fatal("negative quantile should be 0")
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want clamped to Quantile(1) = %v", got, h.Quantile(1))
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "line one\nline two with back\\slash")
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	want := `# HELP weird_total line one\nline two with back\\slash`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition help not escaped:\n%s", out)
	}
	// The raw newline must not survive inside the HELP line: every
	// line of the output still starts with # or the metric name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "weird_total") {
			t.Fatalf("exposition line broken by unescaped help: %q", line)
		}
	}
}

func TestConcurrentRegisterGaugeFunc(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines race on the SAME name (idempotent
			// register), half add distinct series.
			r.RegisterGaugeFunc("shared_gauge", "shared", func() float64 { return 1 })
			r.RegisterGaugeFunc(fmt.Sprintf("own_gauge_%d", i), "own", func() float64 { return float64(i) })
			var b strings.Builder
			r.WritePrometheus(&b) // concurrent reads must not race either
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Gauges["shared_gauge"] != 1 {
		t.Fatalf("shared gauge = %v", snap.Gauges["shared_gauge"])
	}
	for i := 0; i < goroutines; i++ {
		name := fmt.Sprintf("own_gauge_%d", i)
		if snap.Gauges[name] != float64(i) {
			t.Fatalf("%s = %v, want %d", name, snap.Gauges[name], i)
		}
	}
}

func TestPrometheusLabeledHistogram(t *testing.T) {
	// A labeled histogram family must splice _bucket/_sum/_count between
	// the base name and the label set, with le merged into the labels —
	// not appended after the closing brace.
	r := NewRegistry()
	h := r.Histogram(`legosdn_fsync_seconds{wal="checkpoints"}`, "fsync latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE legosdn_fsync_seconds histogram\n",
		`legosdn_fsync_seconds_bucket{wal="checkpoints",le="0.1"} 1` + "\n",
		`legosdn_fsync_seconds_bucket{wal="checkpoints",le="1"} 2` + "\n",
		`legosdn_fsync_seconds_bucket{wal="checkpoints",le="+Inf"} 2` + "\n",
		`legosdn_fsync_seconds_sum{wal="checkpoints"} 0.55` + "\n",
		`legosdn_fsync_seconds_count{wal="checkpoints"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	if strings.Contains(out, `}_bucke`) {
		t.Errorf("corrupt bucket series name in exposition:\n%s", out)
	}
}

func TestQuantileNeverExceedsObservedMax(t *testing.T) {
	// One outlier in the +Inf bucket plus interpolation used to let
	// estimated quantiles float above the exact observed max.
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
	}{
		{"single outlier above all bounds", []float64{0.25, 0.5}, []float64{0.3, 0.3, 0.3, 7}},
		{"all obs below bucket bound", []float64{0.25, 0.5}, []float64{0.3, 0.3, 0.3}},
		{"identical values", []float64{1, 10}, []float64{2, 2, 2, 2}},
		{"zeros only", []float64{1}, []float64{0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			max := 0.0
			for _, v := range tc.obs {
				h.Observe(v)
				if v > max {
					max = v
				}
			}
			s := h.Snapshot()
			for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
				if got := s.Quantile(q); got > max {
					t.Fatalf("Quantile(%v) = %v exceeds observed max %v", q, got, max)
				}
			}
			if s.P99 > s.Max {
				t.Fatalf("snapshot P99 %v exceeds Max %v", s.P99, s.Max)
			}
		})
	}
}

func TestRegistryDuplicateDetection(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter

	// Same counter re-attached: legitimate re-wiring, not a duplicate.
	reg.RegisterCounter("dup_total", "h", &a)
	reg.RegisterCounter("dup_total", "h", &a)
	if d := reg.Duplicates(); len(d) != 0 {
		t.Fatalf("re-attaching the same counter flagged: %v", d)
	}

	// A distinct counter under a taken name is recorded.
	reg.RegisterCounter("dup_total", "h", &b)
	if d := reg.Duplicates(); len(d) != 1 {
		t.Fatalf("distinct counter not flagged: %v", d)
	}

	// Gauge funcs are not comparable: any re-registration is flagged.
	reg.RegisterGaugeFunc("depth", "h", func() float64 { return 1 })
	reg.RegisterGaugeFunc("depth", "h", func() float64 { return 2 })
	if d := reg.Duplicates(); len(d) != 2 {
		t.Fatalf("gauge func re-registration not flagged: %v", d)
	}

	// Get-or-create by name stays clean.
	reg.Counter("byname_total", "h")
	reg.Counter("byname_total", "h")
	reg.Histogram("hist_seconds", "h", nil)
	reg.Histogram("hist_seconds", "h", nil)
	if d := reg.Duplicates(); len(d) != 2 {
		t.Fatalf("get-or-create flagged as duplicate: %v", d)
	}
}

func TestRegistryStrictPanicsOnDuplicate(t *testing.T) {
	reg := NewRegistry()
	reg.SetStrict(true)
	var a, b Counter
	reg.RegisterCounter("strict_total", "h", &a)
	defer func() {
		if recover() == nil {
			t.Fatalf("strict registry did not panic on duplicate")
		}
	}()
	reg.RegisterCounter("strict_total", "h", &b)
}
