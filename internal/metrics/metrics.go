// Package metrics is LegoSDN's low-overhead, dependency-free
// instrumentation layer. The paper's argument is quantitative — apps
// tolerate a factor-of-4 control-loop slow-down and recover within
// seconds — so every layer of the control loop (controller dispatch,
// AppVisor RPC, NetLog transactions, Crash-Pad recovery) reports into
// one of three instrument kinds:
//
//   - Counter: a monotonic atomic counter, API-compatible with the
//     atomic.Uint64 fields it replaced (Add/Load), so call sites and
//     tests read identically.
//   - Gauge / GaugeFunc: a point-in-time level (queue depth, held
//     messages).
//   - Histogram: a fixed-bucket latency distribution with estimated
//     p50/p95/p99 and an exact max, safe for concurrent Observe.
//
// A Registry names instruments, serves them in Prometheus text
// exposition format, and snapshots them as plain data for the
// machine-readable blocks the benchmarks emit. Instruments are
// nil-safe: a nil *Histogram or nil *Gauge ignores observations, so
// un-instrumented components pay a single predictable branch.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use, so it can live as a struct field exactly where an
// atomic.Uint64 used to.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a level that can move both ways. Values are int64 (depths,
// sizes); exposition renders them as floats.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets is the default latency bucket ladder, in seconds:
// 10us to ~10s in roughly-logarithmic steps. It spans everything the
// control loop produces, from sub-millisecond dispatch to multi-second
// recovery timelines.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time but stored as per-bucket counts internally; Observe
// is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds-scale fixed point: sum of value*1e9
	max    atomic.Uint64 // math.Float64bits of the max observation
}

// NewHistogram creates a histogram over the given ascending bucket
// upper bounds (seconds). Nil or empty bounds select DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v * 1e9))
	for {
		cur := h.max.Load()
		if v <= math.Float64frombits(cur) {
			return
		}
		if h.max.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.ObserveDuration(time.Since(t0))
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the owning bucket, the same estimate Prometheus'
// histogram_quantile computes. Returns 0 with no observations;
// observations beyond the last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a histogram frozen as plain data.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Max     float64   `json:"max"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"` // per-bucket counts, len(Bounds)+1
}

// Snapshot freezes the histogram. The per-bucket reads are individually
// atomic but not mutually consistent; quantiles computed from a
// snapshot taken during heavy writing are approximations, which is all
// a bucketed histogram ever promises.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     float64(h.sum.Load()) / 1e9,
		Max:     math.Float64frombits(h.max.Load()),
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile from the snapshot's buckets.
// Whatever bucket interpolation estimates, no quantile can exceed the
// exact observed maximum, so the result is clamped to Max — without
// the clamp a single outlier landing in the +Inf bucket (or a bucket's
// upper bound sitting above every real observation) reports p99 > max,
// which is nonsense on its face and skews MTTR dashboards.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	return s.clamp(s.estimate(q))
}

// clamp bounds a bucket-interpolated estimate by the exact observed
// max. Observe never records below zero, so with Count > 0 the tracked
// Max is the true maximum even when it is 0.
func (s HistogramSnapshot) clamp(est float64) float64 {
	if est > s.Max {
		return s.Max
	}
	return est
}

func (s HistogramSnapshot) estimate(q float64) float64 {
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: the best point estimate is the largest
			// finite bound (or the max if tracked).
			if s.Max > 0 {
				return s.Max
			}
			if len(s.Bounds) > 0 {
				return s.Bounds[len(s.Bounds)-1]
			}
			return 0
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		inBucket := rank - float64(cum-c)
		return lo + (hi-lo)*(inBucket/float64(c))
	}
	return s.Max
}

// kind tags what a registered name points at.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type instrument struct {
	name string // full name, possibly with {label="v"} suffix
	help string
	kind kind

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Registry names instruments and serves them. The zero value is not
// usable; call NewRegistry. A nil *Registry is safe: every method
// no-ops (returning nil instruments, which are themselves no-ops), so
// components can be wired unconditionally.
type Registry struct {
	mu     sync.Mutex
	by     map[string]*instrument
	order  []*instrument
	strict bool
	dups   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

// register implements get-or-create semantics: re-registering a name
// with the same kind returns the existing instrument (a respawned
// component re-wires cleanly); a kind clash panics, as that is a
// programming error no caller can handle. The second return reports
// whether the name already existed.
func (r *Registry) register(name, help string, k kind, build func() *instrument) (*instrument, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.by[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered as a different kind", name))
		}
		return in, true
	}
	in := build()
	in.name, in.help, in.kind = name, help, k
	r.by[name] = in
	r.order = append(r.order, in)
	return in, false
}

// SetStrict toggles strict registration: when on, a duplicate
// registration — one that would silently discard a distinct backing
// instrument — panics instead of being recorded. Get-or-create lookups
// (Counter/Gauge/Histogram by name) are never duplicates; attaching a
// *different* counter under a taken name, or re-registering a gauge
// func, is. CI builds the full stack strict to catch metric-name
// collisions at registration time.
func (r *Registry) SetStrict(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.strict = on
	r.mu.Unlock()
}

// Duplicates lists duplicate registrations seen so far (non-strict
// registries record them instead of panicking).
func (r *Registry) Duplicates() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.dups...)
}

func (r *Registry) noteDuplicate(name, what string) {
	msg := fmt.Sprintf("metrics: duplicate registration of %q would discard a distinct %s", name, what)
	r.mu.Lock()
	strict := r.strict
	r.dups = append(r.dups, msg)
	r.mu.Unlock()
	if strict {
		panic(msg)
	}
}

// Counter returns (creating if needed) the named counter. The name may
// carry a Prometheus label suffix, e.g. `crashes_total{reason="x"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	in, _ := r.register(name, help, kindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	})
	return in.counter
}

// RegisterCounter attaches an existing counter (typically a struct
// field) to the registry under name. Returns c for chaining.
func (r *Registry) RegisterCounter(name, help string, c *Counter) *Counter {
	if r == nil || c == nil {
		return c
	}
	in, existed := r.register(name, help, kindCounter, func() *instrument {
		return &instrument{counter: c}
	})
	if existed && in.counter != c {
		r.noteDuplicate(name, "counter")
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	in, _ := r.register(name, help, kindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	})
	return in.gauge
}

// RegisterGaugeFunc exposes a live read-out (e.g. a queue depth method)
// as a gauge. fn is called at snapshot/exposition time.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	_, existed := r.register(name, help, kindGaugeFunc, func() *instrument {
		return &instrument{gaugeFn: fn}
	})
	if existed {
		// Funcs are not comparable; any re-registration silently drops
		// the new read-out, so flag it.
		r.noteDuplicate(name, "gauge func")
	}
}

// Histogram returns (creating if needed) the named histogram over the
// given bucket bounds (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	in, _ := r.register(name, help, kindHistogram, func() *instrument {
		return &instrument{histogram: NewHistogram(bounds)}
	})
	return in.histogram
}

// Snapshot is the whole registry frozen as plain data, JSON-encodable
// for the benchmark trajectory.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	for _, in := range order {
		switch in.kind {
		case kindCounter:
			s.Counters[in.name] = in.counter.Load()
		case kindGauge:
			s.Gauges[in.name] = float64(in.gauge.Load())
		case kindGaugeFunc:
			s.Gauges[in.name] = in.gaugeFn()
		case kindHistogram:
			hs := in.histogram.Snapshot()
			hs.Bounds, hs.Buckets = nil, nil // summary form: quantiles only
			s.Histograms[in.name] = hs
		}
	}
	return s
}

// baseName strips a {label="v"} suffix, for TYPE/HELP grouping.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeledName splices extra labels into a (possibly already labeled)
// series name: labeledName(`x{a="1"}`, `le="2"`) = `x{a="1",le="2"}`.
func labeledName(name, extra string) string {
	base := baseName(name)
	if base == name {
		return fmt.Sprintf("%s{%s}", base, extra)
	}
	inner := name[len(base)+1 : len(name)-1]
	return fmt.Sprintf("%s{%s,%s}", base, inner, extra)
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// escapeHelp applies the exposition-format HELP escaping: a literal
// backslash becomes \\ and a line feed becomes \n, so a multi-line
// help string cannot break the line-oriented format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per base
// metric name, so labeled series of one family group correctly.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	seen := make(map[string]bool)
	header := func(name, help, typ string) {
		base := baseName(name)
		if seen[base] {
			return
		}
		seen[base] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	}
	for _, in := range order {
		switch in.kind {
		case kindCounter:
			header(in.name, in.help, "counter")
			fmt.Fprintf(w, "%s %d\n", in.name, in.counter.Load())
		case kindGauge:
			header(in.name, in.help, "gauge")
			fmt.Fprintf(w, "%s %v\n", in.name, float64(in.gauge.Load()))
		case kindGaugeFunc:
			header(in.name, in.help, "gauge")
			fmt.Fprintf(w, "%s %v\n", in.name, in.gaugeFn())
		case kindHistogram:
			header(in.name, in.help, "histogram")
			hs := in.histogram.Snapshot()
			var cum uint64
			for i, b := range hs.Bounds {
				cum += hs.Buckets[i]
				fmt.Fprintf(w, "%s %d\n", labeledName(baseSeries(in.name, "_bucket"), fmt.Sprintf("le=%q", formatBound(b))), cum)
			}
			fmt.Fprintf(w, "%s %d\n", labeledName(baseSeries(in.name, "_bucket"), `le="+Inf"`), hs.Count)
			fmt.Fprintf(w, "%s %v\n", baseSeries(in.name, "_sum"), hs.Sum)
			fmt.Fprintf(w, "%s %d\n", baseSeries(in.name, "_count"), hs.Count)
		}
	}
}

// baseSeries appends a suffix to the metric name, before any label set:
// baseSeries(`x{a="1"}`, "_sum") = `x_sum{a="1"}`.
func baseSeries(name, suffix string) string {
	base := baseName(name)
	if base == name {
		return name + suffix
	}
	return base + suffix + name[len(base):]
}

// Handler serves the registry at any path, for a -metrics-addr flag.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
