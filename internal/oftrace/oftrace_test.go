package oftrace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 500)
	msgs := []openflow.Message{
		&openflow.Hello{},
		&openflow.PacketIn{BufferID: openflow.BufferIDNone, InPort: 4, Data: []byte{1, 2, 3}},
		&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone},
	}
	dirs := []Direction{In, In, Out}
	for i, m := range msgs {
		if err := w.RecordMessage(dirs[i], uint64(i+1), t0.Add(time.Duration(i)*time.Second), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Dir != dirs[i] || rec.DPID != uint64(i+1) {
			t.Fatalf("record %d header: %+v", i, rec)
		}
		if !rec.Time.Equal(t0.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("record %d time %v", i, rec.Time)
		}
		msg, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d decode: %v", i, err)
		}
		if msg.Type() != msgs[i].Type() {
			t.Fatalf("record %d type %v, want %v", i, msg.Type(), msgs[i].Type())
		}
	}
	// String form names the message kind.
	if !strings.Contains(recs[1].String(), "PACKET_IN") {
		t.Fatalf("String() = %q", recs[1].String())
	}
}

func TestTraceIDRoundTripAndString(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RecordMessageTraced(In, 7, time.Unix(42, 0), 0xabcd,
		&openflow.PacketIn{BufferID: openflow.BufferIDNone, InPort: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordMessage(Out, 7, time.Unix(43, 0), &openflow.Hello{}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].TraceID != 0xabcd || recs[1].TraceID != 0 {
		t.Fatalf("trace ids %x / %x, want abcd / 0", recs[0].TraceID, recs[1].TraceID)
	}
	if !strings.Contains(recs[0].String(), "trace=000000000000abcd") {
		t.Fatalf("String() = %q, want trace suffix", recs[0].String())
	}
	if strings.Contains(recs[1].String(), "trace=") {
		t.Fatalf("untraced String() = %q carries a trace suffix", recs[1].String())
	}
}

// TestReaderAcceptsLegacyV1 hand-builds a v1 file (OFTRACE1 magic,
// 21-byte record headers) and checks the reader still parses it, with
// TraceID zero.
func TestReaderAcceptsLegacyV1(t *testing.T) {
	frame, err := openflow.Encode(&openflow.Hello{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("OFTRACE1")
	hdr := make([]byte, hdrLenV1)
	binary.BigEndian.PutUint64(hdr[0:8], uint64(time.Unix(5, 0).UnixNano()))
	hdr[8] = byte(Out)
	binary.BigEndian.PutUint64(hdr[9:17], 3)
	binary.BigEndian.PutUint32(hdr[17:21], uint32(len(frame)))
	buf.Write(hdr)
	buf.Write(frame)

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if rec.Dir != Out || rec.DPID != 3 || rec.TraceID != 0 || !rec.Time.Equal(time.Unix(5, 0)) {
		t.Fatalf("legacy record = %+v", rec)
	}
	if msg, err := rec.Decode(); err != nil || msg.Type() != openflow.TypeHello {
		t.Fatalf("legacy frame decode: %v %v", msg, err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("short")); !errors.Is(err, ErrBadTrace) {
		t.Error("short header should fail")
	}
	if _, err := NewReader(strings.NewReader("NOTTRACE")); !errors.Is(err, ErrBadTrace) {
		t.Error("bad magic should fail")
	}
	// Truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.RecordMessage(In, 1, time.Unix(0, 0), &openflow.Hello{})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated frame error = %v", err)
	}
	// Clean EOF.
	r2, _ := NewReader(bytes.NewReader(buf.Bytes()))
	r2.Next()
	if _, err := r2.Next(); err != io.EOF {
		t.Errorf("end of trace = %v, want EOF", err)
	}
}

func TestTapRecordsLiveTraffic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	c := controller.New(controller.Config{})
	defer c.Stop()
	Attach(c, w) // before the app, so inbound events are taped first

	// A tiny app that answers packet-ins with a flow mod.
	c.Register(&tapTestApp{})

	n := netsim.Single(2, nil)
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		sw.Attach(swSide)
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))

	deadline := time.Now().Add(3 * time.Second)
	for w.Count() < 3 { // features-reply(in event? no) ... at least: packet-in (In) + flow-mod (Out) + hello? count grows
		if time.Now().After(deadline) {
			t.Fatalf("tap recorded only %d messages", w.Count())
		}
		time.Sleep(time.Millisecond)
	}
	w.Flush()
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawIn, sawOut bool
	for _, rec := range recs {
		msg, err := rec.Decode()
		if err != nil {
			t.Fatalf("taped frame broken: %v", err)
		}
		if rec.Dir == In && msg.Type() == openflow.TypePacketIn {
			sawIn = true
		}
		if rec.Dir == Out && msg.Type() == openflow.TypeFlowMod {
			sawOut = true
		}
	}
	if !sawIn || !sawOut {
		t.Fatalf("tap missed a direction: in=%v out=%v (%d records)", sawIn, sawOut, len(recs))
	}
}

type tapTestApp struct{}

func (*tapTestApp) Name() string                          { return "responder" }
func (*tapTestApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (*tapTestApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if ev.Kind != controller.EventPacketIn {
		return nil
	}
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	})
}
