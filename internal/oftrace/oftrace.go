// Package oftrace records OpenFlow control traffic to a compact binary
// log — a pcap for the control channel. Operators attach a tap to the
// controller and get a replayable, timestamped record of every event
// the apps saw and every command they issued: the raw material for
// offline debugging, for STS-style minimization of long traces, and for
// audit of what a recovered app actually did.
//
// File layout: an 8-byte magic ("OFTRACE2"), then records of
//
//	ts(int64, unix nanos) dir(1) dpid(8) trace(8) len(4) frame(len)
//
// where frame is a complete OpenFlow wire message and trace is the
// event-scoped trace id from internal/trace (0 = untraced), letting
// operators join a control-channel record to the spans at /debug/traces.
// Readers also accept the legacy "OFTRACE1" format, whose records lack
// the trace field.
package oftrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// Direction marks which way a message traveled.
type Direction uint8

// Directions.
const (
	// In is switch-to-controller (events).
	In Direction = 1
	// Out is controller-to-switch (commands).
	Out Direction = 2
)

func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

var (
	magicV1 = [8]byte{'O', 'F', 'T', 'R', 'A', 'C', 'E', '1'}
	magicV2 = [8]byte{'O', 'F', 'T', 'R', 'A', 'C', 'E', '2'}
)

// Record header sizes: v1 is ts(8) dir(1) dpid(8) len(4); v2 inserts
// trace(8) before the length.
const (
	hdrLenV1 = 21
	hdrLenV2 = 29
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("oftrace: malformed trace")

// Writer appends records to a trace. Safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	count uint64
}

// NewWriter starts a trace on w, writing the file header immediately.
// Writers always emit the current (v2) format.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Record appends one untraced raw frame.
func (w *Writer) Record(dir Direction, dpid uint64, ts time.Time, frame []byte) error {
	return w.RecordTraced(dir, dpid, ts, 0, frame)
}

// RecordTraced appends one raw frame tagged with an event trace id
// (0 = untraced).
func (w *Writer) RecordTraced(dir Direction, dpid uint64, ts time.Time, traceID uint64, frame []byte) error {
	var hdr [hdrLenV2]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(ts.UnixNano()))
	hdr[8] = byte(dir)
	binary.BigEndian.PutUint64(hdr[9:17], dpid)
	binary.BigEndian.PutUint64(hdr[17:25], traceID)
	binary.BigEndian.PutUint32(hdr[25:29], uint32(len(frame)))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame); err != nil {
		return err
	}
	w.count++
	return nil
}

// RecordMessage encodes and appends one untraced message.
func (w *Writer) RecordMessage(dir Direction, dpid uint64, ts time.Time, msg openflow.Message) error {
	return w.RecordMessageTraced(dir, dpid, ts, 0, msg)
}

// RecordMessageTraced encodes and appends one message tagged with an
// event trace id.
func (w *Writer) RecordMessageTraced(dir Direction, dpid uint64, ts time.Time, traceID uint64, msg openflow.Message) error {
	frame, err := openflow.Encode(msg)
	if err != nil {
		return err
	}
	return w.RecordTraced(dir, dpid, ts, traceID, frame)
}

// Count reports how many records have been written.
func (w *Writer) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Flush pushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Record is one traced message.
type Record struct {
	Time  time.Time
	Dir   Direction
	DPID  uint64
	// TraceID links the record to its event's spans (0 = untraced, and
	// always 0 when reading a legacy v1 file).
	TraceID uint64
	Frame   []byte
}

// Decode parses the record's frame.
func (r *Record) Decode() (openflow.Message, error) {
	return openflow.Decode(r.Frame)
}

func (r *Record) String() string {
	kind := "?"
	if msg, err := r.Decode(); err == nil {
		kind = msg.Type().String()
	}
	s := fmt.Sprintf("%s %-3s dpid=%d %s (%dB)",
		r.Time.UTC().Format("15:04:05.000000"), r.Dir, r.DPID, kind, len(r.Frame))
	if r.TraceID != 0 {
		s += fmt.Sprintf(" trace=%016x", r.TraceID)
	}
	return s
}

// Reader iterates a trace stream, accepting both the v1 and v2 file
// formats.
type Reader struct {
	r      *bufio.Reader
	hdrLen int
}

// NewReader opens a trace, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	switch got {
	case magicV1:
		return &Reader{r: br, hdrLen: hdrLenV1}, nil
	case magicV2:
		return &Reader{r: br, hdrLen: hdrLenV2}, nil
	}
	return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
}

// Next returns the next record, or io.EOF at a clean end of trace.
func (r *Reader) Next() (*Record, error) {
	hdr := make([]byte, r.hdrLen)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated record header", ErrBadTrace)
	}
	rec := &Record{
		Time: time.Unix(0, int64(binary.BigEndian.Uint64(hdr[0:8]))),
		Dir:  Direction(hdr[8]),
		DPID: binary.BigEndian.Uint64(hdr[9:17]),
	}
	rest := hdr[17:]
	if r.hdrLen == hdrLenV2 {
		rec.TraceID = binary.BigEndian.Uint64(hdr[17:25])
		rest = hdr[25:]
	}
	n := binary.BigEndian.Uint32(rest)
	if n > openflow.MaxMessageLen {
		return nil, fmt.Errorf("%w: frame length %d", ErrBadTrace, n)
	}
	rec.Frame = make([]byte, n)
	if _, err := io.ReadFull(r.r, rec.Frame); err != nil {
		return nil, fmt.Errorf("%w: truncated frame", ErrBadTrace)
	}
	return rec, nil
}

// ReadAll drains a trace into memory.
func ReadAll(r io.Reader) ([]*Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []*Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Tap records a controller's control traffic: commands via the outbound
// hook, events via a first-in-chain app subscribed to everything.
type Tap struct {
	w *Writer
}

// Attach wires a tap into the controller. Call before registering apps
// so inbound events are recorded ahead of app processing.
func Attach(c *controller.Controller, w *Writer) *Tap {
	t := &Tap{w: w}
	c.AddOutboundHook(func(dpid uint64, msg openflow.Message) (openflow.Message, error) {
		_ = w.RecordMessage(Out, dpid, time.Now(), msg)
		return msg, nil
	})
	c.Register(t)
	return t
}

// Name implements controller.App.
func (*Tap) Name() string { return "oftrace-tap" }

// Subscriptions implements controller.App.
func (*Tap) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }

// HandleEvent implements controller.App: record and pass.
func (t *Tap) HandleEvent(_ controller.Context, ev controller.Event) error {
	if ev.Message == nil {
		return nil // pseudo-events (switch-down) carry no frame
	}
	_ = t.w.RecordMessageTraced(In, ev.DPID, time.Now(), ev.Trace.TraceID, ev.Message)
	return nil
}
