package oftrace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"legosdn/internal/openflow"
)

// v1Trace hand-builds a legacy-format trace (Writers only emit v2).
func v1Trace(frames ...[]byte) []byte {
	var b bytes.Buffer
	b.Write(magicV1[:])
	for i, f := range frames {
		var hdr [hdrLenV1]byte
		binary.BigEndian.PutUint64(hdr[0:8], uint64(i))
		hdr[8] = byte(In)
		binary.BigEndian.PutUint64(hdr[9:17], 1)
		binary.BigEndian.PutUint32(hdr[17:21], uint32(len(f)))
		b.Write(hdr[:])
		b.Write(f)
	}
	return b.Bytes()
}

func v2Trace(frames ...[]byte) []byte {
	var b bytes.Buffer
	w, _ := NewWriter(&b)
	for _, f := range frames {
		_ = w.RecordTraced(Out, 2, time.Unix(0, 42), 7, f)
	}
	_ = w.Flush()
	return b.Bytes()
}

// FuzzReader throws arbitrary bytes at the trace reader in both wire
// formats. The contract under corruption: Next either returns a record,
// io.EOF at a clean end, or an error wrapping ErrBadTrace — it must
// never panic, hang, or allocate a frame bigger than the OpenFlow
// message cap.
func FuzzReader(f *testing.F) {
	hello, _ := openflow.Encode(&openflow.Hello{})
	fm, _ := openflow.Encode(&openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
	})

	f.Add(v1Trace(hello))
	f.Add(v1Trace(hello, fm))
	f.Add(v2Trace(hello))
	f.Add(v2Trace(hello, fm))
	f.Add(v1Trace())
	f.Add(v2Trace())
	// Truncations at every structural boundary.
	full := v2Trace(hello, fm)
	f.Add(full[:4])                    // inside the magic
	f.Add(full[:8])                    // header only
	f.Add(full[:8+hdrLenV2-3])         // inside a record header
	f.Add(full[:len(full)-3])          // inside the last frame
	f.Add(append(full[:len(full):len(full)], 0xFF)) // trailing garbage
	// Corrupt magic and an absurd frame length.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	f.Add(bad)
	huge := v2Trace(hello)
	binary.BigEndian.PutUint32(huge[8+25:8+29], 1<<30)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader error %v does not wrap ErrBadTrace", err)
			}
			return
		}
		for i := 0; i < 1<<16; i++ { // bounded: malformed input must not loop forever
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadTrace) {
					t.Fatalf("Next error %v is neither io.EOF nor ErrBadTrace", err)
				}
				return
			}
			if len(rec.Frame) > openflow.MaxMessageLen {
				t.Fatalf("record frame %d bytes exceeds message cap", len(rec.Frame))
			}
			// Decoding and rendering a hostile frame must not panic.
			_, _ = rec.Decode()
			_ = rec.String()
		}
	})
}

// FuzzRoundTrip checks write-read symmetry: any byte string recorded as
// a frame must come back identical through the v2 writer/reader pair.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(1), uint64(0))
	f.Add([]byte{1, 2, 3}, uint64(9), uint64(0xabc))
	hello, _ := openflow.Encode(&openflow.Hello{})
	f.Add(hello, uint64(3), uint64(7))

	f.Fuzz(func(t *testing.T, frame []byte, dpid, traceID uint64) {
		if len(frame) > openflow.MaxMessageLen {
			frame = frame[:openflow.MaxMessageLen]
		}
		var b bytes.Buffer
		w, err := NewWriter(&b)
		if err != nil {
			t.Fatal(err)
		}
		ts := time.Unix(0, 1234)
		if err := w.RecordTraced(In, dpid, ts, traceID, frame); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(&b)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.DPID != dpid || rec.TraceID != traceID || rec.Dir != In {
			t.Fatalf("metadata mismatch: %+v", rec)
		}
		if !rec.Time.Equal(ts) {
			t.Fatalf("time %v != %v", rec.Time, ts)
		}
		if !bytes.Equal(rec.Frame, frame) {
			t.Fatalf("frame mismatch: %x != %x", rec.Frame, frame)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("want clean EOF, got %v", err)
		}
	})
}
