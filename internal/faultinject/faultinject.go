// Package faultinject supplies the bug population the LegoSDN
// evaluation needs. The paper motivates with the FlowScale bug tracker,
// where 16% of reported bugs were catastrophic (§2.1); since that
// tracker is long gone, this package synthesizes a deterministic bug
// corpus with a configurable catastrophic fraction and wraps real
// SDN-Apps so the bugs fire on reproducible triggers. Both
// deterministic bugs (the paper's main assumption) and non-deterministic
// bugs (§5's clone-switchover target) are supported.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// Severity classifies a bug's effect, mirroring the classes a bug
// tracker would show.
type Severity int

// Bug severities.
const (
	// Catastrophic bugs crash the app (unhandled panic — the 16%).
	Catastrophic Severity = iota
	// Byzantine bugs corrupt output: wrong or harmful rules, no crash.
	ByzantineSev
	// Benign bugs degrade quality (swallowed events) without crashing
	// or violating invariants.
	Benign
)

func (s Severity) String() string {
	switch s {
	case Catastrophic:
		return "catastrophic"
	case ByzantineSev:
		return "byzantine"
	default:
		return "benign"
	}
}

// Bug is one injectable defect.
type Bug struct {
	ID       int
	Severity Severity
	// TriggerKind restricts firing to one event kind.
	TriggerKind controller.EventKind
	// TriggerEvery fires on every Nth matching event (1 = always).
	TriggerEvery int
	// Probability, when < 1, makes the bug non-deterministic: it fires
	// on a matching event with this probability (seeded per wrapper).
	Probability float64
	// Description for tickets and tables.
	Description string

	// BadRule, for byzantine bugs, is installed instead of (or after)
	// the app's own output. nil selects a generated loop/black-hole rule.
	BadRule func(ev controller.Event) *openflow.FlowMod
}

// Deterministic reports whether the bug fires identically on replay.
func (b Bug) Deterministic() bool { return b.Probability >= 1 }

// Wrapper hosts an inner app and fires a bug on its trigger condition.
// It passes through Snapshotter so Crash-Pad treats the wrapped app as
// the original.
//
// HandleEvent is safe for concurrent use: the parallel pipeline
// (controller.Config.Parallel) delivers batches to different wrappers
// on different worker goroutines, and a single wrapper's trigger state
// must not race with readers of Fired.
type Wrapper struct {
	inner controller.App
	bug   Bug

	mu   sync.Mutex
	seen int
	rng  *rand.Rand

	// Fired counts bug activations. Guarded by mu: read it via
	// FiredCount, or directly only after dispatch has quiesced.
	Fired int
}

// Wrap attaches a bug to an app. seed feeds the probabilistic trigger.
func Wrap(inner controller.App, bug Bug, seed int64) *Wrapper {
	if bug.TriggerEvery < 1 {
		bug.TriggerEvery = 1
	}
	if bug.Probability <= 0 {
		bug.Probability = 1
	}
	return &Wrapper{inner: inner, bug: bug, rng: rand.New(rand.NewSource(seed))}
}

// Inner returns the wrapped app.
func (w *Wrapper) Inner() controller.App { return w.inner }

// Bug returns the injected defect.
func (w *Wrapper) Bug() Bug { return w.bug }

// Name implements controller.App (transparent wrapping).
func (w *Wrapper) Name() string { return w.inner.Name() }

// Subscriptions implements controller.App.
func (w *Wrapper) Subscriptions() []controller.EventKind { return w.inner.Subscriptions() }

// FiredCount reports how many times the bug has activated, safely
// against concurrent dispatch.
func (w *Wrapper) FiredCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.Fired
}

// HandleEvent implements controller.App, firing the bug when triggered.
func (w *Wrapper) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if w.triggered(ev) {
		switch w.bug.Severity {
		case Catastrophic:
			panic(fmt.Sprintf("injected bug #%d: %s", w.bug.ID, w.bug.Description))
		case ByzantineSev:
			fm := w.badRule(ev)
			_ = ctx.SendFlowMod(ev.DPID, fm)
			return nil // output corrupted; inner app never sees the event
		case Benign:
			return nil // event swallowed
		}
	}
	return w.inner.HandleEvent(ctx, ev)
}

// triggered advances the trigger state for one event and reports
// whether the bug fires on it; a firing is counted immediately, under
// the same critical section, so Fired can never miss a panic's
// activation.
func (w *Wrapper) triggered(ev controller.Event) bool {
	if ev.Kind != w.bug.TriggerKind {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seen++
	if w.seen%w.bug.TriggerEvery != 0 {
		return false
	}
	if w.bug.Probability < 1 && w.rng.Float64() >= w.bug.Probability {
		return false
	}
	w.Fired++
	return true
}

// BadRulePort is the nonexistent physical port the default byzantine
// rule forwards into.
const BadRulePort uint16 = 997

// badRule produces a byzantine rule: by default a high-priority
// match-everything rule forwarding into a nonexistent port — a
// black-hole the invariant checkers flag on any topology.
func (w *Wrapper) badRule(ev controller.Event) *openflow.FlowMod {
	if w.bug.BadRule != nil {
		return w.bug.BadRule(ev)
	}
	return &openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FlowModAdd,
		Priority: 999,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: BadRulePort}},
	}
}

// Snapshot implements controller.Snapshotter by delegation.
func (w *Wrapper) Snapshot() ([]byte, error) {
	if s, ok := w.inner.(controller.Snapshotter); ok {
		return s.Snapshot()
	}
	return nil, fmt.Errorf("faultinject: %q does not snapshot", w.inner.Name())
}

// Restore implements controller.Snapshotter by delegation.
func (w *Wrapper) Restore(state []byte) error {
	if s, ok := w.inner.(controller.Snapshotter); ok {
		return s.Restore(state)
	}
	return fmt.Errorf("faultinject: %q does not snapshot", w.inner.Name())
}

// Corpus generates n bugs with the given catastrophic fraction
// (byzantine and benign split the rest 50/50), deterministically from
// seed. The default fraction 0.16 reproduces the FlowScale tracker
// population from §2.1.
func Corpus(n int, catastrophicFrac float64, seed int64) []Bug {
	if catastrophicFrac < 0 || catastrophicFrac > 1 {
		catastrophicFrac = 0.16
	}
	r := rand.New(rand.NewSource(seed))
	kinds := []controller.EventKind{
		controller.EventPacketIn,
		controller.EventPacketIn, // packet-ins dominate real event mixes
		controller.EventPortStatus,
		controller.EventFlowRemoved,
		controller.EventSwitchDown,
	}
	nCat := int(float64(n)*catastrophicFrac + 0.5)
	bugs := make([]Bug, 0, n)
	for i := 0; i < n; i++ {
		b := Bug{
			ID:           i + 1,
			TriggerKind:  kinds[r.Intn(len(kinds))],
			TriggerEvery: 1 + r.Intn(5),
		}
		switch {
		case i < nCat:
			b.Severity = Catastrophic
			b.Description = fmt.Sprintf("unhandled exception on %v (every %d)", b.TriggerKind, b.TriggerEvery)
		case (i-nCat)%2 == 0:
			b.Severity = ByzantineSev
			b.Description = fmt.Sprintf("installs looping rule on %v", b.TriggerKind)
		default:
			b.Severity = Benign
			b.Description = fmt.Sprintf("silently drops %v events", b.TriggerKind)
		}
		bugs = append(bugs, b)
	}
	// Shuffle so severity does not correlate with ID order.
	r.Shuffle(len(bugs), func(i, j int) { bugs[i], bugs[j] = bugs[j], bugs[i] })
	for i := range bugs {
		bugs[i].ID = i + 1
	}
	return bugs
}
