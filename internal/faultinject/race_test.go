package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"

	"legosdn/internal/controller"
)

// atomicApp is an inner app safe for concurrent delivery, so this test
// isolates the Wrapper's own trigger state.
type atomicApp struct{ n atomic.Uint64 }

func (a *atomicApp) Name() string                          { return "victim" }
func (a *atomicApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *atomicApp) HandleEvent(controller.Context, controller.Event) error {
	a.n.Add(1)
	return nil
}

// Regression test (run under -race): the parallel pipeline
// (controller.Config.Parallel) delivers batches to wrappers from
// multiple worker goroutines, so a probabilistic bug's trigger state
// (seen counter, RNG, Fired) is hammered concurrently. The Wrapper
// races on all three before it grew its mutex.
func TestWrapperConcurrentDispatch(t *testing.T) {
	app := &atomicApp{}
	w := Wrap(app, Bug{
		ID:          1,
		Severity:    Benign, // swallows events when fired; never panics
		TriggerKind: controller.EventPacketIn,
		Probability: 0.3, // exercises the shared RNG
		Description: "probabilistic swallow",
	}, 42)

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// FiredCount interleaves with dispatch, like a metrics
				// scrape against a live pipeline.
				if i%50 == 0 {
					_ = w.FiredCount()
				}
				_ = w.HandleEvent(&nullCtx{}, pktIn(uint64(g*perWorker+i)))
			}
		}(g)
	}
	wg.Wait()

	total := workers * perWorker
	fired := w.FiredCount()
	if fired == 0 || fired == total {
		t.Fatalf("p=0.3 bug fired %d/%d times", fired, total)
	}
	// Every event was either swallowed by the bug or handled by the app.
	if handled := int(app.n.Load()); handled+fired != total {
		t.Fatalf("handled %d + fired %d != %d dispatched", handled, fired, total)
	}
}
