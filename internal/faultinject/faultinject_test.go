package faultinject

import (
	"strings"
	"sync"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// nullCtx records sends.
type nullCtx struct {
	mu   sync.Mutex
	sent []openflow.Message
}

func (c *nullCtx) SendMessage(dpid uint64, msg openflow.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent = append(c.sent, msg)
	return nil
}
func (c *nullCtx) SendFlowMod(d uint64, m *openflow.FlowMod) error     { return c.SendMessage(d, m) }
func (c *nullCtx) SendPacketOut(d uint64, m *openflow.PacketOut) error { return c.SendMessage(d, m) }
func (c *nullCtx) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return nil, nil
}
func (c *nullCtx) Barrier(uint64) error            { return nil }
func (c *nullCtx) Switches() []uint64              { return nil }
func (c *nullCtx) Ports(uint64) []openflow.PhyPort { return nil }
func (c *nullCtx) Topology() []controller.LinkInfo { return nil }

// countApp counts handled events.
type countApp struct{ n int }

func (a *countApp) Name() string                          { return "victim" }
func (a *countApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *countApp) HandleEvent(controller.Context, controller.Event) error {
	a.n++
	return nil
}
func (a *countApp) Snapshot() ([]byte, error) { return []byte{byte(a.n)}, nil }
func (a *countApp) Restore(b []byte) error {
	a.n = int(b[0])
	return nil
}

func pktIn(seq uint64) controller.Event {
	return controller.Event{Seq: seq, Kind: controller.EventPacketIn,
		Message: &openflow.PacketIn{BufferID: openflow.BufferIDNone}}
}

func TestCatastrophicBugPanics(t *testing.T) {
	w := Wrap(&countApp{}, Bug{ID: 7, Severity: Catastrophic,
		TriggerKind: controller.EventPacketIn, TriggerEvery: 3,
		Description: "nil deref"}, 1)
	crashes := 0
	for i := 1; i <= 6; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					crashes++
					if !strings.Contains(r.(string), "bug #7") {
						t.Errorf("panic value %v", r)
					}
				}
			}()
			w.HandleEvent(&nullCtx{}, pktIn(uint64(i)))
		}()
	}
	if crashes != 2 {
		t.Fatalf("crashes = %d, want 2 (every 3rd of 6)", crashes)
	}
	if w.Fired != 2 {
		t.Fatalf("Fired = %d", w.Fired)
	}
	// Inner app saw only the non-triggering events.
	if w.Inner().(*countApp).n != 4 {
		t.Fatalf("inner handled %d", w.Inner().(*countApp).n)
	}
}

func TestByzantineBugInstallsBadRule(t *testing.T) {
	ctx := &nullCtx{}
	w := Wrap(&countApp{}, Bug{Severity: ByzantineSev,
		TriggerKind: controller.EventPacketIn}, 1)
	if err := w.HandleEvent(ctx, pktIn(1)); err != nil {
		t.Fatal(err)
	}
	if len(ctx.sent) != 1 {
		t.Fatalf("sent = %d", len(ctx.sent))
	}
	fm := ctx.sent[0].(*openflow.FlowMod)
	if fm.Priority != 999 || fm.Actions[0].(*openflow.ActionOutput).Port != BadRulePort {
		t.Fatalf("bad rule %+v", fm)
	}
}

func TestBenignBugSwallowsEvent(t *testing.T) {
	inner := &countApp{}
	w := Wrap(inner, Bug{Severity: Benign, TriggerKind: controller.EventPacketIn}, 1)
	w.HandleEvent(&nullCtx{}, pktIn(1))
	if inner.n != 0 {
		t.Fatal("benign bug did not swallow the event")
	}
	// Non-matching kinds pass through.
	w.HandleEvent(&nullCtx{}, controller.Event{Kind: controller.EventSwitchUp})
	if inner.n != 1 {
		t.Fatal("other kinds should pass through")
	}
}

func TestNonDeterministicBug(t *testing.T) {
	fire := 0
	for trial := 0; trial < 200; trial++ {
		w := Wrap(&countApp{}, Bug{Severity: Benign,
			TriggerKind: controller.EventPacketIn, Probability: 0.3}, int64(trial))
		w.HandleEvent(&nullCtx{}, pktIn(1))
		fire += w.Fired
	}
	if fire < 30 || fire > 110 {
		t.Fatalf("p=0.3 bug fired %d/200 times", fire)
	}
	// Same seed, same outcome (reproducible non-determinism).
	a := Wrap(&countApp{}, Bug{Severity: Benign, TriggerKind: controller.EventPacketIn, Probability: 0.5}, 42)
	b := Wrap(&countApp{}, Bug{Severity: Benign, TriggerKind: controller.EventPacketIn, Probability: 0.5}, 42)
	for i := 0; i < 20; i++ {
		a.HandleEvent(&nullCtx{}, pktIn(uint64(i)))
		b.HandleEvent(&nullCtx{}, pktIn(uint64(i)))
	}
	if a.Fired != b.Fired {
		t.Fatal("same seed diverged")
	}
	if a.Bug().Deterministic() {
		t.Fatal("p<1 should not report deterministic")
	}
}

func TestWrapperSnapshotDelegation(t *testing.T) {
	inner := &countApp{n: 9}
	w := Wrap(inner, Bug{Severity: Benign, TriggerKind: controller.EventSwitchUp}, 1)
	state, err := w.Snapshot()
	if err != nil || state[0] != 9 {
		t.Fatalf("snapshot %v %v", state, err)
	}
	inner.n = 0
	if err := w.Restore(state); err != nil || inner.n != 9 {
		t.Fatalf("restore %v n=%d", err, inner.n)
	}
}

func TestCorpusComposition(t *testing.T) {
	bugs := Corpus(100, 0.16, 7)
	if len(bugs) != 100 {
		t.Fatalf("corpus size %d", len(bugs))
	}
	counts := map[Severity]int{}
	ids := map[int]bool{}
	for _, b := range bugs {
		counts[b.Severity]++
		if ids[b.ID] {
			t.Fatal("duplicate bug id")
		}
		ids[b.ID] = true
		if b.TriggerEvery < 1 || b.Description == "" {
			t.Fatalf("malformed bug %+v", b)
		}
	}
	if counts[Catastrophic] != 16 {
		t.Fatalf("catastrophic = %d, want 16", counts[Catastrophic])
	}
	if counts[ByzantineSev] != 42 || counts[Benign] != 42 {
		t.Fatalf("byzantine/benign = %d/%d", counts[ByzantineSev], counts[Benign])
	}
	// Deterministic for a given seed.
	again := Corpus(100, 0.16, 7)
	for i := range bugs {
		if bugs[i].Description != again[i].Description || bugs[i].Severity != again[i].Severity {
			t.Fatal("corpus not reproducible")
		}
	}
}
