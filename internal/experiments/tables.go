package experiments

import (
	"fmt"
	"strings"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/appvisor"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/workload"
)

func newRegistryApp(name string) controller.App {
	app, err := apps.New(name)
	if err != nil {
		panic(err)
	}
	return app
}

// Table1FateSharing reproduces Table 1's point: in the monolithic
// stack, a failure anywhere in the stack takes the control plane down,
// while LegoSDN contains app failures. For each architecture it
// crashes the SDN-App layer and reports which components survive.
func Table1FateSharing() Table {
	t := Table{
		ID:    "T1",
		Title: "Fate sharing: SDN-App crash vs surviving components (paper Table 1)",
		Columns: []string{"architecture", "controller up", "bystander app up",
			"buggy app recovered", "new flows routed"},
		Notes: []string{
			"injects a deterministic crash into learning-switch; bystander is stats-collector",
			"monolithic reproduces FloodLight's unhandled-exception fate sharing (paper §2.1)",
		},
	}
	for _, mode := range []core.Mode{core.ModeMonolithic, core.ModeIsolated, core.ModeLegoSDN} {
		stack := core.NewStack(core.Config{Mode: mode})
		n := netsim.Single(3, nil)
		stack.AddApp(newPoisonLearningSwitch(6666))
		stack.AddApp(func() controller.App { return newRegistryApp("stats-collector") })
		connect(stack, n)

		// Healthy traffic, then the poisoned packet.
		sendTCP(n, "h1", "h2", 1000, 80)
		waitCond(2*time.Second, func() bool { return n.Host("h2").ReceivedCount() >= 1 })
		sendTCP(n, "h1", "h2", 9999, 6666)
		drainQuiesce(stack.Controller, 30*time.Millisecond)

		controllerUp := !stack.Controller.Crashed()
		bystanderUp := controllerUp && !stack.Controller.AppDisabled("stats-collector")
		recovered := controllerUp && !stack.Controller.AppDisabled("learning-switch")

		// New flow after the crash: does the control loop still work?
		sendTCP(n, "h2", "h3", 2000, 80) // unknown dst -> needs controller flood
		routed := waitCond(time.Second, func() bool { return n.Host("h3").ReceivedCount() >= 1 })

		t.AddRow(mode.String(), yesNo(controllerUp), yesNo(bystanderUp),
			yesNo(recovered), yesNo(routed))
		stack.Close()
	}
	return t
}

// Table2AppSurvey reproduces Table 2: the diverse app ecosystem runs
// unmodified under LegoSDN. Each survey app runs in a stub, processes
// live traffic and is probed for liveness.
func Table2AppSurvey() Table {
	t := Table{
		ID:    "T2",
		Title: "App survey: Table 2's ecosystem running unmodified in stubs",
		Columns: []string{"app", "paper analogue", "events relayed",
			"commands sent", "stateful (snapshots)", "unmodified"},
		Notes: []string{"every app is the same code the monolithic controller runs; only the hosting differs (§3.1)"},
	}
	analogue := map[string]string{
		"hub":             "Hub (bundled, §4.1)",
		"flooder":         "Flooder (bundled, §4.1)",
		"learning-switch": "LearningSwitch (bundled, §4.1)",
		"routing":         "RouteFlow (Table 2)",
		"flowscale":       "FlowScale (Table 2)",
		"firewall":        "BigTap (Table 2)",
		"stats-collector": "counter-store service (§4.1)",
		"spanning-tree":   "topology/STP module (FloodLight core)",
	}
	for _, name := range apps.Names() {
		name := name
		stack := core.NewStack(core.Config{Mode: core.ModeLegoSDN})
		n := netsim.Single(4, nil)
		stack.AddApp(func() controller.App { return newRegistryApp(name) })
		connect(stack, n)
		// Traffic mix: a handful of flows plus a port flap.
		gen := workload.NewTrafficGen(n, 7)
		gen.SendFlows(12)
		drainQuiesce(stack.Controller, 30*time.Millisecond)

		proxy := stack.Proxy(name)
		var relayed, cmds uint64
		stateful := false
		if proxy != nil {
			relayed = proxy.EventsRelayed.Load()
			if _, err := proxy.Snapshot(); err == nil {
				stateful = true
			}
		}
		for _, sw := range n.Switches() {
			cmds += sw.FlowModsRx.Load()
		}
		t.AddRow(name, analogue[name], fmt.Sprint(relayed), fmt.Sprint(cmds),
			yesNo(stateful), "yes")
		stack.Close()
	}
	return t
}

// Figure1ArchLatency reproduces Figure 1's architectural comparison as
// the measurable quantity it implies: the per-event cost of the
// proxy/stub indirection, against direct in-process dispatch, plus the
// full Crash-Pad pipeline. It also verifies the §4.1 claim that
// message processing order is preserved.
func Figure1ArchLatency(events int) Table {
	t := Table{
		ID:    "F1",
		Title: "Figure 1: per-event dispatch cost by architecture",
		Columns: []string{"architecture", "events", "total", "per event",
			"vs monolithic", "order preserved"},
		Notes: []string{
			"AppVisor adds serialization + two UDP hops per event (§3.1); Crash-Pad adds a checkpoint per event (§3.3)",
			"the paper argues this latency is acceptable because the controller already slows flow setup ~4x (§3.1, citing DevoFlow)",
		},
	}
	trace := workload.PacketInEvents(events, 1, 8, 11)

	// Monolithic: direct call.
	mono := newRegistryApp("learning-switch")
	sink := &captureCtx{}
	start := time.Now()
	for _, ev := range trace {
		_ = mono.HandleEvent(sink, ev)
	}
	monoDur := time.Since(start)
	monoOrder := sink.orderSignature()

	// AppVisor: proxy + stub RPC.
	sink2 := &captureCtx{}
	proxy, err := appvisor.NewProxy("learning-switch", sink2,
		appvisor.InProcessFactory(func() controller.App { return newRegistryApp("learning-switch") },
			appvisor.StubOptions{}),
		appvisor.ProxyOptions{})
	if err != nil {
		panic(err)
	}
	start = time.Now()
	for _, ev := range trace {
		_ = proxy.HandleEvent(nil, ev)
	}
	isoDur := time.Since(start)
	isoOrder := sink2.orderSignature()

	// Full LegoSDN: Crash-Pad around the proxy (checkpoint every event).
	sink3 := &captureCtx{}
	proxy3, err := appvisor.NewProxy("learning-switch", sink3,
		appvisor.InProcessFactory(func() controller.App { return newRegistryApp("learning-switch") },
			appvisor.StubOptions{}),
		appvisor.ProxyOptions{})
	if err != nil {
		panic(err)
	}
	cp := crashpad.New(crashpad.Options{})
	start = time.Now()
	for _, ev := range trace {
		cp.RunEvent(proxy3, sink3, ev)
	}
	fullDur := time.Since(start)
	fullOrder := sink3.orderSignature()

	proxy.Close()
	proxy3.Close()

	perEvent := func(d time.Duration) time.Duration { return d / time.Duration(events) }
	ratio := func(d time.Duration) string {
		return fmt.Sprintf("%.1fx", float64(d)/float64(monoDur))
	}
	ordered := monoOrder == isoOrder && monoOrder == fullOrder
	t.AddRow("monolithic (direct call)", fmt.Sprint(events), monoDur.Round(time.Microsecond).String(),
		us(perEvent(monoDur)), "1.0x", yesNo(true))
	t.AddRow("appvisor (UDP proxy/stub)", fmt.Sprint(events), isoDur.Round(time.Microsecond).String(),
		us(perEvent(isoDur)), ratio(isoDur), yesNo(ordered))
	t.AddRow("legosdn (+ checkpoint/txn)", fmt.Sprint(events), fullDur.Round(time.Microsecond).String(),
		us(perEvent(fullDur)), ratio(fullDur), yesNo(ordered))
	return t
}

// captureCtx collects outbound messages and a signature of their order,
// so architectures can be compared for §4.1's "message processing order
// is identical" property. Reads return fixed values.
type captureCtx struct {
	msgs []string
}

func (c *captureCtx) SendMessage(dpid uint64, msg openflow.Message) error {
	b, err := openflow.Encode(msg)
	if err != nil {
		return err
	}
	if len(b) >= 8 {
		b[4], b[5], b[6], b[7] = 0, 0, 0, 0 // xids differ by design
	}
	c.msgs = append(c.msgs, fmt.Sprintf("%d|%x", dpid, b))
	return nil
}
func (c *captureCtx) SendFlowMod(d uint64, fm *openflow.FlowMod) error {
	return c.SendMessage(d, fm)
}
func (c *captureCtx) SendPacketOut(d uint64, po *openflow.PacketOut) error {
	return c.SendMessage(d, po)
}
func (c *captureCtx) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return &openflow.StatsReply{}, nil
}
func (c *captureCtx) Barrier(uint64) error            { return nil }
func (c *captureCtx) Switches() []uint64              { return []uint64{1} }
func (c *captureCtx) Ports(uint64) []openflow.PhyPort { return nil }
func (c *captureCtx) Topology() []controller.LinkInfo { return nil }

func (c *captureCtx) orderSignature() string {
	return strings.Join(c.msgs, "\n")
}
