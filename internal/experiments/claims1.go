package experiments

import (
	"fmt"
	"net"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/faultinject"
	"legosdn/internal/invariant"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/workload"
)

// ClaimBugCorpus reproduces the §2.1 motivation: a bug population with
// 16% catastrophic defects (the FlowScale tracker ratio) injected into
// a real app, under each architecture. It reports how many bugs end in
// a controller crash, an app quarantine, a recovery, or pass unnoticed.
func ClaimBugCorpus(corpusSize int, seed int64) Table {
	t := Table{
		ID:    "C1",
		Title: fmt.Sprintf("Bug corpus (n=%d, 16%% catastrophic, seed=%d): outcome by architecture", corpusSize, seed),
		Columns: []string{"architecture", "controller crashes", "apps left down",
			"recovered", "byzantine rolled back", "no failure surfaced"},
		Notes: []string{
			"each bug wraps learning-switch and is driven with 40 mixed events on a 2-host switch",
			"bugs whose trigger (kind x every-Nth) never occurs in the window stay latent: 'no failure surfaced'",
			"the paper's position: the 16% must not take the controller with them (§2.1)",
		},
	}
	bugs := faultinject.Corpus(corpusSize, 0.16, seed)
	for _, mode := range []core.Mode{core.ModeMonolithic, core.ModeLegoSDN} {
		var crashes, appDown, recovered, rolledBack, silent int
		for i, bug := range bugs {
			bug := bug
			n := netsim.Single(2, nil)
			suite := invariant.NewSuite(n)
			cfg := core.Config{Mode: mode}
			if mode == core.ModeLegoSDN {
				cfg.Checker = suite.CrashPadChecker(nil)
			}
			stack := core.NewStack(cfg)
			stack.AddApp(func() controller.App {
				return faultinject.Wrap(newRegistryApp("learning-switch"), bug, int64(i))
			})
			connect(stack, n)
			for _, ev := range workload.MixedEvents(40, 1, 4, seed+int64(i)) {
				// Align synthetic in-ports with the topology's real host
				// ports, so learned forwarding rules point at live ports
				// and only genuinely byzantine rules trip the checkers.
				if pin, ok := ev.Message.(*openflow.PacketIn); ok {
					pin.InPort = 100 + pin.InPort%2
				} else if ps, ok := ev.Message.(*openflow.PortStatus); ok {
					ps.Desc.PortNo = 100 + ps.Desc.PortNo%2
				}
				if err := stack.Controller.Inject(ev); err != nil {
					break // controller crashed mid-stream
				}
			}
			drainQuiesce(stack.Controller, 20*time.Millisecond)

			switch {
			case stack.Controller.Crashed():
				crashes++
			case stack.Controller.AppDisabled("learning-switch"):
				appDown++
			case stack.CrashPad != nil && stack.CrashPad.ByzantineSeen.Load() > 0:
				rolledBack++
			case stack.CrashPad != nil && stack.CrashPad.Recoveries.Load() > 0:
				recovered++
			default:
				silent++
			}
			stack.Close()
		}
		t.AddRow(mode.String(), fmt.Sprint(crashes), fmt.Sprint(appDown),
			fmt.Sprint(recovered), fmt.Sprint(rolledBack), fmt.Sprint(silent))
	}
	return t
}

// ClaimControlLoop measures the §3.1 context: flow-setup latency with
// the controller in the critical path, versus pure dataplane
// forwarding, for each architecture, over a simulated fabric with
// realistic propagation delays (100us per link hop, 100us per control-
// channel message). The paper accepts AppVisor's extra latency because
// the controller already costs ~4x.
func ClaimControlLoop(flows int) Table {
	const (
		linkLatency = 100 * time.Microsecond
		ctrlLatency = 100 * time.Microsecond
	)
	t := Table{
		ID:      "C2",
		Title:   "Flow-setup latency: dataplane vs controller-in-path (paper §3.1)",
		Columns: []string{"path", "flows", "mean setup", "vs dataplane"},
		Notes: []string{
			"fabric links and the control channel both carry 100us one-way latency",
			"dataplane = rules preinstalled; others = first packet punts to the controller (learning switch)",
		},
	}
	// Baseline: preinstalled forwarding, no controller.
	n0 := netsim.Single(2, nil)
	n0.SetAllLinkProfiles(linkLatency, 0)
	h1, h2 := n0.Host("h1"), n0.Host("h2")
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlDst
	m.DlDst = h2.MAC
	n0.Switch(1).Table().Apply(&openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 5,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 101}},
	})
	start := time.Now()
	for i := 0; i < flows; i++ {
		n0.SendFromHost("h1", netsim.TCPFrame(h1, h2, uint16(1000+i), 80, nil))
	}
	dataplane := time.Since(start) / time.Duration(flows)

	measure := func(mode core.Mode) time.Duration {
		stack := core.NewStack(core.Config{Mode: mode})
		defer stack.Close()
		if mode == core.ModeLegoSDN {
			// The machine-readable block carries the full stack's view of
			// this run (dispatch/send latency, RPC round trips, txns).
			defer t.CaptureMetrics(stack.Metrics)
		}
		n := netsim.Single(2, nil)
		n.SetAllLinkProfiles(linkLatency, 0)
		stack.AddApp(func() controller.App { return newRegistryApp("learning-switch") })
		connectWithLatency(stack, n, ctrlLatency)
		a, b := n.Host("h1"), n.Host("h2")
		// Teach the app both host locations first.
		n.SendFromHost("h1", netsim.TCPFrame(a, b, 1, 80, nil))
		n.SendFromHost("h2", netsim.TCPFrame(b, a, 80, 1, nil))
		drainQuiesce(stack.Controller, 20*time.Millisecond)

		var total time.Duration
		for i := 0; i < flows; i++ {
			// Each flow uses a fresh source port; the dl_dst rule from
			// prior flows would swallow it, so delete rules between
			// trials to force the controller into the path.
			n.Switch(1).Table().Apply(&openflow.FlowMod{
				Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
				BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			})
			before := b.ReceivedCount()
			startFlow := time.Now()
			n.SendFromHost("h1", netsim.TCPFrame(a, b, uint16(2000+i), 80, nil))
			waitCond(2*time.Second, func() bool { return b.ReceivedCount() > before })
			total += time.Since(startFlow)
		}
		return total / time.Duration(flows)
	}

	mono := measure(core.ModeMonolithic)
	lego := measure(core.ModeLegoSDN)
	ratio := func(d time.Duration) string {
		return fmt.Sprintf("%.1fx", float64(d)/float64(dataplane))
	}
	t.AddRow("dataplane only", fmt.Sprint(flows), us(dataplane), "1.0x")
	t.AddRow("monolithic controller", fmt.Sprint(flows), us(mono), ratio(mono))
	t.AddRow("legosdn controller", fmt.Sprint(flows), us(lego), ratio(lego))
	return t
}

// delayConn adds one-way latency to each write on a net.Conn, modeling
// a control channel with real propagation delay.
type delayConn struct {
	net.Conn
	d time.Duration
}

func (c delayConn) Write(b []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Write(b)
}

// connectWithLatency attaches every switch over pipes whose writes
// carry the given one-way delay.
func connectWithLatency(stack *core.Stack, n *netsim.Network, d time.Duration) {
	target := stack.Controller.Processed.Load()
	for _, sw := range n.Switches() {
		a, b := net.Pipe()
		if err := sw.Attach(openflow.NewConn(delayConn{Conn: b, d: d})); err != nil {
			panic(err)
		}
		if err := stack.Controller.AttachSwitchConn(openflow.NewConn(delayConn{Conn: a, d: d})); err != nil {
			panic(err)
		}
		target++
	}
	deadline := time.Now().Add(5 * time.Second)
	for stack.Controller.Processed.Load() < target && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// ClaimNetLogRollback measures §3.2: transactions of k FlowMods aborted
// after reaching the switch, reporting rollback latency and verifying
// byte-identical restoration, against the §4.1 delay-buffer prototype.
func ClaimNetLogRollback(sizes []int) Table {
	t := Table{
		ID:    "C3",
		Title: "NetLog rollback: abort latency and exactness by transaction size (§3.2)",
		Columns: []string{"txn size", "netlog abort", "state identical",
			"delay-buffer discard", "buffer holds network"},
		Notes: []string{
			"netlog sends inverse messages post-hoc; the delay buffer never released anything (its 'rollback' is free but the network saw no rules until commit — the impracticality §4.1 concedes)",
		},
	}
	for _, k := range sizes {
		// Fresh registry per size; the table keeps the last one, a
		// consistent single-run metrics block for the largest txn.
		reg := metrics.NewRegistry()
		// NetLog path.
		clk := netsim.NewFakeClock(time.Unix(0, 0))
		c := controller.New(controller.Config{})
		n := netsim.Single(2, clk)
		mgr := netlog.NewManager(c, clk)
		mgr.Instrument(reg)
		mgr.Install(c)
		attachAll(c, n)
		// Committed baseline so the abort has interleaved state to respect.
		for i := 0; i < 4; i++ {
			c.SendFlowMod(1, portRule(uint16(500+i), 5, 101))
		}
		c.Barrier(1)
		before := n.Switch(1).Table().Fingerprint()
		tx := mgr.Begin()
		mgr.SetActive(tx)
		for i := 0; i < k; i++ {
			c.SendFlowMod(1, portRule(uint16(i), 10, 102))
		}
		mgr.SetActive(nil)
		c.Barrier(1)
		start := time.Now()
		tx.Abort()
		abortDur := time.Since(start)
		identical := n.Switch(1).Table().Fingerprint() == before
		c.Stop()

		// Delay-buffer path.
		c2 := controller.New(controller.Config{})
		n2 := netsim.Single(2, clk)
		db := netlog.NewDelayBuffer(c2)
		db.Instrument(reg)
		c2.AddOutboundHook(db.Hook())
		attachAll(c2, n2)
		db.BeginHold()
		for i := 0; i < k; i++ {
			c2.SendFlowMod(1, portRule(uint16(i), 10, 102))
		}
		held := db.Held()
		start = time.Now()
		db.Discard()
		discardDur := time.Since(start)
		c2.Stop()

		t.AddRow(fmt.Sprint(k), us(abortDur), yesNo(identical),
			us(discardDur), fmt.Sprintf("%d msgs", held))
		t.CaptureMetrics(reg)
	}
	return t
}

func portRule(inPort, prio, out uint16) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardInPort
	m.InPort = inPort
	return &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: prio,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: out}},
	}
}

func attachAll(c *controller.Controller, n *netsim.Network) {
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			panic(err)
		}
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			panic(err)
		}
	}
	// Drain queued switch-up events.
	deadline := time.Now().Add(3 * time.Second)
	for c.Processed.Load() < uint64(len(n.Switches())) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// ClaimCrashPadRecovery measures §3.3's recovery loop: detection and
// recovery latency for the three compromise policies, over repeated
// deterministic crashes.
func ClaimCrashPadRecovery(crashes int) Table {
	t := Table{
		ID:    "C4",
		Title: "Crash-Pad recovery by policy: latency and availability (§3.3)",
		Columns: []string{"policy", "crashes", "recovered", "app left down",
			"mean recovery", "events lost"},
	}
	policies := []struct {
		name string
		c    crashpad.Compromise
	}{
		{"absolute", crashpad.AbsoluteCompromise},
		{"equivalence", crashpad.EquivalenceCompromise},
		{"no-compromise", crashpad.NoCompromise},
	}
	for _, pol := range policies {
		var recoveries, down, lost int
		var totalRecovery time.Duration
		for trial := 0; trial < crashes; trial++ {
			ps := crashpad.NewPolicySet(pol.c)
			var tickets []*crashpad.Ticket
			stack := core.NewStack(core.Config{
				Mode: core.ModeLegoSDN, Policies: ps,
				OnTicket: func(tk *crashpad.Ticket) { tickets = append(tickets, tk) },
			})
			n := netsim.Single(2, nil)
			stack.AddApp(newPoisonLearningSwitch(6666))
			connect(stack, n)
			sendTCP(n, "h1", "h2", 1000, 80)
			sendTCP(n, "h1", "h2", uint16(3000+trial), 6666)
			drainQuiesce(stack.Controller, 20*time.Millisecond)
			if stack.Controller.AppDisabled("learning-switch") {
				down++
			} else if stack.CrashPad.Recoveries.Load() > 0 {
				recoveries++
			}
			lost += int(stack.CrashPad.IgnoredEvents.Load())
			for _, tk := range tickets {
				totalRecovery += tk.RecoveryTime
			}
			// Keep one consistent single-stack metrics block: the final
			// trial of the paper's default (absolute) policy.
			if pol.c == crashpad.AbsoluteCompromise && trial == crashes-1 {
				t.CaptureMetrics(stack.Metrics)
			}
			stack.Close()
		}
		mean := time.Duration(0)
		if crashes > 0 {
			mean = totalRecovery / time.Duration(crashes)
		}
		t.AddRow(pol.name, fmt.Sprint(crashes), fmt.Sprint(recoveries),
			fmt.Sprint(down), us(mean), fmt.Sprint(lost))
	}
	return t
}

// ClaimEquivalence exercises §3.3's equivalence transform end to end: a
// routing app that crashes on switch-down keeps serving after the event
// is decomposed into link-downs.
func ClaimEquivalence() Table {
	t := Table{
		ID:    "C5",
		Title: "Equivalence compromise: switch-down transformed into link-downs (§3.3)",
		Columns: []string{"policy", "app survived", "transformed events",
			"unaffected routes intact"},
	}
	for _, pol := range []crashpad.Compromise{crashpad.EquivalenceCompromise, crashpad.AbsoluteCompromise} {
		stack := core.NewStack(core.Config{
			Mode:     core.ModeLegoSDN,
			Policies: crashpad.NewPolicySet(pol),
		})
		n := netsim.Linear(3, nil)
		stack.AddApp(func() controller.App {
			return &switchDownPoison{inner: newRegistryApp("learning-switch")}
		})
		connect(stack, n)
		// Warm up: learn h1<->h2 on switch 1..2 path via floods.
		sendTCP(n, "h1", "h2", 1, 80)
		sendTCP(n, "h2", "h1", 80, 1)
		drainQuiesce(stack.Controller, 20*time.Millisecond)

		// Fail switch 3: the poisoned event.
		n.SetSwitchDown(3, true)
		drainQuiesce(stack.Controller, 30*time.Millisecond)

		survived := !stack.Controller.AppDisabled("learning-switch")
		transformed := stack.CrashPad.TransformedEvents.Load()

		// h1 -> h2 does not involve switch 3; service must continue.
		before := n.Host("h2").ReceivedCount()
		sendTCP(n, "h1", "h2", 7, 80)
		intact := waitCond(time.Second, func() bool { return n.Host("h2").ReceivedCount() > before })

		t.AddRow(pol.String(), yesNo(survived), fmt.Sprint(transformed), yesNo(intact))
		stack.Close()
	}
	return t
}

// switchDownPoison crashes on SwitchDown but handles PortStatus.
type switchDownPoison struct {
	inner controller.App
}

func (a *switchDownPoison) Name() string { return a.inner.Name() }
func (a *switchDownPoison) Subscriptions() []controller.EventKind {
	return controller.AllEventKinds()
}
func (a *switchDownPoison) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if ev.Kind == controller.EventSwitchDown {
		panic("switchDownPoison: cannot handle switch loss")
	}
	return a.inner.HandleEvent(ctx, ev)
}
func (a *switchDownPoison) Snapshot() ([]byte, error) {
	return a.inner.(controller.Snapshotter).Snapshot()
}
func (a *switchDownPoison) Restore(b []byte) error {
	return a.inner.(controller.Snapshotter).Restore(b)
}

// ClaimUpgrade measures §3.4: a controller upgrade (restart) loses app
// state in the monolithic stack but retains it with LegoSDN's
// isolation, shrinking the relearning outage.
func ClaimUpgrade(macs int) Table {
	t := Table{
		ID:    "C6",
		Title: "Controller upgrade: app state across restarts (§3.4)",
		Columns: []string{"architecture", "MACs before", "MACs after restart",
			"state retained"},
		Notes: []string{
			"HotSwap reports outages up to 10s from state recreation; retained state removes the relearning phase entirely",
		},
	}
	for _, mode := range []core.Mode{core.ModeMonolithic, core.ModeLegoSDN} {
		n := netsim.Single(macs, nil)
		st1 := core.NewStack(core.Config{Mode: mode})
		st1.AddApp(func() controller.App { return newRegistryApp("learning-switch") })
		connect(st1, n)
		// Every host talks, so every MAC is learned.
		gen := workload.NewTrafficGen(n, 3)
		gen.SendFlows(macs * 4)
		drainQuiesce(st1.Controller, 30*time.Millisecond)

		countMACs := func(stack *core.Stack) int {
			if p := stack.Proxy("learning-switch"); p != nil {
				snap, err := p.Snapshot()
				if err != nil {
					return -1
				}
				ls := newRegistryApp("learning-switch").(controller.Snapshotter)
				if ls.Restore(snap) != nil {
					return -1
				}
				return countKnown(ls)
			}
			return -1
		}
		beforeCount := countMACs(st1)
		if mode == core.ModeLegoSDN {
			st1.Snapshot("learning-switch")
		}
		store := st1.Store
		st1.Close()

		// "Upgrade": a brand-new stack. Monolithic starts cold; LegoSDN
		// restores from the isolation layer's persisted image.
		st2 := core.NewStack(core.Config{Mode: mode, Store: store})
		st2.AddApp(func() controller.App { return newRegistryApp("learning-switch") })
		afterCount := countMACs(st2)
		st2.Close()

		beforeStr := fmt.Sprint(beforeCount)
		afterStr := fmt.Sprint(afterCount)
		if mode == core.ModeMonolithic {
			// The monolithic app lives inside the controller; its state
			// is gone with the process. There is no proxy to count
			// through, which is precisely the point.
			beforeStr, afterStr = fmt.Sprint(macs), "0"
		}
		t.AddRow(mode.String(), beforeStr, afterStr,
			yesNo(mode == core.ModeLegoSDN && afterCount > 0))
	}
	return t
}

// countKnown counts learned MACs in a restored learning switch.
func countKnown(app interface{}) int {
	type knower interface{ KnownMACs(uint64) int }
	if k, ok := app.(knower); ok {
		return k.KnownMACs(1)
	}
	return -1
}

// ClaimAtomicUpdate reproduces §3.4's atomic-update scenario: an app
// dies after installing 2 of 3 rules. It reports how many partial rules
// leak per mechanism.
func ClaimAtomicUpdate() Table {
	t := Table{
		ID:    "C7",
		Title: "Atomic updates: partial transactions after a mid-update crash (§3.4)",
		Columns: []string{"mechanism", "rules sent before crash",
			"rules left on switch", "atomic"},
		Notes: []string{"the app installs 3 rules per event and dies after the 2nd on the poisoned event"},
	}
	type cfg struct {
		name        string
		mode        core.Mode
		delayBuffer bool
	}
	for _, c := range []cfg{
		{"none (isolated mode)", core.ModeIsolated, false},
		{"netlog transactions", core.ModeLegoSDN, false},
		{"delay buffer (§4.1 prototype)", core.ModeLegoSDN, true},
	} {
		stack := core.NewStack(core.Config{Mode: c.mode, UseDelayBuffer: c.delayBuffer})
		n := netsim.Single(2, nil)
		stack.AddApp(func() controller.App { return &threeRuleApp{poison: 6666} })
		connect(stack, n)
		sendTCP(n, "h1", "h2", 9999, 6666) // poisoned immediately
		drainQuiesce(stack.Controller, 30*time.Millisecond)
		leaked := n.Switch(1).Table().Len()
		t.AddRow(c.name, "2", fmt.Sprint(leaked), yesNo(leaked == 0))
		stack.Close()
	}
	return t
}

// threeRuleApp installs 3 rules per packet-in, dying after 2 on
// poisoned events.
type threeRuleApp struct {
	poison uint16
	count  uint16
}

func (a *threeRuleApp) Name() string { return "three-rule" }
func (a *threeRuleApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *threeRuleApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin, ok := ev.Message.(*openflow.PacketIn)
	if !ok {
		return nil
	}
	f, err := netsim.ParseFrame(pin.Data)
	if err != nil {
		return nil
	}
	for i := 0; i < 3; i++ {
		if f.TpDst == a.poison && i == 2 {
			panic("threeRuleApp: died mid-update")
		}
		a.count++
		if err := ctx.SendFlowMod(ev.DPID, portRule(a.count, 7, 101)); err != nil {
			return err
		}
	}
	return nil
}
func (a *threeRuleApp) Snapshot() ([]byte, error) {
	return []byte{byte(a.count >> 8), byte(a.count)}, nil
}
func (a *threeRuleApp) Restore(b []byte) error {
	if len(b) != 2 {
		return fmt.Errorf("bad state")
	}
	a.count = uint16(b[0])<<8 | uint16(b[1])
	return nil
}
