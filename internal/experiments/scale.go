package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/workload"
)

// countApp is a zero-delay handler: the P2 capacity measurement wants
// the pipeline's own ceiling, so the app does nothing but count. It
// implements BatchApp so the AppVisor stub side consumes a coalesced
// batch in one call, mirroring how a throughput-conscious app would.
type countApp struct {
	name    string
	handled *atomic.Uint64
}

func (a *countApp) Name() string { return a.name }
func (a *countApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *countApp) HandleEvent(_ controller.Context, _ controller.Event) error {
	a.handled.Add(1)
	return nil
}
func (a *countApp) HandleEventBatch(_ controller.Context, evs []controller.Event) error {
	a.handled.Add(uint64(len(evs)))
	return nil
}

// scaleFlowMod builds the exact-match FlowMod a learning switch would
// install for flow id in the space.
func scaleFlowMod(space workload.FlowSpace, id uint64) *openflow.FlowMod {
	src, dst, sport, dport := space.Tuple(id)
	m := openflow.Match{
		InPort: uint16(1 + id%4),
		DlSrc:  netsim.HostMAC(src), DlDst: netsim.HostMAC(dst),
		DlType: netsim.EtherTypeIPv4, NwProto: netsim.IPProtoTCP,
		NwSrc: netsim.HostIP(src), NwDst: netsim.HostIP(dst),
		TpSrc: sport, TpDst: dport,
	}
	return &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 100,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
}

// ClaimScale is the P2 experiment: the data plane at production scale.
// Three sections share one table:
//
//  1. topology-build rows prove the fat-tree and Clos generators reach
//     thousands of switches in milliseconds;
//  2. flow-table rows measure the indexed Lookup against the retained
//     linear-scan reference at a 10k-entry table (the paper-facing
//     claim is a >=10x win; the index typically lands far beyond it);
//  3. capacity rows drive pre-generated PacketIn streams (distinct
//     five-tuples from a seeded flow space) through the full AppVisor
//     path — serial vs parallel-batched dispatch, 1 and 4 apps — and
//     record sustained events/sec, targeting >=100k on one core.
func ClaimScale(quick bool) Table {
	events := 200_000
	lookups := 200_000
	linearLookups := 2_000
	if quick {
		events = 5_000
		lookups = 20_000
		linearLookups = 200
	}

	t := Table{
		ID:    "P2",
		Title: "Data-plane scale: large topologies, indexed lookups, AppVisor capacity",
		Columns: []string{"section", "configuration", "size", "elapsed",
			"rate", "detail"},
		Notes: []string{
			"topology rows build the fabric in-process (switches, links, hosts)",
			"lookup rows run one 10k-entry exact-match table; linear is the retained pre-index reference scan",
			"capacity rows push distinct-flow PacketIns through controller dispatch + AppVisor UDP relay with zero-delay handlers",
		},
		Values: map[string]float64{"events": float64(events)},
	}

	// --- Section 1: topology generators at scale. ---
	type topo struct {
		name  string
		build func() *netsim.Network
	}
	topos := []topo{
		{"fattree k=16", func() *netsim.Network { return netsim.FatTree(16, nil) }},
		{"clos 8x992 (1k sw)", func() *netsim.Network { return netsim.Clos2Tier(8, 992, 16, nil) }},
	}
	if !quick {
		topos = append(topos,
			topo{"fattree k=32", func() *netsim.Network { return netsim.FatTree(32, nil) }},
			topo{"clos 8x9992 (10k sw)", func() *netsim.Network { return netsim.Clos2Tier(8, 9992, 4, nil) }},
		)
	}
	maxSwitches := 0.0
	for _, tp := range topos {
		start := time.Now()
		n := tp.build()
		elapsed := time.Since(start)
		switches := len(n.Switches())
		rate := float64(switches) / elapsed.Seconds()
		t.AddRow("topology", tp.name, fmt.Sprintf("%d sw", switches),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f sw/s", rate),
			fmt.Sprintf("%d hosts", len(n.Hosts())))
		if s := float64(switches); s > maxSwitches {
			maxSwitches = s
		}
	}
	t.Values["topology_max_switches"] = maxSwitches

	// --- Section 2: indexed vs linear lookup at 10k entries. ---
	const tableEntries = 10_000
	space := workload.NewFlowSpace(250)
	ft := netsim.NewFlowTable(nil)
	depth := metrics.NewHistogram(netsim.LookupDepthBuckets)
	ft.SetDepthObserver(func(d int) { depth.Observe(float64(d)) })
	packets := make([]openflow.PacketFields, tableEntries)
	for i := 0; i < tableEntries; i++ {
		fm := scaleFlowMod(space, uint64(i))
		if _, err := ft.Apply(fm); err != nil {
			panic(fmt.Sprintf("experiments: scale table build: %v", err))
		}
		packets[i] = openflow.PacketFields{
			InPort: fm.Match.InPort,
			DlSrc:  fm.Match.DlSrc, DlDst: fm.Match.DlDst,
			DlVlan: fm.Match.DlVlan, DlVlanPcp: fm.Match.DlVlanPcp,
			DlType: fm.Match.DlType, NwTos: fm.Match.NwTos, NwProto: fm.Match.NwProto,
			NwSrc: fm.Match.NwSrc, NwDst: fm.Match.NwDst,
			TpSrc: fm.Match.TpSrc, TpDst: fm.Match.TpDst,
		}
	}

	start := time.Now()
	for i := 0; i < lookups; i++ {
		if ft.Lookup(packets[i%tableEntries], 64) == nil {
			panic("experiments: scale indexed lookup missed")
		}
	}
	indexedNs := float64(time.Since(start).Nanoseconds()) / float64(lookups)

	start = time.Now()
	for i := 0; i < linearLookups; i++ {
		if ft.LookupLinear(packets[i%tableEntries]) == nil {
			panic("experiments: scale linear lookup missed")
		}
	}
	linearNs := float64(time.Since(start).Nanoseconds()) / float64(linearLookups)
	speedup := linearNs / indexedNs
	ds := depth.Snapshot()
	meanDepth := 0.0
	if ds.Count > 0 {
		meanDepth = ds.Sum / float64(ds.Count)
	}

	t.AddRow("lookup", "indexed", fmt.Sprintf("%d entries", tableEntries),
		fmt.Sprintf("%.0f ns/op", indexedNs),
		fmt.Sprintf("%.2fM/s", 1e3/indexedNs),
		fmt.Sprintf("mean depth %.1f", meanDepth))
	t.AddRow("lookup", "linear (reference)", fmt.Sprintf("%d entries", tableEntries),
		fmt.Sprintf("%.0f ns/op", linearNs),
		fmt.Sprintf("%.2fM/s", 1e3/linearNs),
		fmt.Sprintf("%.0fx slower", speedup))
	t.Values["lookup_indexed_ns_10k"] = indexedNs
	t.Values["lookup_linear_ns_10k"] = linearNs
	t.Values["lookup_speedup_10k"] = speedup
	t.Values["lookup_depth_mean_10k"] = meanDepth

	// --- Section 3: AppVisor capacity grid. ---
	const switches = 16
	bigSpace := workload.NewFlowSpace(10_000)
	stream, _ := workload.EventStream(events, switches, bigSpace, 0, 7)

	run := func(apps int, parallel bool) (time.Duration, *metrics.Registry) {
		reg := metrics.NewRegistry()
		var handled atomic.Uint64
		stack := core.NewStack(core.Config{
			Mode: core.ModeIsolated, Parallel: parallel, BatchMax: 64,
			Metrics: reg, Tracer: benchTracer,
		})
		for i := 0; i < apps; i++ {
			i := i
			if err := stack.AddApp(func() controller.App {
				return &countApp{name: fmt.Sprintf("count%d", i), handled: &handled}
			}); err != nil {
				panic(fmt.Sprintf("experiments: scale stub: %v", err))
			}
		}
		defer stack.Close()

		start := time.Now()
		for i := range stream {
			if err := stack.Controller.Inject(stream[i]); err != nil {
				panic(fmt.Sprintf("experiments: scale inject: %v", err))
			}
		}
		want := uint64(events) * uint64(apps)
		if !waitCond(4*time.Minute, func() bool { return handled.Load() >= want }) {
			panic(fmt.Sprintf("experiments: scale run stalled at %d/%d deliveries",
				handled.Load(), want))
		}
		return time.Since(start), reg
	}

	maxEPS := 0.0
	for _, apps := range []int{1, 4} {
		for _, mode := range []struct {
			name     string
			parallel bool
		}{{"serial", false}, {"parallel+batch", true}} {
			elapsed, reg := run(apps, mode.parallel)
			eps := float64(events) / elapsed.Seconds()
			t.AddRow("capacity", fmt.Sprintf("%d app(s), %s", apps, mode.name),
				fmt.Sprintf("%d events", events),
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f ev/s", eps),
				"appvisor, zero-delay handlers")
			t.Values[fmt.Sprintf("p2_%dapps_%s_events_per_sec", apps,
				map[bool]string{false: "serial", true: "parallel"}[mode.parallel])] = eps
			if eps > maxEPS {
				maxEPS = eps
			}
			if apps == 1 && mode.parallel {
				t.CaptureMetrics(reg)
			}
		}
	}
	t.Values["p2_max_events_per_sec"] = maxEPS
	t.AddRow("capacity", "best cell", fmt.Sprintf("%d events", events), "",
		fmt.Sprintf("%.0f ev/s", maxEPS), "headline: p2_max_events_per_sec")
	return t
}
