package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
)

// sleepApp models an IO-bound SDN-App handler: each event costs a fixed
// latency (flow-mod round trips, policy lookups against external state)
// rather than CPU. That is the regime the parallel pipeline targets —
// per-app queues overlap the waits even on a single core.
type sleepApp struct {
	name    string
	delay   time.Duration
	handled *atomic.Uint64
}

func (a *sleepApp) Name() string { return a.name }
func (a *sleepApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *sleepApp) HandleEvent(_ controller.Context, _ controller.Event) error {
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.handled.Add(1)
	return nil
}

// ClaimThroughput measures end-to-end dispatch throughput (events/sec)
// across the serial/parallel × direct/AppVisor grid: four apps, events
// spread over eight switches, each handler costing a fixed IO-like
// latency. The parallel pipeline's claim is that independent apps
// overlap, so events/sec should scale toward the per-app service rate;
// with AppVisor in the path, event batching additionally amortizes the
// per-event UDP round trip.
func ClaimThroughput(quick bool) Table {
	const (
		apps     = 4
		switches = 8
	)
	events := 1200
	delay := 200 * time.Microsecond
	if quick {
		events = 200
	}

	t := Table{
		ID:    "P1",
		Title: "Event pipeline throughput: serial vs parallel dispatch, direct vs AppVisor",
		Columns: []string{"architecture", "dispatch", "apps", "events",
			"elapsed", "events/sec", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d apps x %d events over %d switches; handlers simulate %v of IO-bound work",
				apps, events, switches, delay),
			"speedup is per architecture against its own serial dispatch",
			"appvisor rows relay every event through a stub over UDP; parallel mode batches them (one datagram per coalesced run)",
		},
		Values: map[string]float64{
			"apps": apps, "events": float64(events),
			"handler_delay_us": float64(delay.Microseconds()),
		},
	}

	run := func(isolated, parallel bool) time.Duration {
		var handled atomic.Uint64
		mk := func(i int) controller.App {
			return &sleepApp{name: fmt.Sprintf("sleep%d", i), delay: delay, handled: &handled}
		}
		var c *controller.Controller
		var closer func()
		if isolated {
			stack := core.NewStack(core.Config{Mode: core.ModeIsolated, Parallel: parallel, Tracer: benchTracer})
			for i := 0; i < apps; i++ {
				i := i
				if err := stack.AddApp(func() controller.App { return mk(i) }); err != nil {
					panic(fmt.Sprintf("experiments: throughput stub: %v", err))
				}
			}
			c, closer = stack.Controller, stack.Close
		} else {
			c = controller.New(controller.Config{Parallel: parallel, Tracer: benchTracer})
			for i := 0; i < apps; i++ {
				c.Register(mk(i))
			}
			closer = c.Stop
		}
		defer closer()

		start := time.Now()
		for i := 1; i <= events; i++ {
			if err := c.Inject(controller.Event{
				Kind: controller.EventPacketIn, DPID: uint64(i%switches + 1),
			}); err != nil {
				panic(fmt.Sprintf("experiments: throughput inject: %v", err))
			}
		}
		want := uint64(events) * apps
		if !waitCond(2*time.Minute, func() bool { return handled.Load() >= want }) {
			panic(fmt.Sprintf("experiments: throughput run stalled at %d/%d deliveries",
				handled.Load(), want))
		}
		return time.Since(start)
	}

	grid := []struct {
		arch     string
		isolated bool
	}{
		{"direct", false},
		{"appvisor", true},
	}
	for _, g := range grid {
		serial := run(g.isolated, false)
		parallel := run(g.isolated, true)
		for _, r := range []struct {
			dispatch string
			elapsed  time.Duration
		}{{"serial", serial}, {"parallel", parallel}} {
			eps := float64(events) / r.elapsed.Seconds()
			speedup := serial.Seconds() / r.elapsed.Seconds()
			t.AddRow(g.arch, r.dispatch, fmt.Sprint(apps), fmt.Sprint(events),
				r.elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", eps), fmt.Sprintf("%.2fx", speedup))
			t.Values[g.arch+"_"+r.dispatch+"_events_per_sec"] = eps
		}
		t.Values[g.arch+"_parallel_speedup"] = serial.Seconds() / parallel.Seconds()
	}
	return t
}
