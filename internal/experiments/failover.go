package experiments

import (
	"fmt"
	"os"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/durable"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/replica"
)

// ClaimFailoverMTTR is the H1 experiment: end-to-end failover MTTR of
// the replicated control plane. Each iteration stands up a 3-replica
// cluster (quorum commit) over a two-port single-switch fabric, runs a
// quorum-committed PacketIn workload, stages a journaled transaction
// that never commits, then kills the leader. The MTTR sample is the
// cluster's own failover timeline total — lease expiry detection
// through election, catch-up drain, WAL recovery (the staged
// transaction's presumed-abort rollback), switch role transfer and
// resumed dispatch — cross-checked by injecting post-failover events
// through the successor. Reported: MTTR p50/p95, elections, recovered
// transactions, and the rolled-back-rule check per iteration.
func ClaimFailoverMTTR(quick bool) Table {
	iters := 8
	events := 12
	if quick {
		iters = 3
		events = 8
	}

	t := Table{
		ID:    "H1",
		Title: "Replicated control plane: leader-kill failover MTTR (3 replicas, quorum commit)",
		Columns: []string{"iteration", "failover MTTR", "elections", "recovered txns",
			"recovered mods", "rollback clean", "replication lag"},
		Notes: []string{
			"MTTR = lease-expiry detection through election, catch-up, WAL recovery, switch role transfer, resumed dispatch",
			fmt.Sprintf("per iteration: %d quorum-committed events, one staged mid-transaction leader kill, %d post-failover events", events, events/2),
			"lease TTL 80ms, heartbeat 20ms: detection alone contributes up to one TTL",
		},
	}

	reg := metrics.NewRegistry()
	var (
		mttrs         []time.Duration
		elections     uint64
		recoveredTxns uint64
		failures      int
	)

	for i := 0; i < iters; i++ {
		mttr, recTxns, recMods, lag, clean, err := failoverOnce(reg, events)
		if err != nil {
			failures++
			t.AddRow(fmt.Sprintf("%d", i+1), "error: "+err.Error(), "-", "-", "-", "-", "-")
			continue
		}
		mttrs = append(mttrs, mttr)
		elections++ // one takeover election per iteration by construction
		recoveredTxns += recTxns
		cleanStr := "yes"
		if !clean {
			cleanStr = "NO"
			failures++
		}
		t.AddRow(fmt.Sprintf("%d", i+1), mttr.Round(time.Millisecond).String(), "1",
			fmt.Sprintf("%d", recTxns), fmt.Sprintf("%d", recMods), cleanStr,
			fmt.Sprintf("%d", lag))
	}

	p50, p95 := durationQuantile(mttrs, 0.50), durationQuantile(mttrs, 0.95)
	t.Notes = append(t.Notes,
		fmt.Sprintf("failover MTTR p50=%s p95=%s over %d iterations (%d failed)",
			p50.Round(time.Millisecond), p95.Round(time.Millisecond), iters, failures))
	t.CaptureMetrics(reg)
	t.Values = map[string]float64{
		"h1_failover_mttr_p50_ms": float64(p50.Milliseconds()),
		"h1_failover_mttr_p95_ms": float64(p95.Milliseconds()),
		"h1_elections":            float64(elections),
		"h1_recovered_txns":       float64(recoveredTxns),
		"h1_iterations":           float64(iters),
		"h1_failures":             float64(failures),
	}
	return t
}

// failoverOnce runs one kill-the-leader cycle and returns the measured
// MTTR plus the successor's recovery counters.
func failoverOnce(reg *metrics.Registry, events int) (mttr time.Duration, recTxns, recMods uint64, lag uint64, clean bool, err error) {
	dir, err := os.MkdirTemp("", "legosdn-h1-")
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	defer os.RemoveAll(dir)

	n := netsim.Single(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	cluster := replica.New(replica.Options{
		Dir:             dir,
		Replicas:        3,
		CommitMode:      replica.CommitQuorum,
		LeaseTTL:        80 * time.Millisecond,
		HeartbeatEvery:  20 * time.Millisecond,
		CheckpointEvery: 4,
		WAL:             durable.Options{NoSync: true},
		Metrics:         reg,
		Apps: []func() controller.App{
			func() controller.App { return newRegistryApp("learning-switch") },
		},
	})
	if err := cluster.Start(n); err != nil {
		return 0, 0, 0, 0, false, fmt.Errorf("cluster start: %w", err)
	}
	defer cluster.Close()

	inject := func(stack *core.Stack, seq int) error {
		target := stack.Controller.Processed.Load() + 1
		if err := stack.Controller.Inject(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: 1,
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   hostPortR1,
				Reason:   openflow.PacketInReasonNoMatch,
				Data:     netsim.TCPFrame(h1, h2, uint16(2000+seq%60000), 80, nil).Marshal(),
			},
		}); err != nil {
			return err
		}
		deadline := time.Now().Add(30 * time.Second)
		for stack.Controller.Processed.Load() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("event %d never processed", seq)
			}
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	}

	stackA := cluster.Stack()
	for i := 0; i < events; i++ {
		if err := inject(stackA, i); err != nil {
			return 0, 0, 0, 0, false, fmt.Errorf("workload: %w", err)
		}
	}

	// The doomed transaction: journaled, quorum-replicated, never
	// resolved — the successor must presume abort and roll it back.
	tx := stackA.NetLog.Begin()
	stackA.NetLog.SetActive(tx)
	for i := 0; i < 3; i++ {
		if err := stackA.Controller.SendFlowMod(1, h1OrphanRule(i)); err != nil {
			return 0, 0, 0, 0, false, fmt.Errorf("mid-txn flow mod: %w", err)
		}
	}
	stackA.NetLog.SetActive(nil)
	if err := stackA.Controller.Barrier(1); err != nil {
		return 0, 0, 0, 0, false, err
	}

	oldLeader := cluster.LeaderName()
	if err := cluster.KillLeader(); err != nil {
		return 0, 0, 0, 0, false, err
	}
	stackB, err := cluster.WaitLeader(oldLeader, 30*time.Second)
	if err != nil {
		return 0, 0, 0, 0, false, fmt.Errorf("failover: %w", err)
	}
	// First post-failover event end-to-end proves dispatch resumed.
	for i := 0; i < events/2; i++ {
		if err := inject(stackB, events+i); err != nil {
			return 0, 0, 0, 0, false, fmt.Errorf("post-failover workload: %w", err)
		}
	}

	clean = true
	for _, e := range n.Switch(1).Table().Entries() {
		if e.Priority == h1OrphanPriority {
			clean = false
			break
		}
	}
	return cluster.LastMTTR(), cluster.State().RecoveredTxns(), cluster.State().RecoveredMods(),
		cluster.ReplicationLag(), clean, nil
}

const h1OrphanPriority = 230

// h1OrphanRule is a rule only the doomed transaction installs, so any
// surviving copy after failover is rollback residue.
func h1OrphanRule(i int) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(9800 + i)
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: h1OrphanPriority,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 1}},
	}
}
