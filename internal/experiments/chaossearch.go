package experiments

import (
	"fmt"

	"legosdn/internal/chaos/campaign"
)

// ClaimChaosSearch (S1) reproduces the paper's minimal-causal-sequence
// idea (§5) at the system level: a seeded chaos campaign searches
// randomized fault schedules for an invariant violation, then delta
// debugging shrinks the failing schedule to a 1-minimal reproducer. A
// deliberately-broken invariant (the synthetic fired-at-least hook)
// stands in for a real bug so the search always has something to find,
// making the shrink ratio the headline: how much of a failing fault
// schedule was noise.
func ClaimChaosSearch(quick bool) Table {
	t := Table{
		ID:    "S1",
		Title: "Chaos search: fault-schedule minimization to 1-minimal reproducers (§5)",
		Columns: []string{"scenario", "fired atoms", "min atoms", "ratio", "replays", "1-minimal"},
		Notes: []string{
			"broken invariant: synthetic fired-at-least on appvisor/dup (test hook, not a real bug)",
			"ddmin over pinned-replay schedules; each replay re-runs the scenario deterministically",
		},
	}
	runs := 6
	if quick {
		runs = 3
	}
	sum, err := campaign.Run(campaign.Config{
		Seed:      41,
		Runs:      runs,
		Shrink:    true,
		Parallel:  2,
		Synthetic: &campaign.SyntheticCheck{Kind: campaign.SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1},
		Generate:  chaosSearchSpec,
	})
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("campaign error: %v", err))
		return t
	}

	var ratioSum float64
	shrunk := 0
	for _, rec := range sum.Records {
		if rec.Shrink == nil || !rec.Shrink.Reproducible {
			continue
		}
		sh := rec.Shrink
		t.AddRow(rec.Scenario,
			fmt.Sprintf("%d", sh.OriginalAtoms),
			fmt.Sprintf("%d", sh.MinAtoms),
			fmt.Sprintf("%.2f", sh.Ratio),
			fmt.Sprintf("%d", sh.Replays),
			fmt.Sprintf("%v", sh.Minimal))
		ratioSum += sh.Ratio
		shrunk++
	}
	avgRatio := 1.0
	if shrunk > 0 {
		avgRatio = ratioSum / float64(shrunk)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d seeds, %d failures, %d shrunk, %d total replays, %dms wall",
		sum.SeedsRun, sum.Failures, sum.Shrunk, sum.TotalReplays, sum.WallMS))
	t.Values = map[string]float64{
		"s1_seeds_run":        float64(sum.SeedsRun),
		"s1_failures":         float64(sum.Failures),
		"s1_shrunk":           float64(sum.Shrunk),
		"s1_avg_shrink_ratio": avgRatio,
		"s1_total_replays":    float64(sum.TotalReplays),
	}
	return t
}

// chaosSearchSpec generates the S1 campaign's scenarios: deterministic
// wire-fault runs (dup + delay) cheap enough that dozens of ddmin
// replays stay interactive.
func chaosSearchSpec(runSeed uint64) campaign.ScenarioSpec {
	return campaign.ScenarioSpec{
		Name:            fmt.Sprintf("search-%016x", runSeed),
		Seed:            runSeed,
		Switches:        1,
		Apps:            2,
		Events:          24,
		CheckpointEvery: 4,
		EventTimeoutMS:  250,
		Dup:             0.12,
		Delay:           0.06,
		Deterministic:   true,
	}
}
