// Package experiments implements the LegoSDN evaluation harness: one
// function per table, figure and quantitative claim in the paper, each
// returning a rendered-as-text Table. The root bench_test.go and
// cmd/legosdn-bench both drive these, so `go test -bench` and the CLI
// print identical rows. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics, when set, is the frozen instrument state of the stack the
	// experiment ran (machine-readable companion to the rendered rows).
	Metrics *metrics.Snapshot
	// Values holds the experiment's headline numbers keyed by metric
	// name — the machine-readable form cmd/legosdn-bench serializes
	// into benchmark result files (e.g. BENCH_pr2.json).
	Values map[string]float64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// CaptureMetrics freezes a registry's instruments into the table's
// machine-readable metrics block. No-op on a nil registry.
func (t *Table) CaptureMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	t.Metrics = &s
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// us formats a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
}

// yesNo renders a boolean as operator-readable text.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// waitCond polls until cond holds or the deadline passes, reporting
// success. The poll quantum is fine-grained (10us) so latency
// measurements built on it are not floored at a sleep tick.
func waitCond(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Microsecond)
	}
	return true
}

// drainQuiesce waits until the controller stops processing events for
// one settle interval.
func drainQuiesce(c *controller.Controller, settle time.Duration) {
	last := c.Processed.Load()
	lastChange := time.Now()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		cur := c.Processed.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			return
		}
	}
}

// connect attaches a simulated network to a stack, failing loudly on
// the (test-only) error paths.
func connect(stack *core.Stack, n *netsim.Network) {
	if err := stack.ConnectNetwork(n); err != nil {
		panic(fmt.Sprintf("experiments: connect: %v", err))
	}
}

// sendTCP injects one TCP packet between named hosts.
func sendTCP(n *netsim.Network, src, dst string, sport, dport uint16) {
	hs, hd := n.Host(src), n.Host(dst)
	_ = n.SendFromHost(src, netsim.TCPFrame(hs, hd, sport, dport, nil))
}

// poisonApp is a learning switch that panics on packets to one TCP
// destination port: the recurring deterministic bug of the harness.
type poisonApp struct {
	inner  controller.App
	snap   controller.Snapshotter
	poison uint16
}

// newPoisonLearningSwitch builds the factory used across experiments.
func newPoisonLearningSwitch(poison uint16) func() controller.App {
	return func() controller.App {
		inner := newRegistryApp("learning-switch")
		return &poisonApp{inner: inner, snap: inner.(controller.Snapshotter), poison: poison}
	}
}

func (a *poisonApp) Name() string                          { return a.inner.Name() }
func (a *poisonApp) Subscriptions() []controller.EventKind { return a.inner.Subscriptions() }
func (a *poisonApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok {
		if f, err := netsim.ParseFrame(pin.Data); err == nil && f.TpDst == a.poison {
			panic(fmt.Sprintf("poisonApp: deterministic bug on port %d", a.poison))
		}
	}
	return a.inner.HandleEvent(ctx, ev)
}
func (a *poisonApp) Snapshot() ([]byte, error)  { return a.snap.Snapshot() }
func (a *poisonApp) Restore(state []byte) error { return a.snap.Restore(state) }
