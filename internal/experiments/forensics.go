package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// armedChecker reports one synthetic invariant violation each time it
// is armed — the experiment arms it just before the doomed event, so
// exactly that event is classified byzantine and recovery's own
// redelivery sees a clean network.
type armedChecker struct {
	mu    sync.Mutex
	armed bool
}

func (c *armedChecker) arm() {
	c.mu.Lock()
	c.armed = true
	c.mu.Unlock()
}

func (c *armedChecker) Check() []crashpad.Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return nil
	}
	c.armed = false
	return []crashpad.Violation{{Desc: "synthetic invariant violation (R1 harness)"}}
}

// durationStats computes quantiles over collected samples.
func durationQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// ClaimRecoveryForensics is the R1 experiment: the MTTR breakdown the
// flight recorder makes possible. One cell per crash class of the §3.3
// policy matrix runs a sustained PacketIn workload with a deterministic
// crash every crashEvery-th event against a full LegoSDN stack whose
// autopsy store persists to disk. Per cell it reports recoveries, MTTR
// p50/p95 (from Crash-Pad tickets, whose RecoveryTime is the
// recovery-phase timeline's total), the per-phase p50 breakdown (from
// the autopsies' timelines — the same numbers the
// legosdn_recovery_phase_seconds histograms aggregate), sustained
// throughput with the always-on recorder in the path, and how many
// persisted autopsy files re-read and re-parsed with a complete
// full-phase timeline.
func ClaimRecoveryForensics(quick bool) Table {
	events := 1200
	crashEvery := 60
	if quick {
		events = 240
		crashEvery = 60
	}
	crashes := events / crashEvery

	t := Table{
		ID:    "R1",
		Title: "Crash forensics: MTTR breakdown by recovery phase, autopsy coverage",
		Columns: []string{"section", "cell", "detail", "p50", "p95",
			"result"},
		Notes: []string{
			fmt.Sprintf("%d PacketIns per cell, a crash every %d events; flight recorder always on", events, crashEvery),
			"mttr = recovery-phase timeline total (detect+isolate+checkpoint-restore+rollback+replay+resume)",
			"phase rows break one recovery down; autopsy files are re-read from disk and re-parsed",
			"no-compromise quarantines on the first crash: one ticket, remaining poison events are no-ops",
		},
		Values: map[string]float64{"r1_events_per_cell": float64(events)},
	}

	cells := []struct {
		name      string
		policy    crashpad.Compromise
		byzantine bool
		// wantOutcome is the matrix cell's expected ticket outcome.
		wantOutcome crashpad.Outcome
		// oneCrash cells quarantine on the first failure.
		oneCrash bool
	}{
		{name: "failstop/absolute", policy: crashpad.AbsoluteCompromise,
			wantOutcome: crashpad.OutcomeRecovered},
		{name: "failstop/equivalence", policy: crashpad.EquivalenceCompromise,
			wantOutcome: crashpad.OutcomeFallback}, // PacketIn has no equivalent events
		{name: "failstop/no-compromise", policy: crashpad.NoCompromise,
			wantOutcome: crashpad.OutcomeAppDown, oneCrash: true},
		{name: "byzantine/absolute", policy: crashpad.AbsoluteCompromise,
			byzantine: true, wantOutcome: crashpad.OutcomeRecovered},
	}

	totalParsed := 0.0
	for _, cell := range cells {
		dir, err := os.MkdirTemp("", "legosdn-r1-autopsy-")
		if err != nil {
			panic(fmt.Sprintf("experiments: R1 autopsy dir: %v", err))
		}

		reg := metrics.NewRegistry()
		var tickets []*crashpad.Ticket
		checker := &armedChecker{}
		cfg := core.Config{
			Mode:            core.ModeLegoSDN,
			CheckpointEvery: 4,
			Policies:        crashpad.NewPolicySet(cell.policy),
			Metrics:         reg,
			Tracer:          benchTracer,
			AutopsyDir:      dir,
			OnTicket:        func(tk *crashpad.Ticket) { tickets = append(tickets, tk) },
		}
		if cell.byzantine {
			cfg.Checker = checker
		}
		stack := core.NewStack(cfg)

		appName := "learning-switch"
		if cell.byzantine {
			// The handler must succeed — only the checker objects.
			stack.AddApp(func() controller.App { return newRegistryApp(appName) })
		} else {
			stack.AddApp(newPoisonLearningSwitch(6666))
		}
		n := netsim.Single(2, nil)
		connect(stack, n)
		h1, h2 := n.Host("h1"), n.Host("h2")

		base := stack.Controller.Processed.Load()
		start := time.Now()
		for i := 1; i <= events; i++ {
			doomed := i%crashEvery == 0
			dport := uint16(80)
			if doomed && !cell.byzantine {
				dport = 6666
			}
			if doomed && cell.byzantine {
				checker.arm()
			}
			ev := controller.Event{
				Kind: controller.EventPacketIn,
				DPID: 1,
				Message: &openflow.PacketIn{
					BufferID: openflow.BufferIDNone,
					InPort:   hostPortR1,
					Reason:   openflow.PacketInReasonNoMatch,
					Data:     netsim.TCPFrame(h1, h2, uint16(2000+i%60000), dport, nil).Marshal(),
				},
			}
			if err := stack.Controller.Inject(ev); err != nil {
				panic(fmt.Sprintf("experiments: R1 inject %d: %v", i, err))
			}
			// Lockstep: recovery runs synchronously inside dispatch, so
			// Processed advancing past the event means it fully resolved.
			target := base + uint64(i)
			if !waitCond(2*time.Minute, func() bool { return stack.Controller.Processed.Load() >= target }) {
				panic(fmt.Sprintf("experiments: R1 %s stalled at event %d", cell.name, i))
			}
		}
		elapsed := time.Since(start)
		drainQuiesce(stack.Controller, 20*time.Millisecond)

		// MTTR from tickets; phase breakdown from the in-memory autopsies.
		var mttrs []time.Duration
		outcomeOK := len(tickets) > 0
		for _, tk := range tickets {
			mttrs = append(mttrs, tk.RecoveryTime)
			if tk.Outcome != cell.wantOutcome {
				outcomeOK = false
			}
		}
		phaseSamples := map[string][]time.Duration{}
		for _, a := range stack.Autopsies.All() {
			for _, pd := range a.Timeline {
				phaseSamples[pd.Phase] = append(phaseSamples[pd.Phase],
					time.Duration(pd.Seconds*float64(time.Second)))
			}
		}

		// Forensics durability: every persisted autopsy must re-read,
		// re-parse and carry a complete timeline (all flightrec phases).
		parsed, files := 0, 0
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			files++
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				continue
			}
			var a flightrec.Autopsy
			if json.Unmarshal(b, &a) != nil {
				continue
			}
			if len(a.Timeline) == int(flightrec.NumPhases) {
				parsed++
			}
		}
		if parsed == 0 || parsed != files {
			panic(fmt.Sprintf("experiments: R1 %s: %d/%d persisted autopsies parse with a full timeline",
				cell.name, parsed, files))
		}
		totalParsed += float64(parsed)

		wantTickets := crashes
		if cell.oneCrash {
			wantTickets = 1
		}
		eps := float64(events) / elapsed.Seconds()
		p50, p95 := durationQuantile(mttrs, 0.50), durationQuantile(mttrs, 0.95)
		result := fmt.Sprintf("%d/%d %s", len(tickets), wantTickets, cell.wantOutcome)
		if !outcomeOK {
			result += " (UNEXPECTED)"
		}
		t.AddRow("cell", cell.name,
			fmt.Sprintf("%d events, %.0f ev/s", events, eps),
			us(p50), us(p95), result)

		for _, phase := range flightrec.PhaseNames() {
			samples := phaseSamples[phase]
			pp50, pp95 := durationQuantile(samples, 0.50), durationQuantile(samples, 0.95)
			share := 0.0
			if p50 > 0 {
				share = 100 * float64(pp50) / float64(p50)
			}
			t.AddRow("phase", cell.name, phase, us(pp50), us(pp95),
				fmt.Sprintf("%.0f%% of mttr p50", share))
		}
		t.AddRow("autopsy", cell.name, dir+"/autopsy-*.json", "", "",
			fmt.Sprintf("%d/%d parsed, 6-phase timelines", parsed, files))

		key := map[string]string{
			"failstop/absolute":      "failstop_absolute",
			"failstop/equivalence":   "failstop_equivalence",
			"failstop/no-compromise": "failstop_nocompromise",
			"byzantine/absolute":     "byzantine_absolute",
		}[cell.name]
		t.Values["r1_"+key+"_recoveries"] = float64(len(tickets))
		t.Values["r1_"+key+"_mttr_p50_us"] = float64(p50.Microseconds())
		t.Values["r1_"+key+"_mttr_p95_us"] = float64(p95.Microseconds())
		t.Values["r1_"+key+"_events_per_sec"] = eps
		t.Values["r1_"+key+"_autopsies_parsed"] = float64(parsed)

		// The histogram companion block for the paper's default policy:
		// legosdn_recovery_phase_seconds{phase=...} plus the recorder's
		// own counters, frozen after the run.
		if cell.name == "failstop/absolute" {
			t.CaptureMetrics(reg)
			t.Values["r1_flightrec_records"] = float64(stack.Flight.Records.Load())
		}

		stack.Close()
		os.RemoveAll(dir)
	}
	t.Values["r1_autopsies_parsed_total"] = totalParsed
	return t
}

// hostPortR1 is where topology builders attach hosts (netsim convention).
const hostPortR1 uint16 = 100
