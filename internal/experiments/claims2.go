package experiments

import (
	"fmt"
	"time"

	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/diversity"
	"legosdn/internal/faultinject"
	"legosdn/internal/invariant"
	"legosdn/internal/mcs"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/resources"
	"legosdn/internal/workload"
)

// pktInWithFrame wraps a frame into a PacketIn event.
func pktInWithFrame(seq uint64, f *netsim.Frame) controller.Event {
	raw := f.Marshal()
	return controller.Event{
		Seq: seq, Kind: controller.EventPacketIn, DPID: 1,
		Message: &openflow.PacketIn{
			BufferID: openflow.BufferIDNone,
			TotalLen: uint16(len(raw)),
			InPort:   1,
			Data:     raw,
		},
	}
}

// poisonFrame builds a frame that trips the poison-port apps.
func poisonFrame(sport uint16) *netsim.Frame {
	return &netsim.Frame{
		DlSrc:   netsim.HostMAC(1),
		DlDst:   netsim.HostMAC(2),
		DlType:  netsim.EtherTypeIPv4,
		NwProto: netsim.IPProtoTCP,
		NwSrc:   netsim.HostIP(1),
		NwDst:   netsim.HostIP(2),
		TpSrc:   sport,
		TpDst:   6666,
	}
}

// ClaimCheckpointSweep measures §5's checkpoint-frequency trade-off:
// checkpoint every Nth event (replaying the suffix at recovery) versus
// every event.
func ClaimCheckpointSweep(ns []int, events int) Table {
	t := Table{
		ID:    "C8",
		Title: "Checkpoint cadence sweep: steady-state overhead vs recovery work (§5)",
		Columns: []string{"checkpoint every", "events", "mean per event",
			"checkpoints taken", "bytes stored", "replayed at recovery", "recovery"},
		Notes: []string{
			"the app carries a growing MAC table, so snapshots have real weight",
			"larger N amortizes snapshot cost but pays event replay at recovery — the §5 trade",
		},
	}
	for _, n := range ns {
		store := checkpoint.NewStore(0)
		cp := crashpad.New(crashpad.Options{Store: store, CheckpointEvery: n})
		app := newPoisonLearningSwitch(6666)()
		ctx := &captureCtx{}
		trace := workload.PacketInEvents(events, 1, 32, 99)

		start := time.Now()
		for _, ev := range trace {
			cp.RunEvent(app, ctx, ev)
		}
		steady := time.Since(start)

		// Align the crash to the worst point in the cadence — just
		// before the next checkpoint — so recovery replays the maximal
		// N-1 event suffix.
		extra := (n - 1 - events%n + n) % n
		for i := 0; i < extra; i++ {
			cp.RunEvent(app, ctx, trace[i%len(trace)])
		}
		recStart := time.Now()
		cp.RunEvent(app, ctx, pktInWithFrame(uint64(events+extra+1), poisonFrame(40000)))
		recovery := time.Since(recStart)

		t.AddRow(fmt.Sprint(n), fmt.Sprint(events),
			us(steady/time.Duration(events)),
			fmt.Sprint(store.Saves), fmt.Sprint(store.Bytes),
			fmt.Sprint(cp.ReplayedEvents.Load()), us(recovery))
	}
	return t
}

// ClaimCloneSwitchover exercises §5's non-deterministic-bug strategy: a
// hot clone processes the same events in the shadow and is promoted
// when the primary trips a transient bug.
func ClaimCloneSwitchover(events int) Table {
	t := Table{
		ID:    "C9",
		Title: "Clone switchover for non-deterministic bugs (§5)",
		Columns: []string{"configuration", "events", "crash masked",
			"switchovers", "events lost", "service continued"},
		Notes: []string{
			"the bug fires once (transient); the clone, running the same state, is unaffected — the §5 argument",
		},
	}
	mk := func() (*diversity.HotStandby, *transientBugApp) {
		primary := &transientBugApp{inner: newRegistryApp("learning-switch"), crashAt: uint64(events / 2)}
		clone := &transientBugApp{inner: newRegistryApp("learning-switch")} // no bug
		return diversity.NewHotStandby("learning-switch", primary, clone), primary
	}
	hs, _ := mk()
	ctx := &captureCtx{}
	trace := workload.PacketInEvents(events, 1, 8, 31)
	lost := 0
	for _, ev := range trace {
		if err := hs.HandleEvent(ctx, ev); err != nil {
			lost++
		}
	}
	after := len(ctx.msgs) > 0
	t.AddRow("primary + hot clone", fmt.Sprint(events),
		yesNo(hs.Switchovers == 1), fmt.Sprint(hs.Switchovers),
		fmt.Sprint(lost), yesNo(after && hs.UsingClone()))

	// Baseline: no clone — the transient bug costs the event.
	solo := &transientBugApp{inner: newRegistryApp("learning-switch"), crashAt: uint64(events / 2)}
	ctx2 := &captureCtx{}
	soloLost := 0
	for _, ev := range trace {
		if crashed := runContainedExp(solo, ctx2, ev); crashed {
			soloLost++
		}
	}
	t.AddRow("primary only", fmt.Sprint(events), yesNo(false), "0",
		fmt.Sprint(soloLost), yesNo(true))
	return t
}

// transientBugApp crashes exactly once, at event seq crashAt.
type transientBugApp struct {
	inner   controller.App
	crashAt uint64
	fired   bool
}

func (a *transientBugApp) Name() string                          { return a.inner.Name() }
func (a *transientBugApp) Subscriptions() []controller.EventKind { return a.inner.Subscriptions() }
func (a *transientBugApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if a.crashAt != 0 && ev.Seq == a.crashAt && !a.fired {
		a.fired = true
		panic("transient bug")
	}
	return a.inner.HandleEvent(ctx, ev)
}

func runContainedExp(app controller.App, ctx controller.Context, ev controller.Event) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	_ = app.HandleEvent(ctx, ev)
	return false
}

// ClaimNVersion exercises §3.4's software diversity: three versions of
// the learning switch, one byzantine, under majority vote.
func ClaimNVersion(events int) Table {
	t := Table{
		ID:    "C10",
		Title: "N-version programming: majority vote masks a wrong version (§3.4)",
		Columns: []string{"versions", "buggy versions", "events",
			"disagreements", "masked", "wrong outputs forwarded"},
	}
	buggy := faultinject.Wrap(newRegistryApp("learning-switch"), faultinject.Bug{
		Severity:     faultinject.ByzantineSev,
		TriggerKind:  controller.EventPacketIn,
		TriggerEvery: 3,
	}, 5)
	voter := diversity.NewVoter("learning-switch",
		newRegistryApp("learning-switch"),
		buggy,
		newRegistryApp("learning-switch"))
	ctx := &captureCtx{}
	trace := workload.PacketInEvents(events, 1, 8, 17)
	for _, ev := range trace {
		_ = voter.HandleEvent(ctx, ev)
	}
	// A forwarded wrong output would be the byzantine 999-priority rule.
	wrong := 0
	for _, m := range ctx.msgs {
		if containsBadRule(m) {
			wrong++
		}
	}
	t.AddRow("3", "1", fmt.Sprint(events),
		fmt.Sprint(voter.Disagreements), fmt.Sprint(voter.Masked), fmt.Sprint(wrong))
	return t
}

// containsBadRule detects the injected byzantine rule in an encoded
// message signature (priority 999 = 0x03e7 at the flow-mod priority
// offset; cheap textual probe is fine for the harness).
func containsBadRule(sig string) bool {
	return len(sig) > 0 && stringsContains(sig, "03e7")
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ClaimMCS exercises §5's multi-event failure handling: a crash induced
// by an event pair is minimized to exactly that pair, and the right
// rollback checkpoint is selected.
func ClaimMCS(traceLen int) Table {
	t := Table{
		ID:    "C11",
		Title: "Minimal causal sequences for multi-event failures (§5, STS)",
		Columns: []string{"trace length", "minimal length", "probes",
			"cache hits", "rollback checkpoint seq"},
		Notes: []string{"the bug fires after seeing packets to two specific ports, anywhere in the trace"},
	}
	trace := workload.PacketInEvents(traceLen, 1, 8, 23)
	// Poison: the pair of events at 1/3 and 2/3 of the trace.
	aSeq := uint64(traceLen / 3)
	bSeq := uint64(2 * traceLen / 3)
	newApp := func() controller.App {
		return &pairBugApp{a: aSeq, b: bSeq}
	}
	fails := mcs.ReplayFails(newApp, &captureCtx{})
	minimal, stats := mcs.Minimize(trace, fails)

	store := checkpoint.NewStore(0)
	for seq := uint64(0); seq <= uint64(traceLen); seq += 8 {
		store.Put("pair-bug", seq, []byte("img"))
	}
	cpPick := mcs.PickCheckpoint(store, "pair-bug", minimal)
	pick := "none"
	if cpPick != nil {
		pick = fmt.Sprint(cpPick.Seq)
	}
	t.AddRow(fmt.Sprint(stats.OriginalLen), fmt.Sprint(stats.MinimalLen),
		fmt.Sprint(stats.Probes), fmt.Sprint(stats.CacheHits), pick)
	return t
}

// pairBugApp crashes once it has seen both trigger seqs.
type pairBugApp struct {
	a, b         uint64
	seenA, seenB bool
}

func (p *pairBugApp) Name() string                          { return "pair-bug" }
func (p *pairBugApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (p *pairBugApp) HandleEvent(_ controller.Context, ev controller.Event) error {
	if ev.Seq == p.a {
		p.seenA = true
	}
	if ev.Seq == p.b {
		p.seenB = true
	}
	if p.seenA && p.seenB {
		panic("cumulative failure")
	}
	return nil
}

// ClaimResourceLimits exercises §3.4's per-app limits: a rogue app that
// burns dispatch time is throttled, restoring a victim app's
// throughput.
func ClaimResourceLimits(events int) Table {
	t := Table{
		ID:    "C12",
		Title: "Per-app resource limits containing a rogue app (§3.4)",
		Columns: []string{"configuration", "events offered", "rogue handled",
			"victim handled", "dispatch time"},
		Notes: []string{"the rogue burns 200us per event; the limiter caps it at 50 events/s"},
	}
	run := func(limited bool) (rogueN, victimN uint64, dur time.Duration) {
		rogue := &slowApp{name: "rogue", delay: 200 * time.Microsecond}
		victim := &slowApp{name: "victim"}
		var runner controller.AppRunner = passRunner{}
		if limited {
			lim := resources.NewLimiter(passRunner{}, nil)
			lim.SetLimits("rogue", resources.Limits{EventsPerSecond: 50, Burst: 10})
			runner = lim
		}
		ctx := &captureCtx{}
		trace := workload.PacketInEvents(events, 1, 8, 3)
		start := time.Now()
		for _, ev := range trace {
			runner.RunEvent(rogue, ctx, ev)
			runner.RunEvent(victim, ctx, ev)
		}
		return rogue.handled, victim.handled, time.Since(start)
	}
	for _, limited := range []bool{false, true} {
		name := "no limits"
		if limited {
			name = "rogue rate-limited"
		}
		r, v, d := run(limited)
		t.AddRow(name, fmt.Sprint(events), fmt.Sprint(r), fmt.Sprint(v),
			d.Round(time.Millisecond).String())
	}
	return t
}

type passRunner struct{}

func (passRunner) RunEvent(app controller.App, ctx controller.Context, ev controller.Event) *controller.AppFailure {
	_ = app.HandleEvent(ctx, ev)
	return nil
}

type slowApp struct {
	name    string
	delay   time.Duration
	handled uint64
}

func (a *slowApp) Name() string                          { return a.name }
func (a *slowApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *slowApp) HandleEvent(controller.Context, controller.Event) error {
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.handled++
	return nil
}

// ClaimInvariantEscalation exercises §5's "No-Compromise" escalation: a
// byzantine black-hole trips the invariant checker, and the operator's
// shutdown hook fails the network closed.
func ClaimInvariantEscalation() Table {
	t := Table{
		ID:    "C13",
		Title: "No-Compromise invariant escalation: byzantine rule -> network shutdown (§5)",
		Columns: []string{"no-compromise set", "violation detected",
			"bad rule rolled back", "network shut down"},
	}
	for _, noCompromise := range []bool{false, true} {
		n := netsim.Single(2, nil)
		suite := invariant.NewSuite(n)
		shutdown := false
		stack := core.NewStack(core.Config{
			Mode: core.ModeLegoSDN,
			Checker: suite.CrashPadChecker(func(invariant.Violation) bool {
				return noCompromise
			}),
			OnNetworkShutdown: func([]crashpad.Violation) {
				shutdown = true
				for _, sw := range n.Switches() {
					n.SetSwitchDown(sw.DPID, true)
				}
			},
		})
		stack.AddApp(func() controller.App {
			return faultinject.Wrap(newRegistryApp("learning-switch"), faultinject.Bug{
				Severity:    faultinject.ByzantineSev,
				TriggerKind: controller.EventPacketIn,
			}, 1)
		})
		connect(stack, n)
		sendTCP(n, "h1", "h2", 1, 80)
		drainQuiesce(stack.Controller, 30*time.Millisecond)

		detected := stack.CrashPad.ByzantineSeen.Load() > 0
		rolledBack := true
		for _, e := range n.Switch(1).Table().Entries() {
			if e.Priority == 999 {
				rolledBack = false
			}
		}
		t.AddRow(yesNo(noCompromise), yesNo(detected), yesNo(rolledBack), yesNo(shutdown))
		stack.Close()
	}
	return t
}

// All runs every experiment with harness-default parameters and
// returns the tables in index order. quick shrinks iteration counts for
// CI-speed runs.
func All(quick bool) []Table {
	events := 2000
	corpus := 50
	flows := 30
	crashes := 10
	if quick {
		events, corpus, flows, crashes = 200, 12, 5, 3
	}
	return []Table{
		Table1FateSharing(),
		Table2AppSurvey(),
		Figure1ArchLatency(events),
		ClaimBugCorpus(corpus, 7),
		ClaimControlLoop(flows),
		ClaimNetLogRollback([]int{1, 2, 4, 8, 16, 32, 64}),
		ClaimCrashPadRecovery(crashes),
		ClaimEquivalence(),
		ClaimUpgrade(6),
		ClaimAtomicUpdate(),
		ClaimCheckpointSweep([]int{1, 2, 4, 8, 16, 32}, events/2),
		ClaimCloneSwitchover(200),
		ClaimNVersion(120),
		ClaimMCS(48),
		ClaimResourceLimits(300),
		ClaimInvariantEscalation(),
		ClaimIncrementalCheckpoints(pickInt(quick, 200, 1000), 32<<10, 16),
	}
}

func pickInt(quick bool, q, full int) int {
	if quick {
		return q
	}
	return full
}
