package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	for _, want := range []string{"=== X: demo ===", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// requireRow asserts a row whose first cell matches has the expected
// value in the named column.
func requireRow(t *testing.T, tab Table, firstCell, column, want string) {
	t.Helper()
	col := -1
	for i, c := range tab.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("%s: no column %q", tab.ID, column)
	}
	for _, r := range tab.Rows {
		if r[0] == firstCell {
			if r[col] != want {
				t.Fatalf("%s: row %q column %q = %q, want %q\n%s",
					tab.ID, firstCell, column, r[col], want, tab.Render())
			}
			return
		}
	}
	t.Fatalf("%s: no row %q\n%s", tab.ID, firstCell, tab.Render())
}

func TestTable1FateSharing(t *testing.T) {
	tab := Table1FateSharing()
	requireRow(t, tab, "monolithic", "controller up", "no")
	requireRow(t, tab, "monolithic", "new flows routed", "no")
	requireRow(t, tab, "isolated", "controller up", "yes")
	requireRow(t, tab, "isolated", "buggy app recovered", "no")
	requireRow(t, tab, "legosdn", "controller up", "yes")
	requireRow(t, tab, "legosdn", "buggy app recovered", "yes")
	requireRow(t, tab, "legosdn", "new flows routed", "yes")
}

func TestTable2AppSurvey(t *testing.T) {
	tab := Table2AppSurvey()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8\n%s", len(tab.Rows), tab.Render())
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "yes" {
			t.Fatalf("app %s not unmodified", r[0])
		}
	}
	requireRow(t, tab, "learning-switch", "stateful (snapshots)", "yes")
	requireRow(t, tab, "hub", "stateful (snapshots)", "no")
}

func TestFigure1ArchLatency(t *testing.T) {
	tab := Figure1ArchLatency(300)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	requireRow(t, tab, "appvisor (UDP proxy/stub)", "order preserved", "yes")
	requireRow(t, tab, "legosdn (+ checkpoint/txn)", "order preserved", "yes")
}

func TestClaimBugCorpusShape(t *testing.T) {
	tab := ClaimBugCorpus(12, 7)
	// Monolithic: some crashes, zero recoveries. LegoSDN: zero crashes.
	requireRow(t, tab, "legosdn", "controller crashes", "0")
	for _, r := range tab.Rows {
		if r[0] == "monolithic" && r[1] == "0" {
			t.Fatalf("monolithic survived a 16%%-catastrophic corpus:\n%s", tab.Render())
		}
	}
}

func TestClaimNetLogRollback(t *testing.T) {
	tab := ClaimNetLogRollback([]int{1, 8})
	for _, r := range tab.Rows {
		if r[2] != "yes" {
			t.Fatalf("rollback not exact for size %s:\n%s", r[0], tab.Render())
		}
	}
}

func TestClaimCrashPadRecovery(t *testing.T) {
	tab := ClaimCrashPadRecovery(3)
	requireRow(t, tab, "absolute", "recovered", "3")
	requireRow(t, tab, "no-compromise", "app left down", "3")
	requireRow(t, tab, "no-compromise", "recovered", "0")
}

func TestClaimEquivalence(t *testing.T) {
	tab := ClaimEquivalence()
	requireRow(t, tab, "equivalence", "app survived", "yes")
	requireRow(t, tab, "equivalence", "unaffected routes intact", "yes")
	for _, r := range tab.Rows {
		if r[0] == "equivalence" && r[2] == "0" {
			t.Fatalf("no transformed events:\n%s", tab.Render())
		}
	}
}

func TestClaimUpgrade(t *testing.T) {
	tab := ClaimUpgrade(4)
	requireRow(t, tab, "monolithic", "state retained", "no")
	requireRow(t, tab, "legosdn", "state retained", "yes")
}

func TestClaimAtomicUpdate(t *testing.T) {
	tab := ClaimAtomicUpdate()
	requireRow(t, tab, "none (isolated mode)", "atomic", "no")
	requireRow(t, tab, "netlog transactions", "atomic", "yes")
	requireRow(t, tab, "delay buffer (§4.1 prototype)", "atomic", "yes")
}

func TestClaimCheckpointSweep(t *testing.T) {
	tab := ClaimCheckpointSweep([]int{1, 8}, 60)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// N=1: one checkpoint per event, plus the pre-crash event's own
	// checkpoint and the post-recovery rebaseline.
	requireRow(t, tab, "1", "checkpoints taken", "62")
	// N=8: the crash is aligned to the worst point in the cadence, so
	// recovery replays the maximal N-1 suffix.
	requireRow(t, tab, "8", "replayed at recovery", "7")
}

func TestClaimIncrementalCheckpoints(t *testing.T) {
	tab := ClaimIncrementalCheckpoints(120, 8<<10, 8)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Both configurations must restore an intact latest image — the
	// equal-recovery-guarantee half of the claim.
	requireRow(t, tab, "full snapshot / put, sync fsync", "state intact", "yes")
	requireRow(t, tab, "delta every 8, async group commit", "state intact", "yes")
	// And the overhead halves: fewer bytes synced, cheaper puts.
	if tab.Values["bytes_reduction"] < 2 {
		t.Fatalf("bytes reduction %.1fx — delta mode not saving bytes", tab.Values["bytes_reduction"])
	}
	if tab.Values["p50_speedup"] < 1 {
		t.Fatalf("p50 speedup %.1fx — async sink slower than sync baseline", tab.Values["p50_speedup"])
	}
}

func TestClaimCloneSwitchover(t *testing.T) {
	tab := ClaimCloneSwitchover(60)
	requireRow(t, tab, "primary + hot clone", "crash masked", "yes")
	requireRow(t, tab, "primary + hot clone", "events lost", "0")
	requireRow(t, tab, "primary only", "events lost", "1")
}

func TestClaimNVersion(t *testing.T) {
	tab := ClaimNVersion(60)
	requireRow(t, tab, "3", "wrong outputs forwarded", "0")
	if tab.Rows[0][3] == "0" {
		t.Fatalf("no disagreements recorded:\n%s", tab.Render())
	}
}

func TestClaimMCS(t *testing.T) {
	tab := ClaimMCS(30)
	requireRow(t, tab, "30", "minimal length", "2")
}

func TestClaimResourceLimits(t *testing.T) {
	tab := ClaimResourceLimits(100)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// With limits, the rogue handles far fewer events.
	var unlimited, limited string
	for _, r := range tab.Rows {
		if r[0] == "no limits" {
			unlimited = r[2]
		} else {
			limited = r[2]
		}
	}
	if unlimited == limited {
		t.Fatalf("limiter had no effect:\n%s", tab.Render())
	}
}

func TestClaimInvariantEscalation(t *testing.T) {
	tab := ClaimInvariantEscalation()
	requireRow(t, tab, "no", "violation detected", "yes")
	requireRow(t, tab, "no", "network shut down", "no")
	requireRow(t, tab, "yes", "network shut down", "yes")
}

func TestClaimControlLoop(t *testing.T) {
	tab := ClaimControlLoop(3)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestClaimChaosSearch(t *testing.T) {
	tab := ClaimChaosSearch(true)
	if len(tab.Rows) == 0 {
		t.Fatalf("S1 shrank nothing:\n%s", tab.Render())
	}
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Fatalf("S1 row not 1-minimal:\n%s", tab.Render())
		}
	}
	if tab.Values["s1_shrunk"] < 1 {
		t.Fatalf("s1_shrunk = %v", tab.Values["s1_shrunk"])
	}
	if tab.Values["s1_avg_shrink_ratio"] > 0.25 {
		t.Fatalf("avg shrink ratio %v exceeds the 25%% acceptance bar:\n%s",
			tab.Values["s1_avg_shrink_ratio"], tab.Render())
	}
}
