package experiments

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"legosdn/internal/durable"
)

// ClaimIncrementalCheckpoints (C14) measures what PR 6 buys on the
// checkpoint path: full-snapshot-per-put with a synchronous fsync under
// the store's lock (the seed behavior, and §5's stated overhead worry)
// versus delta checkpoints journaled through the asynchronous
// group-committed sink. Both configurations run the same workload —
// a growing flow-table-sized state mutated in place per event — and
// both are reopened afterwards to prove the recovery guarantee is
// unchanged: the same histories, the same latest image, byte for byte.
func ClaimIncrementalCheckpoints(events, stateBytes, deltaEvery int) Table {
	t := Table{
		ID:    "C14",
		Title: "Incremental delta checkpoints + group-commit WAL: overhead vs full-snapshot-per-put (§5)",
		Columns: []string{"configuration", "puts", "p50 put", "p95 put",
			"bytes fsynced", "fsync batches", "restored on reopen", "state intact"},
		Notes: []string{
			"baseline journals a full image per put and fsyncs under the store's lock — the seed behavior",
			fmt.Sprintf("delta mode keeps a full image every %d puts, byte-range patches between, sink async + group-committed", deltaEvery),
			"both reopen to identical latest state: lower overhead does not trade away the recovery guarantee",
		},
		Values: map[string]float64{},
	}

	type result struct {
		p50, p95    time.Duration
		bytesSynced uint64
		commits     uint64
		restored    int
		intact      bool
	}

	run := func(label string, opts durable.Options, delta int) result {
		dir, err := os.MkdirTemp("", "legosdn-c14-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, err := durable.OpenCheckpointLog(dir, 64, opts)
		if err != nil {
			panic(err)
		}
		store := l.Store()
		if delta > 1 {
			store.SetDeltaEvery(delta)
		}

		// The workload: one app whose state is a stateBytes-sized table
		// with a handful of in-place mutations per event — the learning-
		// switch/flow-cache shape where full snapshots are mostly
		// redundant bytes.
		state := bytes.Repeat([]byte{0xAB}, stateBytes)
		durs := make([]time.Duration, 0, events)
		for i := 0; i < events; i++ {
			st := append([]byte(nil), state...)
			for m := 0; m < 4; m++ {
				st[(i*61+m*17)%len(st)] = byte(i + m)
			}
			state = st
			t0 := time.Now()
			store.Put("flowcache", uint64(i+1), st)
			durs = append(durs, time.Since(t0))
		}
		l.Flush() // durability barrier: count the async tail too
		w := l.WAL()
		bytesSynced, commits := w.AppendedBytes(), w.Commits()
		if err := l.Close(); err != nil {
			panic(err)
		}

		l2, err := durable.OpenCheckpointLog(dir, 64, durable.Options{})
		if err != nil {
			panic(err)
		}
		defer l2.Close()
		cp := l2.Store().Latest("flowcache")
		intact := cp != nil && cp.Seq == uint64(events) && bytes.Equal(cp.State, state)

		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return result{
			p50:         durs[len(durs)/2],
			p95:         durs[len(durs)*95/100],
			bytesSynced: bytesSynced,
			commits:     commits,
			restored:    l2.Restored(),
			intact:      intact,
		}
	}

	base := run("full+sync", durable.Options{SyncCheckpointSink: true}, 1)
	opt := run("delta+group-commit", durable.Options{GroupCommit: true}, deltaEvery)

	t.AddRow("full snapshot / put, sync fsync", fmt.Sprint(events),
		us(base.p50), us(base.p95), fmt.Sprint(base.bytesSynced),
		fmt.Sprint(base.commits), fmt.Sprint(base.restored), yesNo(base.intact))
	t.AddRow(fmt.Sprintf("delta every %d, async group commit", deltaEvery), fmt.Sprint(events),
		us(opt.p50), us(opt.p95), fmt.Sprint(opt.bytesSynced),
		fmt.Sprint(opt.commits), fmt.Sprint(opt.restored), yesNo(opt.intact))

	t.Values["baseline_p50_put_us"] = float64(base.p50.Nanoseconds()) / 1e3
	t.Values["delta_p50_put_us"] = float64(opt.p50.Nanoseconds()) / 1e3
	t.Values["baseline_bytes_fsynced"] = float64(base.bytesSynced)
	t.Values["delta_bytes_fsynced"] = float64(opt.bytesSynced)
	t.Values["baseline_fsync_batches"] = float64(base.commits)
	t.Values["delta_fsync_batches"] = float64(opt.commits)
	if opt.p50 > 0 {
		t.Values["p50_speedup"] = float64(base.p50) / float64(opt.p50)
	}
	if opt.bytesSynced > 0 {
		t.Values["bytes_reduction"] = float64(base.bytesSynced) / float64(opt.bytesSynced)
	}
	t.Values["baseline_state_intact"] = b2f(base.intact)
	t.Values["delta_state_intact"] = b2f(opt.intact)
	return t
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
