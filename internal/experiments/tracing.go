package experiments

import "legosdn/internal/trace"

// benchTracer, when set, is threaded into the stacks and controllers
// built by the perf experiments so their event pipelines emit spans.
// Package-level because the experiment constructors (the Table
// functions) are called through a uniform signature from
// cmd/legosdn-bench and bench_test.go.
var benchTracer *trace.Tracer

// SetTracer installs (or, with nil, removes) the tracer used by the
// perf experiments. Call before running experiments; not safe to swap
// while one is in flight.
func SetTracer(t *trace.Tracer) { benchTracer = t }
