package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"legosdn/internal/metrics"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if sc := tr.Root(); sc.Valid() {
		t.Fatal("nil tracer sampled a root")
	}
	sp := tr.StartSpan(SpanContext{TraceID: 1}, "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Attr("k", "v").AttrInt("n", 7)
	sp.End() // must not panic
	if got := sp.Context(); got.Valid() {
		t.Fatal("nil span has valid context")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}
}

func TestSamplingRates(t *testing.T) {
	always := New(Options{SampleRate: 1})
	if !always.Enabled() {
		t.Fatal("rate 1 not enabled")
	}
	for i := 0; i < 100; i++ {
		if !always.Root().Valid() {
			t.Fatal("rate 1 skipped a root")
		}
	}

	never := New(Options{SampleRate: 0})
	if never.Enabled() {
		t.Fatal("rate 0 enabled")
	}
	for i := 0; i < 100; i++ {
		if never.Root().Valid() {
			t.Fatal("rate 0 sampled a root")
		}
	}

	half := New(Options{SampleRate: 0.5})
	n := 0
	for i := 0; i < 10000; i++ {
		if half.Root().Valid() {
			n++
		}
	}
	if n < 4000 || n > 6000 {
		t.Fatalf("rate 0.5 sampled %d/10000", n)
	}
}

func TestSpanRecordingAndHierarchy(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 64})
	root := tr.Root()
	parent := tr.StartSpan(root, "parent").Attr("app", "route")
	child := tr.StartSpan(parent.Context(), "child").AttrInt("ops", 3)
	child.End()
	parent.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Trace != root.TraceID {
			t.Fatalf("span %q trace %x, want %x", sp.Name, sp.Trace, root.TraceID)
		}
	}
	p, c := byName["parent"], byName["child"]
	if p.Parent != 0 {
		t.Fatalf("parent span has parent %x", p.Parent)
	}
	if c.Parent != p.Span {
		t.Fatalf("child parent %x, want %x", c.Parent, p.Span)
	}
	if len(p.Attrs) != 1 || p.Attrs[0].Key != "app" || p.Attrs[0].Value != "route" {
		t.Fatalf("parent attrs %v", p.Attrs)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Value != "3" {
		t.Fatalf("child attrs %v", c.Attrs)
	}
}

func TestRingOverwriteCountsDrops(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 8, Shards: 1})
	root := tr.Root()
	for i := 0; i < 100; i++ {
		tr.StartSpan(root, "s").End()
	}
	if got := tr.Spans.Load(); got != 100 {
		t.Fatalf("spans counter %d, want 100", got)
	}
	if got := tr.Drops.Load(); got != 100-8 {
		t.Fatalf("drops counter %d, want %d", got, 100-8)
	}
	if got := len(tr.Snapshot()); got != 8 {
		t.Fatalf("snapshot %d spans, want 8", got)
	}
}

func TestTracesGroupingAndLimit(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 64})
	for i := 0; i < 3; i++ {
		root := tr.Root()
		tr.StartSpan(root, "a").End()
		tr.StartSpan(root, "b").End()
	}
	traces := tr.Traces(0)
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	for _, g := range traces {
		if len(g.Spans) != 2 {
			t.Fatalf("trace %x has %d spans, want 2", g.ID, len(g.Spans))
		}
	}
	if got := len(tr.Traces(2)); got != 2 {
		t.Fatalf("limit 2 returned %d traces", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 1024})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.Root()
				sp := tr.StartSpan(root, "work")
				tr.StartSpan(sp.Context(), "inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Spans.Load(); got != 8*200*2 {
		t.Fatalf("spans counter %d, want %d", got, 8*200*2)
	}
	// Snapshot while more writes land must not race (run with -race).
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for i := 0; i < 100; i++ {
			tr.StartSpan(tr.Root(), "late").End()
		}
	}()
	for i := 0; i < 20; i++ {
		tr.Snapshot()
	}
	wg2.Wait()
}

func TestWriteTextAndChrome(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 64})
	root := tr.Root()
	sp := tr.StartSpan(root, "controller.dispatch").Attr("kind", "packet_in")
	tr.StartSpan(sp.Context(), "netlog.txn").Attr("state", "aborted").End()
	sp.End()

	var text bytes.Buffer
	tr.WriteText(&text, 0)
	for _, want := range []string{"controller.dispatch", "netlog.txn", "state=aborted", "kind=packet_in"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text export missing %q:\n%s", want, text.String())
		}
	}

	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("chrome export has %d events, want 2", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph %q, want X", ev.Name, ev.Ph)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	tr := New(Options{SampleRate: 1, BufferSize: 64})
	tr.StartSpan(tr.Root(), "s").End()

	rec := httptest.NewRecorder()
	tr.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "trace ") {
		t.Fatalf("text endpoint: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	tr.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("chrome endpoint: code %d valid=%v", rec.Code, json.Valid(rec.Body.Bytes()))
	}

	var nilTr *Tracer
	rec = httptest.NewRecorder()
	nilTr.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("nil tracer endpoint code %d, want 404", rec.Code)
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{SampleRate: 1, Metrics: reg})
	mux := NewDebugMux(tr, reg)
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s -> %d", path, rec.Code)
		}
	}
}

func TestInstrumentCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{SampleRate: 1, BufferSize: 8, Shards: 1, Metrics: reg})
	for i := 0; i < 10; i++ {
		tr.StartSpan(tr.Root(), "s").End()
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "legosdn_trace_spans_total 10") {
		t.Fatalf("spans counter not exported:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "legosdn_trace_spans_dropped_total 2") {
		t.Fatalf("drops counter not exported:\n%s", buf.String())
	}
}

func TestSlogTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(WrapHandler(slog.NewTextHandler(&buf, nil)))

	sc := SpanContext{TraceID: 0xabcd, SpanID: 0x1234}
	logger.InfoContext(ContextWith(context.Background(), sc), "recovering app", "app", "route")
	line := buf.String()
	if !strings.Contains(line, "trace_id=000000000000abcd") {
		t.Fatalf("log line missing trace_id: %q", line)
	}
	if !strings.Contains(line, "span_id=0000000000001234") {
		t.Fatalf("log line missing span_id: %q", line)
	}

	buf.Reset()
	logger.InfoContext(context.Background(), "untraced line")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced line gained a trace_id: %q", buf.String())
	}

	// WithAttrs/WithGroup must preserve the wrapper.
	buf.Reset()
	logger.With("component", "crashpad").InfoContext(ContextWith(context.Background(), sc), "x")
	if !strings.Contains(buf.String(), "trace_id=") {
		t.Fatalf("With() dropped trace correlation: %q", buf.String())
	}
}

func TestSlogCrashCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(WrapHandler(slog.NewTextHandler(&buf, nil)))

	// App + ticket stamp alongside trace ids.
	ctx := ContextWith(context.Background(), SpanContext{TraceID: 0xabcd, SpanID: 1})
	ctx = ContextWithCrash(ctx, "lswitch", 7)
	logger.InfoContext(ctx, "recovered")
	line := buf.String()
	for _, want := range []string{"trace_id=000000000000abcd", "app=lswitch", "crashpad_ticket=7"} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q: %q", want, line)
		}
	}

	// App alone (no ticket yet) stamps only the app.
	buf.Reset()
	logger.InfoContext(ContextWithCrash(context.Background(), "router", 0), "detected")
	line = buf.String()
	if !strings.Contains(line, "app=router") || strings.Contains(line, "crashpad_ticket") {
		t.Fatalf("app-only stamp wrong: %q", line)
	}

	// Empty attribution adds nothing.
	buf.Reset()
	logger.InfoContext(ContextWithCrash(context.Background(), "", 0), "plain")
	if strings.Contains(buf.String(), "app=") || strings.Contains(buf.String(), "crashpad_ticket") {
		t.Fatalf("empty crash info stamped attrs: %q", buf.String())
	}

	if app, ticket := CrashFromContext(context.Background()); app != "" || ticket != 0 {
		t.Fatalf("CrashFromContext on empty ctx = %q, %d", app, ticket)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Fatalf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		in   int64
		want string
	}{{0, "0"}, {7, "7"}, {-42, "-42"}, {123456789, "123456789"}} {
		if got := itoa(c.in); got != c.want {
			t.Fatalf("itoa(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
