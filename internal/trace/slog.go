package trace

import (
	"context"
	"fmt"
	"log/slog"
)

// ctxKey carries a SpanContext through a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc, for handing to slog so log
// lines emitted while processing a traced event can be joined with the
// event's spans (and, via the trace id, its oftrace records).
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the SpanContext carried by ctx (zero if none).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// crashKey carries crash attribution through a context.Context.
type crashKey struct{}

// crashInfo is the app + Crash-Pad ticket pair stamped onto log records
// emitted during a recovery.
type crashInfo struct {
	app    string
	ticket int
}

// ContextWithCrash returns ctx additionally carrying the failing app's
// name and its Crash-Pad ticket id, so recovery-time log records line
// up with autopsy reports and ticket dumps without grepping by time.
// ticket 0 means "no ticket yet" and stamps only the app.
func ContextWithCrash(ctx context.Context, app string, ticket int) context.Context {
	if app == "" && ticket == 0 {
		return ctx
	}
	return context.WithValue(ctx, crashKey{}, crashInfo{app: app, ticket: ticket})
}

// CrashFromContext extracts crash attribution from ctx ("" and 0 if
// none).
func CrashFromContext(ctx context.Context) (app string, ticket int) {
	ci, _ := ctx.Value(crashKey{}).(crashInfo)
	return ci.app, ci.ticket
}

// IDString renders a trace or span id the way every export does.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// slogHandler decorates an inner slog.Handler: records logged under a
// context carrying a SpanContext gain trace_id/span_id attributes.
type slogHandler struct {
	inner slog.Handler
}

// WrapHandler returns a slog.Handler that stamps trace correlation ids
// onto every record whose context carries a SpanContext. Build loggers
// as slog.New(trace.WrapHandler(h)) and log with the *Context variants
// (InfoContext, LogAttrs) passing trace.ContextWith(ctx, ev.Trace).
func WrapHandler(h slog.Handler) slog.Handler {
	return &slogHandler{inner: h}
}

func (h *slogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *slogHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := FromContext(ctx); sc.Valid() {
		r.AddAttrs(slog.String("trace_id", IDString(sc.TraceID)))
		if sc.SpanID != 0 {
			r.AddAttrs(slog.String("span_id", IDString(sc.SpanID)))
		}
	}
	if app, ticket := CrashFromContext(ctx); app != "" || ticket != 0 {
		if app != "" {
			r.AddAttrs(slog.String("app", app))
		}
		if ticket != 0 {
			r.AddAttrs(slog.Int("crashpad_ticket", ticket))
		}
	}
	return h.inner.Handle(ctx, r)
}

func (h *slogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &slogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *slogHandler) WithGroup(name string) slog.Handler {
	return &slogHandler{inner: h.inner.WithGroup(name)}
}
