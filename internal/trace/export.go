package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders recent traces as an indented text report: one block
// per trace, spans ordered by start, children indented under parents —
// the quick operator view of where an event spent its time.
func (t *Tracer) WriteText(w io.Writer, limit int) {
	if t == nil {
		fmt.Fprintln(w, "tracing disabled")
		return
	}
	traces := t.Traces(limit)
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces recorded")
		return
	}
	for _, tr := range traces {
		fmt.Fprintf(w, "trace %016x (%d span(s))\n", tr.ID, len(tr.Spans))
		depth := spanDepths(tr.Spans)
		for _, sp := range tr.Spans {
			indent := strings.Repeat("  ", depth[sp.Span])
			fmt.Fprintf(w, "  %s%-24s %12v  start=%s span=%016x",
				indent, sp.Name, sp.Dur, sp.Start.UTC().Format("15:04:05.000000"), sp.Span)
			for _, a := range sp.Attrs {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// spanDepths computes each span's depth under the trace root (parent 0)
// for indentation. Orphan parents (e.g. spans evicted from the ring)
// get depth 0.
func spanDepths(spans []SpanRecord) map[uint64]int {
	parent := make(map[uint64]uint64, len(spans))
	for _, sp := range spans {
		parent[sp.Span] = sp.Parent
	}
	depth := make(map[uint64]int, len(spans))
	for _, sp := range spans {
		d, p := 0, sp.Parent
		for p != 0 && d < 16 {
			next, ok := parent[p]
			if !ok {
				break
			}
			d++
			p = next
		}
		depth[sp.Span] = d
	}
	return depth
}

// chromeEvent is one Chrome trace_event record ("X" = complete event),
// loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  string            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the ring as Chrome trace_event JSON. Each trace
// becomes one named track (tid), so chrome://tracing shows every
// event's pipeline as its own row with stage spans nested by time.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Snapshot()
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayUnit: "ns"}
	for _, sp := range spans {
		args := map[string]string{
			"span":   fmt.Sprintf("%016x", sp.Span),
			"parent": fmt.Sprintf("%016x", sp.Parent),
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  fmt.Sprintf("trace %016x", sp.Trace),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
