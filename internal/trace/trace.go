// Package trace is LegoSDN's event-scoped tracing layer. The paper's
// whole value proposition is what happens to one network event when an
// app crashes — checkpoint, detect, rollback, replay or transform — so
// this package makes exactly that visible: each injected event can be
// sampled into a trace, and every stage it crosses (controller
// dispatch, AppVisor proxy/stub round trip, NetLog transaction
// lifecycle, Crash-Pad recovery) opens a span under that trace.
//
// Design constraints, in order:
//
//   - Always cheap. With sampling off (rate 0) the per-event cost is a
//     nil/zero check; untraced events never allocate. Only sampled
//     events pay for span records.
//   - Lock-free recording. Completed spans land in sharded ring
//     buffers of atomic slots; writers claim a slot with one atomic
//     add and publish with one atomic swap. Readers (the /debug/traces
//     endpoint) see a consistent-enough view without stopping writers.
//   - Wire-propagatable. A SpanContext is two uint64s, small enough to
//     ride AppVisor's event datagrams, so a stub process joins the
//     same trace its proxy started (wireVersion 3).
package trace

import (
	"sort"
	"sync/atomic"
	"time"

	"legosdn/internal/metrics"
)

// SpanContext identifies a position in a trace: the trace itself and
// the span that new child spans should hang under. The zero value means
// "untraced"; it is what unsampled events carry, and every tracing
// call accepts it for free.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64 // parent for children; 0 at the trace root
}

// Valid reports whether the context belongs to a sampled trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// Attr is one key/value annotation on a span (recovery decision,
// policy chosen, app name, transaction op count).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as it sits in the ring.
type SpanRecord struct {
	Trace  uint64        `json:"trace"`
	Span   uint64        `json:"span"`
	Parent uint64        `json:"parent"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Options tunes a Tracer.
type Options struct {
	// SampleRate is the fraction of roots sampled into traces, in
	// [0, 1]. 0 disables tracing (the default); 1 traces everything.
	SampleRate float64
	// BufferSize is the total completed-span capacity across all
	// shards (default 16384, rounded up so each shard is a power of
	// two). Oldest spans are overwritten when full.
	BufferSize int
	// Shards is the ring shard count (default 8, rounded up to a power
	// of two). More shards spread writer contention across cores.
	Shards int
	// Metrics, when set, registers span-count and span-drop counters.
	Metrics *metrics.Registry
}

// shard is one lock-free ring of completed spans. Writers claim slot
// indexes with next.Add and publish records with an atomic pointer
// swap; a swap that returns a previous record means the ring lapped an
// unread span, which is counted as a drop.
type shard struct {
	next  atomic.Uint64
	slots []atomic.Pointer[SpanRecord]
}

// Tracer samples traces and records their spans. A nil *Tracer is
// fully usable: every method no-ops, so components wire tracing
// unconditionally and pay one branch when it is absent.
type Tracer struct {
	threshold uint64 // sample iff mix(counter) < threshold; ^0 = always
	shards    []*shard
	shardMask uint64
	slotMask  uint64
	ids       atomic.Uint64 // id counter, mixed into unique span/trace ids
	seed      uint64
	samples   atomic.Uint64 // root sampling counter (Weyl sequence state)

	// Spans counts recorded spans; Drops counts ring overwrites of
	// spans never read by an export.
	Spans metrics.Counter
	Drops metrics.Counter
}

// New creates a Tracer.
func New(opts Options) *Tracer {
	if opts.BufferSize <= 0 {
		opts.BufferSize = 16384
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	nShards := ceilPow2(opts.Shards)
	perShard := ceilPow2((opts.BufferSize + nShards - 1) / nShards)
	t := &Tracer{
		shards:    make([]*shard, nShards),
		shardMask: uint64(nShards - 1),
		slotMask:  uint64(perShard - 1),
		seed:      splitmix64(uint64(time.Now().UnixNano())),
	}
	for i := range t.shards {
		t.shards[i] = &shard{slots: make([]atomic.Pointer[SpanRecord], perShard)}
	}
	switch {
	case opts.SampleRate >= 1:
		t.threshold = ^uint64(0)
	case opts.SampleRate <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(opts.SampleRate * float64(^uint64(0)))
	}
	if reg := opts.Metrics; reg != nil {
		t.Instrument(reg)
	}
	return t
}

// Instrument registers the tracer's counters into reg.
func (t *Tracer) Instrument(reg *metrics.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.RegisterCounter("legosdn_trace_spans_total",
		"spans recorded into the trace ring", &t.Spans)
	reg.RegisterCounter("legosdn_trace_spans_dropped_total",
		"spans overwritten in the ring before an export read them", &t.Drops)
}

// Enabled reports whether any sampling can occur.
func (t *Tracer) Enabled() bool { return t != nil && t.threshold != 0 }

// Root makes the sampling decision for a new event. It returns a root
// SpanContext (TraceID set, SpanID zero) when sampled, or the zero
// context otherwise. The decision is made once per event; everything
// downstream keys off SpanContext.Valid.
func (t *Tracer) Root() SpanContext {
	if t == nil || t.threshold == 0 {
		return SpanContext{}
	}
	if t.threshold != ^uint64(0) {
		// Weyl sequence through a splitmix finalizer: a race-free,
		// allocation-free uniform draw.
		x := splitmix64(t.samples.Add(0x9E3779B97F4A7C15))
		if x >= t.threshold {
			return SpanContext{}
		}
	}
	return SpanContext{TraceID: t.newID()}
}

// newID mints a process-unique nonzero id. The seed keeps ids from
// separate processes (proxy vs stub subprocess) from colliding inside
// one trace.
func (t *Tracer) newID() uint64 {
	id := splitmix64(t.ids.Add(1) ^ t.seed)
	if id == 0 {
		id = 1
	}
	return id
}

// Span is one in-flight stage of a trace. A nil *Span (untraced event
// or absent tracer) no-ops on every method.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// StartSpan opens a span under parent. It returns nil — free to carry
// and to End — when the tracer is nil or the parent is untraced.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &Span{t: t, rec: SpanRecord{
		Trace:  parent.TraceID,
		Span:   t.newID(),
		Parent: parent.SpanID,
		Name:   name,
		Start:  time.Now(),
	}}
}

// Context returns the span's own context, for parenting children
// (including across the AppVisor wire). Zero for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.Trace, SpanID: s.rec.Span}
}

// Attr annotates the span. Returns s for chaining; nil-safe.
func (s *Span) Attr(key, value string) *Span {
	if s != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
	}
	return s
}

// AttrInt annotates the span with an integer value.
func (s *Span) AttrInt(key string, value int64) *Span {
	if s != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: itoa(value)})
	}
	return s
}

// End completes the span and publishes it to the ring. Calling End
// more than once records the span more than once; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.rec.Start)
	s.t.record(&s.rec)
}

// record publishes one completed span: claim a slot in the span's
// shard, swap the record in, count a drop if the slot held an unread
// span.
func (t *Tracer) record(rec *SpanRecord) {
	sh := t.shards[rec.Span&t.shardMask]
	idx := (sh.next.Add(1) - 1) & t.slotMask
	if old := sh.slots[idx].Swap(rec); old != nil {
		t.Drops.Add(1)
	}
	t.Spans.Add(1)
}

// Snapshot copies every span currently in the ring, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for _, sh := range t.shards {
		for i := range sh.slots {
			if rec := sh.slots[i].Load(); rec != nil {
				out = append(out, *rec)
			}
		}
	}
	sortSpans(out)
	return out
}

// Trace is one trace's spans, oldest first.
type Trace struct {
	ID    uint64
	Spans []SpanRecord
}

// Traces groups the ring's spans by trace, most recent trace first,
// returning at most limit traces (0 = all).
func (t *Tracer) Traces(limit int) []Trace {
	spans := t.Snapshot()
	byID := make(map[uint64]*Trace)
	order := make([]*Trace, 0, 16)
	for _, sp := range spans {
		tr := byID[sp.Trace]
		if tr == nil {
			tr = &Trace{ID: sp.Trace}
			byID[sp.Trace] = tr
			order = append(order, tr)
		}
		tr.Spans = append(tr.Spans, sp)
	}
	// Most recent first: sort by the start of each trace's first span.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	if limit > 0 && len(order) > limit {
		order = order[:limit]
	}
	out := make([]Trace, len(order))
	for i, tr := range order {
		out[i] = *tr
	}
	return out
}

// sortSpans orders records by start time.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// itoa is a minimal int64 formatter, avoiding strconv on the span hot
// path's import graph (kept tiny on purpose).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
