package trace

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"legosdn/internal/metrics"
)

// HTTPHandler serves the ring at /debug/traces:
//
//	GET /debug/traces                 recent traces as text
//	GET /debug/traces?limit=20        at most 20 traces
//	GET /debug/traces?format=chrome   Chrome trace_event JSON for
//	                                  chrome://tracing / Perfetto
func (t *Tracer) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteChrome(w)
			return
		}
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.WriteText(w, limit)
	})
}

// NewDebugMux assembles the observability endpoint served on
// -metrics-addr: Prometheus metrics, the trace ring, and net/http/pprof
// profiles — everything needed to join "what happened" (traces, logs)
// with "where did the CPU go" (pprof) on one port.
//
//	/metrics             Prometheus exposition (when reg != nil)
//	/debug/traces        recent traces (text or chrome JSON)
//	/debug/pprof/...     CPU, heap, goroutine, block, mutex profiles
func NewDebugMux(t *Tracer, reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.Handle("/debug/traces", t.HTTPHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
