package netlog

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// nopSender discards rollback traffic; shard tests exercise shadow
// state, not the wire.
type nopSender struct{}

func (nopSender) SendMessage(uint64, openflow.Message) error { return nil }
func (nopSender) Barrier(uint64) error                       { return nil }

// TestShardedHookDisjointSwitches drives the outbound hook from many
// goroutines, each hammering its own DPID. With per-shard locks the
// shadows must stay consistent and -race must stay quiet; before
// sharding this serialized every switch on one Manager.mu.
func TestShardedHookDisjointSwitches(t *testing.T) {
	m := NewManager(nopSender{}, netsim.NewFakeClock(time.Unix(10000, 0)))
	hook := m.Hook()

	const (
		switches = 8
		mods     = 200
	)
	var wg sync.WaitGroup
	for d := uint64(1); d <= switches; d++ {
		wg.Add(1)
		go func(dpid uint64) {
			defer wg.Done()
			for i := 0; i < mods; i++ {
				fm := addPort(uint16(i%16+1), uint16(i%8+1), 101)
				if _, err := hook(dpid, fm); err != nil {
					t.Errorf("dpid %d: %v", dpid, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()

	for d := uint64(1); d <= switches; d++ {
		if got := len(m.ShadowEntries(d)); got != 16*8/8 {
			// 16 in-ports x 8 priorities, but i%16 and i%8 repeat in
			// lockstep every 16 iterations: 16 distinct (port, prio)
			// pairs survive as shadow entries.
			t.Fatalf("dpid %d: shadow has %d entries, want 16", d, got)
		}
	}
}

// TestShardedTxnAbortAcrossShards opens a transaction spanning several
// DPIDs and aborts it while unrelated switches keep applying mods; the
// journal must restore exactly the touched switches.
func TestShardedTxnAbortAcrossShards(t *testing.T) {
	m := NewManager(nopSender{}, netsim.NewFakeClock(time.Unix(10000, 0)))
	hook := m.Hook()

	// Baseline entries on dpids 1..4 outside any transaction.
	for d := uint64(1); d <= 4; d++ {
		if _, err := hook(d, addPort(1, 10, 101)); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[uint64]string)
	for d := uint64(1); d <= 4; d++ {
		before[d] = m.ShadowFingerprint(d)
	}

	tx := m.Begin()
	m.SetActive(tx)
	var wg sync.WaitGroup
	for d := uint64(1); d <= 4; d++ {
		wg.Add(1)
		go func(dpid uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := hook(dpid, addPort(uint16(i%12+2), 20, 102)); err != nil {
					t.Errorf("dpid %d: %v", dpid, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	m.SetActive(nil)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	for d := uint64(1); d <= 4; d++ {
		if got := m.ShadowFingerprint(d); got != before[d] {
			t.Fatalf("dpid %d: abort did not restore shadow: %s != %s", d, got, before[d])
		}
	}
}

// BenchmarkHookDisjointDPIDs measures hook throughput with N goroutines
// on N distinct switches — the contention profile sharding targets.
func BenchmarkHookDisjointDPIDs(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := NewManager(nopSender{}, netsim.NewFakeClock(time.Unix(10000, 0)))
			hook := m.Hook()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(dpid uint64) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						fm := addPort(uint16(i%16+1), uint16(i%8+1), 101)
						if _, err := hook(dpid, fm); err != nil {
							b.Error(err)
							return
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
		})
	}
}
