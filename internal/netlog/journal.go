package netlog

import (
	"time"

	"legosdn/internal/flowtable"
	"legosdn/internal/openflow"
)

// Journal is the durability hook for the transaction layer. A Manager
// with a journal installed records every transaction's lifecycle —
// begin, one record per journaled FlowMod carrying the precomputed
// inverse, commit, abort — durably enough that a controller killed
// mid-transaction can detect the orphan at startup and replay the
// inverses against the switches before new events flow (the
// crash-consistency the paper's rollback guarantees assume).
//
// Calls arrive in journal order for a given transaction: TxnBegin
// strictly before its first TxnOp, TxnCommit/TxnAbort strictly after
// the last. TxnAbort is written only after the in-memory rollback has
// finished sending inverses, so a crash mid-rollback leaves the
// transaction open in the journal and recovery re-replays the inverses
// (they are absolute state restores, so replaying them twice
// converges). Implementations must be safe for concurrent use.
type Journal interface {
	TxnBegin(id uint64) error
	TxnOp(id uint64, op JournalOp) error
	TxnCommit(id uint64) error
	TxnAbort(id uint64) error
}

// JournalOp is the durable form of one journaled FlowMod's undo: the
// inverse messages that, sent in order, erase the op's effects.
type JournalOp struct {
	DPID     uint64
	Inverses []JournalInverse
}

// JournalInverse is one inverse control message. For entries the op
// destroyed (Restore true), Mod is the ADD that resurrects them with
// the FULL original hard timeout; Installed carries the entry's
// install time so recovery can recompute the remaining budget at
// replay time. For entries the op created, Mod is the strict delete.
type JournalInverse struct {
	Mod       *openflow.FlowMod
	Restore   bool
	Installed time.Time
}

// journalOp converts an in-memory undoOp to its durable form.
func (op undoOp) journalOp() JournalOp {
	jo := JournalOp{DPID: op.dpid}
	for _, k := range op.remove {
		jo.Inverses = append(jo.Inverses, JournalInverse{
			Mod: &openflow.FlowMod{
				Match:    k.match,
				Command:  openflow.FlowModDeleteStrict,
				Priority: k.priority,
				BufferID: openflow.BufferIDNone,
				OutPort:  openflow.PortNone,
			},
		})
	}
	for _, e := range op.restore {
		jo.Inverses = append(jo.Inverses, JournalInverse{
			Mod:       journalRestoreMod(e),
			Restore:   true,
			Installed: e.Installed,
		})
	}
	return jo
}

// journalRestoreMod builds the resurrecting ADD with the full original
// hard timeout (unlike restoreFlowMod, which deducts the budget spent
// by abort time — at journal-write time the abort instant is unknown).
func journalRestoreMod(e *flowtable.Entry) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:       e.Match,
		Cookie:      e.Cookie,
		Command:     openflow.FlowModAdd,
		IdleTimeout: e.IdleTimeout,
		HardTimeout: e.HardTimeout,
		Priority:    e.Priority,
		BufferID:    openflow.BufferIDNone,
		OutPort:     openflow.PortNone,
		Flags:       e.Flags,
		Actions:     openflow.CopyActions(e.Actions),
	}
}

// RemainingHardTimeout deducts the budget an entry spent installed from
// its full hard timeout, flooring at 1 second (the minimum the wire
// protocol can express for an about-to-expire entry). Recovery uses it
// to honor §3.2's remaining-budget rule across a controller restart.
func RemainingHardTimeout(full uint16, installed, now time.Time) uint16 {
	if full == 0 || installed.IsZero() {
		return full
	}
	remaining := int(full) - int(now.Sub(installed)/time.Second)
	if remaining < 1 {
		remaining = 1
	}
	return uint16(remaining)
}
