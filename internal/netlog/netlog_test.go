package netlog

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/flowtable"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// rig is a controller + single-switch network + installed NetLog.
type rig struct {
	c   *controller.Controller
	n   *netsim.Network
	m   *Manager
	sw  *netsim.Switch
	clk *netsim.FakeClock
}

func newRig(t *testing.T, hosts int) *rig {
	t.Helper()
	clk := netsim.NewFakeClock(time.Unix(10000, 0))
	c := controller.New(controller.Config{})
	t.Cleanup(c.Stop)
	n := netsim.Single(hosts, clk)
	m := NewManager(c, clk)
	m.Install(c)
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			t.Fatal(err)
		}
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	drainDispatch(t, c, uint64(len(n.Switches())))
	return &rig{c: c, n: n, m: m, sw: n.Switch(1), clk: clk}
}

// drainDispatch waits until the controller has dispatched at least n
// events, so queued SwitchUp events cannot race the test's own sends.
func drainDispatch(t testing.TB, c *controller.Controller, n uint64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for c.Dispatched.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher stuck at %d events, want %d", c.Dispatched.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *rig) mustSend(t *testing.T, fm *openflow.FlowMod) {
	t.Helper()
	if err := r.c.SendFlowMod(1, fm); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) barrier(t *testing.T) {
	t.Helper()
	if err := r.c.Barrier(1); err != nil {
		t.Fatal(err)
	}
}

func addPort(inPort uint16, prio uint16, out uint16) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardInPort
	m.InPort = inPort
	return &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: prio,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: out}},
	}
}

func TestTxnCommit(t *testing.T) {
	r := newRig(t, 2)
	tx := r.m.Begin()
	r.m.SetActive(tx)
	for i := uint16(1); i <= 3; i++ {
		r.mustSend(t, addPort(i, 10, 100+i))
	}
	r.m.SetActive(nil)
	if tx.Ops() != 3 {
		t.Fatalf("journal ops = %d", tx.Ops())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != TxnCommitted {
		t.Fatal("state should be committed")
	}
	if got := r.sw.Table().Len(); got != 3 {
		t.Fatalf("switch table len = %d, want 3", got)
	}
	// Closed transactions reject further transitions.
	if err := tx.Abort(); err != ErrTxnClosed {
		t.Fatalf("abort after commit = %v", err)
	}
	if err := tx.Commit(); err != ErrTxnClosed {
		t.Fatalf("double commit = %v", err)
	}
}

func TestTxnAbortUndoesAdds(t *testing.T) {
	r := newRig(t, 2)
	before := r.sw.Table().Fingerprint()
	tx := r.m.Begin()
	r.m.SetActive(tx)
	for i := uint16(1); i <= 5; i++ {
		r.mustSend(t, addPort(i, 10, 200))
	}
	r.m.SetActive(nil)
	r.barrier(t)
	if r.sw.Table().Len() != 5 {
		t.Fatal("adds never reached the switch")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.sw.Table().Fingerprint(); got != before {
		t.Fatalf("rollback left residue:\n%s", got)
	}
	if r.m.ShadowFingerprint(1) != before {
		t.Fatal("shadow diverged from switch")
	}
}

func TestTxnAbortRestoresOverwrittenAndDeleted(t *testing.T) {
	r := newRig(t, 2)
	// Committed baseline: three rules.
	r.mustSend(t, addPort(1, 10, 101))
	r.mustSend(t, addPort(2, 10, 102))
	r.mustSend(t, addPort(3, 20, 103))
	r.barrier(t)
	before := r.sw.Table().Fingerprint()

	tx := r.m.Begin()
	r.m.SetActive(tx)
	// Overwrite rule 1 (same match+prio, new action).
	r.mustSend(t, addPort(1, 10, 999))
	// Modify rule 2's actions.
	fm2 := addPort(2, 10, 888)
	fm2.Command = openflow.FlowModModifyStrict
	r.mustSend(t, fm2)
	// Delete rule 3.
	del := addPort(3, 20, 0)
	del.Command = openflow.FlowModDeleteStrict
	del.Actions = nil
	r.mustSend(t, del)
	// And add a brand-new rule 4.
	r.mustSend(t, addPort(4, 30, 104))
	r.m.SetActive(nil)
	r.barrier(t)
	if r.sw.Table().Fingerprint() == before {
		t.Fatal("transaction had no visible effect; test is vacuous")
	}

	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.sw.Table().Fingerprint(); got != before {
		t.Fatalf("rollback mismatch:\n got:\n%s\nwant:\n%s", got, before)
	}
	if r.m.Rollbacks.Load() != 1 || r.m.RolledBackMods.Load() == 0 {
		t.Fatalf("rollback counters: %d/%d", r.m.Rollbacks.Load(), r.m.RolledBackMods.Load())
	}
}

func TestAbortRestoresCountersViaCache(t *testing.T) {
	r := newRig(t, 2)
	h1, h2 := r.n.Host("h1"), r.n.Host("h2")
	// Committed rule forwarding h1->h2 traffic.
	fm := addPort(100, 10, 101) // host port base is 100 in netsim.Single
	r.mustSend(t, fm)
	r.barrier(t)
	// Pass traffic to accumulate counters.
	for i := 0; i < 7; i++ {
		r.n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, []byte("xx")))
	}

	tx := r.m.Begin()
	r.m.SetActive(tx)
	del := addPort(100, 10, 0)
	del.Command = openflow.FlowModDeleteStrict
	del.Actions = nil
	r.mustSend(t, del)
	r.m.SetActive(nil)
	r.barrier(t)
	if r.sw.Table().Len() != 0 {
		t.Fatal("delete never landed")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if r.sw.Table().Len() != 1 {
		t.Fatal("rollback did not restore the entry")
	}
	if r.m.CounterCacheSize() != 1 {
		t.Fatalf("counter cache size = %d", r.m.CounterCacheSize())
	}

	// Stats replies must show the pre-rollback counters.
	reply, err := r.c.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Flows) != 1 {
		t.Fatalf("flows = %d", len(reply.Flows))
	}
	if got := reply.Flows[0].PacketCount; got != 7 {
		t.Fatalf("rewritten packet count = %d, want 7", got)
	}
	// More traffic accumulates on top of the cached base.
	for i := 0; i < 3; i++ {
		r.n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, []byte("xx")))
	}
	reply, err = r.c.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if got := reply.Flows[0].PacketCount; got != 10 {
		t.Fatalf("packet count after more traffic = %d, want 10", got)
	}
}

func TestAbortPreservesHardTimeoutBudget(t *testing.T) {
	r := newRig(t, 2)
	fm := addPort(1, 10, 101)
	fm.HardTimeout = 10
	r.mustSend(t, fm)
	r.barrier(t)

	r.clk.Advance(4 * time.Second)
	tx := r.m.Begin()
	r.m.SetActive(tx)
	del := addPort(1, 10, 0)
	del.Command = openflow.FlowModDeleteStrict
	del.Actions = nil
	r.mustSend(t, del)
	r.m.SetActive(nil)
	r.barrier(t)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	entries := r.sw.Table().Entries()
	if len(entries) != 1 {
		t.Fatal("entry not restored")
	}
	if got := entries[0].HardTimeout; got != 6 {
		t.Fatalf("restored hard timeout = %d, want 6 (10 - 4 elapsed)", got)
	}
	// The restored entry must still expire on schedule.
	r.clk.Advance(7 * time.Second)
	r.n.Tick()
	if r.sw.Table().Len() != 0 {
		t.Fatal("restored entry never expired")
	}
}

func TestFlowRemovedKeepsShadowHonest(t *testing.T) {
	r := newRig(t, 2)
	fm := addPort(1, 10, 101)
	fm.IdleTimeout = 2
	fm.Flags = openflow.FlowModFlagSendFlowRem
	r.mustSend(t, fm)
	r.barrier(t)
	if len(r.m.ShadowEntries(1)) != 1 {
		t.Fatal("shadow missed the add")
	}
	r.clk.Advance(3 * time.Second)
	r.n.Tick()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.m.ShadowEntries(1)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("shadow never observed the expiry")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCounterEvictionOnRealDelete(t *testing.T) {
	r := newRig(t, 2)
	r.mustSend(t, addPort(1, 10, 101))
	r.barrier(t)
	tx := r.m.Begin()
	r.m.SetActive(tx)
	del := addPort(1, 10, 0)
	del.Command = openflow.FlowModDeleteStrict
	r.mustSend(t, del)
	r.m.SetActive(nil)
	tx.Abort()
	// Cache may hold an adjustment (zero counters skip it); force one.
	sh := r.m.shardOf(1)
	sh.mu.Lock()
	sh.counters[counterKey{1, del.Match.Normalize(), 10}] = counterAdjust{packets: 5}
	sh.mu.Unlock()

	// A committed (non-transactional) delete must evict the cache entry.
	del2 := addPort(1, 10, 0)
	del2.Command = openflow.FlowModDeleteStrict
	r.mustSend(t, del2)
	r.barrier(t)
	if r.m.CounterCacheSize() != 0 {
		t.Fatalf("cache size = %d after real delete", r.m.CounterCacheSize())
	}
}

func TestSwitchChurnClearsShadow(t *testing.T) {
	r := newRig(t, 2)
	r.mustSend(t, addPort(1, 10, 101))
	r.barrier(t)
	if len(r.m.ShadowEntries(1)) != 1 {
		t.Fatal("shadow missing entry")
	}
	r.n.SetSwitchDown(1, true)
	deadline := time.Now().Add(2 * time.Second)
	for len(r.m.ShadowEntries(1)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch-down never cleared the shadow")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDelayBufferHoldFlushDiscard(t *testing.T) {
	clk := netsim.NewFakeClock(time.Unix(0, 0))
	c := controller.New(controller.Config{})
	defer c.Stop()
	n := netsim.Single(2, clk)
	db := NewDelayBuffer(c)
	c.AddOutboundHook(db.Hook())
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		sw.Attach(swSide)
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	sw := n.Switch(1)

	// Held messages do not reach the switch.
	db.BeginHold()
	c.SendFlowMod(1, addPort(1, 10, 101))
	c.SendFlowMod(1, addPort(2, 10, 102))
	c.Barrier(1)
	if sw.Table().Len() != 0 || db.Held() != 2 {
		t.Fatalf("held=%d len=%d", db.Held(), sw.Table().Len())
	}
	// Flush releases them in order.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Barrier(1)
	if sw.Table().Len() != 2 || db.FlushedMods.Load() != 2 {
		t.Fatalf("flush failed: len=%d flushed=%d", sw.Table().Len(), db.FlushedMods.Load())
	}

	// Discard drops the next batch.
	db.BeginHold()
	c.SendFlowMod(1, addPort(3, 10, 103))
	db.Discard()
	c.Barrier(1)
	if sw.Table().Len() != 2 || db.DiscardedMods.Load() != 1 {
		t.Fatalf("discard failed: len=%d discarded=%d", sw.Table().Len(), db.DiscardedMods.Load())
	}
	// After the hold, messages flow directly.
	c.SendFlowMod(1, addPort(4, 10, 104))
	c.Barrier(1)
	if sw.Table().Len() != 3 {
		t.Fatal("post-hold message blocked")
	}
}

func TestRewriteStatsUnit(t *testing.T) {
	m := NewManager(nil, nil)
	match := openflow.MatchAll()
	m.shardOf(1).counters[counterKey{1, match.Normalize(), 5}] = counterAdjust{packets: 100, bytes: 1000}
	reply := &openflow.StatsReply{
		StatsType: openflow.StatsTypeFlow,
		Flows: []openflow.FlowStatsEntry{
			{Match: match, Priority: 5, PacketCount: 1, ByteCount: 10},
			{Match: match, Priority: 6, PacketCount: 2, ByteCount: 20},
		},
	}
	m.RewriteStats(1, reply)
	if reply.Flows[0].PacketCount != 101 || reply.Flows[0].ByteCount != 1010 {
		t.Fatalf("adjusted flow wrong: %+v", reply.Flows[0])
	}
	if reply.Flows[1].PacketCount != 2 {
		t.Fatalf("unrelated flow touched: %+v", reply.Flows[1])
	}
	// Non-flow replies untouched.
	port := &openflow.StatsReply{StatsType: openflow.StatsTypePort}
	m.RewriteStats(1, port)
}

// Property: any transaction of random FlowMods, aborted, is the
// identity on switch rule state.
func TestQuickAbortIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clk := flowtable.NewFakeClock(time.Unix(5000, 0))
		c := controller.New(controller.Config{})
		defer c.Stop()
		n := netsim.Single(2, clk)
		m := NewManager(c, clk)
		m.Install(c)
		for _, sw := range n.Switches() {
			ctrlSide, swSide := openflow.Pipe()
			sw.Attach(swSide)
			if err := c.AttachSwitchConn(ctrlSide); err != nil {
				return false
			}
		}
		drainDispatch(t, c, uint64(len(n.Switches())))
		sw := n.Switch(1)
		// Committed baseline of random adds.
		for i := 0; i < 4; i++ {
			c.SendFlowMod(1, addPort(uint16(r.Intn(6)), uint16(5+r.Intn(3)), uint16(100+r.Intn(4))))
		}
		c.Barrier(1)
		before := sw.Table().Fingerprint()

		tx := m.Begin()
		m.SetActive(tx)
		for i := 0; i < 6; i++ {
			fm := addPort(uint16(r.Intn(6)), uint16(5+r.Intn(3)), uint16(100+r.Intn(4)))
			switch r.Intn(4) {
			case 1:
				fm.Command = openflow.FlowModModifyStrict
			case 2:
				fm.Command = openflow.FlowModDeleteStrict
				fm.Actions = nil
			case 3:
				fm.Command = openflow.FlowModDelete
				fm.Actions = nil
			}
			c.SendFlowMod(1, fm)
		}
		m.SetActive(nil)
		c.Barrier(1)
		if err := tx.Abort(); err != nil {
			return false
		}
		return sw.Table().Fingerprint() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowResyncsOnReconnect(t *testing.T) {
	r := newRig(t, 2)
	// Committed state the switch retains across a control-channel loss.
	r.mustSend(t, addPort(1, 10, 101))
	r.mustSend(t, addPort(2, 20, 102))
	r.barrier(t)

	// Sever and re-establish the control channel: the shadow clears on
	// SwitchDown and must rebuild from flow stats on SwitchUp.
	r.n.Switch(1).Detach()
	deadline := time.Now().Add(3 * time.Second)
	for len(r.m.ShadowEntries(1)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("shadow never cleared on disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	ctrlSide, swSide := openflow.Pipe()
	if err := r.n.Switch(1).Attach(swSide); err != nil {
		t.Fatal(err)
	}
	if err := r.c.AttachSwitchConn(ctrlSide); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for len(r.m.ShadowEntries(1)) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("shadow resync incomplete: %d entries", len(r.m.ShadowEntries(1)))
		}
		time.Sleep(time.Millisecond)
	}
	// The resynced shadow mirrors the switch's semantic rule state.
	if r.m.ShadowFingerprint(1) != r.sw.Table().Fingerprint() {
		t.Fatalf("shadow diverged after resync:\n%s\nvs\n%s",
			r.m.ShadowFingerprint(1), r.sw.Table().Fingerprint())
	}
	// And transactions over the resynced state roll back exactly.
	before := r.sw.Table().Fingerprint()
	tx := r.m.Begin()
	r.m.SetActive(tx)
	del := addPort(1, 10, 0)
	del.Command = openflow.FlowModDeleteStrict
	del.Actions = nil
	r.mustSend(t, del)
	r.m.SetActive(nil)
	r.barrier(t)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if r.sw.Table().Fingerprint() != before {
		t.Fatal("rollback over resynced shadow left residue")
	}
}
