// Package netlog implements LegoSDN's network transaction layer (§3.2
// of the paper). Control messages that alter switch state are bundled
// into transactions with all-or-nothing semantics; aborting a
// transaction rolls every switch back to its pre-transaction state.
//
// The core insight is the paper's: every state-altering control message
// is invertible. The inverse of an ADD is a strict delete; the inverse
// of a MODIFY or DELETE is the restoration of the previous entries. The
// imperfect residue of an undo — lost flow timeouts and counters — is
// papered over exactly as §3.2 prescribes: restored entries carry their
// remaining hard-timeout budget, and destroyed counter values live on
// in a counter-cache that corrects subsequent statistics replies.
//
// The Manager maintains a shadow flow table per switch (the same
// flowtable implementation the simulated switches run) by observing the
// controller's outbound messages, which is how it knows what an inverse
// must restore without querying the network on every write.
package netlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/flightrec"
	"legosdn/internal/flowtable"
	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// Sender abstracts the controller surface NetLog writes rollback
// messages through. *controller.Controller satisfies it.
type Sender interface {
	SendMessage(dpid uint64, msg openflow.Message) error
	Barrier(dpid uint64) error
}

// StatsRequester is optionally implemented by Senders that can read
// flow statistics; NetLog uses it to capture an entry's counters before
// a transactional write destroys them (*controller.Controller
// implements it).
type StatsRequester interface {
	RequestStats(dpid uint64, req *openflow.StatsRequest) (*openflow.StatsReply, error)
}

// TxnState tracks a transaction's lifecycle.
type TxnState int

// Transaction states.
const (
	TxnOpen TxnState = iota
	TxnCommitted
	TxnAborted
)

func (s TxnState) String() string {
	switch s {
	case TxnOpen:
		return "open"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrTxnClosed reports an operation on a committed or aborted
// transaction.
var ErrTxnClosed = errors.New("netlog: transaction closed")

// undoOp reverses one journaled FlowMod: delete what it added, restore
// what it destroyed or overwrote.
type undoOp struct {
	dpid    uint64
	remove  []strictKey        // entries the op created
	restore []*flowtable.Entry // entries the op destroyed/overwrote (deep copies)
}

type strictKey struct {
	match    openflow.Match
	priority uint16
}

// Txn is one network-wide atomic update.
type Txn struct {
	ID    uint64
	m     *Manager
	state TxnState
	ops   []undoOp
	dpids map[uint64]bool // switches touched

	// journaled is set once the transaction's begin record (and at
	// least one op) is on disk; only journaled transactions write
	// commit/abort records.
	journaled bool

	// span is the "netlog.txn" lifecycle span for a traced transaction
	// (nil otherwise); sc is its context, the parent of journal and
	// abort child spans.
	span *trace.Span
	sc   trace.SpanContext

	// traceID is the opening event's trace id, kept even for unsampled
	// events so flight records correlate txn lifecycle with dispatch.
	traceID uint64
}

// counterKey identifies a flow entry across delete/restore cycles.
type counterKey struct {
	dpid     uint64
	match    openflow.Match
	priority uint16
}

type counterAdjust struct {
	packets uint64
	bytes   uint64
}

// shardCount fixes the number of DPID shards. Power of two so the
// index is a mask; 16 is plenty ahead of per-shard contention for any
// realistic switch fan-out.
const shardCount = 16

// netShard holds the per-switch mutable state for one slice of the
// DPID space: shadow flow tables and the counter-cache. Transactions
// touching disjoint switches lock disjoint shards and never contend.
type netShard struct {
	mu       sync.Mutex
	shadows  map[uint64]*flowtable.Table
	counters map[counterKey]counterAdjust
}

// Manager is the NetLog engine: shadow state, transaction journal and
// counter-cache. It is also a controller.App — register it FIRST in the
// dispatch chain so it observes FlowRemoved and switch lifecycle events
// before any app reacts to them (under the parallel pipeline it is an
// InlineObserver, which enforces exactly that).
//
// Locking: shadow tables and the counter-cache are sharded by DPID
// with a per-shard mutex; the global mu covers only transaction
// lifecycle (begin/commit/abort ordering, the active journal and the
// rollback window). Lock order is shard.mu before mu — never acquire a
// shard lock while holding mu.
type Manager struct {
	sender Sender
	clock  flowtable.Clock
	tracer *trace.Tracer
	flight *flightrec.Recorder

	// journal, when set, makes transactions crash-recoverable; see
	// SetJournal. Written once before traffic flows, read without
	// synchronization on the hot path.
	journal Journal

	shards [shardCount]netShard

	mu       sync.Mutex
	active   *Txn
	nextTxn  uint64
	rollback int // >0 while rollback messages are in flight: hook passes them through

	// sendFault, when set, intercepts rollback-path sends (fault
	// injection); see SetSendFault.
	sendFault atomic.Pointer[SendFault]

	// Rollbacks counts completed aborts; RolledBackMods counts inverse
	// messages sent. Atomic: read live by benchmarks.
	Rollbacks      metrics.Counter
	RolledBackMods metrics.Counter
	CommittedTxns  metrics.Counter
	// BegunTxns counts transactions opened via Begin.
	BegunTxns metrics.Counter
	// JournalErrors counts failed journal appends. Journaling is
	// best-effort by policy: a write error degrades recoverability,
	// never availability.
	JournalErrors metrics.Counter

	// inversionLatency times Abort end to end (inverse computation,
	// inverse sends and the closing barriers). Nil when uninstrumented.
	inversionLatency *metrics.Histogram
}

// NewManager creates a NetLog engine writing rollbacks through sender.
// clock may be nil (real time).
func NewManager(sender Sender, clock flowtable.Clock) *Manager {
	if clock == nil {
		clock = flowtable.RealClock{}
	}
	m := &Manager{sender: sender, clock: clock}
	for i := range m.shards {
		m.shards[i].shadows = make(map[uint64]*flowtable.Table)
		m.shards[i].counters = make(map[counterKey]counterAdjust)
	}
	return m
}

// SetTracer wires the tracing layer in; nil disables transaction spans.
func (m *Manager) SetTracer(t *trace.Tracer) { m.tracer = t }

// SetJournal installs the durability journal. Must be called before
// traffic flows (the field is read without synchronization on the hot
// path); nil leaves transactions memory-only, the pre-durability
// behavior.
func (m *Manager) SetJournal(j Journal) { m.journal = j }

// SetFlight installs the always-on flight recorder. Like SetJournal,
// written once before traffic flows; nil leaves txn lifecycle
// unrecorded.
func (m *Manager) SetFlight(f *flightrec.Recorder) { m.flight = f }

// journalAppend runs one journal write, absorbing errors into the
// JournalErrors counter (availability over durability).
func (m *Manager) journalAppend(fn func() error) {
	if err := fn(); err != nil {
		m.JournalErrors.Add(1)
	}
}

// shardOf maps a datapath id to its shard.
func (m *Manager) shardOf(dpid uint64) *netShard {
	return &m.shards[dpid&(shardCount-1)]
}

// Install wires the manager into a controller: outbound hook, stats
// rewriter and event subscription.
func (m *Manager) Install(c *controller.Controller) {
	c.AddOutboundHook(m.Hook())
	c.AddStatsRewriter(m.RewriteStats)
	c.Register(m)
}

// Instrument registers the manager's transaction counters and the
// inversion-latency histogram into reg.
func (m *Manager) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("legosdn_netlog_txn_begun_total", "transactions opened", &m.BegunTxns)
	reg.RegisterCounter("legosdn_netlog_txn_committed_total", "transactions committed", &m.CommittedTxns)
	reg.RegisterCounter("legosdn_netlog_txn_rollbacks_total", "transactions aborted and rolled back", &m.Rollbacks)
	reg.RegisterCounter("legosdn_netlog_rolled_back_mods_total", "inverse messages sent during rollbacks", &m.RolledBackMods)
	reg.RegisterCounter("legosdn_netlog_journal_errors_total", "failed durable-journal appends", &m.JournalErrors)
	m.inversionLatency = reg.Histogram("legosdn_netlog_inversion_seconds",
		"latency of one transaction abort: inverse sends plus closing barriers", nil)
	reg.RegisterGaugeFunc("legosdn_netlog_counter_cache_entries",
		"live counter-cache adjustments", func() float64 { return float64(m.CounterCacheSize()) })
}

// shadow returns dpid's shadow table, creating it on first touch.
// Caller holds the dpid's shard lock.
func (m *Manager) shadow(sh *netShard, dpid uint64) *flowtable.Table {
	t := sh.shadows[dpid]
	if t == nil {
		t = flowtable.New(m.clock)
		sh.shadows[dpid] = t
	}
	return t
}

// ShadowFingerprint exposes the shadow's rule state for tests and the
// invariant checker.
func (m *Manager) ShadowFingerprint(dpid uint64) string {
	sh := m.shardOf(dpid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.shadow(sh, dpid).Fingerprint()
}

// ShadowEntries returns deep copies of the shadow's entries.
func (m *Manager) ShadowEntries(dpid uint64) []*flowtable.Entry {
	sh := m.shardOf(dpid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return m.shadow(sh, dpid).Entries()
}

// Begin opens a transaction.
func (m *Manager) Begin() *Txn {
	return m.BeginTraced(trace.SpanContext{})
}

// BeginTraced opens a transaction under the given trace context (the
// event whose processing this transaction brackets). The transaction's
// "netlog.txn" span stays open until Commit or Abort closes it with the
// final state; journaled mods and the abort appear as child spans.
func (m *Manager) BeginTraced(sc trace.SpanContext) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	m.BegunTxns.Add(1)
	tx := &Txn{ID: m.nextTxn, m: m, dpids: make(map[uint64]bool), traceID: sc.TraceID}
	if sp := m.tracer.StartSpan(sc, "netlog.txn"); sp != nil {
		sp.AttrInt("txn", int64(tx.ID))
		tx.span = sp
		tx.sc = sp.Context()
	}
	// No flight record here: Commit/Abort write one record per txn that
	// did something, which implies the begin. Recording every open would
	// double the per-event cost and fill the NetLog ring with noise.
	return tx
}

// SetActive routes subsequent hooked FlowMods into tx's journal; nil
// clears the active transaction. The controller dispatch loop is
// single-threaded, so one active transaction suffices.
func (m *Manager) SetActive(tx *Txn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active = tx
}

// Active returns the transaction messages are currently journaled into.
func (m *Manager) Active() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Hook returns the outbound hook maintaining shadow state and the
// journal. Messages are never rewritten or suppressed — NetLog is an
// observer on the forward path.
func (m *Manager) Hook() controller.OutboundHook {
	return func(dpid uint64, msg openflow.Message) (openflow.Message, error) {
		fm, ok := msg.(*openflow.FlowMod)
		if !ok {
			return msg, nil
		}
		// Capture live counters for entries this write may destroy,
		// before any state changes (§3.2: NetLog "stores and maintains
		// the timeout and counter information of a flow table entry
		// before deleting it"). Only transactional writes pay this cost.
		var live map[strictKey]openflow.FlowStatsEntry
		if m.txnOpenAndForward() && fm.Command != openflow.FlowModAdd {
			live = m.liveCounters(dpid, fm)
		}

		sh := m.shardOf(dpid)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		m.mu.Lock()
		if m.rollback > 0 {
			// Inverse messages: shadow updates are applied directly by
			// the abort path; pass through untouched.
			m.mu.Unlock()
			return msg, nil
		}
		active := m.active
		m.mu.Unlock()

		// Journal span: covers inverse computation and the journal
		// append for one FlowMod of a traced transaction.
		var jsp *trace.Span
		if active != nil {
			if jsp = m.tracer.StartSpan(active.sc, "netlog.journal"); jsp != nil {
				jsp.AttrInt("dpid", int64(dpid)).AttrInt("cmd", int64(fm.Command))
				defer jsp.End()
			}
		}

		undo := m.computeUndo(sh, dpid, fm)
		for i, e := range undo.restore {
			if ls, ok := live[strictKey{e.Match, e.Priority}]; ok {
				undo.restore[i].PacketCount = ls.PacketCount
				undo.restore[i].ByteCount = ls.ByteCount
			}
		}
		if _, err := m.shadow(sh, dpid).Apply(fm); err != nil {
			// The switch will reject it too; nothing to journal.
			return msg, nil
		}
		m.noteCounterEviction(sh, dpid, fm)
		if active != nil {
			m.mu.Lock()
			// Re-check under mu: the transaction may have closed while
			// the shadow applied; a closed journal must not grow. The
			// shard lock is still held, so journal order matches shadow
			// apply order for this switch.
			if m.active == active && active.state == TxnOpen {
				active.ops = append(active.ops, undo)
				active.dpids[dpid] = true
				if m.journal != nil {
					// Durable journal, written under mu so record order
					// matches op order. TxnBegin is lazy — written with
					// the first op — so transactions that never touch a
					// switch cost no fsyncs.
					if !active.journaled {
						active.journaled = true
						m.journalAppend(func() error { return m.journal.TxnBegin(active.ID) })
					}
					jop := undo.journalOp()
					m.journalAppend(func() error { return m.journal.TxnOp(active.ID, jop) })
				}
			}
			m.mu.Unlock()
		}
		return msg, nil
	}
}

// txnOpenAndForward reports whether an open transaction is active and
// we are on the forward (non-rollback) path.
func (m *Manager) txnOpenAndForward() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rollback == 0 && m.active != nil && m.active.state == TxnOpen
}

// liveCounters reads the switch's current counters for entries a
// destructive FlowMod may touch. Best effort: a failed read simply
// leaves zero counters in the journal.
func (m *Manager) liveCounters(dpid uint64, fm *openflow.FlowMod) map[strictKey]openflow.FlowStatsEntry {
	sr, ok := m.sender.(StatsRequester)
	if !ok {
		return nil
	}
	outPort := openflow.PortNone
	if fm.Command == openflow.FlowModDelete || fm.Command == openflow.FlowModDeleteStrict {
		outPort = fm.OutPort
	}
	reply, err := sr.RequestStats(dpid, &openflow.StatsRequest{
		StatsType: openflow.StatsTypeFlow,
		Flow:      &openflow.FlowStatsRequest{Match: fm.Match, TableID: 0xff, OutPort: outPort},
	})
	if err != nil {
		return nil
	}
	out := make(map[strictKey]openflow.FlowStatsEntry, len(reply.Flows))
	for _, f := range reply.Flows {
		out[strictKey{f.Match.Normalize(), f.Priority}] = f
	}
	return out
}

// computeUndo derives the inverse of fm against the current shadow.
// Caller holds the dpid's shard lock.
func (m *Manager) computeUndo(shd *netShard, dpid uint64, fm *openflow.FlowMod) undoOp {
	sh := m.shadow(shd, dpid)
	norm := fm.Match.Normalize()
	op := undoOp{dpid: dpid}
	switch fm.Command {
	case openflow.FlowModAdd:
		if prev := findStrict(sh, norm, fm.Priority); prev != nil {
			op.restore = append(op.restore, prev)
		} else {
			op.remove = append(op.remove, strictKey{norm, fm.Priority})
		}
	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := fm.Command == openflow.FlowModModifyStrict
		affected := selectEntries(sh, norm, fm.Priority, strict)
		if len(affected) == 0 {
			// Behaves as an add.
			op.remove = append(op.remove, strictKey{norm, fm.Priority})
		} else {
			op.restore = append(op.restore, affected...)
		}
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := fm.Command == openflow.FlowModDeleteStrict
		victims := selectEntries(sh, norm, fm.Priority, strict)
		// out_port filtering must mirror the table's semantics.
		for _, v := range victims {
			if fm.OutPort != openflow.PortNone && !outputsTo(v, fm.OutPort) {
				continue
			}
			op.restore = append(op.restore, v)
		}
	}
	return op
}

// noteCounterEviction clears counter-cache entries whose flow is being
// genuinely deleted or replaced (the adjustment must not outlive the
// rule identity it corrects). Caller holds the dpid's shard lock.
func (m *Manager) noteCounterEviction(sh *netShard, dpid uint64, fm *openflow.FlowMod) {
	norm := fm.Match.Normalize()
	switch fm.Command {
	case openflow.FlowModAdd:
		delete(sh.counters, counterKey{dpid, norm, fm.Priority})
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		for k := range sh.counters {
			if k.dpid != dpid {
				continue
			}
			if fm.Command == openflow.FlowModDeleteStrict {
				if k.match == norm && k.priority == fm.Priority {
					delete(sh.counters, k)
				}
			} else if norm.Subsumes(&k.match) {
				delete(sh.counters, k)
			}
		}
	}
}

func findStrict(sh *flowtable.Table, norm openflow.Match, prio uint16) *flowtable.Entry {
	for _, e := range sh.Entries() {
		if e.Match == norm && e.Priority == prio {
			return e
		}
	}
	return nil
}

func selectEntries(sh *flowtable.Table, norm openflow.Match, prio uint16, strict bool) []*flowtable.Entry {
	var out []*flowtable.Entry
	for _, e := range sh.Entries() {
		if strict {
			if e.Match == norm && e.Priority == prio {
				out = append(out, e)
			}
		} else if norm.Subsumes(&e.Match) {
			out = append(out, e)
		}
	}
	return out
}

func outputsTo(e *flowtable.Entry, port uint16) bool {
	for _, a := range e.Actions {
		if o, ok := a.(*openflow.ActionOutput); ok && o.Port == port {
			return true
		}
	}
	return false
}

// Commit finalizes the transaction: barriers flush every touched switch
// and the journal is discarded.
func (t *Txn) Commit() error {
	t.m.mu.Lock()
	if t.state != TxnOpen {
		t.m.mu.Unlock()
		return ErrTxnClosed
	}
	t.state = TxnCommitted
	if t.m.active == t {
		t.m.active = nil
	}
	t.m.CommittedTxns.Add(1)
	dpids := keys(t.dpids)
	span, ops := t.span, len(t.ops)
	journaled := t.journaled
	t.span = nil
	t.m.mu.Unlock()
	if journaled && t.m.journal != nil {
		// The commit record makes the decision durable before the
		// barriers flush it: a crash after this point must not roll the
		// transaction back.
		t.m.journalAppend(func() error { return t.m.journal.TxnCommit(t.ID) })
	}
	if span != nil {
		span.Attr("state", "committed").AttrInt("ops", int64(ops)).End()
	}
	if ops > 0 || journaled {
		// Empty transactions (an app handled the event and sent
		// nothing) are the common case at capacity; recording them
		// would lap real evidence out of the bounded ring in
		// milliseconds. A commit record implies its begin.
		t.m.flight.Record(flightrec.Record{
			Layer: flightrec.LayerNetLog, Kind: flightrec.KindTxnCommit,
			Trace: t.traceID, Txn: t.ID, N: int64(ops),
		})
	}
	for _, d := range dpids {
		if err := t.m.sender.Barrier(d); err != nil {
			return fmt.Errorf("netlog: commit barrier to %d: %w", d, err)
		}
	}
	return nil
}

// Abort rolls back every journaled operation in reverse order, restoring
// destroyed entries with their remaining timeout budget and feeding their
// counter values into the counter-cache.
func (t *Txn) Abort() error {
	if t.m.inversionLatency != nil {
		defer t.m.inversionLatency.ObserveSince(time.Now())
	}
	t.m.mu.Lock()
	if t.state != TxnOpen {
		t.m.mu.Unlock()
		return ErrTxnClosed
	}
	t.state = TxnAborted
	if t.m.active == t {
		t.m.active = nil
	}
	t.m.rollback++
	ops := t.ops
	span := t.span
	journaled := t.journaled
	t.span = nil
	t.m.mu.Unlock()

	// The abort child span times the rollback itself (inverse sends plus
	// barriers); the parent txn span closes after it with the final state.
	abortSpan := t.m.tracer.StartSpan(t.sc, "netlog.abort")

	var firstErr error
	now := t.m.clock.Now()
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		sh := t.m.shardOf(op.dpid)
		for _, k := range op.remove {
			fm := &openflow.FlowMod{
				Match:    k.match,
				Command:  openflow.FlowModDeleteStrict,
				Priority: k.priority,
				BufferID: openflow.BufferIDNone,
				OutPort:  openflow.PortNone,
			}
			if err := t.m.send(op.dpid, fm); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.mu.Lock()
			t.m.shadow(sh, op.dpid).Apply(fm)
			sh.mu.Unlock()
			t.m.RolledBackMods.Add(1)
		}
		for _, e := range op.restore {
			fm := restoreFlowMod(e, now)
			if err := t.m.send(op.dpid, fm); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.mu.Lock()
			// Shadow restore preserves the original metadata exactly.
			t.m.shadow(sh, op.dpid).InsertEntry(e)
			if e.PacketCount > 0 || e.ByteCount > 0 {
				key := counterKey{op.dpid, e.Match, e.Priority}
				adj := sh.counters[key]
				adj.packets += e.PacketCount
				adj.bytes += e.ByteCount
				sh.counters[key] = adj
			}
			sh.mu.Unlock()
			t.m.RolledBackMods.Add(1)
		}
	}

	t.m.mu.Lock()
	t.m.rollback--
	t.m.Rollbacks.Add(1)
	dpids := keys(t.dpids)
	t.m.mu.Unlock()
	for _, d := range dpids {
		if err := t.m.sender.Barrier(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if journaled && t.m.journal != nil {
		// Written only after the inverse sends and barriers finished: a
		// crash mid-rollback leaves the transaction open in the journal
		// so recovery re-replays the (convergent) inverses.
		t.m.journalAppend(func() error { return t.m.journal.TxnAbort(t.ID) })
	}
	if abortSpan != nil {
		abortSpan.AttrInt("mods", int64(len(ops))).AttrInt("dpids", int64(len(dpids))).End()
	}
	if span != nil {
		span.Attr("state", "aborted").AttrInt("ops", int64(len(ops))).End()
	}
	t.m.flight.Record(flightrec.Record{
		Layer: flightrec.LayerNetLog, Kind: flightrec.KindTxnAbort,
		Trace: t.traceID, Txn: t.ID, N: int64(len(ops)),
		Note: fmt.Sprintf("rolled back across %d switch(es)", len(dpids)),
	})
	return firstErr
}

// SendFault intercepts rollback-path sends (the inverse messages an
// Abort emits). Returning a non-nil error makes that inverse op fail as
// a lost or rejected control message would: the shadow still records
// the undo, the switch never sees it, and the divergence becomes the
// §3.2 residue the counter-cache and resync paths must absorb. The hook
// may also inject side effects first (e.g. disconnecting the target
// switch mid-transaction) before letting the send proceed.
type SendFault func(dpid uint64, msg openflow.Message) error

// SetSendFault installs (or, with nil, removes) a rollback send fault.
// Safe to call while transactions are in flight.
func (m *Manager) SetSendFault(f SendFault) {
	if f == nil {
		m.sendFault.Store(nil)
		return
	}
	m.sendFault.Store(&f)
}

// send forwards one rollback message. The outbound hook sees it while
// m.rollback > 0 and passes it through without journaling.
func (m *Manager) send(dpid uint64, msg openflow.Message) error {
	if fp := m.sendFault.Load(); fp != nil {
		if err := (*fp)(dpid, msg); err != nil {
			return err
		}
	}
	return m.sender.SendMessage(dpid, msg)
}

// restoreFlowMod builds the ADD that resurrects a destroyed entry. The
// hard timeout carries only its unspent budget; the idle timeout is
// reinstated whole (an idle flow's clock restarts, the closest the wire
// protocol allows).
func restoreFlowMod(e *flowtable.Entry, now time.Time) *openflow.FlowMod {
	hard := e.HardTimeout
	if hard > 0 {
		spent := now.Sub(e.Installed)
		remaining := int(hard) - int(spent/time.Second)
		if remaining < 1 {
			remaining = 1 // about to expire: give it the minimum budget
		}
		hard = uint16(remaining)
	}
	return &openflow.FlowMod{
		Match:       e.Match,
		Cookie:      e.Cookie,
		Command:     openflow.FlowModAdd,
		IdleTimeout: e.IdleTimeout,
		HardTimeout: hard,
		Priority:    e.Priority,
		BufferID:    openflow.BufferIDNone,
		OutPort:     openflow.PortNone,
		Flags:       e.Flags,
		Actions:     openflow.CopyActions(e.Actions),
	}
}

// State reports the transaction's lifecycle state.
func (t *Txn) State() TxnState {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.state
}

// Ops reports how many operations the journal holds.
func (t *Txn) Ops() int {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return len(t.ops)
}

// RewriteStats folds cached counters into flow statistics replies, so an
// app reading stats after a rollback sees the counters the flow had
// accumulated before it was (transiently) destroyed.
func (m *Manager) RewriteStats(dpid uint64, reply *openflow.StatsReply) {
	if reply.StatsType != openflow.StatsTypeFlow {
		return
	}
	sh := m.shardOf(dpid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range reply.Flows {
		f := &reply.Flows[i]
		key := counterKey{dpid, f.Match.Normalize(), f.Priority}
		if adj, ok := sh.counters[key]; ok {
			f.PacketCount += adj.packets
			f.ByteCount += adj.bytes
		}
	}
}

// AdjustFlowRemoved folds cached counters into a FlowRemoved message, so
// final accounting survives rollbacks too.
func (m *Manager) AdjustFlowRemoved(dpid uint64, fr *openflow.FlowRemoved) {
	sh := m.shardOf(dpid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := counterKey{dpid, fr.Match.Normalize(), fr.Priority}
	if adj, ok := sh.counters[key]; ok {
		fr.PacketCount += adj.packets
		fr.ByteCount += adj.bytes
		delete(sh.counters, key)
	}
}

// CounterCacheSize reports how many counter adjustments are live,
// summed across shards.
func (m *Manager) CounterCacheSize() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		total += len(sh.counters)
		sh.mu.Unlock()
	}
	return total
}

// --- controller.App: shadow maintenance from switch events ---

// Name implements controller.App.
func (m *Manager) Name() string { return "netlog" }

// InlineObserve marks the manager as a controller.InlineObserver: under
// the parallel pipeline it still runs on the dispatch goroutine, before
// any reacting app, preserving the observe-first guarantee its shadow
// maintenance and in-place FlowRemoved correction depend on.
func (m *Manager) InlineObserve() {}

// Subscriptions implements controller.App.
func (m *Manager) Subscriptions() []controller.EventKind {
	return []controller.EventKind{
		controller.EventFlowRemoved,
		controller.EventSwitchUp,
		controller.EventSwitchDown,
	}
}

// HandleEvent implements controller.App: it keeps shadows honest as the
// network evolves on its own (expirations, switch churn) and corrects
// FlowRemoved counters in place before later apps observe them.
func (m *Manager) HandleEvent(ctx controller.Context, ev controller.Event) error {
	switch ev.Kind {
	case controller.EventFlowRemoved:
		fr, ok := ev.Message.(*openflow.FlowRemoved)
		if !ok {
			return nil
		}
		m.AdjustFlowRemoved(ev.DPID, fr)
		sh := m.shardOf(ev.DPID)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		m.shadow(sh, ev.DPID).Apply(&openflow.FlowMod{
			Match:    fr.Match,
			Command:  openflow.FlowModDeleteStrict,
			Priority: fr.Priority,
			BufferID: openflow.BufferIDNone,
			OutPort:  openflow.PortNone,
		})
	case controller.EventSwitchUp:
		m.resetShadow(ev.DPID)
		m.resyncShadow(ctx, ev.DPID)
	case controller.EventSwitchDown:
		// A departing switch invalidates its shadow; a reconnect will
		// resync from flow stats.
		m.resetShadow(ev.DPID)
	}
	return nil
}

func (m *Manager) resetShadow(dpid uint64) {
	sh := m.shardOf(dpid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.shadows, dpid)
	for k := range sh.counters {
		if k.dpid == dpid {
			delete(sh.counters, k)
		}
	}
}

// resyncShadow rebuilds a shadow from the switch's own flow table, so a
// reconnecting switch that kept state across the outage is mirrored
// faithfully. Failures leave the shadow empty; it relearns from writes.
func (m *Manager) resyncShadow(ctx controller.Context, dpid uint64) {
	if ctx == nil {
		return
	}
	reply, err := ctx.RequestStats(dpid, &openflow.StatsRequest{StatsType: openflow.StatsTypeFlow})
	if err != nil {
		return
	}
	now := m.clock.Now()
	shd := m.shardOf(dpid)
	shd.mu.Lock()
	defer shd.mu.Unlock()
	sh := m.shadow(shd, dpid)
	for _, f := range reply.Flows {
		sh.InsertEntry(&flowtable.Entry{
			Match:       f.Match,
			Priority:    f.Priority,
			Cookie:      f.Cookie,
			IdleTimeout: f.IdleTimeout,
			HardTimeout: f.HardTimeout,
			Actions:     f.Actions,
			PacketCount: f.PacketCount,
			ByteCount:   f.ByteCount,
			Installed:   now.Add(-time.Duration(f.DurationSec) * time.Second),
			LastMatched: now,
		})
	}
}

func keys(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SyncTouched barriers every switch the transaction has written to, so
// a subsequent invariant check observes all of the transaction's
// effects. Callable only while the transaction is open.
func (t *Txn) SyncTouched() error {
	t.m.mu.Lock()
	if t.state != TxnOpen {
		t.m.mu.Unlock()
		return ErrTxnClosed
	}
	dpids := keys(t.dpids)
	t.m.mu.Unlock()
	for _, d := range dpids {
		if err := t.m.sender.Barrier(d); err != nil {
			return err
		}
	}
	return nil
}
