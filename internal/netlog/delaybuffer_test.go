package netlog

import (
	"errors"
	"strings"
	"testing"

	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
)

// flakySender accepts okBefore messages, then fails every send.
type flakySender struct {
	okBefore int
	sent     int
}

func (s *flakySender) SendMessage(dpid uint64, msg openflow.Message) error {
	if s.sent >= s.okBefore {
		return errors.New("link down")
	}
	s.sent++
	return nil
}

func (s *flakySender) Barrier(dpid uint64) error { return nil }

// Regression test: a mid-flush send failure must not count the dropped
// tail as flushed. FlushedMods counts only delivered messages, the rest
// are discarded, and the error reports how many were lost.
func TestDelayBufferFlushErrorCountsDropped(t *testing.T) {
	sender := &flakySender{okBefore: 2}
	db := NewDelayBuffer(sender)
	reg := metrics.NewRegistry()
	db.Instrument(reg)

	hook := db.Hook()
	db.BeginHold()
	for i := 0; i < 5; i++ {
		if _, err := hook(1, addPort(uint16(i+1), 10, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Held() != 5 {
		t.Fatalf("held = %d, want 5", db.Held())
	}

	err := db.Flush()
	if err == nil {
		t.Fatal("flush should fail when the sender errors mid-flush")
	}
	if !strings.Contains(err.Error(), "dropped 3 of 5") {
		t.Fatalf("error should surface the dropped count, got: %v", err)
	}
	if got := db.FlushedMods.Load(); got != 2 {
		t.Fatalf("FlushedMods = %d, want 2 (only delivered messages)", got)
	}
	if got := db.DiscardedMods.Load(); got != 3 {
		t.Fatalf("DiscardedMods = %d, want 3 (dropped tail)", got)
	}
	if db.Held() != 0 {
		t.Fatalf("held = %d after flush, want 0", db.Held())
	}
	// The registry-backed instruments read the same values.
	s := reg.Snapshot()
	if s.Counters["legosdn_delaybuf_flushed_mods_total"] != 2 ||
		s.Counters["legosdn_delaybuf_discarded_mods_total"] != 3 {
		t.Fatalf("registry counters out of sync: %+v", s.Counters)
	}
	if s.Gauges["legosdn_delaybuf_held_depth"] != 0 {
		t.Fatalf("held depth gauge = %v, want 0", s.Gauges["legosdn_delaybuf_held_depth"])
	}
}
