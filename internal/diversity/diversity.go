// Package diversity implements the software-and-data-diversity use case
// from §3.4 of the LegoSDN paper and the clone-switchover technique for
// non-deterministic bugs from §5.
//
// Voter runs N independently implemented versions of one SDN-App on
// every event, compares their outputs (the OpenFlow messages they
// emit), forwards the majority's output to the network and flags
// dissenting versions. HotStandby feeds a primary and a clone the same
// events but only lets the primary's outputs through; when the primary
// crashes, the clone — warm, with identical state — is promoted
// in place, masking even bugs that a restore-and-replay would re-trigger.
package diversity

import (
	"fmt"
	"sort"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// capturedMsg is one output message with its destination.
type capturedMsg struct {
	dpid uint64
	raw  string // canonical wire encoding
	msg  openflow.Message
}

// captureContext records an app's outputs instead of sending them,
// while delegating reads to the real context.
type captureContext struct {
	real controller.Context

	mu   sync.Mutex
	msgs []capturedMsg
}

func (c *captureContext) SendMessage(dpid uint64, msg openflow.Message) error {
	b, err := openflow.Encode(msg)
	if err != nil {
		return err
	}
	// Zero the xid bytes: versions allocate xids independently and the
	// vote must compare semantic content.
	if len(b) >= 8 {
		b[4], b[5], b[6], b[7] = 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, capturedMsg{dpid: dpid, raw: string(b), msg: msg})
	return nil
}

func (c *captureContext) SendFlowMod(d uint64, fm *openflow.FlowMod) error {
	return c.SendMessage(d, fm)
}
func (c *captureContext) SendPacketOut(d uint64, po *openflow.PacketOut) error {
	return c.SendMessage(d, po)
}
func (c *captureContext) RequestStats(d uint64, r *openflow.StatsRequest) (*openflow.StatsReply, error) {
	if c.real == nil {
		return &openflow.StatsReply{}, nil
	}
	return c.real.RequestStats(d, r)
}
func (c *captureContext) Barrier(d uint64) error {
	if c.real == nil {
		return nil
	}
	return c.real.Barrier(d)
}
func (c *captureContext) Switches() []uint64 {
	if c.real == nil {
		return nil
	}
	return c.real.Switches()
}
func (c *captureContext) Ports(d uint64) []openflow.PhyPort {
	if c.real == nil {
		return nil
	}
	return c.real.Ports(d)
}
func (c *captureContext) Topology() []controller.LinkInfo {
	if c.real == nil {
		return nil
	}
	return c.real.Topology()
}

// fingerprint canonicalizes an output set: sorted multiset of
// (dpid, message bytes).
func (c *captureContext) fingerprint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, len(c.msgs))
	for i, m := range c.msgs {
		keys[i] = fmt.Sprintf("%d|%s", m.dpid, m.raw)
	}
	sort.Strings(keys)
	var out string
	for _, k := range keys {
		out += k + "\x00"
	}
	return out
}

// Voter runs multiple versions of one app and forwards the majority
// output (§3.4: "the correct output for any given input can be chosen
// using a majority vote").
type Voter struct {
	name     string
	versions []controller.App

	// Disagreements counts events where at least one version dissented.
	Disagreements uint64
	// Masked counts events where a minority's wrong output was outvoted.
	Masked uint64
	// NoQuorum counts events with no majority; the first version's
	// output is used as a deterministic tiebreak.
	NoQuorum uint64
	// crashed marks versions that have panicked and are excluded.
	crashed []bool
}

// NewVoter bundles the versions under one app name.
func NewVoter(name string, versions ...controller.App) *Voter {
	return &Voter{name: name, versions: versions, crashed: make([]bool, len(versions))}
}

// Name implements controller.App.
func (v *Voter) Name() string { return v.name }

// Subscriptions implements controller.App: the union of all versions'
// subscriptions.
func (v *Voter) Subscriptions() []controller.EventKind {
	seen := map[controller.EventKind]bool{}
	var out []controller.EventKind
	for _, ver := range v.versions {
		for _, k := range ver.Subscriptions() {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// LiveVersions reports how many versions are still participating.
func (v *Voter) LiveVersions() int {
	n := 0
	for _, c := range v.crashed {
		if !c {
			n++
		}
	}
	return n
}

// HandleEvent implements controller.App: every live version processes
// the event against a capture context; the majority fingerprint's
// output is replayed onto the real context.
func (v *Voter) HandleEvent(ctx controller.Context, ev controller.Event) error {
	type result struct {
		idx int
		cap *captureContext
	}
	var results []result
	for i, ver := range v.versions {
		if v.crashed[i] {
			continue
		}
		cap := &captureContext{real: ctx}
		crashed := runContained(ver, cap, ev)
		if crashed {
			// A crashing version is a dissent: exclude it from now on.
			v.crashed[i] = true
			continue
		}
		results = append(results, result{idx: i, cap: cap})
	}
	if len(results) == 0 {
		return fmt.Errorf("diversity: all versions of %q failed", v.name)
	}

	// Tally fingerprints.
	votes := make(map[string][]result)
	for _, r := range results {
		fp := r.cap.fingerprint()
		votes[fp] = append(votes[fp], r)
	}
	// Pick the winner: most votes, ties broken by lowest version index
	// for determinism.
	var winnerFP string
	winnerCount, winnerIdx := -1, -1
	for fp, rs := range votes {
		if len(rs) > winnerCount || (len(rs) == winnerCount && rs[0].idx < winnerIdx) {
			winnerFP, winnerCount, winnerIdx = fp, len(rs), rs[0].idx
		}
	}
	if len(votes) > 1 {
		v.Disagreements++
		if winnerCount > len(results)/2 {
			v.Masked++
		} else {
			v.NoQuorum++
		}
	}
	// Forward the winner's output in original order.
	winner := votes[winnerFP][0]
	winner.cap.mu.Lock()
	msgs := append([]capturedMsg(nil), winner.cap.msgs...)
	winner.cap.mu.Unlock()
	for _, m := range msgs {
		if err := ctx.SendMessage(m.dpid, m.msg); err != nil {
			return err
		}
	}
	return nil
}

// runContained executes one app with panic containment.
func runContained(app controller.App, ctx controller.Context, ev controller.Event) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	_ = app.HandleEvent(ctx, ev)
	return false
}

// HotStandby implements §5's clone strategy for non-deterministic bugs:
// the clone processes every event with its outputs discarded, so when
// the primary dies the clone takes over with warm, identical state.
// Because the bug is non-deterministic, the clone is unlikely to have
// tripped it.
type HotStandby struct {
	name    string
	primary controller.App
	clone   controller.App

	primaryDown bool
	// Switchovers counts promotions.
	Switchovers uint64
}

// NewHotStandby pairs a primary with its clone.
func NewHotStandby(name string, primary, clone controller.App) *HotStandby {
	return &HotStandby{name: name, primary: primary, clone: clone}
}

// Name implements controller.App.
func (h *HotStandby) Name() string { return h.name }

// Subscriptions implements controller.App.
func (h *HotStandby) Subscriptions() []controller.EventKind { return h.primary.Subscriptions() }

// UsingClone reports whether the clone has been promoted.
func (h *HotStandby) UsingClone() bool { return h.primaryDown }

// HandleEvent implements controller.App.
func (h *HotStandby) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if h.primaryDown {
		// Post-switchover: the clone is the app.
		if crashed := runContained(h.clone, ctx, ev); crashed {
			return fmt.Errorf("diversity: clone of %q crashed too", h.name)
		}
		return nil
	}
	// Primary output flows to the network; clone processes in the
	// shadow (outputs discarded) to stay state-synchronized.
	primaryCrashed := runContained(h.primary, ctx, ev)
	cloneCrashed := runContained(h.clone, &captureContext{real: ctx}, ev)

	if primaryCrashed {
		h.primaryDown = true
		h.Switchovers++
		if cloneCrashed {
			return fmt.Errorf("diversity: primary and clone of %q both crashed", h.name)
		}
		// The event that killed the primary was already processed by
		// the clone in the shadow, but its outputs were discarded.
		// Re-run it live so the network sees the clone's response.
		if crashed := runContained(h.clone, ctx, ev); crashed {
			return fmt.Errorf("diversity: clone of %q crashed on promotion", h.name)
		}
	}
	return nil
}
