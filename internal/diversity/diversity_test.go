package diversity

import (
	"strings"
	"sync"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// sink records messages reaching the "network".
type sink struct {
	mu   sync.Mutex
	sent []openflow.Message
}

func (c *sink) SendMessage(dpid uint64, msg openflow.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent = append(c.sent, msg)
	return nil
}
func (c *sink) SendFlowMod(d uint64, m *openflow.FlowMod) error     { return c.SendMessage(d, m) }
func (c *sink) SendPacketOut(d uint64, m *openflow.PacketOut) error { return c.SendMessage(d, m) }
func (c *sink) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return nil, nil
}
func (c *sink) Barrier(uint64) error            { return nil }
func (c *sink) Switches() []uint64              { return []uint64{1} }
func (c *sink) Ports(uint64) []openflow.PhyPort { return nil }
func (c *sink) Topology() []controller.LinkInfo { return nil }
func (c *sink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sent)
}

// portApp outputs a FlowMod to a fixed port on every PacketIn; a
// "buggy" variant outputs to a wrong port or panics.
type portApp struct {
	name  string
	port  uint16
	panik bool
}

func (a *portApp) Name() string                          { return a.name }
func (a *portApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *portApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if a.panik {
		panic("version bug")
	}
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 5,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: a.port}},
	})
}

func pktIn(seq uint64) controller.Event {
	return controller.Event{Seq: seq, Kind: controller.EventPacketIn, DPID: 1,
		Message: &openflow.PacketIn{BufferID: openflow.BufferIDNone}}
}

func TestVoterAgreement(t *testing.T) {
	v := NewVoter("ls", &portApp{name: "v1", port: 2}, &portApp{name: "v2", port: 2}, &portApp{name: "v3", port: 2})
	ctx := &sink{}
	if err := v.HandleEvent(ctx, pktIn(1)); err != nil {
		t.Fatal(err)
	}
	if ctx.count() != 1 {
		t.Fatalf("forwarded %d messages, want 1", ctx.count())
	}
	if v.Disagreements != 0 {
		t.Fatal("unanimous vote counted as disagreement")
	}
}

func TestVoterMasksWrongOutput(t *testing.T) {
	v := NewVoter("ls",
		&portApp{name: "v1", port: 2},
		&portApp{name: "v2", port: 9}, // buggy version: wrong port
		&portApp{name: "v3", port: 2})
	ctx := &sink{}
	if err := v.HandleEvent(ctx, pktIn(1)); err != nil {
		t.Fatal(err)
	}
	if ctx.count() != 1 {
		t.Fatalf("forwarded %d", ctx.count())
	}
	fm := ctx.sent[0].(*openflow.FlowMod)
	if fm.Actions[0].(*openflow.ActionOutput).Port != 2 {
		t.Fatalf("minority output won: port %d", fm.Actions[0].(*openflow.ActionOutput).Port)
	}
	if v.Disagreements != 1 || v.Masked != 1 {
		t.Fatalf("disagreements=%d masked=%d", v.Disagreements, v.Masked)
	}
}

func TestVoterMasksCrashingVersion(t *testing.T) {
	v := NewVoter("ls",
		&portApp{name: "v1", port: 2},
		&portApp{name: "v2", panik: true},
		&portApp{name: "v3", port: 2})
	ctx := &sink{}
	if err := v.HandleEvent(ctx, pktIn(1)); err != nil {
		t.Fatal(err)
	}
	if v.LiveVersions() != 2 {
		t.Fatalf("live = %d, want 2", v.LiveVersions())
	}
	// Voting continues with survivors.
	if err := v.HandleEvent(ctx, pktIn(2)); err != nil {
		t.Fatal(err)
	}
	if ctx.count() != 2 {
		t.Fatalf("forwarded %d", ctx.count())
	}
}

func TestVoterAllVersionsDead(t *testing.T) {
	v := NewVoter("ls", &portApp{name: "v1", panik: true}, &portApp{name: "v2", panik: true})
	err := v.HandleEvent(&sink{}, pktIn(1))
	if err == nil || !strings.Contains(err.Error(), "all versions") {
		t.Fatalf("err = %v", err)
	}
}

func TestVoterNoQuorumTiebreak(t *testing.T) {
	v := NewVoter("ls", &portApp{name: "v1", port: 2}, &portApp{name: "v2", port: 9})
	ctx := &sink{}
	if err := v.HandleEvent(ctx, pktIn(1)); err != nil {
		t.Fatal(err)
	}
	if v.NoQuorum != 1 {
		t.Fatalf("noquorum = %d", v.NoQuorum)
	}
	// Deterministic tiebreak: lowest version index wins.
	fm := ctx.sent[0].(*openflow.FlowMod)
	if fm.Actions[0].(*openflow.ActionOutput).Port != 2 {
		t.Fatal("tiebreak not deterministic")
	}
}

func TestVoterSubscriptionsUnion(t *testing.T) {
	a := &subsApp{kinds: []controller.EventKind{controller.EventPacketIn}}
	b := &subsApp{kinds: []controller.EventKind{controller.EventPacketIn, controller.EventSwitchDown}}
	v := NewVoter("u", a, b)
	subs := v.Subscriptions()
	if len(subs) != 2 {
		t.Fatalf("subs = %v", subs)
	}
}

type subsApp struct{ kinds []controller.EventKind }

func (a *subsApp) Name() string                                           { return "subs" }
func (a *subsApp) Subscriptions() []controller.EventKind                  { return a.kinds }
func (a *subsApp) HandleEvent(controller.Context, controller.Event) error { return nil }

// flakyApp crashes on a specific event seq the first time only —
// a non-deterministic bug in the §5 sense (state-dependent).
type flakyApp struct {
	name    string
	port    uint16
	crashAt uint64
	crashed bool
	seen    int
}

func (a *flakyApp) Name() string                          { return a.name }
func (a *flakyApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *flakyApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if ev.Seq == a.crashAt && !a.crashed {
		a.crashed = true
		panic("transient bug")
	}
	a.seen++
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: uint16(a.seen),
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: a.port}},
	})
}

func TestHotStandbySwitchover(t *testing.T) {
	primary := &flakyApp{name: "p", port: 2, crashAt: 3}
	clone := &flakyApp{name: "c", port: 2, crashAt: 0} // clone never crashes
	hs := NewHotStandby("ls", primary, clone)
	ctx := &sink{}

	// Events 1-2: primary serves, clone shadows.
	hs.HandleEvent(ctx, pktIn(1))
	hs.HandleEvent(ctx, pktIn(2))
	if ctx.count() != 2 || hs.UsingClone() {
		t.Fatalf("count=%d clone=%v", ctx.count(), hs.UsingClone())
	}
	if clone.seen != 2 {
		t.Fatalf("clone shadow-processed %d events", clone.seen)
	}

	// Event 3 kills the primary; the clone takes over and serves it.
	if err := hs.HandleEvent(ctx, pktIn(3)); err != nil {
		t.Fatal(err)
	}
	if !hs.UsingClone() || hs.Switchovers != 1 {
		t.Fatalf("clone=%v switchovers=%d", hs.UsingClone(), hs.Switchovers)
	}
	// The clone's live replay of event 3 reached the network.
	if ctx.count() != 3 {
		t.Fatalf("count = %d, want 3", ctx.count())
	}

	// Post-switchover events flow through the clone.
	if err := hs.HandleEvent(ctx, pktIn(4)); err != nil {
		t.Fatal(err)
	}
	if ctx.count() != 4 {
		t.Fatalf("count = %d", ctx.count())
	}
}

func TestHotStandbyBothCrash(t *testing.T) {
	primary := &flakyApp{name: "p", crashAt: 1}
	clone := &flakyApp{name: "c", crashAt: 1}
	hs := NewHotStandby("ls", primary, clone)
	// The clone shadow-crashes on the same event (deterministic bug):
	// switchover cannot mask it.
	err := hs.HandleEvent(&sink{}, pktIn(1))
	if err == nil || !strings.Contains(err.Error(), "both crashed") {
		t.Fatalf("err = %v", err)
	}
}
