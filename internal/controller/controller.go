package controller

import (
	"errors"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
)

// Config tunes a Controller. The zero value is a usable monolithic
// controller.
type Config struct {
	// Monolithic selects the fate-sharing baseline: app panics unwind
	// into the dispatch loop and crash the controller. When false the
	// Runner (or a recovering default) isolates failures.
	Monolithic bool
	// Runner executes app handlers. nil selects the direct call in
	// monolithic mode, or a recover-only runner otherwise.
	Runner AppRunner
	// OnAppFailure observes unrecovered app crashes in non-monolithic
	// mode (after the app has been quarantined). May be nil.
	OnAppFailure func(*AppFailure)
	// QueueSize bounds the pending event queue (default 1024).
	QueueSize int
	// RequestTimeout bounds synchronous exchanges (default 5s).
	RequestTimeout time.Duration
	// EchoInterval spaces liveness probes to each switch; a probe that
	// goes unanswered within the interval closes the connection and
	// surfaces a SwitchDown. Zero disables probing (the default: tests
	// and pipes have no silent-failure mode).
	EchoInterval time.Duration
	// Metrics, when set, registers the controller's instruments
	// (dispatch latency, per-switch send latency, event counters) into
	// the given registry. Nil leaves the latency histograms off.
	Metrics *metrics.Registry
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// ErrCrashed is returned by controller operations after a monolithic
// crash has taken the control plane down.
var ErrCrashed = errors.New("controller: crashed")

// ErrNoSwitch is returned when a message targets an unknown datapath.
var ErrNoSwitch = errors.New("controller: no such switch")

// OutboundHook observes and may rewrite or suppress controller-to-
// switch messages. Returning (nil, nil) suppresses the message;
// returning an error aborts the send. NetLog installs itself here.
type OutboundHook func(dpid uint64, msg openflow.Message) (openflow.Message, error)

// appEntry tracks one registered app and its dispatch state.
type appEntry struct {
	app      App
	subs     map[EventKind]bool
	disabled bool
	events   uint64 // events delivered
	failures uint64
}

// Controller is the FloodLight-like control plane core.
type Controller struct {
	cfg    Config
	runner AppRunner

	mu             sync.Mutex
	apps           []*appEntry
	switches       map[uint64]*swHandle
	lastPorts      map[uint64][]openflow.PhyPort // ports of departed switches
	links          map[LinkInfo]struct{}
	hooks          []OutboundHook
	statsRewriters []StatsRewriter

	seq     atomic.Uint64
	events  chan Event
	stopped chan struct{}
	crashed atomic.Bool
	wg      sync.WaitGroup

	// Dispatched counts events delivered to at least one app.
	Dispatched metrics.Counter
	// Processed counts every event the dispatch loop consumed, whether
	// or not any app subscribed to it.
	Processed metrics.Counter

	// dispatchLatency times dispatchOne end to end (the paper's
	// event-processing latency); sendLatency times each wire write.
	// Nil (no Config.Metrics) means unobserved.
	dispatchLatency *metrics.Histogram
	sendLatency     *metrics.Histogram
}

// recoveringRunner is the default isolated runner: panics become
// AppFailures but no recovery is attempted (the app stays quarantined).
type recoveringRunner struct{}

func (recoveringRunner) RunEvent(app App, ctx Context, ev Event) (failure *AppFailure) {
	defer func() {
		if r := recover(); r != nil {
			failure = &AppFailure{App: app.Name(), Event: ev, PanicValue: r, Stack: debug.Stack()}
		}
	}()
	_ = app.HandleEvent(ctx, ev)
	return nil
}

// New creates a controller and starts its dispatch loop.
func New(cfg Config) *Controller {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	c := &Controller{
		cfg:       cfg,
		switches:  make(map[uint64]*swHandle),
		lastPorts: make(map[uint64][]openflow.PhyPort),
		links:     make(map[LinkInfo]struct{}),
		events:    make(chan Event, cfg.QueueSize),
		stopped:   make(chan struct{}),
	}
	switch {
	case cfg.Runner != nil:
		c.runner = cfg.Runner
	case cfg.Monolithic:
		c.runner = directRunner{}
	default:
		c.runner = recoveringRunner{}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.RegisterCounter("legosdn_controller_events_dispatched_total",
			"events delivered to at least one app", &c.Dispatched)
		reg.RegisterCounter("legosdn_controller_events_processed_total",
			"events consumed by the dispatch loop", &c.Processed)
		c.dispatchLatency = reg.Histogram("legosdn_controller_event_dispatch_seconds",
			"end-to-end dispatch latency of one event across all subscribed apps", nil)
		c.sendLatency = reg.Histogram("legosdn_controller_send_seconds",
			"per-switch send latency of one outbound message (wire write)", nil)
	}
	c.wg.Add(1)
	go c.dispatchLoop()
	return c
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// SetRunner swaps the app runner. Benchmarks use this to compare
// architectures over one controller; production code sets Config.Runner.
func (c *Controller) SetRunner(r AppRunner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runner = r
}

// Register adds an app to the end of the dispatch chain.
func (c *Controller) Register(app App) {
	subs := make(map[EventKind]bool)
	for _, k := range app.Subscriptions() {
		subs[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apps = append(c.apps, &appEntry{app: app, subs: subs})
}

// Apps lists registered app names in dispatch order.
func (c *Controller) Apps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.apps))
	for i, e := range c.apps {
		out[i] = e.app.Name()
	}
	return out
}

// AppDisabled reports whether the named app has been quarantined.
func (c *Controller) AppDisabled(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			return e.disabled
		}
	}
	return false
}

// SetAppDisabled quarantines or revives an app.
func (c *Controller) SetAppDisabled(name string, disabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			e.disabled = disabled
		}
	}
}

// AddOutboundHook appends a hook to the outbound message path.
func (c *Controller) AddOutboundHook(h OutboundHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hooks = append(c.hooks, h)
}

// StatsRewriter adjusts a StatsReply before it reaches the requesting
// app. NetLog's counter-cache registers one to mask rollback artifacts
// in flow counters, as §3.2 of the paper describes.
type StatsRewriter func(dpid uint64, reply *openflow.StatsReply)

// AddStatsRewriter appends a rewriter to the stats reply path.
func (c *Controller) AddStatsRewriter(rw StatsRewriter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statsRewriters = append(c.statsRewriters, rw)
}

// Crashed reports whether a monolithic fate-sharing crash occurred.
func (c *Controller) Crashed() bool { return c.crashed.Load() }

// Stop shuts the controller down, closing all switch channels. Safe to
// call more than once.
func (c *Controller) Stop() {
	select {
	case <-c.stopped:
		return
	default:
	}
	close(c.stopped)
	c.mu.Lock()
	handles := make([]*swHandle, 0, len(c.switches))
	for _, h := range c.switches {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.close()
	}
	c.wg.Wait()
}

// crash simulates process death after a monolithic app failure: every
// switch connection closes and no further events are processed.
func (c *Controller) crash(reason any) {
	if !c.crashed.CompareAndSwap(false, true) {
		return
	}
	c.logf("controller: FATAL app failure, control plane down: %v", reason)
	c.mu.Lock()
	handles := make([]*swHandle, 0, len(c.switches))
	for _, h := range c.switches {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.close()
	}
}

// dispatchLoop is the single goroutine that delivers events to apps in
// registration order, preserving the per-controller total order of
// message processing that replay depends on.
func (c *Controller) dispatchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopped:
			return
		case ev := <-c.events:
			if c.crashed.Load() {
				continue
			}
			c.dispatchOne(ev)
		}
	}
}

func (c *Controller) dispatchOne(ev Event) {
	if c.dispatchLatency != nil {
		defer c.dispatchLatency.ObserveSince(time.Now())
	}
	if c.cfg.Monolithic {
		defer func() {
			if r := recover(); r != nil {
				// Fate sharing: the app's panic is the controller's panic.
				c.crash(r)
			}
		}()
	}
	c.mu.Lock()
	entries := make([]*appEntry, len(c.apps))
	copy(entries, c.apps)
	runner := c.runner
	c.mu.Unlock()

	delivered := false
	for _, e := range entries {
		if e.disabled || !e.subs[ev.Kind] {
			continue
		}
		delivered = true
		atomic.AddUint64(&e.events, 1)
		if failure := runner.RunEvent(e.app, c, ev); failure != nil {
			atomic.AddUint64(&e.failures, 1)
			c.mu.Lock()
			e.disabled = true
			cb := c.cfg.OnAppFailure
			c.mu.Unlock()
			c.logf("controller: app %q quarantined after crash on %v", failure.App, ev)
			if cb != nil {
				cb(failure)
			}
		}
	}
	if delivered {
		c.Dispatched.Add(1)
	}
	c.Processed.Add(1)
}

// Inject queues an event as if it arrived from the network. The
// workload generators and Crash-Pad's replay path use this.
func (c *Controller) Inject(ev Event) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	if ev.Seq == 0 {
		ev.Seq = c.seq.Add(1)
	}
	select {
	case c.events <- ev:
		return nil
	case <-c.stopped:
		return ErrCrashed
	}
}

// InjectSync dispatches an event inline on the caller's goroutine,
// bypassing the queue. It preserves ordering only if the caller owns
// the event source; benchmarks use it to measure the bare dispatch path.
func (c *Controller) InjectSync(ev Event) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	if ev.Seq == 0 {
		ev.Seq = c.seq.Add(1)
	}
	c.dispatchOne(ev)
	return nil
}

// AppStats reports (delivered, failures) for a named app.
func (c *Controller) AppStats(name string) (events, failures uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			return atomic.LoadUint64(&e.events), atomic.LoadUint64(&e.failures)
		}
	}
	return 0, 0
}

// Switches implements Context.
func (c *Controller) Switches() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.switches))
	for d := range c.switches {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ports implements Context. For a departed switch it returns the
// last-known port set, which Crash-Pad's switch-down → link-downs
// equivalence transform needs after the handle is gone.
func (c *Controller) Ports(dpid uint64) []openflow.PhyPort {
	c.mu.Lock()
	h := c.switches[dpid]
	if h == nil {
		last := append([]openflow.PhyPort(nil), c.lastPorts[dpid]...)
		c.mu.Unlock()
		return last
	}
	c.mu.Unlock()
	return h.portList()
}

// Topology implements Context.
func (c *Controller) Topology() []LinkInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LinkInfo, 0, len(c.links))
	for l := range c.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SrcDPID != b.SrcDPID {
			return a.SrcDPID < b.SrcDPID
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstDPID < b.DstDPID
	})
	return out
}

// Serve accepts switch connections from l until the controller stops.
func (c *Controller) Serve(l net.Listener) {
	go func() {
		<-c.stopped
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if err := c.AttachSwitchConn(openflow.NewConn(conn)); err != nil {
			c.logf("controller: attach failed: %v", err)
			conn.Close()
		}
	}
}
