package controller

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// Config tunes a Controller. The zero value is a usable monolithic
// controller.
type Config struct {
	// Monolithic selects the fate-sharing baseline: app panics unwind
	// into the dispatch loop and crash the controller. When false the
	// Runner (or a recovering default) isolates failures.
	Monolithic bool
	// Parallel enables the per-app worker pipeline: every registered app
	// gets its own ordered queue and goroutine, so independent apps
	// process events concurrently while each app still observes events
	// in controller order (the per-app FIFO that Crash-Pad's
	// checkpoint/replay semantics depend on). Apps implementing
	// InlineObserver still run on the dispatch goroutine itself, before
	// fan-out. Incompatible with Monolithic (fate sharing needs the
	// app's panic on the dispatch goroutine); Monolithic wins.
	Parallel bool
	// AppQueueSize bounds each app's worker queue in Parallel mode
	// (default 256). A full queue applies backpressure to the dispatch
	// loop rather than dropping events, preserving per-app FIFO.
	AppQueueSize int
	// BatchMax caps how many queued events a parallel worker drains into
	// one BatchApp delivery (default 32; 1 disables batching).
	BatchMax int
	// Runner executes app handlers. nil selects the direct call in
	// monolithic mode, or a recover-only runner otherwise.
	Runner AppRunner
	// OnAppFailure observes unrecovered app crashes in non-monolithic
	// mode (after the app has been quarantined). May be nil.
	OnAppFailure func(*AppFailure)
	// QueueSize bounds the pending event queue (default 1024).
	QueueSize int
	// RequestTimeout bounds synchronous exchanges (default 5s).
	RequestTimeout time.Duration
	// EchoInterval spaces liveness probes to each switch; a probe that
	// goes unanswered within the interval closes the connection and
	// surfaces a SwitchDown. Zero disables probing (the default: tests
	// and pipes have no silent-failure mode).
	EchoInterval time.Duration
	// Metrics, when set, registers the controller's instruments
	// (dispatch latency, per-switch send latency, event counters) into
	// the given registry. Nil leaves the latency histograms off.
	Metrics *metrics.Registry
	// Tracer samples injected events into traces and records dispatch
	// and per-app delivery spans. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Logger, when set, receives structured diagnostics; log lines for
	// traced events carry the trace id (wrap with trace.WrapHandler).
	// Logf remains the plain-text fallback.
	Logger *slog.Logger
	// Flight is the always-on flight recorder: every dispatched event
	// leaves one bounded record, so a crash autopsy can show the events
	// leading up to the failure even when tracing sampled them out. Nil
	// no-ops.
	Flight *flightrec.Recorder
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// ErrCrashed is returned by controller operations after a monolithic
// crash has taken the control plane down.
var ErrCrashed = errors.New("controller: crashed")

// ErrNoSwitch is returned when a message targets an unknown datapath.
var ErrNoSwitch = errors.New("controller: no such switch")

// OutboundHook observes and may rewrite or suppress controller-to-
// switch messages. Returning (nil, nil) suppresses the message;
// returning an error aborts the send. NetLog installs itself here.
type OutboundHook func(dpid uint64, msg openflow.Message) (openflow.Message, error)

// appEntry tracks one registered app and its dispatch state. The
// dispatch-path fields (disabled, events, failures) are atomic so the
// dispatch goroutine and workers never race with quarantine flips done
// under c.mu; subs is immutable after Register.
type appEntry struct {
	app      App
	subs     map[EventKind]bool
	inline   bool // InlineObserver: runs on the dispatch goroutine
	disabled atomic.Bool
	events   atomic.Uint64 // events delivered
	failures atomic.Uint64

	// queue and its worker exist only in Parallel mode.
	queue chan queuedEvent
}

// queuedEvent pairs an event with its (optional) fan-out tracker.
type queuedEvent struct {
	ev Event
	tr *evTracker
}

// evTracker observes the completion of one event's fan-out across all
// subscribed apps, so the dispatch-latency histogram keeps its
// "end-to-end across all apps" meaning under parallel dispatch. The
// last worker to finish records the latency and closes the event's
// dispatch span, if it has one.
type evTracker struct {
	c         *Controller
	start     time.Time
	span      *trace.Span // "controller.dispatch"; nil when untraced
	remaining atomic.Int32
}

func (t *evTracker) done() {
	if t != nil && t.remaining.Add(-1) == 0 {
		t.c.dispatchLatency.ObserveSince(t.start)
		t.span.End()
	}
}

// Controller is the FloodLight-like control plane core.
type Controller struct {
	cfg    Config
	runner AppRunner

	mu             sync.Mutex
	apps           []*appEntry
	switches       map[uint64]*swHandle
	lastPorts      map[uint64][]openflow.PhyPort // ports of departed switches
	links          map[LinkInfo]struct{}
	hooks          []OutboundHook
	statsRewriters []StatsRewriter

	seq     atomic.Uint64
	events  chan Event
	stopped chan struct{}
	crashed atomic.Bool
	wg      sync.WaitGroup

	// Dispatched counts events delivered to at least one app.
	Dispatched metrics.Counter
	// Processed counts every event the dispatch loop consumed, whether
	// or not any app subscribed to it.
	Processed metrics.Counter

	// dispatchLatency times dispatchOne end to end (the paper's
	// event-processing latency); sendLatency times each wire write.
	// batchSize distributes how many events each parallel worker
	// drained per delivery — the amortization the batched AppVisor path
	// depends on. Nil (no Config.Metrics) means unobserved.
	dispatchLatency *metrics.Histogram
	sendLatency     *metrics.Histogram
	batchSize       *metrics.Histogram
}

// BatchSizeBuckets are the histogram bounds for per-delivery batch
// sizes (counts, not seconds).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// recoveringRunner is the default isolated runner: panics become
// AppFailures but no recovery is attempted (the app stays quarantined).
type recoveringRunner struct{}

func (recoveringRunner) RunEvent(app App, ctx Context, ev Event) (failure *AppFailure) {
	defer func() {
		if r := recover(); r != nil {
			failure = &AppFailure{App: app.Name(), Event: ev, PanicValue: r, Stack: debug.Stack()}
		}
	}()
	_ = app.HandleEvent(ctx, ev)
	return nil
}

// RunEventBatch implements BatchRunner: a BatchApp gets one call for
// the whole run; otherwise events are delivered one at a time, stopping
// at the first failure (the app is about to be quarantined, so the rest
// of the batch would be skipped anyway).
func (r recoveringRunner) RunEventBatch(app App, ctx Context, evs []Event) (failure *AppFailure) {
	if ba, ok := app.(BatchApp); ok {
		cur := evs[0]
		defer func() {
			if rec := recover(); rec != nil {
				failure = &AppFailure{App: app.Name(), Event: cur, PanicValue: rec, Stack: debug.Stack()}
			}
		}()
		_ = ba.HandleEventBatch(ctx, evs)
		return nil
	}
	for _, ev := range evs {
		if f := r.RunEvent(app, ctx, ev); f != nil {
			return f
		}
	}
	return nil
}

// New creates a controller and starts its dispatch loop.
func New(cfg Config) *Controller {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.AppQueueSize <= 0 {
		cfg.AppQueueSize = 256
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 32
	}
	if cfg.Monolithic {
		// Fate sharing requires the panic to unwind the dispatch loop.
		cfg.Parallel = false
	}
	c := &Controller{
		cfg:       cfg,
		switches:  make(map[uint64]*swHandle),
		lastPorts: make(map[uint64][]openflow.PhyPort),
		links:     make(map[LinkInfo]struct{}),
		events:    make(chan Event, cfg.QueueSize),
		stopped:   make(chan struct{}),
	}
	switch {
	case cfg.Runner != nil:
		c.runner = cfg.Runner
	case cfg.Monolithic:
		c.runner = directRunner{}
	default:
		c.runner = recoveringRunner{}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.RegisterCounter("legosdn_controller_events_dispatched_total",
			"events delivered to at least one app", &c.Dispatched)
		reg.RegisterCounter("legosdn_controller_events_processed_total",
			"events consumed by the dispatch loop", &c.Processed)
		c.dispatchLatency = reg.Histogram("legosdn_controller_event_dispatch_seconds",
			"end-to-end dispatch latency of one event across all subscribed apps", nil)
		c.sendLatency = reg.Histogram("legosdn_controller_send_seconds",
			"per-switch send latency of one outbound message (wire write)", nil)
		c.batchSize = reg.Histogram("legosdn_controller_batch_size_events",
			"events drained per parallel-worker delivery", BatchSizeBuckets)
	}
	c.wg.Add(1)
	go c.dispatchLoop()
	return c
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// SetRunner swaps the app runner. Benchmarks use this to compare
// architectures over one controller; production code sets Config.Runner.
func (c *Controller) SetRunner(r AppRunner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runner = r
}

// Register adds an app to the end of the dispatch chain. In Parallel
// mode the app's worker starts immediately unless the controller has
// already stopped.
func (c *Controller) Register(app App) {
	subs := make(map[EventKind]bool)
	for _, k := range app.Subscriptions() {
		subs[k] = true
	}
	e := &appEntry{app: app, subs: subs}
	if _, ok := app.(InlineObserver); ok {
		e.inline = true
	}
	if c.cfg.Parallel && !e.inline {
		e.queue = make(chan queuedEvent, c.cfg.AppQueueSize)
	}
	c.mu.Lock()
	c.apps = append(c.apps, e)
	c.mu.Unlock()
	if e.queue != nil {
		select {
		case <-c.stopped:
			return
		default:
		}
		c.wg.Add(1)
		go c.appWorker(e)
	}
}

// Apps lists registered app names in dispatch order.
func (c *Controller) Apps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.apps))
	for i, e := range c.apps {
		out[i] = e.app.Name()
	}
	return out
}

// AppDisabled reports whether the named app has been quarantined.
func (c *Controller) AppDisabled(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			return e.disabled.Load()
		}
	}
	return false
}

// SetAppDisabled quarantines or revives an app. The flag is atomic, so
// the dispatch path observes it without taking c.mu.
func (c *Controller) SetAppDisabled(name string, disabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			e.disabled.Store(disabled)
		}
	}
}

// AddOutboundHook appends a hook to the outbound message path.
func (c *Controller) AddOutboundHook(h OutboundHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hooks = append(c.hooks, h)
}

// StatsRewriter adjusts a StatsReply before it reaches the requesting
// app. NetLog's counter-cache registers one to mask rollback artifacts
// in flow counters, as §3.2 of the paper describes.
type StatsRewriter func(dpid uint64, reply *openflow.StatsReply)

// AddStatsRewriter appends a rewriter to the stats reply path.
func (c *Controller) AddStatsRewriter(rw StatsRewriter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statsRewriters = append(c.statsRewriters, rw)
}

// Crashed reports whether a monolithic fate-sharing crash occurred.
func (c *Controller) Crashed() bool { return c.crashed.Load() }

// Stop shuts the controller down, closing all switch channels. Safe to
// call more than once.
func (c *Controller) Stop() {
	select {
	case <-c.stopped:
		return
	default:
	}
	close(c.stopped)
	c.mu.Lock()
	handles := make([]*swHandle, 0, len(c.switches))
	for _, h := range c.switches {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.close()
	}
	c.wg.Wait()
}

// crash simulates process death after a monolithic app failure: every
// switch connection closes and no further events are processed.
func (c *Controller) crash(reason any) {
	if !c.crashed.CompareAndSwap(false, true) {
		return
	}
	c.logf("controller: FATAL app failure, control plane down: %v", reason)
	c.mu.Lock()
	handles := make([]*swHandle, 0, len(c.switches))
	for _, h := range c.switches {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		h.close()
	}
}

// dispatchLoop is the single goroutine that consumes the event queue.
// In serial mode it delivers to apps in registration order, preserving
// the per-controller total order of message processing that replay
// depends on; in Parallel mode it fans events out to per-app worker
// queues, which weakens the guarantee to per-app FIFO (still enough
// for Crash-Pad checkpoint/replay, which is per-app).
func (c *Controller) dispatchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopped:
			return
		case ev := <-c.events:
			if c.crashed.Load() {
				continue
			}
			c.dispatchOne(ev)
		}
	}
}

func (c *Controller) dispatchOne(ev Event) {
	c.cfg.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerController, Kind: flightrec.KindEventDispatched,
		Trace: ev.Trace.TraceID, EvSeq: ev.Seq, DPID: ev.DPID,
		Note: ev.Kind.String(),
	})
	if c.cfg.Parallel {
		c.fanOut(ev)
		return
	}
	if sp := c.startDispatchSpan(ev); sp != nil {
		ev.Trace.SpanID = sp.Context().SpanID
		defer sp.End()
	}
	if c.dispatchLatency != nil {
		defer c.dispatchLatency.ObserveSince(time.Now())
	}
	if c.cfg.Monolithic {
		defer func() {
			if r := recover(); r != nil {
				// Fate sharing: the app's panic is the controller's panic.
				c.crash(r)
			}
		}()
	}
	entries, runner := c.snapshotApps()

	delivered := false
	for _, e := range entries {
		if e.disabled.Load() || !e.subs[ev.Kind] {
			continue
		}
		delivered = true
		c.deliver(e, runner, ev)
	}
	if delivered {
		c.Dispatched.Add(1)
	}
	c.Processed.Add(1)
}

// snapshotApps copies the dispatch chain and runner under c.mu, so the
// loop below runs lock-free against concurrent Register/SetRunner.
func (c *Controller) snapshotApps() ([]*appEntry, AppRunner) {
	c.mu.Lock()
	entries := make([]*appEntry, len(c.apps))
	copy(entries, c.apps)
	runner := c.runner
	c.mu.Unlock()
	return entries, runner
}

// startDispatchSpan opens the "controller.dispatch" span for a traced
// event, annotated with what the event is. Nil for untraced events.
func (c *Controller) startDispatchSpan(ev Event) *trace.Span {
	sp := c.cfg.Tracer.StartSpan(ev.Trace, "controller.dispatch")
	if sp != nil {
		sp.Attr("kind", ev.Kind.String()).
			AttrInt("dpid", int64(ev.DPID)).
			AttrInt("seq", int64(ev.Seq))
	}
	return sp
}

// deliver runs one event through one app and quarantines it on failure.
// Called from the dispatch goroutine (serial mode, inline observers)
// and from app workers (parallel mode); everything it touches is atomic
// or taken under c.mu. ev is a copy, so re-parenting its trace context
// under the per-app delivery span is private to this delivery.
func (c *Controller) deliver(e *appEntry, runner AppRunner, ev Event) {
	e.events.Add(1)
	if sp := c.cfg.Tracer.StartSpan(ev.Trace, "controller.deliver"); sp != nil {
		sp.Attr("app", e.app.Name())
		ev.Trace.SpanID = sp.Context().SpanID
		defer sp.End()
	}
	if failure := runner.RunEvent(e.app, c, ev); failure != nil {
		c.quarantine(e, failure, ev)
	}
}

// quarantine marks an app disabled after an unrecovered failure and
// fires the OnAppFailure hook. Safe from any goroutine; the atomic flag
// makes the disable visible to all dispatch paths immediately, so a
// parallel worker draining its queue skips the app's remaining events.
func (c *Controller) quarantine(e *appEntry, failure *AppFailure, ev Event) {
	e.failures.Add(1)
	e.disabled.Store(true)
	c.cfg.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerController, Kind: flightrec.KindQuarantine,
		App: failure.App, Trace: ev.Trace.TraceID, EvSeq: ev.Seq, DPID: ev.DPID,
		Note: "quarantined after " + ev.Kind.String(),
	})
	if lg := c.cfg.Logger; lg != nil {
		lctx := trace.ContextWith(context.Background(), ev.Trace)
		lctx = trace.ContextWithCrash(lctx, failure.App, 0)
		lg.LogAttrs(lctx, slog.LevelWarn,
			"app quarantined after crash",
			slog.String("event", ev.String()))
	}
	c.logf("controller: app %q quarantined after crash on %v", failure.App, ev)
	if cb := c.cfg.OnAppFailure; cb != nil {
		cb(failure)
	}
}

// fanOut distributes one event to every subscribed app's worker queue,
// running inline observers first on this goroutine (NetLog depends on
// observing events before any reacting app). Enqueueing blocks when a
// queue is full — backpressure instead of event loss, because dropping
// would break the per-app FIFO that replay depends on.
func (c *Controller) fanOut(ev Event) {
	entries, runner := c.snapshotApps()

	var tr *evTracker
	sp := c.startDispatchSpan(ev)
	if c.dispatchLatency != nil || sp != nil {
		n := int32(0)
		for _, e := range entries {
			if !e.disabled.Load() && e.subs[ev.Kind] {
				n++
			}
		}
		if n > 0 {
			tr = &evTracker{c: c, start: time.Now(), span: sp}
			tr.remaining.Store(n)
		} else {
			sp.End()
			sp = nil
		}
	}
	if sp != nil {
		// Deliveries hang under the dispatch span; the last worker to
		// finish ends it via the tracker.
		ev.Trace.SpanID = sp.Context().SpanID
	}

	delivered := false
	for _, e := range entries {
		if e.disabled.Load() || !e.subs[ev.Kind] {
			tr.skip(e, ev)
			continue
		}
		delivered = true
		if e.queue == nil {
			// Inline observer (or an app registered before Parallel was
			// resolved): runs on the dispatch goroutine, in order.
			c.deliver(e, runner, ev)
			tr.done()
			continue
		}
		select {
		case e.queue <- queuedEvent{ev: ev, tr: tr}:
		case <-c.stopped:
			tr.done()
			return
		}
	}
	if delivered {
		c.Dispatched.Add(1)
	}
	c.Processed.Add(1)
}

// skip balances the tracker when an app counted during the sizing pass
// was disabled before its turn (quarantined mid-fan-out).
func (t *evTracker) skip(e *appEntry, ev Event) {
	// Only relevant when a tracker exists and the app flipped to
	// disabled between the two passes; the subs check is deterministic.
	if t != nil && e.disabled.Load() && e.subs[ev.Kind] {
		t.done()
	}
}

// appWorker drains one app's queue in FIFO order. Consecutive queued
// events are coalesced into one BatchApp delivery when both the runner
// and the app support it, amortizing per-event overhead (AppVisor's
// per-event UDP round trip, Crash-Pad's per-event bookkeeping).
func (c *Controller) appWorker(e *appEntry) {
	defer c.wg.Done()
	var batch []queuedEvent
	for {
		select {
		case <-c.stopped:
			return
		case qe := <-e.queue:
			batch = batch[:0]
			batch = append(batch, qe)
			// Opportunistic drain: whatever is already queued, up to
			// BatchMax, goes out in one delivery.
			for len(batch) < c.cfg.BatchMax {
				select {
				case next := <-e.queue:
					batch = append(batch, next)
				default:
					goto drained
				}
			}
		drained:
			c.deliverBatch(e, batch)
		}
	}
}

// deliverBatch hands a drained run of events to the app, preferring one
// batched call when supported, falling back to per-event delivery.
func (c *Controller) deliverBatch(e *appEntry, batch []queuedEvent) {
	c.mu.Lock()
	runner := c.runner
	c.mu.Unlock()
	c.batchSize.Observe(float64(len(batch)))

	br, runnerOK := runner.(BatchRunner)
	_, appOK := e.app.(BatchApp)
	if len(batch) > 1 && runnerOK && appOK && !e.disabled.Load() {
		evs := make([]Event, len(batch))
		var spans []*trace.Span
		for i, qe := range batch {
			evs[i] = qe.ev
			if sp := c.cfg.Tracer.StartSpan(qe.ev.Trace, "controller.deliver"); sp != nil {
				sp.Attr("app", e.app.Name()).AttrInt("batch", int64(len(batch)))
				evs[i].Trace.SpanID = sp.Context().SpanID
				spans = append(spans, sp)
			}
		}
		e.events.Add(uint64(len(evs)))
		if failure := br.RunEventBatch(e.app, c, evs); failure != nil {
			c.quarantine(e, failure, failure.Event)
		}
		for _, sp := range spans {
			sp.End()
		}
		for _, qe := range batch {
			qe.tr.done()
		}
		return
	}
	for _, qe := range batch {
		if !e.disabled.Load() {
			c.deliver(e, runner, qe.ev)
		}
		qe.tr.done()
	}
}

// Inject queues an event as if it arrived from the network. The
// workload generators and Crash-Pad's replay path use this.
func (c *Controller) Inject(ev Event) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	if ev.Seq == 0 {
		ev.Seq = c.seq.Add(1)
	}
	if !ev.Trace.Valid() {
		// The sampling decision for the whole pipeline happens here,
		// once per event. Replayed events keep their original trace.
		ev.Trace = c.cfg.Tracer.Root()
	}
	select {
	case c.events <- ev:
		return nil
	case <-c.stopped:
		return ErrCrashed
	}
}

// InjectSync dispatches an event inline on the caller's goroutine,
// bypassing the queue. It preserves ordering only if the caller owns
// the event source; benchmarks use it to measure the bare dispatch path.
func (c *Controller) InjectSync(ev Event) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	if ev.Seq == 0 {
		ev.Seq = c.seq.Add(1)
	}
	if !ev.Trace.Valid() {
		ev.Trace = c.cfg.Tracer.Root()
	}
	c.dispatchOne(ev)
	return nil
}

// AppStats reports (delivered, failures) for a named app.
func (c *Controller) AppStats(name string) (events, failures uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.apps {
		if e.app.Name() == name {
			return e.events.Load(), e.failures.Load()
		}
	}
	return 0, 0
}

// Switches implements Context.
func (c *Controller) Switches() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.switches))
	for d := range c.switches {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ports implements Context. For a departed switch it returns the
// last-known port set, which Crash-Pad's switch-down → link-downs
// equivalence transform needs after the handle is gone.
func (c *Controller) Ports(dpid uint64) []openflow.PhyPort {
	c.mu.Lock()
	h := c.switches[dpid]
	if h == nil {
		last := append([]openflow.PhyPort(nil), c.lastPorts[dpid]...)
		c.mu.Unlock()
		return last
	}
	c.mu.Unlock()
	return h.portList()
}

// Topology implements Context.
func (c *Controller) Topology() []LinkInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LinkInfo, 0, len(c.links))
	for l := range c.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SrcDPID != b.SrcDPID {
			return a.SrcDPID < b.SrcDPID
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstDPID < b.DstDPID
	})
	return out
}

// Serve accepts switch connections from l until the controller stops.
func (c *Controller) Serve(l net.Listener) {
	go func() {
		<-c.stopped
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if err := c.AttachSwitchConn(openflow.NewConn(conn)); err != nil {
			c.logf("controller: attach failed: %v", err)
			conn.Close()
		}
	}
}
