package controller

import (
	"net"
	"sync"
	"testing"
	"time"

	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// testApp is a scriptable SDN-App for controller tests.
type testApp struct {
	name   string
	subs   []EventKind
	handle func(ctx Context, ev Event) error

	mu     sync.Mutex
	events []Event
}

func (a *testApp) Name() string { return a.name }
func (a *testApp) Subscriptions() []EventKind {
	if a.subs == nil {
		return AllEventKinds()
	}
	return a.subs
}
func (a *testApp) HandleEvent(ctx Context, ev Event) error {
	a.mu.Lock()
	a.events = append(a.events, ev)
	a.mu.Unlock()
	if a.handle != nil {
		return a.handle(ctx, ev)
	}
	return nil
}
func (a *testApp) eventCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.events)
}
func (a *testApp) lastEvent() Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.events) == 0 {
		return Event{}
	}
	return a.events[len(a.events)-1]
}

// startNetwork attaches every switch in n to c over in-memory pipes.
func startNetwork(t *testing.T, c *Controller, n *netsim.Network) {
	t.Helper()
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			t.Fatal(err)
		}
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHandshakeRegistersSwitch(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	app := &testApp{name: "watcher"}
	c.Register(app)

	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	if got := c.Switches(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("switches = %v", got)
	}
	if ports := c.Ports(1); len(ports) != 2 {
		t.Fatalf("ports = %d, want 2", len(ports))
	}
	eventually(t, "switch-up event", func() bool {
		return app.eventCount() >= 1 && app.lastEvent().Kind == EventSwitchUp
	})
}

func TestPacketInDispatchOrder(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	var order []string
	var mu sync.Mutex
	mk := func(name string) *testApp {
		return &testApp{name: name, subs: []EventKind{EventPacketIn},
			handle: func(ctx Context, ev Event) error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			}}
	}
	c.Register(mk("first"))
	c.Register(mk("second"))

	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))

	eventually(t, "both apps to see the event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("dispatch order = %v", order)
	}
}

func TestMonolithicFateSharing(t *testing.T) {
	c := New(Config{Monolithic: true})
	defer c.Stop()
	crasher := &testApp{name: "crasher", subs: []EventKind{EventPacketIn},
		handle: func(ctx Context, ev Event) error { panic("deterministic bug") }}
	bystander := &testApp{name: "bystander", subs: []EventKind{EventPacketIn}}
	c.Register(crasher)
	c.Register(bystander)

	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))

	eventually(t, "controller crash", c.Crashed)
	// Fate sharing: the bystander app never ran, and the control plane
	// rejects further work.
	if bystander.eventCount() != 0 {
		t.Error("bystander should have died with the controller before its turn")
	}
	if err := c.Inject(Event{Kind: EventPacketIn, DPID: 1}); err != ErrCrashed {
		t.Errorf("inject after crash = %v, want ErrCrashed", err)
	}
	if err := c.SendMessage(1, &openflow.Hello{}); err != ErrCrashed {
		t.Errorf("send after crash = %v, want ErrCrashed", err)
	}
}

func TestIsolatedModeQuarantinesOnlyFailingApp(t *testing.T) {
	var failures []*AppFailure
	var mu sync.Mutex
	c := New(Config{OnAppFailure: func(f *AppFailure) {
		mu.Lock()
		failures = append(failures, f)
		mu.Unlock()
	}})
	defer c.Stop()
	crasher := &testApp{name: "crasher", subs: []EventKind{EventPacketIn},
		handle: func(ctx Context, ev Event) error { panic("bug") }}
	survivor := &testApp{name: "survivor", subs: []EventKind{EventPacketIn}}
	c.Register(crasher)
	c.Register(survivor)

	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))

	eventually(t, "survivor sees first event", func() bool { return survivor.eventCount() == 1 })
	if c.Crashed() {
		t.Fatal("controller should survive")
	}
	eventually(t, "crasher quarantined", func() bool { return c.AppDisabled("crasher") })

	// Second event only reaches the survivor.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 3, 4, nil))
	eventually(t, "survivor sees second event", func() bool { return survivor.eventCount() == 2 })
	if crasher.eventCount() != 1 {
		t.Errorf("crasher saw %d events, want 1", crasher.eventCount())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(failures) != 1 || failures[0].App != "crasher" || len(failures[0].Stack) == 0 {
		t.Fatalf("failures = %+v", failures)
	}
	if ev, fails := c.AppStats("crasher"); ev != 1 || fails != 1 {
		t.Errorf("crasher stats = %d/%d", ev, fails)
	}
}

func TestFlowModReachesSwitch(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	fm := &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 7,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 101}},
	}
	if err := c.SendFlowMod(1, fm); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if n.Switch(1).Table().Len() != 1 {
		t.Fatal("flow mod never landed")
	}
}

func TestRequestStats(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	reply, err := c.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypePort})
	if err != nil {
		t.Fatal(err)
	}
	if reply.StatsType != openflow.StatsTypePort || len(reply.Ports) != 2 {
		t.Fatalf("reply %+v", reply)
	}
}

func TestStatsRewriterRuns(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	c.AddStatsRewriter(func(dpid uint64, reply *openflow.StatsReply) {
		reply.Ports = nil // redact everything
	})
	reply, err := c.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypePort})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Ports) != 0 {
		t.Fatal("rewriter did not run")
	}
}

func TestOutboundHookSuppressAndRewrite(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	var seen []openflow.Type
	c.AddOutboundHook(func(dpid uint64, msg openflow.Message) (openflow.Message, error) {
		seen = append(seen, msg.Type())
		if msg.Type() == openflow.TypePacketOut {
			return nil, nil // suppress packet-outs
		}
		if fm, ok := msg.(*openflow.FlowMod); ok {
			fm = fm.Clone()
			fm.Priority = 42 // rewrite
			return fm, nil
		}
		return msg, nil
	})

	c.SendPacketOut(1, &openflow.PacketOut{BufferID: openflow.BufferIDNone, InPort: openflow.PortNone,
		Data: (&netsim.Frame{DlType: netsim.EtherTypeIPv4}).Marshal()})
	c.SendFlowMod(1, &openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone})
	c.Barrier(1)

	entries := n.Switch(1).Table().Entries()
	if len(entries) != 1 || entries[0].Priority != 42 {
		t.Fatalf("rewrite not applied: %+v", entries)
	}
	if len(seen) != 2 {
		t.Fatalf("hook saw %d messages", len(seen))
	}
}

func TestSwitchDownEvent(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	app := &testApp{name: "w", subs: []EventKind{EventSwitchDown}}
	c.Register(app)
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	n.SetSwitchDown(1, true)
	eventually(t, "switch-down event", func() bool {
		return app.eventCount() == 1 && app.lastEvent().DPID == 1
	})
	if got := c.Switches(); len(got) != 0 {
		t.Fatalf("switch still registered: %v", got)
	}
	if err := c.SendMessage(1, &openflow.Hello{}); err == nil {
		t.Fatal("send to dead switch should fail")
	}
}

func TestLLDPDiscovery(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Linear(3, nil)
	startNetwork(t, c, n)

	if err := c.DiscoverTopology(); err != nil {
		t.Fatal(err)
	}
	// Linear(3): s1-s2 and s2-s3, both directions discovered = 4 links.
	eventually(t, "4 discovered links", func() bool { return len(c.Topology()) == 4 })
	want := map[LinkInfo]bool{
		{SrcDPID: 1, SrcPort: 2, DstDPID: 2, DstPort: 1}: true,
		{SrcDPID: 2, SrcPort: 1, DstDPID: 1, DstPort: 2}: true,
		{SrcDPID: 2, SrcPort: 2, DstDPID: 3, DstPort: 1}: true,
		{SrcDPID: 3, SrcPort: 1, DstDPID: 2, DstPort: 2}: true,
	}
	for _, l := range c.Topology() {
		if !want[l] {
			t.Errorf("unexpected link %+v", l)
		}
	}
}

func TestPortStatusUpdatesPortView(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	app := &testApp{name: "w", subs: []EventKind{EventPortStatus}}
	c.Register(app)
	n := netsim.Linear(2, nil)
	startNetwork(t, c, n)

	n.SetLinkDown(1, 2, 2, 1, true)
	eventually(t, "port status events", func() bool { return app.eventCount() >= 1 })
	eventually(t, "port view updated", func() bool {
		for _, p := range c.Ports(1) {
			if p.PortNo == 2 && p.LinkDown() {
				return true
			}
		}
		return false
	})
}

func TestInjectSyncBypassesQueue(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	app := &testApp{name: "a", subs: []EventKind{EventPacketIn}}
	c.Register(app)
	if err := c.InjectSync(Event{Kind: EventPacketIn, DPID: 9}); err != nil {
		t.Fatal(err)
	}
	if app.eventCount() != 1 {
		t.Fatal("sync inject did not dispatch inline")
	}
}

func TestSetAppDisabled(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	app := &testApp{name: "a", subs: []EventKind{EventPacketIn}}
	c.Register(app)
	c.SetAppDisabled("a", true)
	c.InjectSync(Event{Kind: EventPacketIn})
	if app.eventCount() != 0 {
		t.Fatal("disabled app received an event")
	}
	c.SetAppDisabled("a", false)
	c.InjectSync(Event{Kind: EventPacketIn})
	if app.eventCount() != 1 {
		t.Fatal("re-enabled app missed the event")
	}
}

func TestControllerUpgradeLosesMonolithicSwitchConns(t *testing.T) {
	// Simulated upgrade: stopping the controller severs every switch.
	c := New(Config{})
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	c.Stop()
	if err := c.SendMessage(1, &openflow.Hello{}); err == nil {
		t.Fatal("send after stop should fail")
	}
}

func TestServeOverTCP(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(l)

	n := netsim.Single(2, nil)
	for _, sw := range n.Switches() {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Attach(openflow.NewConn(conn)); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "switch registered over TCP", func() bool { return len(c.Switches()) == 1 })

	// Full control loop over real TCP: flow mod + barrier + traffic.
	if err := c.SendFlowMod(1, &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 3,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(1); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))
	eventually(t, "delivery over TCP-programmed rules", func() bool { return h2.ReceivedCount() == 1 })
}

func TestEchoLivenessDetectsSilentDeath(t *testing.T) {
	c := New(Config{EchoInterval: 30 * time.Millisecond})
	defer c.Stop()
	app := &testApp{name: "w", subs: []EventKind{EventSwitchDown}}
	c.Register(app)

	// A fake switch that completes the handshake, then goes silent
	// without closing its connection (a hung peer).
	ctrlSide, swSide := openflow.Pipe()
	silent := make(chan struct{})
	go func() {
		swSide.WriteMessage(&openflow.Hello{})
		for {
			msg, err := swSide.ReadMessage()
			if err != nil {
				return
			}
			if fr, ok := msg.(*openflow.FeaturesRequest); ok {
				swSide.WriteMessage(&openflow.FeaturesReply{
					BaseMsg: openflow.BaseMsg{Xid: fr.Xid}, DatapathID: 9})
			}
			select {
			case <-silent:
				// Hung: keep reading (so writes don't block) but never reply.
			default:
			}
		}
	}()
	if err := c.AttachSwitchConn(ctrlSide); err != nil {
		t.Fatal(err)
	}
	close(silent)
	eventually(t, "silent switch declared dead", func() bool {
		return app.eventCount() >= 1 && app.lastEvent().DPID == 9
	})
}

func TestMultipartStatsMergedOverPipe(t *testing.T) {
	c := New(Config{})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)

	// Enough entries that the reply must split into several parts
	// (each entry ~96B; one part caps near 56KB).
	const entries = 1500
	for i := 0; i < entries; i++ {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardTpSrc | openflow.WildcardInPort
		m.TpSrc = uint16(i)
		m.InPort = uint16(i >> 12)
		if _, err := n.Switch(1).Table().Apply(&openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: uint16(i % 100),
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := c.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Flows) != entries {
		t.Fatalf("merged flows = %d, want %d", len(reply.Flows), entries)
	}
	if reply.Flags&openflow.StatsReplyFlagMore != 0 {
		t.Fatal("merged reply still flagged More")
	}
}

func TestEchoLivenessHealthySwitchStaysUp(t *testing.T) {
	c := New(Config{EchoInterval: 20 * time.Millisecond})
	defer c.Stop()
	n := netsim.Single(2, nil)
	startNetwork(t, c, n)
	// Several echo rounds pass; the healthy switch must stay registered.
	time.Sleep(120 * time.Millisecond)
	if len(c.Switches()) != 1 {
		t.Fatal("healthy switch dropped by echo probing")
	}
	if err := c.Barrier(1); err != nil {
		t.Fatalf("control channel degraded: %v", err)
	}
}

// Regression test: every echoLoop exit path must deregister its
// in-flight waiter from the handle's pending map. The timeout branch
// always did; the write-failure and closed-mid-probe branches used to
// leave the entry behind, leaking one waiter per reconnect on handles
// already superseded in c.switches (where onDisconnect's sweep no
// longer reaches them).
func TestEchoLoopCleansPendingOnAllExits(t *testing.T) {
	pendingLen := func(c *Controller, h *swHandle) int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(h.pending)
	}
	newHandle := func(c *Controller) (*swHandle, *openflow.Conn) {
		ctrlSide, swSide := openflow.Pipe()
		return &swHandle{
			c:        c,
			conn:     ctrlSide,
			ports:    make(map[uint16]openflow.PhyPort),
			pending:  make(map[uint32]chan openflow.Message),
			closedCh: make(chan struct{}),
		}, swSide
	}
	waitDone := func(t *testing.T, done chan struct{}) {
		t.Helper()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			t.Fatal("echoLoop never exited")
		}
	}

	t.Run("write failure", func(t *testing.T) {
		c := New(Config{})
		defer c.Stop()
		h, swSide := newHandle(c)
		swSide.Close() // the probe's WriteMessage fails immediately
		done := make(chan struct{})
		go func() { h.echoLoop(2 * time.Millisecond); close(done) }()
		waitDone(t, done)
		if n := pendingLen(c, h); n != 0 {
			t.Fatalf("pending leaked %d waiter(s) after write failure", n)
		}
	})

	t.Run("closed mid-probe", func(t *testing.T) {
		c := New(Config{})
		defer c.Stop()
		h, swSide := newHandle(c)
		go func() { // peer drains probes but never answers
			for {
				if _, err := swSide.ReadMessage(); err != nil {
					return
				}
			}
		}()
		done := make(chan struct{})
		go func() { h.echoLoop(50 * time.Millisecond); close(done) }()
		// Close the handle while the probe is awaiting its reply.
		eventually(t, "probe in flight", func() bool { return pendingLen(c, h) == 1 })
		h.close()
		waitDone(t, done)
		if n := pendingLen(c, h); n != 0 {
			t.Fatalf("pending leaked %d waiter(s) after close mid-probe", n)
		}
	})

	t.Run("reply timeout", func(t *testing.T) {
		c := New(Config{})
		defer c.Stop()
		h, swSide := newHandle(c)
		go func() {
			for {
				if _, err := swSide.ReadMessage(); err != nil {
					return
				}
			}
		}()
		done := make(chan struct{})
		go func() { h.echoLoop(5 * time.Millisecond); close(done) }()
		waitDone(t, done)
		if n := pendingLen(c, h); n != 0 {
			t.Fatalf("pending leaked %d waiter(s) after echo timeout", n)
		}
		select {
		case <-h.closedCh:
		default:
			t.Fatal("missed echo must close the handle")
		}
	})
}
