package controller

import (
	"fmt"
	"sync/atomic"
	"time"

	"legosdn/internal/openflow"
)

// swHandle is the controller-side state for one connected switch.
type swHandle struct {
	c        *Controller
	conn     *openflow.Conn
	dpid     atomic.Uint64
	ports    map[uint16]openflow.PhyPort
	pending  map[uint32]chan openflow.Message
	closedCh chan struct{}
}

// AttachSwitchConn performs the active (controller-side) handshake on
// conn and starts the read pump. It blocks until the switch's
// FeaturesReply arrives or the request times out.
func (c *Controller) AttachSwitchConn(conn *openflow.Conn) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	h := &swHandle{
		c:        c,
		conn:     conn,
		ports:    make(map[uint16]openflow.PhyPort),
		pending:  make(map[uint32]chan openflow.Message),
		closedCh: make(chan struct{}),
	}
	xid := conn.NextXid()
	ready := make(chan openflow.Message, 1)
	h.pending[xid] = ready
	// Start the reader before writing: over synchronous transports
	// (net.Pipe) both ends write their Hello first, so each side must
	// already be draining its peer or the two writes deadlock.
	go h.pump()
	if err := conn.WriteMessage(&openflow.Hello{}); err != nil {
		return fmt.Errorf("controller: hello: %w", err)
	}
	if err := conn.WriteMessage(&openflow.FeaturesRequest{BaseMsg: openflow.BaseMsg{Xid: xid}}); err != nil {
		return fmt.Errorf("controller: features request: %w", err)
	}
	select {
	case msg := <-ready:
		fr, ok := msg.(*openflow.FeaturesReply)
		if !ok {
			conn.Close()
			return fmt.Errorf("controller: handshake got %v, want FEATURES_REPLY", msg.Type())
		}
		h.dpid.Store(fr.DatapathID)
		for _, p := range fr.Ports {
			h.ports[p.PortNo] = p
		}
		c.mu.Lock()
		if old := c.switches[h.dpid.Load()]; old != nil {
			old.close()
		}
		c.switches[h.dpid.Load()] = h
		c.mu.Unlock()
		if c.cfg.EchoInterval > 0 {
			go h.echoLoop(c.cfg.EchoInterval)
		}
		_ = c.Inject(Event{Kind: EventSwitchUp, DPID: h.dpid.Load(), Message: fr})
		return nil
	case <-h.closedCh:
		return fmt.Errorf("controller: switch closed during handshake")
	case <-time.After(c.cfg.RequestTimeout):
		conn.Close()
		return fmt.Errorf("controller: handshake timeout")
	}
}

// echoLoop probes the switch with EchoRequests; a missed reply tears
// the handle down, converting silent peer death into a SwitchDown
// event. Runs until the handle closes. Every exit path deregisters the
// in-flight waiter itself — relying on the pump's onDisconnect sweep
// would leave a dead entry behind whenever this handle has already been
// superseded in c.switches, and a long-lived controller would
// accumulate one per reconnect.
func (h *swHandle) echoLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	// One timer reused across probes instead of a time.After per
	// iteration, which would allocate a garbage timer every interval for
	// the lifetime of the connection.
	wait := time.NewTimer(interval)
	wait.Stop()
	defer wait.Stop()
	for {
		select {
		case <-h.closedCh:
			return
		case <-t.C:
			xid := h.conn.NextXid()
			waiter := make(chan openflow.Message, 1)
			h.c.mu.Lock()
			h.pending[xid] = waiter
			h.c.mu.Unlock()
			unregister := func() {
				h.c.mu.Lock()
				delete(h.pending, xid)
				h.c.mu.Unlock()
			}
			err := h.conn.WriteMessage(&openflow.EchoRequest{
				BaseMsg: openflow.BaseMsg{Xid: xid}, Data: []byte("lv"),
			})
			if err != nil {
				unregister()
				h.close()
				return
			}
			wait.Reset(interval)
			select {
			case _, ok := <-waiter:
				stopTimer(wait)
				if !ok {
					return // handle closed under us; closer already swept pending
				}
			case <-wait.C:
				unregister()
				h.c.logf("controller: switch %d missed echo; declaring it dead", h.dpid.Load())
				h.close()
				return
			case <-h.closedCh:
				stopTimer(wait)
				unregister()
				return
			}
		}
	}
}

// stopTimer halts a reusable timer between arms, discarding (without
// blocking) a tick that fired before Stop won the race. Safe under both
// pre- and post-1.23 timer channel semantics.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// isReply reports whether a message type answers a controller request.
func isReply(t openflow.Type) bool {
	switch t {
	case openflow.TypeFeaturesReply, openflow.TypeStatsReply, openflow.TypeBarrierReply,
		openflow.TypeGetConfigReply, openflow.TypeEchoReply, openflow.TypeError:
		return true
	}
	return false
}

// close tears the handle down, failing all pending waiters.
func (h *swHandle) close() {
	select {
	case <-h.closedCh:
		return
	default:
	}
	close(h.closedCh)
	h.conn.Close()
}

// pump owns all reads from the switch connection, translating
// asynchronous messages into controller events and completing
// synchronous waiters by xid.
func (h *swHandle) pump() {
	defer h.onDisconnect()
	for {
		msg, err := h.conn.ReadMessage()
		if err != nil {
			return
		}
		// Synchronous completions first. Only reply-class messages can
		// complete a waiter: switch-initiated messages carry xids from
		// the switch's own counter, which may collide with ours.
		if isReply(msg.Type()) {
			h.c.mu.Lock()
			waiter := h.pending[msg.GetXid()]
			if waiter != nil {
				// A multipart stats reply keeps its waiter registered
				// until the final (no-More) part arrives.
				if sr, ok := msg.(*openflow.StatsReply); !ok || sr.Flags&openflow.StatsReplyFlagMore == 0 {
					delete(h.pending, msg.GetXid())
				}
			}
			h.c.mu.Unlock()
			if waiter != nil {
				waiter <- msg
				continue
			}
		}

		switch m := msg.(type) {
		case *openflow.Hello:
			// Peer's handshake hello; nothing to do.
		case *openflow.EchoRequest:
			_ = h.conn.WriteMessage(&openflow.EchoReply{BaseMsg: openflow.BaseMsg{Xid: m.Xid}, Data: m.Data})
		case *openflow.PacketIn:
			if h.c.handleLLDP(h, m) {
				continue
			}
			_ = h.c.Inject(Event{Kind: EventPacketIn, DPID: h.dpid.Load(), Message: m})
		case *openflow.FlowRemoved:
			_ = h.c.Inject(Event{Kind: EventFlowRemoved, DPID: h.dpid.Load(), Message: m})
		case *openflow.PortStatus:
			h.c.mu.Lock()
			switch m.Reason {
			case openflow.PortReasonDelete:
				delete(h.ports, m.Desc.PortNo)
			default:
				h.ports[m.Desc.PortNo] = m.Desc
			}
			// A dead port invalidates any discovered adjacency through
			// it; rediscovery re-adds the link if it comes back.
			if m.Reason == openflow.PortReasonDelete || m.Desc.LinkDown() ||
				m.Desc.Config&openflow.PortConfigDown != 0 {
				dpid := h.dpid.Load()
				for l := range h.c.links {
					if (l.SrcDPID == dpid && l.SrcPort == m.Desc.PortNo) ||
						(l.DstDPID == dpid && l.DstPort == m.Desc.PortNo) {
						delete(h.c.links, l)
					}
				}
			}
			h.c.mu.Unlock()
			_ = h.c.Inject(Event{Kind: EventPortStatus, DPID: h.dpid.Load(), Message: m})
		case *openflow.ErrorMsg:
			_ = h.c.Inject(Event{Kind: EventErrorMsg, DPID: h.dpid.Load(), Message: m})
		default:
			// Unsolicited replies (stats after timeout, barriers) are dropped.
		}
	}
}

// onDisconnect deregisters the switch and emits SwitchDown.
func (h *swHandle) onDisconnect() {
	h.close()
	h.c.mu.Lock()
	registered := h.dpid.Load() != 0 && h.c.switches[h.dpid.Load()] == h
	if registered {
		ports := make([]openflow.PhyPort, 0, len(h.ports))
		for _, p := range h.ports {
			ports = append(ports, p)
		}
		h.c.lastPorts[h.dpid.Load()] = ports
		delete(h.c.switches, h.dpid.Load())
		// Forget links touching this switch.
		for l := range h.c.links {
			if l.SrcDPID == h.dpid.Load() || l.DstDPID == h.dpid.Load() {
				delete(h.c.links, l)
			}
		}
	}
	// Fail all pending synchronous waiters.
	for xid, w := range h.pending {
		close(w)
		delete(h.pending, xid)
	}
	h.c.mu.Unlock()
	if registered && !h.c.crashed.Load() {
		_ = h.c.Inject(Event{Kind: EventSwitchDown, DPID: h.dpid.Load()})
	}
}

func (h *swHandle) portList() []openflow.PhyPort {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	out := make([]openflow.PhyPort, 0, len(h.ports))
	for _, p := range h.ports {
		out = append(out, p)
	}
	return out
}

func (c *Controller) handle(dpid uint64) (*swHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.switches[dpid]
	if h == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoSwitch, dpid)
	}
	return h, nil
}

// SendMessage implements Context. The message traverses the outbound
// hook chain (NetLog, delay buffers) before hitting the wire.
func (c *Controller) SendMessage(dpid uint64, msg openflow.Message) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	c.mu.Lock()
	hooks := append([]OutboundHook(nil), c.hooks...)
	c.mu.Unlock()
	for _, hook := range hooks {
		out, err := hook(dpid, msg)
		if err != nil {
			return err
		}
		if out == nil {
			return nil // suppressed by the hook
		}
		msg = out
	}
	h, err := c.handle(dpid)
	if err != nil {
		return err
	}
	if c.sendLatency != nil {
		defer c.sendLatency.ObserveSince(time.Now())
	}
	return h.conn.WriteMessage(msg)
}

// SendFlowMod implements Context.
func (c *Controller) SendFlowMod(dpid uint64, fm *openflow.FlowMod) error {
	return c.SendMessage(dpid, fm)
}

// SendPacketOut implements Context.
func (c *Controller) SendPacketOut(dpid uint64, po *openflow.PacketOut) error {
	return c.SendMessage(dpid, po)
}

// request performs one synchronous xid-matched exchange.
func (c *Controller) request(dpid uint64, msg openflow.Message) (openflow.Message, error) {
	reply, _, err := c.requestWithWaiter(dpid, msg)
	return reply, err
}

// requestWithWaiter performs the exchange and also returns the waiter
// channel, which stays registered (and may hold further parts) when the
// reply is a multipart stats part flagged More.
func (c *Controller) requestWithWaiter(dpid uint64, msg openflow.Message) (openflow.Message, chan openflow.Message, error) {
	h, err := c.handle(dpid)
	if err != nil {
		return nil, nil, err
	}
	xid := h.conn.NextXid()
	msg.SetXid(xid)
	// Capacity covers bursts of multipart stats parts without stalling
	// the connection's read pump.
	waiter := make(chan openflow.Message, 16)
	c.mu.Lock()
	h.pending[xid] = waiter
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(h.pending, xid)
		c.mu.Unlock()
	}
	// Synchronous exchanges bypass outbound hooks: they are reads (stats,
	// barriers), not state-altering writes. NetLog's counter-cache
	// rewrites the reply instead, via RewriteStatsReply.
	if err := h.conn.WriteMessage(msg); err != nil {
		cleanup()
		return nil, nil, err
	}
	select {
	case reply, ok := <-waiter:
		if !ok {
			return nil, nil, fmt.Errorf("controller: switch %d disconnected mid-request", dpid)
		}
		return reply, waiter, nil
	case <-time.After(c.cfg.RequestTimeout):
		cleanup()
		return nil, nil, fmt.Errorf("controller: request to switch %d timed out", dpid)
	}
}

// RequestStats implements Context. Multipart replies (parts flagged
// with StatsReplyFlagMore) are collected and merged into one reply.
func (c *Controller) RequestStats(dpid uint64, req *openflow.StatsRequest) (*openflow.StatsReply, error) {
	reply, waiter, err := c.requestWithWaiter(dpid, req)
	if err != nil {
		return nil, err
	}
	sr, ok := reply.(*openflow.StatsReply)
	if !ok {
		return nil, fmt.Errorf("controller: stats request answered by %v", reply.Type())
	}
	// Drain the remaining parts; the final (no-More) part may already
	// sit in the waiter channel even after the pump deregistered it.
	for sr.Flags&openflow.StatsReplyFlagMore != 0 {
		more, err := c.awaitMore(dpid, waiter)
		if err != nil {
			return nil, err
		}
		sr.Flows = append(sr.Flows, more.Flows...)
		sr.Ports = append(sr.Ports, more.Ports...)
		sr.Raw = append(sr.Raw, more.Raw...)
		sr.Flags = more.Flags
	}
	c.mu.Lock()
	rewriters := append([]StatsRewriter(nil), c.statsRewriters...)
	c.mu.Unlock()
	for _, rw := range rewriters {
		rw(dpid, sr)
	}
	return sr, nil
}

// awaitMore receives one additional multipart stats part from the
// request's waiter channel.
func (c *Controller) awaitMore(dpid uint64, waiter chan openflow.Message) (*openflow.StatsReply, error) {
	select {
	case reply, ok := <-waiter:
		if !ok {
			return nil, fmt.Errorf("controller: switch %d disconnected mid-multipart", dpid)
		}
		sr, ok := reply.(*openflow.StatsReply)
		if !ok {
			return nil, fmt.Errorf("controller: multipart interrupted by %v", reply.Type())
		}
		return sr, nil
	case <-time.After(c.cfg.RequestTimeout):
		return nil, fmt.Errorf("controller: multipart stats from %d timed out", dpid)
	}
}

// Barrier implements Context.
func (c *Controller) Barrier(dpid uint64) error {
	reply, err := c.request(dpid, &openflow.BarrierRequest{})
	if err != nil {
		return err
	}
	if reply.Type() != openflow.TypeBarrierReply {
		return fmt.Errorf("controller: barrier answered by %v", reply.Type())
	}
	return nil
}
