// Package controller implements a FloodLight-style OpenFlow controller:
// switch handshake and connection management, an ordered SDN-App
// dispatch chain, synchronous request/reply plumbing (stats, barriers)
// and LLDP-based topology discovery.
//
// The package reproduces the architecture of Figure 1 (left) in the
// LegoSDN paper: by default every SDN-App runs in the controller's own
// failure domain, so an app panic crashes the whole control plane —
// the fate-sharing relationship LegoSDN exists to remove. The isolation
// machinery (AppVisor, Crash-Pad) plugs in through the AppRunner hook
// without modifying this package, mirroring the paper's claim that
// LegoSDN requires no controller changes.
package controller

import (
	"fmt"

	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// EventKind classifies the events delivered to SDN-Apps.
type EventKind int

// Event kinds, in rough FloodLight listener taxonomy.
const (
	EventPacketIn EventKind = iota
	EventFlowRemoved
	EventPortStatus
	EventSwitchUp   // switch completed its handshake
	EventSwitchDown // switch control channel lost
	EventErrorMsg   // switch reported an OpenFlow error
)

var eventKindNames = map[EventKind]string{
	EventPacketIn:    "PACKET_IN",
	EventFlowRemoved: "FLOW_REMOVED",
	EventPortStatus:  "PORT_STATUS",
	EventSwitchUp:    "SWITCH_UP",
	EventSwitchDown:  "SWITCH_DOWN",
	EventErrorMsg:    "ERROR",
}

func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EVENT(%d)", int(k))
}

// AllEventKinds lists every kind, for apps subscribing to everything.
func AllEventKinds() []EventKind {
	return []EventKind{EventPacketIn, EventFlowRemoved, EventPortStatus, EventSwitchUp, EventSwitchDown, EventErrorMsg}
}

// Event is one unit of work delivered to an SDN-App: an asynchronous
// switch message or a connectivity pseudo-event. Seq is a controller
// assigned, strictly increasing sequence number establishing the
// dispatch order that LegoSDN's replay machinery depends on.
type Event struct {
	Seq     uint64
	Kind    EventKind
	DPID    uint64
	Message openflow.Message // nil for EventSwitchDown
	// Trace carries the event's sampled trace context (zero when
	// untraced). The controller sets the trace id at Inject; each stage
	// that opens a span re-parents SpanID before passing the event on,
	// and AppVisor propagates both ids over the wire so stub-side spans
	// join the same trace.
	Trace trace.SpanContext
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %v dpid=%d", e.Seq, e.Kind, e.DPID)
}

// App is an SDN application. Implementations must be safe to drive from
// the controller's single dispatch goroutine; they need no internal
// locking unless they share state with other goroutines.
type App interface {
	// Name identifies the app in logs, policies and problem tickets.
	Name() string
	// Subscriptions lists the event kinds the app wants delivered.
	Subscriptions() []EventKind
	// HandleEvent processes one event, issuing commands through ctx.
	// A returned error marks the event as failed without implying an
	// app crash; a panic is an app crash.
	HandleEvent(ctx Context, ev Event) error
}

// InlineObserver marks an app that must run on the dispatch goroutine
// itself, before events fan out to parallel app queues. NetLog is the
// canonical case: it maintains shadow flow tables from FlowRemoved and
// switch lifecycle events and corrects counters in place, so it has to
// observe every event before any reacting app does. Inline observers
// trade parallelism for that ordering guarantee; keep their handlers
// cheap. In serial mode the marker changes nothing.
type InlineObserver interface {
	InlineObserve()
}

// BatchApp is implemented by apps that can absorb several events in one
// call. The parallel pipeline's workers coalesce queued runs of events
// into one HandleEventBatch delivery, which AppVisor's proxy turns into
// a single batched datagram (one UDP round trip for N events). Events
// must be processed in slice order; the error return follows
// HandleEvent semantics (an error marks events failed, a panic is a
// crash).
type BatchApp interface {
	HandleEventBatch(ctx Context, evs []Event) error
}

// BatchRunner is optionally implemented by AppRunners that can deliver
// a batch in one step. Runners without it simply get per-event
// RunEvent calls, so batching degrades gracefully.
type BatchRunner interface {
	RunEventBatch(app App, ctx Context, evs []Event) *AppFailure
}

// Snapshotter is implemented by stateful apps that support Crash-Pad
// checkpointing: Snapshot serializes all state needed to resume, and
// Restore replaces current state with a prior snapshot. This plays the
// role CRIU process images play in the paper's prototype.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// Context is the controller surface exposed to SDN-Apps. All methods
// are safe for concurrent use.
type Context interface {
	// SendMessage sends any OpenFlow message to a switch.
	SendMessage(dpid uint64, msg openflow.Message) error
	// SendFlowMod installs/removes flow state on a switch.
	SendFlowMod(dpid uint64, fm *openflow.FlowMod) error
	// SendPacketOut emits a packet from a switch.
	SendPacketOut(dpid uint64, po *openflow.PacketOut) error
	// RequestStats performs a synchronous stats exchange.
	RequestStats(dpid uint64, req *openflow.StatsRequest) (*openflow.StatsReply, error)
	// Barrier performs a synchronous barrier exchange.
	Barrier(dpid uint64) error
	// Switches lists connected datapath ids.
	Switches() []uint64
	// Ports lists the ports a switch advertised at handshake.
	Ports(dpid uint64) []openflow.PhyPort
	// Topology exposes discovered inter-switch links.
	Topology() []LinkInfo
}

// LinkInfo is one discovered unidirectional inter-switch adjacency.
type LinkInfo struct {
	SrcDPID uint64
	SrcPort uint16
	DstDPID uint64
	DstPort uint16
}

// AppRunner invokes an app's event handler. The default runner
// (directRunner) calls the handler inline and lets panics propagate —
// the monolithic fate-sharing architecture. AppVisor and Crash-Pad
// supply runners that isolate and recover instead.
type AppRunner interface {
	// RunEvent delivers ev to app. A returned AppFailure describes a
	// crash that the runner could not (or chose not to) recover.
	RunEvent(app App, ctx Context, ev Event) *AppFailure
}

// AppFailure describes an SDN-App crash surfaced to the controller.
type AppFailure struct {
	App        string
	Event      Event
	PanicValue any
	Stack      []byte
}

func (f *AppFailure) Error() string {
	return fmt.Sprintf("app %q crashed on %v: %v", f.App, f.Event, f.PanicValue)
}

// directRunner is the monolithic mode: no recover. An app panic unwinds
// into the dispatch loop and takes the controller down, exactly like an
// unhandled exception in a FloodLight module thread.
type directRunner struct{}

func (directRunner) RunEvent(app App, ctx Context, ev Event) *AppFailure {
	_ = app.HandleEvent(ctx, ev) // panics propagate: fate sharing
	return nil
}
