package controller

import (
	"encoding/binary"

	"legosdn/internal/openflow"
)

// etherTypeLLDP is the LLDP ethertype used by topology discovery.
const etherTypeLLDP uint16 = 0x88cc

// lldpMulticast is the canonical LLDP destination address.
var lldpMulticast = openflow.EthAddr{0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}

// lldpFrame builds a discovery frame advertising (dpid, port). The body
// is a compact fixed layout (dpid:8, port:2) rather than full TLVs —
// both ends are this controller, so the representation is private.
func lldpFrame(dpid uint64, port uint16, hw openflow.EthAddr) []byte {
	b := make([]byte, 0, 14+10)
	b = append(b, lldpMulticast[:]...)
	b = append(b, hw[:]...)
	b = binary.BigEndian.AppendUint16(b, etherTypeLLDP)
	b = binary.BigEndian.AppendUint64(b, dpid)
	b = binary.BigEndian.AppendUint16(b, port)
	return b
}

// parseLLDP extracts (dpid, port) from a discovery frame, reporting
// false for anything that is not one of ours.
func parseLLDP(data []byte) (dpid uint64, port uint16, ok bool) {
	if len(data) < 24 {
		return 0, 0, false
	}
	if binary.BigEndian.Uint16(data[12:14]) != etherTypeLLDP {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(data[14:22]), binary.BigEndian.Uint16(data[22:24]), true
}

// handleLLDP consumes discovery PacketIns, recording the link they
// reveal. It returns true when the message was an LLDP frame (and so
// must not be dispatched to apps).
func (c *Controller) handleLLDP(h *swHandle, m *openflow.PacketIn) bool {
	srcDPID, srcPort, ok := parseLLDP(m.Data)
	if !ok {
		return false
	}
	link := LinkInfo{SrcDPID: srcDPID, SrcPort: srcPort, DstDPID: h.dpid.Load(), DstPort: m.InPort}
	c.mu.Lock()
	c.links[link] = struct{}{}
	c.mu.Unlock()
	return true
}

// DiscoverTopology floods one round of LLDP probes out every known
// switch port. Links appear in Topology() as the probes arrive at their
// far ends; callers needing a settled view should allow the probes a
// moment to propagate (or call this from a quiesced test).
func (c *Controller) DiscoverTopology() error {
	for _, dpid := range c.Switches() {
		for _, p := range c.Ports(dpid) {
			if p.PortNo > openflow.PortMax {
				continue
			}
			po := &openflow.PacketOut{
				BufferID: openflow.BufferIDNone,
				InPort:   openflow.PortNone,
				Actions:  []openflow.Action{&openflow.ActionOutput{Port: p.PortNo}},
				Data:     lldpFrame(dpid, p.PortNo, p.HWAddr),
			}
			if err := c.SendPacketOut(dpid, po); err != nil {
				return err
			}
		}
	}
	return nil
}
