package controller

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seqRecorder records the Seq of every event it handles, optionally
// sleeping to widen race windows between apps.
type seqRecorder struct {
	name  string
	delay time.Duration

	mu   sync.Mutex
	seqs []uint64
}

func (a *seqRecorder) Name() string               { return a.name }
func (a *seqRecorder) Subscriptions() []EventKind { return []EventKind{EventPacketIn} }
func (a *seqRecorder) HandleEvent(_ Context, ev Event) error {
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.mu.Lock()
	a.seqs = append(a.seqs, ev.Seq)
	a.mu.Unlock()
	return nil
}
func (a *seqRecorder) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.seqs)
}
func (a *seqRecorder) snapshot() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]uint64(nil), a.seqs...)
}

// TestParallelPerAppOrdering is the pipeline's core guarantee: with
// per-app worker queues, every app still observes its events in
// controller order (ascending Seq, no gaps, no duplicates), even while
// independent apps run concurrently.
func TestParallelPerAppOrdering(t *testing.T) {
	c := New(Config{Parallel: true})
	defer c.Stop()
	apps := make([]*seqRecorder, 4)
	for i := range apps {
		apps[i] = &seqRecorder{name: fmt.Sprintf("app%d", i)}
		c.Register(apps[i])
	}

	const events = 500
	for i := 1; i <= events; i++ {
		if err := c.Inject(Event{Seq: uint64(i), Kind: EventPacketIn, DPID: uint64(i % 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range apps {
		a := a
		eventually(t, "all events delivered to "+a.name, func() bool { return a.count() == events })
		seqs := a.snapshot()
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("%s: position %d has seq %d, want %d (FIFO violated)", a.name, i, s, i+1)
			}
		}
	}
}

// TestParallelAppsOverlap proves apps actually run concurrently: two
// apps whose handlers sleep must finish in roughly one handler's time,
// not two stacked serially.
func TestParallelAppsOverlap(t *testing.T) {
	const delay = 20 * time.Millisecond
	c := New(Config{Parallel: true})
	defer c.Stop()
	a := &seqRecorder{name: "a", delay: delay}
	b := &seqRecorder{name: "b", delay: delay}
	c.Register(a)
	c.Register(b)

	start := time.Now()
	if err := c.Inject(Event{Seq: 1, Kind: EventPacketIn}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "both apps done", func() bool { return a.count() == 1 && b.count() == 1 })
	if took := time.Since(start); took > 3*delay {
		t.Fatalf("apps did not overlap: one event across two %v apps took %v", delay, took)
	}
}

// TestParallelQuarantineStopsQueueDrain: a crash quarantines the app
// race-free, and its queued backlog is skipped rather than delivered.
func TestParallelQuarantineStopsQueueDrain(t *testing.T) {
	var failures atomic.Int32
	c := New(Config{Parallel: true, OnAppFailure: func(*AppFailure) { failures.Add(1) }})
	defer c.Stop()

	release := make(chan struct{})
	var handled atomic.Int32
	crasher := &testApp{name: "crasher", subs: []EventKind{EventPacketIn},
		handle: func(_ Context, ev Event) error {
			<-release
			handled.Add(1)
			if ev.Seq == 1 {
				panic("deterministic bug")
			}
			return nil
		}}
	survivor := &seqRecorder{name: "survivor"}
	c.Register(crasher)
	c.Register(survivor)

	const events = 50
	for i := 1; i <= events; i++ {
		if err := c.Inject(Event{Seq: uint64(i), Kind: EventPacketIn}); err != nil {
			t.Fatal(err)
		}
	}
	// The survivor processes everything while the crasher is still
	// blocked on its first event.
	eventually(t, "survivor drains", func() bool { return survivor.count() == events })
	close(release)
	eventually(t, "crasher quarantined", func() bool { return c.AppDisabled("crasher") })
	eventually(t, "failure hook fired", func() bool { return failures.Load() == 1 })
	// Give the worker a chance to (wrongly) drain the backlog, then
	// verify it did not: only the crashing delivery ran.
	time.Sleep(20 * time.Millisecond)
	if got := handled.Load(); got != 1 {
		t.Fatalf("crasher handled %d events after quarantine, want 1", got)
	}
	if c.Crashed() {
		t.Fatal("controller must survive an isolated app crash")
	}
}

// TestDisabledFlagRace is the -race regression for the dispatchOne data
// race: e.disabled used to be read outside c.mu while SetAppDisabled
// wrote it under the lock. Serial and parallel dispatch both hammer the
// flag concurrently with event delivery.
func TestDisabledFlagRace(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			c := New(Config{Parallel: parallel})
			defer c.Stop()
			app := &seqRecorder{name: "flappy"}
			c.Register(app)

			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 500; i++ {
					c.SetAppDisabled("flappy", i%2 == 0)
				}
			}()
			for i := 1; i <= 500; i++ {
				if err := c.InjectSync(Event{Seq: uint64(i), Kind: EventPacketIn}); err != nil {
					t.Fatal(err)
				}
			}
			<-done
		})
	}
}

// batchRecorder implements BatchApp and records delivered batch sizes.
type batchRecorder struct {
	seqRecorder
	mu      sync.Mutex
	batches []int
}

func (a *batchRecorder) HandleEventBatch(ctx Context, evs []Event) error {
	a.mu.Lock()
	a.batches = append(a.batches, len(evs))
	a.mu.Unlock()
	for _, ev := range evs {
		if err := a.HandleEvent(ctx, ev); err != nil {
			return err
		}
	}
	return nil
}

// TestParallelBatchDelivery: a backlog behind a slow first event is
// coalesced into batched deliveries, still in FIFO order.
func TestParallelBatchDelivery(t *testing.T) {
	c := New(Config{Parallel: true, BatchMax: 16})
	defer c.Stop()
	gate := make(chan struct{})
	app := &batchRecorder{}
	app.name = "batcher"
	c.Register(&gatedBatchApp{inner: app, gate: gate})

	const events = 33
	for i := 1; i <= events; i++ {
		if err := c.Inject(Event{Seq: uint64(i), Kind: EventPacketIn}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate) // backlog built; let the worker rip
	eventually(t, "all events handled", func() bool { return app.count() == events })
	seqs := app.snapshot()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("batched delivery broke FIFO at %d: got seq %d", i, s)
		}
	}
	app.mu.Lock()
	defer app.mu.Unlock()
	multi := false
	for _, n := range app.batches {
		if n > 16 {
			t.Fatalf("batch of %d exceeds BatchMax 16", n)
		}
		if n > 1 {
			multi = true
		}
	}
	if !multi {
		t.Log("no multi-event batch observed (timing-dependent); FIFO still verified")
	}
}

// gatedBatchApp blocks the first delivery until gate closes, forcing a
// queue backlog so batching has something to coalesce.
type gatedBatchApp struct {
	inner *batchRecorder
	gate  chan struct{}
	once  sync.Once
}

func (g *gatedBatchApp) Name() string               { return g.inner.Name() }
func (g *gatedBatchApp) Subscriptions() []EventKind { return g.inner.Subscriptions() }
func (g *gatedBatchApp) HandleEvent(ctx Context, ev Event) error {
	g.once.Do(func() { <-g.gate })
	return g.inner.HandleEvent(ctx, ev)
}
func (g *gatedBatchApp) HandleEventBatch(ctx Context, evs []Event) error {
	g.once.Do(func() { <-g.gate })
	return g.inner.HandleEventBatch(ctx, evs)
}

// inlineProbe is an InlineObserver recording the highest Seq it has
// seen; reacting apps assert it ran first.
type inlineProbe struct {
	last atomic.Uint64
}

func (p *inlineProbe) Name() string               { return "probe" }
func (p *inlineProbe) Subscriptions() []EventKind { return []EventKind{EventPacketIn} }
func (p *inlineProbe) InlineObserve()             {}
func (p *inlineProbe) HandleEvent(_ Context, ev Event) error {
	p.last.Store(ev.Seq)
	return nil
}

// TestInlineObserverRunsBeforeQueuedApps: an InlineObserver registered
// ahead of a parallel app observes each event before that app's worker
// handles it — the ordering NetLog's shadow maintenance needs.
func TestInlineObserverRunsBeforeQueuedApps(t *testing.T) {
	c := New(Config{Parallel: true})
	defer c.Stop()
	probe := &inlineProbe{}
	c.Register(probe)
	var violations atomic.Int32
	var seen atomic.Int32
	app := &testApp{name: "reactor", subs: []EventKind{EventPacketIn},
		handle: func(_ Context, ev Event) error {
			if probe.last.Load() < ev.Seq {
				violations.Add(1)
			}
			seen.Add(1)
			return nil
		}}
	c.Register(app)

	const events = 200
	for i := 1; i <= events; i++ {
		if err := c.Inject(Event{Seq: uint64(i), Kind: EventPacketIn}); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "reactor saw all events", func() bool { return int(seen.Load()) == events })
	if v := violations.Load(); v != 0 {
		t.Fatalf("reactor ran before the inline observer %d times", v)
	}
}
