package crashpad

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
	"legosdn/internal/metrics"
)

// brokenSnapApp processes events fine but cannot serialize its state —
// the dead-disk/dead-serializer case that used to degrade durability
// with zero signal.
type brokenSnapApp struct {
	name    string
	handled int
}

func (a *brokenSnapApp) Name() string                          { return a.name }
func (a *brokenSnapApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *brokenSnapApp) HandleEvent(controller.Context, controller.Event) error {
	a.handled++
	return nil
}
func (a *brokenSnapApp) Snapshot() ([]byte, error) { return nil, errors.New("serializer wedged") }
func (a *brokenSnapApp) Restore([]byte) error      { return nil }

func TestSnapshotErrorsCountedAndWarned(t *testing.T) {
	var logBuf bytes.Buffer
	reg := metrics.NewRegistry()
	app := &brokenSnapApp{name: "broken"}
	cp := New(Options{
		Metrics: reg,
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	ctx := &recCtx{}
	for seq := uint64(1); seq <= 3; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("event %d failed: %v", seq, f)
		}
	}
	// CheckpointEvery defaults to 1: every event tried (and failed) to
	// snapshot.
	if got := cp.SnapshotErrors.Load(); got != 3 {
		t.Fatalf("snapshot errors = %d, want 3", got)
	}
	if cp.Store().Latest("broken") != nil {
		t.Fatal("no checkpoint should exist for an unsnapshottable app")
	}
	// The warn fired (at least once; rate limiting may drop repeats)...
	if !strings.Contains(logBuf.String(), "app snapshot failing") {
		t.Fatalf("no warning logged: %q", logBuf.String())
	}
	// ...but is rate-limited to roughly one line per second.
	if n := strings.Count(logBuf.String(), "app snapshot failing"); n > 1 {
		t.Fatalf("warning not rate-limited: %d lines", n)
	}
	// And the counter is visible through Prometheus exposition.
	var expo bytes.Buffer
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), "legosdn_checkpoint_snapshot_errors_total 3") {
		t.Fatalf("snapshot error counter missing from exposition:\n%s", expo.String())
	}
}

// The store's sink-error counter rides the same registry via
// Store.Instrument, wired by New.
func TestSinkErrorCounterExposed(t *testing.T) {
	reg := metrics.NewRegistry()
	cp := New(Options{Metrics: reg})
	cp.Store().SetSink(failingSink{})
	app := &ctApp{name: "a"}
	ctx := &recCtx{}
	if f := cp.RunEvent(app, ctx, pktIn(1, 1)); f != nil {
		t.Fatalf("event failed: %v", f)
	}
	if got := cp.Store().SinkErrors.Load(); got == 0 {
		t.Fatal("sink error not counted")
	}
	var expo bytes.Buffer
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), "legosdn_checkpoint_sink_errors_total") {
		t.Fatalf("sink error counter missing from exposition:\n%s", expo.String())
	}
}

type failingSink struct{}

func (failingSink) AppendCheckpoint(checkpoint.Checkpoint) error { return errors.New("disk gone") }
func (failingSink) AppendDrop(string) error                      { return errors.New("disk gone") }

func TestDropAppForgetsEverything(t *testing.T) {
	app := &ctApp{name: "gone", crashOnPort: 13}
	cp := New(Options{})
	ctx := &recCtx{}
	for seq := uint64(1); seq <= 3; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("event failed: %v", f)
		}
	}
	if f := cp.RunEvent(app, ctx, pktIn(4, 13)); f != nil {
		t.Fatalf("recovery failed: %v", f)
	}
	if cp.Store().Latest("gone") == nil {
		t.Fatal("precondition: app has checkpoints")
	}

	cp.DropApp("gone")

	if cp.Store().Latest("gone") != nil {
		t.Fatal("checkpoints survived DropApp")
	}
	cp.mu.Lock()
	_, hasReplays := cp.replays["gone"]
	_, hasHist := cp.histories["gone"]
	_, hasStreak := cp.streaks["gone"]
	cp.mu.Unlock()
	if hasReplays || hasHist || hasStreak {
		t.Fatalf("pad state leaked: replays=%v histories=%v streaks=%v", hasReplays, hasHist, hasStreak)
	}
	// A re-installed app under the same name starts a fresh cadence:
	// its first event checkpoints immediately.
	app2 := &ctApp{name: "gone"}
	if f := cp.RunEvent(app2, ctx, pktIn(10, 1)); f != nil {
		t.Fatalf("fresh app event failed: %v", f)
	}
	if cp.Store().Latest("gone") == nil {
		t.Fatal("re-installed app did not re-checkpoint from scratch")
	}
}
