package crashpad

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// recCtx is a Context recording messages, with a scriptable port view.
type recCtx struct {
	mu    sync.Mutex
	sent  []openflow.Message
	ports map[uint64][]openflow.PhyPort
}

func (f *recCtx) SendMessage(dpid uint64, msg openflow.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, msg)
	return nil
}
func (f *recCtx) SendFlowMod(d uint64, fm *openflow.FlowMod) error     { return f.SendMessage(d, fm) }
func (f *recCtx) SendPacketOut(d uint64, po *openflow.PacketOut) error { return f.SendMessage(d, po) }
func (f *recCtx) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return &openflow.StatsReply{StatsType: openflow.StatsTypeFlow}, nil
}
func (f *recCtx) Barrier(uint64) error { return nil }
func (f *recCtx) Switches() []uint64   { return nil }
func (f *recCtx) Ports(dpid uint64) []openflow.PhyPort {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ports[dpid]
}
func (f *recCtx) Topology() []controller.LinkInfo { return nil }

// ctApp is a checkpointable app with scriptable crash triggers.
type ctApp struct {
	name            string
	crashOnPort     uint16 // PacketIn with this in-port panics
	crashSwitchDown bool
	crashPortStatus bool

	count     uint64 // events successfully processed (the checkpointed state)
	portDowns int    // PortStatus events seen
}

func (a *ctApp) Name() string                          { return a.name }
func (a *ctApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *ctApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	switch ev.Kind {
	case controller.EventPacketIn:
		pin := ev.Message.(*openflow.PacketIn)
		if a.crashOnPort != 0 && pin.InPort == a.crashOnPort {
			panic("ctApp: crash on poisoned port")
		}
	case controller.EventSwitchDown:
		if a.crashSwitchDown {
			panic("ctApp: crash on switch down")
		}
	case controller.EventPortStatus:
		if a.crashPortStatus {
			panic("ctApp: crash on port status")
		}
		a.portDowns++
	}
	a.count++
	return nil
}
func (a *ctApp) Snapshot() ([]byte, error) {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, a.count)
	binary.BigEndian.PutUint64(b[8:], uint64(a.portDowns))
	return b, nil
}
func (a *ctApp) Restore(state []byte) error {
	if len(state) != 16 {
		return errors.New("bad state")
	}
	a.count = binary.BigEndian.Uint64(state)
	a.portDowns = int(binary.BigEndian.Uint64(state[8:]))
	return nil
}

func pktIn(seq uint64, port uint16) controller.Event {
	return controller.Event{Seq: seq, Kind: controller.EventPacketIn, DPID: 1,
		Message: &openflow.PacketIn{BufferID: openflow.BufferIDNone, InPort: port}}
}

func TestRecoveryAbsoluteCompromise(t *testing.T) {
	app := &ctApp{name: "a", crashOnPort: 13}
	cp := New(Options{})
	ctx := &recCtx{}

	for seq := uint64(1); seq <= 3; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("healthy event failed: %v", f)
		}
	}
	if f := cp.RunEvent(app, ctx, pktIn(4, 13)); f != nil {
		t.Fatalf("absolute compromise should recover, got %v", f)
	}
	// State restored to pre-crash: 3 events processed, poisoned one ignored.
	if app.count != 3 {
		t.Fatalf("count = %d, want 3", app.count)
	}
	if cp.CrashesSeen.Load() != 1 || cp.Recoveries.Load() != 1 || cp.IgnoredEvents.Load() != 1 {
		t.Fatalf("metrics: crashes=%d recoveries=%d ignored=%d", cp.CrashesSeen.Load(), cp.Recoveries.Load(), cp.IgnoredEvents.Load())
	}
	// Life goes on.
	if f := cp.RunEvent(app, ctx, pktIn(5, 1)); f != nil {
		t.Fatalf("post-recovery event failed: %v", f)
	}
	if app.count != 4 {
		t.Fatalf("post-recovery count = %d, want 4", app.count)
	}

	tickets := cp.Tickets()
	if len(tickets) != 1 {
		t.Fatalf("tickets = %d", len(tickets))
	}
	tk := tickets[0]
	if tk.Class != FailStop || tk.Outcome != OutcomeRecovered || !tk.HasEvent || tk.Event.Seq != 4 {
		t.Fatalf("ticket %+v", tk)
	}
	if !strings.Contains(tk.PanicValue, "poisoned port") || !strings.Contains(tk.Stack, "goroutine") {
		t.Fatalf("ticket evidence missing: %q / %d stack bytes", tk.PanicValue, len(tk.Stack))
	}
	if !strings.Contains(tk.Render(), "Problem Ticket #1") {
		t.Fatal("render missing header")
	}
}

func TestRecoveryNoCompromise(t *testing.T) {
	app := &ctApp{name: "sec", crashOnPort: 13}
	ps := NewPolicySet(AbsoluteCompromise)
	ps.SetAppDefault("sec", NoCompromise)
	cp := New(Options{Policies: ps})
	ctx := &recCtx{}

	cp.RunEvent(app, ctx, pktIn(1, 1))
	f := cp.RunEvent(app, ctx, pktIn(2, 13))
	if f == nil {
		t.Fatal("no-compromise must surface the failure")
	}
	if f.App != "sec" {
		t.Fatalf("failure app = %q", f.App)
	}
	if cp.Recoveries.Load() != 0 {
		t.Fatal("no recovery should be counted")
	}
	tk := cp.Tickets()[0]
	if tk.Outcome != OutcomeAppDown || tk.Policy != NoCompromise {
		t.Fatalf("ticket %+v", tk)
	}
}

func TestRecoveryEquivalenceSwitchDown(t *testing.T) {
	// The app crashes on SWITCH_DOWN but handles the equivalent
	// link-down PortStatus events fine.
	app := &ctApp{name: "routing", crashSwitchDown: true}
	ps := NewPolicySet(EquivalenceCompromise)
	cp := New(Options{Policies: ps})
	ctx := &recCtx{ports: map[uint64][]openflow.PhyPort{
		7: {{PortNo: 1}, {PortNo: 2}, {PortNo: 3}},
	}}

	cp.RunEvent(app, ctx, pktIn(1, 1))
	f := cp.RunEvent(app, ctx, controller.Event{Seq: 2, Kind: controller.EventSwitchDown, DPID: 7})
	if f != nil {
		t.Fatalf("equivalence should recover: %v", f)
	}
	if app.portDowns != 3 {
		t.Fatalf("transformed events delivered = %d, want 3", app.portDowns)
	}
	if cp.TransformedEvents.Load() != 1 {
		t.Fatalf("TransformedEvents = %d", cp.TransformedEvents.Load())
	}
	tk := cp.Tickets()[0]
	if tk.Outcome != OutcomeRecovered || tk.Policy != EquivalenceCompromise {
		t.Fatalf("ticket %+v", tk)
	}
}

func TestRecoveryEquivalencePortStatusToSwitchDown(t *testing.T) {
	// Inverse direction: crash on PortStatus, equivalent is SwitchDown.
	app := &ctApp{name: "routing", crashPortStatus: true}
	cp := New(Options{Policies: NewPolicySet(EquivalenceCompromise)})
	ctx := &recCtx{}

	ev := controller.Event{Seq: 1, Kind: controller.EventPortStatus, DPID: 4,
		Message: &openflow.PortStatus{Reason: openflow.PortReasonModify,
			Desc: openflow.PhyPort{PortNo: 2, State: openflow.PortStateLinkDown}}}
	if f := cp.RunEvent(app, ctx, ev); f != nil {
		t.Fatalf("should recover: %v", f)
	}
	// The app handled the synthetic SwitchDown (count incremented once
	// in the transformed delivery).
	if app.count != 1 {
		t.Fatalf("count = %d, want 1", app.count)
	}
	if cp.TransformedEvents.Load() != 1 {
		t.Fatal("transform not counted")
	}
}

func TestRecoveryEquivalenceFallback(t *testing.T) {
	// PacketIn has no equivalent: equivalence falls back to ignoring.
	app := &ctApp{name: "a", crashOnPort: 13}
	cp := New(Options{Policies: NewPolicySet(EquivalenceCompromise)})
	ctx := &recCtx{}
	if f := cp.RunEvent(app, ctx, pktIn(1, 13)); f != nil {
		t.Fatalf("fallback should recover: %v", f)
	}
	if cp.Fallbacks.Load() != 1 || cp.IgnoredEvents.Load() != 1 {
		t.Fatalf("fallbacks=%d ignored=%d", cp.Fallbacks.Load(), cp.IgnoredEvents.Load())
	}
	if cp.Tickets()[0].Outcome != OutcomeFallback {
		t.Fatalf("outcome %v", cp.Tickets()[0].Outcome)
	}
}

func TestRecoveryEquivalenceBothCrashFallsBack(t *testing.T) {
	// Crashes on SwitchDown AND on the transformed PortStatus events:
	// must fall back to ignoring, restoring twice.
	app := &ctApp{name: "a", crashSwitchDown: true, crashPortStatus: true}
	cp := New(Options{Policies: NewPolicySet(EquivalenceCompromise)})
	ctx := &recCtx{ports: map[uint64][]openflow.PhyPort{7: {{PortNo: 1}}}}

	cp.RunEvent(app, ctx, pktIn(1, 1))
	f := cp.RunEvent(app, ctx, controller.Event{Seq: 2, Kind: controller.EventSwitchDown, DPID: 7})
	if f != nil {
		t.Fatalf("should fall back and recover: %v", f)
	}
	if app.count != 1 {
		t.Fatalf("count = %d, want 1 (restored)", app.count)
	}
	if cp.Fallbacks.Load() != 1 {
		t.Fatal("fallback not counted")
	}
	tk := cp.Tickets()[0]
	if tk.Outcome != OutcomeFallback {
		t.Fatalf("outcome %v", tk.Outcome)
	}
}

func TestEveryNCheckpointWithReplay(t *testing.T) {
	app := &ctApp{name: "a", crashOnPort: 13}
	cp := New(Options{CheckpointEvery: 4})
	ctx := &recCtx{}

	// Events 1..6 succeed; checkpoints at seq 1 and 5.
	for seq := uint64(1); seq <= 6; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatal(f)
		}
	}
	if cp.Store().Saves != 2 {
		t.Fatalf("checkpoints = %d, want 2", cp.Store().Saves)
	}
	// Crash at 7: restore checkpoint (count=4, before event 5) and
	// replay events 5,6.
	if f := cp.RunEvent(app, ctx, pktIn(7, 13)); f != nil {
		t.Fatal(f)
	}
	if app.count != 6 {
		t.Fatalf("count = %d, want 6 (replayed to pre-crash)", app.count)
	}
	if cp.ReplayedEvents.Load() != 2 {
		t.Fatalf("replayed = %d, want 2", cp.ReplayedEvents.Load())
	}
}

func TestByzantineDetectionAndEscalation(t *testing.T) {
	app := &ctApp{name: "byz"}
	checker := &scriptedChecker{}
	var shutdown []Violation
	cp := New(Options{
		Checker:           checker,
		OnNetworkShutdown: func(v []Violation) { shutdown = v },
	})
	ctx := &recCtx{}

	// Healthy event, no violations.
	if f := cp.RunEvent(app, ctx, pktIn(1, 1)); f != nil {
		t.Fatal(f)
	}
	// Violation (compromisable): recovered, event ignored.
	checker.pending = []Violation{{Desc: "loop between s1 and s2"}}
	if f := cp.RunEvent(app, ctx, pktIn(2, 1)); f != nil {
		t.Fatalf("byzantine recovery failed: %v", f)
	}
	if cp.ByzantineSeen.Load() != 1 {
		t.Fatal("byzantine not counted")
	}
	tk := cp.Tickets()[0]
	if tk.Class != Byzantine || len(tk.Violations) != 1 {
		t.Fatalf("ticket %+v", tk)
	}

	// No-Compromise violation: network shutdown + quarantine.
	checker.pending = []Violation{{Desc: "black-hole at s9", NoCompromise: true}}
	f := cp.RunEvent(app, ctx, pktIn(3, 1))
	if f == nil {
		t.Fatal("no-compromise violation must surface")
	}
	if len(shutdown) != 1 || shutdown[0].Desc != "black-hole at s9" {
		t.Fatalf("shutdown hook: %+v", shutdown)
	}
	if cp.Tickets()[1].Outcome != OutcomeNetworkShutdown {
		t.Fatalf("outcome %v", cp.Tickets()[1].Outcome)
	}
}

// scriptedChecker returns pending violations once, then nothing (the
// rollback "fixed" the network).
type scriptedChecker struct {
	pending []Violation
}

func (c *scriptedChecker) Check() []Violation {
	v := c.pending
	c.pending = nil
	return v
}

func TestHandlerErrorIsNotAFailure(t *testing.T) {
	app := &funcOnlyApp{err: errors.New("declined")}
	cp := New(Options{})
	if f := cp.RunEvent(app, &recCtx{}, pktIn(1, 1)); f != nil {
		t.Fatalf("handler error treated as failure: %v", f)
	}
	if cp.CrashesSeen.Load() != 0 || len(cp.Tickets()) != 0 {
		t.Fatal("no crash should be recorded")
	}
}

// funcOnlyApp returns a fixed handler error and cannot snapshot.
type funcOnlyApp struct{ err error }

func (a *funcOnlyApp) Name() string                                           { return "plain" }
func (a *funcOnlyApp) Subscriptions() []controller.EventKind                  { return controller.AllEventKinds() }
func (a *funcOnlyApp) HandleEvent(controller.Context, controller.Event) error { return a.err }

func TestNonSnapshotterRecoversFresh(t *testing.T) {
	// An app without Snapshotter still gets absolute-compromise
	// availability: the event is ignored, processing continues (state
	// is whatever survived the panic).
	app := &panicOnceApp{}
	cp := New(Options{})
	if f := cp.RunEvent(app, &recCtx{}, pktIn(1, 13)); f != nil {
		t.Fatalf("should recover: %v", f)
	}
	if f := cp.RunEvent(app, &recCtx{}, pktIn(2, 1)); f != nil {
		t.Fatalf("post-recovery event: %v", f)
	}
	if app.handled != 1 {
		t.Fatalf("handled = %d", app.handled)
	}
}

type panicOnceApp struct{ handled int }

func (a *panicOnceApp) Name() string                          { return "nosnap" }
func (a *panicOnceApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *panicOnceApp) HandleEvent(_ controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok && pin.InPort == 13 {
		panic("poison")
	}
	a.handled++
	return nil
}

func TestTransformsUnit(t *testing.T) {
	ctx := &recCtx{ports: map[uint64][]openflow.PhyPort{5: {{PortNo: 1}, {PortNo: 2}}}}
	evs := EquivalentEvents(ctx, controller.Event{Kind: controller.EventSwitchDown, DPID: 5})
	if len(evs) != 2 {
		t.Fatalf("switch-down transform = %d events", len(evs))
	}
	for _, e := range evs {
		ps := e.Message.(*openflow.PortStatus)
		if !ps.Desc.LinkDown() {
			t.Fatal("transformed port status not link-down")
		}
	}
	// Unknown switch: no ports, no transform.
	if evs := EquivalentEvents(ctx, controller.Event{Kind: controller.EventSwitchDown, DPID: 99}); evs != nil {
		t.Fatal("transform invented ports")
	}
	// Port-up status has no super-set equivalent.
	up := controller.Event{Kind: controller.EventPortStatus, DPID: 5,
		Message: &openflow.PortStatus{Reason: openflow.PortReasonModify, Desc: openflow.PhyPort{PortNo: 1}}}
	if evs := EquivalentEvents(ctx, up); evs != nil {
		t.Fatal("port-up should not transform")
	}
	// PacketIn has no equivalent.
	if evs := EquivalentEvents(ctx, pktIn(1, 1)); evs != nil {
		t.Fatal("packet-in should not transform")
	}
}

func TestTicketCarriesRecentEvents(t *testing.T) {
	app := &ctApp{name: "a", crashOnPort: 13}
	cp := New(Options{})
	ctx := &recCtx{}
	for seq := uint64(1); seq <= 4; seq++ {
		cp.RunEvent(app, ctx, pktIn(seq, 1))
	}
	cp.RunEvent(app, ctx, pktIn(5, 13))
	tk := cp.Tickets()[0]
	if len(tk.RecentEvents) != 5 {
		t.Fatalf("recent events = %d, want 5", len(tk.RecentEvents))
	}
	if !strings.Contains(tk.RecentEvents[len(tk.RecentEvents)-1], "#5") {
		t.Fatalf("last recent event should be the offending one: %v", tk.RecentEvents)
	}
	if !strings.Contains(tk.Render(), "Recent events") {
		t.Fatal("render missing recent events section")
	}
}
