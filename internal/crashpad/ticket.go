package crashpad

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"legosdn/internal/controller"
)

// FailureClass distinguishes the two §3.3 failure categories.
type FailureClass int

// Failure classes.
const (
	FailStop  FailureClass = iota // the app crashed
	Byzantine                     // the app's output violated a network invariant
)

func (c FailureClass) String() string {
	if c == Byzantine {
		return "byzantine"
	}
	return "fail-stop"
}

// Outcome records how a recovery ended.
type Outcome int

// Recovery outcomes.
const (
	OutcomeRecovered       Outcome = iota // app live again, event overcome
	OutcomeAppDown                        // NoCompromise: app left quarantined
	OutcomeFallback                       // equivalence failed; event ignored instead
	OutcomeUnrecoverable                  // restart/restore machinery itself failed
	OutcomeNetworkShutdown                // a No-Compromise invariant forced shutdown
)

func (o Outcome) String() string {
	switch o {
	case OutcomeRecovered:
		return "recovered"
	case OutcomeAppDown:
		return "app-down"
	case OutcomeFallback:
		return "fallback-ignored"
	case OutcomeUnrecoverable:
		return "unrecoverable"
	case OutcomeNetworkShutdown:
		return "network-shutdown"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Ticket is the problem ticket §3.3 promises operators: everything a
// developer needs to triage the bug that Crash-Pad just survived.
type Ticket struct {
	ID         int
	App        string
	Class      FailureClass
	Opened     time.Time
	Event      controller.Event // the (likely) failure-inducing event
	HasEvent   bool
	PanicValue string
	Stack      string
	Violations []string // byzantine: the violated invariants
	Policy     Compromise
	Outcome    Outcome
	Notes      []string
	// RecentEvents is the tail of the app's event history before the
	// failure — the trace a developer replays to reproduce the bug.
	RecentEvents []string
	// RecoveryTime is how long detection-to-recovery took.
	RecoveryTime time.Duration
}

// Render formats the ticket as operator-readable text.
func (t *Ticket) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Problem Ticket #%d ==\n", t.ID)
	fmt.Fprintf(&b, "App:        %s\n", t.App)
	fmt.Fprintf(&b, "Class:      %v\n", t.Class)
	fmt.Fprintf(&b, "Opened:     %s\n", t.Opened.Format(time.RFC3339))
	if t.HasEvent {
		fmt.Fprintf(&b, "Event:      %v\n", t.Event)
	}
	fmt.Fprintf(&b, "Policy:     %v\n", t.Policy)
	fmt.Fprintf(&b, "Outcome:    %v (recovery took %v)\n", t.Outcome, t.RecoveryTime)
	if t.PanicValue != "" {
		fmt.Fprintf(&b, "Panic:      %s\n", t.PanicValue)
	}
	for _, v := range t.Violations {
		fmt.Fprintf(&b, "Violation:  %s\n", v)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "Note:       %s\n", n)
	}
	if len(t.RecentEvents) > 0 {
		fmt.Fprintf(&b, "Recent events (oldest first):\n")
		for _, e := range t.RecentEvents {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	if t.Stack != "" {
		fmt.Fprintf(&b, "Stack trace:\n%s\n", t.Stack)
	}
	return b.String()
}

// ticketLog accumulates tickets thread-safely.
type ticketLog struct {
	mu      sync.Mutex
	tickets []*Ticket
	nextID  int
	onOpen  func(*Ticket)
}

func (l *ticketLog) open(t *Ticket) *Ticket {
	l.mu.Lock()
	l.nextID++
	t.ID = l.nextID
	t.Opened = time.Now()
	l.tickets = append(l.tickets, t)
	cb := l.onOpen
	l.mu.Unlock()
	if cb != nil {
		cb(t)
	}
	return t
}

func (l *ticketLog) all() []*Ticket {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Ticket(nil), l.tickets...)
}
