package crashpad

import "runtime"

// runtimeStack is indirected for clarity at the call site.
func runtimeStack(buf []byte, all bool) int { return runtime.Stack(buf, all) }
