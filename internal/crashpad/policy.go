// Package crashpad implements LegoSDN's fault-tolerance layer (§3.3 of
// the paper). Crash-Pad is an AppRunner: it checkpoints an SDN-App
// before each event (or every Nth event with replay, the §5 extension),
// wraps the event's network effects in a NetLog transaction, detects
// fail-stop crashes (via AppVisor) and byzantine failures (via invariant
// checkers), and recovers by rolling the network back, restoring the
// app's last checkpoint and overcoming the offending event under an
// operator-specified availability/correctness policy: ignore it
// (Absolute Compromise), transform it into equivalent events
// (Equivalence Compromise), or let the app stay down (No Compromise).
// Every recovery produces a problem ticket with the stack trace,
// offending event and recovery outcome, for bug triage.
package crashpad

import (
	"bufio"
	"fmt"
	"strings"
	"sync"

	"legosdn/internal/controller"
)

// Compromise selects how much correctness to trade for availability
// when a crash-triggering event must be overcome (§3.3).
type Compromise int

// The paper's three basic policies.
const (
	// NoCompromise lets the SDN-App stay down: correctness over
	// availability.
	NoCompromise Compromise = iota
	// AbsoluteCompromise ignores the offending event, making the app
	// failure-oblivious.
	AbsoluteCompromise
	// EquivalenceCompromise transforms the event into equivalent ones
	// (switch-down <-> link-downs), exploiting domain knowledge that
	// some events are super- or sub-sets of others.
	EquivalenceCompromise
)

func (c Compromise) String() string {
	switch c {
	case NoCompromise:
		return "no"
	case AbsoluteCompromise:
		return "absolute"
	case EquivalenceCompromise:
		return "equivalence"
	default:
		return fmt.Sprintf("compromise(%d)", int(c))
	}
}

// ParseCompromise reads a policy keyword.
func ParseCompromise(s string) (Compromise, error) {
	switch strings.ToLower(s) {
	case "no", "none", "no-compromise":
		return NoCompromise, nil
	case "absolute", "ignore":
		return AbsoluteCompromise, nil
	case "equivalence", "equivalent", "transform":
		return EquivalenceCompromise, nil
	default:
		return NoCompromise, fmt.Errorf("crashpad: unknown compromise policy %q", s)
	}
}

// PolicySet maps (app, event kind) to a compromise decision, with
// app-level and global defaults. The zero value applies
// AbsoluteCompromise everywhere (maximum availability).
type PolicySet struct {
	mu          sync.Mutex
	global      Compromise
	globalSet   bool
	appDefaults map[string]Compromise
	rules       map[string]map[controller.EventKind]Compromise
}

// NewPolicySet creates a policy set with the given global default.
func NewPolicySet(global Compromise) *PolicySet {
	return &PolicySet{
		global:      global,
		globalSet:   true,
		appDefaults: make(map[string]Compromise),
		rules:       make(map[string]map[controller.EventKind]Compromise),
	}
}

func (p *PolicySet) init() {
	if p.appDefaults == nil {
		p.appDefaults = make(map[string]Compromise)
	}
	if p.rules == nil {
		p.rules = make(map[string]map[controller.EventKind]Compromise)
	}
}

// SetDefault sets the global default policy.
func (p *PolicySet) SetDefault(c Compromise) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	p.global, p.globalSet = c, true
}

// SetAppDefault sets an app-level default.
func (p *PolicySet) SetAppDefault(app string, c Compromise) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	p.appDefaults[app] = c
}

// SetRule sets the policy for one (app, event kind) pair.
func (p *PolicySet) SetRule(app string, kind controller.EventKind, c Compromise) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	m := p.rules[app]
	if m == nil {
		m = make(map[controller.EventKind]Compromise)
		p.rules[app] = m
	}
	m[kind] = c
}

// For resolves the policy for app and kind: exact rule, then app
// default, then global default, then AbsoluteCompromise.
func (p *PolicySet) For(app string, kind controller.EventKind) Compromise {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.rules[app]; ok {
		if c, ok := m[kind]; ok {
			return c
		}
	}
	if c, ok := p.appDefaults[app]; ok {
		return c
	}
	if p.globalSet {
		return p.global
	}
	return AbsoluteCompromise
}

var kindByName = map[string]controller.EventKind{
	"PACKET_IN":    controller.EventPacketIn,
	"FLOW_REMOVED": controller.EventFlowRemoved,
	"PORT_STATUS":  controller.EventPortStatus,
	"SWITCH_UP":    controller.EventSwitchUp,
	"SWITCH_DOWN":  controller.EventSwitchDown,
	"ERROR":        controller.EventErrorMsg,
}

// ParsePolicies reads the operator policy language (§3.3): one
// directive per line, '#' comments.
//
//	default <policy>
//	app <name> default <policy>
//	app <name> on <EVENT_KIND> <policy>
//
// where <policy> is "no", "absolute" or "equivalence". Example:
//
//	# security apps must never compromise correctness
//	default equivalence
//	app firewall default no
//	app routing on PACKET_IN absolute
func ParsePolicies(text string) (*PolicySet, error) {
	ps := NewPolicySet(AbsoluteCompromise)
	ps.globalSet = false
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("crashpad: policy line %d: %s", lineNo, msg)
		}
		switch fields[0] {
		case "default":
			if len(fields) != 2 {
				return nil, fail("want: default <policy>")
			}
			c, err := ParseCompromise(fields[1])
			if err != nil {
				return nil, fail(err.Error())
			}
			ps.SetDefault(c)
		case "app":
			if len(fields) < 4 {
				return nil, fail("want: app <name> default <policy> | app <name> on <KIND> <policy>")
			}
			name := fields[1]
			switch fields[2] {
			case "default":
				c, err := ParseCompromise(fields[3])
				if err != nil {
					return nil, fail(err.Error())
				}
				ps.SetAppDefault(name, c)
			case "on":
				if len(fields) != 5 {
					return nil, fail("want: app <name> on <KIND> <policy>")
				}
				kind, ok := kindByName[strings.ToUpper(fields[3])]
				if !ok {
					return nil, fail(fmt.Sprintf("unknown event kind %q", fields[3]))
				}
				c, err := ParseCompromise(fields[4])
				if err != nil {
					return nil, fail(err.Error())
				}
				ps.SetRule(name, kind, c)
			default:
				return nil, fail(fmt.Sprintf("unknown app directive %q", fields[2]))
			}
		default:
			return nil, fail(fmt.Sprintf("unknown directive %q", fields[0]))
		}
	}
	return ps, sc.Err()
}
