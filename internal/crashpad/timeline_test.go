package crashpad

import (
	"testing"
	"time"

	"legosdn/internal/flightrec"
)

// tickClock is a fake clock advancing a fixed step per Now() call, so
// every recovery-phase boundary lands at a known instant: the timeline
// calls it once at open (detect starts), once per phase transition and
// once at Finish. With step=1ms, a full six-phase recovery charges
// exactly 1ms to every phase — any extra or missing clock call shifts a
// boundary and fails the assertions below.
type tickClock struct {
	t    time.Time
	step time.Duration
}

func (c *tickClock) Now() time.Time {
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// phasesByName flattens an autopsy timeline for lookup.
func phasesByName(t *testing.T, tl []flightrec.PhaseDuration) map[string]float64 {
	t.Helper()
	if len(tl) != int(flightrec.NumPhases) {
		t.Fatalf("timeline has %d phases, want %d", len(tl), flightrec.NumPhases)
	}
	m := make(map[string]float64, len(tl))
	for _, pd := range tl {
		m[pd.Phase] = pd.Seconds
	}
	return m
}

// TestRecoveryTimelineFullPath pins every phase boundary of a fail-stop
// recovery under AbsoluteCompromise: detect brackets crash detection up
// to the transaction rollback, rollback up to the policy decision,
// isolate up to the checkpoint restore, restore up to the suffix
// replay, replay up to resume, and resume up to finish. With the fake
// clock stepping 1ms per reading, each phase is exactly 1ms.
func TestRecoveryTimelineFullPath(t *testing.T) {
	clock := &tickClock{t: time.Unix(1000, 0), step: time.Millisecond}
	autopsies := flightrec.NewStore("", 0)
	var tickets []*Ticket
	cp := New(Options{
		Policies:  NewPolicySet(AbsoluteCompromise),
		OnTicket:  func(tk *Ticket) { tickets = append(tickets, tk) },
		Clock:     clock.Now,
		Autopsies: autopsies,
	})
	app := &ctApp{name: "m", crashOnPort: 13}
	ctx := &recCtx{}

	for seq := uint64(1); seq <= 3; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("healthy event %d failed: %v", seq, f)
		}
	}
	if f := cp.RunEvent(app, ctx, pktIn(4, 13)); f != nil {
		t.Fatalf("crash should recover, got failure: %v", f)
	}

	if len(tickets) != 1 {
		t.Fatalf("got %d tickets, want 1", len(tickets))
	}
	if want := 6 * time.Millisecond; tickets[0].RecoveryTime != want {
		t.Errorf("RecoveryTime = %v, want %v (6 clock steps)", tickets[0].RecoveryTime, want)
	}

	all := autopsies.All()
	if len(all) != 1 {
		t.Fatalf("got %d autopsies, want 1", len(all))
	}
	a := all[0]
	if a.Trigger != "app-crash" || a.Outcome != OutcomeRecovered.String() {
		t.Errorf("autopsy trigger=%q outcome=%q, want app-crash/%s", a.Trigger, a.Outcome, OutcomeRecovered)
	}
	phases := phasesByName(t, a.Timeline)
	ms := time.Millisecond.Seconds()
	for _, name := range flightrec.PhaseNames() {
		want := ms
		if name == "election" || name == "catch-up" {
			want = 0 // failover-only phases: never entered by app recovery
		}
		if got := phases[name]; got != want {
			t.Errorf("phase %q = %vs, want exactly %vs", name, got, want)
		}
	}
	if got, want := a.RecoverySeconds, 6*ms; got != want {
		t.Errorf("RecoverySeconds = %v, want %v", got, want)
	}
}

// TestRecoveryTimelineNoCompromise pins the short path: NoCompromise
// sacrifices availability, so the timeline closes after isolate with
// the restore/replay/resume phases never entered (exactly zero).
func TestRecoveryTimelineNoCompromise(t *testing.T) {
	clock := &tickClock{t: time.Unix(1000, 0), step: time.Millisecond}
	autopsies := flightrec.NewStore("", 0)
	cp := New(Options{
		Policies:  NewPolicySet(NoCompromise),
		Clock:     clock.Now,
		Autopsies: autopsies,
	})
	app := &ctApp{name: "m", crashOnPort: 13}
	ctx := &recCtx{}

	if f := cp.RunEvent(app, ctx, pktIn(1, 1)); f != nil {
		t.Fatalf("healthy event failed: %v", f)
	}
	if f := cp.RunEvent(app, ctx, pktIn(2, 13)); f == nil {
		t.Fatal("NoCompromise should quarantine (non-nil failure)")
	}

	all := autopsies.All()
	if len(all) != 1 {
		t.Fatalf("got %d autopsies, want 1", len(all))
	}
	phases := phasesByName(t, all[0].Timeline)
	ms := time.Millisecond.Seconds()
	for name, want := range map[string]float64{
		"detect":             ms, // crash detection -> rollback
		"rollback":           ms, // rollback -> policy decision
		"isolate":            ms, // policy decision -> finish
		"checkpoint-restore": 0,  // never entered: app stays down
		"replay":             0,
		"resume":             0,
	} {
		if got := phases[name]; got != want {
			t.Errorf("phase %q = %vs, want %vs", name, got, want)
		}
	}
	if got, want := all[0].RecoverySeconds, 3*ms; got != want {
		t.Errorf("RecoverySeconds = %v, want %v", got, want)
	}
}

// TestRecoveryTimelineByzantine drives the byzantine detection path
// (handler succeeds, invariant checker objects) through a full restore
// under AbsoluteCompromise: the same six clock steps as the fail-stop
// path, since detection cost is charged identically.
func TestRecoveryTimelineByzantine(t *testing.T) {
	clock := &tickClock{t: time.Unix(1000, 0), step: time.Millisecond}
	autopsies := flightrec.NewStore("", 0)
	checker := &oneShotChecker{}
	cp := New(Options{
		Policies:  NewPolicySet(AbsoluteCompromise),
		Checker:   checker,
		Clock:     clock.Now,
		Autopsies: autopsies,
	})
	app := &ctApp{name: "m"}
	ctx := &recCtx{}

	if f := cp.RunEvent(app, ctx, pktIn(1, 1)); f != nil {
		t.Fatalf("healthy event failed: %v", f)
	}
	checker.mu.Lock()
	checker.armed = true
	checker.mu.Unlock()
	if f := cp.RunEvent(app, ctx, pktIn(2, 1)); f != nil {
		t.Fatalf("byzantine recovery should succeed, got: %v", f)
	}

	all := autopsies.All()
	if len(all) != 1 {
		t.Fatalf("got %d autopsies, want 1", len(all))
	}
	a := all[0]
	if a.Trigger != "byzantine" {
		t.Errorf("autopsy trigger = %q, want byzantine", a.Trigger)
	}
	if len(a.Violations) != 1 {
		t.Errorf("autopsy carries %d violations, want 1", len(a.Violations))
	}
	phases := phasesByName(t, a.Timeline)
	ms := time.Millisecond.Seconds()
	for _, name := range flightrec.PhaseNames() {
		want := ms
		if name == "election" || name == "catch-up" {
			want = 0 // failover-only phases: never entered by app recovery
		}
		if got := phases[name]; got != want {
			t.Errorf("phase %q = %vs, want exactly %vs", name, got, want)
		}
	}
}
