package crashpad

import (
	"fmt"

	"legosdn/internal/controller"
	"legosdn/internal/mcs"
)

// Deep recovery implements the §5 extension for failures that span
// multiple transactions: "we plan on extending LegoSDN to read a
// history of snapshots and use techniques like STS to detect the exact
// set of events that induced the crash. STS allows us to determine
// which checkpoint to roll back the application to."
//
// The trigger is a crash storm: when single-event recovery (restore the
// last checkpoint, ignore the offending event) fails to stop an app
// from crashing on consecutive events, the corruption predates the last
// checkpoint. Crash-Pad then minimizes the recorded event history
// against a fresh replica of the app, rolls back to the newest
// checkpoint older than the first inducing event, and replays the
// history with the inducing events excised.

// defaultDeepThreshold is the consecutive-crash count that triggers
// deep recovery.
const defaultDeepThreshold = 3

// defaultHistoryLimit bounds the per-app event history used for
// minimization.
const defaultHistoryLimit = 512

// noteHistory records a delivered event in the app's bounded history.
func (cp *CrashPad) noteHistory(name string, ev controller.Event) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	h := append(cp.histories[name], ev)
	if len(h) > defaultHistoryLimit {
		h = h[len(h)-defaultHistoryLimit:]
	}
	cp.histories[name] = h
}

// history returns a copy of the app's recorded event history.
func (cp *CrashPad) history(name string) []controller.Event {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return append([]controller.Event(nil), cp.histories[name]...)
}

// crashStreak bumps and reports the consecutive-crash counter.
func (cp *CrashPad) crashStreak(name string) int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.streaks[name]++
	return cp.streaks[name]
}

// resetStreak clears the counter after a clean event.
func (cp *CrashPad) resetStreak(name string) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	delete(cp.streaks, name)
}

// deepRecover runs the §5 pipeline. It returns nil on success (the app
// is live with the inducing events excised) or an error describing why
// deep recovery was not possible.
func (cp *CrashPad) deepRecover(app controller.App, ctx controller.Context, name string, ticket *Ticket) error {
	if cp.opts.ReplicaFactory == nil {
		return fmt.Errorf("no replica factory configured")
	}
	if probe := cp.opts.ReplicaFactory(name); probe == nil {
		return fmt.Errorf("no replica available for %q", name)
	}
	trace := cp.history(name)
	if len(trace) == 0 {
		return fmt.Errorf("no event history recorded")
	}

	// 1. Minimize: which events actually induce the crash?
	fails := mcs.ReplayFails(func() controller.App { return cp.opts.ReplicaFactory(name) }, ctx)
	minimal, stats := mcs.Minimize(trace, fails)
	if len(minimal) == 0 {
		return fmt.Errorf("failure did not reproduce on a fresh replica (non-deterministic?)")
	}
	ticket.Notes = append(ticket.Notes, fmt.Sprintf(
		"deep recovery: minimized %d-event history to %d inducing event(s) in %d probes",
		stats.OriginalLen, stats.MinimalLen, stats.Probes))

	// 2. Roll the app back to before the first inducing event.
	inducing := make(map[uint64]bool, len(minimal))
	for _, ev := range minimal {
		inducing[ev.Seq] = true
	}
	target := mcs.PickCheckpoint(cp.opts.Store, name, minimal)

	// A fresh failure domain, then the chosen image (or a cold start
	// when no checkpoint predates the corruption).
	if r, ok := app.(Restartable); ok {
		if err := r.Respawn(); err != nil {
			return fmt.Errorf("respawn: %w", err)
		}
	}
	snap, canSnap := app.(controller.Snapshotter)
	fromSeq := uint64(0)
	if target != nil && canSnap {
		if err := snap.Restore(target.State); err != nil {
			return fmt.Errorf("restore checkpoint seq=%d: %w", target.Seq, err)
		}
		fromSeq = target.Seq
	} else if !canSnap {
		if _, ok := app.(Restartable); !ok {
			return fmt.Errorf("app can neither snapshot nor restart")
		}
	}

	// 3. Replay the history from the rollback point, excising the
	// inducing events (the correctness compromise §3.3 authorizes).
	replayed, excised := 0, 0
	for _, ev := range trace {
		if ev.Seq < fromSeq {
			continue
		}
		if inducing[ev.Seq] {
			excised++
			continue
		}
		tx := cp.beginAtomic(ev.Trace)
		_, crash := invoke(app, ctx, ev)
		if crash != nil {
			cp.rollbackAtomic(tx)
			return fmt.Errorf("excised replay still crashed on %v", ev)
		}
		cp.commitAtomic(tx)
		replayed++
	}
	ticket.Notes = append(ticket.Notes, fmt.Sprintf(
		"deep recovery: rolled back to checkpoint seq=%d, replayed %d event(s), excised %d",
		fromSeq, replayed, excised))

	// 4. Re-baseline and forget the poisoned history suffix.
	cp.mu.Lock()
	var kept []controller.Event
	for _, ev := range cp.histories[name] {
		if !inducing[ev.Seq] {
			kept = append(kept, ev)
		}
	}
	cp.histories[name] = kept
	delete(cp.streaks, name)
	cp.replays[name] = nil
	cp.mu.Unlock()
	cp.rebaseline(app, name, trace[len(trace)-1].Seq+1)
	cp.DeepRecoveries.Add(1)
	return nil
}
