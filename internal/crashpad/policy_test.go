package crashpad

import (
	"strings"
	"testing"

	"legosdn/internal/controller"
)

func TestParseCompromise(t *testing.T) {
	cases := map[string]Compromise{
		"no": NoCompromise, "none": NoCompromise, "no-compromise": NoCompromise,
		"absolute": AbsoluteCompromise, "ignore": AbsoluteCompromise,
		"equivalence": EquivalenceCompromise, "transform": EquivalenceCompromise,
		"EQUIVALENCE": EquivalenceCompromise,
	}
	for in, want := range cases {
		got, err := ParseCompromise(in)
		if err != nil || got != want {
			t.Errorf("ParseCompromise(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseCompromise("yolo"); err == nil {
		t.Error("unknown keyword should fail")
	}
}

func TestPolicySetPrecedence(t *testing.T) {
	ps := NewPolicySet(AbsoluteCompromise)
	ps.SetAppDefault("firewall", NoCompromise)
	ps.SetRule("firewall", controller.EventPacketIn, EquivalenceCompromise)

	if got := ps.For("firewall", controller.EventPacketIn); got != EquivalenceCompromise {
		t.Errorf("exact rule: %v", got)
	}
	if got := ps.For("firewall", controller.EventSwitchDown); got != NoCompromise {
		t.Errorf("app default: %v", got)
	}
	if got := ps.For("routing", controller.EventPacketIn); got != AbsoluteCompromise {
		t.Errorf("global default: %v", got)
	}
	// Zero value resolves to AbsoluteCompromise.
	var zero PolicySet
	if got := zero.For("anything", controller.EventPacketIn); got != AbsoluteCompromise {
		t.Errorf("zero value: %v", got)
	}
}

func TestParsePolicies(t *testing.T) {
	text := `
# operator policy
default equivalence
app firewall default no
app routing on PACKET_IN absolute
app routing on SWITCH_DOWN equivalence
`
	ps, err := ParsePolicies(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.For("firewall", controller.EventPortStatus); got != NoCompromise {
		t.Errorf("firewall default = %v", got)
	}
	if got := ps.For("routing", controller.EventPacketIn); got != AbsoluteCompromise {
		t.Errorf("routing packet_in = %v", got)
	}
	if got := ps.For("routing", controller.EventSwitchDown); got != EquivalenceCompromise {
		t.Errorf("routing switch_down = %v", got)
	}
	if got := ps.For("other", controller.EventPacketIn); got != EquivalenceCompromise {
		t.Errorf("global = %v", got)
	}
}

func TestParsePoliciesErrors(t *testing.T) {
	bad := []string{
		"default",                           // missing policy
		"default maybe",                     // bad keyword
		"app x default",                     // short
		"app x on WEIRD_KIND absolute",      // bad kind
		"app x flarb no",                    // bad directive
		"banana split",                      // unknown directive
		"app x on PACKET_IN absolute extra", // trailing token
	}
	for _, text := range bad {
		if _, err := ParsePolicies(text); err == nil {
			t.Errorf("ParsePolicies(%q) should fail", text)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error should cite line: %v", err)
		}
	}
}

func TestCompromiseString(t *testing.T) {
	if NoCompromise.String() != "no" || AbsoluteCompromise.String() != "absolute" ||
		EquivalenceCompromise.String() != "equivalence" {
		t.Error("string forms changed")
	}
}
