package crashpad

import (
	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// EquivalentEvents computes the paper's equivalence transform for an
// offending event (§3.3): a switch-down decomposes into a series of
// link-down PortStatus events ("certain events are super-sets of other
// events"), and a link-down PortStatus aggregates into a switch-down
// ("and vice versa"). Events with no usable equivalent return nil, and
// the caller falls back to a harder compromise.
func EquivalentEvents(ctx controller.Context, ev controller.Event) []controller.Event {
	switch ev.Kind {
	case controller.EventSwitchDown:
		return switchDownToLinkDowns(ctx, ev)
	case controller.EventPortStatus:
		return portStatusToSwitchDown(ev)
	default:
		return nil
	}
}

// switchDownToLinkDowns synthesizes one link-down PortStatus per known
// port of the failed switch. The port set comes from the controller's
// last-known view (retained past disconnection).
func switchDownToLinkDowns(ctx controller.Context, ev controller.Event) []controller.Event {
	if ctx == nil {
		return nil
	}
	ports := ctx.Ports(ev.DPID)
	if len(ports) == 0 {
		return nil
	}
	out := make([]controller.Event, 0, len(ports))
	for _, p := range ports {
		desc := p
		desc.State |= openflow.PortStateLinkDown
		out = append(out, controller.Event{
			Kind: controller.EventPortStatus,
			DPID: ev.DPID,
			Message: &openflow.PortStatus{
				Reason: openflow.PortReasonModify,
				Desc:   desc,
			},
		})
	}
	return out
}

// portStatusToSwitchDown turns a link-down notification into the
// super-set event: the whole switch is treated as failed. Non-down port
// changes have no super-set equivalent.
func portStatusToSwitchDown(ev controller.Event) []controller.Event {
	ps, ok := ev.Message.(*openflow.PortStatus)
	if !ok {
		return nil
	}
	down := ps.Reason == openflow.PortReasonDelete || ps.Desc.LinkDown() ||
		ps.Desc.Config&openflow.PortConfigDown != 0
	if !down {
		return nil
	}
	return []controller.Event{{
		Kind: controller.EventSwitchDown,
		DPID: ev.DPID,
	}}
}
