package crashpad

import (
	"strings"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// corruptibleApp models the §5 multi-event failure: a poison event
// (in-port 66) silently corrupts state, and every LATER event crashes.
// Because the corruption is part of the snapshotted state, restoring
// the last checkpoint restores the corruption too — single-event
// recovery cannot fix it, only rolling back past the poison can.
type corruptibleApp struct {
	corrupt bool
	handled int
}

func (a *corruptibleApp) Name() string                          { return "corruptible" }
func (a *corruptibleApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *corruptibleApp) HandleEvent(_ controller.Context, ev controller.Event) error {
	if a.corrupt {
		panic("corruptibleApp: state corrupted by an earlier event")
	}
	if pin, ok := ev.Message.(*openflow.PacketIn); ok && pin.InPort == 66 {
		a.corrupt = true // the silent poison: no crash yet
		return nil
	}
	a.handled++
	return nil
}
func (a *corruptibleApp) Snapshot() ([]byte, error) {
	b := []byte{0, byte(a.handled)}
	if a.corrupt {
		b[0] = 1
	}
	return b, nil
}
func (a *corruptibleApp) Restore(state []byte) error {
	a.corrupt = state[0] == 1
	a.handled = int(state[1])
	return nil
}

func TestDeepRecoveryExcisesInducingEvent(t *testing.T) {
	app := &corruptibleApp{}
	cp := New(Options{
		CheckpointEvery: 1,
		ReplicaFactory: func(string) controller.App {
			return &corruptibleApp{}
		},
		DeepRecoveryThreshold: 3,
	})
	ctx := &recCtx{}

	// Healthy events 1-2.
	for seq := uint64(1); seq <= 2; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatal(f)
		}
	}
	// Event 3 is the silent poison: processes "fine".
	if f := cp.RunEvent(app, ctx, pktIn(3, 66)); f != nil {
		t.Fatal(f)
	}
	// Events 4-5 crash; single-event recovery restores the corrupt
	// checkpoint each time, so the streak builds.
	for seq := uint64(4); seq <= 5; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("event %d: %v", seq, f)
		}
	}
	if cp.DeepRecoveries.Load() != 0 {
		t.Fatal("deep recovery fired too early")
	}
	// Event 6 hits the threshold: deep recovery minimizes the history,
	// identifies the poison+victim pair, rolls back past the poison and
	// replays without it.
	if f := cp.RunEvent(app, ctx, pktIn(6, 1)); f != nil {
		t.Fatalf("deep recovery failed: %v", f)
	}
	if cp.DeepRecoveries.Load() != 1 {
		t.Fatalf("deep recoveries = %d", cp.DeepRecoveries.Load())
	}
	if app.corrupt {
		t.Fatal("app still corrupt after deep recovery")
	}

	// Life goes on: the next event processes cleanly, no crash.
	crashesBefore := cp.CrashesSeen.Load()
	if f := cp.RunEvent(app, ctx, pktIn(7, 1)); f != nil {
		t.Fatal(f)
	}
	if cp.CrashesSeen.Load() != crashesBefore {
		t.Fatal("app crashed again after deep recovery")
	}

	// The ticket narrates the pipeline.
	tickets := cp.Tickets()
	last := tickets[len(tickets)-1]
	found := false
	for _, n := range last.Notes {
		if strings.Contains(n, "deep recovery: minimized") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ticket missing deep-recovery notes: %+v", last.Notes)
	}
}

func TestDeepRecoveryUnavailableWithoutFactory(t *testing.T) {
	app := &corruptibleApp{}
	cp := New(Options{CheckpointEvery: 1, DeepRecoveryThreshold: 2})
	ctx := &recCtx{}
	cp.RunEvent(app, ctx, pktIn(1, 66)) // poison
	// Crashes keep being "recovered" shallowly (corrupt state restored
	// each time); deep recovery never fires without a factory.
	for seq := uint64(2); seq <= 6; seq++ {
		cp.RunEvent(app, ctx, pktIn(seq, 1))
	}
	if cp.DeepRecoveries.Load() != 0 {
		t.Fatal("deep recovery fired without a replica factory")
	}
	if !app.corrupt {
		t.Fatal("scenario broken: app should remain corrupt")
	}
	// Tickets note the unavailability once the threshold passes.
	var noted bool
	for _, tk := range cp.Tickets() {
		for _, n := range tk.Notes {
			if strings.Contains(n, "deep recovery unavailable") {
				noted = true
			}
		}
	}
	if !noted {
		t.Fatal("tickets never noted deep-recovery unavailability")
	}
}

func TestDeepRecoveryNonReproducibleFallsBack(t *testing.T) {
	// The replica never crashes (pretend the bug is non-deterministic):
	// minimization fails, shallow recovery continues.
	app := &corruptibleApp{}
	cp := New(Options{
		CheckpointEvery:       1,
		DeepRecoveryThreshold: 2,
		ReplicaFactory: func(string) controller.App {
			return &funcOnlyApp{} // healthy replica: failure won't reproduce
		},
	})
	ctx := &recCtx{}
	cp.RunEvent(app, ctx, pktIn(1, 66))
	for seq := uint64(2); seq <= 5; seq++ {
		if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
			t.Fatalf("shallow recovery should still work: %v", f)
		}
	}
	if cp.DeepRecoveries.Load() != 0 {
		t.Fatal("deep recovery should not succeed with a healthy replica")
	}
	var noted bool
	for _, tk := range cp.Tickets() {
		for _, n := range tk.Notes {
			if strings.Contains(n, "did not reproduce") {
				noted = true
			}
		}
	}
	if !noted {
		t.Fatal("non-reproducibility never noted")
	}
}

func TestHistoryBounded(t *testing.T) {
	cp := New(Options{})
	for seq := uint64(1); seq <= defaultHistoryLimit+50; seq++ {
		cp.noteHistory("a", controller.Event{Seq: seq})
	}
	h := cp.history("a")
	if len(h) != defaultHistoryLimit {
		t.Fatalf("history len = %d", len(h))
	}
	if h[0].Seq != 51 {
		t.Fatalf("history should keep the newest events, first seq = %d", h[0].Seq)
	}
}
