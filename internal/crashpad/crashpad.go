package crashpad

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"legosdn/internal/appvisor"
	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
	"legosdn/internal/trace"
)

// Restartable is implemented by apps whose failure domain can be
// relaunched after a crash (appvisor.Proxy via Respawn).
type Restartable interface {
	Respawn() error
}

// livenessReporter is implemented by apps that know whether their
// failure domain is currently up (appvisor.Proxy via StubUp).
type livenessReporter interface {
	StubUp() bool
}

// Violation is one invariant breach found after an event's effects hit
// the network.
type Violation struct {
	// Desc names the breach, e.g. "black-hole at switch 3 for 10.0.0.2".
	Desc string
	// NoCompromise marks invariants the operator listed as
	// non-negotiable: a breach escalates to network shutdown (§5).
	NoCompromise bool
}

// InvariantChecker detects byzantine failures: output that violates
// network invariants (§3.3, detection via policy checkers).
type InvariantChecker interface {
	Check() []Violation
}

// Options configures a CrashPad.
type Options struct {
	// Store holds checkpoints (fresh store if nil).
	Store *checkpoint.Store
	// CheckpointEvery takes a checkpoint before every Nth event
	// (default 1 = the paper's base design; larger N enables the §5
	// replay optimization).
	CheckpointEvery int
	// Policies decides the availability/correctness trade per app and
	// event kind (default: AbsoluteCompromise everywhere).
	Policies *PolicySet
	// NetLog wraps each event in a network transaction and rolls back
	// on failure. Optional but strongly recommended.
	NetLog *netlog.Manager
	// DelayBuffer is the §4.1 prototype alternative to NetLog: hold
	// messages until the event completes. Ignored when NetLog is set.
	DelayBuffer *netlog.DelayBuffer
	// Checker, when set, is consulted after each event; violations are
	// byzantine failures.
	Checker InvariantChecker
	// OnTicket observes each problem ticket as it opens.
	OnTicket func(*Ticket)
	// OnNetworkShutdown fires when a No-Compromise invariant is
	// violated; the operator hook should fail the network closed.
	OnNetworkShutdown func(violations []Violation)
	// ReplicaFactory creates throwaway replicas of a named app for §5's
	// multi-event failure analysis (minimal causal sequences). nil
	// disables deep recovery.
	ReplicaFactory func(appName string) controller.App
	// DeepRecoveryThreshold is the consecutive-crash count that
	// escalates to deep recovery (default 3).
	DeepRecoveryThreshold int
	// Metrics, when set, receives the pad's counters plus
	// checkpoint/restore/recovery duration histograms and per-outcome
	// recovery counts.
	Metrics *metrics.Registry
	// Tracer records checkpoint/recover/restore/replay spans for traced
	// events, with the recovery decision as span attributes. Nil disables.
	Tracer *trace.Tracer
	// Logger, when set, receives structured recovery diagnostics; lines
	// for traced events carry the trace id (wrap with trace.WrapHandler).
	Logger *slog.Logger
	// Flight is the always-on flight recorder: crash detections, policy
	// decisions, checkpoint puts/restores and replays become bounded
	// structured records that autopsies correlate across layers. Nil
	// no-ops.
	Flight *flightrec.Recorder
	// Autopsies, when set, receives an assembled autopsy report for
	// every recovery: culprit event, policy decision, six-phase timeline
	// and the correlated flight records.
	Autopsies *flightrec.Store
	// Clock feeds recovery-phase timelines (default time.Now). Tests
	// inject a fake to pin phase-duration boundaries exactly.
	Clock func() time.Time
}

// CrashPad is the recovery engine. It implements controller.AppRunner;
// install it as the controller's Runner (or via legosdn's core facade).
type CrashPad struct {
	opts    Options
	everyN  *checkpoint.EveryN
	tickets ticketLog

	mu        sync.Mutex
	replays   map[string][]controller.Event // events since last checkpoint, per app
	histories map[string][]controller.Event // bounded full history, for deep recovery
	streaks   map[string]int                // consecutive crashes, per app

	// Metrics (atomic: read live by benchmarks and tests while the
	// dispatch goroutine recovers).
	CrashesSeen       metrics.Counter
	ByzantineSeen     metrics.Counter
	Recoveries        metrics.Counter
	IgnoredEvents     metrics.Counter
	TransformedEvents metrics.Counter
	ReplayedEvents    metrics.Counter
	Fallbacks         metrics.Counter
	Unrecoverable     metrics.Counter
	DeepRecoveries    metrics.Counter
	// SnapshotErrors counts Snapshot() calls that failed: each one is a
	// checkpoint silently not taken, so recovery depth degrades. A dead
	// serializer must be visible, not a bare return.
	SnapshotErrors metrics.Counter

	// Rate limit for the snapshot-failure warning (one line per second,
	// not one per event at 100k ev/s).
	warnMu   sync.Mutex
	lastWarn time.Time

	// Duration histograms and per-outcome counters; nil without a
	// registry (observing a nil instrument is a no-op).
	checkpointDur *metrics.Histogram
	restoreDur    *metrics.Histogram
	recoveryDur   *metrics.Histogram
	outcomeBy     [5]*metrics.Counter // indexed by Outcome
	// phaseDur breaks recovery time into the six paper phases, one
	// labeled histogram per flightrec.Phase.
	phaseDur [flightrec.NumPhases]*metrics.Histogram
}

// New creates a CrashPad.
func New(opts Options) *CrashPad {
	if opts.Store == nil {
		opts.Store = checkpoint.NewStore(0)
	}
	if opts.CheckpointEvery < 1 {
		opts.CheckpointEvery = 1
	}
	if opts.Policies == nil {
		opts.Policies = NewPolicySet(AbsoluteCompromise)
	}
	if opts.DeepRecoveryThreshold < 1 {
		opts.DeepRecoveryThreshold = defaultDeepThreshold
	}
	cp := &CrashPad{
		opts:      opts,
		everyN:    checkpoint.NewEveryN(opts.CheckpointEvery),
		replays:   make(map[string][]controller.Event),
		histories: make(map[string][]controller.Event),
		streaks:   make(map[string]int),
	}
	cp.tickets.onOpen = opts.OnTicket
	if reg := opts.Metrics; reg != nil {
		reg.RegisterCounter("legosdn_crashpad_crashes_seen_total", "fail-stop crashes detected", &cp.CrashesSeen)
		reg.RegisterCounter("legosdn_crashpad_byzantine_seen_total", "invariant violations detected", &cp.ByzantineSeen)
		reg.RegisterCounter("legosdn_crashpad_recoveries_total", "successful recoveries", &cp.Recoveries)
		reg.RegisterCounter("legosdn_crashpad_ignored_events_total", "offending events dropped", &cp.IgnoredEvents)
		reg.RegisterCounter("legosdn_crashpad_transformed_events_total", "events replaced by equivalents", &cp.TransformedEvents)
		reg.RegisterCounter("legosdn_crashpad_replayed_events_total", "events replayed from checkpoint suffix", &cp.ReplayedEvents)
		reg.RegisterCounter("legosdn_crashpad_fallbacks_total", "equivalence compromises that fell back to ignoring", &cp.Fallbacks)
		reg.RegisterCounter("legosdn_crashpad_unrecoverable_total", "recoveries whose restore machinery failed", &cp.Unrecoverable)
		reg.RegisterCounter("legosdn_crashpad_deep_recoveries_total", "multi-event deep recoveries", &cp.DeepRecoveries)
		reg.RegisterCounter("legosdn_checkpoint_snapshot_errors_total", "app Snapshot() failures on the checkpoint path", &cp.SnapshotErrors)
		opts.Store.Instrument(reg)
		cp.checkpointDur = reg.Histogram("legosdn_crashpad_checkpoint_seconds", "time to snapshot and store app state", nil)
		cp.restoreDur = reg.Histogram("legosdn_crashpad_restore_seconds", "time to respawn, load checkpoint and replay suffix", nil)
		cp.recoveryDur = reg.Histogram("legosdn_crashpad_recovery_seconds", "end-to-end recovery time per failure", nil)
		for o := OutcomeRecovered; o <= OutcomeNetworkShutdown; o++ {
			cp.outcomeBy[o] = reg.Counter(
				fmt.Sprintf("legosdn_crashpad_outcomes_total{outcome=%q}", o.String()),
				"recovery endings by policy outcome")
		}
		for p := flightrec.Phase(0); p < flightrec.NumPhases; p++ {
			cp.phaseDur[p] = reg.Histogram(
				fmt.Sprintf("legosdn_recovery_phase_seconds{phase=%q}", p.String()),
				"recovery time spent per phase (detect/isolate/checkpoint-restore/rollback/replay/resume)", nil)
		}
		opts.Autopsies.Instrument(reg)
	}
	return cp
}

// Tickets returns every problem ticket opened so far.
func (cp *CrashPad) Tickets() []*Ticket { return cp.tickets.all() }

// Store exposes the checkpoint store (for inspection and benchmarks).
func (cp *CrashPad) Store() *checkpoint.Store { return cp.opts.Store }

// failInfo is the normalized crash evidence from either detection path.
type failInfo struct {
	panicValue string
	stack      string
}

// invoke runs the handler inside the containment boundary, normalizing
// in-process panics and AppVisor crash reports into failInfo.
func invoke(app controller.App, ctx controller.Context, ev controller.Event) (handlerErr error, crash *failInfo) {
	defer func() {
		if r := recover(); r != nil {
			crash = &failInfo{panicValue: fmt.Sprint(r), stack: string(stackTrace())}
		}
	}()
	handlerErr = app.HandleEvent(ctx, ev)
	var ce *appvisor.CrashError
	if errors.As(handlerErr, &ce) {
		return nil, &failInfo{panicValue: ce.Report.PanicValue, stack: ce.Report.Stack}
	}
	if errors.Is(handlerErr, appvisor.ErrStubDown) {
		return nil, &failInfo{panicValue: "stub down"}
	}
	return handlerErr, nil
}

// RunEvent implements controller.AppRunner: checkpoint, transact,
// deliver, detect, recover.
func (cp *CrashPad) RunEvent(app controller.App, ctx controller.Context, ev controller.Event) *controller.AppFailure {
	name := app.Name()
	cp.maybeCheckpoint(app, name, ev.Seq, ev.Trace)
	cp.noteHistory(name, ev)

	tx := cp.beginAtomic(ev.Trace)
	handlerErr, crash := invoke(app, ctx, ev)
	_ = handlerErr // handler errors are the app's business, not a failure

	if crash == nil {
		// Byzantine detection: did the event's network effects violate
		// an invariant? Barrier the touched switches first so in-flight
		// FlowMods are visible to the checker.
		if cp.opts.Checker != nil {
			if tx != nil {
				_ = tx.SyncTouched()
			}
			if violations := cp.opts.Checker.Check(); len(violations) > 0 {
				cp.ByzantineSeen.Add(1)
				// The recovery-phase timeline opens in detect; the
				// rollback phase brackets the transaction abort, and
				// recover() drives the rest.
				tl := flightrec.NewTimeline(cp.opts.Clock)
				cp.opts.Flight.Record(flightrec.Record{
					Layer: flightrec.LayerCrashPad, Kind: flightrec.KindCrashDetected,
					App: name, Trace: ev.Trace.TraceID, EvSeq: ev.Seq, DPID: ev.DPID,
					Note: fmt.Sprintf("byzantine: %d invariant violation(s)", len(violations)),
				})
				tl.Enter(flightrec.PhaseRollback)
				cp.rollbackAtomic(tx)
				tl.Enter(flightrec.PhaseIsolate)
				return cp.recover(app, ctx, ev, Byzantine, &failInfo{panicValue: "invariant violation"}, violations, tl)
			}
		}
		cp.commitAtomic(tx)
		cp.mu.Lock()
		cp.replays[name] = append(cp.replays[name], ev)
		cp.mu.Unlock()
		cp.resetStreak(name)
		return nil
	}

	// Fail-stop crash.
	cp.CrashesSeen.Add(1)
	tl := flightrec.NewTimeline(cp.opts.Clock)
	cp.opts.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCrashPad, Kind: flightrec.KindCrashDetected,
		App: name, Trace: ev.Trace.TraceID, EvSeq: ev.Seq, DPID: ev.DPID,
		Note: "fail-stop: " + crash.panicValue,
	})
	tl.Enter(flightrec.PhaseRollback)
	cp.rollbackAtomic(tx)
	tl.Enter(flightrec.PhaseIsolate)
	return cp.recover(app, ctx, ev, FailStop, crash, nil, tl)
}

// recover drives the §3.3 recovery loop for one failure. tl is the
// recovery-phase timeline opened at detection; recover advances it
// through isolate/restore/replay/resume and finish() freezes it into
// the phase histograms and the autopsy.
func (cp *CrashPad) recover(app controller.App, ctx controller.Context, ev controller.Event,
	class FailureClass, info *failInfo, violations []Violation, tl *flightrec.Timeline) *controller.AppFailure {

	name := app.Name()
	start := time.Now()
	policy := cp.opts.Policies.For(name, ev.Kind)
	cp.opts.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCrashPad, Kind: flightrec.KindPolicyDecision,
		App: name, Trace: ev.Trace.TraceID, EvSeq: ev.Seq,
		Note: fmt.Sprintf("class=%s policy=%s", class, policy),
	})
	// The recovery span brackets the whole decision loop; finish() closes
	// it with the chosen policy, decision and outcome as attributes. Its
	// context parents the restore/replay spans below.
	recSpan := cp.opts.Tracer.StartSpan(ev.Trace, "crashpad.recover")
	recCtx := ev.Trace
	decision := "ignored"
	if recSpan != nil {
		recSpan.Attr("app", name).
			Attr("class", class.String()).
			Attr("policy", policy.String())
		recCtx.SpanID = recSpan.Context().SpanID
	}
	ticket := &Ticket{
		App:        name,
		Class:      class,
		Event:      ev,
		HasEvent:   true,
		PanicValue: info.panicValue,
		Stack:      info.stack,
		Policy:     policy,
	}
	for _, v := range violations {
		ticket.Violations = append(ticket.Violations, v.Desc)
	}
	// The tail of the event history gives the developer a reproduction
	// trace alongside the stack.
	const ticketTrace = 8
	hist := cp.history(name)
	if len(hist) > ticketTrace {
		hist = hist[len(hist)-ticketTrace:]
	}
	for _, hev := range hist {
		ticket.RecentEvents = append(ticket.RecentEvents, hev.String())
	}
	finish := func(outcome Outcome) {
		ticket.Outcome = outcome
		tl.Finish()
		if tl != nil {
			// The timeline's clock is authoritative (tests inject fakes);
			// fall back to wall time when no timeline was opened.
			ticket.RecoveryTime = tl.Total()
		} else {
			ticket.RecoveryTime = time.Since(start)
		}
		cp.recoveryDur.Observe(ticket.RecoveryTime.Seconds())
		if tl != nil {
			durs := tl.Durations()
			for p := flightrec.Phase(0); p < flightrec.NumPhases; p++ {
				cp.phaseDur[p].Observe(durs[p].Seconds())
			}
		}
		if int(outcome) < len(cp.outcomeBy) {
			cp.outcomeBy[outcome].Inc()
		}
		cp.tickets.open(ticket)
		cp.opts.Flight.Record(flightrec.Record{
			Layer: flightrec.LayerCrashPad, Kind: flightrec.KindRecoveryDone,
			App: name, Trace: ev.Trace.TraceID, EvSeq: ev.Seq,
			Note: fmt.Sprintf("outcome=%s decision=%s", outcome, decision),
		})
		if recSpan != nil {
			recSpan.Attr("decision", decision).Attr("outcome", outcome.String()).End()
		}
		if cp.opts.Autopsies != nil {
			trigger := "app-crash"
			if class == Byzantine {
				trigger = "byzantine"
			}
			a := &flightrec.Autopsy{
				App:             name,
				Trigger:         trigger,
				Class:           class.String(),
				Culprit:         ev.String(),
				TicketID:        ticket.ID,
				Policy:          policy.String(),
				Decision:        decision,
				Outcome:         outcome.String(),
				PanicValue:      info.panicValue,
				Violations:      append([]string(nil), ticket.Violations...),
				Notes:           append([]string(nil), ticket.Notes...),
				Timeline:        tl.Phases(),
				RecoverySeconds: ticket.RecoveryTime.Seconds(),
				Records:         cp.opts.Flight.Correlated(name, ev.Trace.TraceID, 0, 16),
			}
			if ev.Trace.TraceID != 0 {
				a.TraceID = trace.IDString(ev.Trace.TraceID)
			}
			cp.opts.Autopsies.Add(a)
		}
		if lg := cp.opts.Logger; lg != nil {
			lctx := trace.ContextWith(context.Background(), ev.Trace)
			lctx = trace.ContextWithCrash(lctx, name, ticket.ID)
			lg.LogAttrs(lctx, slog.LevelWarn,
				"app failure recovered",
				slog.String("class", class.String()),
				slog.String("policy", policy.String()),
				slog.String("decision", decision),
				slog.String("outcome", outcome.String()),
				slog.String("event", ev.String()),
				slog.Duration("recovery_time", ticket.RecoveryTime))
		}
	}
	quarantine := func() *controller.AppFailure {
		return &controller.AppFailure{App: name, Event: ev, PanicValue: info.panicValue, Stack: []byte(info.stack)}
	}

	// No-Compromise invariant violations shut the network down (§5).
	for _, v := range violations {
		if v.NoCompromise {
			if cp.opts.OnNetworkShutdown != nil {
				cp.opts.OnNetworkShutdown(violations)
			}
			finish(OutcomeNetworkShutdown)
			return quarantine()
		}
	}

	if policy == NoCompromise {
		// Availability sacrificed for correctness: let the app stay down.
		finish(OutcomeAppDown)
		return quarantine()
	}

	// A crash storm means the corruption predates the last checkpoint:
	// escalate to the §5 multi-event pipeline (history minimization +
	// deeper rollback) before the plain single-event path.
	if streak := cp.crashStreak(name); streak >= cp.opts.DeepRecoveryThreshold {
		tl.Enter(flightrec.PhaseRestore)
		if err := cp.deepRecover(app, ctx, name, ticket); err == nil {
			cp.Recoveries.Add(1)
			cp.IgnoredEvents.Add(1) // the inducing events were excised
			decision = "deep"
			finish(OutcomeRecovered)
			return nil
		} else {
			ticket.Notes = append(ticket.Notes, fmt.Sprintf("deep recovery unavailable: %v", err))
		}
	}

	// Restore the app to its pre-event state: respawn, load checkpoint,
	// replay the suffix.
	if err := cp.restoreApp(app, ctx, name, recCtx, tl); err != nil {
		cp.Unrecoverable.Add(1)
		ticket.Notes = append(ticket.Notes, fmt.Sprintf("restore failed: %v", err))
		finish(OutcomeUnrecoverable)
		return quarantine()
	}
	tl.Enter(flightrec.PhaseResume)

	outcome := OutcomeRecovered
	switch policy {
	case AbsoluteCompromise:
		cp.IgnoredEvents.Add(1)
		ticket.Notes = append(ticket.Notes, "offending event ignored (absolute compromise)")
	case EquivalenceCompromise:
		evs := EquivalentEvents(ctx, ev)
		if len(evs) == 0 {
			cp.Fallbacks.Add(1)
			cp.IgnoredEvents.Add(1)
			outcome = OutcomeFallback
			ticket.Notes = append(ticket.Notes, "no equivalent events; fell back to ignoring")
			break
		}
		if err := cp.deliverTransformed(app, ctx, evs, recCtx); err != nil {
			// The transformed events crashed the app too: restore once
			// more and fall back to ignoring.
			cp.Fallbacks.Add(1)
			cp.IgnoredEvents.Add(1)
			outcome = OutcomeFallback
			ticket.Notes = append(ticket.Notes, fmt.Sprintf("equivalent events also failed (%v); fell back to ignoring", err))
			if err := cp.restoreApp(app, ctx, name, recCtx, tl); err != nil {
				cp.Unrecoverable.Add(1)
				ticket.Notes = append(ticket.Notes, fmt.Sprintf("second restore failed: %v", err))
				finish(OutcomeUnrecoverable)
				return quarantine()
			}
		} else {
			cp.TransformedEvents.Add(1)
			decision = "transformed"
			ticket.Notes = append(ticket.Notes,
				fmt.Sprintf("event transformed into %d equivalent event(s)", len(evs)))
		}
	}

	// Re-baseline: fresh checkpoint of the recovered state.
	cp.rebaseline(app, name, ev.Seq+1)
	cp.Recoveries.Add(1)
	finish(outcome)
	return nil // the controller sees a healthy app
}

// deliverTransformed runs the equivalence-compromise replacement events
// through the same transactional machinery. sc parents the transformed
// deliveries under the recovery span of the event they replace.
func (cp *CrashPad) deliverTransformed(app controller.App, ctx controller.Context, evs []controller.Event, sc trace.SpanContext) error {
	for _, tev := range evs {
		tev.Trace = sc
		tx := cp.beginAtomic(sc)
		_, crash := invoke(app, ctx, tev)
		if crash != nil {
			cp.rollbackAtomic(tx)
			return fmt.Errorf("crash on transformed event %v: %s", tev, crash.panicValue)
		}
		if cp.opts.Checker != nil {
			if tx != nil {
				_ = tx.SyncTouched()
			}
			if violations := cp.opts.Checker.Check(); len(violations) > 0 {
				cp.rollbackAtomic(tx)
				return fmt.Errorf("transformed event %v violated %d invariant(s)", tev, len(violations))
			}
		}
		cp.commitAtomic(tx)
	}
	return nil
}

// restoreApp brings the app back to its last checkpointed state and
// replays the events processed since. sc parents the restore and replay
// spans (normally the recovery span's context); tl charges the
// checkpoint-restore and replay phases.
func (cp *CrashPad) restoreApp(app controller.App, ctx controller.Context, name string, sc trace.SpanContext, tl *flightrec.Timeline) error {
	tl.Enter(flightrec.PhaseRestore)
	if cp.restoreDur != nil {
		defer cp.restoreDur.ObserveSince(time.Now())
	}
	if sp := cp.opts.Tracer.StartSpan(sc, "crashpad.restore"); sp != nil {
		sp.Attr("app", name)
		sc = sp.Context()
		defer sp.End()
	}
	// Relaunch the failure domain if it is down.
	if lr, ok := app.(livenessReporter); ok && !lr.StubUp() {
		r, ok := app.(Restartable)
		if !ok {
			return fmt.Errorf("app %q domain is down and not restartable", name)
		}
		if err := r.Respawn(); err != nil {
			return fmt.Errorf("respawn: %w", err)
		}
	}
	// Load the last checkpoint. An app without one (never snapshotted)
	// restarts fresh — the best available approximation.
	snap, canSnap := app.(controller.Snapshotter)
	last := cp.opts.Store.Latest(name)
	if canSnap && last != nil {
		if err := snap.Restore(last.State); err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		cp.opts.Flight.Record(flightrec.Record{
			Layer: flightrec.LayerCheckpoint, Kind: flightrec.KindCheckpointRestore,
			App: name, Trace: sc.TraceID, EvSeq: last.Seq,
			Note: fmt.Sprintf("restored checkpoint seq=%d", last.Seq),
		})
	}
	// Replay the suffix (§5: checkpoint every few events, replay the
	// rest at recovery).
	cp.mu.Lock()
	suffix := append([]controller.Event(nil), cp.replays[name]...)
	cp.mu.Unlock()
	tl.Enter(flightrec.PhaseReplay)
	for _, rev := range suffix {
		// Replayed events run under the restore span, not their original
		// trace: the replay belongs to this recovery's timeline.
		rsp := cp.opts.Tracer.StartSpan(sc, "crashpad.replay")
		if rsp != nil {
			rsp.AttrInt("seq", int64(rev.Seq)).Attr("kind", rev.Kind.String())
			rev.Trace = rsp.Context()
		}
		tx := cp.beginAtomic(rev.Trace)
		_, crash := invoke(app, ctx, rev)
		if crash != nil {
			cp.rollbackAtomic(tx)
			rsp.End()
			return fmt.Errorf("replay of %v crashed: %s", rev, crash.panicValue)
		}
		cp.commitAtomic(tx)
		rsp.End()
		cp.ReplayedEvents.Add(1)
		cp.opts.Flight.Record(flightrec.Record{
			Layer: flightrec.LayerCrashPad, Kind: flightrec.KindReplay,
			App: name, Trace: rev.Trace.TraceID, EvSeq: rev.Seq, DPID: rev.DPID,
			Note: rev.Kind.String(),
		})
	}
	return nil
}

// maybeCheckpoint snapshots the app per the every-N cadence. sc is the
// trace context of the event that triggered the cadence check.
func (cp *CrashPad) maybeCheckpoint(app controller.App, name string, seq uint64, sc trace.SpanContext) {
	snap, ok := app.(controller.Snapshotter)
	if !ok {
		return
	}
	if !cp.everyN.ShouldCheckpoint(name) {
		return
	}
	if sp := cp.opts.Tracer.StartSpan(sc, "crashpad.checkpoint"); sp != nil {
		sp.Attr("app", name).AttrInt("seq", int64(seq))
		defer sp.End()
	}
	if cp.checkpointDur != nil {
		defer cp.checkpointDur.ObserveSince(time.Now())
	}
	state, err := snap.Snapshot()
	if err != nil {
		// Snapshotting is best-effort — recovery degrades gracefully —
		// but the degradation must be observable.
		cp.noteSnapshotError(name, seq, err)
		return
	}
	cp.opts.Store.Put(name, seq, state)
	cp.opts.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCheckpoint, Kind: flightrec.KindCheckpointPut,
		App: name, Trace: sc.TraceID, EvSeq: seq, N: int64(len(state)),
	})
	cp.mu.Lock()
	cp.replays[name] = nil
	cp.mu.Unlock()
}

// noteSnapshotError makes a failed Snapshot() visible: counter always,
// warning at most once per second.
func (cp *CrashPad) noteSnapshotError(name string, seq uint64, err error) {
	cp.SnapshotErrors.Inc()
	lg := cp.opts.Logger
	if lg == nil {
		return
	}
	cp.warnMu.Lock()
	now := time.Now()
	ok := now.Sub(cp.lastWarn) >= time.Second
	if ok {
		cp.lastWarn = now
	}
	cp.warnMu.Unlock()
	if ok {
		lg.Warn("app snapshot failing; checkpoint not taken and recovery depth degraded",
			slog.String("app", name),
			slog.Uint64("seq", seq),
			slog.String("error", err.Error()),
			slog.Uint64("snapshot_errors_total", cp.SnapshotErrors.Load()))
	}
}

// DropApp forgets everything the pad holds for a removed app: its
// checkpoints (durably, via the store's drop record), replay suffix,
// event history, crash streak, and checkpoint cadence. Without this,
// cadence counters and histories leak for every app ever uninstalled.
func (cp *CrashPad) DropApp(name string) {
	cp.opts.Store.Drop(name)
	cp.everyN.Reset(name)
	cp.mu.Lock()
	delete(cp.replays, name)
	delete(cp.histories, name)
	delete(cp.streaks, name)
	cp.mu.Unlock()
}

// rebaseline takes an immediate post-recovery checkpoint and restarts
// the cadence.
func (cp *CrashPad) rebaseline(app controller.App, name string, seq uint64) {
	snap, ok := app.(controller.Snapshotter)
	if !ok {
		return
	}
	if cp.checkpointDur != nil {
		defer cp.checkpointDur.ObserveSince(time.Now())
	}
	state, err := snap.Snapshot()
	if err != nil {
		cp.noteSnapshotError(name, seq, err)
		return
	}
	cp.opts.Store.Put(name, seq, state)
	cp.opts.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCheckpoint, Kind: flightrec.KindCheckpointPut,
		App: name, EvSeq: seq, N: int64(len(state)),
		Note: "rebaseline",
	})
	cp.mu.Lock()
	cp.replays[name] = nil
	cp.mu.Unlock()
	cp.everyN.Reset(name)
}

// --- atomic-update plumbing: NetLog or the delay-buffer prototype ---

func (cp *CrashPad) beginAtomic(sc trace.SpanContext) *netlog.Txn {
	if cp.opts.NetLog != nil {
		tx := cp.opts.NetLog.BeginTraced(sc)
		cp.opts.NetLog.SetActive(tx)
		return tx
	}
	if cp.opts.DelayBuffer != nil {
		cp.opts.DelayBuffer.BeginHold()
	}
	return nil
}

func (cp *CrashPad) commitAtomic(tx *netlog.Txn) {
	if tx != nil {
		cp.opts.NetLog.SetActive(nil)
		_ = tx.Commit()
		return
	}
	if cp.opts.DelayBuffer != nil {
		_ = cp.opts.DelayBuffer.Flush()
	}
}

func (cp *CrashPad) rollbackAtomic(tx *netlog.Txn) {
	if tx != nil {
		cp.opts.NetLog.SetActive(nil)
		_ = tx.Abort()
		return
	}
	if cp.opts.DelayBuffer != nil {
		cp.opts.DelayBuffer.Discard()
	}
}

// stackTrace captures the current goroutine's stack for in-process
// crash evidence.
func stackTrace() []byte {
	buf := make([]byte, 16<<10)
	n := runtimeStack(buf, false)
	return buf[:n]
}
