package crashpad

import (
	"sync"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// oneShotChecker reports a synthetic invariant violation exactly once,
// so recovery's own redelivery (which re-runs the checker) sees a clean
// network and the matrix cells isolate a single byzantine failure.
type oneShotChecker struct {
	mu           sync.Mutex
	armed        bool
	noCompromise bool
}

func (c *oneShotChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return nil
	}
	c.armed = false
	return []Violation{{Desc: "synthetic violation", NoCompromise: c.noCompromise}}
}

func switchDown(seq uint64) controller.Event {
	return controller.Event{Seq: seq, Kind: controller.EventSwitchDown, DPID: 1}
}

// TestPolicyDecisionMatrix exercises every (failure class x compromise
// policy) cell of the §3.3 decision space and asserts both the chosen
// recovery action (ticket outcome, quarantine or not) and the app's
// final state (the count checkpointing rolls back, the PortStatus
// deliveries equivalence transforms add).
func TestPolicyDecisionMatrix(t *testing.T) {
	const healthy = 3 // healthy PacketIns delivered before the failure

	cells := []struct {
		name   string
		class  FailureClass
		policy Compromise
		// failEvent produces the failure-inducing event (seq 4).
		failEvent func() controller.Event
		// equivalent marks cells whose offending event has an
		// equivalence transform (SwitchDown -> per-port link-downs).
		equivalent bool

		wantQuarantined bool
		wantOutcome     Outcome
		// wantCount is the app's event count after the failure is
		// handled (pre-failure checkpoint = 3).
		wantCount uint64
		// wantPortDowns counts PortStatus deliveries from transforms.
		wantPortDowns int
	}{
		{
			name:   "failstop/no-compromise",
			class:  FailStop,
			policy: NoCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 13)
			},
			wantQuarantined: true,
			wantOutcome:     OutcomeAppDown,
			// No restore is attempted: availability is sacrificed and
			// the app keeps its pre-panic state.
			wantCount: healthy,
		},
		{
			name:   "failstop/absolute",
			class:  FailStop,
			policy: AbsoluteCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 13)
			},
			wantOutcome: OutcomeRecovered,
			wantCount:   healthy, // restored, offending event ignored
		},
		{
			name:   "failstop/equivalence-untransformable",
			class:  FailStop,
			policy: EquivalenceCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 13) // PacketIn has no equivalent events
			},
			wantOutcome: OutcomeFallback,
			wantCount:   healthy, // fell back to ignoring
		},
		{
			name:   "failstop/equivalence-transformable",
			class:  FailStop,
			policy: EquivalenceCompromise,
			failEvent: func() controller.Event {
				return switchDown(4)
			},
			equivalent:  true,
			wantOutcome: OutcomeRecovered,
			// Restored to 3, then two transformed link-down PortStatus
			// events delivered (one per known port).
			wantCount:     healthy + 2,
			wantPortDowns: 2,
		},
		{
			name:   "byzantine/no-compromise",
			class:  Byzantine,
			policy: NoCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 1) // handler succeeds; checker objects
			},
			wantQuarantined: true,
			wantOutcome:     OutcomeAppDown,
			// The handler ran to completion before detection and no
			// restore is attempted under NoCompromise.
			wantCount: healthy + 1,
		},
		{
			name:   "byzantine/absolute",
			class:  Byzantine,
			policy: AbsoluteCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 1)
			},
			wantOutcome: OutcomeRecovered,
			wantCount:   healthy, // rolled back to the pre-event checkpoint
		},
		{
			name:   "byzantine/equivalence-untransformable",
			class:  Byzantine,
			policy: EquivalenceCompromise,
			failEvent: func() controller.Event {
				return pktIn(4, 1)
			},
			wantOutcome: OutcomeFallback,
			wantCount:   healthy,
		},
		{
			name:   "byzantine/equivalence-transformable",
			class:  Byzantine,
			policy: EquivalenceCompromise,
			failEvent: func() controller.Event {
				return switchDown(4)
			},
			equivalent:    true,
			wantOutcome:   OutcomeRecovered,
			wantCount:     healthy + 2,
			wantPortDowns: 2,
		},
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			app := &ctApp{name: "m"}
			var checker *oneShotChecker
			if cell.class == FailStop {
				if cell.equivalent {
					app.crashSwitchDown = true
				} else {
					app.crashOnPort = 13
				}
			} else {
				checker = &oneShotChecker{}
			}

			var tickets []*Ticket
			opts := Options{
				Policies: NewPolicySet(cell.policy),
				OnTicket: func(tk *Ticket) { tickets = append(tickets, tk) },
			}
			if checker != nil {
				opts.Checker = checker
			}
			cp := New(opts)
			ctx := &recCtx{ports: map[uint64][]openflow.PhyPort{
				1: {{PortNo: 1}, {PortNo: 2}},
			}}

			for seq := uint64(1); seq <= healthy; seq++ {
				if f := cp.RunEvent(app, ctx, pktIn(seq, 1)); f != nil {
					t.Fatalf("healthy event %d failed: %v", seq, f)
				}
			}
			if app.count != healthy {
				t.Fatalf("warmup count = %d, want %d", app.count, healthy)
			}

			if checker != nil {
				checker.mu.Lock()
				checker.armed = true
				checker.mu.Unlock()
			}
			failure := cp.RunEvent(app, ctx, cell.failEvent())

			if got := failure != nil; got != cell.wantQuarantined {
				t.Errorf("quarantined = %v, want %v (failure: %v)", got, cell.wantQuarantined, failure)
			}
			if len(tickets) != 1 {
				t.Fatalf("got %d tickets, want 1", len(tickets))
			}
			tk := tickets[0]
			if tk.Class != cell.class {
				t.Errorf("ticket class = %v, want %v", tk.Class, cell.class)
			}
			if tk.Policy != cell.policy {
				t.Errorf("ticket policy = %v, want %v", tk.Policy, cell.policy)
			}
			if tk.Outcome != cell.wantOutcome {
				t.Errorf("outcome = %v, want %v", tk.Outcome, cell.wantOutcome)
			}
			if app.count != cell.wantCount {
				t.Errorf("final count = %d, want %d", app.count, cell.wantCount)
			}
			if app.portDowns != cell.wantPortDowns {
				t.Errorf("portDowns = %d, want %d", app.portDowns, cell.wantPortDowns)
			}

			// A recovered app must keep processing; a quarantined one is
			// the controller's problem (Crash-Pad handed the failure up).
			if !cell.wantQuarantined {
				before := app.count
				if f := cp.RunEvent(app, ctx, pktIn(10, 1)); f != nil {
					t.Fatalf("post-recovery event failed: %v", f)
				}
				if app.count != before+1 {
					t.Errorf("post-recovery count = %d, want %d", app.count, before+1)
				}
			}
		})
	}
}

// TestNoCompromiseInvariantShutdown covers the §5 escalation: a
// violated invariant the operator marked non-negotiable forces a
// network shutdown regardless of the app's policy.
func TestNoCompromiseInvariantShutdown(t *testing.T) {
	checker := &oneShotChecker{noCompromise: true}
	var shutdownWith []Violation
	var tickets []*Ticket
	cp := New(Options{
		Policies:          NewPolicySet(AbsoluteCompromise),
		Checker:           checker,
		OnTicket:          func(tk *Ticket) { tickets = append(tickets, tk) },
		OnNetworkShutdown: func(vs []Violation) { shutdownWith = vs },
	})
	app := &ctApp{name: "m"}
	ctx := &recCtx{}

	if f := cp.RunEvent(app, ctx, pktIn(1, 1)); f != nil {
		t.Fatalf("warmup failed: %v", f)
	}
	checker.mu.Lock()
	checker.armed = true
	checker.mu.Unlock()
	failure := cp.RunEvent(app, ctx, pktIn(2, 1))
	if failure == nil {
		t.Fatal("network-shutdown escalation should quarantine the app")
	}
	if len(shutdownWith) != 1 {
		t.Fatalf("OnNetworkShutdown got %d violations, want 1", len(shutdownWith))
	}
	if len(tickets) != 1 || tickets[0].Outcome != OutcomeNetworkShutdown {
		t.Fatalf("ticket outcome = %v, want %v", tickets[0].Outcome, OutcomeNetworkShutdown)
	}
}
