package invariant

import "legosdn/internal/crashpad"

// crashPadChecker adapts a Suite to Crash-Pad's detection interface.
type crashPadChecker struct {
	suite *Suite
	// noCompromise decides which violations are non-negotiable (§5's
	// "No-Compromise" invariants).
	noCompromise func(Violation) bool
}

// CrashPadChecker adapts the suite for use as crashpad.Options.Checker.
// noCompromise (may be nil) marks violations whose breach must shut the
// network down rather than be compromised around.
func (s *Suite) CrashPadChecker(noCompromise func(Violation) bool) crashpad.InvariantChecker {
	return &crashPadChecker{suite: s, noCompromise: noCompromise}
}

// Check implements crashpad.InvariantChecker.
func (c *crashPadChecker) Check() []crashpad.Violation {
	raw := c.suite.Check()
	if len(raw) == 0 {
		return nil
	}
	out := make([]crashpad.Violation, len(raw))
	for i, v := range raw {
		out[i] = crashpad.Violation{
			Desc:         v.String(),
			NoCompromise: c.noCompromise != nil && c.noCompromise(v),
		}
	}
	return out
}
