package invariant

import (
	"strings"
	"testing"

	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

func install(t *testing.T, n *netsim.Network, dpid uint64, m openflow.Match, prio uint16, actions ...openflow.Action) {
	t.Helper()
	if _, err := n.Switch(dpid).Table().Apply(&openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: prio,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: actions,
	}); err != nil {
		t.Fatal(err)
	}
}

func dstMatch(mac openflow.EthAddr) openflow.Match {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlDst
	m.DlDst = mac
	return m
}

func TestBlackHoleDetection(t *testing.T) {
	n := netsim.Linear(2, nil)
	h2 := n.Host("h2")
	// Healthy rule: s1 -> s2 via port 2.
	install(t, n, 1, dstMatch(h2.MAC), 10, &openflow.ActionOutput{Port: 2})
	if v := (BlackHoles{}).Check(n); len(v) != 0 {
		t.Fatalf("healthy network flagged: %v", v)
	}
	// Kill the link: the same rule becomes a black-hole.
	n.SetLinkDown(1, 2, 2, 1, true)
	v := (BlackHoles{}).Check(n)
	if len(v) != 1 || v[0].Kind != KindBlackHole {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0].Desc, "switch 1") || !strings.Contains(v[0].Desc, "port 2") {
		t.Fatalf("desc = %q", v[0].Desc)
	}
}

func TestBlackHoleOnDeadPeerSwitch(t *testing.T) {
	n := netsim.Linear(3, nil)
	h3 := n.Host("h3")
	install(t, n, 1, dstMatch(h3.MAC), 10, &openflow.ActionOutput{Port: 2})
	n.SetSwitchDown(2, true)
	v := (BlackHoles{}).Check(n)
	if len(v) == 0 {
		t.Fatal("rule into a failed switch not flagged")
	}
	// Rules on the failed switch itself are not the app's problem.
	for _, viol := range v {
		if strings.Contains(viol.Desc, "switch 2 rule") {
			t.Fatalf("dead switch's own rules flagged: %v", viol)
		}
	}
}

func TestBlackHoleIgnoresLogicalPorts(t *testing.T) {
	n := netsim.Single(2, nil)
	install(t, n, 1, openflow.MatchAll(), 1,
		&openflow.ActionOutput{Port: openflow.PortController},
		&openflow.ActionOutput{Port: openflow.PortFlood})
	if v := (BlackHoles{}).Check(n); len(v) != 0 {
		t.Fatalf("logical ports flagged: %v", v)
	}
}

func TestLoopDetection(t *testing.T) {
	n := netsim.Ring(3, nil)
	// Forward everything clockwise on every switch: a perfect loop.
	for i := uint64(1); i <= 3; i++ {
		install(t, n, i, openflow.MatchAll(), 1, &openflow.ActionOutput{Port: 2})
	}
	v := (Loops{}).Check(n)
	if len(v) == 0 {
		t.Fatal("ring loop not detected")
	}
	if v[0].Kind != KindLoop {
		t.Fatalf("kind = %v", v[0].Kind)
	}
}

func TestNoLoopOnValidPaths(t *testing.T) {
	n := netsim.Linear(3, nil)
	h3 := n.Host("h3")
	install(t, n, 1, dstMatch(h3.MAC), 10, &openflow.ActionOutput{Port: 2})
	install(t, n, 2, dstMatch(h3.MAC), 10, &openflow.ActionOutput{Port: 2})
	install(t, n, 3, dstMatch(h3.MAC), 10, &openflow.ActionOutput{Port: 100})
	if v := (Loops{}).Check(n); len(v) != 0 {
		t.Fatalf("valid path flagged as loop: %v", v)
	}
}

func TestReachability(t *testing.T) {
	n := netsim.Linear(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	r := Reachability{Pairs: [][2]string{{"h1", "h2"}}}
	// No rules: unreachable.
	if v := r.Check(n); len(v) != 1 || v[0].Kind != KindReachability {
		t.Fatalf("missing-path violations = %v", v)
	}
	// Install the path.
	install(t, n, 1, dstMatch(h2.MAC), 10, &openflow.ActionOutput{Port: 2})
	install(t, n, 2, dstMatch(h2.MAC), 10, &openflow.ActionOutput{Port: 100})
	if v := r.Check(n); len(v) != 0 {
		t.Fatalf("reachable pair flagged: %v", v)
	}
	// Unknown host.
	bad := Reachability{Pairs: [][2]string{{"h1", "ghost"}}}
	if v := bad.Check(n); len(v) != 1 {
		t.Fatalf("ghost host: %v", v)
	}
	_ = h1
}

func TestReachabilityThroughFlood(t *testing.T) {
	n := netsim.Single(2, nil)
	install(t, n, 1, openflow.MatchAll(), 1, &openflow.ActionOutput{Port: openflow.PortFlood})
	r := Reachability{Pairs: [][2]string{{"h1", "h2"}}}
	if v := r.Check(n); len(v) != 0 {
		t.Fatalf("flood delivery not traced: %v", v)
	}
}

func TestSuiteAggregatesAndSorts(t *testing.T) {
	n := netsim.Ring(3, nil)
	for i := uint64(1); i <= 3; i++ {
		install(t, n, i, openflow.MatchAll(), 1, &openflow.ActionOutput{Port: 2})
	}
	// A second, higher-priority rule on s1 into a nonexistent port: a
	// black-hole that coexists with the ring loop.
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardTpDst
	m.TpDst = 9999
	install(t, n, 1, m, 50, &openflow.ActionOutput{Port: 77})
	s := NewSuite(n)
	v := s.Check()
	if len(v) < 2 {
		t.Fatalf("expected black-hole + loop, got %v", v)
	}
	for i := 1; i < len(v); i++ {
		if v[i-1].Desc > v[i].Desc {
			t.Fatal("violations not sorted")
		}
	}
}

func TestCrashPadAdapter(t *testing.T) {
	n := netsim.Linear(2, nil)
	h2 := n.Host("h2")
	install(t, n, 1, dstMatch(h2.MAC), 10, &openflow.ActionOutput{Port: 2})
	s := NewSuite(n)
	adapter := s.CrashPadChecker(func(v Violation) bool { return v.Kind == KindBlackHole })

	if got := adapter.Check(); got != nil {
		t.Fatalf("healthy network: %v", got)
	}
	n.SetLinkDown(1, 2, 2, 1, true)
	got := adapter.Check()
	if len(got) != 1 || !got[0].NoCompromise {
		t.Fatalf("adapter output = %+v", got)
	}
}
