// Package invariant implements VeriFlow-style network invariant
// checking over the simulated network's flow tables: structural
// black-hole detection, forwarding-loop detection by symbolic packet
// tracing, and host-pair reachability. Crash-Pad consults a checker
// suite after each event to detect byzantine SDN-App failures (§3.3 of
// the LegoSDN paper), and the "No-Compromise" invariant set drives the
// §5 network-shutdown escalation.
package invariant

import (
	"fmt"
	"sort"

	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// Kind classifies an invariant violation.
type Kind int

// Violation kinds.
const (
	KindBlackHole Kind = iota
	KindLoop
	KindReachability
)

func (k Kind) String() string {
	switch k {
	case KindBlackHole:
		return "black-hole"
	case KindLoop:
		return "loop"
	case KindReachability:
		return "reachability"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Violation is one detected invariant breach.
type Violation struct {
	Kind Kind
	Desc string
}

func (v Violation) String() string { return fmt.Sprintf("%v: %s", v.Kind, v.Desc) }

// Checker is one invariant check over the network.
type Checker interface {
	Name() string
	Check(n *netsim.Network) []Violation
}

// BlackHoles finds flow entries whose output leads nowhere: a missing,
// administratively downed or link-down port, or a failed peer switch.
// These are exactly the black-holes §5 warns that ignoring switch-down
// events can create.
type BlackHoles struct{}

// Name implements Checker.
func (BlackHoles) Name() string { return "no-black-holes" }

// Check implements Checker.
func (BlackHoles) Check(n *netsim.Network) []Violation {
	var out []Violation
	for _, sw := range n.Switches() {
		if sw.Down() {
			continue // a dead switch forwards nothing; not a rule bug
		}
		for _, e := range sw.Table().Entries() {
			for _, a := range e.Actions {
				o, ok := a.(*openflow.ActionOutput)
				if !ok {
					continue
				}
				if o.Port > openflow.PortMax {
					continue // logical ports (flood, controller) are fine
				}
				if !n.PortLive(sw.DPID, o.Port) {
					out = append(out, Violation{
						Kind: KindBlackHole,
						Desc: fmt.Sprintf("switch %d rule [%v] outputs to dead port %d", sw.DPID, e.Match, o.Port),
					})
				}
			}
		}
	}
	return out
}

// traceOutcome is the terminal state of one symbolic packet trace.
type traceOutcome int

const (
	traceDelivered traceOutcome = iota
	traceDropped
	traceLooped
)

// trace follows a frame through flow tables without touching counters,
// returning where it ends up. Flood/ALL outputs follow every branch;
// any looping branch marks the trace as looped.
func trace(n *netsim.Network, dpid uint64, inPort uint16, f *netsim.Frame, visited map[[2]uint64]bool) traceOutcome {
	key := [2]uint64{dpid, uint64(inPort)}
	if visited[key] {
		return traceLooped
	}
	visited[key] = true
	sw := n.Switch(dpid)
	if sw == nil || sw.Down() {
		return traceDropped
	}
	entry := sw.Table().Peek(f.Fields(inPort))
	if entry == nil {
		return traceDropped
	}
	outFrame, ports := netsim.ApplyActions(f, entry.Actions)
	outcome := traceDropped
	for _, p := range ports {
		var branchPorts []uint16
		switch {
		case p == openflow.PortInPort:
			branchPorts = []uint16{inPort}
		case p == openflow.PortFlood || p == openflow.PortAll:
			for _, pn := range sw.PortNumbers() {
				if pn != inPort {
					branchPorts = append(branchPorts, pn)
				}
			}
		case p > openflow.PortMax:
			continue // controller/local: not dataplane delivery
		default:
			branchPorts = []uint16{p}
		}
		for _, bp := range branchPorts {
			kind, peerDPID, peerPort, hostName := n.Peer(dpid, bp)
			switch kind {
			case netsim.PeerSwitch:
				// Branches share the visited set: a loop on any branch is a loop.
				sub := trace(n, peerDPID, peerPort, &outFrame, visited)
				if sub == traceLooped {
					return traceLooped
				}
				if sub == traceDelivered {
					outcome = traceDelivered
				}
			case netsim.PeerHost:
				h := n.Host(hostName)
				if h != nil && (outFrame.DlDst == h.MAC || outFrame.DlDst.IsBroadcast() || outFrame.DlDst.IsMulticast()) {
					outcome = traceDelivered
				}
			}
		}
	}
	return outcome
}

// Loops traces a representative packet for every ordered host pair and
// reports pairs whose traffic cycles.
type Loops struct{}

// Name implements Checker.
func (Loops) Name() string { return "no-loops" }

// Check implements Checker.
func (Loops) Check(n *netsim.Network) []Violation {
	var out []Violation
	forEachHostPair(n, func(src, dst *netsim.Host) {
		f := netsim.TCPFrame(src, dst, 40000, 80, nil)
		kind, dpid, port := hostAttachment(n, src)
		if kind != netsim.PeerSwitch {
			return
		}
		visited := make(map[[2]uint64]bool)
		if trace(n, dpid, port, f, visited) == traceLooped {
			out = append(out, Violation{
				Kind: KindLoop,
				Desc: fmt.Sprintf("traffic %s->%s cycles in the dataplane", src.Name, dst.Name),
			})
		}
	})
	return out
}

// Reachability verifies that the given host pairs can exchange traffic.
// An empty pair list checks nothing (reachability is policy, not an
// intrinsic invariant: a firewall may legitimately isolate hosts).
type Reachability struct {
	// Pairs lists (src, dst) host names that must remain connected.
	Pairs [][2]string
}

// Name implements Checker.
func (Reachability) Name() string { return "reachability" }

// Check implements Checker.
func (r Reachability) Check(n *netsim.Network) []Violation {
	var out []Violation
	for _, pair := range r.Pairs {
		src, dst := n.Host(pair[0]), n.Host(pair[1])
		if src == nil || dst == nil {
			out = append(out, Violation{Kind: KindReachability,
				Desc: fmt.Sprintf("pair %s->%s: host missing", pair[0], pair[1])})
			continue
		}
		f := netsim.TCPFrame(src, dst, 40000, 80, nil)
		kind, dpid, port := hostAttachment(n, src)
		if kind != netsim.PeerSwitch {
			out = append(out, Violation{Kind: KindReachability,
				Desc: fmt.Sprintf("pair %s->%s: source unplugged", src.Name, dst.Name)})
			continue
		}
		visited := make(map[[2]uint64]bool)
		if trace(n, dpid, port, f, visited) != traceDelivered {
			out = append(out, Violation{Kind: KindReachability,
				Desc: fmt.Sprintf("pair %s->%s: traffic does not arrive", src.Name, dst.Name)})
		}
	}
	return out
}

// hostAttachment locates the switch port a host hangs off.
func hostAttachment(n *netsim.Network, h *netsim.Host) (netsim.PeerKind, uint64, uint16) {
	for _, sw := range n.Switches() {
		for _, pn := range sw.PortNumbers() {
			kind, _, _, hostName := n.Peer(sw.DPID, pn)
			if kind == netsim.PeerHost && hostName == h.Name {
				return netsim.PeerSwitch, sw.DPID, pn
			}
		}
	}
	return netsim.PeerNone, 0, 0
}

func forEachHostPair(n *netsim.Network, fn func(src, dst *netsim.Host)) {
	hosts := n.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				fn(s, d)
			}
		}
	}
}

// Suite bundles checkers over one network and caches nothing: every
// Check sees live state.
type Suite struct {
	Net      *netsim.Network
	Checkers []Checker
}

// NewSuite builds a suite with the standard safety checkers (black-hole
// and loop) plus any extras.
func NewSuite(n *netsim.Network, extra ...Checker) *Suite {
	return &Suite{Net: n, Checkers: append([]Checker{BlackHoles{}, Loops{}}, extra...)}
}

// Check runs every checker, returning all violations sorted by text for
// deterministic output.
func (s *Suite) Check() []Violation {
	var out []Violation
	for _, c := range s.Checkers {
		out = append(out, c.Check(s.Net)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Desc < out[j].Desc })
	return out
}
