package openflow

import (
	"net"
	"strings"
	"testing"
)

func TestMatchAllMatchesEverything(t *testing.T) {
	m := MatchAll()
	pkts := []PacketFields{
		{},
		{InPort: 5, DlType: 0x0800, NwSrc: 0x0a000001, NwDst: 0x0a000002},
		{DlSrc: EthAddr{1, 2, 3, 4, 5, 6}, TpDst: 80},
	}
	for _, p := range pkts {
		if !m.Matches(p) {
			t.Errorf("MatchAll failed to match %+v", p)
		}
	}
	if m.String() != "any" {
		t.Errorf("MatchAll string = %q, want any", m.String())
	}
}

func TestExactFieldMatch(t *testing.T) {
	m := Match{Wildcards: WildcardAll &^ (WildcardInPort | WildcardDlType), InPort: 3, DlType: 0x0806}
	if !m.Matches(PacketFields{InPort: 3, DlType: 0x0806}) {
		t.Error("should match exact fields")
	}
	if m.Matches(PacketFields{InPort: 4, DlType: 0x0806}) {
		t.Error("wrong in_port should not match")
	}
	if m.Matches(PacketFields{InPort: 3, DlType: 0x0800}) {
		t.Error("wrong dl_type should not match")
	}
}

func TestCIDRMatch(t *testing.T) {
	m := MatchAll()
	m.NwDst = 0x0a000000  // 10.0.0.0
	m.SetNwDstMaskBits(8) // /24
	if got := m.NwDstMaskBits(); got != 8 {
		t.Fatalf("mask bits = %d, want 8", got)
	}
	if !m.Matches(PacketFields{NwDst: 0x0a0000ff}) {
		t.Error("10.0.0.255 should match 10.0.0.0/24")
	}
	if m.Matches(PacketFields{NwDst: 0x0a000100}) {
		t.Error("10.0.1.0 should not match 10.0.0.0/24")
	}
	// Fully wildcarded address.
	m.SetNwDstMaskBits(32)
	if !m.Matches(PacketFields{NwDst: 0xffffffff}) {
		t.Error("/0 should match anything")
	}
}

func TestSetMaskBitsClamps(t *testing.T) {
	var m Match
	m.SetNwSrcMaskBits(200)
	if m.NwSrcMaskBits() != 32 {
		t.Errorf("mask bits = %d, want clamp to 32", m.NwSrcMaskBits())
	}
}

func TestNormalizeZeroesWildcardedFields(t *testing.T) {
	m := Match{
		Wildcards: WildcardAll,
		InPort:    9, DlVlan: 5, DlType: 0x0800, NwSrc: 0x01020304, TpDst: 80,
		DlSrc: EthAddr{1, 1, 1, 1, 1, 1},
	}
	n := m.Normalize()
	if n.InPort != 0 || n.DlVlan != 0 || n.DlType != 0 || n.NwSrc != 0 || n.TpDst != 0 || (n.DlSrc != EthAddr{}) {
		t.Errorf("normalize left wildcarded fields: %+v", n)
	}
	// Normalized matches with identical semantics must be comparable with ==.
	m2 := Match{Wildcards: WildcardAll, InPort: 42}
	if m.Normalize() != m2.Normalize() {
		t.Error("semantically identical matches should normalize equal")
	}
}

func TestSubsumesCIDR(t *testing.T) {
	wide := MatchAll()
	wide.NwDst = 0x0a000000
	wide.SetNwDstMaskBits(16) // 10.0.0.0/16
	narrow := MatchAll()
	narrow.NwDst = 0x0a000100
	narrow.SetNwDstMaskBits(8) // 10.0.1.0/24
	if !wide.Subsumes(&narrow) {
		t.Error("/16 should subsume /24 within it")
	}
	if narrow.Subsumes(&wide) {
		t.Error("/24 should not subsume /16")
	}
	outside := MatchAll()
	outside.NwDst = 0x0b000000
	outside.SetNwDstMaskBits(8)
	if wide.Subsumes(&outside) {
		t.Error("different prefix should not be subsumed")
	}
}

func TestSubsumesExactFields(t *testing.T) {
	gen := MatchAll() // wildcard in_port
	spec := MatchAll()
	spec.Wildcards &^= WildcardInPort
	spec.InPort = 1
	if !gen.Subsumes(&spec) {
		t.Error("wildcard should subsume exact")
	}
	if spec.Subsumes(&gen) {
		t.Error("exact should not subsume wildcard")
	}
	other := spec
	other.InPort = 2
	if spec.Subsumes(&other) {
		t.Error("different exact values should not subsume")
	}
}

func TestEthAddrHelpers(t *testing.T) {
	bc := EthAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if !bc.IsBroadcast() || !bc.IsMulticast() {
		t.Error("broadcast flags wrong")
	}
	mc := EthAddr{0x01, 0, 0x5e, 0, 0, 1}
	if mc.IsBroadcast() || !mc.IsMulticast() {
		t.Error("multicast flags wrong")
	}
	uni := EthAddr{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	if uni.IsBroadcast() || uni.IsMulticast() {
		t.Error("unicast flags wrong")
	}
	if uni.String() != "00:11:22:33:44:55" {
		t.Errorf("String = %q", uni.String())
	}
}

func TestMatchString(t *testing.T) {
	m := MatchAll()
	m.Wildcards &^= WildcardInPort | WildcardDlDst
	m.InPort = 1
	m.DlDst = EthAddr{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	s := m.String()
	for _, want := range []string{"in_port=1", "dl_dst=aa:bb:cc:dd:ee:ff"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	m2 := MatchAll()
	m2.NwDst = 0x0a000000
	m2.SetNwDstMaskBits(8)
	if !strings.Contains(m2.String(), "nw_dst=10.0.0.0/24") {
		t.Errorf("String %q missing CIDR", m2.String())
	}
}

func TestIPv4ToUint(t *testing.T) {
	if got := IPv4ToUint(net.IPv4(10, 0, 0, 1)); got != 0x0a000001 {
		t.Errorf("IPv4ToUint = %#x", got)
	}
	if got := IPv4ToUint(net.ParseIP("::1")); got != 0 {
		t.Errorf("IPv6 should convert to 0, got %#x", got)
	}
}

func TestMatchEncodePadZeroed(t *testing.T) {
	var m Match
	b := make([]byte, MatchLen)
	for i := range b {
		b[i] = 0xff
	}
	m.serializeTo(b)
	for _, idx := range []int{21, 26, 27} {
		if b[idx] != 0 {
			t.Errorf("pad byte %d not zeroed", idx)
		}
	}
}
