package openflow

import (
	"encoding/binary"
	"fmt"
)

// Hello opens the OpenFlow handshake (OFPT_HELLO).
type Hello struct {
	BaseMsg
}

// Type implements Message.
func (*Hello) Type() Type                { return TypeHello }
func (*Hello) bodyLen() int              { return 0 }
func (*Hello) serializeBody(b []byte)    {}
func (*Hello) decodeBody(b []byte) error { return nil }

// EchoRequest is a liveness probe (OFPT_ECHO_REQUEST); the payload is
// echoed back verbatim in the reply.
type EchoRequest struct {
	BaseMsg
	Data []byte
}

// Type implements Message.
func (*EchoRequest) Type() Type               { return TypeEchoRequest }
func (m *EchoRequest) bodyLen() int           { return len(m.Data) }
func (m *EchoRequest) serializeBody(b []byte) { copy(b, m.Data) }
func (m *EchoRequest) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply answers an EchoRequest (OFPT_ECHO_REPLY).
type EchoReply struct {
	BaseMsg
	Data []byte
}

// Type implements Message.
func (*EchoReply) Type() Type               { return TypeEchoReply }
func (m *EchoReply) bodyLen() int           { return len(m.Data) }
func (m *EchoReply) serializeBody(b []byte) { copy(b, m.Data) }
func (m *EchoReply) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// Vendor is an opaque vendor-extension message (OFPT_VENDOR).
type Vendor struct {
	BaseMsg
	VendorID uint32
	Data     []byte
}

// Type implements Message.
func (*Vendor) Type() Type     { return TypeVendor }
func (m *Vendor) bodyLen() int { return 4 + len(m.Data) }
func (m *Vendor) serializeBody(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.VendorID)
	copy(b[4:], m.Data)
}
func (m *Vendor) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.VendorID = binary.BigEndian.Uint32(b[0:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

// ErrorType classifies an ErrorMsg (ofp_error_type).
type ErrorType uint16

// OpenFlow 1.0 error types.
const (
	ErrTypeHelloFailed   ErrorType = 0
	ErrTypeBadRequest    ErrorType = 1
	ErrTypeBadAction     ErrorType = 2
	ErrTypeFlowModFailed ErrorType = 3
	ErrTypePortModFailed ErrorType = 4
	ErrTypeQueueOpFailed ErrorType = 5
)

// Selected ofp_flow_mod_failed_code values used by the simulator.
const (
	FlowModFailedAllTablesFull uint16 = 0
	FlowModFailedOverlap       uint16 = 1
	FlowModFailedEperm         uint16 = 2
	FlowModFailedBadCommand    uint16 = 4
)

// Selected ofp_bad_request_code values used by the simulator.
const (
	// BadRequestEperm rejects a state-changing message from a
	// connection that does not hold the master role.
	BadRequestEperm uint16 = 5
)

// ErrorMsg reports a protocol-level failure (OFPT_ERROR). Data carries
// at least the first 64 bytes of the offending message.
type ErrorMsg struct {
	BaseMsg
	ErrType ErrorType
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (*ErrorMsg) Type() Type     { return TypeError }
func (m *ErrorMsg) bodyLen() int { return 4 + len(m.Data) }
func (m *ErrorMsg) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.ErrType))
	binary.BigEndian.PutUint16(b[2:4], m.Code)
	copy(b[4:], m.Data)
}
func (m *ErrorMsg) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.ErrType = ErrorType(binary.BigEndian.Uint16(b[0:2]))
	m.Code = binary.BigEndian.Uint16(b[2:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

func (m *ErrorMsg) String() string {
	return fmt.Sprintf("error type=%d code=%d", m.ErrType, m.Code)
}

// FeaturesRequest asks the switch for its datapath description
// (OFPT_FEATURES_REQUEST).
type FeaturesRequest struct {
	BaseMsg
}

// Type implements Message.
func (*FeaturesRequest) Type() Type                { return TypeFeaturesRequest }
func (*FeaturesRequest) bodyLen() int              { return 0 }
func (*FeaturesRequest) serializeBody(b []byte)    {}
func (*FeaturesRequest) decodeBody(b []byte) error { return nil }

// Capability bits advertised in FeaturesReply (ofp_capabilities).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
)

// FeaturesReply describes the switch datapath (OFPT_FEATURES_REPLY).
type FeaturesReply struct {
	BaseMsg
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32 // bitmap of supported ofp_action_type values
	Ports        []PhyPort
}

// Type implements Message.
func (*FeaturesReply) Type() Type     { return TypeFeaturesReply }
func (m *FeaturesReply) bodyLen() int { return 24 + PhyPortLen*len(m.Ports) }
func (m *FeaturesReply) serializeBody(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], m.NBuffers)
	b[12] = m.NTables
	// b[13:16] pad
	binary.BigEndian.PutUint32(b[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(b[20:24], m.Actions)
	off := 24
	for i := range m.Ports {
		m.Ports[i].serializeTo(b[off : off+PhyPortLen])
		off += PhyPortLen
	}
}
func (m *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < 24 {
		return ErrTooShort
	}
	m.DatapathID = binary.BigEndian.Uint64(b[0:8])
	m.NBuffers = binary.BigEndian.Uint32(b[8:12])
	m.NTables = b[12]
	m.Capabilities = binary.BigEndian.Uint32(b[16:20])
	m.Actions = binary.BigEndian.Uint32(b[20:24])
	rest := b[24:]
	if len(rest)%PhyPortLen != 0 {
		return fmt.Errorf("%w: trailing port bytes %d", ErrBadLength, len(rest))
	}
	m.Ports = make([]PhyPort, 0, len(rest)/PhyPortLen)
	for len(rest) > 0 {
		var p PhyPort
		if err := p.decodeFrom(rest[:PhyPortLen]); err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
		rest = rest[PhyPortLen:]
	}
	return nil
}

// GetConfigRequest asks for the switch configuration
// (OFPT_GET_CONFIG_REQUEST).
type GetConfigRequest struct {
	BaseMsg
}

// Type implements Message.
func (*GetConfigRequest) Type() Type                { return TypeGetConfigReq }
func (*GetConfigRequest) bodyLen() int              { return 0 }
func (*GetConfigRequest) serializeBody(b []byte)    {}
func (*GetConfigRequest) decodeBody(b []byte) error { return nil }

// GetConfigReply carries the switch configuration (OFPT_GET_CONFIG_REPLY).
type GetConfigReply struct {
	BaseMsg
	Flags       uint16
	MissSendLen uint16
}

// Type implements Message.
func (*GetConfigReply) Type() Type     { return TypeGetConfigReply }
func (m *GetConfigReply) bodyLen() int { return 4 }
func (m *GetConfigReply) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], m.Flags)
	binary.BigEndian.PutUint16(b[2:4], m.MissSendLen)
}
func (m *GetConfigReply) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.Flags = binary.BigEndian.Uint16(b[0:2])
	m.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// SetConfig updates the switch configuration (OFPT_SET_CONFIG).
type SetConfig struct {
	BaseMsg
	Flags       uint16
	MissSendLen uint16
}

// Type implements Message.
func (*SetConfig) Type() Type     { return TypeSetConfig }
func (m *SetConfig) bodyLen() int { return 4 }
func (m *SetConfig) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], m.Flags)
	binary.BigEndian.PutUint16(b[2:4], m.MissSendLen)
}
func (m *SetConfig) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.Flags = binary.BigEndian.Uint16(b[0:2])
	m.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// BarrierRequest forces the switch to finish processing all preceding
// messages before replying (OFPT_BARRIER_REQUEST). NetLog uses barriers
// to delimit transaction commit points.
type BarrierRequest struct {
	BaseMsg
}

// Type implements Message.
func (*BarrierRequest) Type() Type                { return TypeBarrierRequest }
func (*BarrierRequest) bodyLen() int              { return 0 }
func (*BarrierRequest) serializeBody(b []byte)    {}
func (*BarrierRequest) decodeBody(b []byte) error { return nil }

// BarrierReply acknowledges a BarrierRequest (OFPT_BARRIER_REPLY).
type BarrierReply struct {
	BaseMsg
}

// Type implements Message.
func (*BarrierReply) Type() Type                { return TypeBarrierReply }
func (*BarrierReply) bodyLen() int              { return 0 }
func (*BarrierReply) serializeBody(b []byte)    {}
func (*BarrierReply) decodeBody(b []byte) error { return nil }
