package openflow

import (
	"math/rand"
	"testing"
)

// Decode must never panic, whatever bytes arrive off the wire: a
// malicious or broken peer is an error, not a controller crash. These
// tests throw random garbage and structured mutations at the decoder.

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(256)
		b := make([]byte, n)
		r.Read(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on %d random bytes: %v\n% x", n, p, b)
				}
			}()
			_, _ = Decode(b)
		}()
	}
}

func TestDecodeMutatedValidMessagesNeverPanic(t *testing.T) {
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("payload")},
		&ErrorMsg{ErrType: ErrTypeBadRequest, Data: []byte{1, 2, 3}},
		&FeaturesReply{DatapathID: 7, Ports: []PhyPort{{PortNo: 1, Name: "x"}}},
		&PacketIn{BufferID: BufferIDNone, InPort: 3, Data: make([]byte, 40)},
		&PacketOut{BufferID: BufferIDNone, InPort: PortNone,
			Actions: sampleActions(), Data: []byte{9, 9}},
		&FlowMod{Match: MatchAll(), Command: FlowModAdd, BufferID: BufferIDNone,
			OutPort: PortNone, Actions: sampleActions()},
		&FlowRemoved{Match: MatchAll()},
		&PortStatus{Desc: PhyPort{PortNo: 2}},
		&PortMod{PortNo: 1},
		&StatsRequest{StatsType: StatsTypeFlow},
		&StatsReply{StatsType: StatsTypeFlow, Flows: []FlowStatsEntry{
			{Match: MatchAll(), Actions: sampleActions()},
		}},
		&StatsReply{StatsType: StatsTypePort, Ports: []PortStatsEntry{{PortNo: 1}}},
		&BarrierRequest{},
	}
	r := rand.New(rand.NewSource(2))
	for _, m := range msgs {
		valid, err := Encode(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		for trial := 0; trial < 2000; trial++ {
			b := append([]byte(nil), valid...)
			// Mutate 1-4 bytes, preserving version so the decoder gets
			// past the header check, but NOT the length consistency:
			// truncations and extensions are part of the attack surface.
			for k := 0; k < 1+r.Intn(4); k++ {
				b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
			}
			b[0] = Version
			switch r.Intn(4) {
			case 0:
				if len(b) > HeaderLen {
					b = b[:HeaderLen+r.Intn(len(b)-HeaderLen)]
				}
			case 1:
				b = append(b, make([]byte, r.Intn(16))...)
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Decode panicked on mutated %v: %v\n% x", m.Type(), p, b)
					}
				}()
				_, _ = Decode(b)
			}()
		}
	}
}

// The decoded result of a successful mutated decode must re-encode
// without panicking either (NetLog journals decoded messages).
func TestReencodeAfterMutationNeverPanics(t *testing.T) {
	base, _ := Encode(&FlowMod{Match: MatchAll(), Command: FlowModAdd,
		BufferID: BufferIDNone, OutPort: PortNone, Actions: sampleActions()})
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		b := append([]byte(nil), base...)
		b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		b[0] = Version
		msg, err := Decode(b)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("re-encode panicked: %v", p)
				}
			}()
			_, _ = Encode(msg)
		}()
	}
}
