package openflow

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleActions returns one of each action type, for exhaustive
// round-trip coverage.
func sampleActions() []Action {
	return []Action{
		&ActionOutput{Port: 7, MaxLen: 128},
		&ActionSetVlanVID{VlanVID: 100},
		&ActionSetVlanPCP{VlanPCP: 5},
		&ActionStripVlan{},
		&ActionSetDlSrc{Addr: EthAddr{1, 2, 3, 4, 5, 6}},
		&ActionSetDlDst{Addr: EthAddr{6, 5, 4, 3, 2, 1}},
		&ActionSetNwSrc{Addr: 0x0a000001},
		&ActionSetNwDst{Addr: 0x0a000002},
		&ActionSetNwTos{Tos: 0x20},
		&ActionSetTpSrc{Port: 8080},
		&ActionSetTpDst{Port: 443},
		&ActionEnqueue{Port: 3, QueueID: 9},
	}
}

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	b, err := Encode(msg)
	if err != nil {
		t.Fatalf("encode %v: %v", msg.Type(), err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %v: %v", msg.Type(), err)
	}
	if got.Type() != msg.Type() {
		t.Fatalf("type changed: sent %v got %v", msg.Type(), got.Type())
	}
	if got.GetXid() != msg.GetXid() {
		t.Fatalf("xid changed: sent %d got %d", msg.GetXid(), got.GetXid())
	}
	return got
}

func TestRoundTripSymmetric(t *testing.T) {
	msgs := []Message{
		&Hello{BaseMsg{Xid: 1}},
		&EchoRequest{BaseMsg: BaseMsg{Xid: 2}, Data: []byte("ping")},
		&EchoReply{BaseMsg: BaseMsg{Xid: 3}, Data: []byte("pong")},
		&BarrierRequest{BaseMsg{Xid: 4}},
		&BarrierReply{BaseMsg{Xid: 5}},
		&FeaturesRequest{BaseMsg{Xid: 6}},
		&GetConfigRequest{BaseMsg{Xid: 7}},
		&GetConfigReply{BaseMsg: BaseMsg{Xid: 8}, Flags: 1, MissSendLen: 128},
		&SetConfig{BaseMsg: BaseMsg{Xid: 9}, MissSendLen: 1500},
		&Vendor{BaseMsg: BaseMsg{Xid: 10}, VendorID: 0x2320, Data: []byte{1, 2, 3}},
		&ErrorMsg{BaseMsg: BaseMsg{Xid: 11}, ErrType: ErrTypeFlowModFailed, Code: FlowModFailedAllTablesFull, Data: []byte{0xde, 0xad}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: round trip mismatch\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestRoundTripFeaturesReply(t *testing.T) {
	m := &FeaturesReply{
		BaseMsg:      BaseMsg{Xid: 20},
		DatapathID:   0x00001122334455aa,
		NBuffers:     256,
		NTables:      2,
		Capabilities: CapFlowStats | CapPortStats,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: EthAddr{0xaa, 0, 0, 0, 0, 1}, Name: "eth1", Curr: 1},
			{PortNo: 2, HWAddr: EthAddr{0xaa, 0, 0, 0, 0, 2}, Name: "eth2", State: PortStateLinkDown},
		},
	}
	got := roundTrip(t, m).(*FeaturesReply)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("features reply mismatch\n got %#v\nwant %#v", got, m)
	}
}

func TestRoundTripFlowMod(t *testing.T) {
	match := Match{Wildcards: WildcardAll &^ (WildcardInPort | WildcardDlDst), InPort: 4, DlDst: EthAddr{1, 2, 3, 4, 5, 6}}
	m := &FlowMod{
		BaseMsg:     BaseMsg{Xid: 30},
		Match:       match,
		Cookie:      0xfeedface,
		Command:     FlowModAdd,
		IdleTimeout: 30,
		HardTimeout: 600,
		Priority:    100,
		BufferID:    BufferIDNone,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions:     sampleActions(),
	}
	got := roundTrip(t, m).(*FlowMod)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("flow mod mismatch\n got %#v\nwant %#v", got, m)
	}
}

func TestRoundTripFlowModNoActions(t *testing.T) {
	m := &FlowMod{
		BaseMsg:  BaseMsg{Xid: 31},
		Match:    MatchAll(),
		Command:  FlowModDelete,
		BufferID: BufferIDNone,
		OutPort:  PortNone,
	}
	got := roundTrip(t, m).(*FlowMod)
	if len(got.Actions) != 0 {
		t.Fatalf("expected no actions, got %d", len(got.Actions))
	}
}

func TestRoundTripPacketInOut(t *testing.T) {
	pin := &PacketIn{
		BaseMsg:  BaseMsg{Xid: 40},
		BufferID: BufferIDNone,
		TotalLen: 64,
		InPort:   2,
		Reason:   PacketInReasonNoMatch,
		Data:     bytes.Repeat([]byte{0xab}, 64),
	}
	got := roundTrip(t, pin).(*PacketIn)
	if !reflect.DeepEqual(got, pin) {
		t.Fatalf("packet in mismatch")
	}

	pout := &PacketOut{
		BaseMsg:  BaseMsg{Xid: 41},
		BufferID: BufferIDNone,
		InPort:   PortNone,
		Actions:  []Action{&ActionOutput{Port: PortFlood, MaxLen: 0}},
		Data:     []byte{1, 2, 3, 4},
	}
	gotOut := roundTrip(t, pout).(*PacketOut)
	if !reflect.DeepEqual(gotOut, pout) {
		t.Fatalf("packet out mismatch\n got %#v\nwant %#v", gotOut, pout)
	}
}

func TestRoundTripFlowRemoved(t *testing.T) {
	m := &FlowRemoved{
		BaseMsg:      BaseMsg{Xid: 50},
		Match:        Match{Wildcards: WildcardAll &^ WildcardDlType, DlType: 0x0800},
		Cookie:       99,
		Priority:     10,
		Reason:       FlowRemovedIdleTimeout,
		DurationSec:  120,
		DurationNsec: 500,
		IdleTimeout:  30,
		PacketCount:  1000,
		ByteCount:    64000,
	}
	got := roundTrip(t, m).(*FlowRemoved)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("flow removed mismatch\n got %#v\nwant %#v", got, m)
	}
}

func TestRoundTripPortStatusAndMod(t *testing.T) {
	ps := &PortStatus{
		BaseMsg: BaseMsg{Xid: 60},
		Reason:  PortReasonModify,
		Desc: PhyPort{
			PortNo: 3,
			HWAddr: EthAddr{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
			Name:   "s1-eth3",
			State:  PortStateLinkDown,
		},
	}
	got := roundTrip(t, ps).(*PortStatus)
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("port status mismatch\n got %#v\nwant %#v", got, ps)
	}

	pm := &PortMod{
		BaseMsg: BaseMsg{Xid: 61},
		PortNo:  3,
		HWAddr:  EthAddr{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		Config:  PortConfigDown,
		Mask:    PortConfigDown,
	}
	gotPM := roundTrip(t, pm).(*PortMod)
	if !reflect.DeepEqual(gotPM, pm) {
		t.Fatalf("port mod mismatch")
	}
}

func TestRoundTripStats(t *testing.T) {
	req := &StatsRequest{
		BaseMsg:   BaseMsg{Xid: 70},
		StatsType: StatsTypeFlow,
		Flow:      &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone},
	}
	gotReq := roundTrip(t, req).(*StatsRequest)
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("stats request mismatch\n got %#v\nwant %#v", gotReq, req)
	}

	rep := &StatsReply{
		BaseMsg:   BaseMsg{Xid: 71},
		StatsType: StatsTypeFlow,
		Flows: []FlowStatsEntry{
			{
				TableID:     0,
				Match:       Match{Wildcards: WildcardAll &^ WildcardInPort, InPort: 1},
				DurationSec: 5,
				Priority:    100,
				IdleTimeout: 30,
				Cookie:      7,
				PacketCount: 42,
				ByteCount:   4200,
				Actions:     []Action{&ActionOutput{Port: 2, MaxLen: 0}},
			},
			{
				TableID:  0,
				Match:    MatchAll(),
				Priority: 1,
			},
		},
	}
	gotRep := roundTrip(t, rep).(*StatsReply)
	if !reflect.DeepEqual(gotRep, rep) {
		t.Fatalf("flow stats reply mismatch\n got %#v\nwant %#v", gotRep, rep)
	}

	agg := &StatsReply{
		BaseMsg:   BaseMsg{Xid: 72},
		StatsType: StatsTypeAggregate,
		Aggregate: &AggregateStats{PacketCount: 9, ByteCount: 900, FlowCount: 3},
	}
	gotAgg := roundTrip(t, agg).(*StatsReply)
	if !reflect.DeepEqual(gotAgg, agg) {
		t.Fatalf("aggregate stats mismatch")
	}

	ports := &StatsReply{
		BaseMsg:   BaseMsg{Xid: 73},
		StatsType: StatsTypePort,
		Ports: []PortStatsEntry{
			{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 1000, TxBytes: 2000},
			{PortNo: 2, Collisions: 3},
		},
	}
	gotPorts := roundTrip(t, ports).(*StatsReply)
	if !reflect.DeepEqual(gotPorts, ports) {
		t.Fatalf("port stats mismatch")
	}
}

// randomMatch builds an arbitrary but wire-valid Match from quick's
// random source.
func randomMatch(r *rand.Rand) Match {
	m := Match{
		Wildcards: r.Uint32() & WildcardAll,
		InPort:    uint16(r.Uint32()),
		DlVlan:    uint16(r.Uint32()),
		DlVlanPcp: uint8(r.Uint32() & 7),
		DlType:    uint16(r.Uint32()),
		NwTos:     uint8(r.Uint32()),
		NwProto:   uint8(r.Uint32()),
		NwSrc:     r.Uint32(),
		NwDst:     r.Uint32(),
		TpSrc:     uint16(r.Uint32()),
		TpDst:     uint16(r.Uint32()),
	}
	r.Read(m.DlSrc[:])
	r.Read(m.DlDst[:])
	return m
}

func randomPacketFields(r *rand.Rand) PacketFields {
	p := PacketFields{
		InPort:    uint16(r.Uint32() % 48),
		DlVlan:    uint16(r.Uint32()),
		DlVlanPcp: uint8(r.Uint32() & 7),
		DlType:    uint16(r.Uint32()),
		NwTos:     uint8(r.Uint32()),
		NwProto:   uint8(r.Uint32()),
		NwSrc:     r.Uint32(),
		NwDst:     r.Uint32(),
		TpSrc:     uint16(r.Uint32()),
		TpDst:     uint16(r.Uint32()),
	}
	r.Read(p.DlSrc[:])
	r.Read(p.DlDst[:])
	return p
}

// Property: FlowMod encode→decode is the identity on wire-visible state.
func TestQuickFlowModRoundTrip(t *testing.T) {
	f := func(xid uint32, cookie uint64, prio, idle, hard uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &FlowMod{
			BaseMsg:     BaseMsg{Xid: xid},
			Match:       randomMatch(r),
			Cookie:      cookie,
			Command:     FlowModCommand(r.Uint32() % 5),
			IdleTimeout: idle,
			HardTimeout: hard,
			Priority:    prio,
			BufferID:    BufferIDNone,
			OutPort:     PortNone,
		}
		n := int(r.Uint32() % 4)
		all := sampleActions()
		for i := 0; i < n; i++ {
			m.Actions = append(m.Actions, all[int(r.Uint32())%len(all)])
		}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		b2, err := Encode(got)
		if err != nil {
			return false
		}
		return bytes.Equal(b, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is length-consistent — the header length field
// always equals the buffer length.
func TestQuickEncodeLengthConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		msgs := []Message{
			&PacketIn{BufferID: BufferIDNone, Data: make([]byte, r.Uint32()%512)},
			&EchoRequest{Data: make([]byte, r.Uint32()%512)},
			&FlowMod{Match: randomMatch(r), BufferID: BufferIDNone, OutPort: PortNone},
		}
		m := msgs[int(r.Uint32())%len(msgs)]
		b, err := Encode(m)
		if err != nil {
			return false
		}
		h, err := DecodeHeader(b)
		return err == nil && int(h.Length) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize is idempotent and preserves match semantics.
func TestQuickNormalizeIdempotentAndSemantic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatch(r)
		n1 := m.Normalize()
		n2 := n1.Normalize()
		if n1 != n2 {
			return false
		}
		for i := 0; i < 16; i++ {
			p := randomPacketFields(r)
			if m.Matches(p) != n1.Matches(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a match subsumes itself, and MatchAll subsumes everything.
func TestQuickSubsumesReflexive(t *testing.T) {
	all := MatchAll()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatch(r).Normalize()
		return m.Subsumes(&m) && all.Subsumes(&m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: if a subsumes b, every packet matching b matches a.
func TestQuickSubsumesSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatch(r)
		b := a
		// Specialize b a little: clear some wildcard bits so b is narrower.
		b.Wildcards &^= r.Uint32() & WildcardAll & ^uint32(wildcardNwSrcMask|wildcardNwDstMask)
		if !a.Subsumes(&b) {
			return true // vacuous; only soundness is asserted
		}
		for i := 0; i < 16; i++ {
			p := randomPacketFields(r)
			if b.Matches(p) && !a.Matches(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	if _, err := Decode([]byte{2, 0, 0, 8, 0, 0, 0, 0}); err == nil {
		t.Error("wrong version should fail")
	}
	// Header length larger than buffer.
	b, _ := Encode(&Hello{})
	b[3] = 200
	if _, err := Decode(b); err == nil {
		t.Error("length mismatch should fail")
	}
	// Unknown type.
	b2, _ := Encode(&Hello{})
	b2[1] = 99
	if _, err := Decode(b2); err == nil {
		t.Error("unknown type should fail")
	}
	// Truncated flow mod body.
	fm, _ := Encode(&FlowMod{Match: MatchAll(), BufferID: BufferIDNone, OutPort: PortNone})
	short := fm[:HeaderLen+10]
	binaryPutLen(short)
	if _, err := Decode(short); err == nil {
		t.Error("truncated flow mod should fail")
	}
}

func binaryPutLen(b []byte) {
	b[2] = byte(len(b) >> 8)
	b[3] = byte(len(b))
}

func TestDecodeBadAction(t *testing.T) {
	m := &FlowMod{Match: MatchAll(), BufferID: BufferIDNone, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}}}
	b, _ := Encode(m)
	// Corrupt the action length to a non-multiple of 8.
	b[HeaderLen+flowModFixedLen+3] = 5
	if _, err := Decode(b); err == nil {
		t.Error("corrupt action length should fail")
	}
	// Unknown action type.
	b2, _ := Encode(m)
	b2[HeaderLen+flowModFixedLen+1] = 200
	if _, err := Decode(b2); err == nil {
		t.Error("unknown action type should fail")
	}
}

func TestActionsEqualAndCopy(t *testing.T) {
	a := sampleActions()
	b := sampleActions()
	if !ActionsEqual(a, b) {
		t.Fatal("identical lists should compare equal")
	}
	c := CopyActions(a)
	if !ActionsEqual(a, c) {
		t.Fatal("copy should compare equal")
	}
	// Mutating the copy must not affect the original.
	c[0].(*ActionOutput).Port = 99
	if ActionsEqual(a, c) {
		t.Fatal("mutated copy should differ")
	}
	if a[0].(*ActionOutput).Port == 99 {
		t.Fatal("copy aliased the original")
	}
	if ActionsEqual(a, a[:len(a)-1]) {
		t.Fatal("different lengths should differ")
	}
	if CopyActions(nil) != nil {
		t.Fatal("copy of nil should be nil")
	}
}
