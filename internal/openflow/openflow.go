// Package openflow implements the subset of the OpenFlow 1.0 wire
// protocol that LegoSDN's controller, AppVisor and NetLog layers depend
// on: the symmetric messages (Hello, Echo, Error, Barrier), the
// handshake messages (FeaturesRequest/Reply), the asynchronous switch
// events (PacketIn, FlowRemoved, PortStatus), the controller commands
// (PacketOut, FlowMod, PortMod) and the statistics family
// (StatsRequest/StatsReply with flow, aggregate, port and table bodies).
//
// The codec follows the gopacket school of packet handling: messages
// decode into caller-visible structs with exported fields, encoding is
// append-style into reusable buffers, and malformed input is reported as
// an error value, never a panic. Wire format is big-endian, exactly as
// in the OpenFlow 1.0.0 specification, so the byte streams produced here
// are valid OpenFlow 1.0 frames.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only protocol version this package speaks (OpenFlow 1.0).
const Version uint8 = 0x01

// HeaderLen is the length of the fixed ofp_header that prefixes every message.
const HeaderLen = 8

// MaxMessageLen bounds the accepted message size; the OpenFlow length
// field is 16 bits, so this is the protocol maximum.
const MaxMessageLen = 1<<16 - 1

// Type identifies an OpenFlow message type (ofp_type).
type Type uint8

// OpenFlow 1.0 message types.
const (
	TypeHello           Type = 0
	TypeError           Type = 1
	TypeEchoRequest     Type = 2
	TypeEchoReply       Type = 3
	TypeVendor          Type = 4
	TypeFeaturesRequest Type = 5
	TypeFeaturesReply   Type = 6
	TypeGetConfigReq    Type = 7
	TypeGetConfigReply  Type = 8
	TypeSetConfig       Type = 9
	TypePacketIn        Type = 10
	TypeFlowRemoved     Type = 11
	TypePortStatus      Type = 12
	TypePacketOut       Type = 13
	TypeFlowMod         Type = 14
	TypePortMod         Type = 15
	TypeStatsRequest    Type = 16
	TypeStatsReply      Type = 17
	TypeBarrierRequest  Type = 18
	TypeBarrierReply    Type = 19
)

var typeNames = map[Type]string{
	TypeHello:           "HELLO",
	TypeError:           "ERROR",
	TypeEchoRequest:     "ECHO_REQUEST",
	TypeEchoReply:       "ECHO_REPLY",
	TypeVendor:          "VENDOR",
	TypeFeaturesRequest: "FEATURES_REQUEST",
	TypeFeaturesReply:   "FEATURES_REPLY",
	TypeGetConfigReq:    "GET_CONFIG_REQUEST",
	TypeGetConfigReply:  "GET_CONFIG_REPLY",
	TypeSetConfig:       "SET_CONFIG",
	TypePacketIn:        "PACKET_IN",
	TypeFlowRemoved:     "FLOW_REMOVED",
	TypePortStatus:      "PORT_STATUS",
	TypePacketOut:       "PACKET_OUT",
	TypeFlowMod:         "FLOW_MOD",
	TypePortMod:         "PORT_MOD",
	TypeStatsRequest:    "STATS_REQUEST",
	TypeStatsReply:      "STATS_REPLY",
	TypeBarrierRequest:  "BARRIER_REQUEST",
	TypeBarrierReply:    "BARRIER_REPLY",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Port number constants (ofp_port). Ports numbered above PortMax are
// reserved for special forwarding semantics.
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8 // send back out the input port
	PortTable      uint16 = 0xfff9 // submit to flow table (PacketOut only)
	PortNormal     uint16 = 0xfffa // legacy L2/L3 processing
	PortFlood      uint16 = 0xfffb // all ports except input and flood-disabled
	PortAll        uint16 = 0xfffc // all ports except input
	PortController uint16 = 0xfffd // encapsulate and send to controller
	PortLocal      uint16 = 0xfffe // local networking stack
	PortNone       uint16 = 0xffff // not associated with any port
)

// BufferIDNone indicates a PacketIn/PacketOut that carries the full
// packet rather than referencing a switch buffer.
const BufferIDNone uint32 = 0xffffffff

// Common decode errors.
var (
	ErrTooShort      = errors.New("openflow: message truncated")
	ErrBadVersion    = errors.New("openflow: unsupported protocol version")
	ErrBadLength     = errors.New("openflow: header length field inconsistent")
	ErrUnknownType   = errors.New("openflow: unknown message type")
	ErrUnknownAction = errors.New("openflow: unknown action type")
	ErrBadAction     = errors.New("openflow: malformed action")
)

// Header is the fixed 8-byte prefix of every OpenFlow message
// (ofp_header).
type Header struct {
	Version uint8
	Type    Type
	Length  uint16 // total message length, header included
	Xid     uint32 // transaction id echoed in replies
}

// DecodeHeader parses the fixed header from the front of b.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, ErrTooShort
	}
	h := Header{
		Version: b[0],
		Type:    Type(b[1]),
		Length:  binary.BigEndian.Uint16(b[2:4]),
		Xid:     binary.BigEndian.Uint32(b[4:8]),
	}
	if h.Version != Version {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	if int(h.Length) < HeaderLen {
		return h, ErrBadLength
	}
	return h, nil
}

func putHeader(b []byte, t Type, length int, xid uint32) {
	b[0] = Version
	b[1] = byte(t)
	binary.BigEndian.PutUint16(b[2:4], uint16(length))
	binary.BigEndian.PutUint32(b[4:8], xid)
}

// Message is implemented by every OpenFlow message in this package.
// Messages are plain structs with exported fields; the interface exists
// so that the codec, the controller dispatch loop and NetLog's
// transaction journal can treat them uniformly.
type Message interface {
	// Type returns the wire type of the message.
	Type() Type
	// GetXid returns the message transaction id.
	GetXid() uint32
	// SetXid stamps the message transaction id.
	SetXid(uint32)

	// bodyLen reports the encoded length of the message body,
	// excluding the fixed header.
	bodyLen() int
	// serializeBody writes exactly bodyLen() bytes into b.
	serializeBody(b []byte)
	// decodeBody parses the body (the bytes after the header).
	decodeBody(b []byte) error
}

// BaseMsg carries the transaction id shared by all messages. It is
// embedded by every concrete message type.
type BaseMsg struct {
	Xid uint32
}

// GetXid returns the message transaction id.
func (m *BaseMsg) GetXid() uint32 { return m.Xid }

// SetXid stamps the message transaction id.
func (m *BaseMsg) SetXid(x uint32) { m.Xid = x }

// Encode serializes msg into a freshly allocated byte slice containing a
// complete OpenFlow frame.
func Encode(msg Message) ([]byte, error) {
	return AppendMessage(nil, msg)
}

// AppendMessage appends the encoded form of msg to dst and returns the
// extended slice, following the append-style serialization idiom so
// callers can reuse buffers across messages.
func AppendMessage(dst []byte, msg Message) ([]byte, error) {
	n := HeaderLen + msg.bodyLen()
	if n > MaxMessageLen {
		return dst, fmt.Errorf("openflow: message too large (%d bytes)", n)
	}
	off := len(dst)
	dst = append(dst, make([]byte, n)...)
	putHeader(dst[off:], msg.Type(), n, msg.GetXid())
	msg.serializeBody(dst[off+HeaderLen : off+n])
	return dst, nil
}

// newMessage returns a zero value of the concrete type for t.
func newMessage(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeVendor:
		return &Vendor{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypeGetConfigReq:
		return &GetConfigRequest{}, nil
	case TypeGetConfigReply:
		return &GetConfigReply{}, nil
	case TypeSetConfig:
		return &SetConfig{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePortStatus:
		return &PortStatus{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypePortMod:
		return &PortMod{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// Decode parses a single complete OpenFlow frame from b. Extra trailing
// bytes are an error; use a Decoder for stream framing.
func Decode(b []byte) (Message, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if int(h.Length) != len(b) {
		return nil, fmt.Errorf("%w: header says %d, buffer has %d", ErrBadLength, h.Length, len(b))
	}
	msg, err := newMessage(h.Type)
	if err != nil {
		return nil, err
	}
	msg.SetXid(h.Xid)
	if err := msg.decodeBody(b[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("openflow: decoding %v: %w", h.Type, err)
	}
	return msg, nil
}
