package openflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFields(r *rand.Rand) PacketFields {
	var p PacketFields
	p.InPort = uint16(r.Uint32())
	r.Read(p.DlSrc[:])
	r.Read(p.DlDst[:])
	p.DlVlan = uint16(r.Uint32())
	p.DlVlanPcp = uint8(r.Uint32())
	p.DlType = uint16(r.Uint32())
	p.NwTos = uint8(r.Uint32())
	p.NwProto = uint8(r.Uint32())
	p.NwSrc = r.Uint32()
	p.NwDst = r.Uint32()
	p.TpSrc = uint16(r.Uint32())
	p.TpDst = uint16(r.Uint32())
	return p
}

func TestPackedFieldsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomFields(rand.New(rand.NewSource(seed)))
		return p.Pack().Unpack() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedFieldsInjective(t *testing.T) {
	// Two distinct field sets must never pack to the same key: the
	// exact-match index relies on Pack being a bijection.
	r := rand.New(rand.NewSource(7))
	seen := make(map[PackedFields]PacketFields)
	for i := 0; i < 5000; i++ {
		p := randomFields(r)
		if prev, dup := seen[p.Pack()]; dup && prev != p {
			t.Fatalf("collision: %+v and %+v pack identically", prev, p)
		}
		seen[p.Pack()] = p
	}
}

func TestExactFields(t *testing.T) {
	// A fully wildcarded match is not exact.
	all := MatchAll()
	if _, ok := all.ExactFields(); ok {
		t.Error("MatchAll should not be exact")
	}
	// A match constraining every field is exact, and its key equals the
	// packed fields of a packet it matches.
	m := Match{
		InPort: 3,
		DlSrc:  EthAddr{1, 2, 3, 4, 5, 6},
		DlDst:  EthAddr{6, 5, 4, 3, 2, 1},
		DlVlan: 10, DlVlanPcp: 2, DlType: 0x0800,
		NwTos: 4, NwProto: 6,
		NwSrc: 0x0a000001, NwDst: 0x0a000002,
		TpSrc: 1234, TpDst: 80,
	}
	key, ok := m.ExactFields()
	if !ok {
		t.Fatal("fully constrained match should be exact")
	}
	p := PacketFields{
		InPort: 3,
		DlSrc:  EthAddr{1, 2, 3, 4, 5, 6},
		DlDst:  EthAddr{6, 5, 4, 3, 2, 1},
		DlVlan: 10, DlVlanPcp: 2, DlType: 0x0800,
		NwTos: 4, NwProto: 6,
		NwSrc: 0x0a000001, NwDst: 0x0a000002,
		TpSrc: 1234, TpDst: 80,
	}
	if key != p.Pack() {
		t.Error("exact key does not equal the matching packet's packed fields")
	}
	if !m.Matches(p) {
		t.Error("exact match should accept its own packet")
	}
	// Any single masked bit disqualifies exactness.
	masked := m
	masked.SetNwSrcMaskBits(1)
	if _, ok := masked.ExactFields(); ok {
		t.Error("CIDR-masked match should not be exact")
	}
	wild := m
	wild.Wildcards |= WildcardTpDst
	if _, ok := wild.ExactFields(); ok {
		t.Error("wildcarded match should not be exact")
	}
}

// FuzzPackedFields checks the packed match-key codec: any 33 bytes
// decode to fields that re-encode to the identical key, and any fields
// round-trip through the key unchanged.
func FuzzPackedFields(f *testing.F) {
	f.Add(make([]byte, PackedFieldsLen))
	f.Add([]byte{1, 2, 3})
	seed := randomFields(rand.New(rand.NewSource(1))).Pack()
	f.Add(seed[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < PackedFieldsLen {
			return
		}
		var k PackedFields
		copy(k[:], data)
		if k.Unpack().Pack() != k {
			t.Fatalf("key %x does not round-trip", k)
		}
	})
}
