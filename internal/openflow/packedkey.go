package openflow

import "encoding/binary"

// PackedFieldsLen is the encoded size of a PackedFields key: every
// PacketFields field laid out big-endian, back to back, no padding.
const PackedFieldsLen = 33

// PackedFields is a fixed-size, comparable byte encoding of a full
// twelve-tuple of packet header fields. Flow tables use it as the hash
// key of their exact-match index: a rule that constrains every field
// hits a packet iff the rule's packed match equals the packet's packed
// fields, so one map probe replaces a linear scan. The layout is
// canonical (big-endian, declaration order of PacketFields), making the
// key stable across processes — fingerprints and journals may persist it.
type PackedFields [PackedFieldsLen]byte

// Pack encodes the packet fields into their canonical packed key.
// It performs no allocations; the result is a plain value.
func (p PacketFields) Pack() PackedFields {
	var k PackedFields
	binary.BigEndian.PutUint16(k[0:2], p.InPort)
	copy(k[2:8], p.DlSrc[:])
	copy(k[8:14], p.DlDst[:])
	binary.BigEndian.PutUint16(k[14:16], p.DlVlan)
	k[16] = p.DlVlanPcp
	binary.BigEndian.PutUint16(k[17:19], p.DlType)
	k[19] = p.NwTos
	k[20] = p.NwProto
	binary.BigEndian.PutUint32(k[21:25], p.NwSrc)
	binary.BigEndian.PutUint32(k[25:29], p.NwDst)
	binary.BigEndian.PutUint16(k[29:31], p.TpSrc)
	binary.BigEndian.PutUint16(k[31:33], p.TpDst)
	return k
}

// Unpack decodes a packed key back into packet fields. Pack and Unpack
// are exact inverses: Unpack(Pack(p)) == p and Pack(Unpack(k)) == k for
// every p and k.
func (k PackedFields) Unpack() PacketFields {
	var p PacketFields
	p.InPort = binary.BigEndian.Uint16(k[0:2])
	copy(p.DlSrc[:], k[2:8])
	copy(p.DlDst[:], k[8:14])
	p.DlVlan = binary.BigEndian.Uint16(k[14:16])
	p.DlVlanPcp = k[16]
	p.DlType = binary.BigEndian.Uint16(k[17:19])
	p.NwTos = k[19]
	p.NwProto = k[20]
	p.NwSrc = binary.BigEndian.Uint32(k[21:25])
	p.NwDst = binary.BigEndian.Uint32(k[25:29])
	p.TpSrc = binary.BigEndian.Uint16(k[29:31])
	p.TpDst = binary.BigEndian.Uint16(k[31:33])
	return p
}

// ExactFields reports whether the match constrains every field exactly
// (no wildcard bits, no CIDR masking) and, if so, returns the packed
// key its packets must carry. The match must be normalized; a
// normalized match is exact iff its wildcard word is zero, because
// Normalize clamps the CIDR widths into the same word.
func (m *Match) ExactFields() (PackedFields, bool) {
	if m.Wildcards != 0 {
		return PackedFields{}, false
	}
	return PacketFields{
		InPort:    m.InPort,
		DlSrc:     m.DlSrc,
		DlDst:     m.DlDst,
		DlVlan:    m.DlVlan,
		DlVlanPcp: m.DlVlanPcp,
		DlType:    m.DlType,
		NwTos:     m.NwTos,
		NwProto:   m.NwProto,
		NwSrc:     m.NwSrc,
		NwDst:     m.NwDst,
		TpSrc:     m.TpSrc,
		TpDst:     m.TpDst,
	}.Pack(), true
}
