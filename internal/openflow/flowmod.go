package openflow

import (
	"encoding/binary"
	"fmt"
)

// FlowModCommand selects the FlowMod operation (ofp_flow_mod_command).
type FlowModCommand uint16

// FlowMod commands.
const (
	FlowModAdd          FlowModCommand = 0 // add a new flow
	FlowModModify       FlowModCommand = 1 // modify all matching flows
	FlowModModifyStrict FlowModCommand = 2 // modify flow with identical match & priority
	FlowModDelete       FlowModCommand = 3 // delete all matching flows
	FlowModDeleteStrict FlowModCommand = 4 // delete flow with identical match & priority
)

func (c FlowModCommand) String() string {
	switch c {
	case FlowModAdd:
		return "ADD"
	case FlowModModify:
		return "MODIFY"
	case FlowModModifyStrict:
		return "MODIFY_STRICT"
	case FlowModDelete:
		return "DELETE"
	case FlowModDeleteStrict:
		return "DELETE_STRICT"
	default:
		return fmt.Sprintf("COMMAND(%d)", uint16(c))
	}
}

// FlowMod flag bits (ofp_flow_mod_flags).
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0 // emit FlowRemoved when this flow expires
	FlowModFlagCheckOverlap uint16 = 1 << 1
	FlowModFlagEmerg        uint16 = 1 << 2
)

const flowModFixedLen = MatchLen + 24 // match + cookie..flags

// FlowMod adds, modifies or deletes flow-table entries (OFPT_FLOW_MOD).
// It is the canonical state-altering message NetLog journals and
// inverts.
type FlowMod struct {
	BaseMsg
	Match       Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16 // seconds; 0 = no idle expiry
	HardTimeout uint16 // seconds; 0 = no hard expiry
	Priority    uint16
	BufferID    uint32 // buffered packet to apply to, or BufferIDNone
	OutPort     uint16 // for DELETE*: require an output action to this port, or PortNone
	Flags       uint16
	Actions     []Action
}

// Type implements Message.
func (*FlowMod) Type() Type     { return TypeFlowMod }
func (m *FlowMod) bodyLen() int { return flowModFixedLen + actionsLen(m.Actions) }
func (m *FlowMod) serializeBody(b []byte) {
	m.Match.serializeTo(b[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(b[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(b[off+8:off+10], uint16(m.Command))
	binary.BigEndian.PutUint16(b[off+10:off+12], m.IdleTimeout)
	binary.BigEndian.PutUint16(b[off+12:off+14], m.HardTimeout)
	binary.BigEndian.PutUint16(b[off+14:off+16], m.Priority)
	binary.BigEndian.PutUint32(b[off+16:off+20], m.BufferID)
	binary.BigEndian.PutUint16(b[off+20:off+22], m.OutPort)
	binary.BigEndian.PutUint16(b[off+22:off+24], m.Flags)
	serializeActions(b[flowModFixedLen:], m.Actions)
}
func (m *FlowMod) decodeBody(b []byte) error {
	if len(b) < flowModFixedLen {
		return ErrTooShort
	}
	if err := m.Match.decodeFrom(b[0:MatchLen]); err != nil {
		return err
	}
	off := MatchLen
	m.Cookie = binary.BigEndian.Uint64(b[off : off+8])
	m.Command = FlowModCommand(binary.BigEndian.Uint16(b[off+8 : off+10]))
	m.IdleTimeout = binary.BigEndian.Uint16(b[off+10 : off+12])
	m.HardTimeout = binary.BigEndian.Uint16(b[off+12 : off+14])
	m.Priority = binary.BigEndian.Uint16(b[off+14 : off+16])
	m.BufferID = binary.BigEndian.Uint32(b[off+16 : off+20])
	m.OutPort = binary.BigEndian.Uint16(b[off+20 : off+22])
	m.Flags = binary.BigEndian.Uint16(b[off+22 : off+24])
	actions, err := decodeActions(b[flowModFixedLen:])
	if err != nil {
		return err
	}
	m.Actions = actions
	return nil
}

func (m *FlowMod) String() string {
	return fmt.Sprintf("flow_mod %v prio=%d match=[%v] actions=%d", m.Command, m.Priority, m.Match, len(m.Actions))
}

// Clone returns a deep copy of the FlowMod so journals and replay logs
// cannot alias the caller's actions slice.
func (m *FlowMod) Clone() *FlowMod {
	c := *m
	c.Actions = CopyActions(m.Actions)
	return &c
}

// FlowRemovedReason explains why a flow entry was removed
// (ofp_flow_removed_reason).
type FlowRemovedReason uint8

// FlowRemoved reasons.
const (
	FlowRemovedIdleTimeout FlowRemovedReason = 0
	FlowRemovedHardTimeout FlowRemovedReason = 1
	FlowRemovedDelete      FlowRemovedReason = 2
)

func (r FlowRemovedReason) String() string {
	switch r {
	case FlowRemovedIdleTimeout:
		return "IDLE_TIMEOUT"
	case FlowRemovedHardTimeout:
		return "HARD_TIMEOUT"
	case FlowRemovedDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("REASON(%d)", uint8(r))
	}
}

const flowRemovedBodyLen = MatchLen + 40

// FlowRemoved notifies the controller that a flow entry expired or was
// deleted (OFPT_FLOW_REMOVED).
type FlowRemoved struct {
	BaseMsg
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       FlowRemovedReason
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// Type implements Message.
func (*FlowRemoved) Type() Type     { return TypeFlowRemoved }
func (m *FlowRemoved) bodyLen() int { return flowRemovedBodyLen }
func (m *FlowRemoved) serializeBody(b []byte) {
	m.Match.serializeTo(b[0:MatchLen])
	off := MatchLen
	binary.BigEndian.PutUint64(b[off:off+8], m.Cookie)
	binary.BigEndian.PutUint16(b[off+8:off+10], m.Priority)
	b[off+10] = byte(m.Reason)
	// b[off+11] pad
	binary.BigEndian.PutUint32(b[off+12:off+16], m.DurationSec)
	binary.BigEndian.PutUint32(b[off+16:off+20], m.DurationNsec)
	binary.BigEndian.PutUint16(b[off+20:off+22], m.IdleTimeout)
	// b[off+22:off+24] pad
	binary.BigEndian.PutUint64(b[off+24:off+32], m.PacketCount)
	binary.BigEndian.PutUint64(b[off+32:off+40], m.ByteCount)
}
func (m *FlowRemoved) decodeBody(b []byte) error {
	if len(b) < flowRemovedBodyLen {
		return ErrTooShort
	}
	if err := m.Match.decodeFrom(b[0:MatchLen]); err != nil {
		return err
	}
	off := MatchLen
	m.Cookie = binary.BigEndian.Uint64(b[off : off+8])
	m.Priority = binary.BigEndian.Uint16(b[off+8 : off+10])
	m.Reason = FlowRemovedReason(b[off+10])
	m.DurationSec = binary.BigEndian.Uint32(b[off+12 : off+16])
	m.DurationNsec = binary.BigEndian.Uint32(b[off+16 : off+20])
	m.IdleTimeout = binary.BigEndian.Uint16(b[off+20 : off+22])
	m.PacketCount = binary.BigEndian.Uint64(b[off+24 : off+32])
	m.ByteCount = binary.BigEndian.Uint64(b[off+32 : off+40])
	return nil
}
