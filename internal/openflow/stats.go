package openflow

import (
	"encoding/binary"
	"fmt"
)

// StatsType selects a statistics body (ofp_stats_types).
type StatsType uint16

// Statistics types.
const (
	StatsTypeDesc      StatsType = 0
	StatsTypeFlow      StatsType = 1
	StatsTypeAggregate StatsType = 2
	StatsTypeTable     StatsType = 3
	StatsTypePort      StatsType = 4
)

// StatsReplyFlagMore marks a multipart StatsReply with more parts pending.
const StatsReplyFlagMore uint16 = 1 << 0

// FlowStatsRequest asks for per-flow statistics matching a filter.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8  // 0xff = all tables
	OutPort uint16 // restrict to flows outputting here, or PortNone
}

const flowStatsRequestLen = MatchLen + 4

func (r *FlowStatsRequest) serializeTo(b []byte) {
	r.Match.serializeTo(b[0:MatchLen])
	b[MatchLen] = r.TableID
	// pad
	binary.BigEndian.PutUint16(b[MatchLen+2:MatchLen+4], r.OutPort)
}

func (r *FlowStatsRequest) decodeFrom(b []byte) error {
	if len(b) < flowStatsRequestLen {
		return ErrTooShort
	}
	if err := r.Match.decodeFrom(b[0:MatchLen]); err != nil {
		return err
	}
	r.TableID = b[MatchLen]
	r.OutPort = binary.BigEndian.Uint16(b[MatchLen+2 : MatchLen+4])
	return nil
}

// PortStatsRequest asks for statistics of one port or all ports.
type PortStatsRequest struct {
	PortNo uint16 // PortNone = all ports
}

const portStatsRequestLen = 8

func (r *PortStatsRequest) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], r.PortNo)
}

func (r *PortStatsRequest) decodeFrom(b []byte) error {
	if len(b) < portStatsRequestLen {
		return ErrTooShort
	}
	r.PortNo = binary.BigEndian.Uint16(b[0:2])
	return nil
}

// StatsRequest queries switch statistics (OFPT_STATS_REQUEST). Exactly
// one of Flow/Port is consulted, selected by StatsType; Desc, Aggregate
// (which reuses Flow) and Table carry no extra request body beyond what
// Flow provides.
type StatsRequest struct {
	BaseMsg
	StatsType StatsType
	Flags     uint16
	Flow      *FlowStatsRequest // for StatsTypeFlow and StatsTypeAggregate
	Port      *PortStatsRequest // for StatsTypePort
}

// Type implements Message.
func (*StatsRequest) Type() Type { return TypeStatsRequest }
func (m *StatsRequest) bodyLen() int {
	n := 4
	switch m.StatsType {
	case StatsTypeFlow, StatsTypeAggregate:
		n += flowStatsRequestLen
	case StatsTypePort:
		n += portStatsRequestLen
	}
	return n
}
func (m *StatsRequest) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	switch m.StatsType {
	case StatsTypeFlow, StatsTypeAggregate:
		req := m.Flow
		if req == nil {
			req = &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}
		}
		req.serializeTo(b[4:])
	case StatsTypePort:
		req := m.Port
		if req == nil {
			req = &PortStatsRequest{PortNo: PortNone}
		}
		req.serializeTo(b[4:])
	}
}
func (m *StatsRequest) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.StatsType = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	switch m.StatsType {
	case StatsTypeFlow, StatsTypeAggregate:
		m.Flow = &FlowStatsRequest{}
		return m.Flow.decodeFrom(b[4:])
	case StatsTypePort:
		m.Port = &PortStatsRequest{}
		return m.Port.decodeFrom(b[4:])
	}
	return nil
}

// FlowStatsEntry is one flow's statistics in a StatsReply.
type FlowStatsEntry struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

const flowStatsEntryFixedLen = 88

// EncodedLen reports the entry's wire size, which multipart splitters
// use to budget reply parts.
func (e *FlowStatsEntry) EncodedLen() int { return flowStatsEntryFixedLen + actionsLen(e.Actions) }

func (e *FlowStatsEntry) serializeTo(b []byte) {
	n := e.EncodedLen()
	binary.BigEndian.PutUint16(b[0:2], uint16(n))
	b[2] = e.TableID
	// b[3] pad
	e.Match.serializeTo(b[4 : 4+MatchLen])
	off := 4 + MatchLen
	binary.BigEndian.PutUint32(b[off:off+4], e.DurationSec)
	binary.BigEndian.PutUint32(b[off+4:off+8], e.DurationNsec)
	binary.BigEndian.PutUint16(b[off+8:off+10], e.Priority)
	binary.BigEndian.PutUint16(b[off+10:off+12], e.IdleTimeout)
	binary.BigEndian.PutUint16(b[off+12:off+14], e.HardTimeout)
	// 6 bytes pad
	binary.BigEndian.PutUint64(b[off+20:off+28], e.Cookie)
	binary.BigEndian.PutUint64(b[off+28:off+36], e.PacketCount)
	binary.BigEndian.PutUint64(b[off+36:off+44], e.ByteCount)
	serializeActions(b[flowStatsEntryFixedLen:n], e.Actions)
}

func (e *FlowStatsEntry) decodeFrom(b []byte) (int, error) {
	if len(b) < flowStatsEntryFixedLen {
		return 0, ErrTooShort
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if n < flowStatsEntryFixedLen || n > len(b) {
		return 0, fmt.Errorf("%w: flow stats entry length %d", ErrBadLength, n)
	}
	e.TableID = b[2]
	if err := e.Match.decodeFrom(b[4 : 4+MatchLen]); err != nil {
		return 0, err
	}
	off := 4 + MatchLen
	e.DurationSec = binary.BigEndian.Uint32(b[off : off+4])
	e.DurationNsec = binary.BigEndian.Uint32(b[off+4 : off+8])
	e.Priority = binary.BigEndian.Uint16(b[off+8 : off+10])
	e.IdleTimeout = binary.BigEndian.Uint16(b[off+10 : off+12])
	e.HardTimeout = binary.BigEndian.Uint16(b[off+12 : off+14])
	e.Cookie = binary.BigEndian.Uint64(b[off+20 : off+28])
	e.PacketCount = binary.BigEndian.Uint64(b[off+28 : off+36])
	e.ByteCount = binary.BigEndian.Uint64(b[off+36 : off+44])
	actions, err := decodeActions(b[flowStatsEntryFixedLen:n])
	if err != nil {
		return 0, err
	}
	e.Actions = actions
	return n, nil
}

// AggregateStats summarizes all flows matching an aggregate request.
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

const aggregateStatsLen = 24

func (s *AggregateStats) serializeTo(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], s.PacketCount)
	binary.BigEndian.PutUint64(b[8:16], s.ByteCount)
	binary.BigEndian.PutUint32(b[16:20], s.FlowCount)
}

func (s *AggregateStats) decodeFrom(b []byte) error {
	if len(b) < aggregateStatsLen {
		return ErrTooShort
	}
	s.PacketCount = binary.BigEndian.Uint64(b[0:8])
	s.ByteCount = binary.BigEndian.Uint64(b[8:16])
	s.FlowCount = binary.BigEndian.Uint32(b[16:20])
	return nil
}

// PortStatsEntry is one port's counters in a StatsReply.
type PortStatsEntry struct {
	PortNo     uint16
	RxPackets  uint64
	TxPackets  uint64
	RxBytes    uint64
	TxBytes    uint64
	RxDropped  uint64
	TxDropped  uint64
	RxErrors   uint64
	TxErrors   uint64
	RxFrameErr uint64
	RxOverErr  uint64
	RxCrcErr   uint64
	Collisions uint64
}

const portStatsEntryLen = 104

func (e *PortStatsEntry) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], e.PortNo)
	vals := []uint64{
		e.RxPackets, e.TxPackets, e.RxBytes, e.TxBytes,
		e.RxDropped, e.TxDropped, e.RxErrors, e.TxErrors,
		e.RxFrameErr, e.RxOverErr, e.RxCrcErr, e.Collisions,
	}
	off := 8
	for _, v := range vals {
		binary.BigEndian.PutUint64(b[off:off+8], v)
		off += 8
	}
}

func (e *PortStatsEntry) decodeFrom(b []byte) error {
	if len(b) < portStatsEntryLen {
		return ErrTooShort
	}
	e.PortNo = binary.BigEndian.Uint16(b[0:2])
	vals := []*uint64{
		&e.RxPackets, &e.TxPackets, &e.RxBytes, &e.TxBytes,
		&e.RxDropped, &e.TxDropped, &e.RxErrors, &e.TxErrors,
		&e.RxFrameErr, &e.RxOverErr, &e.RxCrcErr, &e.Collisions,
	}
	off := 8
	for _, v := range vals {
		*v = binary.BigEndian.Uint64(b[off : off+8])
		off += 8
	}
	return nil
}

// StatsReply answers a StatsRequest (OFPT_STATS_REPLY). The populated
// body slice/pointer corresponds to StatsType. NetLog's counter-cache
// rewrites Flows[].PacketCount/ByteCount in flight after a rollback.
type StatsReply struct {
	BaseMsg
	StatsType StatsType
	Flags     uint16
	Flows     []FlowStatsEntry // StatsTypeFlow
	Aggregate *AggregateStats  // StatsTypeAggregate
	Ports     []PortStatsEntry // StatsTypePort
	Raw       []byte           // StatsTypeDesc/Table: opaque body
}

// Type implements Message.
func (*StatsReply) Type() Type { return TypeStatsReply }
func (m *StatsReply) bodyLen() int {
	n := 4
	switch m.StatsType {
	case StatsTypeFlow:
		for i := range m.Flows {
			n += m.Flows[i].EncodedLen()
		}
	case StatsTypeAggregate:
		n += aggregateStatsLen
	case StatsTypePort:
		n += portStatsEntryLen * len(m.Ports)
	default:
		n += len(m.Raw)
	}
	return n
}
func (m *StatsReply) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	off := 4
	switch m.StatsType {
	case StatsTypeFlow:
		for i := range m.Flows {
			n := m.Flows[i].EncodedLen()
			m.Flows[i].serializeTo(b[off : off+n])
			off += n
		}
	case StatsTypeAggregate:
		agg := m.Aggregate
		if agg == nil {
			agg = &AggregateStats{}
		}
		agg.serializeTo(b[off : off+aggregateStatsLen])
	case StatsTypePort:
		for i := range m.Ports {
			m.Ports[i].serializeTo(b[off : off+portStatsEntryLen])
			off += portStatsEntryLen
		}
	default:
		copy(b[off:], m.Raw)
	}
}
func (m *StatsReply) decodeBody(b []byte) error {
	if len(b) < 4 {
		return ErrTooShort
	}
	m.StatsType = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	body := b[4:]
	switch m.StatsType {
	case StatsTypeFlow:
		m.Flows = nil
		for len(body) > 0 {
			var e FlowStatsEntry
			n, err := e.decodeFrom(body)
			if err != nil {
				return err
			}
			m.Flows = append(m.Flows, e)
			body = body[n:]
		}
	case StatsTypeAggregate:
		m.Aggregate = &AggregateStats{}
		return m.Aggregate.decodeFrom(body)
	case StatsTypePort:
		if len(body)%portStatsEntryLen != 0 {
			return fmt.Errorf("%w: port stats body %d", ErrBadLength, len(body))
		}
		m.Ports = make([]PortStatsEntry, 0, len(body)/portStatsEntryLen)
		for len(body) > 0 {
			var e PortStatsEntry
			if err := e.decodeFrom(body[:portStatsEntryLen]); err != nil {
				return err
			}
			m.Ports = append(m.Ports, e)
			body = body[portStatsEntryLen:]
		}
	default:
		m.Raw = append([]byte(nil), body...)
	}
	return nil
}
