package openflow

import (
	"encoding/binary"
	"fmt"
)

// ActionType identifies an OpenFlow 1.0 action (ofp_action_type).
type ActionType uint16

// OpenFlow 1.0 action types.
const (
	ActionTypeOutput     ActionType = 0
	ActionTypeSetVlanVID ActionType = 1
	ActionTypeSetVlanPCP ActionType = 2
	ActionTypeStripVlan  ActionType = 3
	ActionTypeSetDlSrc   ActionType = 4
	ActionTypeSetDlDst   ActionType = 5
	ActionTypeSetNwSrc   ActionType = 6
	ActionTypeSetNwDst   ActionType = 7
	ActionTypeSetNwTos   ActionType = 8
	ActionTypeSetTpSrc   ActionType = 9
	ActionTypeSetTpDst   ActionType = 10
	ActionTypeEnqueue    ActionType = 11
)

func (t ActionType) String() string {
	switch t {
	case ActionTypeOutput:
		return "OUTPUT"
	case ActionTypeSetVlanVID:
		return "SET_VLAN_VID"
	case ActionTypeSetVlanPCP:
		return "SET_VLAN_PCP"
	case ActionTypeStripVlan:
		return "STRIP_VLAN"
	case ActionTypeSetDlSrc:
		return "SET_DL_SRC"
	case ActionTypeSetDlDst:
		return "SET_DL_DST"
	case ActionTypeSetNwSrc:
		return "SET_NW_SRC"
	case ActionTypeSetNwDst:
		return "SET_NW_DST"
	case ActionTypeSetNwTos:
		return "SET_NW_TOS"
	case ActionTypeSetTpSrc:
		return "SET_TP_SRC"
	case ActionTypeSetTpDst:
		return "SET_TP_DST"
	case ActionTypeEnqueue:
		return "ENQUEUE"
	default:
		return fmt.Sprintf("ACTION(%d)", uint16(t))
	}
}

// Action is one entry of a FlowMod or PacketOut action list.
type Action interface {
	// ActionType returns the wire type of the action.
	ActionType() ActionType
	// Len returns the encoded length in bytes (a multiple of 8).
	Len() int

	serializeTo(b []byte)
}

// ActionOutput forwards the packet out a port, optionally truncating
// packets sent to the controller to MaxLen bytes.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

// ActionType implements Action.
func (*ActionOutput) ActionType() ActionType { return ActionTypeOutput }

// Len implements Action.
func (*ActionOutput) Len() int { return 8 }

func (a *ActionOutput) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
}

func (a *ActionOutput) String() string { return fmt.Sprintf("output:%d", a.Port) }

// ActionSetVlanVID rewrites the VLAN id.
type ActionSetVlanVID struct {
	VlanVID uint16
}

// ActionType implements Action.
func (*ActionSetVlanVID) ActionType() ActionType { return ActionTypeSetVlanVID }

// Len implements Action.
func (*ActionSetVlanVID) Len() int { return 8 }

func (a *ActionSetVlanVID) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[4:6], a.VlanVID)
}

// ActionSetVlanPCP rewrites the VLAN priority.
type ActionSetVlanPCP struct {
	VlanPCP uint8
}

// ActionType implements Action.
func (*ActionSetVlanPCP) ActionType() ActionType { return ActionTypeSetVlanPCP }

// Len implements Action.
func (*ActionSetVlanPCP) Len() int { return 8 }

func (a *ActionSetVlanPCP) serializeTo(b []byte) { b[4] = a.VlanPCP }

// ActionStripVlan removes the VLAN tag.
type ActionStripVlan struct{}

// ActionType implements Action.
func (*ActionStripVlan) ActionType() ActionType { return ActionTypeStripVlan }

// Len implements Action.
func (*ActionStripVlan) Len() int { return 8 }

func (*ActionStripVlan) serializeTo(b []byte) {}

// ActionSetDlSrc rewrites the Ethernet source address.
type ActionSetDlSrc struct {
	Addr EthAddr
}

// ActionType implements Action.
func (*ActionSetDlSrc) ActionType() ActionType { return ActionTypeSetDlSrc }

// Len implements Action.
func (*ActionSetDlSrc) Len() int { return 16 }

func (a *ActionSetDlSrc) serializeTo(b []byte) { copy(b[4:10], a.Addr[:]) }

// ActionSetDlDst rewrites the Ethernet destination address.
type ActionSetDlDst struct {
	Addr EthAddr
}

// ActionType implements Action.
func (*ActionSetDlDst) ActionType() ActionType { return ActionTypeSetDlDst }

// Len implements Action.
func (*ActionSetDlDst) Len() int { return 16 }

func (a *ActionSetDlDst) serializeTo(b []byte) { copy(b[4:10], a.Addr[:]) }

// ActionSetNwSrc rewrites the IPv4 source address.
type ActionSetNwSrc struct {
	Addr uint32
}

// ActionType implements Action.
func (*ActionSetNwSrc) ActionType() ActionType { return ActionTypeSetNwSrc }

// Len implements Action.
func (*ActionSetNwSrc) Len() int { return 8 }

func (a *ActionSetNwSrc) serializeTo(b []byte) { binary.BigEndian.PutUint32(b[4:8], a.Addr) }

// ActionSetNwDst rewrites the IPv4 destination address.
type ActionSetNwDst struct {
	Addr uint32
}

// ActionType implements Action.
func (*ActionSetNwDst) ActionType() ActionType { return ActionTypeSetNwDst }

// Len implements Action.
func (*ActionSetNwDst) Len() int { return 8 }

func (a *ActionSetNwDst) serializeTo(b []byte) { binary.BigEndian.PutUint32(b[4:8], a.Addr) }

// ActionSetNwTos rewrites the IP ToS field.
type ActionSetNwTos struct {
	Tos uint8
}

// ActionType implements Action.
func (*ActionSetNwTos) ActionType() ActionType { return ActionTypeSetNwTos }

// Len implements Action.
func (*ActionSetNwTos) Len() int { return 8 }

func (a *ActionSetNwTos) serializeTo(b []byte) { b[4] = a.Tos }

// ActionSetTpSrc rewrites the transport source port.
type ActionSetTpSrc struct {
	Port uint16
}

// ActionType implements Action.
func (*ActionSetTpSrc) ActionType() ActionType { return ActionTypeSetTpSrc }

// Len implements Action.
func (*ActionSetTpSrc) Len() int { return 8 }

func (a *ActionSetTpSrc) serializeTo(b []byte) { binary.BigEndian.PutUint16(b[4:6], a.Port) }

// ActionSetTpDst rewrites the transport destination port.
type ActionSetTpDst struct {
	Port uint16
}

// ActionType implements Action.
func (*ActionSetTpDst) ActionType() ActionType { return ActionTypeSetTpDst }

// Len implements Action.
func (*ActionSetTpDst) Len() int { return 8 }

func (a *ActionSetTpDst) serializeTo(b []byte) { binary.BigEndian.PutUint16(b[4:6], a.Port) }

// ActionEnqueue forwards the packet through a port queue.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// ActionType implements Action.
func (*ActionEnqueue) ActionType() ActionType { return ActionTypeEnqueue }

// Len implements Action.
func (*ActionEnqueue) Len() int { return 16 }

func (a *ActionEnqueue) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint32(b[12:16], a.QueueID)
}

// actionsLen returns the total encoded length of an action list.
func actionsLen(actions []Action) int {
	n := 0
	for _, a := range actions {
		n += a.Len()
	}
	return n
}

// serializeActions writes the action list into b, which must be exactly
// actionsLen(actions) bytes long.
func serializeActions(b []byte, actions []Action) {
	off := 0
	for _, a := range actions {
		n := a.Len()
		binary.BigEndian.PutUint16(b[off:off+2], uint16(a.ActionType()))
		binary.BigEndian.PutUint16(b[off+2:off+4], uint16(n))
		a.serializeTo(b[off : off+n])
		off += n
	}
}

// decodeActions parses an action list occupying the whole of b.
func decodeActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, ErrBadAction
		}
		t := ActionType(binary.BigEndian.Uint16(b[0:2]))
		n := int(binary.BigEndian.Uint16(b[2:4]))
		if n < 8 || n%8 != 0 || n > len(b) {
			return nil, fmt.Errorf("%w: type %v length %d", ErrBadAction, t, n)
		}
		a, err := decodeAction(t, b[:n])
		if err != nil {
			return nil, err
		}
		actions = append(actions, a)
		b = b[n:]
	}
	return actions, nil
}

func decodeAction(t ActionType, b []byte) (Action, error) {
	wantLen := func(n int) error {
		if len(b) != n {
			return fmt.Errorf("%w: %v wants %d bytes, got %d", ErrBadAction, t, n, len(b))
		}
		return nil
	}
	switch t {
	case ActionTypeOutput:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionOutput{
			Port:   binary.BigEndian.Uint16(b[4:6]),
			MaxLen: binary.BigEndian.Uint16(b[6:8]),
		}, nil
	case ActionTypeSetVlanVID:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetVlanVID{VlanVID: binary.BigEndian.Uint16(b[4:6])}, nil
	case ActionTypeSetVlanPCP:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetVlanPCP{VlanPCP: b[4]}, nil
	case ActionTypeStripVlan:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionStripVlan{}, nil
	case ActionTypeSetDlSrc:
		if err := wantLen(16); err != nil {
			return nil, err
		}
		a := &ActionSetDlSrc{}
		copy(a.Addr[:], b[4:10])
		return a, nil
	case ActionTypeSetDlDst:
		if err := wantLen(16); err != nil {
			return nil, err
		}
		a := &ActionSetDlDst{}
		copy(a.Addr[:], b[4:10])
		return a, nil
	case ActionTypeSetNwSrc:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetNwSrc{Addr: binary.BigEndian.Uint32(b[4:8])}, nil
	case ActionTypeSetNwDst:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetNwDst{Addr: binary.BigEndian.Uint32(b[4:8])}, nil
	case ActionTypeSetNwTos:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetNwTos{Tos: b[4]}, nil
	case ActionTypeSetTpSrc:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetTpSrc{Port: binary.BigEndian.Uint16(b[4:6])}, nil
	case ActionTypeSetTpDst:
		if err := wantLen(8); err != nil {
			return nil, err
		}
		return &ActionSetTpDst{Port: binary.BigEndian.Uint16(b[4:6])}, nil
	case ActionTypeEnqueue:
		if err := wantLen(16); err != nil {
			return nil, err
		}
		return &ActionEnqueue{
			Port:    binary.BigEndian.Uint16(b[4:6]),
			QueueID: binary.BigEndian.Uint32(b[12:16]),
		}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownAction, uint16(t))
	}
}

// ActionsEqual reports whether two action lists are identical in order,
// type and arguments. Crash-Pad's N-version voter compares app outputs
// with this.
func ActionsEqual(a, b []Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ActionType() != b[i].ActionType() {
			return false
		}
		buf1 := make([]byte, a[i].Len())
		buf2 := make([]byte, b[i].Len())
		serializeActions(buf1, a[i:i+1])
		serializeActions(buf2, b[i:i+1])
		if string(buf1) != string(buf2) {
			return false
		}
	}
	return true
}

// CopyActions returns a deep copy of an action list, so NetLog's journal
// entries cannot alias mutable app-owned actions.
func CopyActions(actions []Action) []Action {
	if actions == nil {
		return nil
	}
	out := make([]Action, len(actions))
	for i, a := range actions {
		switch v := a.(type) {
		case *ActionOutput:
			c := *v
			out[i] = &c
		case *ActionSetVlanVID:
			c := *v
			out[i] = &c
		case *ActionSetVlanPCP:
			c := *v
			out[i] = &c
		case *ActionStripVlan:
			c := *v
			out[i] = &c
		case *ActionSetDlSrc:
			c := *v
			out[i] = &c
		case *ActionSetDlDst:
			c := *v
			out[i] = &c
		case *ActionSetNwSrc:
			c := *v
			out[i] = &c
		case *ActionSetNwDst:
			c := *v
			out[i] = &c
		case *ActionSetNwTos:
			c := *v
			out[i] = &c
		case *ActionSetTpSrc:
			c := *v
			out[i] = &c
		case *ActionSetTpDst:
			c := *v
			out[i] = &c
		case *ActionEnqueue:
			c := *v
			out[i] = &c
		default:
			out[i] = a
		}
	}
	return out
}
