package openflow

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestReaderStreamFraming(t *testing.T) {
	var buf []byte
	msgs := []Message{
		&Hello{BaseMsg{Xid: 1}},
		&EchoRequest{BaseMsg: BaseMsg{Xid: 2}, Data: []byte("x")},
		&FlowMod{BaseMsg: BaseMsg{Xid: 3}, Match: MatchAll(), BufferID: BufferIDNone, OutPort: PortNone,
			Actions: []Action{&ActionOutput{Port: 1}}},
		&BarrierRequest{BaseMsg{Xid: 4}},
	}
	var err error
	for _, m := range msgs {
		buf, err = AppendMessage(buf, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(bytes.NewReader(buf))
	for i, want := range msgs {
		got, err := rd.ReadMessage()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type() != want.Type() || got.GetXid() != want.GetXid() {
			t.Fatalf("msg %d: got %v xid=%d", i, got.Type(), got.GetXid())
		}
	}
	if _, err := rd.ReadMessage(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	b, _ := Encode(&EchoRequest{Data: []byte("hello")})
	rd := NewReader(bytes.NewReader(b[:len(b)-2]))
	if _, err := rd.ReadMessage(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
}

func TestConnPipeExchange(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	done := make(chan error, 1)
	go func() {
		msg, err := b.ReadMessage()
		if err != nil {
			done <- err
			return
		}
		// Echo back with the same xid, as a switch would.
		done <- b.WriteMessage(&EchoReply{BaseMsg: BaseMsg{Xid: msg.GetXid()}, Data: msg.(*EchoRequest).Data})
	}()

	req := &EchoRequest{BaseMsg: BaseMsg{Xid: 77}, Data: []byte("liveness")}
	if err := a.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	reply, err := a.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	er, ok := reply.(*EchoReply)
	if !ok || er.Xid != 77 || string(er.Data) != "liveness" {
		t.Fatalf("bad reply %#v", reply)
	}
}

func TestConnConcurrentWriters(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := a.WriteMessage(&Hello{}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}

	got := 0
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for got < writers*perWriter {
			m, err := b.ReadMessage()
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if m.Type() != TypeHello {
				t.Errorf("interleaved frame corrupted: got %v", m.Type())
				return
			}
			got++
		}
	}()
	wg.Wait()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatalf("reader stalled after %d frames", got)
	}
}

func TestConnAutoXid(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 2; i++ {
			if _, err := b.ReadMessage(); err != nil {
				return
			}
		}
	}()
	m1 := &Hello{}
	m2 := &Hello{}
	if err := a.WriteMessage(m1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteMessage(m2); err != nil {
		t.Fatal(err)
	}
	if m1.Xid == 0 || m2.Xid == 0 || m1.Xid == m2.Xid {
		t.Fatalf("auto xids not unique: %d %d", m1.Xid, m2.Xid)
	}
}

func TestXIDSourceSkipsZero(t *testing.T) {
	var s XIDSource
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		x := s.Next()
		if x == 0 {
			t.Fatal("zero xid issued")
		}
		if seen[x] {
			t.Fatalf("duplicate xid %d", x)
		}
		seen[x] = true
	}
}
