package openflow

import (
	"encoding/binary"
	"fmt"
)

// PhyPortLen is the encoded size of an ofp_phy_port structure.
const PhyPortLen = 48

// Port config bits (ofp_port_config).
const (
	PortConfigDown    uint32 = 1 << 0 // port administratively down
	PortConfigNoFlood uint32 = 1 << 4 // excluded from OFPP_FLOOD
	PortConfigNoFwd   uint32 = 1 << 5
	PortConfigNoPktIn uint32 = 1 << 6
)

// Port state bits (ofp_port_state).
const (
	PortStateLinkDown uint32 = 1 << 0 // no physical link present
)

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     EthAddr
	Name       string // at most 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

// LinkDown reports whether the port's physical link is down.
func (p *PhyPort) LinkDown() bool { return p.State&PortStateLinkDown != 0 }

func (p *PhyPort) serializeTo(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	for i := 8; i < 24; i++ {
		b[i] = 0
	}
	copy(b[8:23], name)
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
}

func (p *PhyPort) decodeFrom(b []byte) error {
	if len(b) < PhyPortLen {
		return ErrTooShort
	}
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	p.Name = string(name[:end])
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return nil
}

// PacketInReason explains why the switch sent a PacketIn
// (ofp_packet_in_reason).
type PacketInReason uint8

// PacketIn reasons.
const (
	PacketInReasonNoMatch PacketInReason = 0 // no matching flow entry
	PacketInReasonAction  PacketInReason = 1 // explicit output-to-controller action
)

const packetInFixedLen = 10

// PacketIn delivers a packet (or its prefix) to the controller
// (OFPT_PACKET_IN). It is the dominant event type in the control loop.
type PacketIn struct {
	BaseMsg
	BufferID uint32 // switch buffer holding the packet, or BufferIDNone
	TotalLen uint16 // full length of the original frame
	InPort   uint16
	Reason   PacketInReason
	Data     []byte // the (possibly truncated) frame
}

// Type implements Message.
func (*PacketIn) Type() Type     { return TypePacketIn }
func (m *PacketIn) bodyLen() int { return packetInFixedLen + len(m.Data) }
func (m *PacketIn) serializeBody(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(b[6:8], m.InPort)
	b[8] = byte(m.Reason)
	// b[9] pad
	copy(b[packetInFixedLen:], m.Data)
}
func (m *PacketIn) decodeBody(b []byte) error {
	if len(b) < packetInFixedLen {
		return ErrTooShort
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.TotalLen = binary.BigEndian.Uint16(b[4:6])
	m.InPort = binary.BigEndian.Uint16(b[6:8])
	m.Reason = PacketInReason(b[8])
	m.Data = append([]byte(nil), b[packetInFixedLen:]...)
	return nil
}

func (m *PacketIn) String() string {
	return fmt.Sprintf("packet_in port=%d len=%d reason=%d", m.InPort, m.TotalLen, m.Reason)
}

const packetOutFixedLen = 8

// PacketOut instructs the switch to emit a packet (OFPT_PACKET_OUT),
// either a buffered one (BufferID) or the raw frame in Data.
type PacketOut struct {
	BaseMsg
	BufferID uint32
	InPort   uint16 // packet's original input port, or PortNone
	Actions  []Action
	Data     []byte // ignored when BufferID != BufferIDNone
}

// Type implements Message.
func (*PacketOut) Type() Type { return TypePacketOut }
func (m *PacketOut) bodyLen() int {
	return packetOutFixedLen + actionsLen(m.Actions) + len(m.Data)
}
func (m *PacketOut) serializeBody(b []byte) {
	al := actionsLen(m.Actions)
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	binary.BigEndian.PutUint16(b[6:8], uint16(al))
	serializeActions(b[packetOutFixedLen:packetOutFixedLen+al], m.Actions)
	copy(b[packetOutFixedLen+al:], m.Data)
}
func (m *PacketOut) decodeBody(b []byte) error {
	if len(b) < packetOutFixedLen {
		return ErrTooShort
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	al := int(binary.BigEndian.Uint16(b[6:8]))
	if packetOutFixedLen+al > len(b) {
		return fmt.Errorf("%w: actions_len %d exceeds body", ErrBadLength, al)
	}
	actions, err := decodeActions(b[packetOutFixedLen : packetOutFixedLen+al])
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = append([]byte(nil), b[packetOutFixedLen+al:]...)
	return nil
}

// Clone returns a deep copy of the PacketOut.
func (m *PacketOut) Clone() *PacketOut {
	c := *m
	c.Actions = CopyActions(m.Actions)
	c.Data = append([]byte(nil), m.Data...)
	return &c
}

// PortReason explains a PortStatus change (ofp_port_reason).
type PortReason uint8

// PortStatus reasons.
const (
	PortReasonAdd    PortReason = 0
	PortReasonDelete PortReason = 1
	PortReasonModify PortReason = 2
)

func (r PortReason) String() string {
	switch r {
	case PortReasonAdd:
		return "ADD"
	case PortReasonDelete:
		return "DELETE"
	case PortReasonModify:
		return "MODIFY"
	default:
		return fmt.Sprintf("PORT_REASON(%d)", uint8(r))
	}
}

const portStatusBodyLen = 8 + PhyPortLen

// PortStatus notifies the controller of a port change (OFPT_PORT_STATUS).
// Crash-Pad's equivalence transforms operate on these events.
type PortStatus struct {
	BaseMsg
	Reason PortReason
	Desc   PhyPort
}

// Type implements Message.
func (*PortStatus) Type() Type     { return TypePortStatus }
func (m *PortStatus) bodyLen() int { return portStatusBodyLen }
func (m *PortStatus) serializeBody(b []byte) {
	b[0] = byte(m.Reason)
	// b[1:8] pad
	m.Desc.serializeTo(b[8 : 8+PhyPortLen])
}
func (m *PortStatus) decodeBody(b []byte) error {
	if len(b) < portStatusBodyLen {
		return ErrTooShort
	}
	m.Reason = PortReason(b[0])
	return m.Desc.decodeFrom(b[8 : 8+PhyPortLen])
}

func (m *PortStatus) String() string {
	return fmt.Sprintf("port_status %v port=%d state=0x%x", m.Reason, m.Desc.PortNo, m.Desc.State)
}

// PortMod changes a port's administrative configuration (OFPT_PORT_MOD).
type PortMod struct {
	BaseMsg
	PortNo    uint16
	HWAddr    EthAddr
	Config    uint32
	Mask      uint32 // which Config bits to change
	Advertise uint32
}

// Type implements Message.
func (*PortMod) Type() Type     { return TypePortMod }
func (m *PortMod) bodyLen() int { return 24 }
func (m *PortMod) serializeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], m.PortNo)
	copy(b[2:8], m.HWAddr[:])
	binary.BigEndian.PutUint32(b[8:12], m.Config)
	binary.BigEndian.PutUint32(b[12:16], m.Mask)
	binary.BigEndian.PutUint32(b[16:20], m.Advertise)
	// b[20:24] pad
}
func (m *PortMod) decodeBody(b []byte) error {
	if len(b) < 24 {
		return ErrTooShort
	}
	m.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(m.HWAddr[:], b[2:8])
	m.Config = binary.BigEndian.Uint32(b[8:12])
	m.Mask = binary.BigEndian.Uint32(b[12:16])
	m.Advertise = binary.BigEndian.Uint32(b[16:20])
	return nil
}
