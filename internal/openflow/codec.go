package openflow

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// XIDSource hands out transaction ids. It is safe for concurrent use.
type XIDSource struct {
	next atomic.Uint32
}

// Next returns a fresh, non-zero transaction id.
func (s *XIDSource) Next() uint32 {
	for {
		x := s.next.Add(1)
		if x != 0 {
			return x
		}
	}
}

// Reader decodes a stream of OpenFlow frames from an io.Reader. It owns
// a reusable buffer, so a single Reader must not be shared between
// goroutines.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r for frame-at-a-time reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 32<<10), buf: make([]byte, 0, 512)}
}

// ReadMessage reads and decodes the next complete frame. It returns
// io.EOF (possibly wrapped) when the stream ends cleanly between frames.
func (d *Reader) ReadMessage() (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	n := int(h.Length)
	if cap(d.buf) < n {
		d.buf = make([]byte, 0, n)
	}
	frame := d.buf[:n]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(d.r, frame[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(frame)
}

// Conn is a message-oriented wrapper over a byte-stream connection.
// Reads must come from a single goroutine; writes are serialized
// internally and may come from many.
type Conn struct {
	conn net.Conn
	rd   *Reader

	wmu  sync.Mutex
	wbuf []byte
	w    *bufio.Writer

	xids XIDSource
}

// NewConn wraps a stream connection for OpenFlow framing.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		conn: c,
		rd:   NewReader(c),
		w:    bufio.NewWriterSize(c, 32<<10),
	}
}

// ReadMessage reads the next frame. Not safe for concurrent use.
func (c *Conn) ReadMessage() (Message, error) { return c.rd.ReadMessage() }

// WriteMessage encodes and sends msg, stamping a fresh XID when the
// message has none. Safe for concurrent use.
func (c *Conn) WriteMessage(msg Message) error {
	if msg.GetXid() == 0 {
		msg.SetXid(c.xids.Next())
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b, err := AppendMessage(c.wbuf[:0], msg)
	if err != nil {
		return err
	}
	c.wbuf = b[:0]
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

// NextXid returns a fresh transaction id from the connection's source.
func (c *Conn) NextXid() uint32 { return c.xids.Next() }

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Close closes the underlying connection; any blocked read or write is
// unblocked with an error.
func (c *Conn) Close() error { return c.conn.Close() }

// RemoteAddr reports the peer address of the underlying connection.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Pipe returns a connected pair of in-memory OpenFlow connections, used
// by the simulator to attach switches to the controller without a real
// network (net.Pipe is synchronous; each side must keep reading).
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
