package openflow

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
)

// MatchLen is the encoded size of an ofp_match structure.
const MatchLen = 40

// Wildcard flag bits (ofp_flow_wildcards). A set bit means the
// corresponding match field is ignored.
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDlVlan  uint32 = 1 << 1
	WildcardDlSrc   uint32 = 1 << 2
	WildcardDlDst   uint32 = 1 << 3
	WildcardDlType  uint32 = 1 << 4
	WildcardNwProto uint32 = 1 << 5
	WildcardTpSrc   uint32 = 1 << 6
	WildcardTpDst   uint32 = 1 << 7

	// Source/destination IP wildcards are 6-bit CIDR-style mask widths:
	// the value is the number of low-order bits of the address to ignore,
	// values >= 32 meaning "wildcard the whole address".
	wildcardNwSrcShift        = 8
	wildcardNwSrcMask  uint32 = 0x3f << wildcardNwSrcShift
	wildcardNwDstShift        = 14
	wildcardNwDstMask  uint32 = 0x3f << wildcardNwDstShift

	WildcardDlVlanPcp uint32 = 1 << 20
	WildcardNwTos     uint32 = 1 << 21

	// WildcardAll has every wildcard bit set: the match accepts every packet.
	WildcardAll uint32 = ((1 << 22) - 1)
)

// EthAddr is a 48-bit Ethernet MAC address.
type EthAddr [6]byte

func (a EthAddr) String() string { return net.HardwareAddr(a[:]).String() }

// IsBroadcast reports whether a is ff:ff:ff:ff:ff:ff.
func (a EthAddr) IsBroadcast() bool {
	return a == EthAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit of a is set.
func (a EthAddr) IsMulticast() bool { return a[0]&0x01 != 0 }

// Match is the OpenFlow 1.0 twelve-tuple flow match (ofp_match). The
// zero value matches nothing in particular; use MatchAll for the
// match-everything wildcard.
type Match struct {
	Wildcards uint32  // bitmap of ignored fields
	InPort    uint16  // switch input port
	DlSrc     EthAddr // Ethernet source
	DlDst     EthAddr // Ethernet destination
	DlVlan    uint16  // input VLAN id
	DlVlanPcp uint8   // input VLAN priority
	DlType    uint16  // Ethernet frame type
	NwTos     uint8   // IP ToS (DSCP field, 6 bits)
	NwProto   uint8   // IP protocol, or lower 8 bits of ARP opcode
	NwSrc     uint32  // IPv4 source
	NwDst     uint32  // IPv4 destination
	TpSrc     uint16  // TCP/UDP source port
	TpDst     uint16  // TCP/UDP destination port
}

// MatchAll returns a match whose wildcards accept every packet.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// NwSrcMaskBits returns the number of wildcarded low-order bits of the
// source address, clamped to 32.
func (m *Match) NwSrcMaskBits() uint {
	n := uint((m.Wildcards & wildcardNwSrcMask) >> wildcardNwSrcShift)
	if n > 32 {
		n = 32
	}
	return n
}

// NwDstMaskBits returns the number of wildcarded low-order bits of the
// destination address, clamped to 32.
func (m *Match) NwDstMaskBits() uint {
	n := uint((m.Wildcards & wildcardNwDstMask) >> wildcardNwDstShift)
	if n > 32 {
		n = 32
	}
	return n
}

// SetNwSrcMaskBits sets the number of wildcarded low-order source
// address bits (0 = exact match, >=32 = fully wildcarded).
func (m *Match) SetNwSrcMaskBits(bits uint) {
	if bits > 63 {
		bits = 63
	}
	m.Wildcards = (m.Wildcards &^ wildcardNwSrcMask) | (uint32(bits) << wildcardNwSrcShift)
}

// SetNwDstMaskBits sets the number of wildcarded low-order destination
// address bits (0 = exact match, >=32 = fully wildcarded).
func (m *Match) SetNwDstMaskBits(bits uint) {
	if bits > 63 {
		bits = 63
	}
	m.Wildcards = (m.Wildcards &^ wildcardNwDstMask) | (uint32(bits) << wildcardNwDstShift)
}

func maskFromBits(bits uint) uint32 {
	if bits >= 32 {
		return 0
	}
	return ^uint32(0) << bits
}

// Normalize canonicalizes m so that wildcarded fields are zeroed and the
// CIDR mask widths are clamped to 32. Two normalized matches are
// semantically identical iff they are ==, which lets flow tables use
// Match values as map keys for "strict" rule identity.
func (m Match) Normalize() Match {
	if m.Wildcards&WildcardInPort != 0 {
		m.InPort = 0
	}
	if m.Wildcards&WildcardDlSrc != 0 {
		m.DlSrc = EthAddr{}
	}
	if m.Wildcards&WildcardDlDst != 0 {
		m.DlDst = EthAddr{}
	}
	if m.Wildcards&WildcardDlVlan != 0 {
		m.DlVlan = 0
	}
	if m.Wildcards&WildcardDlVlanPcp != 0 {
		m.DlVlanPcp = 0
	}
	if m.Wildcards&WildcardDlType != 0 {
		m.DlType = 0
	}
	if m.Wildcards&WildcardNwTos != 0 {
		m.NwTos = 0
	}
	if m.Wildcards&WildcardNwProto != 0 {
		m.NwProto = 0
	}
	if m.Wildcards&WildcardTpSrc != 0 {
		m.TpSrc = 0
	}
	if m.Wildcards&WildcardTpDst != 0 {
		m.TpDst = 0
	}
	srcBits := m.NwSrcMaskBits()
	dstBits := m.NwDstMaskBits()
	m.SetNwSrcMaskBits(srcBits)
	m.SetNwDstMaskBits(dstBits)
	m.NwSrc &= maskFromBits(srcBits)
	m.NwDst &= maskFromBits(dstBits)
	return m
}

// PacketFields is the subset of packet header fields a Match is tested
// against; the network simulator's packets expose one of these.
type PacketFields struct {
	InPort    uint16
	DlSrc     EthAddr
	DlDst     EthAddr
	DlVlan    uint16
	DlVlanPcp uint8
	DlType    uint16
	NwTos     uint8
	NwProto   uint8
	NwSrc     uint32
	NwDst     uint32
	TpSrc     uint16
	TpDst     uint16
}

// Matches reports whether the packet fields p satisfy match m.
func (m *Match) Matches(p PacketFields) bool {
	w := m.Wildcards
	switch {
	case w&WildcardInPort == 0 && m.InPort != p.InPort:
		return false
	case w&WildcardDlSrc == 0 && m.DlSrc != p.DlSrc:
		return false
	case w&WildcardDlDst == 0 && m.DlDst != p.DlDst:
		return false
	case w&WildcardDlVlan == 0 && m.DlVlan != p.DlVlan:
		return false
	case w&WildcardDlVlanPcp == 0 && m.DlVlanPcp != p.DlVlanPcp:
		return false
	case w&WildcardDlType == 0 && m.DlType != p.DlType:
		return false
	case w&WildcardNwTos == 0 && m.NwTos != p.NwTos:
		return false
	case w&WildcardNwProto == 0 && m.NwProto != p.NwProto:
		return false
	case w&WildcardTpSrc == 0 && m.TpSrc != p.TpSrc:
		return false
	case w&WildcardTpDst == 0 && m.TpDst != p.TpDst:
		return false
	}
	if mask := maskFromBits(m.NwSrcMaskBits()); m.NwSrc&mask != p.NwSrc&mask {
		return false
	}
	if mask := maskFromBits(m.NwDstMaskBits()); m.NwDst&mask != p.NwDst&mask {
		return false
	}
	return true
}

// Subsumes reports whether every packet matched by other is also matched
// by m (m is at least as general as other). Used by flow tables to
// implement non-strict FlowMod delete/modify semantics.
func (m *Match) Subsumes(other *Match) bool {
	type field struct {
		bit      uint32
		eq       bool
		otherHas bool
	}
	checks := []field{
		{WildcardInPort, m.InPort == other.InPort, other.Wildcards&WildcardInPort == 0},
		{WildcardDlSrc, m.DlSrc == other.DlSrc, other.Wildcards&WildcardDlSrc == 0},
		{WildcardDlDst, m.DlDst == other.DlDst, other.Wildcards&WildcardDlDst == 0},
		{WildcardDlVlan, m.DlVlan == other.DlVlan, other.Wildcards&WildcardDlVlan == 0},
		{WildcardDlVlanPcp, m.DlVlanPcp == other.DlVlanPcp, other.Wildcards&WildcardDlVlanPcp == 0},
		{WildcardDlType, m.DlType == other.DlType, other.Wildcards&WildcardDlType == 0},
		{WildcardNwTos, m.NwTos == other.NwTos, other.Wildcards&WildcardNwTos == 0},
		{WildcardNwProto, m.NwProto == other.NwProto, other.Wildcards&WildcardNwProto == 0},
		{WildcardTpSrc, m.TpSrc == other.TpSrc, other.Wildcards&WildcardTpSrc == 0},
		{WildcardTpDst, m.TpDst == other.TpDst, other.Wildcards&WildcardTpDst == 0},
	}
	for _, c := range checks {
		if m.Wildcards&c.bit != 0 {
			continue // m ignores this field: anything in other is fine
		}
		// m constrains the field, so other must constrain it identically.
		if !c.otherHas || !c.eq {
			return false
		}
	}
	// CIDR fields: m's mask must be at least as coarse, and the
	// constrained prefixes must agree under m's mask.
	mSrc, oSrc := m.NwSrcMaskBits(), other.NwSrcMaskBits()
	if mSrc < oSrc {
		return false
	}
	if mask := maskFromBits(mSrc); m.NwSrc&mask != other.NwSrc&mask {
		return false
	}
	mDst, oDst := m.NwDstMaskBits(), other.NwDstMaskBits()
	if mDst < oDst {
		return false
	}
	if mask := maskFromBits(mDst); m.NwDst&mask != other.NwDst&mask {
		return false
	}
	return true
}

func (m *Match) serializeTo(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DlSrc[:])
	copy(b[12:18], m.DlDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DlVlan)
	b[20] = m.DlVlanPcp
	b[21] = 0 // pad
	binary.BigEndian.PutUint16(b[22:24], m.DlType)
	b[24] = m.NwTos
	b[25] = m.NwProto
	b[26], b[27] = 0, 0 // pad
	binary.BigEndian.PutUint32(b[28:32], m.NwSrc)
	binary.BigEndian.PutUint32(b[32:36], m.NwDst)
	binary.BigEndian.PutUint16(b[36:38], m.TpSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TpDst)
}

func (m *Match) decodeFrom(b []byte) error {
	if len(b) < MatchLen {
		return ErrTooShort
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DlSrc[:], b[6:12])
	copy(m.DlDst[:], b[12:18])
	m.DlVlan = binary.BigEndian.Uint16(b[18:20])
	m.DlVlanPcp = b[20]
	m.DlType = binary.BigEndian.Uint16(b[22:24])
	m.NwTos = b[24]
	m.NwProto = b[25]
	m.NwSrc = binary.BigEndian.Uint32(b[28:32])
	m.NwDst = binary.BigEndian.Uint32(b[32:36])
	m.TpSrc = binary.BigEndian.Uint16(b[36:38])
	m.TpDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}

// String renders the non-wildcarded fields, e.g.
// "in_port=1,dl_dst=aa:bb:cc:dd:ee:ff".
func (m Match) String() string {
	if m.Wildcards == WildcardAll {
		return "any"
	}
	var parts []string
	add := func(bit uint32, s string) {
		if m.Wildcards&bit == 0 {
			parts = append(parts, s)
		}
	}
	add(WildcardInPort, fmt.Sprintf("in_port=%d", m.InPort))
	add(WildcardDlSrc, "dl_src="+m.DlSrc.String())
	add(WildcardDlDst, "dl_dst="+m.DlDst.String())
	add(WildcardDlVlan, fmt.Sprintf("dl_vlan=%d", m.DlVlan))
	add(WildcardDlVlanPcp, fmt.Sprintf("dl_vlan_pcp=%d", m.DlVlanPcp))
	add(WildcardDlType, fmt.Sprintf("dl_type=0x%04x", m.DlType))
	add(WildcardNwTos, fmt.Sprintf("nw_tos=%d", m.NwTos))
	add(WildcardNwProto, fmt.Sprintf("nw_proto=%d", m.NwProto))
	if bits := m.NwSrcMaskBits(); bits < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", ipString(m.NwSrc), 32-bits))
	}
	if bits := m.NwDstMaskBits(); bits < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", ipString(m.NwDst), 32-bits))
	}
	add(WildcardTpSrc, fmt.Sprintf("tp_src=%d", m.TpSrc))
	add(WildcardTpDst, fmt.Sprintf("tp_dst=%d", m.TpDst))
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

func ipString(ip uint32) string {
	return net.IPv4(byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)).String()
}

// IPv4ToUint converts a net.IP to the uint32 representation used in
// matches; non-IPv4 addresses yield zero.
func IPv4ToUint(ip net.IP) uint32 {
	v4 := ip.To4()
	if v4 == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v4)
}
