package apps

import (
	"bytes"
	"encoding/gob"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// ShortestPathRouter plays RouteFlow's role from Table 2: routing. It
// learns host attachment points from packet-ins (a device manager, in
// FloodLight terms), computes shortest paths over the controller's
// discovered topology and installs a rule per switch along the path.
type ShortestPathRouter struct {
	IdleTimeout uint16
	Priority    uint16

	// mu guards the learned state against concurrent management reads.
	mu sync.Mutex
	// hostAt maps a MAC to its attachment point.
	hostAt map[openflow.EthAddr]attachment
	// pathsInstalled counts installed paths, exposed for tests/benches.
	pathsInstalled int
}

type attachment struct {
	DPID uint64
	Port uint16
}

// NewShortestPathRouter returns a router with defaults (idle 60s,
// priority 20).
func NewShortestPathRouter() *ShortestPathRouter {
	return &ShortestPathRouter{IdleTimeout: 60, Priority: 20,
		hostAt: make(map[openflow.EthAddr]attachment)}
}

// Name implements controller.App.
func (*ShortestPathRouter) Name() string { return "routing" }

// Subscriptions implements controller.App.
func (*ShortestPathRouter) Subscriptions() []controller.EventKind {
	return []controller.EventKind{
		controller.EventPacketIn,
		controller.EventSwitchDown,
		controller.EventPortStatus,
	}
}

// PathsInstalled reports how many full paths the router has programmed.
func (r *ShortestPathRouter) PathsInstalled() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pathsInstalled
}

// KnownHosts reports how many attachment points are learned.
func (r *ShortestPathRouter) KnownHosts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.hostAt)
}

// HandleEvent implements controller.App.
func (r *ShortestPathRouter) HandleEvent(ctx controller.Context, ev controller.Event) error {
	switch ev.Kind {
	case controller.EventSwitchDown:
		// Forget hosts behind the dead switch; paths through it will be
		// recomputed on demand.
		r.mu.Lock()
		for mac, at := range r.hostAt {
			if at.DPID == ev.DPID {
				delete(r.hostAt, mac)
			}
		}
		r.mu.Unlock()
		return nil
	case controller.EventPortStatus:
		// Link churn invalidates nothing we cache (paths are computed
		// per packet-in from live topology).
		return nil
	case controller.EventPacketIn:
	default:
		return nil
	}

	pin := ev.Message.(*openflow.PacketIn)
	f, err := parseEthernet(pin.Data)
	if err != nil {
		return nil
	}
	// Device learning: hosts live on non-inter-switch ports. A port
	// that appears in the topology is inter-switch; skip learning there.
	if !f.src.IsMulticast() && !r.isInterSwitchPort(ctx, ev.DPID, pin.InPort) {
		r.mu.Lock()
		r.hostAt[f.src] = attachment{ev.DPID, pin.InPort}
		r.mu.Unlock()
	}

	r.mu.Lock()
	dst, known := r.hostAt[f.dst]
	r.mu.Unlock()
	if !known || f.dst.IsBroadcast() || f.dst.IsMulticast() {
		return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
			BufferID: pin.BufferID,
			InPort:   pin.InPort,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
			Data:     packetOutData(pin),
		})
	}

	path, ok := r.shortestPath(ctx, ev.DPID, dst.DPID)
	if !ok {
		// No route (partitioned); drop by inaction.
		return nil
	}
	// Install a dl_dst rule on every switch along the path.
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlDst
	m.DlDst = f.dst
	outPorts, ok := r.pathOutPorts(ctx, path, dst.Port)
	if !ok {
		return nil
	}
	for i, dpid := range path {
		if err := ctx.SendFlowMod(dpid, &openflow.FlowMod{
			Match:       m,
			Command:     openflow.FlowModAdd,
			IdleTimeout: r.IdleTimeout,
			Priority:    r.Priority,
			BufferID:    openflow.BufferIDNone,
			OutPort:     openflow.PortNone,
			Actions:     []openflow.Action{&openflow.ActionOutput{Port: outPorts[i]}},
		}); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.pathsInstalled++
	r.mu.Unlock()
	// Release the triggering packet along the first hop.
	return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: outPorts[0]}},
		Data:     packetOutData(pin),
	})
}

// isInterSwitchPort consults the discovered topology.
func (r *ShortestPathRouter) isInterSwitchPort(ctx controller.Context, dpid uint64, port uint16) bool {
	for _, l := range ctx.Topology() {
		if (l.SrcDPID == dpid && l.SrcPort == port) || (l.DstDPID == dpid && l.DstPort == port) {
			return true
		}
	}
	return false
}

// shortestPath runs BFS over the discovered topology from src to dst,
// returning the dpid sequence including both endpoints.
func (r *ShortestPathRouter) shortestPath(ctx controller.Context, src, dst uint64) ([]uint64, bool) {
	if src == dst {
		return []uint64{src}, true
	}
	adj := make(map[uint64][]uint64)
	for _, l := range ctx.Topology() {
		adj[l.SrcDPID] = append(adj[l.SrcDPID], l.DstDPID)
	}
	prev := map[uint64]uint64{src: src}
	queue := []uint64{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == dst {
				// Reconstruct.
				path := []uint64{dst}
				for at := dst; at != src; {
					at = prev[at]
					path = append([]uint64{at}, path...)
				}
				return path, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// pathOutPorts resolves the egress port at each hop: the port toward
// the next switch, and finally the host's attachment port.
func (r *ShortestPathRouter) pathOutPorts(ctx controller.Context, path []uint64, hostPort uint16) ([]uint16, bool) {
	links := ctx.Topology()
	out := make([]uint16, len(path))
	for i := 0; i < len(path)-1; i++ {
		found := false
		for _, l := range links {
			if l.SrcDPID == path[i] && l.DstDPID == path[i+1] {
				out[i] = l.SrcPort
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	out[len(path)-1] = hostPort
	return out, true
}

// routerState is the gob image of the router.
type routerState struct {
	HostAt map[openflow.EthAddr]attachment
	Paths  int
}

// Snapshot implements controller.Snapshotter.
func (r *ShortestPathRouter) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(routerState{HostAt: r.hostAt, Paths: r.pathsInstalled})
	return buf.Bytes(), err
}

// Restore implements controller.Snapshotter.
func (r *ShortestPathRouter) Restore(state []byte) error {
	var s routerState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return err
	}
	if s.HostAt == nil {
		s.HostAt = make(map[openflow.EthAddr]attachment)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hostAt = s.HostAt
	r.pathsInstalled = s.Paths
	return nil
}
