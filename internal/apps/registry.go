package apps

import (
	"fmt"
	"sort"

	"legosdn/internal/controller"
)

// builders maps registry names to app constructors. Apps needing
// configuration (LoadBalancer, Firewall) get sensible demo defaults;
// programmatic users construct them directly instead.
var builders = map[string]func() controller.App{
	"hub":             func() controller.App { return NewHub() },
	"flooder":         func() controller.App { return NewFlooder() },
	"learning-switch": func() controller.App { return NewLearningSwitch() },
	"routing":         func() controller.App { return NewShortestPathRouter() },
	"flowscale": func() controller.App {
		return NewLoadBalancer(map[uint64][]uint16{1: {1, 2}})
	},
	"firewall": func() controller.App {
		return NewFirewall([]FirewallRule{{TpDst: 22}})
	},
	"stats-collector": func() controller.App { return NewStatsCollector() },
	"spanning-tree":   func() controller.App { return NewSpanningTree() },
}

// New constructs a registered app by name. The registry backs
// cmd/legosdn-stub, which must materialize an app from a string it
// received on the command line.
func New(name string) (controller.App, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	return b(), nil
}

// Names lists the registered app names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
