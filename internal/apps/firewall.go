package apps

import (
	"bytes"
	"encoding/gob"
	"sync/atomic"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// FirewallRule denies traffic matching the populated fields (zero
// fields are wildcards).
type FirewallRule struct {
	NwSrc   uint32 // exact source IP, 0 = any
	NwDst   uint32 // exact destination IP, 0 = any
	NwProto uint8  // IP protocol, 0 = any
	TpDst   uint16 // destination port, 0 = any
}

func (r FirewallRule) matches(p openflow.PacketFields) bool {
	if r.NwSrc != 0 && r.NwSrc != p.NwSrc {
		return false
	}
	if r.NwDst != 0 && r.NwDst != p.NwDst {
		return false
	}
	if r.NwProto != 0 && r.NwProto != p.NwProto {
		return false
	}
	if r.TpDst != 0 && r.TpDst != p.TpDst {
		return false
	}
	return true
}

// Firewall plays BigTap's role from Table 2: security enforcement. On
// a packet-in matching a deny rule, it installs a high-priority drop
// rule (empty action list) pinning the flow to the floor; allowed
// traffic is left for downstream apps to route.
type Firewall struct {
	Rules    []FirewallRule
	Priority uint16

	// blocked counts dropped flows (atomic: read by management code).
	blocked atomic.Uint64
}

// NewFirewall builds a firewall with the given deny rules.
func NewFirewall(rules []FirewallRule) *Firewall {
	return &Firewall{Rules: rules, Priority: 100}
}

// Name implements controller.App.
func (*Firewall) Name() string { return "firewall" }

// Subscriptions implements controller.App.
func (*Firewall) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}

// Blocked reports how many flows have been denied.
func (fw *Firewall) Blocked() uint64 { return fw.blocked.Load() }

// HandleEvent implements controller.App.
func (fw *Firewall) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin, ok := ev.Message.(*openflow.PacketIn)
	if !ok {
		return nil
	}
	fields, err := flowFields(pin.Data)
	if err != nil {
		return nil
	}
	for _, r := range fw.Rules {
		if !r.matches(fields) {
			continue
		}
		fw.blocked.Add(1)
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlType
		m.DlType = fields.DlType
		if r.NwSrc != 0 {
			m.NwSrc = r.NwSrc
			m.SetNwSrcMaskBits(0)
		}
		if r.NwDst != 0 {
			m.NwDst = r.NwDst
			m.SetNwDstMaskBits(0)
		}
		if r.NwProto != 0 {
			m.Wildcards &^= openflow.WildcardNwProto
			m.NwProto = r.NwProto
		}
		if r.TpDst != 0 {
			m.Wildcards &^= openflow.WildcardTpDst
			m.TpDst = r.TpDst
		}
		// Empty action list = drop.
		return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
			Match:       m,
			Command:     openflow.FlowModAdd,
			IdleTimeout: 300,
			Priority:    fw.Priority,
			BufferID:    openflow.BufferIDNone,
			OutPort:     openflow.PortNone,
		})
	}
	return nil
}

// fwState is the gob image of the firewall's dynamic state.
type fwState struct {
	Rules   []FirewallRule
	Blocked uint64
}

// Snapshot implements controller.Snapshotter.
func (fw *Firewall) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(fwState{Rules: fw.Rules, Blocked: fw.blocked.Load()})
	return buf.Bytes(), err
}

// Restore implements controller.Snapshotter.
func (fw *Firewall) Restore(state []byte) error {
	var s fwState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return err
	}
	fw.Rules = s.Rules
	fw.blocked.Store(s.Blocked)
	return nil
}

// StatsCollector accumulates final per-flow accounting from
// FlowRemoved notifications — the counter-store-style service the
// paper's §4.1 apps used.
type StatsCollector struct {
	TotalPackets uint64
	TotalBytes   uint64
	FlowsEnded   uint64
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector { return &StatsCollector{} }

// Name implements controller.App.
func (*StatsCollector) Name() string { return "stats-collector" }

// Subscriptions implements controller.App.
func (*StatsCollector) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventFlowRemoved}
}

// HandleEvent implements controller.App.
func (sc *StatsCollector) HandleEvent(_ controller.Context, ev controller.Event) error {
	fr, ok := ev.Message.(*openflow.FlowRemoved)
	if !ok {
		return nil
	}
	sc.TotalPackets += fr.PacketCount
	sc.TotalBytes += fr.ByteCount
	sc.FlowsEnded++
	return nil
}

// Snapshot implements controller.Snapshotter.
func (sc *StatsCollector) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(*sc)
	return buf.Bytes(), err
}

// Restore implements controller.Snapshotter.
func (sc *StatsCollector) Restore(state []byte) error {
	var s StatsCollector
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return err
	}
	*sc = s
	return nil
}
