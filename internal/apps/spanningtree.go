package apps

import (
	"bytes"
	"encoding/gob"
	"sort"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// SpanningTree makes flooding safe on topologies with loops, the job
// FloodLight's topology module performs: it computes a spanning tree
// over the controller's discovered links (BFS from the lowest datapath
// id) and administratively excludes non-tree inter-switch ports from
// flooding via PortMod(NoFlood). Broadcast storms on rings and meshes
// die at the blocked ports while every host remains reachable through
// the tree.
type SpanningTree struct {
	mu sync.Mutex
	// blocked records which ports we have flood-disabled, so
	// convergence is observable and reversals are precise.
	blocked map[uint64]map[uint16]bool
	// recomputes counts tree computations.
	recomputes int
}

// NewSpanningTree returns the app; it converges after switches connect
// and topology discovery has run.
func NewSpanningTree() *SpanningTree {
	return &SpanningTree{blocked: make(map[uint64]map[uint16]bool)}
}

// Name implements controller.App.
func (*SpanningTree) Name() string { return "spanning-tree" }

// Subscriptions implements controller.App.
func (*SpanningTree) Subscriptions() []controller.EventKind {
	return []controller.EventKind{
		controller.EventSwitchUp,
		controller.EventSwitchDown,
		controller.EventPortStatus,
	}
}

// BlockedPorts reports how many ports are currently flood-disabled.
func (st *SpanningTree) BlockedPorts() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, ports := range st.blocked {
		n += len(ports)
	}
	return n
}

// Recomputes reports how many times the tree has been recomputed.
func (st *SpanningTree) Recomputes() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recomputes
}

// HandleEvent implements controller.App: any topology-affecting event
// triggers a recompute.
func (st *SpanningTree) HandleEvent(ctx controller.Context, ev controller.Event) error {
	return st.Recompute(ctx)
}

// Recompute rebuilds the tree and pushes the port configuration diff.
// Exposed so deployments can also run it after topology discovery.
func (st *SpanningTree) Recompute(ctx controller.Context) error {
	links := ctx.Topology()
	switches := ctx.Switches()
	if len(switches) == 0 {
		return nil
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	// Adjacency with the egress port per direction.
	type edge struct {
		to   uint64
		port uint16
	}
	adj := make(map[uint64][]edge)
	for _, l := range links {
		adj[l.SrcDPID] = append(adj[l.SrcDPID], edge{to: l.DstDPID, port: l.SrcPort})
	}
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].port < edges[j].port
		})
	}

	// BFS from the lowest dpid; tree ports are the ones a first-visit
	// traversal crosses (both directions).
	treePort := make(map[uint64]map[uint16]bool)
	markTree := func(dpid uint64, port uint16) {
		if treePort[dpid] == nil {
			treePort[dpid] = make(map[uint16]bool)
		}
		treePort[dpid][port] = true
	}
	visited := map[uint64]bool{switches[0]: true}
	queue := []uint64{switches[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			markTree(cur, e.port)
			// The reverse direction of the same cable.
			for _, back := range adj[e.to] {
				if back.to == cur {
					markTree(e.to, back.port)
					break
				}
			}
			queue = append(queue, e.to)
		}
	}

	// Desired blocked set: every inter-switch port not on the tree.
	desired := make(map[uint64]map[uint16]bool)
	for _, l := range links {
		if !treePort[l.SrcDPID][l.SrcPort] {
			if desired[l.SrcDPID] == nil {
				desired[l.SrcDPID] = make(map[uint16]bool)
			}
			desired[l.SrcDPID][l.SrcPort] = true
		}
	}

	// Push the diff as PortMods.
	st.mu.Lock()
	prev := st.blocked
	st.blocked = desired
	st.recomputes++
	st.mu.Unlock()

	setNoFlood := func(dpid uint64, port uint16, on bool) error {
		cfg := uint32(0)
		if on {
			cfg = openflow.PortConfigNoFlood
		}
		return ctx.SendMessage(dpid, &openflow.PortMod{
			PortNo: port,
			Config: cfg,
			Mask:   openflow.PortConfigNoFlood,
		})
	}
	for dpid, ports := range desired {
		for port := range ports {
			if !prev[dpid][port] {
				if err := setNoFlood(dpid, port, true); err != nil {
					return err
				}
			}
		}
	}
	for dpid, ports := range prev {
		for port := range ports {
			if !desired[dpid][port] {
				if err := setNoFlood(dpid, port, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// stpState is the gob image.
type stpState struct {
	Blocked    map[uint64]map[uint16]bool
	Recomputes int
}

// Snapshot implements controller.Snapshotter.
func (st *SpanningTree) Snapshot() ([]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(stpState{Blocked: st.blocked, Recomputes: st.recomputes})
	return buf.Bytes(), err
}

// Restore implements controller.Snapshotter.
func (st *SpanningTree) Restore(state []byte) error {
	var s stpState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return err
	}
	if s.Blocked == nil {
		s.Blocked = make(map[uint64]map[uint16]bool)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.blocked = s.Blocked
	st.recomputes = s.Recomputes
	return nil
}
