package apps

import (
	"bytes"
	"encoding/gob"
	"hash/fnv"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// LoadBalancer plays FlowScale's role from Table 2: traffic
// engineering. It spreads flows arriving at configured switches across
// a set of uplink ports by hashing the flow's 5-tuple, installing one
// exact-match rule per flow. Per-uplink flow counts are tracked so
// skew is observable.
type LoadBalancer struct {
	// Uplinks maps a switch to the ports flows are balanced across.
	Uplinks map[uint64][]uint16
	// IdleTimeout for installed flow rules.
	IdleTimeout uint16
	// Priority for installed flow rules.
	Priority uint16

	// mu guards assigned against concurrent management reads.
	mu       sync.Mutex
	assigned map[uint64]map[uint16]uint64 // dpid -> port -> flows assigned
}

// NewLoadBalancer builds a balancer for the given uplink map.
func NewLoadBalancer(uplinks map[uint64][]uint16) *LoadBalancer {
	return &LoadBalancer{
		Uplinks:     uplinks,
		IdleTimeout: 30,
		Priority:    30,
		assigned:    make(map[uint64]map[uint16]uint64),
	}
}

// Name implements controller.App.
func (*LoadBalancer) Name() string { return "flowscale" }

// Subscriptions implements controller.App.
func (*LoadBalancer) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}

// Assigned reports how many flows have been pinned to (dpid, port).
func (lb *LoadBalancer) Assigned(dpid uint64, port uint16) uint64 {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.assigned[dpid][port]
}

// HandleEvent implements controller.App.
func (lb *LoadBalancer) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin, ok := ev.Message.(*openflow.PacketIn)
	if !ok {
		return nil
	}
	uplinks := lb.Uplinks[ev.DPID]
	if len(uplinks) == 0 {
		return nil // not a balanced switch
	}
	fields, err := flowFields(pin.Data)
	if err != nil {
		return nil
	}
	port := uplinks[int(hash5Tuple(fields)%uint32(len(uplinks)))]

	lb.mu.Lock()
	counts := lb.assigned[ev.DPID]
	if counts == nil {
		counts = make(map[uint16]uint64)
		lb.assigned[ev.DPID] = counts
	}
	counts[port]++
	lb.mu.Unlock()

	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto |
		openflow.WildcardTpSrc | openflow.WildcardTpDst
	m.SetNwSrcMaskBits(0)
	m.SetNwDstMaskBits(0)
	m.DlType = fields.DlType
	m.NwProto = fields.NwProto
	m.NwSrc = fields.NwSrc
	m.NwDst = fields.NwDst
	m.TpSrc = fields.TpSrc
	m.TpDst = fields.TpDst
	if err := ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match:       m,
		Command:     openflow.FlowModAdd,
		IdleTimeout: lb.IdleTimeout,
		Priority:    lb.Priority,
		BufferID:    openflow.BufferIDNone,
		OutPort:     openflow.PortNone,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: port}},
	}); err != nil {
		return err
	}
	return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: port}},
		Data:     packetOutData(pin),
	})
}

// flowFields extracts the 5-tuple from a raw frame.
func flowFields(b []byte) (openflow.PacketFields, error) {
	var p openflow.PacketFields
	if len(b) < 14 {
		return p, errShortFrame
	}
	copy(p.DlDst[:], b[0:6])
	copy(p.DlSrc[:], b[6:12])
	p.DlType = uint16(b[12])<<8 | uint16(b[13])
	if p.DlType == 0x0800 && len(b) >= 34 {
		ip := b[14:]
		p.NwProto = ip[9]
		p.NwSrc = uint32(ip[12])<<24 | uint32(ip[13])<<16 | uint32(ip[14])<<8 | uint32(ip[15])
		p.NwDst = uint32(ip[16])<<24 | uint32(ip[17])<<16 | uint32(ip[18])<<8 | uint32(ip[19])
		if (p.NwProto == 6 || p.NwProto == 17) && len(b) >= 38 {
			p.TpSrc = uint16(b[34])<<8 | uint16(b[35])
			p.TpDst = uint16(b[36])<<8 | uint16(b[37])
		}
	}
	return p, nil
}

func hash5Tuple(p openflow.PacketFields) uint32 {
	h := fnv.New32a()
	var buf [13]byte
	buf[0] = p.NwProto
	buf[1], buf[2], buf[3], buf[4] = byte(p.NwSrc>>24), byte(p.NwSrc>>16), byte(p.NwSrc>>8), byte(p.NwSrc)
	buf[5], buf[6], buf[7], buf[8] = byte(p.NwDst>>24), byte(p.NwDst>>16), byte(p.NwDst>>8), byte(p.NwDst)
	buf[9], buf[10] = byte(p.TpSrc>>8), byte(p.TpSrc)
	buf[11], buf[12] = byte(p.TpDst>>8), byte(p.TpDst)
	h.Write(buf[:])
	return h.Sum32()
}

// lbState is the gob image of the balancer's dynamic state.
type lbState struct {
	Assigned map[uint64]map[uint16]uint64
}

// Snapshot implements controller.Snapshotter.
func (lb *LoadBalancer) Snapshot() ([]byte, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(lbState{Assigned: lb.assigned})
	return buf.Bytes(), err
}

// Restore implements controller.Snapshotter.
func (lb *LoadBalancer) Restore(state []byte) error {
	var s lbState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&s); err != nil {
		return err
	}
	if s.Assigned == nil {
		s.Assigned = make(map[uint64]map[uint16]uint64)
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.assigned = s.Assigned
	return nil
}
