// Package apps provides the SDN applications the LegoSDN evaluation
// runs: the simple apps the paper moved into stubs (Hub, Flooder,
// LearningSwitch — §4.1) and counterparts of the Table 2 survey apps —
// a RouteFlow-like shortest-path router, a FlowScale-like traffic
// load-balancer, a BigTap-like security firewall — plus a statistics
// collector. Stateful apps implement controller.Snapshotter so
// Crash-Pad can checkpoint and restore them.
package apps

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// Hub floods every packet out all other ports, installing no state.
type Hub struct{}

// NewHub returns the stateless hub app.
func NewHub() *Hub { return &Hub{} }

// Name implements controller.App.
func (*Hub) Name() string { return "hub" }

// Subscriptions implements controller.App.
func (*Hub) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}

// HandleEvent implements controller.App.
func (*Hub) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin, ok := ev.Message.(*openflow.PacketIn)
	if !ok {
		return nil
	}
	return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
		Data:     packetOutData(pin),
	})
}

// packetOutData returns the raw frame for unbuffered packet-ins.
func packetOutData(pin *openflow.PacketIn) []byte {
	if pin.BufferID != openflow.BufferIDNone {
		return nil
	}
	return pin.Data
}

// Flooder is the hub plus a wildcard flood rule, so subsequent traffic
// floods in the dataplane without controller involvement.
type Flooder struct{}

// NewFlooder returns the flooder app.
func NewFlooder() *Flooder { return &Flooder{} }

// Name implements controller.App.
func (*Flooder) Name() string { return "flooder" }

// Subscriptions implements controller.App.
func (*Flooder) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn, controller.EventSwitchUp}
}

// HandleEvent implements controller.App.
func (*Flooder) HandleEvent(ctx controller.Context, ev controller.Event) error {
	switch ev.Kind {
	case controller.EventSwitchUp:
		return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
			Match:    openflow.MatchAll(),
			Command:  openflow.FlowModAdd,
			Priority: 1,
			BufferID: openflow.BufferIDNone,
			OutPort:  openflow.PortNone,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
		})
	case controller.EventPacketIn:
		pin := ev.Message.(*openflow.PacketIn)
		return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
			BufferID: pin.BufferID,
			InPort:   pin.InPort,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
			Data:     packetOutData(pin),
		})
	}
	return nil
}

// LearningSwitch is the canonical stateful SDN-App: it learns MAC
// locations from packet-ins and installs exact forwarding rules once
// both endpoints are known.
type LearningSwitch struct {
	// Config.
	IdleTimeout uint16 // seconds; 0 disables idle expiry
	Priority    uint16

	// mu guards macs: events arrive on the dispatch goroutine while
	// management code (tests, dashboards) reads the learned state.
	mu   sync.Mutex
	macs map[uint64]map[openflow.EthAddr]uint16 // dpid -> mac -> port
}

// NewLearningSwitch returns a learning switch with the usual defaults
// (idle timeout 30s, priority 10).
func NewLearningSwitch() *LearningSwitch {
	return &LearningSwitch{IdleTimeout: 30, Priority: 10,
		macs: make(map[uint64]map[openflow.EthAddr]uint16)}
}

// Name implements controller.App.
func (*LearningSwitch) Name() string { return "learning-switch" }

// Subscriptions implements controller.App.
func (*LearningSwitch) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn, controller.EventSwitchDown}
}

// KnownMACs reports how many addresses the app has learned on a switch.
func (a *LearningSwitch) KnownMACs(dpid uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.macs[dpid])
}

// HandleEvent implements controller.App.
func (a *LearningSwitch) HandleEvent(ctx controller.Context, ev controller.Event) error {
	switch ev.Kind {
	case controller.EventSwitchDown:
		a.mu.Lock()
		delete(a.macs, ev.DPID)
		a.mu.Unlock()
		return nil
	case controller.EventPacketIn:
	default:
		return nil
	}
	pin := ev.Message.(*openflow.PacketIn)
	f, err := parseEthernet(pin.Data)
	if err != nil {
		return nil // not a frame we understand; let it drop
	}
	a.mu.Lock()
	table := a.macs[ev.DPID]
	if table == nil {
		table = make(map[openflow.EthAddr]uint16)
		a.macs[ev.DPID] = table
	}
	if !f.src.IsMulticast() {
		table[f.src] = pin.InPort
	}
	outPort, known := table[f.dst]
	a.mu.Unlock()
	if !known || f.dst.IsBroadcast() || f.dst.IsMulticast() {
		// Unknown destination: flood, learn from the reply.
		return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
			BufferID: pin.BufferID,
			InPort:   pin.InPort,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
			Data:     packetOutData(pin),
		})
	}
	// Known destination: install the forwarding rule and release the
	// packet along it.
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlDst
	m.DlDst = f.dst
	if err := ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match:       m,
		Command:     openflow.FlowModAdd,
		IdleTimeout: a.IdleTimeout,
		Priority:    a.Priority,
		BufferID:    openflow.BufferIDNone,
		OutPort:     openflow.PortNone,
		Flags:       openflow.FlowModFlagSendFlowRem,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: outPort}},
	}); err != nil {
		return err
	}
	return ctx.SendPacketOut(ev.DPID, &openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   pin.InPort,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: outPort}},
		Data:     packetOutData(pin),
	})
}

// Snapshot implements controller.Snapshotter.
func (a *LearningSwitch) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.macs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements controller.Snapshotter.
func (a *LearningSwitch) Restore(state []byte) error {
	macs := make(map[uint64]map[openflow.EthAddr]uint16)
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&macs); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.macs = macs
	return nil
}

// ethHeader is the slice of an Ethernet frame the apps care about.
type ethHeader struct {
	dst, src openflow.EthAddr
	ethType  uint16
}

func parseEthernet(b []byte) (ethHeader, error) {
	var h ethHeader
	if len(b) < 14 {
		return h, errShortFrame
	}
	copy(h.dst[:], b[0:6])
	copy(h.src[:], b[6:12])
	h.ethType = uint16(b[12])<<8 | uint16(b[13])
	return h, nil
}

var errShortFrame = errors.New("apps: frame too short")
