package apps

import (
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// hostPortBase mirrors netsim's host attachment convention.
const hostPortBase = 100

func startStack(t *testing.T, n *netsim.Network, appList ...controller.App) *controller.Controller {
	t.Helper()
	c := controller.New(controller.Config{})
	t.Cleanup(c.Stop)
	for _, a := range appList {
		c.Register(a)
	}
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			t.Fatal(err)
		}
		if err := c.AttachSwitchConn(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHubFloodsTraffic(t *testing.T) {
	n := netsim.Single(3, nil)
	startStack(t, n, NewHub())
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, []byte("x")))
	waitFor(t, "delivery via flood", func() bool { return h2.ReceivedCount() == 1 })
	// Hub never installs rules.
	if n.Switch(1).Table().Len() != 0 {
		t.Fatal("hub installed flow state")
	}
}

func TestFlooderInstallsWildcardRule(t *testing.T) {
	n := netsim.Single(2, nil)
	startStack(t, n, NewFlooder())
	waitFor(t, "wildcard rule", func() bool { return n.Switch(1).Table().Len() == 1 })
	// Dataplane now floods without the controller.
	h1, h2 := n.Host("h1"), n.Host("h2")
	before := n.Switch(1).PacketIns.Load()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))
	waitFor(t, "dataplane flood", func() bool { return h2.ReceivedCount() == 1 })
	if n.Switch(1).PacketIns.Load() != before {
		t.Fatal("traffic still reaching the controller")
	}
}

func TestLearningSwitchLearnsAndInstalls(t *testing.T) {
	n := netsim.Single(3, nil)
	ls := NewLearningSwitch()
	startStack(t, n, ls)
	h1, h2 := n.Host("h1"), n.Host("h2")

	// First packet h1->h2: floods (dst unknown), learns h1.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 2, nil))
	waitFor(t, "initial flood", func() bool { return h2.ReceivedCount() == 1 })

	// Reply h2->h1: h1 is known, so a rule lands and the packet is
	// forwarded directly.
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 2, 1, nil))
	waitFor(t, "reply delivery", func() bool { return h1.ReceivedCount() == 1 })
	waitFor(t, "rule towards h1", func() bool { return n.Switch(1).Table().Len() >= 1 })

	// Subsequent h2->h1 traffic flows without packet-ins.
	before := n.Switch(1).PacketIns.Load()
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 2, 1, nil))
	waitFor(t, "dataplane forward", func() bool { return h1.ReceivedCount() == 2 })
	if n.Switch(1).PacketIns.Load() != before {
		t.Fatal("known flow still punted to controller")
	}
	// h3 must not have seen the directly forwarded reply.
	if n.Host("h3").ReceivedCount() != 0 {
		t.Fatal("directed traffic leaked to a third host")
	}
}

func TestLearningSwitchSnapshotRoundTrip(t *testing.T) {
	ls := NewLearningSwitch()
	ls.macs[1] = map[openflow.EthAddr]uint16{{1, 2, 3, 4, 5, 6}: 7}
	state, err := ls.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ls2 := NewLearningSwitch()
	if err := ls2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if ls2.macs[1][openflow.EthAddr{1, 2, 3, 4, 5, 6}] != 7 {
		t.Fatal("state lost in round trip")
	}
	if err := ls2.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage restore should fail")
	}
}

func TestLearningSwitchForgetsDeadSwitch(t *testing.T) {
	ls := NewLearningSwitch()
	ls.macs[9] = map[openflow.EthAddr]uint16{{1}: 1}
	ls.HandleEvent(nil, controller.Event{Kind: controller.EventSwitchDown, DPID: 9})
	if ls.KnownMACs(9) != 0 {
		t.Fatal("state for dead switch retained")
	}
}

func TestShortestPathRouterEndToEnd(t *testing.T) {
	n := netsim.Linear(3, nil)
	router := NewShortestPathRouter()
	c := startStack(t, n, router)

	// Discover the topology first, as a deployment would.
	if err := c.DiscoverTopology(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "topology discovery", func() bool { return len(c.Topology()) == 4 })

	h1, h3 := n.Host("h1"), n.Host("h3")
	// h3 must be known: prime with one broadcast from h3 (ARP-style).
	n.SendFromHost("h3", netsim.ARPFrame(h3, h1.IP))
	waitFor(t, "h3 learned", func() bool { return router.KnownHosts() >= 1 })

	// Now h1 sends to h3: the router installs the full path.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h3, 1, 2, nil))
	waitFor(t, "path installed", func() bool { return router.PathsInstalled() >= 1 })
	waitFor(t, "delivery", func() bool { return h3.ReceivedCount() >= 1 })

	// Every switch on the path carries the rule.
	for _, dpid := range []uint64{1, 2, 3} {
		if n.Switch(dpid).Table().Len() == 0 {
			t.Fatalf("switch %d missing path rule", dpid)
		}
	}
	// Follow-up traffic stays in the dataplane.
	before := n.Switch(1).PacketIns.Load()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h3, 3, 4, nil))
	waitFor(t, "dataplane delivery", func() bool { return h3.ReceivedCount() >= 2 })
	if n.Switch(1).PacketIns.Load() != before {
		t.Fatal("routed flow still hits the controller")
	}
}

func TestRouterSnapshotRoundTrip(t *testing.T) {
	r := NewShortestPathRouter()
	r.hostAt[openflow.EthAddr{1}] = attachment{DPID: 3, Port: 9}
	r.pathsInstalled = 5
	state, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewShortestPathRouter()
	if err := r2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if r2.hostAt[openflow.EthAddr{1}] != (attachment{DPID: 3, Port: 9}) || r2.pathsInstalled != 5 {
		t.Fatal("router state lost")
	}
}

func TestLoadBalancerSpreadsFlows(t *testing.T) {
	// One switch with two uplinks (ports 1 and 2) and four hosts.
	n := netsim.NewNetwork(nil)
	n.AddSwitch(1)
	n.AddSwitch(2)
	n.AddSwitch(3)
	n.AddLink(1, 1, 2, 1)
	n.AddLink(1, 2, 3, 1)
	h1, err := n.AddHost("h1", netsim.HostMAC(1), netsim.HostIP(1), 1, hostPortBase)
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoadBalancer(map[uint64][]uint16{1: {1, 2}})
	startStack(t, n, lb)

	// Many distinct flows from h1.
	for i := 0; i < 64; i++ {
		f := &netsim.Frame{
			DlSrc: h1.MAC, DlDst: netsim.HostMAC(2), DlType: netsim.EtherTypeIPv4,
			NwProto: netsim.IPProtoTCP, NwSrc: h1.IP, NwDst: netsim.HostIP(2),
			TpSrc: uint16(20000 + i), TpDst: 80,
		}
		n.SendFromHost("h1", f)
	}
	waitFor(t, "all flows assigned", func() bool {
		return lb.Assigned(1, 1)+lb.Assigned(1, 2) == 64
	})
	a1, a2 := lb.Assigned(1, 1), lb.Assigned(1, 2)
	if a1 == 0 || a2 == 0 {
		t.Fatalf("one uplink unused: %d/%d", a1, a2)
	}
	if a1+a2 != 64 {
		t.Fatalf("flows assigned = %d, want 64", a1+a2)
	}

	// Snapshot round trip.
	state, err := lb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lb2 := NewLoadBalancer(map[uint64][]uint16{1: {1, 2}})
	if err := lb2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if lb2.Assigned(1, 1) != a1 {
		t.Fatal("balancer state lost")
	}
}

func TestFirewallBlocksDeniedTraffic(t *testing.T) {
	n := netsim.Single(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	fw := NewFirewall([]FirewallRule{{NwDst: h2.IP, TpDst: 22}})
	ls := NewLearningSwitch()
	startStack(t, n, fw, ls)

	// Blocked flow: h1 -> h2:22.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 22, nil))
	waitFor(t, "drop rule", func() bool { return fw.Blocked() == 1 })
	waitFor(t, "drop rule installed", func() bool {
		for _, e := range n.Switch(1).Table().Entries() {
			if e.Priority == fw.Priority && len(e.Actions) == 0 {
				return true
			}
		}
		return false
	})
	// The learning switch floods the first packet (it was punted before
	// the drop rule existed); wait for that delivery so it cannot land
	// after the clear and masquerade as a leak of the second packet.
	waitFor(t, "first-packet flood", func() bool { return h2.ReceivedCount() >= 1 })
	// Subsequent blocked traffic dies in the dataplane.
	h2.ClearReceived()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1001, 22, nil))
	time.Sleep(20 * time.Millisecond)
	if h2.ReceivedCount() != 0 {
		t.Fatal("blocked flow delivered")
	}

	// Allowed flow still works (learning switch floods it).
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 80, nil))
	waitFor(t, "allowed delivery", func() bool { return h2.ReceivedCount() >= 1 })
}

func TestStatsCollectorAccumulates(t *testing.T) {
	sc := NewStatsCollector()
	sc.HandleEvent(nil, controller.Event{Kind: controller.EventFlowRemoved,
		Message: &openflow.FlowRemoved{PacketCount: 10, ByteCount: 1000}})
	sc.HandleEvent(nil, controller.Event{Kind: controller.EventFlowRemoved,
		Message: &openflow.FlowRemoved{PacketCount: 5, ByteCount: 500}})
	if sc.TotalPackets != 15 || sc.TotalBytes != 1500 || sc.FlowsEnded != 2 {
		t.Fatalf("collector %+v", sc)
	}
	state, _ := sc.Snapshot()
	sc2 := NewStatsCollector()
	sc2.Restore(state)
	if sc2.TotalPackets != 15 {
		t.Fatal("collector snapshot lost")
	}
}

func TestSpanningTreeBlocksRingLoop(t *testing.T) {
	n := netsim.Ring(4, nil)
	stp := NewSpanningTree()
	hub := NewHub()
	c := startStack(t, n, stp, hub)

	if err := c.DiscoverTopology(); err != nil {
		t.Fatal(err)
	}
	// Ring(4) has 8 directed links; wait for discovery, then converge.
	waitFor(t, "topology discovered", func() bool { return len(c.Topology()) == 8 })
	if err := stp.Recompute(c); err != nil {
		t.Fatal(err)
	}
	// A 4-ring spanning tree keeps 3 cables; 1 cable (2 ports) blocks.
	waitFor(t, "tree convergence", func() bool { return stp.BlockedPorts() == 2 })

	// Broadcast from h1: with the tree in place, flooding must reach
	// every other host without tripping the hop limit.
	h1 := n.Host("h1")
	drops := n.TotalLoopDrops()
	n.SendFromHost("h1", netsim.ARPFrame(h1, netsim.HostIP(3)))
	waitFor(t, "broadcast reaches all hosts", func() bool {
		for _, h := range n.Hosts() {
			if h != h1 && h.ReceivedCount() == 0 {
				return false
			}
		}
		return true
	})
	if got := n.TotalLoopDrops(); got != drops {
		t.Fatalf("flood looped %d times despite spanning tree", got-drops)
	}
}

func TestSpanningTreeReconvergesOnFailure(t *testing.T) {
	n := netsim.Ring(4, nil)
	stp := NewSpanningTree()
	c := startStack(t, n, stp)
	if err := c.DiscoverTopology(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "topology discovered", func() bool { return len(c.Topology()) == 8 })
	stp.Recompute(c)
	waitFor(t, "initial convergence", func() bool { return stp.BlockedPorts() == 2 })

	// Fail a tree link: the blocked cable must be re-opened so the
	// surviving path is usable (PortStatus events trigger recompute).
	if err := n.SetLinkDown(1, 2, 2, 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reconvergence", func() bool {
		// After losing one ring cable the remainder is a line: no
		// blocked ports.  (The downed cable itself is not "blocked".)
		return stp.BlockedPorts() == 0
	})
}

func TestSpanningTreeSnapshotRoundTrip(t *testing.T) {
	st := NewSpanningTree()
	st.blocked[1] = map[uint16]bool{2: true}
	st.recomputes = 3
	state, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewSpanningTree()
	if err := st2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if st2.BlockedPorts() != 1 || st2.Recomputes() != 3 {
		t.Fatal("state lost")
	}
}
