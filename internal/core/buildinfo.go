package core

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"legosdn/internal/appvisor"
	"legosdn/internal/metrics"
)

// Version returns the module version baked into the binary by the Go
// toolchain, or "dev" for uninstalled builds (go run, test binaries).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// RegisterBuildInfo exports the constant-1 legosdn_build_info gauge
// whose labels identify the running build: module version, Go runtime
// version and the AppVisor wire protocol version. The standard
// Prometheus idiom for joining metrics to the code that produced them.
func RegisterBuildInfo(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	name := fmt.Sprintf("legosdn_build_info{version=%q,go_version=%q,wire_version=\"%d\"}",
		Version(), runtime.Version(), appvisor.WireVersion)
	reg.RegisterGaugeFunc(name, "build information (constant 1)", func() float64 { return 1 })
}

// BuildInfoAttrs returns the same identity as key/value pairs for
// startup logging via slog.
func BuildInfoAttrs() []any {
	return []any{
		"version", Version(),
		"go_version", runtime.Version(),
		"wire_version", int(appvisor.WireVersion),
	}
}
