package core

import (
	"testing"
	"time"

	"legosdn/internal/netsim"
	"legosdn/internal/trace"
)

// findTraceWith returns the first trace containing a span with the
// given name, or nil.
func findTraceWith(traces []trace.Trace, name string) *trace.Trace {
	for i := range traces {
		for _, sp := range traces[i].Spans {
			if sp.Name == name {
				return &traces[i]
			}
		}
	}
	return nil
}

func spanNames(tr *trace.Trace) map[string]int {
	names := make(map[string]int)
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	return names
}

func spanAttr(sp trace.SpanRecord, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestCrashRecoveryTrace is the observability acceptance test: one
// injected poisoned event must yield ONE trace whose spans cover every
// stage of the crash-recovery pipeline — controller dispatch, the
// AppVisor wire round trip (including the stub side, which joins the
// trace via the ids carried in the wire header), the aborted NetLog
// transaction, and Crash-Pad's restore and replay.
func TestCrashRecoveryTrace(t *testing.T) {
	tracer := trace.New(trace.Options{SampleRate: 1})
	stack := NewStack(Config{
		Mode:   ModeLegoSDN,
		Tracer: tracer,
		// A wide checkpoint interval so the crash arrives with a
		// non-empty replay suffix: checkpoint before event 1, healthy
		// events 2..n recorded, the poisoned event triggers a restore
		// to the old checkpoint followed by replay of 2..n.
		CheckpointEvery: 100,
	})
	defer stack.Close()
	if err := stack.AddApp(newMultiRuleApp(6666)); err != nil {
		t.Fatal(err)
	}

	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Two healthy events (checkpoint + replay suffix), then the poison.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 2, 80, nil))
	waitFor(t, "healthy rules", func() bool { return n.Switch(1).Table().Len() == 6 })
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 9999, 6666, nil))
	waitFor(t, "recovery", func() bool { return stack.CrashPad.Recoveries.Load() >= 1 })

	// The poisoned event's trace is the one holding the NetLog abort.
	// Span records land at End(), so poll until the full pipeline is
	// visible in the ring.
	var poisoned *trace.Trace
	waitFor(t, "complete crash-recovery trace", func() bool {
		poisoned = findTraceWith(tracer.Traces(0), "netlog.abort")
		if poisoned == nil {
			return false
		}
		names := spanNames(poisoned)
		for _, want := range []string{
			"controller.dispatch", "appvisor.relay", "stub.handle",
			"netlog.txn", "netlog.abort",
			"crashpad.recover", "crashpad.restore", "crashpad.replay",
		} {
			if names[want] == 0 {
				return false
			}
		}
		return true
	})

	names := spanNames(poisoned)
	// The restore replays both healthy events under the same trace.
	if names["crashpad.replay"] < 2 {
		t.Fatalf("crashpad.replay spans = %d, want >= 2", names["crashpad.replay"])
	}
	// Every span shares the poisoned event's trace id.
	for _, sp := range poisoned.Spans {
		if sp.Trace != poisoned.ID {
			t.Fatalf("span %q has trace %x, want %x", sp.Name, sp.Trace, poisoned.ID)
		}
	}
	// The aborted transaction span says so.
	var sawAborted bool
	for _, sp := range poisoned.Spans {
		if sp.Name != "netlog.txn" {
			continue
		}
		if state, ok := spanAttr(sp, "state"); ok && state == "aborted" {
			sawAborted = true
		}
	}
	if !sawAborted {
		t.Fatal("no netlog.txn span with state=aborted")
	}
	// The recovery decision is recorded on the recover span.
	for _, sp := range poisoned.Spans {
		if sp.Name == "crashpad.recover" {
			if _, ok := spanAttr(sp, "decision"); !ok {
				t.Fatal("crashpad.recover span missing decision attr")
			}
			if _, ok := spanAttr(sp, "outcome"); !ok {
				t.Fatal("crashpad.recover span missing outcome attr")
			}
		}
	}
	// The stub joined the proxy's trace over the wire: its handler span
	// must be parented inside this trace, not a root.
	for _, sp := range poisoned.Spans {
		if sp.Name == "stub.handle" && sp.Parent == 0 {
			t.Fatal("stub.handle span is an orphan root: wire propagation broken")
		}
	}
}

// TestTracingDisabledIsInert: a nil tracer (the default) records
// nothing and changes nothing — the whole pipeline runs untraced.
func TestTracingDisabledIsInert(t *testing.T) {
	stack := NewStack(Config{Mode: ModeLegoSDN})
	defer stack.Close()
	if err := stack.AddApp(newPortPoisonApp(6666)); err != nil {
		t.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 6666, nil))
	waitFor(t, "recovery without tracer", func() bool {
		return stack.CrashPad.Recoveries.Load() >= 1
	})
	if stack.Controller.Crashed() {
		t.Fatal("controller died")
	}
}

// TestZeroSamplingRecordsNothing: a live tracer at rate 0 must keep
// the ring empty while events flow — the always-cheap guarantee.
func TestZeroSamplingRecordsNothing(t *testing.T) {
	tracer := trace.New(trace.Options{SampleRate: 0})
	stack := NewStack(Config{Mode: ModeLegoSDN, Tracer: tracer})
	defer stack.Close()
	if err := stack.AddApp(newPortPoisonApp(6666)); err != nil {
		t.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	waitFor(t, "delivery", func() bool { return h2.ReceivedCount() >= 1 })
	time.Sleep(10 * time.Millisecond)
	if got := len(tracer.Snapshot()); got != 0 {
		t.Fatalf("rate-0 tracer recorded %d spans", got)
	}
}
