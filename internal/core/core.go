// Package core is LegoSDN's public façade: it assembles the controller,
// AppVisor isolation layer, NetLog transaction engine and Crash-Pad
// recovery engine into one Stack, configured by architecture mode. The
// three modes reproduce the paper's comparison axis:
//
//   - ModeMonolithic — Figure 1 (left): apps share the controller's
//     fate; one crash downs the control plane.
//   - ModeIsolated — AppVisor only: crashes are contained, the crashed
//     app stays down until respawned, no rollback.
//   - ModeLegoSDN — the full system: isolation + checkpoints + network
//     transactions + policy-driven recovery (Figure 1, right).
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"legosdn/internal/appvisor"
	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
	"legosdn/internal/crashpad"
	"legosdn/internal/durable"
	"legosdn/internal/flightrec"
	"legosdn/internal/flowtable"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// Mode selects the controller architecture.
type Mode int

// Architecture modes.
const (
	ModeMonolithic Mode = iota
	ModeIsolated
	ModeLegoSDN
)

func (m Mode) String() string {
	switch m {
	case ModeMonolithic:
		return "monolithic"
	case ModeIsolated:
		return "isolated"
	case ModeLegoSDN:
		return "legosdn"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config assembles a Stack.
type Config struct {
	// Mode picks the architecture (default ModeLegoSDN).
	Mode Mode
	// CheckpointEvery is Crash-Pad's checkpoint cadence (default 1).
	CheckpointEvery int
	// CheckpointDelta enables incremental checkpoints: the store keeps a
	// full image every CheckpointDelta-th put per app and byte-range
	// deltas between, with accessors reconstructing transparently.
	// <=1 disables (every checkpoint a full image).
	CheckpointDelta int
	// Policies is the operator availability/correctness policy set
	// (default: absolute compromise everywhere).
	Policies *crashpad.PolicySet
	// UseDelayBuffer replaces NetLog with the §4.1 delay-buffer
	// prototype (ablation).
	UseDelayBuffer bool
	// Checker, when set, enables byzantine failure detection.
	Checker crashpad.InvariantChecker
	// OnNetworkShutdown handles No-Compromise invariant escalation.
	OnNetworkShutdown func([]crashpad.Violation)
	// Store persists checkpoints across Stack instances (controller
	// upgrades); nil allocates a private store.
	Store *checkpoint.Store
	// Durable wires the stack to an on-disk state directory (opened by
	// the caller via durable.OpenState): checkpoints persist through its
	// WAL-backed store (superseding Store), NetLog journals transaction
	// lifecycles, and ConnectNetwork rolls back any transaction a crash
	// interrupted before new events flow. The caller keeps ownership —
	// Stack.Close does not close it, so a simulated SIGKILL (abandoning
	// the stack without closing the state) leaves the journal exactly as
	// a real crash would.
	Durable *durable.State
	// Journal overrides the NetLog journal wiring when Durable is set:
	// the replicated control plane wraps Durable.Journal so every append
	// also waits for follower acknowledgment (wait-for-quorum commit).
	// Nil keeps the plain Durable.Journal.
	Journal netlog.Journal
	// Clock drives NetLog timeout bookkeeping (nil = real time).
	Clock flowtable.Clock
	// EventTimeout bounds one proxied event round trip (default 2s).
	EventTimeout time.Duration
	// HeartbeatTimeout tunes crash detection via heartbeat loss
	// (default 500ms; negative disables).
	HeartbeatTimeout time.Duration
	// StubBinary, when set, hosts each app in its own OS process using
	// this cmd/legosdn-stub binary (true address-space isolation, as in
	// the paper's prototype). Apps must then be registry apps: the stub
	// process materializes them by name. Empty selects in-process
	// goroutine-domain stubs.
	StubBinary string
	// OnTicket observes Crash-Pad problem tickets.
	OnTicket func(*crashpad.Ticket)
	// Parallel enables the controller's per-app worker queues:
	// independent apps process events concurrently while each app still
	// sees its events in controller order. Ignored in ModeMonolithic
	// (fate sharing needs panics on the dispatch goroutine).
	Parallel bool
	// BatchMax caps how many queued events a parallel worker coalesces
	// into one delivery (and AppVisor into one datagram). Default 32.
	BatchMax int
	// Logf receives controller diagnostics.
	Logf func(format string, args ...any)
	// Metrics is the registry every layer reports into; nil allocates a
	// private one (exposed as Stack.Metrics).
	Metrics *metrics.Registry
	// Tracer samples injected events into end-to-end traces spanning
	// controller dispatch, AppVisor round trips, NetLog transactions and
	// Crash-Pad recovery. Nil disables tracing; disabled tracing costs
	// one nil check per stage.
	Tracer *trace.Tracer
	// Logger receives structured diagnostics from every layer; it is
	// wrapped with trace.WrapHandler so log lines carried by traced
	// events include the trace id. Nil disables structured logging.
	Logger *slog.Logger
	// Flight is the always-on crash flight recorder shared by every
	// layer. Unlike Tracer it cannot be disabled: nil allocates one with
	// default ring sizes, so the last moments before a crash are always
	// available to autopsy reports (exposed as Stack.Flight).
	Flight *flightrec.Recorder
	// AutopsyDir persists autopsy reports as JSON files. Empty defaults
	// to <Durable dir>/autopsies when Durable is set, else autopsies
	// stay in-memory only (served by Stack.Autopsies.HTTPHandler).
	AutopsyDir string
}

// Stack is a fully wired LegoSDN deployment.
type Stack struct {
	Mode       Mode
	Controller *controller.Controller
	NetLog     *netlog.Manager
	DelayBuf   *netlog.DelayBuffer
	CrashPad   *crashpad.CrashPad
	Store      *checkpoint.Store
	Metrics    *metrics.Registry
	Flight     *flightrec.Recorder
	Autopsies  *flightrec.Store

	cfg Config

	mu        sync.Mutex
	proxies   map[string]*appvisor.Proxy
	replicas  map[string]func() controller.App
	closed    bool
	recovered bool
}

// NewStack builds and starts a stack in the configured mode.
func NewStack(cfg Config) *Stack {
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Durable != nil {
		cfg.Store = cfg.Durable.Store()
	}
	if cfg.Store == nil {
		cfg.Store = checkpoint.NewStore(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logger != nil {
		cfg.Logger = slog.New(trace.WrapHandler(cfg.Logger.Handler()))
	}
	if cfg.CheckpointDelta > 1 {
		cfg.Store.SetDeltaEvery(cfg.CheckpointDelta)
	}
	if cfg.Flight == nil {
		cfg.Flight = flightrec.New(flightrec.Options{})
	}
	if cfg.AutopsyDir == "" && cfg.Durable != nil {
		cfg.AutopsyDir = filepath.Join(cfg.Durable.Dir(), "autopsies")
	}
	autopsies := flightrec.NewStore(cfg.AutopsyDir, 0)
	cfg.Store.Instrument(cfg.Metrics)
	cfg.Store.SetLogger(cfg.Logger)
	cfg.Flight.Instrument(cfg.Metrics)
	autopsies.Instrument(cfg.Metrics)
	s := &Stack{
		Mode:      cfg.Mode,
		Store:     cfg.Store,
		Metrics:   cfg.Metrics,
		Flight:    cfg.Flight,
		Autopsies: autopsies,
		cfg:       cfg,
		proxies:   make(map[string]*appvisor.Proxy),
		replicas:  make(map[string]func() controller.App),
	}
	cfg.Tracer.Instrument(cfg.Metrics)
	RegisterBuildInfo(cfg.Metrics)
	if cfg.Durable != nil {
		cfg.Durable.Instrument(cfg.Metrics)
	}

	ctrlCfg := controller.Config{Logf: cfg.Logf, Metrics: cfg.Metrics,
		Parallel: cfg.Parallel, BatchMax: cfg.BatchMax,
		Tracer: cfg.Tracer, Logger: cfg.Logger, Flight: cfg.Flight}
	switch cfg.Mode {
	case ModeMonolithic:
		ctrlCfg.Monolithic = true
		s.Controller = controller.New(ctrlCfg)
	case ModeIsolated:
		ctrlCfg.Runner = isolatedRunner{}
		s.Controller = controller.New(ctrlCfg)
	case ModeLegoSDN:
		s.Controller = controller.New(ctrlCfg)
		if cfg.UseDelayBuffer {
			s.DelayBuf = netlog.NewDelayBuffer(s.Controller)
			s.DelayBuf.Instrument(cfg.Metrics)
			s.Controller.AddOutboundHook(s.DelayBuf.Hook())
		} else {
			s.NetLog = netlog.NewManager(s.Controller, cfg.Clock)
			s.NetLog.Instrument(cfg.Metrics)
			s.NetLog.SetTracer(cfg.Tracer)
			s.NetLog.SetFlight(cfg.Flight)
			switch {
			case cfg.Journal != nil:
				s.NetLog.SetJournal(cfg.Journal)
			case cfg.Durable != nil:
				s.NetLog.SetJournal(cfg.Durable.Journal)
			}
			s.NetLog.Install(s.Controller)
		}
		s.CrashPad = crashpad.New(crashpad.Options{
			Store:             cfg.Store,
			CheckpointEvery:   cfg.CheckpointEvery,
			Policies:          cfg.Policies,
			NetLog:            s.NetLog,
			DelayBuffer:       s.DelayBuf,
			Checker:           cfg.Checker,
			OnTicket:          cfg.OnTicket,
			OnNetworkShutdown: cfg.OnNetworkShutdown,
			Metrics:           cfg.Metrics,
			Tracer:            cfg.Tracer,
			Logger:            cfg.Logger,
			Flight:            cfg.Flight,
			Autopsies:         autopsies,
			// Deep recovery (§5) replays against throwaway replicas
			// built from the same factories AddApp registered.
			ReplicaFactory: func(name string) controller.App {
				s.mu.Lock()
				factory := s.replicas[name]
				s.mu.Unlock()
				if factory == nil {
					return nil
				}
				return factory()
			},
		})
		s.Controller.SetRunner(s.CrashPad)
	}
	return s
}

// AddApp installs an SDN-App under the stack's architecture. newApp
// must return a fresh instance on each call: isolation modes use it to
// (re)launch stubs, and the monolithic mode calls it exactly once. If
// the checkpoint store holds prior state for the app (e.g. from before
// a controller upgrade), the app is restored from it.
func (s *Stack) AddApp(newApp func() controller.App) error {
	probe := newApp()
	name := probe.Name()
	s.mu.Lock()
	s.replicas[name] = newApp
	s.mu.Unlock()
	switch s.Mode {
	case ModeMonolithic:
		s.restoreIfCheckpointed(probe, name)
		s.Controller.Register(probe)
		return nil
	default:
		// In-process stubs share the stack's tracer, so their handler
		// spans land in the same ring; subprocess stubs get their own
		// tracer (cmd/legosdn-stub) joined by the wire-propagated ids.
		factory := appvisor.InProcessFactory(newApp, appvisor.StubOptions{Tracer: s.cfg.Tracer})
		if s.cfg.StubBinary != "" {
			factory = appvisor.SubprocessFactory(s.cfg.StubBinary, name)
		}
		proxy, err := appvisor.NewProxy(name, s.Controller, factory,
			appvisor.ProxyOptions{
				EventTimeout:     s.cfg.EventTimeout,
				HeartbeatTimeout: s.cfg.HeartbeatTimeout,
				Metrics:          s.Metrics,
				Tracer:           s.cfg.Tracer,
				Flight:           s.cfg.Flight,
			})
		if err != nil {
			return fmt.Errorf("core: launching stub for %q: %w", name, err)
		}
		s.restoreIfCheckpointed(proxy, name)
		s.mu.Lock()
		s.proxies[name] = proxy
		s.mu.Unlock()
		s.Controller.Register(proxy)
		return nil
	}
}

// restoreIfCheckpointed loads the newest stored image into the app, the
// §3.4 controller-upgrade path: state survives in the isolation layer
// while the controller restarts.
func (s *Stack) restoreIfCheckpointed(app controller.App, name string) {
	snap, ok := app.(controller.Snapshotter)
	if !ok {
		return
	}
	if cp := s.Store.Latest(name); cp != nil {
		_ = snap.Restore(cp.State)
	}
}

// Proxy returns the AppVisor proxy hosting the named app (nil in
// monolithic mode or for unknown names).
func (s *Stack) Proxy(name string) *appvisor.Proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proxies[name]
}

// ConnectNetwork attaches every switch in the simulated network over
// in-memory pipes and waits for their handshakes to finish dispatching.
func (s *Stack) ConnectNetwork(n *netsim.Network) error {
	conns := make([]*openflow.Conn, 0, len(n.Switches()))
	for _, sw := range n.Switches() {
		ctrlSide, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			return err
		}
		conns = append(conns, ctrlSide)
	}
	return s.ConnectConns(conns)
}

// ConnectConns attaches already-established switch connections (the
// switch end must be pumping — e.g. a netsim slave connection promoted
// to master during failover), waits for the handshakes to finish
// dispatching, and then runs durable recovery. This is the failover
// entry point: a promoted replica adopts the previous leader's switch
// connections without re-dialing.
func (s *Stack) ConnectConns(conns []*openflow.Conn) error {
	target := s.Controller.Processed.Load()
	for _, conn := range conns {
		if err := s.Controller.AttachSwitchConn(conn); err != nil {
			return err
		}
		target++
	}
	// Wait for the queued SwitchUp events to dispatch, so callers can
	// immediately inject traffic without racing app registration state.
	deadline := time.Now().Add(5 * time.Second)
	for s.Controller.Processed.Load() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("core: switch-up events never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	return s.recoverDurable()
}

// recoverDurable rolls back any transaction the previous controller
// incarnation left open in the durable journal. It runs once, after the
// switches have attached (the inverses need live connections) and
// before the caller starts injecting traffic — the "before new events
// flow" half of the crash-consistency contract. The inverse sends pass
// through NetLog's outbound hook with no active transaction, so the
// shadow tables absorb them and end consistent with the switches.
func (s *Stack) recoverDurable() error {
	d := s.cfg.Durable
	if d == nil {
		return nil
	}
	s.mu.Lock()
	ran := s.recovered
	s.recovered = true
	s.mu.Unlock()
	if ran || len(d.Journal.Orphans()) == 0 {
		return nil
	}
	// The previous incarnation died with transactions open: this restart
	// is itself a recovery, so it gets a timeline and an autopsy like any
	// app crash. Detect covers the orphan scan (charged up to here),
	// rollback covers the inverse replay; there is no checkpoint restore
	// or event replay in this path, so those phases report zero.
	orphans := len(d.Journal.Orphans())
	tl := flightrec.NewTimeline(nil)
	s.cfg.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCrashPad, Kind: flightrec.KindCrashDetected,
		App:  "controller",
		Note: fmt.Sprintf("durable journal holds %d orphaned txn(s)", orphans),
	})
	sp := s.cfg.Tracer.StartSpan(s.cfg.Tracer.Root(), "durable.recover")
	tl.Enter(flightrec.PhaseRollback)
	txns, mods, err := d.ReplayOrphans(s.Controller, time.Now())
	tl.Enter(flightrec.PhaseResume)
	sp.AttrInt("txns", int64(txns)).AttrInt("mods", int64(mods))
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End()
	tl.Finish()
	outcome := "Recovered"
	if err != nil {
		outcome = "Failed"
	}
	s.cfg.Flight.Record(flightrec.Record{
		Layer: flightrec.LayerCrashPad, Kind: flightrec.KindRecoveryDone,
		App:  "controller",
		Note: fmt.Sprintf("durable recovery: %d txn(s), %d mod(s), outcome=%s", txns, mods, outcome),
	})
	a := &flightrec.Autopsy{
		App:     "controller",
		Trigger: "durable-recovery",
		Class:   "crash-restart",
		Culprit: fmt.Sprintf("%d orphaned transaction(s) in durable journal", orphans),
		Outcome: outcome,
		Notes: []string{
			fmt.Sprintf("rolled back %d txn(s) via %d inverse mod(s)", txns, mods),
		},
		Timeline:        tl.Phases(),
		RecoverySeconds: tl.Total().Seconds(),
		Records:         s.cfg.Flight.Correlated("controller", 0, 0, 16),
	}
	if err != nil {
		a.Notes = append(a.Notes, "error: "+err.Error())
	}
	s.Autopsies.Add(a)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("durable recovery finished",
			"txns", txns, "mods", mods, "err", err)
	}
	if err != nil {
		return fmt.Errorf("core: durable recovery: %w", err)
	}
	return nil
}

// Snapshot checkpoints the named app immediately (outside the every-N
// cadence); used before planned controller upgrades.
func (s *Stack) Snapshot(name string) error {
	var snap controller.Snapshotter
	if p := s.Proxy(name); p != nil {
		snap = p
	} else {
		return fmt.Errorf("core: no proxy for %q", name)
	}
	state, err := snap.Snapshot()
	if err != nil {
		return err
	}
	s.Store.Put(name, 0, state)
	return nil
}

// Close shuts down the controller and every stub.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	proxies := make([]*appvisor.Proxy, 0, len(s.proxies))
	for _, p := range s.proxies {
		proxies = append(proxies, p)
	}
	s.mu.Unlock()
	s.Controller.Stop()
	for _, p := range proxies {
		p.Close()
	}
}

// isolatedRunner is the AppVisor-only mode's runner: in-process panics
// are contained, and a proxy's CrashError quarantines the app (no
// recovery machinery, matching a deployment with isolation but without
// Crash-Pad).
type isolatedRunner struct{}

func (isolatedRunner) RunEvent(app controller.App, ctx controller.Context, ev controller.Event) (failure *controller.AppFailure) {
	defer func() {
		if r := recover(); r != nil {
			failure = &controller.AppFailure{App: app.Name(), Event: ev, PanicValue: r}
		}
	}()
	err := app.HandleEvent(ctx, ev)
	var ce *appvisor.CrashError
	if errors.As(err, &ce) {
		return &controller.AppFailure{
			App:        app.Name(),
			Event:      ev,
			PanicValue: ce.Report.PanicValue,
			Stack:      []byte(ce.Report.Stack),
		}
	}
	return nil
}

// RunEventBatch lets the parallel pipeline hand an AppVisor proxy a
// whole coalesced batch, which it relays as one datagram. The crash
// report's Event (batch-indexed by the stub) pins the failure on the
// exact event.
func (r isolatedRunner) RunEventBatch(app controller.App, ctx controller.Context, evs []controller.Event) (failure *controller.AppFailure) {
	ba, ok := app.(controller.BatchApp)
	if !ok {
		for _, ev := range evs {
			if f := r.RunEvent(app, ctx, ev); f != nil {
				return f
			}
		}
		return nil
	}
	defer func() {
		if rec := recover(); rec != nil {
			failure = &controller.AppFailure{App: app.Name(), Event: evs[0], PanicValue: rec}
		}
	}()
	err := ba.HandleEventBatch(ctx, evs)
	var ce *appvisor.CrashError
	if errors.As(err, &ce) {
		f := &controller.AppFailure{
			App:        app.Name(),
			Event:      evs[0],
			PanicValue: ce.Report.PanicValue,
			Stack:      []byte(ce.Report.Stack),
		}
		if ce.Report.HasEvent {
			f.Event = ce.Report.Event
		}
		return f
	}
	return nil
}
