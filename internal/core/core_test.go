package core

import (
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/crashpad"
	"legosdn/internal/faultinject"
	"legosdn/internal/flightrec"
	"legosdn/internal/invariant"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// crashBug returns a learning switch that panics on TCP port `port`
// traffic — a deterministic, input-triggered bug.
func buggyLearningSwitch(port uint16) func() controller.App {
	return func() controller.App {
		return faultinject.Wrap(apps.NewLearningSwitch(), faultinject.Bug{
			ID:          1,
			Severity:    faultinject.Catastrophic,
			TriggerKind: controller.EventPacketIn,
			Description: "poison port",
			// TriggerEvery=0 -> 1; use BadRule-free crash triggered by a
			// dedicated filter below instead.
		}, 1)
	}
}

// portPoisonApp crashes only on packets to a poisoned TCP port. Unlike
// the generic faultinject wrapper (which triggers on every Nth event),
// this models an input-dependent bug: recovery can ignore the poisoned
// event and keep serving the rest.
type portPoisonApp struct {
	*apps.LearningSwitch
	poison uint16
}

func newPortPoisonApp(poison uint16) func() controller.App {
	return func() controller.App {
		return &portPoisonApp{LearningSwitch: apps.NewLearningSwitch(), poison: poison}
	}
}

func (a *portPoisonApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok {
		if f, err := netsim.ParseFrame(pin.Data); err == nil && f.TpDst == a.poison {
			panic("portPoisonApp: packet to poisoned port")
		}
	}
	return a.LearningSwitch.HandleEvent(ctx, ev)
}

func TestMonolithicFateSharingEndToEnd(t *testing.T) {
	stack := NewStack(Config{Mode: ModeMonolithic})
	defer stack.Close()
	stack.AddApp(newPortPoisonApp(6666))

	n := netsim.Single(3, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Healthy traffic first.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 80, nil))
	waitFor(t, "healthy delivery", func() bool { return h2.ReceivedCount() >= 1 })

	// Poisoned packet: the whole control plane dies.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 6666, nil))
	waitFor(t, "controller crash", stack.Controller.Crashed)

	// New flows now die on table miss: the network is headless.
	h3 := n.Host("h3")
	before := h3.ReceivedCount()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h3, 2000, 80, nil))
	time.Sleep(30 * time.Millisecond)
	if h3.ReceivedCount() != before {
		t.Fatal("headless network delivered a new flow")
	}
}

func TestLegoSDNSurvivesSameBug(t *testing.T) {
	var tickets []*crashpad.Ticket
	stack := NewStack(Config{
		Mode:     ModeLegoSDN,
		OnTicket: func(tk *crashpad.Ticket) { tickets = append(tickets, tk) },
	})
	defer stack.Close()
	if err := stack.AddApp(newPortPoisonApp(6666)); err != nil {
		t.Fatal(err)
	}

	n := netsim.Single(3, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")

	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 80, nil))
	waitFor(t, "healthy delivery", func() bool { return h2.ReceivedCount() >= 1 })

	// The same poisoned packet: Crash-Pad absorbs it.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1000, 6666, nil))
	waitFor(t, "recovery", func() bool { return stack.CrashPad.Recoveries.Load() >= 1 })

	if stack.Controller.Crashed() {
		t.Fatal("controller died despite LegoSDN")
	}
	if stack.Controller.AppDisabled("learning-switch") {
		t.Fatal("app quarantined despite recovery")
	}

	// The app still works: reply traffic gets a rule installed.
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 80, 1000, nil))
	waitFor(t, "post-recovery delivery", func() bool { return h1.ReceivedCount() >= 1 })

	if len(tickets) != 1 {
		t.Fatalf("tickets = %d", len(tickets))
	}
	tk := tickets[0]
	if tk.Outcome != crashpad.OutcomeRecovered && tk.Outcome != crashpad.OutcomeFallback {
		t.Fatalf("ticket outcome %v", tk.Outcome)
	}
	if !strings.Contains(tk.PanicValue, "poisoned port") {
		t.Fatalf("panic value %q", tk.PanicValue)
	}
	if tk.Stack == "" {
		t.Fatal("ticket missing stack trace")
	}
}

func TestIsolatedModeContainsButDoesNotRecover(t *testing.T) {
	stack := NewStack(Config{Mode: ModeIsolated})
	defer stack.Close()
	stack.AddApp(newPortPoisonApp(6666))
	stack.AddApp(func() controller.App { return apps.NewStatsCollector() })

	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 6666, nil))

	waitFor(t, "app quarantine", func() bool { return stack.Controller.AppDisabled("learning-switch") })
	if stack.Controller.Crashed() {
		t.Fatal("controller should survive in isolated mode")
	}
	// The other app keeps running.
	if stack.Controller.AppDisabled("stats-collector") {
		t.Fatal("bystander app quarantined")
	}
}

// multiRuleApp installs 3 rules per PacketIn then crashes on the
// poisoned port AFTER installing 2 of them — the §3.4 atomic-update
// ambiguity.
type multiRuleApp struct {
	poison uint16
	count  uint16
}

func newMultiRuleApp(poison uint16) func() controller.App {
	return func() controller.App { return &multiRuleApp{poison: poison} }
}

func (a *multiRuleApp) Name() string { return "multirule" }
func (a *multiRuleApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *multiRuleApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin := ev.Message.(*openflow.PacketIn)
	f, err := netsim.ParseFrame(pin.Data)
	if err != nil {
		return nil
	}
	poisoned := f.TpDst == a.poison
	for i := uint16(0); i < 3; i++ {
		if poisoned && i == 2 {
			panic("multiRuleApp: died mid-transaction")
		}
		a.count++
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardTpSrc
		m.TpSrc = a.count
		if err := ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: 7,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
		}); err != nil {
			return err
		}
	}
	return nil
}
func (a *multiRuleApp) Snapshot() ([]byte, error) {
	return []byte{byte(a.count >> 8), byte(a.count)}, nil
}
func (a *multiRuleApp) Restore(b []byte) error {
	a.count = uint16(b[0])<<8 | uint16(b[1])
	return nil
}

func TestAtomicUpdateRollsBackPartialTransaction(t *testing.T) {
	stack := NewStack(Config{Mode: ModeLegoSDN})
	defer stack.Close()
	stack.AddApp(newMultiRuleApp(6666))

	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	sw := n.Switch(1)
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Healthy event: all 3 rules commit.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	waitFor(t, "3 committed rules", func() bool { return sw.Table().Len() == 3 })
	baseline := sw.Table().Fingerprint()

	// Poisoned event: 2 of 3 rules reach the switch, then the app dies.
	// NetLog must remove exactly those 2.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 9999, 6666, nil))
	waitFor(t, "recovery", func() bool { return stack.CrashPad.Recoveries.Load() >= 1 })
	waitFor(t, "rollback to baseline", func() bool { return sw.Table().Fingerprint() == baseline })
	if stack.NetLog.Rollbacks.Load() == 0 || stack.NetLog.RolledBackMods.Load() != 2 {
		t.Fatalf("netlog rollbacks=%d mods=%d, want 1/2", stack.NetLog.Rollbacks.Load(), stack.NetLog.RolledBackMods.Load())
	}
}

func TestByzantineRuleDetectedAndRolledBack(t *testing.T) {
	n := netsim.Single(2, nil)
	suite := invariant.NewSuite(n)
	stack := NewStack(Config{
		Mode:    ModeLegoSDN,
		Checker: suite.CrashPadChecker(nil),
	})
	defer stack.Close()

	// App that installs a looping rule on the first packet-in.
	stack.AddApp(func() controller.App {
		return faultinject.Wrap(apps.NewLearningSwitch(), faultinject.Bug{
			Severity:    faultinject.ByzantineSev,
			TriggerKind: controller.EventPacketIn,
		}, 1)
	})
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))

	waitFor(t, "byzantine detection", func() bool { return stack.CrashPad.ByzantineSeen.Load() >= 1 })
	// The looping rule must be gone from the switch.
	waitFor(t, "bad rule rollback", func() bool {
		for _, e := range n.Switch(1).Table().Entries() {
			if e.Priority == 999 {
				return false
			}
		}
		return true
	})
	if stack.Controller.Crashed() {
		t.Fatal("controller died")
	}
}

func TestNoCompromiseInvariantShutsNetworkDown(t *testing.T) {
	n := netsim.Single(2, nil)
	suite := invariant.NewSuite(n)
	var shutdownFired atomic.Bool
	stack := NewStack(Config{
		Mode:    ModeLegoSDN,
		Checker: suite.CrashPadChecker(func(invariant.Violation) bool { return true }),
		OnNetworkShutdown: func([]crashpad.Violation) {
			shutdownFired.Store(true)
			for _, sw := range n.Switches() {
				n.SetSwitchDown(sw.DPID, true)
			}
		},
	})
	defer stack.Close()
	stack.AddApp(func() controller.App {
		return faultinject.Wrap(apps.NewLearningSwitch(), faultinject.Bug{
			Severity:    faultinject.ByzantineSev,
			TriggerKind: controller.EventPacketIn,
		}, 1)
	})
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))

	waitFor(t, "shutdown escalation", shutdownFired.Load)
	waitFor(t, "network down", func() bool { return n.Switch(1).Down() })
}

func TestUpgradeRetainsStateViaCheckpointStore(t *testing.T) {
	store := NewStack(Config{Mode: ModeLegoSDN}).Store // grab a store shape
	_ = store
	shared := NewStack(Config{Mode: ModeLegoSDN})
	shared.Close()

	// Stack 1: learn some state, snapshot, "upgrade" (close).
	st1 := NewStack(Config{Mode: ModeLegoSDN})
	st1.AddApp(func() controller.App { return apps.NewLearningSwitch() })
	n := netsim.Single(2, nil)
	if err := st1.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 80, 1, nil))
	waitFor(t, "learning", func() bool {
		snap, err := st1.Proxy("learning-switch").Snapshot()
		return err == nil && len(snap) > 20
	})
	if err := st1.Snapshot("learning-switch"); err != nil {
		t.Fatal(err)
	}
	persisted := st1.Store
	st1.Close()

	// Stack 2 (post-upgrade) with the same store: state is restored.
	st2 := NewStack(Config{Mode: ModeLegoSDN, Store: persisted})
	defer st2.Close()
	st2.AddApp(func() controller.App { return apps.NewLearningSwitch() })
	snap, err := st2.Proxy("learning-switch").Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) <= 20 {
		t.Fatalf("restored state too small (%d bytes): upgrade lost state", len(snap))
	}
}

func TestDelayBufferModeRecovers(t *testing.T) {
	stack := NewStack(Config{Mode: ModeLegoSDN, UseDelayBuffer: true})
	defer stack.Close()
	stack.AddApp(newMultiRuleApp(6666))
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	sw := n.Switch(1)
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Healthy event flushes 3 rules.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	waitFor(t, "flush", func() bool { return sw.Table().Len() == 3 })

	// Poisoned event: held rules are discarded, nothing reaches the
	// switch, app recovers.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 9999, 6666, nil))
	waitFor(t, "recovery", func() bool { return stack.CrashPad.Recoveries.Load() >= 1 })
	if sw.Table().Len() != 3 {
		t.Fatalf("partial rules leaked: len=%d", sw.Table().Len())
	}
	if stack.DelayBuf.DiscardedMods.Load() != 2 {
		t.Fatalf("discarded = %d, want 2", stack.DelayBuf.DiscardedMods.Load())
	}
}

func TestModeString(t *testing.T) {
	if ModeMonolithic.String() != "monolithic" || ModeLegoSDN.String() != "legosdn" {
		t.Fatal("mode names changed")
	}
}

// corruptingApp is the §5 multi-event scenario: a packet to port 6000
// silently corrupts state; every later packet-in crashes. The
// corruption is inside the snapshot, so shallow restore cannot shed it.
type corruptingApp struct {
	corrupt bool
	handled int
}

func newCorruptingApp() controller.App { return &corruptingApp{} }

func (a *corruptingApp) Name() string { return "corrupting" }
func (a *corruptingApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *corruptingApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin := ev.Message.(*openflow.PacketIn)
	f, err := netsim.ParseFrame(pin.Data)
	if err != nil {
		return nil
	}
	if a.corrupt {
		panic("corruptingApp: poisoned state")
	}
	if f.TpDst == 6000 {
		a.corrupt = true
		return nil
	}
	a.handled++
	return nil
}
func (a *corruptingApp) Snapshot() ([]byte, error) {
	b := []byte{0, byte(a.handled)}
	if a.corrupt {
		b[0] = 1
	}
	return b, nil
}
func (a *corruptingApp) Restore(state []byte) error {
	a.corrupt = state[0] == 1
	a.handled = int(state[1])
	return nil
}

func TestDeepRecoveryEndToEnd(t *testing.T) {
	stack := NewStack(Config{Mode: ModeLegoSDN})
	defer stack.Close()
	stack.AddApp(newCorruptingApp)
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")

	// Healthy traffic, then the silent poison, then the crash storm.
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 2, 6000, nil)) // poison
	for i := 0; i < 5; i++ {
		n.SendFromHost("h1", netsim.TCPFrame(h1, h2, uint16(10+i), 80, nil))
	}
	waitFor(t, "deep recovery", func() bool { return stack.CrashPad.DeepRecoveries.Load() >= 1 })
	if stack.Controller.Crashed() || stack.Controller.AppDisabled("corrupting") {
		t.Fatal("app not live after deep recovery")
	}
	// Post-recovery traffic processes without further crashes.
	crashes := stack.CrashPad.CrashesSeen.Load()
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 99, 80, nil))
	waitFor(t, "clean post-recovery event", func() bool {
		return stack.Controller.Processed.Load() > 0 && stack.CrashPad.CrashesSeen.Load() == crashes
	})
	time.Sleep(30 * time.Millisecond)
	if stack.CrashPad.CrashesSeen.Load() != crashes {
		t.Fatal("crash storm continued after deep recovery")
	}
}

func TestSubprocessStubMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	bin := filepath.Join(t.TempDir(), "legosdn-stub")
	build := exec.Command("go", "build", "-o", bin, "legosdn/cmd/legosdn-stub")
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	build.Dir = filepath.Dir(string(out[:len(out)-1]))
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building stub: %v\n%s", err, msg)
	}

	stack := NewStack(Config{Mode: ModeLegoSDN, StubBinary: bin})
	defer stack.Close()
	if err := stack.AddApp(func() controller.App { return apps.NewLearningSwitch() }); err != nil {
		t.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	// A full control loop through a real OS-process stub.
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h2", netsim.TCPFrame(h2, h1, 80, 1, nil))
	waitFor(t, "rule learned through subprocess stub", func() bool {
		return n.Switch(1).Table().Len() >= 1
	})
	if !stack.Proxy("learning-switch").StubUp() {
		t.Fatal("subprocess stub not up")
	}
}

func TestStackWithOperatorPolicies(t *testing.T) {
	policies, err := crashpad.ParsePolicies(`
default absolute
app learning-switch default no
`)
	if err != nil {
		t.Fatal(err)
	}
	stack := NewStack(Config{Mode: ModeLegoSDN, Policies: policies})
	defer stack.Close()
	stack.AddApp(newPortPoisonApp(6666))
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 9999, 6666, nil))
	// No-compromise policy: the app stays down instead of recovering.
	waitFor(t, "policy-driven quarantine", func() bool {
		return stack.Controller.AppDisabled("learning-switch")
	})
	if stack.CrashPad.Recoveries.Load() != 0 {
		t.Fatal("no-compromise policy was ignored")
	}
	if stack.Controller.Crashed() {
		t.Fatal("controller must survive even under no-compromise")
	}
}

// TestStackMetricNamesUnique builds a full LegoSDN stack (every layer
// instrumenting the same registry, including the flight recorder and
// the autopsy store) under a strict registry: any two layers claiming
// the same metric name with different instruments panics the build.
// This is the programmatic half of CI's duplicate-metric gate.
func TestStackMetricNamesUnique(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.SetStrict(true)
	stack := NewStack(Config{
		Mode:    ModeLegoSDN,
		Metrics: reg,
		Tracer:  trace.New(trace.Options{}),
	})
	defer stack.Close()
	if err := stack.AddApp(newPortPoisonApp(6666)); err != nil {
		t.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	if dups := reg.Duplicates(); len(dups) != 0 {
		t.Fatalf("duplicate metric registrations: %v", dups)
	}
}

// TestStackFlightRecorderAlwaysOn: the recorder cannot be configured
// away — a default stack records dispatches without any observability
// opt-in, so post-crash forensics never depend on foresight.
func TestStackFlightRecorderAlwaysOn(t *testing.T) {
	stack := NewStack(Config{Mode: ModeLegoSDN})
	defer stack.Close()
	if stack.Flight == nil {
		t.Fatal("Stack.Flight nil: flight recorder must default on")
	}
	if stack.Autopsies == nil {
		t.Fatal("Stack.Autopsies nil: autopsy store must default on")
	}
	if err := stack.AddApp(newPortPoisonApp(6666)); err != nil {
		t.Fatal(err)
	}
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	recs := stack.Flight.LayerRecords(flightrec.LayerController, 10)
	if len(recs) == 0 {
		t.Fatal("no controller flight records after switch-up dispatches")
	}
}
