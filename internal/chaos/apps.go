package chaos

import (
	"encoding/binary"
	"fmt"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// EventLog lives outside the app instances (the scenario owns it), so
// it survives stub kills, respawns and checkpoint restores — exactly
// the vantage point the FIFO invariant needs: what was *delivered*,
// regardless of which incarnation of the app received it.
type EventLog struct {
	mu sync.Mutex
	// seqs holds every delivered event Seq per app, in delivery order
	// (duplicates included: wire dup faults and post-restore replay both
	// legitimately deliver a Seq more than once), interleaved with
	// restore markers: a checkpoint restore rewinds the app, opening a
	// new FIFO epoch.
	seqs map[string][]Delivery
	// crashNth holds one-shot crash triggers per app: when the app's
	// n-th delivery (1-based) arrives it panics, and the trigger is
	// consumed so the post-recovery replay of the same event succeeds —
	// a transient §2.1 bug.
	crashNth map[string]map[int]bool
	// crashesFired counts consumed triggers.
	crashesFired int
}

// Delivery is one entry in an app's log: an event delivery, or a
// restore marker (Restore true, Seq meaningless).
type Delivery struct {
	Seq     uint64
	Restore bool
}

// NewEventLog creates an empty delivery log.
func NewEventLog() *EventLog {
	return &EventLog{
		seqs:     make(map[string][]Delivery),
		crashNth: make(map[string]map[int]bool),
	}
}

// CrashOnNth arms a one-shot panic for app at its nth delivery
// (1-based, counting duplicates and replays).
func (l *EventLog) CrashOnNth(app string, nth int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.crashNth[app]
	if m == nil {
		m = make(map[int]bool)
		l.crashNth[app] = m
	}
	m[nth] = true
}

func (l *EventLog) note(app string, seq uint64) (crash bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seqs[app] = append(l.seqs[app], Delivery{Seq: seq})
	n := 0
	for _, d := range l.seqs[app] {
		if !d.Restore {
			n++
		}
	}
	if m := l.crashNth[app]; m[n] {
		delete(m, n)
		l.crashesFired++
		return true
	}
	return false
}

func (l *EventLog) noteRestore(app string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seqs[app] = append(l.seqs[app], Delivery{Restore: true})
}

// CrashesFired reports how many armed panics actually triggered.
func (l *EventLog) CrashesFired() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashesFired
}

// Delivered returns the delivery-ordered log for one app, restore
// markers included.
func (l *EventLog) Delivered(app string) []Delivery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Delivery(nil), l.seqs[app]...)
}

// Apps returns the names with at least one recorded delivery.
func (l *EventLog) Apps() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.seqs))
	for name := range l.seqs {
		names = append(names, name)
	}
	return names
}

// CheckFIFO verifies per-app FIFO delivery for one app's log: within
// each restore epoch, the first occurrence of each distinct Seq must be
// strictly increasing. Duplicates (dup faults, replayed deliveries) are
// allowed, and a checkpoint restore rewinds the app — opening a new
// epoch in which older history legitimately arrives again. What is
// never allowed is a new Seq arriving below one already seen in the
// same epoch: that would mean the proxy reordered the app's live
// event stream.
func CheckFIFO(log []Delivery) error {
	seen := make(map[uint64]bool, len(log))
	var last uint64
	var have bool
	for i, d := range log {
		if d.Restore {
			have = false // rewound: new epoch, fresh watermark
			continue
		}
		if seen[d.Seq] {
			continue // replayed or duplicated delivery
		}
		seen[d.Seq] = true
		if have && d.Seq < last {
			return fmt.Errorf("FIFO violated at delivery %d: new seq %d after %d", i, d.Seq, last)
		}
		last, have = d.Seq, true
	}
	return nil
}

// recorder is the scenario workload app: it records every delivery in
// the shared EventLog, counts events in checkpointable state, and
// installs one deterministic, idempotent flow rule per PacketIn so the
// shadow-vs-switch consistency invariant has real transactional state
// to check. It subscribes to PacketIn only, so netsim lifecycle events
// (PortStatus from link flaps) never perturb the wire-fault streams.
type recorder struct {
	name  string
	log   *EventLog
	count uint64
}

func newRecorder(name string, log *EventLog) *recorder {
	return &recorder{name: name, log: log}
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}

func (r *recorder) HandleEvent(ctx controller.Context, ev controller.Event) error {
	crash := r.log.note(r.name, ev.Seq)
	err := ctx.SendFlowMod(ev.DPID, ruleForSeq(ev.Seq))
	if crash {
		// The panic lands *after* the flow mod, so the open transaction
		// has state to roll back — the case NetLog's inverse ops exist for.
		panic(fmt.Sprintf("chaos: armed crash in %s at seq %d", r.name, ev.Seq))
	}
	r.count++
	return err
}

// ruleForSeq derives an idempotent flow rule from the event's Seq: the
// same event always yields the same rule, so replay converges instead
// of accreting. TpDst spreads Seqs over 64 distinct rules per switch.
func ruleForSeq(seq uint64) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(8000 + seq%64)
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: 100,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: hostPort}},
	}
}

// hostPort is where topology builders attach hosts; forwarding there is
// loop-free on every stock topology.
const hostPort uint16 = 100

// Snapshot implements controller.Snapshotter: the recorder's whole
// state is its event count.
func (r *recorder) Snapshot() ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], r.count)
	return b[:], nil
}

// Restore implements controller.Snapshotter. Besides reloading state it
// marks a new FIFO epoch in the shared log: the app has been rewound,
// so older history may legitimately be delivered again.
func (r *recorder) Restore(state []byte) error {
	if len(state) != 8 {
		return fmt.Errorf("chaos: recorder snapshot is %d bytes, want 8", len(state))
	}
	r.count = binary.BigEndian.Uint64(state)
	r.log.noteRestore(r.name)
	return nil
}
