package chaos

import (
	"fmt"
	"os"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/durable"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/replica"
)

// failoverMode selects which control-plane fault the HA scenario
// injects once the mid-transaction workload is staged.
type failoverMode int

const (
	// failoverKill SIGKILLs the leader: switch connections drop, WALs
	// close unresolved, replication stops.
	failoverKill failoverMode = iota
	// failoverPartition isolates the leader: it keeps running and keeps
	// its switch connections, but replication and lease renewal stop —
	// the successor must fence it via switch role demotion.
	failoverPartition
	// failoverLag is failoverKill with slow followers: each replicated
	// frame takes extra time to apply, so promotion must drain a real
	// catch-up backlog before serving.
	failoverLag
)

// runHAKillLeader, runHAPartitionLeader and runHAFollowerLag are the
// Custom entry points registered in the library.
func runHAKillLeader(sc Scenario, seed uint64, reg *metrics.Registry) *Report {
	return runHAFailover(sc, seed, failoverKill)
}

func runHAPartitionLeader(sc Scenario, seed uint64, reg *metrics.Registry) *Report {
	return runHAFailover(sc, seed, failoverPartition)
}

func runHAFollowerLag(sc Scenario, seed uint64, reg *metrics.Registry) *Report {
	return runHAFailover(sc, seed, failoverLag)
}

// runHAFailover is the replicated-control-plane chaos scenario: a
// 3-replica cluster runs the recorder workload, the leader dies (or is
// partitioned) with a journaled transaction neither committed nor
// aborted, and a follower must win the lease, finish recovery from its
// replicated journal, and resume dispatch — with every single-stack
// invariant still holding on the other side of the failover.
//
// The scenarios are not Deterministic: leases, election timing and
// replication are wall-clock concurrent by nature. Invariants, not
// byte-for-byte reports, are the acceptance bar (like the netsim
// scenarios).
func runHAFailover(sc Scenario, seed uint64, mode failoverMode) *Report {
	sched := NewSchedule(seed)
	rep := &Report{Scenario: sc.Name, Seed: seed, Fired: map[string]int{}}
	add := func(name string, err error) {
		rep.Invariants = append(rep.Invariants, InvariantResult{Name: name, Err: err})
	}
	fail := func(err error) *Report {
		add("setup", err)
		rep.ScheduleFingerprint = sched.Fingerprint()
		return rep
	}

	stateDir, err := os.MkdirTemp("", "legosdn-chaos-ha-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(stateDir)

	n := netsim.Single(2, nil)
	log := NewEventLog()
	const appName = "rec0"

	opts := replica.Options{
		Dir:             stateDir,
		Replicas:        3,
		CommitMode:      replica.CommitQuorum,
		LeaseTTL:        80 * time.Millisecond,
		HeartbeatEvery:  20 * time.Millisecond,
		CheckpointEvery: sc.CheckpointEvery,
		EventTimeout:    sc.EventTimeout,
		WAL:             durable.Options{NoSync: true},
		AutopsyDir:      sc.AutopsyDir,
		Apps: []func() controller.App{
			func() controller.App { return newRecorder(appName, log) },
		},
	}
	switch mode {
	case failoverPartition:
		// The partition scenario exercises the async commit path: the
		// quorum wait is a leader-side behavior, and a partitioned
		// leader under quorum would only stall on timeouts.
		opts.CommitMode = replica.CommitAsync
	case failoverLag:
		opts.ApplierDelay = 5 * time.Millisecond
	}
	cluster := replica.New(opts)
	if err := cluster.Start(n); err != nil {
		return fail(fmt.Errorf("cluster start: %w", err))
	}
	defer cluster.Close()

	inject := func(stack *core.Stack, seq int) error {
		target := stack.Controller.Processed.Load() + 1
		err := stack.Controller.Inject(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: 1,
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   hostPort,
				Reason:   openflow.PacketInReasonNoMatch,
			},
		})
		if err != nil {
			return fmt.Errorf("inject %d: %w", seq, err)
		}
		rep.EventsInjected++
		waitProcessed(stack.Controller, target, 30*time.Second)
		return nil
	}

	// ---- phase 1: quorum-committed workload on the initial leader ----
	stackA := cluster.Stack()
	for i := 1; i <= sc.Events; i++ {
		if err := inject(stackA, i); err != nil {
			return fail(err)
		}
	}
	quiesce(stackA.Controller)
	preTxn := n.Switch(1).Table().Fingerprint()

	// The crash victim: a journaled transaction that installs three
	// rules and never reaches commit or abort.
	tx := stackA.NetLog.Begin()
	stackA.NetLog.SetActive(tx)
	for i := 0; i < 3; i++ {
		if err := stackA.Controller.SendFlowMod(1, pendingRule(i)); err != nil {
			return fail(fmt.Errorf("mid-txn flow mod %d: %w", i, err))
		}
	}
	stackA.NetLog.SetActive(nil)
	if err := stackA.Controller.Barrier(1); err != nil {
		return fail(err)
	}
	if fp := n.Switch(1).Table().Fingerprint(); fp == preTxn {
		return fail(fmt.Errorf("interrupted transaction had no effect to roll back"))
	}

	// ---- phase 2: the control-plane fault ----
	oldLeader := cluster.LeaderName()
	switch mode {
	case failoverPartition:
		// Async commit ships in the background; this scenario tests
		// fencing and failover, not async-mode tail loss, so let the
		// followers catch up before cutting them off. (The kill
		// scenario needs no such grace: quorum commit already
		// guarantees the followers hold every journaled op.)
		waitReplicationDrained(cluster, 10*time.Second)
		err = cluster.IsolateLeader()
	default:
		err = cluster.KillLeader()
	}
	if err != nil {
		return fail(err)
	}

	// ---- phase 3: a follower takes over ----
	stackB, err := cluster.WaitLeader(oldLeader, 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("failover: %w", err))
	}
	rep.Fired["ha/elections"] = int(cluster.Elections())
	rep.Fired["ha/failovers"] = int(cluster.Failovers())
	rep.Fired["ha/failover-ms"] = int(cluster.LastMTTR().Milliseconds())
	rep.Fired["ha/recovered-txns"] = int(cluster.State().RecoveredTxns())
	rep.Fired["ha/recovered-mods"] = int(cluster.State().RecoveredMods())

	if mode == failoverPartition {
		// The fenced ex-leader still runs and still believes it leads:
		// its writes must bounce off the switches' slave-role check.
		if old := cluster.OldLeaderStack(); old != nil {
			_ = old.Controller.SendFlowMod(1, pendingRule(7))
			_ = old.Controller.Barrier(1)
		}
	}

	// New events must flow through the successor.
	for i := 1; i <= sc.Events/2; i++ {
		if err := inject(stackB, sc.Events+i); err != nil {
			return fail(err)
		}
	}
	quiesce(stackB.Controller)

	// ---- invariants ----
	var electErr error
	if cluster.Failovers() == 0 {
		electErr = fmt.Errorf("no failover completed")
	} else if got := cluster.LeaderName(); got == oldLeader || got == "" {
		electErr = fmt.Errorf("leadership never moved off %s", oldLeader)
	}
	add("failover-completed", electErr)

	var orphanErr error
	if got := len(cluster.State().Journal.Orphans()); got != 0 {
		orphanErr = fmt.Errorf("%d transactions still orphaned after failover", got)
	} else if cluster.State().RecoveredTxns() == 0 {
		orphanErr = fmt.Errorf("the interrupted transaction was never rolled back")
	}
	add("no-orphaned-txns", orphanErr)

	// None of the interrupted transaction's rules survived (for the
	// partition mode this doubles as the fencing check: pendingRule(7)
	// from the fenced ex-leader must have bounced too).
	var residueErr error
	for _, e := range n.Switch(1).Table().Entries() {
		if e.Priority == pendingPriority {
			residueErr = fmt.Errorf("rolled-back or fenced rule installed: tp_dst=%d", e.Match.TpDst)
			break
		}
	}
	add("rollback-complete", residueErr)

	var shadowErr error
	if got, want := stackB.NetLog.ShadowFingerprint(1), n.Switch(1).Table().Fingerprint(); got != want {
		shadowErr = fmt.Errorf("successor shadow %q != switch %q", got, want)
	}
	add("shadow-consistency", shadowErr)

	var restoredErr error
	if stackB.Store.Latest(appName) == nil {
		restoredErr = fmt.Errorf("app checkpoint history lost across failover")
	}
	add("checkpoints-replicated", restoredErr)

	add("fifo/"+appName, CheckFIFO(log.Delivered(appName)))

	var aliveErr error
	if stackB.Controller.Crashed() {
		aliveErr = fmt.Errorf("successor controller crashed")
	}
	add("controller-alive", aliveErr)

	rep.ScheduleFingerprint = sched.Fingerprint()
	attachAutopsies(rep, stackB)
	return rep
}

// waitReplicationDrained blocks until every live follower has acked the
// leader's full journal (or the timeout passes).
func waitReplicationDrained(cluster *replica.Cluster, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for cluster.ReplicationLag() > 0 {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
