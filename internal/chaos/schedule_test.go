package chaos

import (
	"strings"
	"sync"
	"testing"
)

// Same seed, same draw order: identical logs, byte for byte.
func TestScheduleDeterministic(t *testing.T) {
	run := func() string {
		s := NewSchedule(42)
		for i := 0; i < 100; i++ {
			s.Decide("a", 0.3)
			s.Decide("b", 0.7)
			s.Pick("c", 5)
		}
		return s.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different fingerprints:\n%s\nvs\n%s", a, b)
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a, b := NewSchedule(1), NewSchedule(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Decide("p", 0.5) == b.Decide("p", 0.5) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// A point's stream depends only on (seed, name, draw index) — never on
// how draws at other points interleave.
func TestSchedulePointStreamsIndependent(t *testing.T) {
	solo := NewSchedule(7)
	var soloDraws []uint64
	for i := 0; i < 20; i++ {
		solo.Decide("target", 0.5)
	}
	for _, d := range solo.Decisions() {
		soloDraws = append(soloDraws, d.Draw)
	}

	mixed := NewSchedule(7)
	for i := 0; i < 20; i++ {
		mixed.Decide("noise-a", 0.5)
		mixed.Decide("target", 0.5)
		mixed.Pick("noise-b", 3)
	}
	var mixedDraws []uint64
	for _, d := range mixed.Decisions() {
		if d.Point == "target" {
			mixedDraws = append(mixedDraws, d.Draw)
		}
	}
	if len(soloDraws) != len(mixedDraws) {
		t.Fatalf("draw counts differ: %d vs %d", len(soloDraws), len(mixedDraws))
	}
	for i := range soloDraws {
		if soloDraws[i] != mixedDraws[i] {
			t.Fatalf("draw %d differs: %016x vs %016x", i, soloDraws[i], mixedDraws[i])
		}
	}
}

func TestScheduleProbabilityBounds(t *testing.T) {
	s := NewSchedule(3)
	for i := 0; i < 50; i++ {
		if s.Decide("never", 0) {
			t.Fatal("probability 0 fired")
		}
		if !s.Decide("always", 1) {
			t.Fatal("probability 1 passed")
		}
	}
	fired := 0
	for i := 0; i < 2000; i++ {
		if s.Decide("half", 0.5) {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Fatalf("p=0.5 fired %d/2000 times", fired)
	}
}

func TestSchedulePickRange(t *testing.T) {
	s := NewSchedule(9)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		v := s.Pick("idx", 4)
		if v < 0 || v >= 4 {
			t.Fatalf("Pick returned %d, want [0,4)", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick over 200 draws hit only %d of 4 values", len(seen))
	}
}

// AtomsFromDecisions bundles each firing with its companion pick (the
// j-th pick at P/pick belongs to the j-th firing at P) and skips both
// passed decisions and the pick decisions themselves.
func TestAtomsFromDecisions(t *testing.T) {
	s := NewSchedule(21)
	var picks []int
	for i := 0; i < 60; i++ {
		if s.Decide("appvisor/kill", 0.25) {
			picks = append(picks, s.Pick("appvisor/kill/pick", 3))
		}
		s.Decide("quiet", 0.2)
	}
	atoms := AtomsFromDecisions(s.Decisions())
	var kills []Atom
	for _, a := range atoms {
		if a.Point == "quiet" {
			continue
		}
		if a.Point != "appvisor/kill" {
			t.Fatalf("unexpected atom point %q", a.Point)
		}
		kills = append(kills, a)
	}
	if len(kills) != len(picks) {
		t.Fatalf("%d kill atoms, want %d (one per firing)", len(kills), len(picks))
	}
	for j, a := range kills {
		if a.PickPoint != "appvisor/kill/pick" {
			t.Fatalf("atom %d missing pick bundle: %+v", j, a)
		}
		if got := int(a.PickDraw % 3); got != picks[j] {
			t.Fatalf("atom %d pick value %d, want %d", j, got, picks[j])
		}
	}
}

// A pinned schedule with the full atom set replays the original run
// byte for byte; with a subset, only the kept atoms fire and their
// bundled picks return the recorded victims.
func TestPinnedScheduleReplay(t *testing.T) {
	const seed, rounds = 5, 50
	drive := func(s *Schedule) []int {
		var picked []int
		for i := 0; i < rounds; i++ {
			if s.Decide("f", 0.3) {
				picked = append(picked, s.Pick("f/pick", 7))
			}
			s.Decide("g", 0.2)
		}
		return picked
	}
	orig := NewSchedule(seed)
	origPicks := drive(orig)
	atoms := AtomsFromDecisions(orig.Decisions())
	if len(atoms) < 3 {
		t.Fatalf("seed %d fired only %d atoms, test needs >= 3", seed, len(atoms))
	}

	full := NewPinnedSchedule(seed, atoms)
	drive(full)
	if full.Fingerprint() != orig.Fingerprint() {
		t.Errorf("full pinned replay differs from original:\n%s\nvs\n%s",
			diffHead(full.Fingerprint(), orig.Fingerprint()),
			diffHead(orig.Fingerprint(), full.Fingerprint()))
	}

	// Keep only the second "f" firing: exactly one decision fires, at
	// its recorded per-point position, with its recorded pick value.
	var fAtoms []Atom
	for _, a := range atoms {
		if a.Point == "f" {
			fAtoms = append(fAtoms, a)
		}
	}
	kept := fAtoms[1]
	sub := NewPinnedSchedule(seed, []Atom{kept})
	subPicks := drive(sub)
	fired := 0
	for _, d := range sub.Decisions() {
		if d.Fired && !strings.HasSuffix(d.Point, "/pick") {
			if d.Point != "f" || d.Index != kept.Index {
				t.Errorf("unexpected firing %v, want only f#%d", d, kept.Index)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Errorf("subset replay fired %d decisions, want 1", fired)
	}
	if len(subPicks) != 1 || subPicks[0] != origPicks[1] {
		t.Errorf("subset replay picked %v, want [%d] (the kept firing's recorded victim)",
			subPicks, origPicks[1])
	}

	// Empty pin set: everything passes, probabilities notwithstanding.
	empty := NewPinnedSchedule(seed, nil)
	if empty.Decide("f", 1) {
		t.Error("empty pin set fired a probability-1 decision")
	}
	if !empty.Pinned() || full.Seed() != seed {
		t.Error("pinned schedule accessors broken")
	}
}

// The canonical (grouped) log is identical no matter which goroutines
// performed the draws; run under -race this also proves thread safety.
func TestScheduleConcurrentDrawsCanonical(t *testing.T) {
	serial := NewSchedule(11)
	for i := 0; i < 50; i++ {
		serial.Decide("x", 0.5)
		serial.Decide("y", 0.5)
	}

	conc := NewSchedule(11)
	var wg sync.WaitGroup
	for _, point := range []string{"x", "y"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				conc.Decide(p, 0.5)
			}
		}(point)
	}
	wg.Wait()

	if serial.Fingerprint() != conc.Fingerprint() {
		t.Fatal("concurrent draws changed the canonical log")
	}
}
