package chaos

import (
	"sync"
	"testing"
)

// Same seed, same draw order: identical logs, byte for byte.
func TestScheduleDeterministic(t *testing.T) {
	run := func() string {
		s := NewSchedule(42)
		for i := 0; i < 100; i++ {
			s.Decide("a", 0.3)
			s.Decide("b", 0.7)
			s.Pick("c", 5)
		}
		return s.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different fingerprints:\n%s\nvs\n%s", a, b)
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a, b := NewSchedule(1), NewSchedule(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Decide("p", 0.5) == b.Decide("p", 0.5) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// A point's stream depends only on (seed, name, draw index) — never on
// how draws at other points interleave.
func TestSchedulePointStreamsIndependent(t *testing.T) {
	solo := NewSchedule(7)
	var soloDraws []uint64
	for i := 0; i < 20; i++ {
		solo.Decide("target", 0.5)
	}
	for _, d := range solo.Decisions() {
		soloDraws = append(soloDraws, d.Draw)
	}

	mixed := NewSchedule(7)
	for i := 0; i < 20; i++ {
		mixed.Decide("noise-a", 0.5)
		mixed.Decide("target", 0.5)
		mixed.Pick("noise-b", 3)
	}
	var mixedDraws []uint64
	for _, d := range mixed.Decisions() {
		if d.Point == "target" {
			mixedDraws = append(mixedDraws, d.Draw)
		}
	}
	if len(soloDraws) != len(mixedDraws) {
		t.Fatalf("draw counts differ: %d vs %d", len(soloDraws), len(mixedDraws))
	}
	for i := range soloDraws {
		if soloDraws[i] != mixedDraws[i] {
			t.Fatalf("draw %d differs: %016x vs %016x", i, soloDraws[i], mixedDraws[i])
		}
	}
}

func TestScheduleProbabilityBounds(t *testing.T) {
	s := NewSchedule(3)
	for i := 0; i < 50; i++ {
		if s.Decide("never", 0) {
			t.Fatal("probability 0 fired")
		}
		if !s.Decide("always", 1) {
			t.Fatal("probability 1 passed")
		}
	}
	fired := 0
	for i := 0; i < 2000; i++ {
		if s.Decide("half", 0.5) {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Fatalf("p=0.5 fired %d/2000 times", fired)
	}
}

func TestSchedulePickRange(t *testing.T) {
	s := NewSchedule(9)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		v := s.Pick("idx", 4)
		if v < 0 || v >= 4 {
			t.Fatalf("Pick returned %d, want [0,4)", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick over 200 draws hit only %d of 4 values", len(seen))
	}
}

// The canonical (grouped) log is identical no matter which goroutines
// performed the draws; run under -race this also proves thread safety.
func TestScheduleConcurrentDrawsCanonical(t *testing.T) {
	serial := NewSchedule(11)
	for i := 0; i < 50; i++ {
		serial.Decide("x", 0.5)
		serial.Decide("y", 0.5)
	}

	conc := NewSchedule(11)
	var wg sync.WaitGroup
	for _, point := range []string{"x", "y"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				conc.Decide(p, 0.5)
			}
		}(point)
	}
	wg.Wait()

	if serial.Fingerprint() != conc.Fingerprint() {
		t.Fatal("concurrent draws changed the canonical log")
	}
}
