package chaos

import (
	"fmt"
	"os"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/durable"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// runDurableRecovery is the durable-crash-recovery scenario: a full
// stack runs a workload against an on-disk state directory, the
// controller is "SIGKILLed" mid-transaction (the whole incarnation is
// abandoned with a journaled transaction neither committed nor
// aborted), and a second incarnation restarts from the same state dir.
// The restart must detect the orphaned transaction, replay its inverses
// against the switch before new events flow, and come back with the
// checkpoint histories intact — the paper's crash-consistency story
// carried across a real process-death boundary.
//
// Everything runs in lockstep with no scheduled draws, so the scenario
// is byte-for-byte deterministic: two same-seed runs must render
// identical reports (the "identical post-recovery fingerprints"
// acceptance bar).
func runDurableRecovery(sc Scenario, seed uint64, reg *metrics.Registry) *Report {
	sched := NewSchedule(seed)
	rep := &Report{Scenario: sc.Name, Seed: seed, Fired: map[string]int{}}
	add := func(name string, err error) {
		rep.Invariants = append(rep.Invariants, InvariantResult{Name: name, Err: err})
	}
	fail := func(err error) *Report {
		add("setup", err)
		rep.ScheduleFingerprint = sched.Fingerprint()
		return rep
	}

	stateDir, err := os.MkdirTemp("", "legosdn-chaos-durable-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(stateDir)

	n := netsim.Single(2, nil)
	log := NewEventLog()
	const appName = "rec0"

	inject := func(stack *core.Stack, seq int) error {
		target := stack.Controller.Processed.Load() + 1
		err := stack.Controller.Inject(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: 1,
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   hostPort,
				Reason:   openflow.PacketInReasonNoMatch,
			},
		})
		if err != nil {
			return fmt.Errorf("inject %d: %w", seq, err)
		}
		rep.EventsInjected++
		waitProcessed(stack.Controller, target, 30*time.Second)
		return nil
	}

	// ---- incarnation A: run the workload, then die mid-transaction ----
	stA, err := durable.OpenState(stateDir, 0, durable.Options{})
	if err != nil {
		return fail(err)
	}
	stackA := core.NewStack(core.Config{
		Mode:             core.ModeLegoSDN,
		CheckpointEvery:  sc.CheckpointEvery,
		EventTimeout:     sc.EventTimeout,
		HeartbeatTimeout: -1,
		Metrics:          reg,
		Durable:          stA,
	})
	if err := stackA.AddApp(func() controller.App { return newRecorder(appName, log) }); err != nil {
		stackA.Close()
		return fail(err)
	}
	if err := stackA.ConnectNetwork(n); err != nil {
		stackA.Close()
		return fail(err)
	}
	for i := 1; i <= sc.Events; i++ {
		if err := inject(stackA, i); err != nil {
			stackA.Close()
			return fail(err)
		}
	}
	quiesce(stackA.Controller)

	// Committed workload state: what the rollback must preserve.
	preTxn := n.Switch(1).Table().Fingerprint()

	// The crash victim: a journaled transaction that installs three
	// rules and never reaches commit or abort.
	tx := stackA.NetLog.Begin()
	stackA.NetLog.SetActive(tx)
	for i := 0; i < 3; i++ {
		if err := stackA.Controller.SendFlowMod(1, pendingRule(i)); err != nil {
			stackA.Close()
			return fail(fmt.Errorf("mid-txn flow mod %d: %w", i, err))
		}
	}
	stackA.NetLog.SetActive(nil)
	if err := stackA.Controller.Barrier(1); err != nil {
		stackA.Close()
		return fail(err)
	}
	if fp := n.Switch(1).Table().Fingerprint(); fp == preTxn {
		stackA.Close()
		return fail(fmt.Errorf("interrupted transaction had no effect to roll back"))
	}

	// SIGKILL. The stack and its durable state are abandoned without
	// resolving the transaction — closing the WAL writes no transaction
	// records, it only releases file descriptors, so the journal looks
	// exactly as a killed process would have left it.
	stackA.Close()
	_ = stA.Close()

	// ---- incarnation B: restart from the state directory ----
	stB, err := durable.OpenState(stateDir, 0, durable.Options{})
	if err != nil {
		return fail(fmt.Errorf("reopening state dir: %w", err))
	}
	defer stB.Close()
	rep.Fired["durable/orphan-txns"] = len(stB.Journal.Orphans())

	stackB := core.NewStack(core.Config{
		Mode:             core.ModeLegoSDN,
		CheckpointEvery:  sc.CheckpointEvery,
		EventTimeout:     sc.EventTimeout,
		HeartbeatTimeout: -1,
		Metrics:          metrics.NewRegistry(),
		Durable:          stB,
		// Incarnation B performs the recovery, so it is the one whose
		// autopsy the operator (and the CI smoke check) wants persisted.
		AutopsyDir: sc.AutopsyDir,
	})
	defer stackB.Close()
	if err := stackB.AddApp(func() controller.App { return newRecorder(appName, log) }); err != nil {
		return fail(err)
	}
	// ConnectNetwork re-attaches the switch, resyncs the shadow from
	// switch stats, and runs the durable recovery before returning.
	if err := stackB.ConnectNetwork(n); err != nil {
		return fail(fmt.Errorf("reconnecting after restart: %w", err))
	}
	rep.Fired["durable/recovered-txns"] = int(stB.RecoveredTxns())
	rep.Fired["durable/recovered-mods"] = int(stB.RecoveredMods())

	// New events must flow after recovery.
	for i := 1; i <= sc.Events/2; i++ {
		if err := inject(stackB, sc.Events+i); err != nil {
			return fail(err)
		}
	}
	quiesce(stackB.Controller)

	// Invariants.
	var orphanErr error
	if got := len(stB.Journal.Orphans()); got != 0 {
		orphanErr = fmt.Errorf("%d transactions still orphaned after recovery", got)
	} else if stB.RecoveredTxns() == 0 {
		orphanErr = fmt.Errorf("no interrupted transaction was ever rolled back")
	}
	add("no-orphaned-txns", orphanErr)

	var restoredErr error
	if stB.Checkpoints.Restored() == 0 {
		restoredErr = fmt.Errorf("no checkpoints restored from disk")
	} else if stB.Store().Latest(appName) == nil {
		restoredErr = fmt.Errorf("app checkpoint history lost across restart")
	}
	add("checkpoints-restored", restoredErr)

	// The rolled-back rules are gone but post-recovery workload rules
	// have accreted, so compare shadow against the live switch — the
	// shadow-table consistency the acceptance criteria name.
	var shadowErr error
	if got, want := stackB.NetLog.ShadowFingerprint(1), n.Switch(1).Table().Fingerprint(); got != want {
		shadowErr = fmt.Errorf("shadow %q != switch %q", got, want)
	}
	add("shadow-consistency", shadowErr)

	// None of the interrupted transaction's rules survived.
	var residueErr error
	for _, e := range n.Switch(1).Table().Entries() {
		if e.Priority == pendingPriority {
			residueErr = fmt.Errorf("rolled-back rule still installed: tp_dst=%d", e.Match.TpDst)
			break
		}
	}
	add("rollback-complete", residueErr)

	add("fifo/"+appName, CheckFIFO(log.Delivered(appName)))

	var aliveErr error
	if stackB.Controller.Crashed() {
		aliveErr = fmt.Errorf("controller crashed")
	}
	add("controller-alive", aliveErr)

	rep.ScheduleFingerprint = sched.Fingerprint()
	attachAutopsies(rep, stackB)
	return rep
}

// pendingPriority marks the interrupted transaction's rules so residue
// is detectable regardless of fingerprint collisions.
const pendingPriority uint16 = 200

// pendingRule builds the i-th rule of the doomed transaction, disjoint
// from the recorder's rule space (priority 100, tp_dst 8000-8063).
func pendingRule(i int) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(9100 + i)
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: pendingPriority,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: hostPort}},
	}
}
