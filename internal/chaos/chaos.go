package chaos

import (
	"fmt"
	"sync"
	"time"

	"legosdn/internal/appvisor"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// Fault point names. Per-app points append "/<app>".
//
//	appvisor/drop      shed an event datagram (proxy -> stub)
//	appvisor/dup       deliver an event datagram twice
//	appvisor/corrupt   mangle an event datagram's framing
//	appvisor/delay     deliver an event datagram late (reordering)
//	appvisor/ack-drop  shed a stub's event acknowledgment
//	appvisor/kill      SIGKILL the stub between events
//	netlog/inverse-fail    fail one inverse op during rollback
//	netlog/disconnect      sever the target switch mid-rollback
//	netsim/flap        bounce an inter-switch link down and up
//	netsim/partition   bisect the fabric (scheduled by event index)
//	netsim/loss        open a loss burst window
const (
	PointDrop       = "appvisor/drop"
	PointDup        = "appvisor/dup"
	PointCorrupt    = "appvisor/corrupt"
	PointDelay      = "appvisor/delay"
	PointAckDrop    = "appvisor/ack-drop"
	PointKill       = "appvisor/kill"
	PointInverse    = "netlog/inverse-fail"
	PointDisconnect = "netlog/disconnect"
	PointFlap       = "netsim/flap"
	PointPartition  = "netsim/partition"
	PointLoss       = "netsim/loss"
)

// Injector binds a Schedule's decisions to the infrastructure layers'
// fault hooks, and exports every fired fault through the existing
// metrics and trace layers: a counter per point
// (legosdn_chaos_faults_total{point=...}) and, when a tracer is
// attached, a "chaos.fault" span per firing.
type Injector struct {
	sched  *Schedule
	reg    *metrics.Registry
	tracer *trace.Tracer

	mu       sync.Mutex
	counters map[string]*metrics.Counter
	fired    map[string]int
	severed  map[uint64]bool
}

// NewInjector creates an injector drawing from sched. reg and tracer
// may be nil (outcomes are then only tallied internally).
func NewInjector(sched *Schedule, reg *metrics.Registry, tracer *trace.Tracer) *Injector {
	return &Injector{
		sched:    sched,
		reg:      reg,
		tracer:   tracer,
		counters: make(map[string]*metrics.Counter),
		fired:    make(map[string]int),
		severed:  make(map[uint64]bool),
	}
}

// Schedule returns the injector's decision source.
func (inj *Injector) Schedule() *Schedule { return inj.sched }

// Fire decides the named fault point at the given probability, and
// when it fires, records the outcome in metrics and trace.
func (inj *Injector) Fire(point string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if !inj.sched.Decide(point, prob) {
		return false
	}
	inj.note(point)
	return true
}

func (inj *Injector) note(point string) {
	inj.mu.Lock()
	inj.fired[point]++
	c := inj.counters[point]
	if c == nil && inj.reg != nil {
		c = inj.reg.Counter(
			fmt.Sprintf("legosdn_chaos_faults_total{point=%q}", point),
			"chaos fault activations by fault point")
		inj.counters[point] = c
	}
	inj.mu.Unlock()
	if c != nil {
		c.Inc()
	}
	if inj.tracer.Enabled() {
		if sc := inj.tracer.Root(); sc.Valid() {
			if sp := inj.tracer.StartSpan(sc, "chaos.fault"); sp != nil {
				sp.Attr("point", point)
				sp.End()
			}
		}
	}
}

// severedDPIDs returns the switches the disconnect fault took down, so
// the scenario runner can reconnect them before judging recovery.
func (inj *Injector) severedDPIDs() map[uint64]bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[uint64]bool, len(inj.severed))
	for k := range inj.severed {
		out[k] = true
	}
	return out
}

// FiredCounts returns a copy of the per-point activation tallies.
func (inj *Injector) FiredCounts() map[string]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int, len(inj.fired))
	for k, v := range inj.fired {
		out[k] = v
	}
	return out
}

// WireFaultProbs sets the per-datagram probabilities for the AppVisor
// wire fault points. Zero probabilities draw nothing (the point's
// stream is untouched), so enabling a new fault never perturbs the
// streams of the others.
type WireFaultProbs struct {
	Drop    float64
	Dup     float64
	Corrupt float64
	Delay   float64
	// DelayFor is how late a delayed datagram is delivered
	// (default 20ms).
	DelayFor time.Duration
	// MinGap is the minimum number of datagrams between two disruptive
	// faults (drop/corrupt) on the same app (default 8). Recovery from
	// a lost event replays the checkpoint suffix over the same wire; a
	// second hit inside that window would defeat Crash-Pad's single
	// restore attempt, which models a partitioned app, not a lossy
	// channel. The gap counter is itself a pure function of the decision
	// stream, so determinism is preserved.
	MinGap int
}

func (p WireFaultProbs) any() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Corrupt > 0 || p.Delay > 0
}

// WireFault builds an appvisor.WireFault driven by the schedule.
// Decisions are drawn per app (points "appvisor/<fault>/<app>"), in a
// fixed order per datagram, so each app's fault stream depends only on
// how many event datagrams that app has been sent.
func (inj *Injector) WireFault(p WireFaultProbs) appvisor.WireFault {
	if p.DelayFor <= 0 {
		p.DelayFor = 20 * time.Millisecond
	}
	if p.MinGap <= 0 {
		p.MinGap = 8
	}
	cool := make(map[string]int) // per-app datagrams left in the gap
	var mu sync.Mutex
	return func(origin, app string, dgType uint8) appvisor.WireVerdict {
		if origin == "stub" {
			if inj.Fire(PointAckDrop+"/"+app, p.Drop) {
				return appvisor.WireVerdict{Action: appvisor.WireDrop}
			}
			return appvisor.WireVerdict{}
		}
		dropProb, corruptProb := p.Drop, p.Corrupt
		mu.Lock()
		if cool[app] > 0 {
			cool[app]--
			dropProb, corruptProb = 0, 0
		}
		mu.Unlock()
		if inj.Fire(PointDrop+"/"+app, dropProb) {
			mu.Lock()
			cool[app] = p.MinGap
			mu.Unlock()
			return appvisor.WireVerdict{Action: appvisor.WireDrop}
		}
		if inj.Fire(PointCorrupt+"/"+app, corruptProb) {
			mu.Lock()
			cool[app] = p.MinGap
			mu.Unlock()
			return appvisor.WireVerdict{Action: appvisor.WireCorrupt}
		}
		if inj.Fire(PointDup+"/"+app, p.Dup) {
			return appvisor.WireVerdict{Action: appvisor.WireDup}
		}
		if inj.Fire(PointDelay+"/"+app, p.Delay) {
			return appvisor.WireVerdict{Delay: p.DelayFor}
		}
		return appvisor.WireVerdict{}
	}
}

// NetLogFault builds a netlog.SendFault driven by the schedule.
// disconnectProb severs the inverse op's target switch mid-rollback
// (the control channel drops while the transaction is being unwound);
// failProb makes the inverse op itself fail, leaving §3.2 residue for
// the counter-cache and resync paths.
func (inj *Injector) NetLogFault(n *netsim.Network, failProb, disconnectProb float64) netlog.SendFault {
	return func(dpid uint64, msg openflow.Message) error {
		if inj.Fire(PointDisconnect, disconnectProb) {
			_ = n.SetSwitchDown(dpid, true)
			inj.mu.Lock()
			inj.severed[dpid] = true
			inj.mu.Unlock()
			return fmt.Errorf("chaos: switch %d disconnected mid-rollback", dpid)
		}
		if inj.Fire(PointInverse, failProb) {
			return fmt.Errorf("chaos: inverse op to switch %d failed", dpid)
		}
		return nil
	}
}
