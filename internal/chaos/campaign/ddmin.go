// Package campaign turns the chaos harness from a fixed scenario
// library into a search: randomized fault-schedule campaigns over the
// full injection-point catalog, automatic shrinking of failures to
// 1-minimal reproducing fault sequences (the STS-style "minimal causal
// sequence" substitution §5 of the paper proposes), and a versioned
// regression corpus of failing seeds that replays on every test run.
package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// MinimizeStats reports what a Minimize call cost and guaranteed.
type MinimizeStats struct {
	// Tests is the number of distinct predicate evaluations performed
	// (cache hits are free and not counted).
	Tests int
	// CacheHits counts predicate calls answered from the result cache.
	CacheHits int
	// Minimal is true when the result is provably 1-minimal: removing
	// any single remaining element makes the predicate pass. It is false
	// only when MaxTests stopped the search early.
	Minimal bool
}

// Minimize shrinks the index set {0..n-1} to a 1-minimal subset that
// still satisfies fails, using Zeller-Hildebrandt ddmin: try chunks,
// then complements, then double the granularity. fails receives a
// sorted ascending subset of indices (subsequence order is preserved,
// so order-dependent failures minimize correctly) and must be
// deterministic — every result is cached and replays are never
// repeated for the same subset.
//
// fails(all indices) must be true; Minimize does not re-test it.
// maxTests <= 0 means unbounded. When the budget stops the search
// early, the best (smallest still-failing) subset found so far is
// returned with Minimal=false.
func Minimize(n int, fails func([]int) bool, maxTests int) ([]int, MinimizeStats) {
	var stats MinimizeStats
	if n <= 0 {
		return nil, stats
	}
	cache := make(map[string]bool)
	budgetHit := false
	test := func(keep []int) bool {
		key := subsetKey(keep)
		if v, ok := cache[key]; ok {
			stats.CacheHits++
			return v
		}
		if maxTests > 0 && stats.Tests >= maxTests {
			budgetHit = true
			return false
		}
		stats.Tests++
		v := fails(keep)
		cache[key] = v
		return v
	}

	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}

	// Degenerate fast path: if the failure needs no atoms at all, the
	// empty set is the minimal reproducer (the "failure" is independent
	// of the fault schedule — worth knowing early and cheaply).
	if test(nil) {
		stats.Minimal = true
		return nil, stats
	}

	gran := 2
	for len(cur) >= 2 && !budgetHit {
		chunks := splitChunks(cur, gran)
		reduced := false
		for _, c := range chunks {
			if test(c) {
				cur, gran, reduced = c, 2, true
				break
			}
		}
		if !reduced {
			for i := range chunks {
				comp := complement(cur, chunks[i])
				if test(comp) {
					cur = comp
					gran--
					if gran < 2 {
						gran = 2
					}
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if gran >= len(cur) {
				// Every single-element removal passed: 1-minimal.
				stats.Minimal = !budgetHit
				return cur, stats
			}
			gran *= 2
			if gran > len(cur) {
				gran = len(cur)
			}
		}
	}
	if len(cur) <= 1 && !budgetHit {
		stats.Minimal = true
	}
	return cur, stats
}

// splitChunks partitions s into k contiguous chunks of near-equal size.
func splitChunks(s []int, k int) [][]int {
	if k > len(s) {
		k = len(s)
	}
	out := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(s)/k, (i+1)*len(s)/k
		if lo < hi {
			out = append(out, s[lo:hi])
		}
	}
	return out
}

// complement returns cur minus chunk (both sorted ascending).
func complement(cur, chunk []int) []int {
	drop := make(map[int]bool, len(chunk))
	for _, v := range chunk {
		drop[v] = true
	}
	out := make([]int, 0, len(cur)-len(chunk))
	for _, v := range cur {
		if !drop[v] {
			out = append(out, v)
		}
	}
	return out
}

// subsetKey renders a subset canonically for the result cache.
func subsetKey(s []int) string {
	if !sort.IntsAreSorted(s) {
		s = append([]int(nil), s...)
		sort.Ints(s)
	}
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
