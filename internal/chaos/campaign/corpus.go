package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"legosdn/internal/chaos"
)

// EntryVersion is the corpus file format version. Bump it when the
// entry layout or replay semantics change; the decoder rejects
// versions it does not understand rather than misreplaying them.
const EntryVersion = 1

// Entry is one failing seed in the regression corpus: everything
// needed to rebuild the scenario, replay its minimized fault schedule
// byte for byte, and assert the same invariants fail the same way.
type Entry struct {
	Version      int          `json:"version"`
	CampaignSeed uint64       `json:"campaign_seed"`
	RunSeed      uint64       `json:"run_seed"`
	Spec         ScenarioSpec `json:"scenario"`
	// Synthetic carries the broken-invariant test hook the failure was
	// found under, if any, so the entry replays self-contained.
	Synthetic         *SyntheticCheck `json:"synthetic,omitempty"`
	FailingInvariants []string        `json:"failing_invariants"`
	// OriginalAtoms is the failing run's fired-fault count before
	// minimization; len(Atoms)/OriginalAtoms is the shrink ratio.
	OriginalAtoms int          `json:"original_atoms"`
	Atoms         []chaos.Atom `json:"atoms"`
	ShrinkReplays int          `json:"shrink_replays"`
	// ReplayFingerprint and ReplayRender are the pinned replay's
	// canonical schedule log and report text — the byte-for-byte
	// regression oracle.
	ReplayFingerprint string `json:"replay_fingerprint"`
	ReplayRender      string `json:"replay_render"`
}

// Validate bounds-checks a decoded entry. Corpus files cross trust
// boundaries (CI artifacts, fuzzers), so a malformed entry must error
// here rather than misbehave during replay.
func (e *Entry) Validate() error {
	if e.Version != EntryVersion {
		return fmt.Errorf("campaign: corpus entry version %d, want %d", e.Version, EntryVersion)
	}
	if err := e.Spec.Validate(); err != nil {
		return err
	}
	if e.Spec.Seed != e.RunSeed {
		return fmt.Errorf("campaign: spec seed %d != run seed %d", e.Spec.Seed, e.RunSeed)
	}
	if e.Synthetic != nil {
		if err := e.Synthetic.Validate(); err != nil {
			return err
		}
	}
	if len(e.FailingInvariants) == 0 {
		return fmt.Errorf("campaign: corpus entry lists no failing invariants")
	}
	for _, name := range e.FailingInvariants {
		if name == "" || len(name) > 200 {
			return fmt.Errorf("campaign: bad invariant name %q", name)
		}
	}
	if len(e.Atoms) > 100000 || e.OriginalAtoms < len(e.Atoms) || e.OriginalAtoms > 1000000 {
		return fmt.Errorf("campaign: implausible atom counts: %d minimized of %d original",
			len(e.Atoms), e.OriginalAtoms)
	}
	for _, a := range e.Atoms {
		if a.Point == "" || len(a.Point) > 200 || strings.HasSuffix(a.Point, "/pick") {
			return fmt.Errorf("campaign: bad atom point %q", a.Point)
		}
		if a.Index < 0 || a.Index > 1<<30 {
			return fmt.Errorf("campaign: atom index %d out of range", a.Index)
		}
		if a.PickPoint != "" && a.PickPoint != a.Point+"/pick" {
			return fmt.Errorf("campaign: atom pick point %q does not match %q", a.PickPoint, a.Point)
		}
	}
	if e.ReplayFingerprint == "" {
		return fmt.Errorf("campaign: corpus entry missing replay fingerprint")
	}
	if e.ShrinkReplays < 0 || e.ShrinkReplays > 1<<24 {
		return fmt.Errorf("campaign: implausible shrink replay count %d", e.ShrinkReplays)
	}
	return nil
}

// BuildEntry assembles a corpus entry for a minimized failure by
// performing one more pinned replay to capture the canonical
// fingerprint and report text the regression test will compare
// against. It errors if the minimized schedule no longer reproduces
// the failure (a minimizer bug, better caught at write time).
func BuildEntry(campaignSeed uint64, spec ScenarioSpec, syn *SyntheticCheck,
	failing []string, originalAtoms int, minAtoms []chaos.Atom, replays int) (*Entry, error) {
	sched := chaos.NewPinnedSchedule(spec.Seed, minAtoms)
	rep := spec.Scenario().RunSchedule(sched, nil)
	syn.Apply(rep)
	if !failsSuperset(rep, failing) {
		return nil, fmt.Errorf("campaign: minimized schedule for %s no longer reproduces %v",
			spec.Name, failing)
	}
	e := &Entry{
		Version:           EntryVersion,
		CampaignSeed:      campaignSeed,
		RunSeed:           spec.Seed,
		Spec:              spec,
		Synthetic:         syn,
		FailingInvariants: append([]string(nil), failing...),
		OriginalAtoms:     originalAtoms,
		Atoms:             append([]chaos.Atom(nil), minAtoms...),
		ShrinkReplays:     replays,
		ReplayFingerprint: sched.Fingerprint(),
		ReplayRender:      rep.Render(),
	}
	sort.Strings(e.FailingInvariants)
	return e, e.Validate()
}

// EncodeEntry renders an entry in its canonical file form: validated,
// indented JSON with a trailing newline.
func EncodeEntry(e *Entry) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeEntry parses and validates a corpus file. Unknown fields,
// trailing garbage, truncation and out-of-range values all error;
// no input may panic (FuzzCorpusEntry holds the line).
func DecodeEntry(data []byte) (*Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var e Entry
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("campaign: corpus entry: %w", err)
	}
	// Reject trailing content after the JSON document.
	if dec.More() {
		return nil, fmt.Errorf("campaign: corpus entry: trailing data after document")
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// WriteEntry persists an entry under dir with its canonical name,
// returning the file name.
func WriteEntry(dir string, e *Entry) (string, error) {
	b, err := EncodeEntry(e)
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("entry-%016x.json", e.RunSeed)
	if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// LoadCorpus reads every *.json entry under dir, sorted by file name.
// A missing directory is an empty corpus, not an error; a malformed
// entry is an error naming the file.
func LoadCorpus(dir string) (map[string]*Entry, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	out := make(map[string]*Entry, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		e, err := DecodeEntry(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(f), err)
		}
		out[filepath.Base(f)] = e
	}
	return out, nil
}

// ReplayEntry re-executes an entry's minimized schedule under pinned
// replay and returns the fresh report plus its fingerprint.
func ReplayEntry(e *Entry) (*chaos.Report, string, error) {
	if err := e.Validate(); err != nil {
		return nil, "", err
	}
	sched := chaos.NewPinnedSchedule(e.RunSeed, e.Atoms)
	rep := e.Spec.Scenario().RunSchedule(sched, nil)
	e.Synthetic.Apply(rep)
	return rep, sched.Fingerprint(), nil
}

// VerifyEntry replays an entry and checks the regression oracle: the
// recorded invariants still fail, and both the schedule fingerprint
// and the report render match the stored bytes exactly.
func VerifyEntry(e *Entry) error {
	rep, fp, err := ReplayEntry(e)
	if err != nil {
		return err
	}
	if !failsSuperset(rep, e.FailingInvariants) {
		return fmt.Errorf("campaign: replay failed %v, want at least %v",
			failingNames(rep), e.FailingInvariants)
	}
	if fp != e.ReplayFingerprint {
		return fmt.Errorf("campaign: replay fingerprint diverged from corpus entry:\n--- got ---\n%s--- want ---\n%s",
			head(fp, 12), head(e.ReplayFingerprint, 12))
	}
	if rep.Render() != e.ReplayRender {
		return fmt.Errorf("campaign: replay report diverged:\n--- got ---\n%s--- want ---\n%s",
			rep.Render(), e.ReplayRender)
	}
	return nil
}

// head trims s to its first n lines for readable errors.
func head(s string, n int) string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) <= n {
		return s
	}
	return strings.Join(lines[:n], "") + "...\n"
}
