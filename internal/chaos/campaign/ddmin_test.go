package campaign

import (
	"sort"
	"testing"
)

// contains reports whether sorted keep includes v.
func contains(keep []int, v int) bool {
	i := sort.SearchInts(keep, v)
	return i < len(keep) && keep[i] == v
}

// Table-driven minimizer checks against synthetic failure predicates
// with known minimal subsets. Each case asserts the exact minimum,
// 1-minimality, and a bound on how many replays the search spent —
// the budget a campaign's shrink phase inherits.
func TestMinimize(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		fails    func(keep []int) bool
		want     []int
		maxTests int // replay bound the search must respect
	}{
		{
			// One culprit: ddmin's best case, logarithmic-ish descent.
			name:     "single-culprit",
			n:        32,
			fails:    func(keep []int) bool { return contains(keep, 17) },
			want:     []int{17},
			maxTests: 40,
		},
		{
			name:     "single-culprit-first",
			n:        16,
			fails:    func(keep []int) bool { return contains(keep, 0) },
			want:     []int{0},
			maxTests: 40,
		},
		{
			// Pair interaction across chunk boundaries: both elements
			// must survive every partition.
			name:     "pair-interaction",
			n:        24,
			fails:    func(keep []int) bool { return contains(keep, 3) && contains(keep, 20) },
			want:     []int{3, 20},
			maxTests: 120,
		},
		{
			// Order-dependent pair: fails only when 5 appears before 18
			// in the kept subsequence. Subsets preserve original order,
			// so the minimal reproducer is exactly {5, 18}.
			name: "order-dependent-pair",
			n:    24,
			fails: func(keep []int) bool {
				seen5 := false
				for _, v := range keep {
					if v == 5 {
						seen5 = true
					}
					if v == 18 {
						return seen5
					}
				}
				return false
			},
			want:     []int{5, 18},
			maxTests: 120,
		},
		{
			// Threshold failure: any 3 of the first 6 elements suffice.
			// ddmin must still land on some 3-element 1-minimal subset.
			name: "any-three-of-six",
			n:    12,
			fails: func(keep []int) bool {
				c := 0
				for _, v := range keep {
					if v < 6 {
						c++
					}
				}
				return c >= 3
			},
			want:     nil, // size-checked below
			maxTests: 150,
		},
		{
			// Schedule-independent failure: the empty set reproduces.
			name:     "independent-of-atoms",
			n:        8,
			fails:    func(keep []int) bool { return true },
			want:     []int{},
			maxTests: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, stats := Minimize(tc.n, tc.fails, 0)
			if !tc.fails(got) && tc.name != "independent-of-atoms" {
				t.Fatalf("result %v does not fail", got)
			}
			if tc.want != nil {
				if len(got) != len(tc.want) {
					t.Fatalf("minimized to %v, want %v", got, tc.want)
				}
				for i := range got {
					if got[i] != tc.want[i] {
						t.Fatalf("minimized to %v, want %v", got, tc.want)
					}
				}
			} else if len(got) != 3 {
				t.Fatalf("minimized to %d elements %v, want any 3", len(got), got)
			}
			if !stats.Minimal {
				t.Error("result not marked 1-minimal")
			}
			// Independent 1-minimality check: removing any one element
			// must make the predicate pass.
			for i := range got {
				reduced := append(append([]int(nil), got[:i]...), got[i+1:]...)
				if tc.fails(reduced) {
					t.Errorf("not 1-minimal: still fails without element %d (%v)", got[i], reduced)
				}
			}
			if stats.Tests > tc.maxTests {
				t.Errorf("spent %d replays, budget %d", stats.Tests, tc.maxTests)
			}
			t.Logf("%s: %d atoms -> %v in %d tests (%d cache hits)",
				tc.name, tc.n, got, stats.Tests, stats.CacheHits)
		})
	}
}

// The MaxTests budget stops the search early and reports Minimal=false
// rather than claiming a guarantee it didn't earn.
func TestMinimizeBudget(t *testing.T) {
	calls := 0
	fails := func(keep []int) bool {
		calls++
		return contains(keep, 40) && contains(keep, 41)
	}
	got, stats := Minimize(64, fails, 5)
	if stats.Tests > 5 {
		t.Fatalf("budget 5 but ran %d tests", stats.Tests)
	}
	if stats.Minimal {
		t.Error("budget-stopped search claims 1-minimality")
	}
	// The best-so-far subset must still contain the culprits (it only
	// ever narrows to failing subsets).
	if !contains(got, 40) || !contains(got, 41) {
		t.Errorf("budget-stopped result %v lost the culprits", got)
	}
}

// The predicate result cache means a deterministic predicate is never
// re-evaluated for the same subset.
func TestMinimizeCacheNoRepeats(t *testing.T) {
	seen := make(map[string]int)
	fails := func(keep []int) bool {
		seen[subsetKey(keep)]++
		return contains(keep, 7)
	}
	_, stats := Minimize(16, fails, 0)
	for k, n := range seen {
		if n > 1 {
			t.Errorf("subset %q evaluated %d times", k, n)
		}
	}
	if stats.CacheHits == 0 {
		t.Log("no cache hits for this shape (fine, but unexpected for gran=2 complements)")
	}
}

func TestMinimizeEmpty(t *testing.T) {
	got, stats := Minimize(0, func([]int) bool { t.Fatal("predicate called for n=0"); return false }, 0)
	if len(got) != 0 || stats.Tests != 0 {
		t.Fatalf("n=0 returned %v after %d tests", got, stats.Tests)
	}
}
