package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"legosdn/internal/chaos"
)

// buildTestEntry produces a real corpus entry by running a cheap
// scenario, extracting its fired atoms, and building against the same
// broken-invariant hook the campaign tests use.
func buildTestEntry(t *testing.T) *Entry {
	t.Helper()
	spec := cheapSpec(RunSeed(11, 0))
	syn := &SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1}
	sched := chaos.NewSchedule(spec.Seed)
	rep := spec.Scenario().RunSchedule(sched, nil)
	syn.Apply(rep)
	if !rep.Failed() {
		t.Fatal("cheap scenario did not trip the synthetic check; pick a different seed")
	}
	atoms := chaos.AtomsFromDecisions(sched.Decisions())
	e, err := BuildEntry(11, spec, syn, failingNames(rep), len(atoms), atoms, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCorpusRoundTrip(t *testing.T) {
	e := buildTestEntry(t)
	b, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b, []byte("}\n")) {
		t.Error("canonical encoding must end with a newline")
	}
	got, err := DecodeEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip changed the entry:\n%+v\n%+v", e, got)
	}
	b2, err := EncodeEntry(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("re-encoding is not byte-stable")
	}
	if err := VerifyEntry(got); err != nil {
		t.Fatalf("decoded entry does not verify: %v", err)
	}
}

func TestCorpusWriteLoad(t *testing.T) {
	dir := t.TempDir()
	e := buildTestEntry(t)
	name, err := WriteEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "entry-") || !strings.HasSuffix(name, ".json") {
		t.Fatalf("unexpected corpus file name %q", name)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[name] == nil {
		t.Fatalf("loaded %d entries, want entry %q", len(entries), name)
	}
	if !reflect.DeepEqual(entries[name], e) {
		t.Error("loaded entry differs from written entry")
	}
	// A missing directory is an empty corpus, not an error.
	empty, err := LoadCorpus(filepath.Join(dir, "nope"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing dir: entries=%d err=%v", len(empty), err)
	}
	// A malformed file in the directory is an error naming the file.
	bad := filepath.Join(dir, "zz-bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "zz-bad.json") {
		t.Fatalf("malformed corpus file not reported by name: %v", err)
	}
}

// Every mutation below must be rejected by DecodeEntry, with an error,
// never a panic.
func TestDecodeEntryRejectsMalformed(t *testing.T) {
	canonical, err := EncodeEntry(buildTestEntry(t))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(e *Entry)) []byte {
		e, err := DecodeEntry(canonical)
		if err != nil {
			t.Fatal(err)
		}
		f(e)
		b, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string][]byte{
		"empty":           nil,
		"not-json":        []byte("hello"),
		"truncated":       canonical[:len(canonical)/2],
		"trailing-data":   append(append([]byte{}, canonical...), []byte("{}")...),
		"unknown-field":   bytes.Replace(canonical, []byte(`"version"`), []byte(`"versionx"`), 1),
		"wrong-version":   mutate(func(e *Entry) { e.Version = 99 }),
		"seed-mismatch":   mutate(func(e *Entry) { e.RunSeed++ }),
		"no-invariants":   mutate(func(e *Entry) { e.FailingInvariants = nil }),
		"pick-atom-point": mutate(func(e *Entry) { e.Atoms[0].Point = "appvisor/dup/pick" }),
		"negative-index":  mutate(func(e *Entry) { e.Atoms[0].Index = -1 }),
		"bad-pick-point":  mutate(func(e *Entry) { e.Atoms[0].PickPoint = "other/pick" }),
		"atom-inflation":  mutate(func(e *Entry) { e.OriginalAtoms = len(e.Atoms) - 1 }),
		"no-fingerprint":  mutate(func(e *Entry) { e.ReplayFingerprint = "" }),
		"bad-synthetic":   mutate(func(e *Entry) { e.Synthetic.Kind = "bogus" }),
		"bad-spec":        mutate(func(e *Entry) { e.Spec.Events = -5 }),
	}
	for name, data := range cases {
		if _, err := DecodeEntry(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// A tampered oracle makes VerifyEntry fail loudly rather than letting
// a stale corpus entry rot into a no-op test.
func TestVerifyEntryCatchesTampering(t *testing.T) {
	e := buildTestEntry(t)
	if err := VerifyEntry(e); err != nil {
		t.Fatalf("pristine entry: %v", err)
	}
	fp := e.ReplayFingerprint
	e.ReplayFingerprint = fp + "tampered\n"
	if err := VerifyEntry(e); err == nil {
		t.Error("tampered fingerprint verified")
	}
	e.ReplayFingerprint = fp
	e.ReplayRender += "tampered\n"
	if err := VerifyEntry(e); err == nil {
		t.Error("tampered render verified")
	}
}

// FuzzCorpusEntry holds the decoder's no-panic line: any input either
// decodes to an entry that re-encodes cleanly, or errors.
func FuzzCorpusEntry(f *testing.F) {
	spec := cheapSpec(RunSeed(11, 0))
	syn := &SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1}
	sched := chaos.NewSchedule(spec.Seed)
	rep := spec.Scenario().RunSchedule(sched, nil)
	syn.Apply(rep)
	atoms := chaos.AtomsFromDecisions(sched.Decisions())
	if e, err := BuildEntry(11, spec, syn, failingNames(rep), len(atoms), atoms, 1); err == nil {
		if b, err := EncodeEntry(e); err == nil {
			f.Add(b)
			f.Add(b[:len(b)/2])
			f.Add(bytes.Replace(b, []byte(`"atoms"`), []byte(`"atomz"`), 1))
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version":1,"atoms":[{"index":-9}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must survive the encode path too.
		if _, err := EncodeEntry(e); err != nil {
			t.Fatalf("decoded entry fails to re-encode: %v", err)
		}
	})
}
