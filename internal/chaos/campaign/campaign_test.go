package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// cheapSpec is a fast deterministic generator for tests: duplicated and
// delayed datagrams only (no timeout-driven recovery), so a full run
// completes in well under a second and every run fires wire atoms.
func cheapSpec(runSeed uint64) ScenarioSpec {
	return ScenarioSpec{
		Name:            fmt.Sprintf("cheap-%016x", runSeed),
		Seed:            runSeed,
		Switches:        1,
		Apps:            2,
		Events:          24,
		CheckpointEvery: 4,
		EventTimeoutMS:  250,
		Dup:             0.12,
		Delay:           0.06,
		Deterministic:   true,
	}
}

// The generator is a pure function of the run seed, and every spec it
// emits is valid and arms at least one fault class.
func TestSynthesizeDeterministicAndValid(t *testing.T) {
	for i := 0; i < 200; i++ {
		seed := RunSeed(99, i)
		a, b := Synthesize(seed), Synthesize(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two syntheses differ:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v\n%+v", seed, err, a)
		}
		if len(a.Classes()) == 0 {
			t.Fatalf("seed %d: generated spec arms no fault class: %+v", seed, a)
		}
		if (a.InverseFailProb > 0 || a.DisconnectProb > 0) && a.CrashEvery == 0 {
			t.Fatalf("seed %d: netlog faults without armed crashes can never fire: %+v", seed, a)
		}
	}
}

// Satellite: same campaign seed => byte-identical scenario set,
// schedule fingerprints and summary JSON (wall-time fields excluded),
// independent of worker count — mirroring the PR 4 same-seed replay
// guarantee at campaign scale.
func TestCampaignSameSeedByteIdentical(t *testing.T) {
	run := func(parallel int) *Summary {
		sum, err := Run(Config{Seed: 7, Runs: 6, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(3)

	for i := range a.Records {
		if a.Records[i].Scenario != b.Records[i].Scenario || a.Records[i].Seed != b.Records[i].Seed {
			t.Fatalf("run %d scenario set differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
		if a.Records[i].ScheduleFP != b.Records[i].ScheduleFP {
			t.Errorf("run %d schedule fingerprint differs: %s vs %s",
				i, a.Records[i].ScheduleFP, b.Records[i].ScheduleFP)
		}
	}
	aj, err := a.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("summaries differ byte-for-byte:\n--- serial ---\n%s\n--- parallel ---\n%s", aj, bj)
	}
	if a.WallMS < 0 {
		t.Error("negative wall time")
	}
}

// Acceptance: a seeded campaign under a deliberately-broken invariant
// (the synthetic test hook) finds the failure, shrinks its schedule to
// a 1-minimal reproducer at <= 25% of the original decision count, and
// persists a corpus entry that replays byte-for-byte.
func TestCampaignFindsAndShrinksBrokenInvariant(t *testing.T) {
	corpus := t.TempDir()
	autopsies := t.TempDir()
	var log bytes.Buffer
	sum, err := Run(Config{
		Seed:       11,
		Runs:       2,
		Shrink:     true,
		Parallel:   2,
		CorpusDir:  corpus,
		AutopsyDir: autopsies,
		Synthetic:  &SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1},
		Generate:   cheapSpec,
		Log:        &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failures == 0 {
		t.Fatalf("campaign found no failures under the broken invariant:\n%s", log.String())
	}
	if sum.Shrunk == 0 {
		t.Fatalf("no failure shrunk:\n%s", log.String())
	}
	verified := 0
	for _, rec := range sum.Records {
		if !rec.Failed {
			continue
		}
		sh := rec.Shrink
		if sh == nil || !sh.Reproducible {
			t.Fatalf("failed run %d not reproducible: %+v", rec.Index, sh)
		}
		if !sh.Minimal {
			t.Errorf("run %d shrink not 1-minimal (%d replays)", rec.Index, sh.Replays)
		}
		if sh.MinAtoms != 1 {
			t.Errorf("run %d minimized to %d atoms, want 1 (single dup reproduces fired-at-least n=1)",
				rec.Index, sh.MinAtoms)
		}
		if sh.Ratio > 0.25 {
			t.Errorf("run %d shrink ratio %.2f exceeds the 25%% acceptance bar (%d -> %d)",
				rec.Index, sh.Ratio, sh.OriginalAtoms, sh.MinAtoms)
		}
		if sh.CorpusFile == "" {
			t.Fatalf("run %d: no corpus entry written", rec.Index)
		}
		data, err := os.ReadFile(filepath.Join(corpus, sh.CorpusFile))
		if err != nil {
			t.Fatal(err)
		}
		e, err := DecodeEntry(data)
		if err != nil {
			t.Fatalf("corpus entry %s: %v", sh.CorpusFile, err)
		}
		if err := VerifyEntry(e); err != nil {
			t.Errorf("corpus entry %s does not replay byte-for-byte: %v", sh.CorpusFile, err)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no corpus entry verified")
	}
	if sum.TotalReplays == 0 {
		t.Error("shrinking reported zero replays")
	}
}

// Without the broken-invariant hook the same campaign passes clean —
// the hook, not the harness, is what fails.
func TestCampaignCleanWithoutHook(t *testing.T) {
	sum, err := Run(Config{Seed: 11, Runs: 2, Parallel: 2, Generate: cheapSpec})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failures != 0 {
		t.Fatalf("clean campaign reported %d failures: %+v", sum.Failures, sum.Records)
	}
}

// Setup problems are errors (exit code 2 territory), not invariant
// failures.
func TestCampaignSetupErrors(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Runs: 0}); err == nil {
		t.Error("runs=0 accepted")
	}
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Seed: 1, Runs: 1, CorpusDir: filepath.Join(blocker, "sub")}); err == nil {
		t.Error("corpus dir under a regular file accepted")
	}
	if _, err := Run(Config{Seed: 1, Runs: 1, Synthetic: &SyntheticCheck{Kind: "bogus"}}); err == nil {
		t.Error("bogus synthetic check accepted")
	}
}

// Synthetic check predicate semantics, including per-app prefix
// matching of wire points.
func TestSyntheticCheck(t *testing.T) {
	rep := replayPinned(cheapSpec(3), nil, nil) // no faults fire
	if n := firedAt(rep, "appvisor/dup"); n != 0 {
		t.Fatalf("pinned-empty replay fired %d dups", n)
	}
	mustFail := func(c SyntheticCheck, fired map[string]int, want bool) {
		t.Helper()
		rep := replayPinned(cheapSpec(3), nil, nil)
		rep.Fired = fired
		rep.Invariants = nil
		c.Apply(rep)
		if got := rep.Failed(); got != want {
			t.Errorf("%+v over %v: failed=%v, want %v", c, fired, got, want)
		}
	}
	mustFail(SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 2},
		map[string]int{"appvisor/dup/rec0": 1, "appvisor/dup/rec1": 1}, true)
	mustFail(SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 3},
		map[string]int{"appvisor/dup/rec0": 2}, false)
	mustFail(SyntheticCheck{Kind: SyntheticFiredPair, Point: "appvisor/kill", Point2: "netsim/flap"},
		map[string]int{"appvisor/kill": 1, "netsim/flap": 2}, true)
	mustFail(SyntheticCheck{Kind: SyntheticFiredPair, Point: "appvisor/kill", Point2: "netsim/flap"},
		map[string]int{"appvisor/kill": 1}, false)
	// Prefix matching must not cross path-segment boundaries.
	mustFail(SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/d", N: 1},
		map[string]int{"appvisor/dup/rec0": 1}, false)
}

// Regeneration hook for the committed regression corpus: run with
// CHAOS_CORPUS_REGEN=1 to rewrite testdata/chaos-corpus at the repo
// root from the canonical campaign below. The committed entries are
// what TestChaosCorpusReplay (repo root) replays on every test run.
func TestRegenerateCommittedCorpus(t *testing.T) {
	if os.Getenv("CHAOS_CORPUS_REGEN") == "" {
		t.Skip("set CHAOS_CORPUS_REGEN=1 to regenerate testdata/chaos-corpus")
	}
	dir := filepath.Join("..", "..", "..", "testdata", "chaos-corpus")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := Run(Config{
		Seed:      11,
		Runs:      2,
		Shrink:    true,
		CorpusDir: dir,
		Synthetic: &SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1},
		Generate:  cheapSpec,
		Log:       os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shrunk == 0 {
		t.Fatal("regeneration campaign shrank nothing; corpus would be empty")
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for name := range entries {
		names = append(names, name)
	}
	t.Logf("regenerated %d corpus entries: %s", len(entries), strings.Join(names, ", "))
}

// Satellite: the per-failure autopsy persistence is bounded: the
// budget admits exactly MaxAutopsyFailures failing runs, logs its
// exhaustion once, and a negative cap is unlimited.
func TestCampaignAutopsyBudget(t *testing.T) {
	b := newAutopsyBudget(2)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d refused within budget", i)
		}
	}
	if ok, exhausted := b.take(); ok || !exhausted {
		t.Fatalf("first over-budget take = (%v, %v), want (false, true)", ok, exhausted)
	}
	if ok, exhausted := b.take(); ok || exhausted {
		t.Fatalf("later over-budget take = (%v, %v), want (false, false): exhaustion noted once", ok, exhausted)
	}
	unlimited := newAutopsyBudget(-1)
	for i := 0; i < 100; i++ {
		if ok, _ := unlimited.take(); !ok {
			t.Fatal("negative cap must be unlimited")
		}
	}
	if def := newAutopsyBudget(0); def.cap != defaultMaxAutopsyFailures {
		t.Fatalf("zero cap defaulted to %d, want %d", def.cap, defaultMaxAutopsyFailures)
	}

	// End to end: every run fails under the hook; with a budget of 1
	// the exhaustion is logged exactly once and later failures skip
	// persistence silently.
	var log bytes.Buffer
	sum, err := Run(Config{
		Seed:               13,
		Runs:               3,
		AutopsyDir:         t.TempDir(),
		MaxAutopsyFailures: 1,
		Synthetic:          &SyntheticCheck{Kind: SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1},
		Generate:           cheapSpec,
		Log:                &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failures != 3 {
		t.Fatalf("failures = %d, want 3 (hook fails every run)", sum.Failures)
	}
	if got := strings.Count(log.String(), "autopsy budget"); got != 1 {
		t.Fatalf("budget exhaustion logged %d times, want once:\n%s", got, log.String())
	}
}

// Failover specs resolve to the ha-* Custom scenarios, carry the
// exclusive failover class, and are rejected when malformed.
func TestFailoverSpecs(t *testing.T) {
	sp := ScenarioSpec{
		Name: "f", Seed: 1, Switches: 1, Apps: 1, Events: 12,
		CheckpointEvery: 4, EventTimeoutMS: 150,
		Failover: "ha-kill-leader-mid-txn",
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid failover spec rejected: %v", err)
	}
	if got := sp.Classes(); len(got) != 1 || got[0] != "failover" {
		t.Fatalf("classes = %v, want [failover]", got)
	}
	sc := sp.Scenario()
	if sc.Custom == nil {
		t.Fatal("failover spec did not resolve to a Custom scenario")
	}
	if sc.Deterministic {
		t.Fatal("failover scenario marked deterministic")
	}
	if sc.Events != 12 {
		t.Fatalf("spec workload sizing not carried over: events = %d", sc.Events)
	}

	sp.Failover = "ha-no-such-scenario"
	if err := sp.Validate(); err == nil {
		t.Fatal("unknown failover scenario accepted")
	}
	sp.Failover = "ha-kill-leader-mid-txn"
	sp.Deterministic = true
	if err := sp.Validate(); err == nil {
		t.Fatal("deterministic failover spec accepted")
	}
}

// Synthesize emits failover specs at its fixed draw rate, and every
// one validates.
func TestSynthesizeEmitsFailoverSpecs(t *testing.T) {
	found := 0
	for i := 0; i < 400; i++ {
		sp := Synthesize(RunSeed(42, i))
		if sp.Failover == "" {
			continue
		}
		found++
		if err := sp.Validate(); err != nil {
			t.Fatalf("synthesized failover spec invalid: %v\n%+v", err, sp)
		}
		if sp.Deterministic {
			t.Fatalf("synthesized failover spec deterministic: %+v", sp)
		}
	}
	if found == 0 {
		t.Fatal("400 syntheses produced no failover spec (expected ~1 in 8)")
	}
}
