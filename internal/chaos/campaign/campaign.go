package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"legosdn/internal/chaos"
)

// SyntheticCheck is a serializable invariant predicate over a run's
// fired-fault tallies — the campaign's test hook. Injecting a
// deliberately-broken invariant this way exercises the whole search
// (detection, shrinking, corpus persistence) without needing a real
// bug, and because the check is data, a corpus entry created under a
// hook replays self-contained.
type SyntheticCheck struct {
	// Kind selects the predicate:
	//   fired-at-least  fail when >= N faults fired at Point
	//   fired-pair      fail when Point and Point2 each fired >= 1
	Kind   string `json:"kind"`
	Point  string `json:"point"`
	Point2 string `json:"point2,omitempty"`
	N      int    `json:"n,omitempty"`
}

// Synthetic check kinds.
const (
	SyntheticFiredAtLeast = "fired-at-least"
	SyntheticFiredPair    = "fired-pair"
)

// Validate rejects malformed checks (corpus files are untrusted input).
func (c *SyntheticCheck) Validate() error {
	switch c.Kind {
	case SyntheticFiredAtLeast:
		if c.Point == "" || c.N < 1 || c.N > 1<<20 {
			return fmt.Errorf("campaign: bad %s check: point=%q n=%d", c.Kind, c.Point, c.N)
		}
	case SyntheticFiredPair:
		if c.Point == "" || c.Point2 == "" {
			return fmt.Errorf("campaign: bad %s check: both points required", c.Kind)
		}
	default:
		return fmt.Errorf("campaign: unknown synthetic check kind %q", c.Kind)
	}
	return nil
}

// Name is the invariant name the check reports under.
func (c *SyntheticCheck) Name() string { return "synthetic/" + c.Kind }

// firedAt tallies rep.Fired entries matching point exactly or as a
// path prefix (wire points are per-app: "appvisor/drop/rec0" matches
// the catalog point "appvisor/drop").
func firedAt(rep *chaos.Report, point string) int {
	total := 0
	for p, n := range rep.Fired {
		if p == point || strings.HasPrefix(p, point+"/") {
			total += n
		}
	}
	return total
}

// Apply evaluates the check against a finished run and appends its
// verdict to the report's invariant list. Nil checks are no-ops.
func (c *SyntheticCheck) Apply(rep *chaos.Report) {
	if c == nil {
		return
	}
	var err error
	switch c.Kind {
	case SyntheticFiredAtLeast:
		if got := firedAt(rep, c.Point); got >= c.N {
			err = fmt.Errorf("%d fault(s) fired at %s (broken-invariant threshold %d)", got, c.Point, c.N)
		}
	case SyntheticFiredPair:
		a, b := firedAt(rep, c.Point), firedAt(rep, c.Point2)
		if a >= 1 && b >= 1 {
			err = fmt.Errorf("both %s (%d) and %s (%d) fired", c.Point, a, c.Point2, b)
		}
	}
	rep.Invariants = append(rep.Invariants, chaos.InvariantResult{Name: c.Name(), Err: err})
}

// Config parameterizes one campaign.
type Config struct {
	// Seed is the campaign seed; run i executes under the derived seed
	// Mix64(Seed ^ Mix64(i+1)). Same campaign seed, same scenario set.
	Seed uint64
	// Runs is how many randomized scenarios to execute.
	Runs int
	// Shrink enables ddmin minimization of failing runs' fault
	// schedules (deterministic scenarios only).
	Shrink bool
	// MaxShrinkReplays bounds the predicate evaluations one failure's
	// minimization may spend (0 = default 400).
	MaxShrinkReplays int
	// Parallel is the worker count (0 = serial). Results are collected
	// by run index, so parallelism never changes the summary bytes.
	Parallel int
	// CorpusDir, when set, persists each reproducible minimized failure
	// as a corpus entry file there (created if missing).
	CorpusDir string
	// AutopsyDir, when set, persists the autopsy reports attached to
	// each failing run as JSON files under <dir>/<scenario-name>/.
	AutopsyDir string
	// MaxAutopsyFailures bounds how many failing runs persist autopsies
	// under AutopsyDir (0 = default 25, negative = unlimited). A
	// hostile campaign can fail hundreds of runs; the first few dozen
	// autopsy trees are triage gold, the rest are a disk-filling
	// liability.
	MaxAutopsyFailures int
	// Synthetic, when set, is applied to every run as an extra
	// invariant — the deliberately-broken-invariant test hook.
	Synthetic *SyntheticCheck
	// Generate overrides scenario synthesis (default Synthesize). Must
	// be a pure function of the run seed.
	Generate func(runSeed uint64) ScenarioSpec
	// Log, when set, receives one progress line per failure and per
	// shrink. Nil is silent.
	Log io.Writer
}

// RunRecord is one campaign run's outcome in the summary.
type RunRecord struct {
	Index         int      `json:"index"`
	Seed          uint64   `json:"seed"`
	Scenario      string   `json:"scenario"`
	Classes       []string `json:"classes,omitempty"`
	Deterministic bool     `json:"deterministic"`
	// FiredAtoms counts the run's fired fault occurrences, recorded only
	// for deterministic runs: nondeterministic scenarios fire
	// interleaving-dependent counts, which would break the summary's
	// same-seed byte-identity.
	FiredAtoms int `json:"fired_atoms,omitempty"`
	// ScheduleFP is a 64-bit FNV-1a hash of the run's schedule
	// fingerprint, recorded only for deterministic runs (the ones whose
	// fingerprints are reproducible by contract).
	ScheduleFP        string        `json:"schedule_fp,omitempty"`
	Failed            bool          `json:"failed,omitempty"`
	FailingInvariants []string      `json:"failing_invariants,omitempty"`
	Shrink            *ShrinkRecord `json:"shrink,omitempty"`
}

// ShrinkRecord describes one failure's minimization.
type ShrinkRecord struct {
	OriginalAtoms int     `json:"original_atoms"`
	MinAtoms      int     `json:"min_atoms"`
	Ratio         float64 `json:"ratio"` // MinAtoms / OriginalAtoms
	Replays       int     `json:"replays"`
	Minimal       bool    `json:"minimal"`
	// Reproducible is false when the full recorded schedule failed to
	// reproduce the failure under pinned replay (flaky/nondeterministic
	// failure); no corpus entry is written then.
	Reproducible bool   `json:"reproducible"`
	CorpusFile   string `json:"corpus_file,omitempty"`
	Skipped      string `json:"skipped,omitempty"` // reason shrinking was not attempted
}

// Summary is the campaign's machine-readable result. Everything except
// the wall-time fields is a pure function of the campaign seed and
// config, which the determinism test pins down.
type Summary struct {
	Version      int            `json:"version"`
	CampaignSeed uint64         `json:"campaign_seed"`
	SeedsRun     int            `json:"seeds_run"`
	Failures     int            `json:"failures"`
	Shrunk       int            `json:"shrunk"`
	TotalReplays int            `json:"total_replays"`
	WallMS       int64          `json:"wall_ms"` // excluded from determinism comparisons
	ClassTallies map[string]int `json:"class_tallies"`
	Records      []RunRecord    `json:"records"`
}

// DeterministicJSON renders the summary with wall-time fields zeroed —
// the byte-comparable form (same campaign seed, same bytes).
func (s *Summary) DeterministicJSON() ([]byte, error) {
	c := *s
	c.WallMS = 0
	return json.MarshalIndent(&c, "", "  ")
}

// RunSeed derives the i-th run's seed from the campaign seed.
func RunSeed(campaignSeed uint64, i int) uint64 {
	return chaos.Mix64(campaignSeed ^ chaos.Mix64(uint64(i)+1))
}

// Run executes a campaign: Runs randomized scenarios, invariant checks
// on each, and — with Shrink — ddmin minimization of every
// reproducible failure down to a 1-minimal fault sequence. The error
// return covers setup problems only (corpus/autopsy directories);
// invariant failures are reported in the summary.
func Run(cfg Config) (*Summary, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("campaign: runs must be positive, got %d", cfg.Runs)
	}
	gen := cfg.Generate
	if gen == nil {
		gen = Synthesize
	}
	for _, dir := range []string{cfg.CorpusDir, cfg.AutopsyDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
		}
	}
	if cfg.Synthetic != nil {
		if err := cfg.Synthetic.Validate(); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	sum := &Summary{
		Version:      1,
		CampaignSeed: cfg.Seed,
		SeedsRun:     cfg.Runs,
		ClassTallies: make(map[string]int),
		Records:      make([]RunRecord, cfg.Runs),
	}

	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards cfg.Log writes and corpus/autopsy IO ordering
	budget := newAutopsyBudget(cfg.MaxAutopsyFailures)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				rec := runOne(&cfg, gen, i, &mu, budget)
				sum.Records[i] = rec
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for _, rec := range sum.Records {
		for _, c := range rec.Classes {
			sum.ClassTallies[c]++
		}
		if rec.Failed {
			sum.Failures++
		}
		if sh := rec.Shrink; sh != nil {
			sum.TotalReplays += sh.Replays
			if sh.Reproducible {
				sum.Shrunk++
			}
		}
	}
	sum.WallMS = time.Since(start).Milliseconds()
	return sum, nil
}

// autopsyBudget caps per-failure autopsy persistence campaign-wide.
// The mutex is its own (not the campaign's log/IO mutex) so the cheap
// take() check never serializes behind disk writes.
type autopsyBudget struct {
	mu    sync.Mutex
	left  int
	cap   int
	noted bool
}

// defaultMaxAutopsyFailures is the persistence cap when the config
// leaves MaxAutopsyFailures at zero.
const defaultMaxAutopsyFailures = 25

func newAutopsyBudget(max int) *autopsyBudget {
	if max == 0 {
		max = defaultMaxAutopsyFailures
	}
	return &autopsyBudget{left: max, cap: max}
}

// take consumes one persistence slot; exhausted reports a transition to
// empty exactly once (for the one-time skip log line). A negative cap
// means unlimited.
func (b *autopsyBudget) take() (ok, exhausted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cap < 0 {
		return true, false
	}
	if b.left > 0 {
		b.left--
		return true, false
	}
	if !b.noted {
		b.noted = true
		return false, true
	}
	return false, false
}

// runOne executes run i end to end: generate, run, check, and (on
// failure) shrink + persist.
func runOne(cfg *Config, gen func(uint64) ScenarioSpec, i int, mu *sync.Mutex, budget *autopsyBudget) RunRecord {
	seed := RunSeed(cfg.Seed, i)
	spec := gen(seed)
	rec := RunRecord{
		Index:         i,
		Seed:          seed,
		Scenario:      spec.Name,
		Classes:       spec.Classes(),
		Deterministic: spec.Deterministic,
	}

	sched := chaos.NewSchedule(seed)
	rep := spec.Scenario().RunSchedule(sched, nil)
	cfg.Synthetic.Apply(rep)
	atoms := chaos.AtomsFromDecisions(sched.Decisions())
	if spec.Deterministic {
		rec.FiredAtoms = len(atoms)
		rec.ScheduleFP = fingerprintHash(sched.Fingerprint())
	}
	if !rep.Failed() {
		return rec
	}

	rec.Failed = true
	rec.FailingInvariants = failingNames(rep)
	logf(cfg, mu, "run %d (seed %d, %s): FAIL %s, %d fired atoms\n",
		i, seed, spec.Name, strings.Join(rec.FailingInvariants, ","), len(atoms))
	if cfg.AutopsyDir != "" {
		if ok, exhausted := budget.take(); ok {
			mu.Lock()
			persistAutopsies(cfg.AutopsyDir, spec.Name, rep)
			mu.Unlock()
		} else if exhausted {
			logf(cfg, mu, "autopsy budget (%d failing runs) exhausted; later failures persist no autopsies\n",
				budget.cap)
		}
	}
	if !cfg.Shrink {
		return rec
	}
	rec.Shrink = shrinkFailure(cfg, spec, rec.FailingInvariants, atoms, mu)
	return rec
}

// shrinkFailure minimizes one failing run's fault schedule via pinned
// replays. The predicate re-runs the scenario under a pinned schedule
// carrying only the kept atoms and asks whether the same invariants
// still fail.
func shrinkFailure(cfg *Config, spec ScenarioSpec, origFailing []string, atoms []chaos.Atom, mu *sync.Mutex) *ShrinkRecord {
	sh := &ShrinkRecord{OriginalAtoms: len(atoms), MinAtoms: len(atoms), Ratio: 1}
	if !spec.Deterministic {
		sh.Skipped = "nondeterministic scenario"
		return sh
	}

	replays := 0
	failsWith := func(keep []int) bool {
		replays++
		kept := make([]chaos.Atom, len(keep))
		for j, idx := range keep {
			kept[j] = atoms[idx]
		}
		rep := replayPinned(spec, kept, cfg.Synthetic)
		return failsSuperset(rep, origFailing)
	}

	// The recorded schedule must reproduce the failure before ddmin can
	// trust its replays; a failure the full pin set cannot reproduce is
	// flaky and recorded as such.
	all := make([]int, len(atoms))
	for j := range all {
		all[j] = j
	}
	if !failsWith(all) {
		sh.Replays = replays
		sh.Skipped = "failure did not reproduce under pinned replay"
		return sh
	}
	sh.Reproducible = true

	budget := cfg.MaxShrinkReplays
	if budget <= 0 {
		budget = 400
	}
	keep, stats := Minimize(len(atoms), failsWith, budget)
	sh.Replays = replays
	sh.MinAtoms = len(keep)
	sh.Minimal = stats.Minimal
	if sh.OriginalAtoms > 0 {
		sh.Ratio = float64(sh.MinAtoms) / float64(sh.OriginalAtoms)
	}
	logf(cfg, mu, "  shrunk %s: %d -> %d atoms in %d replays (1-minimal=%v)\n",
		spec.Name, sh.OriginalAtoms, sh.MinAtoms, sh.Replays, sh.Minimal)

	if cfg.CorpusDir != "" {
		minAtoms := make([]chaos.Atom, len(keep))
		for j, idx := range keep {
			minAtoms[j] = atoms[idx]
		}
		entry, err := BuildEntry(cfg.Seed, spec, cfg.Synthetic, origFailing, len(atoms), minAtoms, sh.Replays)
		if err == nil {
			mu.Lock()
			sh.CorpusFile, err = WriteEntry(cfg.CorpusDir, entry)
			mu.Unlock()
		}
		if err != nil {
			logf(cfg, mu, "  corpus write for %s failed: %v\n", spec.Name, err)
		}
	}
	return sh
}

// replayPinned runs the spec's scenario under a pinned schedule
// carrying exactly the kept atoms, synthetic check included.
func replayPinned(spec ScenarioSpec, kept []chaos.Atom, syn *SyntheticCheck) *chaos.Report {
	sched := chaos.NewPinnedSchedule(spec.Seed, kept)
	rep := spec.Scenario().RunSchedule(sched, nil)
	syn.Apply(rep)
	return rep
}

// failsSuperset reports whether rep's failing invariants cover all of
// want — the "same failure" criterion ddmin minimizes against.
func failsSuperset(rep *chaos.Report, want []string) bool {
	got := make(map[string]bool)
	for _, name := range failingNames(rep) {
		got[name] = true
	}
	for _, name := range want {
		if !got[name] {
			return false
		}
	}
	return true
}

func failingNames(rep *chaos.Report) []string {
	var out []string
	for _, iv := range rep.Invariants {
		if iv.Err != nil {
			out = append(out, iv.Name)
		}
	}
	sort.Strings(out)
	return out
}

// persistAutopsies writes a failing run's attached autopsy reports
// (Crash-Pad recoveries plus the synthesized invariant-violation
// autopsy) under dir/<scenario>/autopsy-N.json for triage.
func persistAutopsies(dir, scenario string, rep *chaos.Report) {
	if len(rep.Autopsies) == 0 {
		return
	}
	sub := filepath.Join(dir, scenario)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return
	}
	for i, a := range rep.Autopsies {
		b, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			continue
		}
		_ = os.WriteFile(filepath.Join(sub, fmt.Sprintf("autopsy-%d.json", i+1)), append(b, '\n'), 0o644)
	}
}

// fingerprintHash condenses a schedule fingerprint to a stable 64-bit
// hex token small enough to keep thousand-run summaries readable.
func fingerprintHash(fp string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, fp)
	return fmt.Sprintf("%016x", h.Sum64())
}

func logf(cfg *Config, mu *sync.Mutex, format string, args ...any) {
	if cfg.Log == nil {
		return
	}
	mu.Lock()
	fmt.Fprintf(cfg.Log, format, args...)
	mu.Unlock()
}
