package campaign

import (
	"fmt"
	"time"

	"legosdn/internal/chaos"
)

// ScenarioSpec is the serializable parameter set of one generated
// scenario — the campaign's unit of randomization and the form a
// corpus entry stores, so a failing run rebuilds the exact same
// scenario years later without the generator that produced it.
type ScenarioSpec struct {
	Name            string  `json:"name"`
	Seed            uint64  `json:"seed"` // run seed; also the schedule seed
	Switches        int     `json:"switches"`
	Apps            int     `json:"apps"`
	Events          int     `json:"events"`
	CheckpointEvery int     `json:"checkpoint_every"`
	EventTimeoutMS  int     `json:"event_timeout_ms"`
	Drop            float64 `json:"drop,omitempty"`
	Dup             float64 `json:"dup,omitempty"`
	Corrupt         float64 `json:"corrupt,omitempty"`
	Delay           float64 `json:"delay,omitempty"`
	KillProb        float64 `json:"kill_prob,omitempty"`
	CrashEvery      int     `json:"crash_every,omitempty"`
	InverseFailProb float64 `json:"inverse_fail_prob,omitempty"`
	DisconnectProb  float64 `json:"disconnect_prob,omitempty"`
	FlapProb        float64 `json:"flap_prob,omitempty"`
	PartitionAt     int     `json:"partition_at,omitempty"`
	LossBurst       bool    `json:"loss_burst,omitempty"`
	// Failover, when set, names a replicated-control-plane library
	// scenario (ha-*): the run exercises leader death/partition on a
	// 3-replica cluster instead of the single-stack fault loop. The
	// class is exclusive — HA runs are Custom scenarios that ignore the
	// single-stack fault knobs — and never Deterministic (leases and
	// election timing are wall-clock concurrent).
	Failover        string `json:"failover,omitempty"`
	SkipShadowCheck bool   `json:"skip_shadow_check,omitempty"`
	AllowQuarantine bool   `json:"allow_quarantine,omitempty"`
	// Deterministic marks the run safe for byte-for-byte fingerprint
	// comparison and therefore eligible for shrinking: lockstep workload,
	// no concurrent netsim event sources.
	Deterministic bool `json:"deterministic"`
}

// Scenario materializes the spec as a runnable chaos scenario.
func (sp ScenarioSpec) Scenario() chaos.Scenario {
	if sp.Failover != "" {
		// HA specs borrow the library scenario's Custom runner and keep
		// only the workload-sizing knobs from the spec.
		base, _ := chaos.Find(sp.Failover)
		base.Name = sp.Name
		base.Events = sp.Events
		base.CheckpointEvery = sp.CheckpointEvery
		base.EventTimeout = time.Duration(sp.EventTimeoutMS) * time.Millisecond
		base.Deterministic = false
		return base
	}
	return chaos.Scenario{
		Name:            sp.Name,
		Switches:        sp.Switches,
		Apps:            sp.Apps,
		Events:          sp.Events,
		CheckpointEvery: sp.CheckpointEvery,
		EventTimeout:    time.Duration(sp.EventTimeoutMS) * time.Millisecond,
		Wire: chaos.WireFaultProbs{
			Drop:    sp.Drop,
			Dup:     sp.Dup,
			Corrupt: sp.Corrupt,
			Delay:   sp.Delay,
		},
		KillProb:        sp.KillProb,
		CrashEvery:      sp.CrashEvery,
		InverseFailProb: sp.InverseFailProb,
		DisconnectProb:  sp.DisconnectProb,
		FlapProb:        sp.FlapProb,
		PartitionAt:     sp.PartitionAt,
		LossBurst:       sp.LossBurst,
		Deterministic:   sp.Deterministic,
		SkipShadowCheck: sp.SkipShadowCheck,
		AllowQuarantine: sp.AllowQuarantine,
	}
}

// Validate bounds-checks a spec so corpus files from untrusted sources
// (fuzzers, artifact uploads) can never drive a replay into absurd
// resource use. The limits are generous multiples of anything the
// generator emits.
func (sp ScenarioSpec) Validate() error {
	switch {
	case sp.Name == "" || len(sp.Name) > 128:
		return fmt.Errorf("campaign: spec name %q empty or too long", sp.Name)
	case sp.Switches < 1 || sp.Switches > 64:
		return fmt.Errorf("campaign: switches %d out of [1,64]", sp.Switches)
	case sp.Apps < 1 || sp.Apps > 16:
		return fmt.Errorf("campaign: apps %d out of [1,16]", sp.Apps)
	case sp.Events < 1 || sp.Events > 10000:
		return fmt.Errorf("campaign: events %d out of [1,10000]", sp.Events)
	case sp.CheckpointEvery < 1 || sp.CheckpointEvery > 1000:
		return fmt.Errorf("campaign: checkpoint cadence %d out of [1,1000]", sp.CheckpointEvery)
	case sp.EventTimeoutMS < 1 || sp.EventTimeoutMS > 60000:
		return fmt.Errorf("campaign: event timeout %dms out of [1,60000]", sp.EventTimeoutMS)
	case sp.CrashEvery < 0 || sp.CrashEvery > 1000:
		return fmt.Errorf("campaign: crash cadence %d out of [0,1000]", sp.CrashEvery)
	case sp.PartitionAt < 0 || sp.PartitionAt > sp.Events:
		return fmt.Errorf("campaign: partition index %d out of [0,%d]", sp.PartitionAt, sp.Events)
	}
	if sp.Failover != "" {
		if !haScenarioNames[sp.Failover] {
			return fmt.Errorf("campaign: unknown failover scenario %q", sp.Failover)
		}
		if sp.Deterministic {
			return fmt.Errorf("campaign: failover specs cannot be deterministic")
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop", sp.Drop}, {"dup", sp.Dup}, {"corrupt", sp.Corrupt}, {"delay", sp.Delay},
		{"kill", sp.KillProb}, {"inverse-fail", sp.InverseFailProb},
		{"disconnect", sp.DisconnectProb}, {"flap", sp.FlapProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("campaign: %s probability %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// specRNG is a tiny counter-mode generator over the harness's
// SplitMix64 finalizer: the i-th value is a pure function of (seed, i),
// so generation order never matters.
type specRNG struct {
	seed uint64
	i    uint64
}

// weyl mirrors the Schedule's stream increment.
const weyl = 0x9E3779B97F4A7C15

func (r *specRNG) next() uint64 {
	r.i++
	return chaos.Mix64(r.seed + r.i*weyl)
}

// rng helpers: intIn draws uniformly from [lo,hi], probIn from the
// probability range [lo,hi] quantized to 1/256ths (keeps JSON clean).
func (r *specRNG) intIn(lo, hi int) int {
	return lo + int(r.next()%uint64(hi-lo+1))
}

func (r *specRNG) probIn(lo, hi float64) float64 {
	q := float64(r.next()%257) / 256
	return lo + (hi-lo)*q
}

// Fault classes the generator mixes. Each class maps to the injection
// points it arms; together they cover the full catalog.
const (
	classWire     = "wire"     // appvisor drop/dup/corrupt/delay/ack-drop
	classKill     = "kill"     // appvisor/kill
	classCrash    = "crash"    // armed app panics (checkpoint+replay path)
	classNetlog   = "netlog"   // netlog inverse-fail + disconnect (needs crashes)
	classNetsim   = "netsim"   // flap/partition/loss on multi-switch fabrics
	classFailover = "failover" // replicated control plane: leader kill/partition/lag
)

var allClasses = []string{classWire, classKill, classCrash, classNetlog, classNetsim}

// haScenarios are the replicated-control-plane library scenarios the
// failover class draws from (exclusive of the single-stack classes).
var haScenarios = []string{
	"ha-kill-leader-mid-txn",
	"ha-partition-leader",
	"ha-follower-lag-failover",
}

var haScenarioNames = func() map[string]bool {
	m := make(map[string]bool, len(haScenarios))
	for _, n := range haScenarios {
		m[n] = true
	}
	return m
}()

// Synthesize derives one randomized scenario from a run seed: a pure
// function, so the same seed always generates the same spec (the
// campaign determinism guarantee starts here). The generated shapes
// mirror the hand-written library's envelope — single-class scenarios
// assert full recovery, hostile multi-class mixes assert containment
// (AllowQuarantine), and netlog faults always ride on armed crashes
// because rollback is the only path that reaches them.
func Synthesize(runSeed uint64) ScenarioSpec {
	r := &specRNG{seed: runSeed}
	sp := ScenarioSpec{
		Name:            fmt.Sprintf("campaign-%016x", runSeed),
		Seed:            runSeed,
		Switches:        1,
		Apps:            r.intIn(1, 3),
		Events:          r.intIn(24, 48),
		CheckpointEvery: r.intIn(2, 6),
		EventTimeoutMS:  150,
		Deterministic:   true,
	}

	// One campaign run in eight exercises the replicated control plane
	// instead of the single-stack fault loop. The class is exclusive
	// (the HA runner ignores single-stack knobs) and wall-clock heavy,
	// so it gets a small workload and stays nondeterministic.
	if r.next()%8 == 0 {
		sp.Events = r.intIn(10, 16)
		sp.Deterministic = false
		sp.Failover = haScenarios[r.intIn(0, len(haScenarios)-1)]
		return sp
	}

	nClasses := r.intIn(1, 3)
	classes := make(map[string]bool, nClasses)
	for len(classes) < nClasses {
		classes[allClasses[r.intIn(0, len(allClasses)-1)]] = true
	}

	if classes[classWire] {
		// One or two wire fault kinds per scenario, modest probabilities:
		// the library's single-fault envelope, randomized.
		kinds := []*float64{&sp.Drop, &sp.Dup, &sp.Corrupt, &sp.Delay}
		n := r.intIn(1, 2)
		for i := 0; i < n; i++ {
			k := kinds[r.intIn(0, len(kinds)-1)]
			if *k == 0 {
				*k = r.probIn(0.04, 0.12)
			}
		}
	}
	if classes[classKill] {
		sp.KillProb = r.probIn(0.03, 0.08)
	}
	if classes[classCrash] {
		sp.CrashEvery = r.intIn(5, 9)
	}
	if classes[classNetlog] {
		if sp.CrashEvery == 0 {
			sp.CrashEvery = r.intIn(5, 8) // rollback needs crashes to roll back
		}
		if r.next()%2 == 0 {
			sp.InverseFailProb = r.probIn(0.2, 0.5)
		} else {
			sp.DisconnectProb = r.probIn(0.2, 0.4)
		}
		sp.SkipShadowCheck = true // rollback residue desynchronizes shadow by design
	}
	if classes[classNetsim] {
		sp.Switches = r.intIn(2, 4)
		sp.Deterministic = false // concurrent switch goroutines: invariants, not bytes
		switch r.intIn(0, 2) {
		case 0:
			sp.FlapProb = r.probIn(0.05, 0.15)
		case 1:
			sp.PartitionAt = r.intIn(5, sp.Events/2)
		default:
			sp.LossBurst = true
		}
	}

	// Compound mixes can legitimately exhaust Crash-Pad inside a
	// disturbed recovery window; like the library's combo scenario they
	// assert containment, not guaranteed recovery.
	if nClasses >= 2 {
		sp.AllowQuarantine = true
	}
	return sp
}

// Classes reports which fault classes a spec arms (for summary tallies).
func (sp ScenarioSpec) Classes() []string {
	if sp.Failover != "" {
		return []string{classFailover}
	}
	var out []string
	if sp.Drop > 0 || sp.Dup > 0 || sp.Corrupt > 0 || sp.Delay > 0 {
		out = append(out, classWire)
	}
	if sp.KillProb > 0 {
		out = append(out, classKill)
	}
	if sp.CrashEvery > 0 {
		out = append(out, classCrash)
	}
	if sp.InverseFailProb > 0 || sp.DisconnectProb > 0 {
		out = append(out, classNetlog)
	}
	if sp.FlapProb > 0 || sp.PartitionAt > 0 || sp.LossBurst {
		out = append(out, classNetsim)
	}
	return out
}
