package chaos

// Library is the stock scenario set: at least one scenario per layer's
// fault points (AppVisor wire + kill, app crashes, NetLog rollback
// faults, netsim topology faults) plus a baseline and an everything-on
// stress mix. Deterministic scenarios run their workload in lockstep
// and reproduce byte-for-byte from the seed; the netsim scenarios
// involve concurrent switch goroutines, so they assert invariants but
// not byte equality.
func Library() []Scenario {
	return []Scenario{
		{
			Name:          "baseline",
			Description:   "no faults: the harness itself must not violate anything",
			Deterministic: true,
		},
		{
			Name:          "av-drop",
			Description:   "AppVisor drops event datagrams; timeouts drive Crash-Pad recovery",
			Wire:          WireFaultProbs{Drop: 0.12},
			Deterministic: true,
		},
		{
			Name:          "av-corrupt",
			Description:   "AppVisor corrupts datagram framing; receivers must reject, never crash",
			Wire:          WireFaultProbs{Corrupt: 0.12},
			Deterministic: true,
		},
		{
			Name:          "av-dup-delay",
			Description:   "duplicated and delayed datagrams; FIFO must tolerate both",
			Wire:          WireFaultProbs{Dup: 0.15, Delay: 0.15},
			Deterministic: true,
		},
		{
			Name:          "av-kill",
			Description:   "stubs killed between events; next delivery detects and recovers",
			KillProb:      0.08,
			Deterministic: true,
		},
		{
			Name:          "app-crash-replay",
			Description:   "transient app panics every 7th delivery; checkpoint+replay recovers",
			CrashEvery:    7,
			Deterministic: true,
		},
		{
			Name:            "netlog-inverse-fail",
			Description:     "inverse ops fail during rollback, leaving deliberate residue",
			CrashEvery:      5,
			InverseFailProb: 0.5,
			SkipShadowCheck: true, // residue desynchronizes shadow vs switch by design
			Deterministic:   true,
		},
		{
			Name:            "netlog-disconnect",
			Description:     "switch severed mid-rollback; shadow must resync on reconnect",
			CrashEvery:      6,
			DisconnectProb:  0.4,
			SkipShadowCheck: true, // inverses after the cut cannot reach the switch
			Deterministic:   true,
		},
		{
			Name:          "durable-crash-recovery",
			Description:   "controller killed mid-transaction; restart from the state dir rolls it back",
			Events:        20,
			Deterministic: true,
			Custom:        runDurableRecovery,
		},
		{
			Name:        "ha-kill-leader-mid-txn",
			Description: "replicated control plane: leader SIGKILLed mid-transaction; a follower wins the lease and rolls it back",
			Events:      16,
			Custom:      runHAKillLeader,
		},
		{
			Name:        "ha-partition-leader",
			Description: "replicated control plane: leader partitioned away; the successor fences it via switch role demotion",
			Events:      16,
			Custom:      runHAPartitionLeader,
		},
		{
			Name:        "ha-follower-lag-failover",
			Description: "replicated control plane: slow followers force a real catch-up drain before the successor serves",
			Events:      16,
			Custom:      runHAFollowerLag,
		},
		{
			Name:        "netsim-flap",
			Description: "inter-switch links flap under load",
			Switches:    3,
			FlapProb:    0.15,
		},
		{
			Name:        "netsim-partition",
			Description: "fabric bisected mid-workload, healed five events later",
			Switches:    4,
			PartitionAt: 10,
		},
		{
			Name:        "netsim-loss",
			Description: "data-plane loss burst; table misses become PacketIns",
			Switches:    2,
			LossBurst:   true,
		},
		{
			Name:        "combo",
			Description: "wire faults, kills, app crashes and flaps together",
			Switches:    3,
			Wire:        WireFaultProbs{Drop: 0.05, Dup: 0.05, Corrupt: 0.05},
			KillProb:    0.04,
			CrashEvery:  11,
			FlapProb:    0.08,
			// Under the combined mix, compound failures inside a recovery
			// window can legitimately exhaust Crash-Pad; combo asserts
			// containment (controller alive, FIFO, txn balance, shadow
			// consistency), not guaranteed recovery.
			AllowQuarantine: true,
		},
	}
}

// Find returns the named library scenario.
func Find(name string) (Scenario, bool) {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
