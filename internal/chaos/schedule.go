// Package chaos is LegoSDN's deterministic fault-injection harness.
// Where internal/faultinject supplies *application* bugs (the paper's
// §2.1 corpus), chaos attacks the *infrastructure* the recovery story
// depends on: the AppVisor UDP proxy/stub path (dropped, delayed,
// duplicated, corrupted datagrams; stubs killed mid-event), NetLog
// (inverse operations failing during rollback, switches disconnecting
// mid-transaction) and netsim (link flaps, partitions, loss bursts).
//
// Every fault decision is drawn from a seeded Schedule, so a failing
// run is replayable from its seed alone: same seed, same fault
// sequence, byte for byte. A Scenario drives the full stack
// (controller + AppVisor + NetLog + Crash-Pad) through a workload under
// a schedule and then asserts the system-level invariants the paper
// promises — per-app FIFO delivery, no orphaned transactions, shadow
// tables consistent with switch state, every crashed app restored.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// weyl is the SplitMix64 increment, the same constant
// internal/trace's sampler steps its Weyl sequence by.
const weyl = 0x9E3779B97F4A7C15

// splitmix64 is the SplitMix64 finalizer (mirroring internal/trace):
// a cheap, well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += weyl
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointBase derives a fault point's private stream state from the
// schedule seed and the point name (FNV-1a over the name, finalized
// through splitmix64). Every point gets an independent deterministic
// stream: the k-th draw at a point depends only on (seed, name, k),
// never on how draws at different points interleave.
func pointBase(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return splitmix64(seed ^ h)
}

// Mix64 exposes the harness's SplitMix64 finalizer for callers that
// need to derive deterministic sub-seeds (the campaign runner derives
// one run seed per campaign index this way).
func Mix64(x uint64) uint64 { return splitmix64(x) }

// Decision records one draw at a fault point.
type Decision struct {
	Point string
	Index int    // per-point draw index, 0-based
	Draw  uint64 // the raw 64-bit sample
	Fired bool
}

func (d Decision) String() string {
	fired := "pass"
	if d.Fired {
		fired = "FIRE"
	}
	return fmt.Sprintf("%s#%d draw=%016x %s", d.Point, d.Index, d.Draw, fired)
}

// Schedule is a seeded source of fault decisions. Each named fault
// point draws from its own SplitMix64 stream, and every decision is
// logged; Fingerprint renders the complete log canonically so two runs
// can be compared byte for byte.
type Schedule struct {
	seed uint64

	// pinned, when non-nil, switches the schedule into replay mode: a
	// Decide draw's outcome is forced from the pin set instead of being
	// computed from the draw and probability, and Pick draws take their
	// values from the pinned pick queues. Draw *values* need no pinning —
	// they are pure functions of (seed, point, index) — so a pinned
	// schedule still produces a complete, canonical decision log.
	pinned *pinSet

	mu      sync.Mutex
	streams map[string]*stream
}

// pinSet is the forced-outcome table a pinned schedule replays.
type pinSet struct {
	// fire maps point -> per-point draw index -> must fire. Absent
	// entries pass: both "originally passed" and "removed by the
	// minimizer" replay as non-firing, and draws beyond the recorded
	// range (possible when removing a fault changes downstream draw
	// counts) pass too.
	fire map[string]map[int]bool
	// picks maps a pick point -> FIFO of recorded draw values, one per
	// *kept* parent firing in order. Pick draws beyond the queue fall
	// back to the pure (seed, point, index) value.
	picks map[string][]uint64
}

type stream struct {
	base uint64
	n    uint64
	log  []Decision
}

// NewSchedule creates a schedule. The same seed always reproduces the
// same per-point decision sequences.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{seed: seed, streams: make(map[string]*stream)}
}

// Atom is one removable fault occurrence: a fired Decide decision plus,
// when the fault drew a companion selection (kill victim, flap link),
// the pick value that traveled with it. Atoms are the granules the
// campaign minimizer removes and the unit a corpus entry's minimized
// schedule is expressed in.
type Atom struct {
	Point string `json:"point"`
	Index int    `json:"index"` // per-point draw index in the recorded run
	// PickPoint/PickDraw carry the companion Pick decision ("<point>/pick")
	// that accompanied this firing, if any, so the same victim replays
	// even when earlier firings at the same point were removed.
	PickPoint string `json:"pick_point,omitempty"`
	PickDraw  uint64 `json:"pick_draw,omitempty"`
}

func (a Atom) String() string {
	if a.PickPoint != "" {
		return fmt.Sprintf("%s#%d(pick=%016x)", a.Point, a.Index, a.PickDraw)
	}
	return fmt.Sprintf("%s#%d", a.Point, a.Index)
}

// pickSuffix names the companion-selection convention: a fault point P
// that needs to pick a victim draws once at P+pickSuffix per firing.
const pickSuffix = "/pick"

// AtomsFromDecisions extracts the removable fault occurrences from a
// canonical decision log (as returned by Decisions()): every fired
// non-pick decision becomes one Atom, bundled with the pick value of
// its companion draw — the j-th pick at P/pick belongs to the j-th
// firing at P, because pick draws happen exactly once per firing.
func AtomsFromDecisions(decs []Decision) []Atom {
	picks := make(map[string][]Decision)
	for _, d := range decs {
		if strings.HasSuffix(d.Point, pickSuffix) {
			picks[d.Point] = append(picks[d.Point], d)
		}
	}
	var atoms []Atom
	firedRank := make(map[string]int)
	for _, d := range decs {
		if strings.HasSuffix(d.Point, pickSuffix) || !d.Fired {
			continue
		}
		a := Atom{Point: d.Point, Index: d.Index}
		j := firedRank[d.Point]
		firedRank[d.Point]++
		if ps := picks[d.Point+pickSuffix]; j < len(ps) {
			a.PickPoint = d.Point + pickSuffix
			a.PickDraw = ps[j].Draw
		}
		atoms = append(atoms, a)
	}
	return atoms
}

// NewPinnedSchedule creates a replay schedule that forces exactly the
// given atoms to fire and every other decision to pass. Draw values
// replay automatically (they depend only on seed, point and index), so
// with the full atom set of a recorded deterministic run the replay is
// byte-for-byte identical to the original; with a subset, the kept
// faults still fire at their recorded per-point positions and their
// companion picks return the recorded victims. Atoms must be in
// recorded order (AtomsFromDecisions order; minimizer subsets keep it).
func NewPinnedSchedule(seed uint64, atoms []Atom) *Schedule {
	s := NewSchedule(seed)
	pins := &pinSet{
		fire:  make(map[string]map[int]bool),
		picks: make(map[string][]uint64),
	}
	for _, a := range atoms {
		m := pins.fire[a.Point]
		if m == nil {
			m = make(map[int]bool)
			pins.fire[a.Point] = m
		}
		m[a.Index] = true
		if a.PickPoint != "" {
			pins.picks[a.PickPoint] = append(pins.picks[a.PickPoint], a.PickDraw)
		}
	}
	s.pinned = pins
	return s
}

// Pinned reports whether the schedule replays a pinned atom set instead
// of drawing outcomes probabilistically.
func (s *Schedule) Pinned() bool { return s.pinned != nil }

// Seed returns the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

func (s *Schedule) draw(point string) (uint64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[point]
	if st == nil {
		st = &stream{base: pointBase(s.seed, point)}
		s.streams[point] = st
	}
	x := splitmix64(st.base + st.n*weyl)
	idx := int(st.n)
	st.n++
	return x, idx
}

func (s *Schedule) record(point string, idx int, x uint64, fired bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[point]
	st.log = append(st.log, Decision{Point: point, Index: idx, Draw: x, Fired: fired})
}

// Decide draws the named point's next sample and reports whether the
// fault fires (probability prob in [0,1]). On a pinned schedule the
// probability is ignored: the draw fires exactly when the pin set says
// the recorded decision at this per-point position fired and was kept.
func (s *Schedule) Decide(point string, prob float64) bool {
	x, idx := s.draw(point)
	var fired bool
	if s.pinned != nil {
		fired = s.pinned.fire[point][idx]
	} else {
		fired = prob >= 1 || (prob > 0 && float64(x)/float64(1<<63)/2 < prob)
	}
	s.record(point, idx, x, fired)
	return fired
}

// Pick draws the named point's next sample as a uniform integer in
// [0, n). n must be positive. On a pinned schedule the idx-th pick draw
// replays the pick value bundled with the idx-th kept firing of the
// parent point (picks draw exactly once per parent firing, so the
// queues stay aligned); draws beyond the queue fall back to the pure
// stream value.
func (s *Schedule) Pick(point string, n int) int {
	x, idx := s.draw(point)
	if s.pinned != nil {
		if q := s.pinned.picks[point]; idx < len(q) {
			x = q[idx]
		}
	}
	s.record(point, idx, x, true)
	return int(x % uint64(n))
}

// Decisions returns the full decision log, grouped by point name
// (sorted) and ordered by draw index within each point. Grouping makes
// the log canonical: per-point streams are deterministic even when
// draws at different points interleave on different goroutines.
func (s *Schedule) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Decision
	for _, name := range names {
		out = append(out, s.streams[name].log...)
	}
	return out
}

// Fingerprint renders the canonical decision log as text — one line per
// decision — for byte-for-byte replay comparison.
func (s *Schedule) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", s.seed)
	for _, d := range s.Decisions() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
