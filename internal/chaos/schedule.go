// Package chaos is LegoSDN's deterministic fault-injection harness.
// Where internal/faultinject supplies *application* bugs (the paper's
// §2.1 corpus), chaos attacks the *infrastructure* the recovery story
// depends on: the AppVisor UDP proxy/stub path (dropped, delayed,
// duplicated, corrupted datagrams; stubs killed mid-event), NetLog
// (inverse operations failing during rollback, switches disconnecting
// mid-transaction) and netsim (link flaps, partitions, loss bursts).
//
// Every fault decision is drawn from a seeded Schedule, so a failing
// run is replayable from its seed alone: same seed, same fault
// sequence, byte for byte. A Scenario drives the full stack
// (controller + AppVisor + NetLog + Crash-Pad) through a workload under
// a schedule and then asserts the system-level invariants the paper
// promises — per-app FIFO delivery, no orphaned transactions, shadow
// tables consistent with switch state, every crashed app restored.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// weyl is the SplitMix64 increment, the same constant
// internal/trace's sampler steps its Weyl sequence by.
const weyl = 0x9E3779B97F4A7C15

// splitmix64 is the SplitMix64 finalizer (mirroring internal/trace):
// a cheap, well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += weyl
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointBase derives a fault point's private stream state from the
// schedule seed and the point name (FNV-1a over the name, finalized
// through splitmix64). Every point gets an independent deterministic
// stream: the k-th draw at a point depends only on (seed, name, k),
// never on how draws at different points interleave.
func pointBase(seed uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return splitmix64(seed ^ h)
}

// Decision records one draw at a fault point.
type Decision struct {
	Point string
	Index int    // per-point draw index, 0-based
	Draw  uint64 // the raw 64-bit sample
	Fired bool
}

func (d Decision) String() string {
	fired := "pass"
	if d.Fired {
		fired = "FIRE"
	}
	return fmt.Sprintf("%s#%d draw=%016x %s", d.Point, d.Index, d.Draw, fired)
}

// Schedule is a seeded source of fault decisions. Each named fault
// point draws from its own SplitMix64 stream, and every decision is
// logged; Fingerprint renders the complete log canonically so two runs
// can be compared byte for byte.
type Schedule struct {
	seed uint64

	mu      sync.Mutex
	streams map[string]*stream
}

type stream struct {
	base uint64
	n    uint64
	log  []Decision
}

// NewSchedule creates a schedule. The same seed always reproduces the
// same per-point decision sequences.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{seed: seed, streams: make(map[string]*stream)}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

func (s *Schedule) draw(point string) (uint64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[point]
	if st == nil {
		st = &stream{base: pointBase(s.seed, point)}
		s.streams[point] = st
	}
	x := splitmix64(st.base + st.n*weyl)
	idx := int(st.n)
	st.n++
	return x, idx
}

func (s *Schedule) record(point string, idx int, x uint64, fired bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[point]
	st.log = append(st.log, Decision{Point: point, Index: idx, Draw: x, Fired: fired})
}

// Decide draws the named point's next sample and reports whether the
// fault fires (probability prob in [0,1]).
func (s *Schedule) Decide(point string, prob float64) bool {
	x, idx := s.draw(point)
	fired := prob >= 1 || (prob > 0 && float64(x)/float64(1<<63)/2 < prob)
	s.record(point, idx, x, fired)
	return fired
}

// Pick draws the named point's next sample as a uniform integer in
// [0, n). n must be positive.
func (s *Schedule) Pick(point string, n int) int {
	x, idx := s.draw(point)
	s.record(point, idx, x, true)
	return int(x % uint64(n))
}

// Decisions returns the full decision log, grouped by point name
// (sorted) and ordered by draw index within each point. Grouping makes
// the log canonical: per-point streams are deterministic even when
// draws at different points interleave on different goroutines.
func (s *Schedule) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Decision
	for _, name := range names {
		out = append(out, s.streams[name].log...)
	}
	return out
}

// Fingerprint renders the canonical decision log as text — one line per
// decision — for byte-for-byte replay comparison.
func (s *Schedule) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", s.seed)
	for _, d := range s.Decisions() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
