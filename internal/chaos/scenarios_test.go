package chaos

import (
	"strings"
	"testing"
)

// Every library scenario must hold the paper's system-level invariants
// under its fault mix.
func TestScenarios(t *testing.T) {
	if len(Library()) < 10 {
		t.Fatalf("library has %d scenarios, want >= 10", len(Library()))
	}
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			rep := sc.Run(1234, nil)
			for _, iv := range rep.Invariants {
				if iv.Err != nil {
					t.Errorf("invariant %s violated: %v", iv.Name, iv.Err)
				}
			}
			if t.Failed() {
				t.Logf("report:\n%s", rep.Render())
			}
		})
	}
}

// Faulty scenarios must actually exercise their fault points — a chaos
// harness that never fires is vacuous.
func TestScenariosFireFaults(t *testing.T) {
	for _, name := range []string{"av-drop", "av-corrupt", "av-kill", "app-crash-replay", "netlog-inverse-fail"} {
		sc, ok := Find(name)
		if !ok {
			t.Fatalf("library scenario %q missing", name)
		}
		rep := sc.Run(1234, nil)
		total := 0
		for _, c := range rep.Fired {
			total += c
		}
		if total == 0 {
			t.Errorf("scenario %s fired no faults at seed 1234", name)
		}
	}
}

// The core reproducibility promise: the same seed replays the same
// fault schedule and the same invariant report, byte for byte.
func TestScenariosSameSeedByteIdentical(t *testing.T) {
	for _, sc := range Library() {
		if !sc.Deterministic {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a := sc.Run(99, nil)
			b := sc.Run(99, nil)
			if a.ScheduleFingerprint != b.ScheduleFingerprint {
				t.Errorf("fault schedules differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
					diffHead(a.ScheduleFingerprint, b.ScheduleFingerprint),
					diffHead(b.ScheduleFingerprint, a.ScheduleFingerprint))
			}
			if a.Render() != b.Render() {
				t.Errorf("reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Render(), b.Render())
			}
		})
	}
}

// A pinned schedule carrying the full recorded atom set replays a
// deterministic scenario byte for byte — the property the campaign
// minimizer's delta-debugging replays rest on.
func TestScenarioPinnedFullReplay(t *testing.T) {
	sc, ok := Find("av-dup-delay")
	if !ok {
		t.Fatal("library scenario av-dup-delay missing")
	}
	sched := NewSchedule(77)
	orig := sc.RunSchedule(sched, nil)
	atoms := AtomsFromDecisions(sched.Decisions())
	if len(atoms) == 0 {
		t.Fatal("recorded run fired no atoms; replay test is vacuous")
	}
	pinned := NewPinnedSchedule(77, atoms)
	rep := sc.RunSchedule(pinned, nil)
	if rep.ScheduleFingerprint != orig.ScheduleFingerprint {
		t.Errorf("pinned full replay diverged:\n%s", diffHead(rep.ScheduleFingerprint, orig.ScheduleFingerprint))
	}
	if rep.Render() != orig.Render() {
		t.Errorf("pinned replay report differs:\n--- pinned ---\n%s--- original ---\n%s", rep.Render(), orig.Render())
	}
}

// Different seeds must produce different fault schedules (for scenarios
// that draw at all).
func TestScenariosSeedsIndependent(t *testing.T) {
	sc, _ := Find("av-drop")
	a := sc.Run(1, nil)
	b := sc.Run(2, nil)
	if a.ScheduleFingerprint == b.ScheduleFingerprint {
		t.Fatal("seeds 1 and 2 produced the same fault schedule")
	}
}

// diffHead trims two long fingerprints to the first differing region,
// keeping failure output readable.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(al) {
				hi = len(al)
			}
			return strings.Join(al[lo:hi], "\n") + "\n"
		}
	}
	return a
}
