package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// Scenario describes one chaos experiment: a stack shape, a workload
// and the fault probabilities active while it runs. Run drives the
// full LegoSDN stack (controller + AppVisor + NetLog + Crash-Pad)
// through the workload under a seeded Schedule and then checks the
// paper's system-level invariants.
type Scenario struct {
	Name        string
	Description string

	// Switches sizes the topology: 1 uses Single (one switch, two
	// hosts), >1 uses Linear. Default 1.
	Switches int
	// Apps is the number of recorder apps (default 2).
	Apps int
	// Events is the PacketIn workload length (default 40).
	Events int
	// CheckpointEvery is Crash-Pad's cadence (default 4).
	CheckpointEvery int
	// EventTimeout bounds one proxied event round trip (default 250ms;
	// it is also the chaos clock: a dropped datagram costs one of these).
	EventTimeout time.Duration

	// Wire enables AppVisor datagram faults on every app's proxy.
	Wire WireFaultProbs
	// KillProb kills a schedule-picked stub between workload events.
	KillProb float64
	// CrashEvery arms a one-shot panic in app 0 at every k-th delivery
	// (0 disables) — the §2.1 transient-bug population.
	CrashEvery int
	// InverseFailProb fails inverse ops during NetLog rollback.
	InverseFailProb float64
	// DisconnectProb severs the target switch mid-rollback.
	DisconnectProb float64
	// FlapProb bounces a schedule-picked inter-switch link between
	// workload events (Linear topologies only).
	FlapProb float64
	// PartitionAt, when > 0, bisects the fabric at that workload index
	// and heals it five events later.
	PartitionAt int
	// LossBurst appends a data-plane phase: host traffic over links at
	// 30% loss, whose table misses become PacketIns for the apps.
	LossBurst bool

	// Deterministic marks the scenario safe for byte-for-byte replay
	// comparison: the workload runs in lockstep (inject, wait, repeat)
	// and every fault lands between events, so the same seed reproduces
	// the same fault schedule and the same report.
	Deterministic bool
	// SkipShadowCheck disables the shadow-vs-switch comparison for
	// scenarios that deliberately leave rollback residue
	// (inverse-fail faults desynchronize shadow and switch by design).
	SkipShadowCheck bool
	// AutopsyDir, when set, persists every autopsy the stack writes
	// during the run (crash recoveries plus the synthesized
	// invariant-violation autopsy on failure) as JSON files there.
	AutopsyDir string
	// AllowQuarantine drops the recovered/<app> invariant for scenarios
	// hostile enough that Crash-Pad may legitimately exhaust its
	// recovery attempts (e.g. a scheduled crash landing inside a replay
	// window that a kill already disturbed). Quarantining the app while
	// the controller and every other invariant hold IS the correct
	// containment outcome there.
	AllowQuarantine bool

	// Custom, when set, replaces the stock single-stack run entirely:
	// scenarios whose shape the standard loop cannot express (e.g. the
	// durable-recovery scenario, which kills and restarts the whole
	// controller) implement Run themselves. The function receives the
	// scenario with defaults applied and must honor the Deterministic
	// contract if the scenario declares it.
	Custom func(sc Scenario, seed uint64, reg *metrics.Registry) *Report
}

// InvariantResult is one post-run check.
type InvariantResult struct {
	Name string
	Err  error // nil = held
}

// Report is a scenario run's outcome. Render is deterministic text for
// same-seed byte comparison; ScheduleFingerprint is the full decision
// log (one line per draw).
type Report struct {
	Scenario            string
	Seed                uint64
	EventsInjected      int
	Fired               map[string]int
	Invariants          []InvariantResult
	ScheduleFingerprint string
	// Autopsies carries every autopsy report the stack assembled during
	// the run — the Crash-Pad ones for each recovery plus, when an
	// invariant failed, a synthesized chaos-invariant autopsy capturing
	// the flight-recorder tail. Deliberately NOT part of Render():
	// autopsies carry wall-clock durations, and Render must stay
	// byte-for-byte reproducible from the seed.
	Autopsies []*flightrec.Autopsy
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool {
	for _, iv := range r.Invariants {
		if iv.Err != nil {
			return true
		}
	}
	return false
}

// Render produces the canonical report text (no timestamps, no
// durations — only run state that must reproduce from the seed).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d events=%d\n", r.Scenario, r.Seed, r.EventsInjected)
	points := make([]string, 0, len(r.Fired))
	for p := range r.Fired {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		fmt.Fprintf(&b, "fired %s=%d\n", p, r.Fired[p])
	}
	for _, iv := range r.Invariants {
		if iv.Err != nil {
			fmt.Fprintf(&b, "invariant %s: FAIL: %v\n", iv.Name, iv.Err)
		} else {
			fmt.Fprintf(&b, "invariant %s: ok\n", iv.Name)
		}
	}
	return b.String()
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Switches < 1 {
		sc.Switches = 1
	}
	if sc.Apps < 1 {
		sc.Apps = 2
	}
	if sc.Events < 1 {
		sc.Events = 40
	}
	if sc.CheckpointEvery < 1 {
		sc.CheckpointEvery = 4
	}
	if sc.EventTimeout <= 0 {
		sc.EventTimeout = 250 * time.Millisecond
	}
	return sc
}

// Run executes the scenario under the given seed. reg may be nil; when
// set, chaos fault activations are exported through it alongside the
// stack's own metrics.
func (sc Scenario) Run(seed uint64, reg *metrics.Registry) *Report {
	return sc.RunSchedule(NewSchedule(seed), reg)
}

// RunSchedule executes the scenario drawing from the caller's schedule,
// so the caller keeps access to the full decision log afterwards and
// can substitute a pinned schedule (NewPinnedSchedule) that replays a
// recorded — possibly minimized — fault sequence instead of drawing
// probabilistically. Custom scenarios manage their own schedules and
// do not support pinned replay.
func (sc Scenario) RunSchedule(sched *Schedule, reg *metrics.Registry) *Report {
	sc = sc.withDefaults()
	seed := sched.Seed()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if sc.Custom != nil {
		return sc.Custom(sc, seed, reg)
	}
	inj := NewInjector(sched, reg, nil)

	var n *netsim.Network
	if sc.Switches > 1 {
		n = netsim.Linear(sc.Switches, nil)
	} else {
		n = netsim.Single(2, nil)
	}
	n.SetLossSeed(int64(seed))

	stack := core.NewStack(core.Config{
		Mode:             core.ModeLegoSDN,
		CheckpointEvery:  sc.CheckpointEvery,
		EventTimeout:     sc.EventTimeout,
		HeartbeatTimeout: -1, // crash detection via event timeout only: deterministic
		Metrics:          reg,
		AutopsyDir:       sc.AutopsyDir,
	})
	defer stack.Close()

	log := NewEventLog()
	appNames := make([]string, sc.Apps)
	for i := 0; i < sc.Apps; i++ {
		name := fmt.Sprintf("rec%d", i)
		appNames[i] = name
		if err := stack.AddApp(func() controller.App { return newRecorder(name, log) }); err != nil {
			return failedReport(sc, sched, inj, 0, fmt.Errorf("adding app %s: %w", name, err))
		}
	}
	if sc.CrashEvery > 0 {
		for nth := sc.CrashEvery; nth <= sc.Events*2; nth += sc.CrashEvery {
			log.CrashOnNth(appNames[0], nth)
		}
	}
	if sc.Wire.any() {
		wf := inj.WireFault(sc.Wire)
		for _, name := range appNames {
			stack.Proxy(name).SetWireFault(wf)
		}
	}
	if sc.InverseFailProb > 0 || sc.DisconnectProb > 0 {
		stack.NetLog.SetSendFault(inj.NetLogFault(n, sc.InverseFailProb, sc.DisconnectProb))
	}

	if err := stack.ConnectNetwork(n); err != nil {
		return failedReport(sc, sched, inj, 0, fmt.Errorf("connecting network: %w", err))
	}

	ctrl := stack.Controller
	dpids := make([]uint64, 0, sc.Switches)
	for _, sw := range n.Switches() {
		dpids = append(dpids, sw.DPID)
	}
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })

	partitioned := false
	injected := 0
	for i := 1; i <= sc.Events; i++ {
		// Faults land between events: the previous event has fully
		// dispatched (lockstep below), so which event a fault hits is a
		// pure function of the schedule.
		if inj.Fire(PointKill, sc.KillProb) {
			victim := appNames[sched.Pick(PointKill+"/pick", len(appNames))]
			stack.Proxy(victim).KillStub()
		}
		if sc.Switches > 1 && inj.Fire(PointFlap, sc.FlapProb) {
			left := dpids[sched.Pick(PointFlap+"/pick", len(dpids)-1)]
			// Linear convention: port 2 faces right, port 1 faces left.
			_ = n.SetLinkDown(left, 2, left+1, 1, true)
			_ = n.SetLinkDown(left, 2, left+1, 1, false)
		}
		if sc.PartitionAt > 0 && sc.Switches > 1 {
			if i == sc.PartitionAt {
				inj.note(PointPartition)
				n.SetPartition(dpids[:len(dpids)/2], true)
				partitioned = true
			} else if partitioned && i == sc.PartitionAt+5 {
				n.SetPartition(dpids[:len(dpids)/2], false)
				partitioned = false
			}
		}

		target := ctrl.Processed.Load() + 1
		err := ctrl.Inject(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: dpids[(i-1)%len(dpids)],
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   hostPort,
				Reason:   openflow.PacketInReasonNoMatch,
			},
		})
		if err != nil {
			return failedReport(sc, sched, inj, injected, fmt.Errorf("inject %d: %w", i, err))
		}
		injected++
		// Lockstep: wait for the event to dispatch (including any
		// synchronous Crash-Pad recovery it triggered) before deciding
		// the next fault. Recovery of a timed-out event can itself take
		// EventTimeout per retried delivery, so the deadline is generous.
		waitProcessed(ctrl, target, 30*time.Second)
	}
	if partitioned {
		n.SetPartition(dpids[:len(dpids)/2], false)
	}

	if sc.LossBurst {
		n.SetAllLinkProfiles(0, 0.3)
		h1, h2 := n.Host("h1"), n.Host("h2")
		if h1 != nil && h2 != nil {
			for i := 0; i < 20; i++ {
				_ = n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 4000, 9000+uint16(i), nil))
			}
		}
		n.SetAllLinkProfiles(0, 0)
	}

	quiesce(ctrl)

	// A scenario that severed switches mid-rollback reconnects them, so
	// the recovery invariants are judged after repair — the paper's
	// switch-reconnect path (NetLog resyncs shadow state on SwitchUp).
	for dpid := range inj.severedDPIDs() {
		_ = n.SetSwitchDown(dpid, false)
		ctrlSide, swSide := openflow.Pipe()
		if sw := n.Switch(dpid); sw != nil {
			if err := sw.Attach(swSide); err == nil {
				_ = ctrl.AttachSwitchConn(ctrlSide)
			}
		}
	}
	quiesce(ctrl)

	rep := &Report{
		Scenario:       sc.Name,
		Seed:           seed,
		EventsInjected: injected,
		Fired:          inj.FiredCounts(),
	}
	if cf := log.CrashesFired(); cf > 0 {
		rep.Fired["app/panic"] = cf
	}
	rep.Invariants = sc.checkInvariants(stack, n, log, appNames, dpids)
	rep.ScheduleFingerprint = sched.Fingerprint()
	attachAutopsies(rep, stack)
	return rep
}

// attachAutopsies copies the stack's autopsy reports onto the chaos
// report and, when an invariant failed, synthesizes one more autopsy
// pinning the violation to the flight recorder's tail — a chaos failure
// is a crash of the *model*, and it deserves the same forensics as a
// crash of an app.
func attachAutopsies(rep *Report, stack *core.Stack) {
	if stack == nil || stack.Autopsies == nil {
		return
	}
	rep.Autopsies = stack.Autopsies.All()
	if !rep.Failed() {
		return
	}
	var violations []string
	for _, iv := range rep.Invariants {
		if iv.Err != nil {
			violations = append(violations, fmt.Sprintf("%s: %v", iv.Name, iv.Err))
		}
	}
	a := &flightrec.Autopsy{
		App:        "chaos",
		Trigger:    "chaos-invariant",
		Class:      "invariant-violation",
		Culprit:    fmt.Sprintf("scenario %s seed %d", rep.Scenario, rep.Seed),
		Outcome:    "Failed",
		Violations: violations,
		Timeline:   (*flightrec.Timeline)(nil).Phases(),
		Records:    stack.Flight.Correlated("", 0, 0, 32),
	}
	stack.Autopsies.Add(a)
	rep.Autopsies = append(rep.Autopsies, a)
}

func failedReport(sc Scenario, sched *Schedule, inj *Injector, injected int, err error) *Report {
	return &Report{
		Scenario:            sc.Name,
		Seed:                sched.Seed(),
		EventsInjected:      injected,
		Fired:               inj.FiredCounts(),
		Invariants:          []InvariantResult{{Name: "setup", Err: err}},
		ScheduleFingerprint: sched.Fingerprint(),
	}
}

// waitProcessed blocks until the dispatch loop has consumed events up
// to target (or the deadline passes — slow progress is then caught by
// the invariant checks, not by a hang).
func waitProcessed(c *controller.Controller, target uint64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for c.Processed.Load() < target {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// quiesce waits until the dispatch counter stops moving (async event
// sources — PortStatus from flaps, PacketIns from lossy host traffic —
// have drained).
func quiesce(c *controller.Controller) {
	last := c.Processed.Load()
	for settled := 0; settled < 3; {
		time.Sleep(25 * time.Millisecond)
		now := c.Processed.Load()
		if now == last {
			settled++
		} else {
			settled = 0
			last = now
		}
	}
}

func (sc Scenario) checkInvariants(stack *core.Stack, n *netsim.Network, log *EventLog, appNames []string, dpids []uint64) []InvariantResult {
	var out []InvariantResult
	add := func(name string, err error) { out = append(out, InvariantResult{Name: name, Err: err}) }

	// 1. Per-app FIFO delivery, replay- and duplicate-tolerant.
	for _, name := range appNames {
		delivered := log.Delivered(name)
		err := CheckFIFO(delivered)
		if err == nil {
			events := 0
			for _, d := range delivered {
				if !d.Restore {
					events++
				}
			}
			if events == 0 {
				err = fmt.Errorf("no events ever delivered")
			}
		}
		add("fifo/"+name, err)
	}

	// 2. No orphaned or partially-applied transactions. A straggler
	// data-plane event (a PortStatus from a final flap, say) can still be
	// mid-dispatch when quiescence is declared, so an open transaction
	// gets a grace window to finish before it counts as orphaned.
	nl := stack.NetLog
	var txnErr error
	for deadline := time.Now().Add(2 * time.Second); ; {
		txnErr = nil
		if tx := nl.Active(); tx != nil {
			txnErr = fmt.Errorf("transaction still open after quiescence")
		} else if begun, done := nl.BegunTxns.Load(), nl.CommittedTxns.Load()+nl.Rollbacks.Load(); begun != done {
			txnErr = fmt.Errorf("%d transactions begun but only %d committed or rolled back", begun, done)
		}
		if txnErr == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	add("txn-balance", txnErr)

	// 3. Shadow flow tables consistent with switch state.
	if !sc.SkipShadowCheck {
		var shadowErr error
		for _, dpid := range dpids {
			sw := n.Switch(dpid)
			if sw == nil {
				continue
			}
			if got, want := nl.ShadowFingerprint(dpid), sw.Table().Fingerprint(); got != want {
				shadowErr = fmt.Errorf("switch %d: shadow %q != switch %q", dpid, got, want)
				break
			}
		}
		add("shadow-consistency", shadowErr)
	}

	// 4. Every crashed app restored: stub up, app enabled, controller alive.
	if !sc.AllowQuarantine {
		for _, name := range appNames {
			var err error
			switch {
			case stack.Controller.AppDisabled(name):
				err = fmt.Errorf("app still disabled")
			case !stack.Proxy(name).StubUp():
				err = fmt.Errorf("stub still down")
			}
			add("recovered/"+name, err)
		}
	}
	var crashErr error
	if stack.Controller.Crashed() {
		crashErr = fmt.Errorf("controller crashed")
	}
	add("controller-alive", crashErr)

	// 5. No forwarding loops were ever created.
	var loopErr error
	if drops := n.TotalLoopDrops(); drops != 0 {
		loopErr = fmt.Errorf("%d frames dropped by loop protection", drops)
	}
	add("no-loops", loopErr)

	return out
}
