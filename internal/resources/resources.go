// Package resources implements per-application resource limits, the
// §3.4 use case LegoSDN's isolation enables: "an operator can define
// resource limits for each SDN-App, thus limiting the impact of
// misbehaving applications". Limits cover inbound event rate (token
// bucket) and an outbound message budget per event; a rogue app that
// floods the controller or the network is throttled without affecting
// its neighbors.
package resources

import (
	"fmt"
	"sync"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/flowtable"
	"legosdn/internal/openflow"
)

// Limits bounds one app's consumption. Zero fields mean unlimited.
type Limits struct {
	// EventsPerSecond caps the sustained inbound event rate.
	EventsPerSecond float64
	// Burst is the token bucket depth (defaults to max(1, rate)).
	Burst float64
	// MsgsPerEvent caps outbound messages a single event may produce.
	MsgsPerEvent int
}

// bucket is a standard token bucket against an abstract clock.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (b *bucket) allow(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Limiter enforces per-app limits by wrapping another AppRunner. Apps
// without configured limits pass through untouched.
type Limiter struct {
	inner controller.AppRunner
	clock flowtable.Clock

	mu      sync.Mutex
	limits  map[string]Limits
	buckets map[string]*bucket

	// DroppedEvents counts events shed per app.
	droppedEvents map[string]uint64
	// RejectedMsgs counts outbound messages refused per app.
	rejectedMsgs map[string]uint64
}

// NewLimiter wraps inner with resource enforcement. clock may be nil
// (real time).
func NewLimiter(inner controller.AppRunner, clock flowtable.Clock) *Limiter {
	if clock == nil {
		clock = flowtable.RealClock{}
	}
	return &Limiter{
		inner:         inner,
		clock:         clock,
		limits:        make(map[string]Limits),
		buckets:       make(map[string]*bucket),
		droppedEvents: make(map[string]uint64),
		rejectedMsgs:  make(map[string]uint64),
	}
}

// SetLimits configures an app's limits.
func (l *Limiter) SetLimits(app string, lim Limits) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.limits[app] = lim
	if lim.EventsPerSecond > 0 {
		burst := lim.Burst
		if burst <= 0 {
			burst = lim.EventsPerSecond
			if burst < 1 {
				burst = 1
			}
		}
		l.buckets[app] = &bucket{rate: lim.EventsPerSecond, burst: burst, tokens: burst, last: l.clock.Now()}
	} else {
		delete(l.buckets, app)
	}
}

// DroppedEvents reports how many events were shed for app.
func (l *Limiter) DroppedEvents(app string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.droppedEvents[app]
}

// RejectedMsgs reports how many outbound messages were refused for app.
func (l *Limiter) RejectedMsgs(app string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejectedMsgs[app]
}

// RunEvent implements controller.AppRunner.
func (l *Limiter) RunEvent(app controller.App, ctx controller.Context, ev controller.Event) *controller.AppFailure {
	name := app.Name()
	l.mu.Lock()
	lim, limited := l.limits[name]
	b := l.buckets[name]
	l.mu.Unlock()
	if !limited {
		return l.inner.RunEvent(app, ctx, ev)
	}
	if b != nil {
		l.mu.Lock()
		ok := b.allow(l.clock.Now())
		if !ok {
			l.droppedEvents[name]++
		}
		l.mu.Unlock()
		if !ok {
			return nil // event shed: the rogue app pays, not the controller
		}
	}
	if lim.MsgsPerEvent > 0 {
		ctx = &budgetContext{Context: ctx, limiter: l, app: name, budget: lim.MsgsPerEvent}
	}
	return l.inner.RunEvent(app, ctx, ev)
}

// ErrBudgetExhausted is returned to apps that exceed their per-event
// outbound message budget.
var ErrBudgetExhausted = fmt.Errorf("resources: outbound message budget exhausted")

// budgetContext decrements a per-event message budget on every send.
type budgetContext struct {
	controller.Context
	limiter *Limiter
	app     string
	budget  int
}

func (c *budgetContext) SendMessage(dpid uint64, msg openflow.Message) error {
	if c.budget <= 0 {
		c.limiter.mu.Lock()
		c.limiter.rejectedMsgs[c.app]++
		c.limiter.mu.Unlock()
		return ErrBudgetExhausted
	}
	c.budget--
	return c.Context.SendMessage(dpid, msg)
}

func (c *budgetContext) SendFlowMod(dpid uint64, fm *openflow.FlowMod) error {
	return c.SendMessage(dpid, fm)
}

func (c *budgetContext) SendPacketOut(dpid uint64, po *openflow.PacketOut) error {
	return c.SendMessage(dpid, po)
}
