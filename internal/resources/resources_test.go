package resources

import (
	"errors"
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/flowtable"
	"legosdn/internal/openflow"
)

// passRunner invokes handlers directly.
type passRunner struct{}

func (passRunner) RunEvent(app controller.App, ctx controller.Context, ev controller.Event) *controller.AppFailure {
	_ = app.HandleEvent(ctx, ev)
	return nil
}

// chattyApp sends msgsPerEvent flow mods per event and records errors.
type chattyApp struct {
	name    string
	msgs    int
	handled int
	sendErr error
}

func (a *chattyApp) Name() string                          { return a.name }
func (a *chattyApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *chattyApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	a.handled++
	for i := 0; i < a.msgs; i++ {
		if err := ctx.SendFlowMod(1, &openflow.FlowMod{Match: openflow.MatchAll(),
			Command: openflow.FlowModAdd, BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone}); err != nil {
			a.sendErr = err
			return err
		}
	}
	return nil
}

// countingCtx counts sends.
type countingCtx struct{ sent int }

func (c *countingCtx) SendMessage(uint64, openflow.Message) error { c.sent++; return nil }
func (c *countingCtx) SendFlowMod(d uint64, m *openflow.FlowMod) error {
	return c.SendMessage(d, m)
}
func (c *countingCtx) SendPacketOut(d uint64, m *openflow.PacketOut) error {
	return c.SendMessage(d, m)
}
func (c *countingCtx) RequestStats(uint64, *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return nil, nil
}
func (c *countingCtx) Barrier(uint64) error            { return nil }
func (c *countingCtx) Switches() []uint64              { return nil }
func (c *countingCtx) Ports(uint64) []openflow.PhyPort { return nil }
func (c *countingCtx) Topology() []controller.LinkInfo { return nil }

func ev(seq uint64) controller.Event {
	return controller.Event{Seq: seq, Kind: controller.EventPacketIn}
}

func TestRateLimitShedsEvents(t *testing.T) {
	clk := flowtable.NewFakeClock(time.Unix(0, 0))
	l := NewLimiter(passRunner{}, clk)
	app := &chattyApp{name: "rogue"}
	l.SetLimits("rogue", Limits{EventsPerSecond: 10, Burst: 5})

	// Burst of 20 at t=0: only the bucket depth (5) passes.
	for i := 0; i < 20; i++ {
		l.RunEvent(app, &countingCtx{}, ev(uint64(i)))
	}
	if app.handled != 5 {
		t.Fatalf("handled = %d, want 5", app.handled)
	}
	if l.DroppedEvents("rogue") != 15 {
		t.Fatalf("dropped = %d", l.DroppedEvents("rogue"))
	}

	// After a second, ~10 more tokens accrue.
	clk.Advance(time.Second)
	for i := 0; i < 20; i++ {
		l.RunEvent(app, &countingCtx{}, ev(uint64(100+i)))
	}
	if app.handled != 10 { // 5 earlier + 5 refilled (bucket caps at 5)
		t.Fatalf("handled after refill = %d", app.handled)
	}
}

func TestUnlimitedAppPassesThrough(t *testing.T) {
	l := NewLimiter(passRunner{}, nil)
	app := &chattyApp{name: "polite"}
	for i := 0; i < 100; i++ {
		l.RunEvent(app, &countingCtx{}, ev(uint64(i)))
	}
	if app.handled != 100 || l.DroppedEvents("polite") != 0 {
		t.Fatalf("handled=%d dropped=%d", app.handled, l.DroppedEvents("polite"))
	}
}

func TestMessageBudget(t *testing.T) {
	l := NewLimiter(passRunner{}, nil)
	app := &chattyApp{name: "spammer", msgs: 10}
	l.SetLimits("spammer", Limits{MsgsPerEvent: 3})
	ctx := &countingCtx{}
	l.RunEvent(app, ctx, ev(1))
	if ctx.sent != 3 {
		t.Fatalf("sent = %d, want 3", ctx.sent)
	}
	if !errors.Is(app.sendErr, ErrBudgetExhausted) {
		t.Fatalf("app error = %v", app.sendErr)
	}
	if l.RejectedMsgs("spammer") != 1 {
		t.Fatalf("rejected = %d", l.RejectedMsgs("spammer"))
	}
	// The budget resets per event.
	app.sendErr = nil
	app.msgs = 2
	ctx2 := &countingCtx{}
	l.RunEvent(app, ctx2, ev(2))
	if ctx2.sent != 2 || app.sendErr != nil {
		t.Fatalf("second event: sent=%d err=%v", ctx2.sent, app.sendErr)
	}
}

func TestLimiterIsolation(t *testing.T) {
	// The rogue's limits never affect the polite app.
	clk := flowtable.NewFakeClock(time.Unix(0, 0))
	l := NewLimiter(passRunner{}, clk)
	rogue := &chattyApp{name: "rogue"}
	polite := &chattyApp{name: "polite"}
	l.SetLimits("rogue", Limits{EventsPerSecond: 1, Burst: 1})
	for i := 0; i < 50; i++ {
		l.RunEvent(rogue, &countingCtx{}, ev(uint64(i)))
		l.RunEvent(polite, &countingCtx{}, ev(uint64(i)))
	}
	if polite.handled != 50 {
		t.Fatalf("polite handled %d", polite.handled)
	}
	if rogue.handled != 1 {
		t.Fatalf("rogue handled %d", rogue.handled)
	}
}

func TestRemovingLimits(t *testing.T) {
	clk := flowtable.NewFakeClock(time.Unix(0, 0))
	l := NewLimiter(passRunner{}, clk)
	app := &chattyApp{name: "a"}
	l.SetLimits("a", Limits{EventsPerSecond: 1, Burst: 1})
	l.RunEvent(app, &countingCtx{}, ev(1))
	l.RunEvent(app, &countingCtx{}, ev(2)) // shed
	l.SetLimits("a", Limits{})             // unlimited again
	for i := 0; i < 10; i++ {
		l.RunEvent(app, &countingCtx{}, ev(uint64(10+i)))
	}
	if app.handled != 11 {
		t.Fatalf("handled = %d", app.handled)
	}
}
