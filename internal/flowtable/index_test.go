package flowtable

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"legosdn/internal/openflow"
)

// Generators use small field domains so random tables and packets
// collide often: exact hits, wildcard hits, priority ties, and misses
// all occur within a few dozen draws.

func randPacketSmall(r *rand.Rand) openflow.PacketFields {
	return openflow.PacketFields{
		InPort: uint16(r.Intn(4)),
		DlSrc:  openflow.EthAddr{0, 0, 0, 0, 0, byte(r.Intn(4))},
		DlDst:  openflow.EthAddr{0, 0, 0, 0, 0, byte(r.Intn(4))},
		DlType: 0x0800,
		NwProto: uint8(r.Intn(2)*11 + 6), // 6 or 17
		NwSrc:  0x0a000000 | uint32(r.Intn(4)),
		NwDst:  0x0a000100 | uint32(r.Intn(4)),
		TpSrc:  uint16(r.Intn(3)),
		TpDst:  uint16(r.Intn(3)),
	}
}

// exactMatchFor builds a match that constrains all twelve fields to the
// packet's values: the entry lands in the exact-match index.
func exactMatchFor(p openflow.PacketFields) openflow.Match {
	return openflow.Match{
		InPort: p.InPort,
		DlSrc:  p.DlSrc, DlDst: p.DlDst,
		DlVlan: p.DlVlan, DlVlanPcp: p.DlVlanPcp,
		DlType: p.DlType, NwTos: p.NwTos, NwProto: p.NwProto,
		NwSrc: p.NwSrc, NwDst: p.NwDst,
		TpSrc: p.TpSrc, TpDst: p.TpDst,
	}
}

// randWildMatch leaves a random subset of fields wildcarded, so the
// entry lands in the priority buckets.
func randWildMatch(r *rand.Rand) openflow.Match {
	m := openflow.MatchAll()
	if r.Intn(2) == 0 {
		m.Wildcards &^= openflow.WildcardInPort
		m.InPort = uint16(r.Intn(4))
	}
	if r.Intn(2) == 0 {
		m.Wildcards &^= openflow.WildcardTpDst
		m.TpDst = uint16(r.Intn(3))
	}
	if r.Intn(3) == 0 {
		m.Wildcards &^= openflow.WildcardDlType
		m.DlType = 0x0800
		m.SetNwSrcMaskBits(uint(8 * (1 + r.Intn(3))))
		m.NwSrc = 0x0a000000 | uint32(r.Intn(4))
	}
	return m
}

func randTable(r *rand.Rand, n int) *Table {
	ft := New(nil)
	for i := 0; i < n; i++ {
		var m openflow.Match
		if r.Intn(2) == 0 {
			m = exactMatchFor(randPacketSmall(r))
		} else {
			m = randWildMatch(r)
		}
		ft.Apply(addMod(m, uint16(r.Intn(6)), &openflow.ActionOutput{Port: uint16(i)}))
	}
	return ft
}

// TestIndexedLookupMatchesLinear is the differential property test: on
// randomized tables — including after random deletes that exercise
// index maintenance — the indexed Lookup must return the exact same
// entry (pointer-identical) as the retained linear-scan reference, for
// every packet. This is the proof that the index preserves priority
// order and tie-break determinism byte for byte.
func TestIndexedLookupMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		ft := randTable(r, 3+r.Intn(40))

		// Random non-strict deletes stress remove/rebucket paths.
		for i := 0; i < r.Intn(3); i++ {
			ft.Apply(&openflow.FlowMod{
				Match: randWildMatch(r), Command: openflow.FlowModDelete,
				OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
			})
		}

		for i := 0; i < 50; i++ {
			p := randPacketSmall(r)
			want := ft.LookupLinear(p)
			got := ft.Lookup(p, 1)
			if got != want {
				t.Fatalf("seed %d packet %+v: indexed %v, linear reference %v",
					seed, p, got, want)
			}
		}
	}
}

// TestIndexMaintenanceAcrossExpiry checks the index stays consistent
// with the entries map when timeouts evict entries.
func TestIndexMaintenanceAcrossExpiry(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	ft := New(clk)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		fm := addMod(exactMatchFor(randPacketSmall(r)), uint16(r.Intn(4)))
		if i%2 == 0 {
			fm.HardTimeout = uint16(1 + r.Intn(5))
		}
		ft.Apply(fm)
	}
	for step := 0; step < 8; step++ {
		clk.Advance(time.Second)
		ft.Expire()
		for i := 0; i < 20; i++ {
			p := randPacketSmall(r)
			if got, want := ft.Lookup(p, 1), ft.LookupLinear(p); got != want {
				t.Fatalf("step %d: indexed %v, linear %v", step, got, want)
			}
		}
	}
}

// TestConcurrentLookupRace hammers Lookup from many goroutines while a
// writer churns the table with adds, deletes, and expiry. Run under
// -race this is the regression test for the stats mutation that used to
// write plain fields inside Lookup.
func TestConcurrentLookupRace(t *testing.T) {
	ft := New(nil)
	seedRand := rand.New(rand.NewSource(9))
	for i := 0; i < 64; i++ {
		ft.Apply(addMod(exactMatchFor(randPacketSmall(seedRand)), uint16(seedRand.Intn(6))))
		ft.Apply(addMod(randWildMatch(seedRand), uint16(seedRand.Intn(6))))
	}

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := randPacketSmall(r)
				if e := ft.Lookup(p, 64); e != nil {
					// The two counters are separate atomics, so no
					// cross-field invariant holds at read time; the
					// point is that -race sees only atomic access.
					e.Counters()
					e.LastMatchedAt()
				}
				ft.Peek(p)
			}
		}(int64(g))
	}

	// Writer: churn rules and expiry under the same packet domain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0, 1:
				ft.Apply(addMod(exactMatchFor(randPacketSmall(r)), uint16(r.Intn(6))))
			case 2:
				ft.Apply(&openflow.FlowMod{
					Match: randWildMatch(r), Command: openflow.FlowModDelete,
					OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
				})
			case 3:
				ft.Expire()
				ft.Entries()
			}
		}
		close(stop)
	}()
	wg.Wait()
}

// TestLookupZeroAllocs proves the hot path allocates nothing, on both
// the exact-hit and the wildcard-hit path, and on a miss.
func TestLookupZeroAllocs(t *testing.T) {
	ft := New(nil)
	r := rand.New(rand.NewSource(3))
	hit := randPacketSmall(r)
	ft.Apply(addMod(exactMatchFor(hit), 10))
	wildHit := openflow.PacketFields{InPort: 3, TpDst: 9, DlType: 0x86dd}
	wm := openflow.MatchAll()
	wm.Wildcards &^= openflow.WildcardInPort
	wm.InPort = 3
	ft.Apply(addMod(wm, 5))
	for i := 0; i < 200; i++ {
		ft.Apply(addMod(exactMatchFor(randPacketSmall(r)), uint16(r.Intn(6))))
	}
	miss := openflow.PacketFields{InPort: 1000}

	var sink *Entry
	cases := []struct {
		name string
		p    openflow.PacketFields
	}{{"exact-hit", hit}, {"wild-hit", wildHit}, {"miss", miss}}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, func() { sink = ft.Lookup(tc.p, 64) }); n != 0 {
			t.Errorf("%s: %v allocs per Lookup, want 0", tc.name, n)
		}
	}
	_ = sink
}
