// Package flowtable implements OpenFlow 1.0 flow-table semantics as a
// reusable data structure: priority lookup, strict and non-strict
// modify/delete, overlap checking, idle/hard timeouts and per-entry
// counters. The network simulator uses it as each switch's table, and
// NetLog uses it as the controller-side shadow of each switch — both
// sides of the paper's rollback machinery therefore share one tested
// implementation of the semantics.
package flowtable

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"legosdn/internal/openflow"
)

// Entry is one installed rule in a switch flow table.
type Entry struct {
	Match       openflow.Match // normalized
	Priority    uint16
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Flags       uint16
	Actions     []openflow.Action

	Installed   time.Time
	LastMatched time.Time
	PacketCount uint64
	ByteCount   uint64
}

// key identifies an entry for strict matching: identical normalized
// match plus identical priority.
type flowKey struct {
	match    openflow.Match
	priority uint16
}

func (e *Entry) key() flowKey { return flowKey{e.Match, e.Priority} }

// clone deep-copies the entry so snapshots never alias live state.
func (e *Entry) clone() *Entry {
	c := *e
	c.Actions = openflow.CopyActions(e.Actions)
	return &c
}

// Removed pairs an evicted entry with the OpenFlow removal reason, so
// the switch can emit FlowRemoved messages and NetLog can journal the
// destroyed state.
type Removed struct {
	Entry  *Entry
	Reason openflow.FlowRemovedReason
}

// Table implements OpenFlow 1.0 single-table semantics: priority
// lookup, strict and non-strict modify/delete, overlap checking, idle
// and hard timeouts, and per-entry counters. It is safe for concurrent
// use.
type Table struct {
	mu      sync.Mutex
	entries map[flowKey]*Entry
	clock   Clock
	maxSize int // 0 = unlimited
}

// New returns an empty table reading time from clock
// (RealClock if nil).
func New(clock Clock) *Table {
	if clock == nil {
		clock = RealClock{}
	}
	return &Table{entries: make(map[flowKey]*Entry), clock: clock}
}

// SetMaxSize bounds the number of entries; Apply of an ADD beyond the
// bound fails with an all-tables-full error code.
func (t *Table) SetMaxSize(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxSize = n
}

// Len reports the number of installed entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// ErrTableFull is returned by Apply when an ADD exceeds the size bound.
var ErrTableFull = fmt.Errorf("flowtable: flow table full")

// ErrOverlap is returned when CHECK_OVERLAP finds a conflicting entry.
var ErrOverlap = fmt.Errorf("flowtable: overlapping flow entry")

// Apply executes a FlowMod against the table, returning entries removed
// as a side effect (for DELETE commands those carry reason DELETE; an
// ADD that replaces an identical entry returns nothing, matching
// OpenFlow semantics where replacement resets counters silently).
func (t *Table) Apply(fm *openflow.FlowMod) ([]Removed, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	norm := fm.Match.Normalize()
	switch fm.Command {
	case openflow.FlowModAdd:
		k := flowKey{norm, fm.Priority}
		if fm.Flags&openflow.FlowModFlagCheckOverlap != 0 {
			for _, e := range t.entries {
				if e.Priority == fm.Priority && e.key() != k && matchesOverlap(&e.Match, &norm) {
					return nil, ErrOverlap
				}
			}
		}
		if _, exists := t.entries[k]; !exists && t.maxSize > 0 && len(t.entries) >= t.maxSize {
			return nil, ErrTableFull
		}
		t.entries[k] = &Entry{
			Match:       norm,
			Priority:    fm.Priority,
			Cookie:      fm.Cookie,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
			Flags:       fm.Flags,
			Actions:     openflow.CopyActions(fm.Actions),
			Installed:   now,
			LastMatched: now,
		}
		return nil, nil

	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := fm.Command == openflow.FlowModModifyStrict
		modified := false
		for _, e := range t.entries {
			if t.selects(e, &norm, fm.Priority, strict, openflow.PortNone) {
				e.Actions = openflow.CopyActions(fm.Actions)
				e.Cookie = fm.Cookie
				modified = true
			}
		}
		if !modified {
			// OpenFlow 1.0: a modify that matches nothing behaves as an add.
			k := flowKey{norm, fm.Priority}
			if t.maxSize > 0 && len(t.entries) >= t.maxSize {
				return nil, ErrTableFull
			}
			t.entries[k] = &Entry{
				Match:       norm,
				Priority:    fm.Priority,
				Cookie:      fm.Cookie,
				IdleTimeout: fm.IdleTimeout,
				HardTimeout: fm.HardTimeout,
				Flags:       fm.Flags,
				Actions:     openflow.CopyActions(fm.Actions),
				Installed:   now,
				LastMatched: now,
			}
		}
		return nil, nil

	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := fm.Command == openflow.FlowModDeleteStrict
		var removed []Removed
		for k, e := range t.entries {
			if t.selects(e, &norm, fm.Priority, strict, fm.OutPort) {
				delete(t.entries, k)
				removed = append(removed, Removed{Entry: e, Reason: openflow.FlowRemovedDelete})
			}
		}
		return removed, nil

	default:
		return nil, fmt.Errorf("flowtable: bad flow_mod command %v", fm.Command)
	}
}

// selects implements the OpenFlow rule-selection predicate shared by
// modify and delete: strict requires identical match and priority;
// non-strict requires the given match to subsume the entry. outPort,
// when not PortNone, additionally requires an output action to that
// port (delete only).
func (t *Table) selects(e *Entry, m *openflow.Match, priority uint16, strict bool, outPort uint16) bool {
	if strict {
		if e.Match != *m || e.Priority != priority {
			return false
		}
	} else if !m.Subsumes(&e.Match) {
		return false
	}
	if outPort != openflow.PortNone {
		found := false
		for _, a := range e.Actions {
			if o, ok := a.(*openflow.ActionOutput); ok && o.Port == outPort {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchesOverlap approximates the OpenFlow overlap test: two matches
// overlap when one subsumes the other (a sound subset of true overlap,
// sufficient for CHECK_OVERLAP in the simulator).
func matchesOverlap(a, b *openflow.Match) bool {
	return a.Subsumes(b) || b.Subsumes(a)
}

// Lookup returns the highest-priority entry matching the packet fields
// and, when found, bumps its counters by size bytes. Ties on priority
// are broken deterministically by match string so simulation runs are
// reproducible.
func (t *Table) Lookup(p openflow.PacketFields, size int) *Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best *Entry
	for _, e := range t.entries {
		if !e.Match.Matches(p) {
			continue
		}
		if best == nil || e.Priority > best.Priority ||
			(e.Priority == best.Priority && e.Match.String() < best.Match.String()) {
			best = e
		}
	}
	if best != nil {
		best.PacketCount++
		best.ByteCount += uint64(size)
		best.LastMatched = t.clock.Now()
	}
	return best
}

// Peek returns a deep copy of the highest-priority entry matching the
// packet fields without touching counters or timestamps. Invariant
// checkers use it to trace forwarding behavior without perturbing the
// statistics the control plane observes.
func (t *Table) Peek(p openflow.PacketFields) *Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best *Entry
	for _, e := range t.entries {
		if !e.Match.Matches(p) {
			continue
		}
		if best == nil || e.Priority > best.Priority ||
			(e.Priority == best.Priority && e.Match.String() < best.Match.String()) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.clone()
}

// Expire removes entries whose idle or hard timeout has elapsed,
// returning them with the appropriate removal reason.
func (t *Table) Expire() []Removed {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	var removed []Removed
	for k, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now.Sub(e.Installed) >= time.Duration(e.HardTimeout)*time.Second:
			delete(t.entries, k)
			removed = append(removed, Removed{Entry: e, Reason: openflow.FlowRemovedHardTimeout})
		case e.IdleTimeout > 0 && now.Sub(e.LastMatched) >= time.Duration(e.IdleTimeout)*time.Second:
			delete(t.entries, k)
			removed = append(removed, Removed{Entry: e, Reason: openflow.FlowRemovedIdleTimeout})
		}
	}
	return removed
}

// Entries returns deep copies of all entries, ordered by descending
// priority then match string, suitable for stats replies and snapshots.
func (t *Table) Entries() []*Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Match.String() < out[j].Match.String()
	})
	return out
}

// InsertEntry installs a fully specified entry, preserving its counters
// and timestamps. NetLog's rollback uses this to restore deleted
// entries together with their remaining timeout budget.
func (t *Table) InsertEntry(e *Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := e.clone()
	c.Match = c.Match.Normalize()
	t.entries[c.key()] = c
}

// MatchingEntries returns deep copies of entries selected by an
// OpenFlow stats-request filter (non-strict match plus out-port).
func (t *Table) MatchingEntries(filter *openflow.Match, outPort uint16) []*Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	norm := filter.Normalize()
	var out []*Entry
	for _, e := range t.entries {
		if t.selects(e, &norm, 0, false, outPort) {
			out = append(out, e.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Match.String() < out[j].Match.String()
	})
	return out
}

// Fingerprint summarizes the table's rule state (matches, priorities,
// actions — not counters) as a canonical string. Two tables with equal
// fingerprints hold semantically identical forwarding state; the NetLog
// rollback tests compare these.
func (t *Table) Fingerprint() string {
	entries := t.Entries()
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "p%d[%s]c%d i%d h%d:", e.Priority, e.Match, e.Cookie, e.IdleTimeout, e.HardTimeout)
		for _, a := range e.Actions {
			fmt.Fprintf(&sb, "%v;", a)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
