// Package flowtable implements OpenFlow 1.0 flow-table semantics as a
// reusable data structure: priority lookup, strict and non-strict
// modify/delete, overlap checking, idle/hard timeouts and per-entry
// counters. The network simulator uses it as each switch's table, and
// NetLog uses it as the controller-side shadow of each switch — both
// sides of the paper's rollback machinery therefore share one tested
// implementation of the semantics.
//
// Lookup is the data-plane hot path and runs against a priority-bucketed
// index (see index.go) under a read lock, with per-entry statistics kept
// in atomics so concurrent lookups never contend or race. The original
// linear scan survives as an unexported reference implementation that
// the property tests and benchmarks compare against.
package flowtable

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/openflow"
)

// Entry is one installed rule in a switch flow table.
//
// The exported counter and timestamp fields are snapshots: they are
// authoritative on entries the caller built (InsertEntry input) and on
// entries the table hands back out of its own structures (Entries,
// MatchingEntries, Peek clones, Removed entries). On the live entry
// returned by Lookup they are frozen at insert time — read the moving
// values through Counters and LastMatchedAt, which Lookup maintains in
// atomics so concurrent lookups never race.
type Entry struct {
	Match       openflow.Match // normalized
	Priority    uint16
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Flags       uint16
	Actions     []openflow.Action

	Installed   time.Time
	LastMatched time.Time
	PacketCount uint64
	ByteCount   uint64

	// Index bookkeeping, populated by prepare when the entry enters a
	// table: tieKey is Match.String() computed once so priority ties
	// break deterministically without per-lookup allocations; packed and
	// exact feed the exact-match hash index; stats holds the live
	// counters that Lookup bumps atomically under the read lock.
	tieKey string
	exact  bool
	packed openflow.PackedFields
	stats  *entryStats
}

// entryStats are the counters Lookup mutates. They live behind a
// pointer so clones (plain struct copies) can drop them, and they are
// atomics so lookups under the shared read lock never race each other.
type entryStats struct {
	packets     atomic.Uint64
	bytes       atomic.Uint64
	lastMatched atomic.Int64 // UnixNano; zeroTimeNano encodes the zero time.Time
}

// zeroTimeNano stands in for the zero time.Time, whose UnixNano is
// undefined (year 1 is outside the representable range).
const zeroTimeNano = math.MinInt64

func nanoOf(t time.Time) int64 {
	if t.IsZero() {
		return zeroTimeNano
	}
	return t.UnixNano()
}

func timeOf(n int64) time.Time {
	if n == zeroTimeNano {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// prepare computes the index bookkeeping and moves the entry's snapshot
// counters into live atomics. Called once, under the table write lock,
// when the entry enters the table.
func (e *Entry) prepare() {
	e.tieKey = e.Match.String()
	e.packed, e.exact = e.Match.ExactFields()
	s := &entryStats{}
	s.packets.Store(e.PacketCount)
	s.bytes.Store(e.ByteCount)
	s.lastMatched.Store(nanoOf(e.LastMatched))
	e.stats = s
}

// materialize freezes the live counters back into the exported snapshot
// fields. Called on entries leaving the table (removal, expiry) so
// FlowRemoved emission and journaling read final values. The stats
// pointer is kept: a caller still holding this entry from an earlier
// Lookup may call Counters concurrently, and once the entry is out of
// the index the atomics can no longer move.
func (e *Entry) materialize() {
	if e.stats == nil {
		return
	}
	e.PacketCount = e.stats.packets.Load()
	e.ByteCount = e.stats.bytes.Load()
	e.LastMatched = timeOf(e.stats.lastMatched.Load())
}

// Counters returns the entry's packet and byte counters: the live
// values on an entry returned by Lookup, the snapshot on a clone.
func (e *Entry) Counters() (packets, bytes uint64) {
	if e.stats != nil {
		return e.stats.packets.Load(), e.stats.bytes.Load()
	}
	return e.PacketCount, e.ByteCount
}

// LastMatchedAt returns the time of the entry's most recent Lookup hit
// (its install time if it has never matched).
func (e *Entry) LastMatchedAt() time.Time {
	if e.stats != nil {
		return timeOf(e.stats.lastMatched.Load())
	}
	return e.LastMatched
}

// key identifies an entry for strict matching: identical normalized
// match plus identical priority.
type flowKey struct {
	match    openflow.Match
	priority uint16
}

func (e *Entry) key() flowKey { return flowKey{e.Match, e.Priority} }

// clone deep-copies the entry so snapshots never alias live state. Live
// counters are materialized into the clone's exported fields.
func (e *Entry) clone() *Entry {
	c := *e
	c.Actions = openflow.CopyActions(e.Actions)
	if e.stats != nil {
		c.PacketCount = e.stats.packets.Load()
		c.ByteCount = e.stats.bytes.Load()
		c.LastMatched = timeOf(e.stats.lastMatched.Load())
		c.stats = nil
	}
	return &c
}

// Removed pairs an evicted entry with the OpenFlow removal reason, so
// the switch can emit FlowRemoved messages and NetLog can journal the
// destroyed state.
type Removed struct {
	Entry  *Entry
	Reason openflow.FlowRemovedReason
}

// Table implements OpenFlow 1.0 single-table semantics: priority
// lookup, strict and non-strict modify/delete, overlap checking, idle
// and hard timeouts, and per-entry counters. It is safe for concurrent
// use; lookups share a read lock and scale with readers.
type Table struct {
	mu      sync.RWMutex
	entries map[flowKey]*Entry
	index   tableIndex
	clock   Clock
	maxSize int // 0 = unlimited
	onDepth func(depth int)
}

// New returns an empty table reading time from clock
// (RealClock if nil).
func New(clock Clock) *Table {
	if clock == nil {
		clock = RealClock{}
	}
	return &Table{entries: make(map[flowKey]*Entry), index: newTableIndex(), clock: clock}
}

// SetMaxSize bounds the number of entries; Apply of an ADD beyond the
// bound fails with an all-tables-full error code.
func (t *Table) SetMaxSize(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxSize = n
}

// SetDepthObserver installs a callback invoked with the number of
// entries each Lookup examined. The network simulator wires this to a
// lookup-depth histogram; fn must be fast and must not call back into
// the table. A nil fn removes the observer.
func (t *Table) SetDepthObserver(fn func(depth int)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onDepth = fn
}

// Len reports the number of installed entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// ErrTableFull is returned by Apply when an ADD exceeds the size bound.
var ErrTableFull = fmt.Errorf("flowtable: flow table full")

// ErrOverlap is returned when CHECK_OVERLAP finds a conflicting entry.
var ErrOverlap = fmt.Errorf("flowtable: overlapping flow entry")

// install prepares the entry and places it in both the map and the
// index, displacing any previous entry under the same strict key.
// Caller holds the write lock.
func (t *Table) install(e *Entry) {
	k := e.key()
	if old, ok := t.entries[k]; ok {
		t.index.remove(old)
	}
	e.prepare()
	t.entries[k] = e
	t.index.insert(e)
}

// Apply executes a FlowMod against the table, returning entries removed
// as a side effect (for DELETE commands those carry reason DELETE; an
// ADD that replaces an identical entry returns nothing, matching
// OpenFlow semantics where replacement resets counters silently).
func (t *Table) Apply(fm *openflow.FlowMod) ([]Removed, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	norm := fm.Match.Normalize()
	switch fm.Command {
	case openflow.FlowModAdd:
		k := flowKey{norm, fm.Priority}
		if fm.Flags&openflow.FlowModFlagCheckOverlap != 0 {
			for _, e := range t.entries {
				if e.Priority == fm.Priority && e.key() != k && matchesOverlap(&e.Match, &norm) {
					return nil, ErrOverlap
				}
			}
		}
		if _, exists := t.entries[k]; !exists && t.maxSize > 0 && len(t.entries) >= t.maxSize {
			return nil, ErrTableFull
		}
		t.install(&Entry{
			Match:       norm,
			Priority:    fm.Priority,
			Cookie:      fm.Cookie,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
			Flags:       fm.Flags,
			Actions:     openflow.CopyActions(fm.Actions),
			Installed:   now,
			LastMatched: now,
		})
		return nil, nil

	case openflow.FlowModModify, openflow.FlowModModifyStrict:
		strict := fm.Command == openflow.FlowModModifyStrict
		modified := false
		for _, e := range t.entries {
			if t.selects(e, &norm, fm.Priority, strict, openflow.PortNone) {
				// Match and priority are untouched, so the index needs
				// no maintenance here.
				e.Actions = openflow.CopyActions(fm.Actions)
				e.Cookie = fm.Cookie
				modified = true
			}
		}
		if !modified {
			// OpenFlow 1.0: a modify that matches nothing behaves as an add.
			if t.maxSize > 0 && len(t.entries) >= t.maxSize {
				return nil, ErrTableFull
			}
			t.install(&Entry{
				Match:       norm,
				Priority:    fm.Priority,
				Cookie:      fm.Cookie,
				IdleTimeout: fm.IdleTimeout,
				HardTimeout: fm.HardTimeout,
				Flags:       fm.Flags,
				Actions:     openflow.CopyActions(fm.Actions),
				Installed:   now,
				LastMatched: now,
			})
		}
		return nil, nil

	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := fm.Command == openflow.FlowModDeleteStrict
		var removed []Removed
		for k, e := range t.entries {
			if t.selects(e, &norm, fm.Priority, strict, fm.OutPort) {
				delete(t.entries, k)
				t.index.remove(e)
				e.materialize()
				removed = append(removed, Removed{Entry: e, Reason: openflow.FlowRemovedDelete})
			}
		}
		return removed, nil

	default:
		return nil, fmt.Errorf("flowtable: bad flow_mod command %v", fm.Command)
	}
}

// selects implements the OpenFlow rule-selection predicate shared by
// modify and delete: strict requires identical match and priority;
// non-strict requires the given match to subsume the entry. outPort,
// when not PortNone, additionally requires an output action to that
// port (delete only).
func (t *Table) selects(e *Entry, m *openflow.Match, priority uint16, strict bool, outPort uint16) bool {
	if strict {
		if e.Match != *m || e.Priority != priority {
			return false
		}
	} else if !m.Subsumes(&e.Match) {
		return false
	}
	if outPort != openflow.PortNone {
		found := false
		for _, a := range e.Actions {
			if o, ok := a.(*openflow.ActionOutput); ok && o.Port == outPort {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchesOverlap approximates the OpenFlow overlap test: two matches
// overlap when one subsumes the other (a sound subset of true overlap,
// sufficient for CHECK_OVERLAP in the simulator).
func matchesOverlap(a, b *openflow.Match) bool {
	return a.Subsumes(b) || b.Subsumes(a)
}

// Lookup returns the highest-priority entry matching the packet fields
// and, when found, bumps its counters by size bytes. Ties on priority
// are broken deterministically by the precomputed match key so
// simulation runs are reproducible. The hit path takes the read lock,
// probes the index, and updates atomics: zero allocations, and
// concurrent lookups proceed in parallel.
func (t *Table) Lookup(p openflow.PacketFields, size int) *Entry {
	key := p.Pack()
	t.mu.RLock()
	best, depth := t.index.lookup(p, key)
	if best != nil {
		best.stats.packets.Add(1)
		best.stats.bytes.Add(uint64(size))
		best.stats.lastMatched.Store(nanoOf(t.clock.Now()))
	}
	onDepth := t.onDepth
	t.mu.RUnlock()
	if onDepth != nil {
		onDepth(depth)
	}
	return best
}

// lookupLinear is the pre-index reference implementation: walk every
// entry, keep the highest priority, break ties on the precomputed
// match key. Retained so property tests can assert the index returns
// byte-identical results and benchmarks can measure the speedup.
// Caller holds at least the read lock. Does not touch counters.
func (t *Table) lookupLinear(p openflow.PacketFields) *Entry {
	var best *Entry
	for _, e := range t.entries {
		if !e.Match.Matches(p) {
			continue
		}
		if best == nil || e.Priority > best.Priority ||
			(e.Priority == best.Priority && e.tieKey < best.tieKey) {
			best = e
		}
	}
	return best
}

// LookupLinear runs the retained linear-scan reference implementation
// without updating counters. It exists for differential testing and
// for benchmarking the index against its predecessor; the hot path
// never calls it.
func (t *Table) LookupLinear(p openflow.PacketFields) *Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupLinear(p)
}

// Peek returns a deep copy of the highest-priority entry matching the
// packet fields without touching counters or timestamps. Invariant
// checkers use it to trace forwarding behavior without perturbing the
// statistics the control plane observes.
func (t *Table) Peek(p openflow.PacketFields) *Entry {
	key := p.Pack()
	t.mu.RLock()
	defer t.mu.RUnlock()
	best, _ := t.index.lookup(p, key)
	if best == nil {
		return nil
	}
	return best.clone()
}

// Expire removes entries whose idle or hard timeout has elapsed,
// returning them with the appropriate removal reason.
func (t *Table) Expire() []Removed {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	var removed []Removed
	for k, e := range t.entries {
		var reason openflow.FlowRemovedReason
		switch {
		case e.HardTimeout > 0 && now.Sub(e.Installed) >= time.Duration(e.HardTimeout)*time.Second:
			reason = openflow.FlowRemovedHardTimeout
		case e.IdleTimeout > 0 && now.Sub(e.LastMatchedAt()) >= time.Duration(e.IdleTimeout)*time.Second:
			reason = openflow.FlowRemovedIdleTimeout
		default:
			continue
		}
		delete(t.entries, k)
		t.index.remove(e)
		e.materialize()
		removed = append(removed, Removed{Entry: e, Reason: reason})
	}
	return removed
}

// Entries returns deep copies of all entries, ordered by descending
// priority then match string, suitable for stats replies and snapshots.
func (t *Table) Entries() []*Entry {
	t.mu.RLock()
	out := make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.clone())
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].tieKey < out[j].tieKey
	})
	return out
}

// InsertEntry installs a fully specified entry, preserving its counters
// and timestamps. NetLog's rollback uses this to restore deleted
// entries together with their remaining timeout budget.
func (t *Table) InsertEntry(e *Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := e.clone()
	c.Match = c.Match.Normalize()
	t.install(c)
}

// MatchingEntries returns deep copies of entries selected by an
// OpenFlow stats-request filter (non-strict match plus out-port).
func (t *Table) MatchingEntries(filter *openflow.Match, outPort uint16) []*Entry {
	t.mu.RLock()
	norm := filter.Normalize()
	var out []*Entry
	for _, e := range t.entries {
		if t.selects(e, &norm, 0, false, outPort) {
			out = append(out, e.clone())
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].tieKey < out[j].tieKey
	})
	return out
}

// Fingerprint summarizes the table's rule state (matches, priorities,
// actions — not counters) as a canonical string. Two tables with equal
// fingerprints hold semantically identical forwarding state; the NetLog
// rollback tests compare these.
func (t *Table) Fingerprint() string {
	entries := t.Entries()
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "p%d[%s]c%d i%d h%d:", e.Priority, e.Match, e.Cookie, e.IdleTimeout, e.HardTimeout)
		for _, a := range e.Actions {
			fmt.Fprintf(&sb, "%v;", a)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
