package flowtable

import (
	"sort"

	"legosdn/internal/openflow"
)

// tableIndex accelerates Lookup from a linear scan over every entry to
// a probe of two structures kept in lockstep with the entries map:
//
//   - exact: rules that constrain all twelve header fields, hashed on
//     the packed field key. A packet can hit at most one exact key (its
//     own Pack()), so one map probe finds every exact candidate.
//   - wild: everything else, grouped into buckets of equal priority
//     sorted descending, each bucket's entries sorted ascending by
//     tie-break key. Lookup walks buckets top-down and stops at the
//     first priority level that produced a match, so a hit near the top
//     of the table never pays for the rules below it.
//
// Tie-break determinism is preserved exactly: the winner among equal
// priorities is the entry with the smallest precomputed tieKey, which
// is byte-for-byte the Match.String() ordering the linear scan used.
type tableIndex struct {
	exact map[openflow.PackedFields][]*Entry // per key: descending priority
	wild  []wildBucket                       // descending priority
}

// wildBucket holds all non-exact entries installed at one priority.
type wildBucket struct {
	prio    uint16
	entries []*Entry // ascending tieKey
}

func newTableIndex() tableIndex {
	return tableIndex{exact: make(map[openflow.PackedFields][]*Entry)}
}

// insert adds an entry prepared by prepare(). The caller must have
// removed any previous entry with the same (match, priority) first.
func (ix *tableIndex) insert(e *Entry) {
	if e.exact {
		s := ix.exact[e.packed]
		i := sort.Search(len(s), func(i int) bool { return s[i].Priority <= e.Priority })
		s = append(s, nil)
		copy(s[i+1:], s[i:])
		s[i] = e
		ix.exact[e.packed] = s
		return
	}
	bi := sort.Search(len(ix.wild), func(i int) bool { return ix.wild[i].prio <= e.Priority })
	if bi == len(ix.wild) || ix.wild[bi].prio != e.Priority {
		ix.wild = append(ix.wild, wildBucket{})
		copy(ix.wild[bi+1:], ix.wild[bi:])
		ix.wild[bi] = wildBucket{prio: e.Priority}
	}
	b := &ix.wild[bi]
	j := sort.Search(len(b.entries), func(i int) bool { return b.entries[i].tieKey >= e.tieKey })
	b.entries = append(b.entries, nil)
	copy(b.entries[j+1:], b.entries[j:])
	b.entries[j] = e
}

// remove drops the entry (located by pointer identity) from the index.
func (ix *tableIndex) remove(e *Entry) {
	if e.exact {
		s := ix.exact[e.packed]
		for i, cur := range s {
			if cur == e {
				s = append(s[:i], s[i+1:]...)
				break
			}
		}
		if len(s) == 0 {
			delete(ix.exact, e.packed)
		} else {
			ix.exact[e.packed] = s
		}
		return
	}
	for bi := range ix.wild {
		b := &ix.wild[bi]
		if b.prio != e.Priority {
			continue
		}
		for i, cur := range b.entries {
			if cur == e {
				b.entries = append(b.entries[:i], b.entries[i+1:]...)
				break
			}
		}
		if len(b.entries) == 0 {
			ix.wild = append(ix.wild[:bi], ix.wild[bi+1:]...)
		}
		return
	}
}

// lookup returns the winning entry for the packet — highest priority,
// ties broken by smallest tieKey — and the number of entries examined
// (the lookup depth). key must be p.Pack(). It performs no allocations.
func (ix *tableIndex) lookup(p openflow.PacketFields, key openflow.PackedFields) (*Entry, int) {
	depth := 0
	var best *Entry
	if s := ix.exact[key]; len(s) > 0 {
		// All entries under one key share an identical match, so the
		// head of the priority-sorted slice is the only candidate.
		best = s[0]
		depth++
	}
	for i := range ix.wild {
		b := &ix.wild[i]
		if best != nil && b.prio < best.Priority {
			break // every remaining bucket is lower priority
		}
		for _, e := range b.entries {
			depth++
			if !e.Match.Matches(p) {
				continue
			}
			if best == nil || e.Priority > best.Priority ||
				(e.Priority == best.Priority && e.tieKey < best.tieKey) {
				best = e
			}
		}
		if best != nil && best.Priority >= b.prio {
			break // a winner at or above this level cannot be beaten below it
		}
	}
	return best, depth
}
