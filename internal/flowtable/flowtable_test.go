package flowtable

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"legosdn/internal/openflow"
)

func exactMatch(inPort uint16) openflow.Match {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardInPort
	m.InPort = inPort
	return m
}

func addMod(m openflow.Match, prio uint16, actions ...openflow.Action) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: prio,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  actions,
	}
}

func TestFlowTableAddLookup(t *testing.T) {
	ft := New(nil)
	if _, err := ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2})); err != nil {
		t.Fatal(err)
	}
	e := ft.Lookup(openflow.PacketFields{InPort: 1}, 100)
	if e == nil {
		t.Fatal("lookup missed installed entry")
	}
	if pk, by := e.Counters(); pk != 1 || by != 100 {
		t.Errorf("counters = %d/%d, want 1/100", pk, by)
	}
	if ft.Lookup(openflow.PacketFields{InPort: 2}, 100) != nil {
		t.Error("lookup matched wrong port")
	}
}

func TestFlowTablePriority(t *testing.T) {
	ft := New(nil)
	low := openflow.MatchAll()
	if _, err := ft.Apply(addMod(low, 1, &openflow.ActionOutput{Port: 9})); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Apply(addMod(exactMatch(1), 100, &openflow.ActionOutput{Port: 2})); err != nil {
		t.Fatal(err)
	}
	e := ft.Lookup(openflow.PacketFields{InPort: 1}, 1)
	if e == nil || e.Priority != 100 {
		t.Fatalf("expected high-priority entry, got %+v", e)
	}
	e2 := ft.Lookup(openflow.PacketFields{InPort: 7}, 1)
	if e2 == nil || e2.Priority != 1 {
		t.Fatalf("expected fallback entry, got %+v", e2)
	}
}

func TestFlowTableAddReplacesIdentical(t *testing.T) {
	ft := New(nil)
	ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft.Lookup(openflow.PacketFields{InPort: 1}, 50) // bump counters
	ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 3}))
	if ft.Len() != 1 {
		t.Fatalf("table len = %d, want 1 (replacement)", ft.Len())
	}
	e := ft.Lookup(openflow.PacketFields{InPort: 1}, 1)
	if pk, _ := e.Counters(); pk != 1 {
		t.Errorf("replacement should reset counters, got %d", pk)
	}
	if e.Actions[0].(*openflow.ActionOutput).Port != 3 {
		t.Error("replacement did not update actions")
	}
}

func TestFlowTableDeleteStrictVsNonStrict(t *testing.T) {
	ft := New(nil)
	ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft.Apply(addMod(exactMatch(1), 20, &openflow.ActionOutput{Port: 3}))
	ft.Apply(addMod(exactMatch(2), 10, &openflow.ActionOutput{Port: 4}))

	// Strict delete removes only the exact (match, priority) pair.
	removed, err := ft.Apply(&openflow.FlowMod{
		Match: exactMatch(1), Command: openflow.FlowModDeleteStrict,
		Priority: 10, OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
	})
	if err != nil || len(removed) != 1 {
		t.Fatalf("strict delete removed %d entries, err=%v", len(removed), err)
	}
	if ft.Len() != 2 {
		t.Fatalf("len = %d, want 2", ft.Len())
	}

	// Non-strict delete with MatchAll removes everything.
	removed, err = ft.Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
		OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
	})
	if err != nil || len(removed) != 2 {
		t.Fatalf("wildcard delete removed %d, err=%v", len(removed), err)
	}
	if ft.Len() != 0 {
		t.Fatal("table should be empty")
	}
	for _, r := range removed {
		if r.Reason != openflow.FlowRemovedDelete {
			t.Errorf("removal reason = %v", r.Reason)
		}
	}
}

func TestFlowTableDeleteOutPortFilter(t *testing.T) {
	ft := New(nil)
	ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft.Apply(addMod(exactMatch(2), 10, &openflow.ActionOutput{Port: 3}))
	removed, _ := ft.Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
		OutPort: 3, BufferID: openflow.BufferIDNone,
	})
	if len(removed) != 1 || removed[0].Entry.Actions[0].(*openflow.ActionOutput).Port != 3 {
		t.Fatalf("out_port filter removed wrong entries: %v", removed)
	}
}

func TestFlowTableModify(t *testing.T) {
	ft := New(nil)
	ft.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft.Lookup(openflow.PacketFields{InPort: 1}, 10)
	// Modify keeps counters, changes actions.
	ft.Apply(&openflow.FlowMod{
		Match: exactMatch(1), Command: openflow.FlowModModify,
		Priority: 10, OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 7}},
	})
	e := ft.Lookup(openflow.PacketFields{InPort: 1}, 10)
	if e.Actions[0].(*openflow.ActionOutput).Port != 7 {
		t.Error("modify did not change actions")
	}
	if pk, _ := e.Counters(); pk != 2 {
		t.Errorf("modify should keep counters, got %d", pk)
	}
	// Modify of a non-existent match adds it.
	ft.Apply(&openflow.FlowMod{
		Match: exactMatch(5), Command: openflow.FlowModModify,
		Priority: 3, OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 8}},
	})
	if ft.Lookup(openflow.PacketFields{InPort: 5}, 1) == nil {
		t.Error("modify-as-add missing")
	}
}

func TestFlowTableTimeouts(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	ft := New(clk)
	idle := addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2})
	idle.IdleTimeout = 5
	hard := addMod(exactMatch(2), 10, &openflow.ActionOutput{Port: 3})
	hard.HardTimeout = 8
	ft.Apply(idle)
	ft.Apply(hard)

	clk.Advance(4 * time.Second)
	// Traffic refreshes the idle entry.
	ft.Lookup(openflow.PacketFields{InPort: 1}, 1)
	if removed := ft.Expire(); len(removed) != 0 {
		t.Fatalf("nothing should expire yet, got %d", len(removed))
	}

	clk.Advance(5 * time.Second) // t=9: idle last matched t=4 (5s ago), hard installed 9s ago
	removed := ft.Expire()
	if len(removed) != 2 {
		t.Fatalf("expected both to expire, got %d", len(removed))
	}
	reasons := map[openflow.FlowRemovedReason]int{}
	for _, r := range removed {
		reasons[r.Reason]++
	}
	if reasons[openflow.FlowRemovedIdleTimeout] != 1 || reasons[openflow.FlowRemovedHardTimeout] != 1 {
		t.Errorf("reasons = %v", reasons)
	}
}

func TestFlowTableMaxSize(t *testing.T) {
	ft := New(nil)
	ft.SetMaxSize(2)
	ft.Apply(addMod(exactMatch(1), 1))
	ft.Apply(addMod(exactMatch(2), 1))
	if _, err := ft.Apply(addMod(exactMatch(3), 1)); err != ErrTableFull {
		t.Fatalf("want ErrTableFull, got %v", err)
	}
	// Replacing an existing entry is allowed at capacity.
	if _, err := ft.Apply(addMod(exactMatch(1), 1, &openflow.ActionOutput{Port: 5})); err != nil {
		t.Fatalf("replacement at capacity failed: %v", err)
	}
}

func TestFlowTableOverlapCheck(t *testing.T) {
	ft := New(nil)
	ft.Apply(addMod(openflow.MatchAll(), 10))
	fm := addMod(exactMatch(1), 10)
	fm.Flags = openflow.FlowModFlagCheckOverlap
	if _, err := ft.Apply(fm); err != ErrOverlap {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
	// Different priority does not overlap.
	fm2 := addMod(exactMatch(1), 11)
	fm2.Flags = openflow.FlowModFlagCheckOverlap
	if _, err := ft.Apply(fm2); err != nil {
		t.Fatalf("different priority should not overlap: %v", err)
	}
}

func TestInsertEntryPreservesState(t *testing.T) {
	ft := New(nil)
	e := &Entry{
		Match:       exactMatch(4).Normalize(),
		Priority:    9,
		Cookie:      77,
		IdleTimeout: 30,
		PacketCount: 123,
		ByteCount:   4567,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: 1}},
		Installed:   time.Unix(500, 0),
		LastMatched: time.Unix(600, 0),
	}
	ft.InsertEntry(e)
	got := ft.Entries()
	if len(got) != 1 {
		t.Fatal("entry not inserted")
	}
	if got[0].PacketCount != 123 || got[0].Cookie != 77 || !got[0].Installed.Equal(time.Unix(500, 0)) {
		t.Errorf("restored entry lost state: %+v", got[0])
	}
	// Mutating the inserted source must not affect the table.
	e.Actions[0].(*openflow.ActionOutput).Port = 42
	if ft.Entries()[0].Actions[0].(*openflow.ActionOutput).Port == 42 {
		t.Error("InsertEntry aliased caller's actions")
	}
}

func TestFingerprintIgnoresCounters(t *testing.T) {
	ft1 := New(nil)
	ft2 := New(nil)
	ft1.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft2.Apply(addMod(exactMatch(1), 10, &openflow.ActionOutput{Port: 2}))
	ft1.Lookup(openflow.PacketFields{InPort: 1}, 100)
	if ft1.Fingerprint() != ft2.Fingerprint() {
		t.Error("fingerprint should ignore counters")
	}
	ft2.Apply(addMod(exactMatch(2), 10, &openflow.ActionOutput{Port: 2}))
	if ft1.Fingerprint() == ft2.Fingerprint() {
		t.Error("fingerprint should reflect rule differences")
	}
}

// Property: add-then-strict-delete is the identity on the table.
func TestQuickAddDeleteIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := New(nil)
		// Background entries.
		for i := 0; i < 5; i++ {
			ft.Apply(addMod(exactMatch(uint16(r.Intn(50))), uint16(r.Intn(100))))
		}
		before := ft.Fingerprint()
		m := exactMatch(uint16(1000 + r.Intn(50))) // disjoint from background
		prio := uint16(r.Intn(100))
		ft.Apply(addMod(m, prio, &openflow.ActionOutput{Port: 1}))
		ft.Apply(&openflow.FlowMod{
			Match: m, Command: openflow.FlowModDeleteStrict, Priority: prio,
			OutPort: openflow.PortNone, BufferID: openflow.BufferIDNone,
		})
		return ft.Fingerprint() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup always returns an entry whose match accepts the
// packet, and no strictly-higher-priority entry also accepts it.
func TestQuickLookupHighestPriority(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := New(nil)
		for i := 0; i < 10; i++ {
			m := openflow.MatchAll()
			if r.Intn(2) == 0 {
				m.Wildcards &^= openflow.WildcardInPort
				m.InPort = uint16(r.Intn(4))
			}
			if r.Intn(2) == 0 {
				m.Wildcards &^= openflow.WildcardTpDst
				m.TpDst = uint16(r.Intn(3))
			}
			ft.Apply(addMod(m, uint16(r.Intn(5))))
		}
		p := openflow.PacketFields{InPort: uint16(r.Intn(4)), TpDst: uint16(r.Intn(3))}
		got := ft.Lookup(p, 1)
		if got == nil {
			return true // nothing matched; nothing to verify
		}
		if !got.Match.Matches(p) {
			return false
		}
		for _, e := range ft.Entries() {
			if e.Priority > got.Priority && e.Match.Matches(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
