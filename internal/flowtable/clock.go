package flowtable

import (
	"sync"
	"time"
)

// Clock abstracts time so flow-expiry and duration accounting are
// deterministic under test. The zero configuration uses the real clock.
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for tests and deterministic
// benchmarks. The zero value starts at the Unix epoch.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
