package flowtable

import (
	"fmt"
	"math/rand"
	"testing"

	"legosdn/internal/openflow"
)

// benchTable builds a table of n entries — mostly exact-match rules
// plus a low-priority wildcard floor, the shape a learning switch
// produces — and a packet trace that hits the exact rules.
func benchTable(n int) (*Table, []openflow.PacketFields) {
	ft := New(nil)
	r := rand.New(rand.NewSource(1))
	packets := make([]openflow.PacketFields, 0, n)
	for i := 0; i < n-1; i++ {
		p := openflow.PacketFields{
			InPort: uint16(1 + r.Intn(48)),
			DlSrc:  openflow.EthAddr{2, 0, byte(i >> 16), byte(i >> 8), byte(i), 1},
			DlDst:  openflow.EthAddr{2, 0, byte(i >> 16), byte(i >> 8), byte(i), 2},
			DlType: 0x0800, NwProto: 6,
			NwSrc: 0x0a000000 + uint32(i),
			NwDst: 0x0a800000 + uint32(i),
			TpSrc: uint16(1024 + i%40000), TpDst: 80,
		}
		fm := &openflow.FlowMod{
			Match: exactMatchFor(p), Command: openflow.FlowModAdd,
			Priority: 100, BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}
		if _, err := ft.Apply(fm); err != nil {
			panic(err)
		}
		packets = append(packets, p)
	}
	// Table-miss floor: a fully wildcarded punt-to-controller rule.
	ft.Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		Priority: 1, BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortController}},
	})
	return ft, packets
}

// BenchmarkLookup compares the indexed hot path against the retained
// linear-scan reference at growing table sizes. The indexed path must
// report zero allocations; the 10k-entry speedup is the headline the
// P2 experiment records in BENCH_pr7.json.
func BenchmarkLookup(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		ft, packets := benchTable(n)
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ft.Lookup(packets[i%len(packets)], 64) == nil {
					b.Fatal("miss")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ft.LookupLinear(packets[i%len(packets)]) == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}
