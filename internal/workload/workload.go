// Package workload generates the traffic and event mixes the
// experiment harness drives LegoSDN with: synthetic controller events
// for dispatch-path measurements, dataplane flows over simulated
// topologies for end-to-end scenarios, and topology-churn scripts for
// failure experiments. All generators are seeded and deterministic.
package workload

import (
	"math/rand"

	"legosdn/internal/controller"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// PacketInEvents synthesizes n PacketIn events spread over the given
// switch count and host address space — the event stream a dispatch
// benchmark feeds straight into a controller or runner.
func PacketInEvents(n int, switches int, hosts int, seed int64) []controller.Event {
	if switches < 1 {
		switches = 1
	}
	if hosts < 2 {
		hosts = 2
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]controller.Event, n)
	for i := range out {
		src := r.Intn(hosts) + 1
		dst := r.Intn(hosts) + 1
		for dst == src {
			dst = r.Intn(hosts) + 1
		}
		f := &netsim.Frame{
			DlSrc:   netsim.HostMAC(src),
			DlDst:   netsim.HostMAC(dst),
			DlType:  netsim.EtherTypeIPv4,
			NwProto: netsim.IPProtoTCP,
			NwSrc:   netsim.HostIP(src),
			NwDst:   netsim.HostIP(dst),
			TpSrc:   uint16(10000 + r.Intn(50000)),
			TpDst:   uint16([]int{80, 443, 22, 53}[r.Intn(4)]),
		}
		out[i] = controller.Event{
			Seq:  uint64(i + 1),
			Kind: controller.EventPacketIn,
			DPID: uint64(r.Intn(switches) + 1),
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   uint16(1 + r.Intn(4)),
				Reason:   openflow.PacketInReasonNoMatch,
				Data:     f.Marshal(),
			},
		}
	}
	return out
}

// MixedEvents synthesizes a realistic event mix: mostly PacketIns with
// interleaved PortStatus and FlowRemoved events.
func MixedEvents(n int, switches int, hosts int, seed int64) []controller.Event {
	r := rand.New(rand.NewSource(seed))
	pktIns := PacketInEvents(n, switches, hosts, seed+1)
	out := make([]controller.Event, 0, n)
	for i := 0; i < n; i++ {
		switch x := r.Float64(); {
		case x < 0.85:
			out = append(out, pktIns[i])
		case x < 0.95:
			out = append(out, controller.Event{
				Kind: controller.EventPortStatus,
				DPID: uint64(r.Intn(switches) + 1),
				Message: &openflow.PortStatus{
					Reason: openflow.PortReasonModify,
					Desc: openflow.PhyPort{
						PortNo: uint16(1 + r.Intn(4)),
						State:  openflow.PortStateLinkDown * uint32(r.Intn(2)),
					},
				},
			})
		default:
			out = append(out, controller.Event{
				Kind: controller.EventFlowRemoved,
				DPID: uint64(r.Intn(switches) + 1),
				Message: &openflow.FlowRemoved{
					Match:       openflow.MatchAll(),
					Reason:      openflow.FlowRemovedIdleTimeout,
					PacketCount: uint64(r.Intn(10000)),
					ByteCount:   uint64(r.Intn(1000000)),
				},
			})
		}
	}
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// TrafficGen drives dataplane flows through a simulated network.
type TrafficGen struct {
	net *netsim.Network
	r   *rand.Rand
}

// NewTrafficGen creates a seeded generator over n.
func NewTrafficGen(n *netsim.Network, seed int64) *TrafficGen {
	return &TrafficGen{net: n, r: rand.New(rand.NewSource(seed))}
}

// SendRandomFlow injects one TCP packet between a random host pair and
// returns the pair.
func (g *TrafficGen) SendRandomFlow() (src, dst *netsim.Host) {
	hosts := g.net.Hosts()
	if len(hosts) < 2 {
		return nil, nil
	}
	si := g.r.Intn(len(hosts))
	di := g.r.Intn(len(hosts))
	for di == si {
		di = g.r.Intn(len(hosts))
	}
	src, dst = hosts[si], hosts[di]
	f := netsim.TCPFrame(src, dst, uint16(10000+g.r.Intn(50000)), 80, nil)
	_ = g.net.SendFromHost(src.Name, f)
	return src, dst
}

// SendFlows injects n random flows.
func (g *TrafficGen) SendFlows(n int) {
	for i := 0; i < n; i++ {
		g.SendRandomFlow()
	}
}

// ChurnAction is one scripted topology change.
type ChurnAction struct {
	// SwitchDown fails (or restores, when Up) a switch.
	DPID uint64
	Up   bool
}

// SwitchChurn generates a seeded fail/restore script over the topology,
// never failing more than maxDown switches at once.
func SwitchChurn(n *netsim.Network, actions, maxDown int, seed int64) []ChurnAction {
	r := rand.New(rand.NewSource(seed))
	switches := n.Switches()
	down := map[uint64]bool{}
	var out []ChurnAction
	for len(out) < actions {
		s := switches[r.Intn(len(switches))]
		if down[s.DPID] {
			down[s.DPID] = false
			out = append(out, ChurnAction{DPID: s.DPID, Up: true})
			continue
		}
		if len(downSet(down)) >= maxDown {
			continue
		}
		down[s.DPID] = true
		out = append(out, ChurnAction{DPID: s.DPID})
	}
	return out
}

func downSet(m map[uint64]bool) []uint64 {
	var out []uint64
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	return out
}

// Apply executes a churn script against the network.
func Apply(n *netsim.Network, script []ChurnAction) {
	for _, a := range script {
		_ = n.SetSwitchDown(a.DPID, !a.Up)
	}
}
