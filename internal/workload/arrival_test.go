package workload

import (
	"testing"
	"time"

	"legosdn/internal/openflow"
)

func TestPoissonArrivals(t *testing.T) {
	const n, rate = 20000, 1000.0
	gaps := PoissonArrivals(n, rate, 7)
	var sum time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative inter-arrival gap")
		}
		sum += g
	}
	mean := sum.Seconds() / n
	if mean < 0.0008 || mean > 0.0012 {
		t.Errorf("mean gap %.6fs, want ~%.6fs", mean, 1/rate)
	}
	again := PoissonArrivals(n, rate, 7)
	for i := range gaps {
		if gaps[i] != again[i] {
			t.Fatal("same seed produced different arrivals")
		}
	}
}

func TestParetoFlowSizes(t *testing.T) {
	const n = 50000
	sizes := ParetoFlowSizes(n, 1.2, 64, 11)
	var sum float64
	over10x := 0
	for _, s := range sizes {
		if s < 64 {
			t.Fatalf("size %d below minimum", s)
		}
		if s > 640 {
			over10x++
		}
		sum += float64(s)
	}
	// Heavy tail: mean well above the minimum, yet most flows are mice.
	if mean := sum / n; mean < 128 {
		t.Errorf("mean %.0f suggests no tail", mean)
	}
	if frac := float64(over10x) / n; frac > 0.30 {
		t.Errorf("%.0f%% of flows are elephants; tail too fat for alpha=1.2", frac*100)
	}
}

func TestFlowSpaceTuples(t *testing.T) {
	s := NewFlowSpace(50)
	type key struct {
		src, dst int
		sport    uint16
	}
	uniq := map[key]struct{}{}
	for id := uint64(0); id < 20000; id++ {
		src, dst, sport, dport := s.Tuple(id)
		if src < 1 || src > 50 || dst < 1 || dst > 50 {
			t.Fatalf("id %d: hosts out of range (%d, %d)", id, src, dst)
		}
		if src == dst {
			t.Fatalf("id %d: src == dst == %d", id, src)
		}
		if dport != 80 {
			t.Fatalf("id %d: dport %d", id, dport)
		}
		uniq[key{src, dst, sport}] = struct{}{}
	}
	if len(uniq) != 20000 {
		t.Fatalf("only %d distinct five-tuples in 20000 ids", len(uniq))
	}
	if want := uint64(50 * 49 * 50000); s.Distinct() != want {
		t.Fatalf("Distinct = %d, want %d", s.Distinct(), want)
	}
}

func TestEventStream(t *testing.T) {
	space := NewFlowSpace(1000)
	events, gaps := EventStream(5000, 16, space, 100000, 3)
	if len(events) != 5000 || len(gaps) != 5000 {
		t.Fatalf("lengths %d/%d", len(events), len(gaps))
	}
	flows := map[string]struct{}{}
	for i, ev := range events {
		if ev.DPID < 1 || ev.DPID > 16 {
			t.Fatalf("event %d: dpid %d", i, ev.DPID)
		}
		pin, ok := ev.Message.(*openflow.PacketIn)
		if !ok {
			t.Fatalf("event %d: %T", i, ev.Message)
		}
		flows[string(pin.Data)] = struct{}{}
	}
	// Strided IDs: consecutive events are (nearly always) distinct flows.
	if len(flows) < 4900 {
		t.Errorf("only %d distinct flows in 5000 events", len(flows))
	}
	again, _ := EventStream(5000, 16, space, 100000, 3)
	for i := range events {
		if events[i].DPID != again[i].DPID {
			t.Fatal("same seed produced different streams")
		}
	}
}
