package workload

import (
	"math"
	"math/rand"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// PoissonArrivals draws n inter-arrival gaps from an exponential
// distribution with the given mean rate (events per second) — a Poisson
// arrival process, the standard model for aggregate new-flow arrivals
// at a controller. Deterministic per seed.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []time.Duration {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(r.ExpFloat64() / ratePerSec * float64(time.Second))
	}
	return out
}

// ParetoFlowSizes draws n flow sizes in bytes from a bounded Pareto
// distribution with the given shape alpha and minimum size — the
// heavy-tailed "mice and elephants" mix measured in datacenter traffic.
// Shape values near 1.1–1.5 reproduce the canonical skew where a few
// percent of flows carry most bytes. Deterministic per seed.
func ParetoFlowSizes(n int, alpha float64, minBytes uint64, seed int64) []uint64 {
	if alpha <= 0 {
		alpha = 1.2
	}
	if minBytes == 0 {
		minBytes = 64
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		size := float64(minBytes) * math.Pow(u, -1/alpha)
		if size > 1<<40 { // clamp the tail so one draw cannot be "a terabyte"
			size = 1 << 40
		}
		out[i] = uint64(size)
	}
	return out
}

// FlowSpace maps dense flow IDs onto distinct five-tuples over a host
// population, so a generator can hand out millions of unique flows
// without storing them: flow id f is (src, dst, sport) decoded
// mixed-radix from f. Hosts is capped at the 10.0.x.y address space.
type FlowSpace struct {
	hosts int
}

// NewFlowSpace returns a flow space over the given host count
// (minimum 2, maximum 65535 — the deterministic HostIP space).
func NewFlowSpace(hosts int) FlowSpace {
	if hosts < 2 {
		hosts = 2
	}
	if hosts > 0xffff {
		hosts = 0xffff
	}
	return FlowSpace{hosts: hosts}
}

// Distinct reports how many distinct flows the space can produce before
// five-tuples repeat: hosts × (hosts-1) destination pairs × the
// ephemeral source-port range.
func (s FlowSpace) Distinct() uint64 {
	return uint64(s.hosts) * uint64(s.hosts-1) * uint64(sportRange)
}

const (
	sportBase  = 10000
	sportRange = 50000
)

// Tuple decodes flow id into its five-tuple. IDs beyond Distinct wrap.
func (s FlowSpace) Tuple(id uint64) (src, dst int, sport, dport uint16) {
	h := uint64(s.hosts)
	src = int(id%h) + 1
	id /= h
	dst = int(id % (h - 1))
	id /= h - 1
	// Skip the diagonal so src != dst always.
	if dst >= src-1 {
		dst++
	}
	dst++
	sport = uint16(sportBase + id%sportRange)
	return src, dst, sport, 80
}

// PacketIn builds the PacketIn event for flow id: the first packet of
// the flow arriving at a switch with no matching rule. The frame is a
// TCP SYN-sized 5-tuple between the decoded hosts.
func (s FlowSpace) PacketIn(id uint64, dpid uint64, seq uint64) controller.Event {
	src, dst, sport, dport := s.Tuple(id)
	f := &netsim.Frame{
		DlSrc:   netsim.HostMAC(src),
		DlDst:   netsim.HostMAC(dst),
		DlType:  netsim.EtherTypeIPv4,
		NwProto: netsim.IPProtoTCP,
		NwSrc:   netsim.HostIP(src),
		NwDst:   netsim.HostIP(dst),
		TpSrc:   sport,
		TpDst:   dport,
	}
	return controller.Event{
		Seq:  seq,
		Kind: controller.EventPacketIn,
		DPID: dpid,
		Message: &openflow.PacketIn{
			BufferID: openflow.BufferIDNone,
			InPort:   uint16(1 + id%4),
			Reason:   openflow.PacketInReasonNoMatch,
			Data:     f.Marshal(),
		},
	}
}

// EventStream pre-generates n PacketIn events over a flow space: flow
// IDs stride through the space so consecutive events are distinct
// flows (millions of them at scale), switch assignment round-robins
// over the topology, and Poisson arrival offsets are returned alongside
// for generators that pace injection. Deterministic per seed.
func EventStream(n int, switches int, space FlowSpace, ratePerSec float64, seed int64) ([]controller.Event, []time.Duration) {
	if switches < 1 {
		switches = 1
	}
	r := rand.New(rand.NewSource(seed))
	events := make([]controller.Event, n)
	// A large odd stride relatively prime to the space visits distinct
	// flow IDs in a scattered order, like real arrivals.
	stride := uint64(2*r.Intn(1<<20) + 1)
	id := uint64(r.Int63())
	for i := range events {
		id += stride
		events[i] = space.PacketIn(id%space.Distinct(), uint64(i%switches)+1, uint64(i+1))
	}
	return events, PoissonArrivals(n, ratePerSec, seed+1)
}
