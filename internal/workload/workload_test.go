package workload

import (
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

func TestPacketInEventsShape(t *testing.T) {
	evs := PacketInEvents(100, 4, 8, 42)
	if len(evs) != 100 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Kind != controller.EventPacketIn {
			t.Fatalf("event %d kind %v", i, e.Kind)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
		if e.DPID < 1 || e.DPID > 4 {
			t.Fatalf("event %d dpid %d", i, e.DPID)
		}
		pin := e.Message.(*openflow.PacketIn)
		f, err := netsim.ParseFrame(pin.Data)
		if err != nil {
			t.Fatalf("event %d frame: %v", i, err)
		}
		if f.DlSrc == f.DlDst {
			t.Fatalf("event %d src==dst", i)
		}
	}
	// Determinism.
	again := PacketInEvents(100, 4, 8, 42)
	for i := range evs {
		if evs[i].DPID != again[i].DPID {
			t.Fatal("same seed diverged")
		}
	}
	// Different seeds differ somewhere.
	other := PacketInEvents(100, 4, 8, 43)
	same := true
	for i := range evs {
		if evs[i].DPID != other[i].DPID {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical dpid streams")
	}
}

func TestMixedEventsComposition(t *testing.T) {
	evs := MixedEvents(1000, 3, 6, 7)
	counts := map[controller.EventKind]int{}
	for _, e := range evs {
		counts[e.Kind]++
	}
	if counts[controller.EventPacketIn] < 700 {
		t.Fatalf("packet-ins = %d, want dominant share", counts[controller.EventPacketIn])
	}
	if counts[controller.EventPortStatus] == 0 || counts[controller.EventFlowRemoved] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatal("seqs not consecutive")
		}
	}
}

func TestTrafficGen(t *testing.T) {
	n := netsim.Single(4, nil)
	// Wildcard flood rule so traffic is actually delivered.
	n.Switch(1).Table().Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	})
	g := NewTrafficGen(n, 5)
	src, dst := g.SendRandomFlow()
	if src == nil || dst == nil || src == dst {
		t.Fatalf("pair %v %v", src, dst)
	}
	g.SendFlows(20)
	total := 0
	for _, h := range n.Hosts() {
		total += h.ReceivedCount()
	}
	if total < 21 {
		t.Fatalf("delivered = %d", total)
	}
}

func TestSwitchChurnScript(t *testing.T) {
	n := netsim.Linear(5, nil)
	script := SwitchChurn(n, 30, 2, 9)
	if len(script) != 30 {
		t.Fatalf("script len %d", len(script))
	}
	down := map[uint64]bool{}
	maxDown := 0
	for _, a := range script {
		down[a.DPID] = !a.Up
		cur := 0
		for _, d := range down {
			if d {
				cur++
			}
		}
		if cur > maxDown {
			maxDown = cur
		}
	}
	if maxDown > 2 {
		t.Fatalf("maxDown = %d, bound was 2", maxDown)
	}
	// Apply runs without error and leaves switches in scripted state.
	Apply(n, script)
	for dpid, d := range down {
		if n.Switch(dpid).Down() != d {
			t.Fatalf("switch %d state mismatch", dpid)
		}
	}
}
