package durable

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"legosdn/internal/netlog"
	"legosdn/internal/openflow"
)

// fakeSender records the messages recovery replays.
type fakeSender struct {
	mu       sync.Mutex
	sent     []*openflow.FlowMod
	dpids    []uint64
	barriers []uint64
}

func (f *fakeSender) SendMessage(dpid uint64, msg openflow.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fm, ok := msg.(*openflow.FlowMod); ok {
		f.sent = append(f.sent, fm)
		f.dpids = append(f.dpids, dpid)
	}
	return nil
}

func (f *fakeSender) Barrier(dpid uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.barriers = append(f.barriers, dpid)
	return nil
}

func addMod(inPort uint16) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardInPort
	m.InPort = inPort
	return &openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 99}},
	}
}

func TestNetLogJournalCommittedTxnLeavesNoOrphan(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.TxnBegin(7)
	j.TxnOp(7, netlog.JournalOp{DPID: 1, Inverses: []netlog.JournalInverse{{Mod: addMod(1)}}})
	j.TxnCommit(7)
	j.Close()

	j2, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Orphans(); len(got) != 0 {
		t.Fatalf("committed transaction resurfaced as orphan: %+v", got)
	}
}

func TestNetLogJournalInterruptedTxnBecomesOrphan(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two interleaved transactions; only 3 commits. 5 is the crash victim.
	j.TxnBegin(3)
	j.TxnOp(3, netlog.JournalOp{DPID: 1, Inverses: []netlog.JournalInverse{{Mod: addMod(1)}}})
	j.TxnBegin(5)
	inv := addMod(2)
	inv.HardTimeout = 60
	j.TxnOp(5, netlog.JournalOp{DPID: 2, Inverses: []netlog.JournalInverse{
		{Mod: inv, Restore: true, Installed: time.Unix(5000, 0)},
	}})
	j.TxnCommit(3)
	j.Close() // crash: 5 never commits or aborts

	j2, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	orphans := j2.Orphans()
	if len(orphans) != 1 || orphans[0].ID != 5 {
		t.Fatalf("orphans = %+v, want exactly txn 5", orphans)
	}
	ops := orphans[0].Ops
	if len(ops) != 1 || ops[0].DPID != 2 || len(ops[0].Inverses) != 1 {
		t.Fatalf("orphan ops = %+v", ops)
	}
	got := ops[0].Inverses[0]
	if !got.Restore || got.Mod.HardTimeout != 60 || got.Mod.Match.InPort != 2 {
		t.Fatalf("inverse did not round-trip: %+v / %+v", got, got.Mod)
	}
	if !got.Installed.Equal(time.Unix(5000, 0)) {
		t.Fatalf("installed time lost: %v", got.Installed)
	}
}

func TestNetLogJournalResolveIsDurable(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenNetLogJournal(dir, Options{})
	j.TxnBegin(1)
	j.TxnOp(1, netlog.JournalOp{DPID: 1, Inverses: []netlog.JournalInverse{{Mod: addMod(1)}}})
	j.Close()

	j2, _ := OpenNetLogJournal(dir, Options{})
	if len(j2.Orphans()) != 1 {
		t.Fatal("setup: expected one orphan")
	}
	if err := j2.Resolve(1); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, _ := OpenNetLogJournal(dir, Options{})
	defer j3.Close()
	if got := j3.Orphans(); len(got) != 0 {
		t.Fatalf("resolved orphan came back: %+v", got)
	}
}

func TestNetLogJournalCompactsWhenIdle(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenNetLogJournal(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for id := uint64(1); id <= 100; id++ {
		j.TxnBegin(id)
		j.TxnOp(id, netlog.JournalOp{DPID: 1, Inverses: []netlog.JournalInverse{{Mod: addMod(uint16(id))}}})
		j.TxnCommit(id)
	}
	if segs := j.WAL().SegmentCount(); segs > compactAfterSegments+1 {
		t.Fatalf("idle journal never compacted: %d segments", segs)
	}
}

func TestManagerJournalsTransactionsThroughWAL(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sender := &fakeSender{}
	m := netlog.NewManager(sender, nil)
	m.SetJournal(j)
	hook := m.Hook()

	// Committed transaction: begin/op/commit reach the WAL.
	tx := m.Begin()
	m.SetActive(tx)
	hook(1, addMod(1))
	m.SetActive(nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Interrupted transaction: ops journaled, then the "controller dies".
	tx2 := m.Begin()
	m.SetActive(tx2)
	hook(1, addMod(2))
	hook(1, addMod(3))
	m.SetActive(nil)
	j.Close() // crash point: no commit, no abort

	j2, err := OpenNetLogJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	orphans := j2.Orphans()
	if len(orphans) != 1 {
		t.Fatalf("want exactly the interrupted txn, got %+v", orphans)
	}
	if len(orphans[0].Ops) != 2 {
		t.Fatalf("interrupted txn journaled %d ops, want 2", len(orphans[0].Ops))
	}
	// The inverses for ADDs are strict deletes.
	for _, op := range orphans[0].Ops {
		if inv := op.Inverses[0]; inv.Mod.Command != openflow.FlowModDeleteStrict || inv.Restore {
			t.Fatalf("ADD inverse should be a strict delete: %+v", inv.Mod)
		}
	}
}

func TestStateReplayOrphansRollsBackAndResolves(t *testing.T) {
	dir := t.TempDir()
	// Seed the journal with one interrupted transaction: op A (dpid 1,
	// strict-delete inverse), then op B (dpid 2, restore inverse with a
	// 60s hard timeout installed 45s before the replay instant).
	installed := time.Unix(9000, 0)
	now := installed.Add(45 * time.Second)
	j, err := OpenNetLogJournal(filepath.Join(dir, "netlog"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	del := addMod(1)
	del.Command = openflow.FlowModDeleteStrict
	j.TxnBegin(42)
	j.TxnOp(42, netlog.JournalOp{DPID: 1, Inverses: []netlog.JournalInverse{{Mod: del}}})
	restore := addMod(2)
	restore.HardTimeout = 60
	j.TxnOp(42, netlog.JournalOp{DPID: 2, Inverses: []netlog.JournalInverse{
		{Mod: restore, Restore: true, Installed: installed},
	}})
	j.Close()

	st, err := OpenState(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sender := &fakeSender{}
	txns, mods, err := st.ReplayOrphans(sender, now)
	if err != nil {
		t.Fatal(err)
	}
	if txns != 1 || mods != 2 {
		t.Fatalf("replayed txns=%d mods=%d, want 1 and 2", txns, mods)
	}
	if st.RecoveredTxns() != 1 || st.RecoveredMods() != 2 {
		t.Fatalf("counters: txns=%d mods=%d", st.RecoveredTxns(), st.RecoveredMods())
	}
	// Ops replay in reverse order: the restore (op B) before the delete.
	if len(sender.sent) != 2 || sender.dpids[0] != 2 || sender.dpids[1] != 1 {
		t.Fatalf("replay order wrong: dpids %v", sender.dpids)
	}
	// §3.2 remaining-budget rule across the restart: 60s - 45s elapsed.
	if got := sender.sent[0].HardTimeout; got != 15 {
		t.Fatalf("replayed hard timeout = %d, want 15", got)
	}
	if len(sender.barriers) != 2 {
		t.Fatalf("want a barrier per touched switch, got %v", sender.barriers)
	}
	st.Close()

	// A second open finds nothing left to do — the abort was durable.
	st2, err := OpenState(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Journal.Orphans(); len(got) != 0 {
		t.Fatalf("resolved txn resurfaced: %+v", got)
	}
}
