// Package durable is LegoSDN's crash-consistent persistence layer: an
// fsync'd, CRC-framed, segment-rotated write-ahead log plus the two
// clients the recovery story needs — a persistent backend for the
// checkpoint store and a transaction journal for NetLog.
//
// The paper's recovery machinery (Crash-Pad checkpoints, NetLog's
// transaction journal) only helps if it survives the failure domain it
// protects. Rollback-recovery surveys (Elnozahy et al.) make the rule
// explicit: the checkpoint and the log must live outside the process
// whose crashes they tolerate. This package moves both onto disk so a
// controller killed mid-transaction restarts from its state directory,
// detects the interrupted transaction, replays its inverse operations
// against the switches, and resumes with checkpoint histories intact —
// which is what the paper's 10-second-upgrade and rollback claims
// assume of the platform.
//
// Layout of a WAL directory:
//
//	wal-00000001.seg
//	wal-00000002.seg        <- appends go to the highest-numbered segment
//
// Each record is framed as
//
//	[u32 length of type+payload] [u32 CRC32-IEEE of type+payload] [u8 type] [payload]
//
// On open the segments are scanned in order. A record that fails its
// CRC or runs past the end of the final segment is a torn tail — the
// write the crash interrupted — and the file is truncated back to the
// last intact record. The same damage in a non-final segment is real
// corruption (a later segment proves more records were once durable)
// and surfaces as ErrCorrupt rather than being silently dropped.
//
// Compact(snapshot) atomically replaces the whole log with a single
// snapshot record: the snapshot is written to a fresh segment, synced,
// and only then are the older segments removed. Replay therefore always
// sees at most one snapshot, as the first record.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"legosdn/internal/metrics"
)

// RecSnapshot is the reserved record type Compact writes; client record
// types must be >= 1.
const RecSnapshot byte = 0

// headerSize is the fixed per-record framing overhead.
const headerSize = 4 + 4 + 1 // length + crc + type

// ErrCorrupt reports CRC damage in a non-final segment: records that
// were once durably written (later segments exist) can no longer be
// read, so replay would silently lose committed state.
var ErrCorrupt = fmt.Errorf("durable: corrupt record in non-final WAL segment")

// ErrSegmentGone reports that a segment requested by a tailing reader
// no longer exists: a compaction replaced the log while the tailer was
// between listing segments and opening one. The tailer should call
// TailState again — the generation will have advanced — and resync
// from the snapshot-headed log.
var ErrSegmentGone = fmt.Errorf("durable: WAL segment compacted away")

// Record is one replayed WAL entry.
type Record struct {
	Type    byte
	Payload []byte
}

// Options tunes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would push
	// the current segment past this size opens a new one first
	// (default 4 MiB). Records are never split across segments.
	SegmentBytes int64
	// NoSync skips the fsync after each append. Only for tests and
	// benchmarks — a crash can then lose or tear acknowledged records.
	NoSync bool
	// GroupCommit batches concurrent appends: Append enqueues the frame
	// and a committer goroutine writes every queued frame with a single
	// fsync, amortizing the sync across all appenders that arrived while
	// the previous batch was on disk. Durability is unchanged — Append
	// still returns only after its record is synced — but p50 append
	// latency under concurrency drops from one fsync per record to one
	// per batch.
	GroupCommit bool
	// SyncCheckpointSink is read by OpenCheckpointLog, not the WAL: it
	// disables the asynchronous checkpoint sink queue so every Put
	// writes and fsyncs under the store's lock — the pre-group-commit
	// behavior, kept as the overhead baseline for benchmarks.
	SyncCheckpointSink bool
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// WAL is an append-only, CRC-framed, segment-rotated log. Safe for
// concurrent use; appends are serialized.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cur      *os.File // highest-numbered segment, opened for append
	curSeq   uint64
	curSize  int64
	segments []uint64 // ascending segment sequence numbers, curSeq last
	closed   bool

	// Tail-replication coordinates. Positions are 1-based monotonic
	// record counts over this WAL handle's lifetime: the i-th record
	// visible since Open has position i, and the first record of the
	// oldest live segment is always at logStart+1 (Compact advances
	// logStart past everything it discards before writing the snapshot,
	// and Open starts from logStart=0 with totalAppended preloaded to
	// the recovered-record count, which preserves the invariant).
	gen           uint64 // bumped by every Compact
	totalAppended uint64 // position of the newest record (EndPos)
	logStart      uint64 // position just before the oldest live record

	// Open-time recovery facts, for instrumentation.
	recoveredRecords int
	truncatedBytes   int64

	appends  metrics.Counter
	bytes    metrics.Counter // framed bytes written (what each fsync pays for)
	commits  metrics.Counter // append-path sync points (batches, not records)
	fsyncDur *metrics.Histogram

	// Group-commit state, used only when opts.GroupCommit is set. The
	// queue has its own lock so enqueueing never waits on an in-flight
	// write+fsync (which holds mu).
	gcMu     sync.Mutex
	gcCond   *sync.Cond
	gcQueue  []*gcReq
	gcClosed bool
	gcWG     sync.WaitGroup
}

// gcReq is one appender's batch waiting for the committer. done is
// closed once every frame is written and synced (or failed); err then
// holds the outcome.
type gcReq struct {
	frames [][]byte
	err    error
	done   chan struct{}
}

// Open opens (or creates) the WAL in dir, scanning existing segments
// for integrity and truncating a torn tail.
func Open(dir string, opts Options) (*WAL, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating WAL dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	if err := w.scan(); err != nil {
		return nil, err
	}
	w.totalAppended = uint64(w.recoveredRecords)
	if len(w.segments) == 0 {
		if err := w.openSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		seq := w.segments[len(w.segments)-1]
		f, err := os.OpenFile(w.segmentPath(seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: opening segment for append: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		w.cur, w.curSeq, w.curSize = f, seq, st.Size()
	}
	if w.opts.GroupCommit {
		w.gcCond = sync.NewCond(&w.gcMu)
		w.gcWG.Add(1)
		go w.committer()
	}
	return w, nil
}

// Instrument registers the WAL's fsync-latency histogram and append
// counter, labeled with name, plus gauges for the open-time recovery
// facts (records replayed, torn-tail bytes truncated, live segments).
func (w *WAL) Instrument(reg *metrics.Registry, name string) {
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{wal=%q}", name)
	reg.RegisterCounter("legosdn_durable_appends_total"+label, "records appended to the WAL", &w.appends)
	reg.RegisterCounter("legosdn_durable_appended_bytes_total"+label, "framed bytes written to the WAL", &w.bytes)
	reg.RegisterCounter("legosdn_durable_commits_total"+label, "append-path sync batches (one fsync each)", &w.commits)
	w.fsyncDur = reg.Histogram("legosdn_durable_fsync_seconds"+label,
		"latency of one fsync on the WAL append path", nil)
	reg.RegisterGaugeFunc("legosdn_durable_recovered_records"+label,
		"records replayed from disk at open", func() float64 { return float64(w.recoveredRecords) })
	reg.RegisterGaugeFunc("legosdn_durable_truncated_bytes"+label,
		"torn-tail bytes truncated at open", func() float64 { return float64(w.truncatedBytes) })
	reg.RegisterGaugeFunc("legosdn_durable_segments"+label,
		"live WAL segments", func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return float64(len(w.segments))
		})
}

// RecoveredRecords reports how many intact records the open-time scan
// found; TruncatedBytes how many torn-tail bytes it discarded.
func (w *WAL) RecoveredRecords() int { return w.recoveredRecords }
func (w *WAL) TruncatedBytes() int64 { return w.truncatedBytes }

// AppendedBytes reports the framed bytes written since open — the
// volume each sync point pays for. Commits reports the number of
// append-path sync batches; appends/commits is the group-commit
// amortization factor.
func (w *WAL) AppendedBytes() uint64 { return w.bytes.Load() }
func (w *WAL) Commits() uint64       { return w.commits.Load() }

// SegmentCount reports the number of live segment files.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

func (w *WAL) segmentPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// scan lists segments, verifies them in order, and truncates a torn
// final record. Called once from Open, before any appends.
func (w *WAL) scan() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.seg", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, seq := range seqs {
		final := i == len(seqs)-1
		good, total, n, err := verifySegment(w.segmentPath(seq))
		if err != nil {
			return err
		}
		w.recoveredRecords += n
		if good < total {
			if !final {
				return fmt.Errorf("%w: %s offset %d", ErrCorrupt, w.segmentPath(seq), good)
			}
			// Torn tail: the append a crash interrupted. Drop it.
			w.truncatedBytes = total - good
			if err := os.Truncate(w.segmentPath(seq), good); err != nil {
				return fmt.Errorf("durable: truncating torn tail: %w", err)
			}
		}
	}
	w.segments = seqs
	return nil
}

// verifySegment returns the byte offset of the last intact record's
// end, the file size, and the count of intact records.
func verifySegment(path string) (good, total int64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	total = st.Size()
	var hdr [headerSize]byte
	buf := make([]byte, 0, 4096)
	for good < total {
		if _, err := io.ReadFull(f, hdr[:8]); err != nil {
			return good, total, records, nil // short header: torn
		}
		length := binary.BigEndian.Uint32(hdr[:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || int64(length) > total-good-8 {
			return good, total, records, nil // impossible length: torn
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		body := buf[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			return good, total, records, nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return good, total, records, nil // CRC mismatch: torn or corrupt
		}
		good += 8 + int64(length)
		records++
	}
	return good, total, records, nil
}

// Replay reads every intact record in order (oldest segment first) and
// hands it to fn. The payload slice is only valid during the call. A
// non-nil error from fn stops the replay.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	segs := append([]uint64(nil), w.segments...)
	w.mu.Unlock()
	for _, seq := range segs {
		if err := replaySegment(w.segmentPath(seq), fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [8]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil // clean EOF or torn tail already truncated at Open
		}
		length := binary.BigEndian.Uint32(hdr[:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		body := buf[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != crc || length == 0 {
			return nil
		}
		if err := fn(Record{Type: body[0], Payload: body[1:]}); err != nil {
			return err
		}
	}
}

// Append durably writes one record: frame, write, fsync (unless
// NoSync). The record is on disk when Append returns. With GroupCommit
// the frame rides the committer's next batch — same durability, one
// fsync shared with every concurrent appender.
func (w *WAL) Append(typ byte, payload []byte) error {
	if w.opts.GroupCommit {
		return w.submit([][]byte{frameRecord(typ, payload)})
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(typ, payload)
}

// AppendBatch durably writes the records in order with a single sync
// at the end, so a caller flushing a burst pays one fsync instead of
// len(recs). Either the whole batch is acknowledged or an error is
// returned; after a crash, replay may see any prefix of the batch but
// never a torn interior record (each record carries its own CRC).
func (w *WAL) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	frames := make([][]byte, len(recs))
	for i, r := range recs {
		frames[i] = frameRecord(r.Type, r.Payload)
	}
	if w.opts.GroupCommit {
		return w.submit(frames)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: WAL closed")
	}
	for _, f := range frames {
		if err := w.writeFrameLocked(f); err != nil {
			return err
		}
	}
	return w.syncLocked()
}

func (w *WAL) appendLocked(typ byte, payload []byte) error {
	if w.closed {
		return fmt.Errorf("durable: WAL closed")
	}
	if err := w.writeFrameLocked(frameRecord(typ, payload)); err != nil {
		return err
	}
	return w.syncLocked()
}

// writeFrameLocked rotates if needed and writes one framed record —
// no sync; the caller chooses the durability point.
func (w *WAL) writeFrameLocked(frame []byte) error {
	if w.curSize > 0 && w.curSize+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.cur.Write(frame); err != nil {
		return fmt.Errorf("durable: appending record: %w", err)
	}
	w.curSize += int64(len(frame))
	w.totalAppended++
	w.appends.Add(1)
	w.bytes.Add(uint64(len(frame)))
	return nil
}

// submit hands frames to the committer goroutine and waits for the
// batch containing them to reach disk.
func (w *WAL) submit(frames [][]byte) error {
	req := &gcReq{frames: frames, done: make(chan struct{})}
	w.gcMu.Lock()
	if w.gcClosed {
		w.gcMu.Unlock()
		return fmt.Errorf("durable: WAL closed")
	}
	w.gcQueue = append(w.gcQueue, req)
	w.gcCond.Signal()
	w.gcMu.Unlock()
	<-req.done
	return req.err
}

// committer drains the group-commit queue: every request queued while
// the previous batch was being written+synced is collected and paid
// for with a single fsync. Runs until Close; drains remaining requests
// before exiting.
func (w *WAL) committer() {
	defer w.gcWG.Done()
	for {
		w.gcMu.Lock()
		for len(w.gcQueue) == 0 && !w.gcClosed {
			w.gcCond.Wait()
		}
		batch := w.gcQueue
		w.gcQueue = nil
		stop := w.gcClosed
		w.gcMu.Unlock()
		if len(batch) == 0 {
			return // closed with nothing pending
		}

		w.mu.Lock()
		var werr error
		if w.closed {
			werr = fmt.Errorf("durable: WAL closed")
		}
		for _, req := range batch {
			if werr == nil {
				for _, f := range req.frames {
					if werr = w.writeFrameLocked(f); werr != nil {
						break
					}
				}
			}
			req.err = werr
		}
		// Sync even when a later write failed: requests written before
		// the failure must still be made durable before they are acked.
		if !w.closed {
			if serr := w.syncLocked(); serr != nil {
				for _, req := range batch {
					if req.err == nil {
						req.err = serr
					}
				}
			}
		}
		w.mu.Unlock()
		for _, req := range batch {
			close(req.done)
		}
		if stop {
			// One final drain pass in case requests slipped in between
			// the queue grab and gcClosed being observed by submitters.
			w.gcMu.Lock()
			empty := len(w.gcQueue) == 0
			w.gcMu.Unlock()
			if empty {
				return
			}
		}
	}
}

func frameRecord(typ byte, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = typ
	copy(body[1:], payload)
	frame := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	return frame
}

func (w *WAL) syncLocked() error {
	w.commits.Inc()
	if w.opts.NoSync {
		return nil
	}
	start := time.Now()
	err := w.cur.Sync()
	w.fsyncDur.ObserveSince(start)
	if err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	return nil
}

// rotateLocked closes the current segment and opens the next.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.cur.Close(); err != nil {
		return err
	}
	return w.openSegmentLocked(w.curSeq + 1)
}

func (w *WAL) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(w.segmentPath(seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: opening segment: %w", err)
	}
	w.cur, w.curSeq, w.curSize = f, seq, 0
	w.segments = append(w.segments, seq)
	w.syncDir()
	return nil
}

// syncDir makes segment creations/removals durable. Best effort: some
// filesystems reject directory fsync.
func (w *WAL) syncDir() {
	if w.opts.NoSync {
		return
	}
	if d, err := os.Open(w.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Compact atomically replaces the entire log with one snapshot record
// (type RecSnapshot) holding the client's serialized state; snapshot
// may be nil for clients whose resolved history needs no carrying
// forward. Appends racing a compaction simply block and land after the
// snapshot.
func (w *WAL) Compact(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: WAL closed")
	}
	old := append([]uint64(nil), w.segments...)
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.cur.Close(); err != nil {
		return err
	}
	w.segments = nil
	// Everything before the snapshot is gone from the log; tailers must
	// resync. Advance the start position first so the snapshot lands at
	// logStart+1, then bump the generation so TailState exposes the
	// change atomically with the new segment list.
	w.logStart = w.totalAppended
	w.gen++
	if err := w.openSegmentLocked(w.curSeq + 1); err != nil {
		return err
	}
	if err := w.appendLocked(RecSnapshot, snapshot); err != nil {
		return err
	}
	// The snapshot is durable; the history it replaces can go.
	for _, seq := range old {
		if err := os.Remove(w.segmentPath(seq)); err != nil {
			return fmt.Errorf("durable: removing compacted segment: %w", err)
		}
	}
	w.syncDir()
	return nil
}

// Sync flushes the current segment to disk (useful with NoSync for
// explicit durability points).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	start := time.Now()
	err := w.cur.Sync()
	w.fsyncDur.ObserveSince(start)
	return err
}

// Close syncs and closes the WAL. Further appends fail. With
// GroupCommit the committer first drains every queued append, so
// records acknowledged (or in flight) before Close reach disk.
func (w *WAL) Close() error {
	if w.opts.GroupCommit {
		w.gcMu.Lock()
		if !w.gcClosed {
			w.gcClosed = true
			w.gcCond.Broadcast()
		}
		w.gcMu.Unlock()
		w.gcWG.Wait()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if !w.opts.NoSync {
		_ = w.cur.Sync()
	}
	return w.cur.Close()
}

// --- Read-only tailing API -------------------------------------------
//
// Followers replicating this WAL need to read segments while the owner
// keeps appending and occasionally compacting. The contract:
//
//   - TailState returns (generation, start position, segment list) as
//     one atomic observation. Compact bumps the generation, so a tailer
//     that sees the generation change knows its cursor is invalid and
//     must restart from the snapshot-headed log.
//   - OpenSegmentReader opens a listed segment under the WAL lock, so
//     it can never race a concurrent Compact's unlink: either the
//     segment is still listed (and therefore still on disk) or the call
//     fails with ErrSegmentGone.
//   - SegmentReader.Next tolerates a torn tail: a partial frame at the
//     end of a live segment (an append in flight) reads as io.EOF
//     without advancing, so the next poll retries from the same offset
//     and sees the completed record.

// Generation reports how many times this WAL has been compacted since
// open. A tailer whose cached generation differs must resync.
func (w *WAL) Generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// EndPos reports the position of the newest record: 1-based, monotonic
// over the handle's lifetime, counting recovered records. A replication
// quorum wait is "followers acked >= EndPos()".
func (w *WAL) EndPos() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.totalAppended
}

// Segments returns the live segment sequence numbers, ascending.
func (w *WAL) Segments() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]uint64(nil), w.segments...)
}

// TailState is one atomic observation of the log's replication
// coordinates: the first record of Segments[0] is at StartPos+1, and a
// Gen change means the log was compacted and StartPos moved.
type TailState struct {
	Gen      uint64
	StartPos uint64
	Segments []uint64
}

// TailState returns the current generation, start position, and segment
// list under one lock acquisition.
func (w *WAL) TailState() TailState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return TailState{
		Gen:      w.gen,
		StartPos: w.logStart,
		Segments: append([]uint64(nil), w.segments...),
	}
}

// SegmentReader iterates one segment's records from the start,
// tolerating a torn or still-being-written tail. The open file keeps
// the data readable even if a later Compact unlinks the segment; the
// reader just stops seeing new records.
type SegmentReader struct {
	f   *os.File
	seq uint64
	off int64
	buf []byte
}

// OpenSegmentReader opens seq for tailing. The check-and-open happens
// under the WAL lock — the same lock Compact holds while unlinking —
// so a listed segment cannot disappear between the membership check and
// the open. Returns ErrSegmentGone if seq is no longer live.
func (w *WAL) OpenSegmentReader(seq uint64) (*SegmentReader, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	live := false
	for _, s := range w.segments {
		if s == seq {
			live = true
			break
		}
	}
	if !live {
		return nil, fmt.Errorf("%w: wal-%08d.seg", ErrSegmentGone, seq)
	}
	f, err := os.Open(w.segmentPath(seq))
	if err != nil {
		return nil, fmt.Errorf("durable: opening segment for tailing: %w", err)
	}
	return &SegmentReader{f: f, seq: seq}, nil
}

// Seq reports which segment this reader iterates.
func (r *SegmentReader) Seq() uint64 { return r.seq }

// Next returns the next intact record, or io.EOF when no complete
// record is available at the current offset. io.EOF is retryable: a
// frame still being written (short header, short body, CRC not yet
// matching) does not advance the offset, so a later Next sees the
// completed record. The payload is only valid until the next call.
func (r *SegmentReader) Next() (Record, error) {
	var hdr [8]byte
	if _, err := r.f.ReadAt(hdr[:], r.off); err != nil {
		return Record{}, io.EOF
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	crc := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 {
		return Record{}, io.EOF
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := r.f.ReadAt(body, r.off+8); err != nil {
		return Record{}, io.EOF
	}
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, io.EOF
	}
	r.off += 8 + int64(length)
	return Record{Type: body[0], Payload: body[1:]}, nil
}

// Close releases the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }
