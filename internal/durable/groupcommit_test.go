package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestGroupCommitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(1, []byte(fmt.Sprintf("gc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 20 {
		t.Fatalf("recovered %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("gc-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Payload, want)
		}
	}
}

// The amortization claim itself: N concurrent appenders must complete
// with fewer sync batches than records — the committer coalesced them.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(1, []byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	appends, commits := w.appends.Load(), w.Commits()
	if appends != writers*per {
		t.Fatalf("appends = %d, want %d", appends, writers*per)
	}
	if commits >= appends {
		t.Fatalf("group commit did not batch: %d commits for %d appends", commits, appends)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(collect(t, w2)); got != writers*per {
		t.Fatalf("recovered %d records, want %d", got, writers*per)
	}
}

func TestAppendBatchSingleSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{Type: 2, Payload: []byte(fmt.Sprintf("b-%d", i))})
	}
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if got := w.Commits(); got != 1 {
		t.Fatalf("batch of 50 paid %d sync batches, want 1", got)
	}
	if got := len(collect(t, w)); got != 50 {
		t.Fatalf("replayed %d records, want 50", got)
	}
	if err := w.AppendBatch(nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

// Crash mid-group-commit: a batch of records written but cut off
// before (or during) the fsync must replay as a clean prefix — every
// record either wholly present or wholly gone, never a torn interior.
func TestCrashMidGroupCommitRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the committer's batched write: frames land in the OS
	// buffer back to back, then the "crash" hits before the sync
	// completes, tearing the tail mid-record.
	var batch []Record
	for i := 0; i < 6; i++ {
		batch = append(batch, Record{Type: 1, Payload: []byte(fmt.Sprintf("batched-%d", i))})
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	w.Close()

	seg := filepath.Join(dir, "wal-00000001.seg")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := int64(len(frameRecord(1, []byte("batched-0"))))
	// Cut into the middle of the 5th record: replay must surface
	// exactly records 0-3 — a prefix — and drop the torn one.
	if err := os.Truncate(seg, st.Size()-2*frame+5); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records after torn batch, want prefix of 4", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("batched-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q — not a prefix", i, r.Payload, want)
		}
	}
	if w2.TruncatedBytes() == 0 {
		t.Fatal("open should have reported torn-tail truncation")
	}
}

// A corrupted interior record of a batch (bit flip, not truncation) in
// the final segment also falls back to the intact prefix.
func TestCrashMidGroupCommitTornInteriorDropped(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var batch []Record
	for i := 0; i < 4; i++ {
		batch = append(batch, Record{Type: 1, Payload: []byte(fmt.Sprintf("payload-%d", i))})
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	w.Close()

	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(frameRecord(1, []byte("payload-0")))
	data[2*frame+headerSize] ^= 0xFF // flip a byte inside record 2's body
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want intact prefix of 2", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("payload-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Payload, want)
		}
	}
}

func TestGroupCommitAppendAfterCloseFails(t *testing.T) {
	w, err := Open(t.TempDir(), Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("late")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestGroupCommitBatchCrossesRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{GroupCommit: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	var recs []Record
	for i := 0; i < 8; i++ {
		p := append([]byte(nil), payload...)
		p[0] = byte(i)
		recs = append(recs, Record{Type: 1, Payload: p})
	}
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if w.SegmentCount() < 2 {
		t.Fatal("batch should have crossed a segment rotation")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 8 {
		t.Fatalf("recovered %d records across rotation, want 8", len(got))
	}
	for i, r := range got {
		if r.Payload[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// Sanity-check the frame layout assumption the torn-tail tests rely on.
func TestFrameLayout(t *testing.T) {
	f := frameRecord(7, []byte("xyz"))
	if len(f) != 8+1+3 {
		t.Fatalf("frame length %d", len(f))
	}
	if binary.BigEndian.Uint32(f[:4]) != 4 {
		t.Fatal("length field wrong")
	}
	if binary.BigEndian.Uint32(f[4:8]) != crc32.ChecksumIEEE(f[8:]) {
		t.Fatal("crc field wrong")
	}
}
