package durable

import (
	"encoding/binary"
	"fmt"
)

// Minimal big-endian append/read helpers shared by the WAL clients.
// Decoding is defensive: every read checks bounds, because journal
// payloads cross process lifetimes and a framing bug must surface as a
// decode error, never a panic in the recovery path.

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return appendU64(b, uint64(v))
}

// appendBytes writes a u32 length prefix then the bytes.
func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

// appendString writes a u16 length prefix then the string.
func appendString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

var errShort = fmt.Errorf("durable: truncated record payload")

type reader struct {
	b []byte
}

func (r *reader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, errShort
	}
	v := uint16(r.b[0])<<8 | uint16(r.b[1])
	r.b = r.b[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errShort
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errShort
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

// bytes returns a copy (WAL replay reuses its buffer between records).
func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.b)) < n {
		return nil, errShort
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if len(r.b) < int(n) {
		return "", errShort
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}
