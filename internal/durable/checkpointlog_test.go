package durable

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCheckpointLogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Store().Put("fwd", uint64(i+1), []byte(fmt.Sprintf("state-%d", i)))
	}
	l.Store().Put("lb", 9, []byte("lb-state"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Restored() != 6 {
		t.Fatalf("restored %d checkpoints, want 6", l2.Restored())
	}
	cp := l2.Store().Latest("fwd")
	if cp == nil || cp.Seq != 5 || string(cp.State) != "state-4" {
		t.Fatalf("latest fwd checkpoint = %+v", cp)
	}
	if h := l2.Store().History("fwd"); len(h) != 5 {
		t.Fatalf("fwd history length %d, want 5", len(h))
	}
	if cp := l2.Store().Latest("lb"); cp == nil || string(cp.State) != "lb-state" {
		t.Fatalf("lb checkpoint lost: %+v", cp)
	}
	// Puts into the reopened store keep journaling.
	l2.Store().Put("fwd", 6, []byte("state-5"))
}

func TestCheckpointLogBoundsHistoryOnReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Store().Put("app", uint64(i+1), []byte{byte(i)})
	}
	l.Close()

	l2, err := OpenCheckpointLog(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	h := l2.Store().History("app")
	if len(h) != 3 {
		t.Fatalf("restored history length %d, want bound 3", len(h))
	}
	if h[2].Seq != 10 {
		t.Fatalf("newest restored seq = %d, want 10", h[2].Seq)
	}
}

func TestCheckpointLogCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations and therefore compactions.
	l, err := OpenCheckpointLog(dir, 4, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		app := fmt.Sprintf("app-%d", i%3)
		l.Store().Put(app, uint64(i+1), bytes.Repeat([]byte{byte(i)}, 32))
	}
	if segs := l.WAL().SegmentCount(); segs > compactAfterSegments+1 {
		t.Fatalf("compaction never ran: %d segments", segs)
	}
	want := map[string][]uint64{}
	for _, app := range l.Store().Apps() {
		for _, cp := range l.Store().History(app) {
			want[app] = append(want[app], cp.Seq)
		}
	}
	l.Close()

	l2, err := OpenCheckpointLog(dir, 4, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for app, seqs := range want {
		h := l2.Store().History(app)
		if len(h) != len(seqs) {
			t.Fatalf("%s: restored %d checkpoints, want %d", app, len(h), len(seqs))
		}
		for i, cp := range h {
			if cp.Seq != seqs[i] {
				t.Fatalf("%s[%d]: seq %d, want %d", app, i, cp.Seq, seqs[i])
			}
		}
	}
}

func TestCheckpointLogConcurrentPutDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 4, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, puts = 4, 100
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := fmt.Sprintf("writer-%d", g)
			for i := 0; i < puts; i++ {
				// Every Put may itself trigger a compaction while the other
				// writers keep appending — the race the sink's under-lock
				// contract must survive.
				l.Store().Put(app, uint64(i+1), []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < writers; g++ {
		app := fmt.Sprintf("writer-%d", g)
		cp := l.Store().Latest(app)
		if cp == nil || cp.Seq != puts {
			t.Fatalf("%s: latest = %+v, want seq %d", app, cp, puts)
		}
	}
	l.Close()

	l2, err := OpenCheckpointLog(dir, 4, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("reopen after concurrent churn: %v", err)
	}
	defer l2.Close()
	for g := 0; g < writers; g++ {
		app := fmt.Sprintf("writer-%d", g)
		cp := l2.Store().Latest(app)
		if cp == nil || cp.Seq != puts {
			t.Fatalf("%s after reopen: latest = %+v, want seq %d", app, cp, puts)
		}
		if h := l2.Store().History(app); len(h) != 4 {
			t.Fatalf("%s after reopen: history %d, want bound 4", app, len(h))
		}
	}
}
