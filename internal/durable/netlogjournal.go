package durable

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"legosdn/internal/netlog"
	"legosdn/internal/openflow"
)

// NetLog journal record types.
const (
	recTxnBegin  byte = 1
	recTxnOp     byte = 2
	recTxnCommit byte = 3
	recTxnAbort  byte = 4
)

// RecoveredInverse is one inverse control message read back from the
// journal: the message that, sent to its switch, erases one journaled
// FlowMod's effects.
type RecoveredInverse struct {
	Mod       *openflow.FlowMod
	Restore   bool
	Installed time.Time
}

// RecoveredOp is one journaled operation's inverse set.
type RecoveredOp struct {
	DPID     uint64
	Inverses []RecoveredInverse
}

// RecoveredTxn is a transaction the journal holds a begin record for
// without a matching commit or abort: the transaction a crash
// interrupted. Its ops must be undone (in reverse order) before new
// events flow.
type RecoveredTxn struct {
	ID  uint64
	Ops []RecoveredOp
}

// NetLogJournal implements netlog.Journal over a WAL: begin/op/commit/
// abort records, each fsynced before the transaction layer proceeds.
// On open it scans the log for orphaned transactions; Resolve marks an
// orphan rolled back once its inverses have been replayed. When every
// transaction is resolved the journal self-compacts to a single empty
// snapshot.
type NetLogJournal struct {
	w *WAL

	mu      sync.Mutex
	live    map[uint64]bool          // transactions begun this incarnation, still open
	orphans map[uint64]*RecoveredTxn // interrupted transactions from the previous incarnation
}

// OpenNetLogJournal opens (or creates) the transaction journal in dir
// and scans it for orphans.
func OpenNetLogJournal(dir string, opts Options) (*NetLogJournal, error) {
	w, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	j := &NetLogJournal{
		w:       w,
		live:    make(map[uint64]bool),
		orphans: make(map[uint64]*RecoveredTxn),
	}
	err = w.Replay(func(rec Record) error { return j.replayRecord(rec) })
	if err != nil {
		w.Close()
		return nil, err
	}
	return j, nil
}

// WAL exposes the underlying log for instrumentation.
func (j *NetLogJournal) WAL() *WAL { return j.w }

// Close syncs and closes the journal.
func (j *NetLogJournal) Close() error { return j.w.Close() }

// Orphans returns the interrupted transactions found at open, newest
// first — the order their effects must be unwound in.
func (j *NetLogJournal) Orphans() []RecoveredTxn {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RecoveredTxn, 0, len(j.orphans))
	for _, t := range j.orphans {
		out = append(out, *t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// OpenTxns reports how many transactions are unresolved: live ones
// from this incarnation plus unreplayed orphans.
func (j *NetLogJournal) OpenTxns() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live) + len(j.orphans)
}

// Resolve records that an orphan's inverses have been replayed,
// appending its abort record so a crash during recovery itself stays
// recoverable (the abort is only durable once the replay finished).
func (j *NetLogJournal) Resolve(id uint64) error {
	if err := j.w.Append(recTxnAbort, appendU64(nil, id)); err != nil {
		return err
	}
	j.mu.Lock()
	delete(j.orphans, id)
	j.mu.Unlock()
	j.maybeCompact()
	return nil
}

// --- netlog.Journal ---

// TxnBegin implements netlog.Journal.
func (j *NetLogJournal) TxnBegin(id uint64) error {
	// Register the transaction before appending: a concurrent Resolve's
	// idle-compaction must see it as live, or it could discard the
	// begin record right after it lands.
	j.mu.Lock()
	j.live[id] = true
	j.mu.Unlock()
	if err := j.w.Append(recTxnBegin, appendU64(nil, id)); err != nil {
		j.mu.Lock()
		delete(j.live, id)
		j.mu.Unlock()
		return err
	}
	return nil
}

// TxnOp implements netlog.Journal.
func (j *NetLogJournal) TxnOp(id uint64, op netlog.JournalOp) error {
	payload := appendU64(nil, id)
	payload = appendU64(payload, op.DPID)
	payload = appendU16(payload, uint16(len(op.Inverses)))
	for _, inv := range op.Inverses {
		flags := byte(0)
		if inv.Restore {
			flags = 1
		}
		payload = append(payload, flags)
		payload = appendI64(payload, inv.Installed.UnixNano())
		raw, err := openflow.Encode(inv.Mod)
		if err != nil {
			return fmt.Errorf("durable: encoding inverse flow mod: %w", err)
		}
		payload = appendBytes(payload, raw)
	}
	return j.w.Append(recTxnOp, payload)
}

// TxnCommit implements netlog.Journal.
func (j *NetLogJournal) TxnCommit(id uint64) error {
	return j.closeTxn(recTxnCommit, id)
}

// TxnAbort implements netlog.Journal.
func (j *NetLogJournal) TxnAbort(id uint64) error {
	return j.closeTxn(recTxnAbort, id)
}

func (j *NetLogJournal) closeTxn(rec byte, id uint64) error {
	if err := j.w.Append(rec, appendU64(nil, id)); err != nil {
		return err
	}
	j.mu.Lock()
	delete(j.live, id)
	j.mu.Unlock()
	j.maybeCompact()
	return nil
}

// maybeCompact resets the journal to one empty snapshot when nothing
// is open and the log has grown past the segment budget. Resolved
// transactions carry no information forward, so the snapshot is empty.
func (j *NetLogJournal) maybeCompact() {
	j.mu.Lock()
	idle := len(j.live) == 0 && len(j.orphans) == 0
	j.mu.Unlock()
	if idle && j.w.SegmentCount() > compactAfterSegments {
		// Best effort: a failed compaction leaves a bigger but intact log.
		_ = j.w.Compact(nil)
	}
}

// --- open-time replay ---

func (j *NetLogJournal) replayRecord(rec Record) error {
	r := &reader{b: rec.Payload}
	switch rec.Type {
	case RecSnapshot:
		return nil // empty by construction
	case recTxnBegin:
		id, err := r.u64()
		if err != nil {
			return err
		}
		j.orphans[id] = &RecoveredTxn{ID: id}
	case recTxnOp:
		id, err := r.u64()
		if err != nil {
			return err
		}
		t := j.orphans[id]
		if t == nil {
			// Op for an already-closed transaction (commit record was
			// replayed first is impossible — order is begin..op..close —
			// so this is a compaction edge; tolerate it).
			return nil
		}
		op, err := decodeOp(r)
		if err != nil {
			return err
		}
		t.Ops = append(t.Ops, op)
	case recTxnCommit, recTxnAbort:
		id, err := r.u64()
		if err != nil {
			return err
		}
		delete(j.orphans, id)
	default:
		return fmt.Errorf("durable: unknown netlog journal record type %d", rec.Type)
	}
	return nil
}

func decodeOp(r *reader) (RecoveredOp, error) {
	var op RecoveredOp
	dpid, err := r.u64()
	if err != nil {
		return op, err
	}
	op.DPID = dpid
	n, err := r.u16()
	if err != nil {
		return op, err
	}
	for i := 0; i < int(n); i++ {
		if len(r.b) < 1 {
			return op, errShort
		}
		flags := r.b[0]
		r.b = r.b[1:]
		installedNano, err := r.i64()
		if err != nil {
			return op, err
		}
		raw, err := r.bytes()
		if err != nil {
			return op, err
		}
		msg, err := openflow.Decode(raw)
		if err != nil {
			return op, fmt.Errorf("durable: decoding inverse flow mod: %w", err)
		}
		fm, ok := msg.(*openflow.FlowMod)
		if !ok {
			return op, fmt.Errorf("durable: journaled inverse is %T, want *FlowMod", msg)
		}
		inv := RecoveredInverse{Mod: fm, Restore: flags&1 != 0}
		if installedNano != 0 {
			inv.Installed = time.Unix(0, installedNano)
		}
		op.Inverses = append(op.Inverses, inv)
	}
	return op, nil
}
