package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, w *WAL) []Record {
	t.Helper()
	var recs []Record
	err := w.Replay(func(r Record) error {
		recs = append(recs, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	if w2.RecoveredRecords() != 10 {
		t.Fatalf("RecoveredRecords = %d, want 10", w2.RecoveredRecords())
	}
	for i, r := range recs {
		if want := fmt.Sprintf("rec-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Payload, want)
		}
	}
}

func TestWALZeroLengthFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("zero-length segment must open cleanly: %v", err)
	}
	defer w.Close()
	if recs := collect(t, w); len(recs) != 0 {
		t.Fatalf("empty file replayed %d records", len(recs))
	}
	// And the log must still accept appends into that segment.
	if err := w.Append(1, []byte("after-empty")); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, w); len(recs) != 1 || string(recs[0].Payload) != "after-empty" {
		t.Fatalf("append after empty open: got %v", recs)
	}
}

func TestWALTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []byte("intact-1"))
	w.Append(1, []byte("intact-2"))
	w.Close()

	// Simulate a crash mid-write: half a frame at the tail.
	path := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := frameRecord(1, []byte("torn-away"))
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer w2.Close()
	if w2.TruncatedBytes() == 0 {
		t.Fatal("torn tail not counted")
	}
	recs := collect(t, w2)
	if len(recs) != 2 || string(recs[1].Payload) != "intact-2" {
		t.Fatalf("after torn-tail recovery got %d records: %v", len(recs), recs)
	}
	// The torn bytes are physically gone: a new append must not
	// interleave with garbage.
	if err := w2.Append(1, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, w2); len(recs) != 3 {
		t.Fatalf("append after truncation: %d records, want 3", len(recs))
	}
}

func TestWALCorruptCRCMidSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("record-number-%d", i))
		payloads = append(payloads, p)
		w.Append(1, p)
	}
	w.Close()

	// Flip one payload byte in the middle of the segment.
	path := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(frameRecord(1, payloads[0]))
	off := 2*frame + headerSize + 3 // inside record 2's payload
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Single (= final) segment: damage reads as a torn tail, everything
	// from the bad record on is dropped.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("final-segment corruption must truncate, not fail: %v", err)
	}
	recs := collect(t, w2)
	w2.Close()
	if len(recs) != 2 {
		t.Fatalf("after mid-segment CRC flip got %d records, want 2", len(recs))
	}
	if !bytes.Equal(recs[1].Payload, payloads[1]) {
		t.Fatalf("surviving record mismatch: %q", recs[1].Payload)
	}
}

func TestWALCorruptNonFinalSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Append(1, []byte(fmt.Sprintf("spill-into-multiple-segments-%d", i)))
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("need multiple segments, got %d", w.SegmentCount())
	}
	w.Close()

	// Damage the FIRST segment: later segments prove these records were
	// once durable, so this is corruption, not a torn tail.
	path := filepath.Join(dir, "wal-00000001.seg")
	data, _ := os.ReadFile(path)
	data[headerSize+2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	if _, err := Open(dir, Options{SegmentBytes: 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-final corruption: got %v, want ErrCorrupt", err)
	}
}

func TestWALRotationAtExactBoundary(t *testing.T) {
	payload := []byte("0123456789") // frame = 8 + 1 + 10 = 19 bytes
	frame := len(frameRecord(1, payload))
	dir := t.TempDir()
	// Two frames fill a segment exactly.
	w, err := Open(dir, Options{SegmentBytes: int64(2 * frame)})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, payload)
	w.Append(1, payload) // lands exactly at the boundary: no rotation yet
	if got := w.SegmentCount(); got != 1 {
		t.Fatalf("exactly-full segment rotated early: %d segments", got)
	}
	w.Append(1, payload) // first byte past the boundary: rotates
	if got := w.SegmentCount(); got != 2 {
		t.Fatalf("append past exactly-full boundary: %d segments, want 2", got)
	}
	// An oversized record still gets written, alone in its own segment.
	big := bytes.Repeat([]byte("x"), 3*frame)
	if err := w.Append(2, big); err != nil {
		t.Fatalf("oversized record refused: %v", err)
	}
	w.Close()

	w2, err := Open(dir, Options{SegmentBytes: int64(2 * frame)})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records across rotated segments, want 4", len(recs))
	}
	if !bytes.Equal(recs[3].Payload, big) {
		t.Fatal("oversized record did not survive rotation")
	}
}

func TestWALCompactReplacesHistory(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.Append(1, []byte(fmt.Sprintf("will-be-compacted-away-%d", i)))
	}
	if err := w.Compact([]byte("the-snapshot")); err != nil {
		t.Fatal(err)
	}
	if got := w.SegmentCount(); got != 1 {
		t.Fatalf("post-compact segments = %d, want 1", got)
	}
	w.Append(1, []byte("after-snapshot"))
	w.Close()

	w2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 2 {
		t.Fatalf("post-compact replay: %d records, want snapshot+1", len(recs))
	}
	if recs[0].Type != RecSnapshot || string(recs[0].Payload) != "the-snapshot" {
		t.Fatalf("first record after compact = (%d, %q), want snapshot", recs[0].Type, recs[0].Payload)
	}
	if string(recs[1].Payload) != "after-snapshot" {
		t.Fatalf("append after compact lost: %q", recs[1].Payload)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Append(1, []byte("x")); err == nil {
		t.Fatal("append after close must fail")
	}
}
