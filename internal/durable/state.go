package durable

import (
	"fmt"
	"path/filepath"
	"time"

	"legosdn/internal/checkpoint"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
)

// State is a controller's durable footprint: the checkpoint WAL and the
// NetLog transaction journal, side by side under one state directory.
//
//	<dir>/checkpoints/wal-*.seg
//	<dir>/netlog/wal-*.seg
//
// Opening a State is the recovery entry point — it replays both logs,
// leaving the checkpoint store restored and the interrupted transactions
// (if any) queued for ReplayOrphans.
type State struct {
	Checkpoints *CheckpointLog
	Journal     *NetLogJournal

	dir string

	recoveredTxns metrics.Counter
	recoveredMods metrics.Counter
}

// OpenState opens (or creates) the durable state under dir. maxPerApp
// bounds each app's restored checkpoint history (<=0 selects the store
// default).
func OpenState(dir string, maxPerApp int, opts Options) (*State, error) {
	cl, err := OpenCheckpointLog(filepath.Join(dir, "checkpoints"), maxPerApp, opts)
	if err != nil {
		return nil, fmt.Errorf("durable: opening checkpoint log: %w", err)
	}
	j, err := OpenNetLogJournal(filepath.Join(dir, "netlog"), opts)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("durable: opening netlog journal: %w", err)
	}
	return &State{Checkpoints: cl, Journal: j, dir: dir}, nil
}

// Dir returns the state directory.
func (s *State) Dir() string { return s.dir }

// Store returns the restored checkpoint store; Puts into it are
// journaled from here on.
func (s *State) Store() *checkpoint.Store { return s.Checkpoints.Store() }

// Instrument registers both WALs' instruments plus the recovery
// counters.
func (s *State) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.Checkpoints.WAL().Instrument(reg, "checkpoints")
	s.Journal.WAL().Instrument(reg, "netlog")
	reg.RegisterCounter("legosdn_durable_recovered_txns_total",
		"interrupted transactions rolled back at startup", &s.recoveredTxns)
	reg.RegisterCounter("legosdn_durable_recovered_mods_total",
		"inverse flow mods replayed during startup recovery", &s.recoveredMods)
}

// RecoveredTxns reports interrupted transactions rolled back so far;
// RecoveredMods the inverse messages that replay sent.
func (s *State) RecoveredTxns() uint64 { return s.recoveredTxns.Load() }
func (s *State) RecoveredMods() uint64 { return s.recoveredMods.Load() }

// ReplayOrphans undoes every interrupted transaction the journal found
// at open: for each orphan (newest first) it sends the journaled
// inverses in reverse op order, waits for a barrier on every touched
// switch, and only then appends the abort record (Resolve) — so a crash
// during recovery itself re-replays on the next start. The inverses are
// absolute restores and strict deletes, so double replay converges.
//
// Restored entries get their hard timeout re-derived from the journaled
// install time via netlog.RemainingHardTimeout, honoring §3.2's
// remaining-budget rule across the restart.
//
// Call after the controller's switches are attached and before new
// events flow. Returns the transaction and message counts replayed.
func (s *State) ReplayOrphans(sender netlog.Sender, now time.Time) (txns, mods int, err error) {
	for _, t := range s.Journal.Orphans() {
		dpids := make(map[uint64]bool)
		for i := len(t.Ops) - 1; i >= 0; i-- {
			op := t.Ops[i]
			for _, inv := range op.Inverses {
				mod := *inv.Mod // shallow copy: timeout patch must not alias the journal
				if inv.Restore {
					mod.HardTimeout = netlog.RemainingHardTimeout(mod.HardTimeout, inv.Installed, now)
				}
				if err := sender.SendMessage(op.DPID, &mod); err != nil {
					return txns, mods, fmt.Errorf("durable: replaying inverse for txn %d: %w", t.ID, err)
				}
				mods++
				s.recoveredMods.Inc()
			}
			dpids[op.DPID] = true
		}
		for d := range dpids {
			if err := sender.Barrier(d); err != nil {
				return txns, mods, fmt.Errorf("durable: barrier after txn %d replay: %w", t.ID, err)
			}
		}
		if err := s.Journal.Resolve(t.ID); err != nil {
			return txns, mods, err
		}
		txns++
		s.recoveredTxns.Inc()
	}
	return txns, mods, nil
}

// Close syncs and closes both logs.
func (s *State) Close() error {
	err1 := s.Checkpoints.Close()
	err2 := s.Journal.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
