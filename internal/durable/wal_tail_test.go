package durable

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

// readAll drains a SegmentReader into copies (Next reuses its buffer).
func readAll(t *testing.T, r *SegmentReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, Record{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)})
	}
}

// TestTailLiveAppends: records appended after a reader reaches EOF are
// visible on the next poll — the io.EOF is retryable, not terminal.
func TestTailLiveAppends(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	ts := w.TailState()
	if ts.Gen != 0 || ts.StartPos != 0 || len(ts.Segments) != 1 {
		t.Fatalf("unexpected tail state %+v", ts)
	}
	r, err := w.OpenSegmentReader(ts.Segments[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := readAll(t, r); len(got) != 1 || string(got[0].Payload) != "a" {
		t.Fatalf("first poll: %v", got)
	}
	if err := w.Append(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != 1 || got[0].Type != 2 || string(got[0].Payload) != "b" {
		t.Fatalf("second poll after live append: %v", got)
	}
	if w.EndPos() != 2 {
		t.Fatalf("EndPos = %d, want 2", w.EndPos())
	}
}

// TestTailTornFrame: a partial frame at the tail reads as io.EOF
// without advancing; completing the frame makes the record visible.
func TestTailTornFrame(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(1, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	ts := w.TailState()
	r, err := w.OpenSegmentReader(ts.Segments[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := readAll(t, r); len(got) != 1 {
		t.Fatalf("want 1 intact record, got %v", got)
	}

	// Hand-write half a frame straight into the segment file, as an
	// in-flight append would appear to a concurrent reader.
	frame := frameRecord(7, []byte("torn-then-complete"))
	w.mu.Lock()
	if _, err := w.cur.Write(frame[:len(frame)/2]); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("torn frame must read as io.EOF, got %v", err)
		}
	}
	w.mu.Lock()
	if _, err := w.cur.Write(frame[len(frame)/2:]); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("completed frame must now parse: %v", err)
	}
	if rec.Type != 7 || string(rec.Payload) != "torn-then-complete" {
		t.Fatalf("got %d %q", rec.Type, rec.Payload)
	}
}

// TestTailAcrossRotation: a tailer follows rotation by reading the old
// segment to EOF and opening the next listed one; positions stay
// contiguous.
func TestTailAcrossRotation(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append(1, []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := w.TailState()
	if len(ts.Segments) < 2 {
		t.Fatalf("expected rotation, segments=%v", ts.Segments)
	}
	var got []Record
	for _, seq := range ts.Segments {
		r, err := w.OpenSegmentReader(seq)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, readAll(t, r)...)
		r.Close()
	}
	if len(got) != n {
		t.Fatalf("read %d records across segments, want %d", len(got), n)
	}
	for i, rec := range got {
		if want := fmt.Sprintf("rec-%02d", i); string(rec.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, rec.Payload, want)
		}
	}
	if w.EndPos() != n || ts.StartPos != 0 {
		t.Fatalf("EndPos=%d StartPos=%d", w.EndPos(), ts.StartPos)
	}
}

// TestTailCompaction: Compact bumps the generation, moves StartPos past
// the discarded history, and invalidates old segment handles —
// OpenSegmentReader on a compacted-away seq returns ErrSegmentGone,
// while the new log starts with the snapshot at StartPos+1.
func TestTailCompaction(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := w.TailState()
	if err := w.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	after := w.TailState()
	if after.Gen != before.Gen+1 {
		t.Fatalf("gen %d -> %d, want +1", before.Gen, after.Gen)
	}
	if after.StartPos != 5 {
		t.Fatalf("StartPos = %d, want 5 (history discarded)", after.StartPos)
	}
	if w.EndPos() != 6 {
		t.Fatalf("EndPos = %d, want 6 (snapshot at StartPos+1)", w.EndPos())
	}
	if _, err := w.OpenSegmentReader(before.Segments[0]); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("compacted segment must be ErrSegmentGone, got %v", err)
	}
	r, err := w.OpenSegmentReader(after.Segments[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := readAll(t, r)
	if len(got) != 1 || got[0].Type != RecSnapshot || string(got[0].Payload) != "snap" {
		t.Fatalf("new log must start with the snapshot, got %v", got)
	}
}

// TestTailPositionsAfterReopen: positions restart counting from the
// recovered records, so the invariant "first record of the oldest
// segment is at StartPos+1" survives a process restart.
func TestTailPositionsAfterReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	ts := w2.TailState()
	if ts.Gen != 0 || ts.StartPos != 0 || w2.EndPos() != 3 {
		t.Fatalf("reopen: gen=%d start=%d end=%d", ts.Gen, ts.StartPos, w2.EndPos())
	}
}
