package durable

import (
	"fmt"
	"sync"
	"time"

	"legosdn/internal/checkpoint"
)

// Checkpoint record types. recCheckpoint carries a full state image;
// recCheckpointDelta carries a byte-range patch against the previous
// record's state (checkpoint.EncodeDelta format) plus the base's seq;
// recDrop erases an app's history, so dropped checkpoints cannot
// resurrect from the log after a compaction + restart.
const (
	recCheckpoint      byte = 1
	recCheckpointDelta byte = 2
	recDrop            byte = 3
)

// compactAfterSegments is how many live segments a client WAL may
// accumulate before the next quiet moment triggers a snapshot+compact.
const compactAfterSegments = 3

// CheckpointLog is the checkpoint store's persistent backend: every
// Put is journaled to a WAL and Open replays the log so per-app
// checkpoint histories survive a controller crash or upgrade — the
// state the paper's §3.4 ten-second-upgrade path restores apps from.
//
// Persistence is asynchronous by default: the store's sink calls only
// enqueue (under the store's lock, which fixes the on-disk order) and
// a single worker goroutine drains the queue in batches, paying one
// fsync per burst and running compactions off the store's lock — so
// one app's fsync or a compaction no longer stalls every other app's
// checkpoint path. Close (and Flush) drain the queue, so a clean
// shutdown loses nothing; a crash can lose only the enqueued tail,
// which is the same window a crash-between-put-and-fsync always had.
// Options.SyncCheckpointSink restores the old fully-synchronous
// behavior (used as the overhead baseline in benchmarks).
//
// The log keeps its own bounded mirror of the histories — always full
// images, reconstructed from deltas as they are appended — so
// compaction can serialize a snapshot without re-entering the store.
type CheckpointLog struct {
	w        *WAL
	store    *checkpoint.Store
	syncMode bool

	// Queue state (async mode). Enqueues happen under the store's lock,
	// which serializes them; qmu only protects against the worker.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []sinkOp
	qclosed bool
	wg      sync.WaitGroup

	// mirror duplicates the store's bounded histories for snapshots.
	// Owned by the worker in async mode (replay happens before the
	// worker starts); serialized by the store's lock in sync mode.
	mirror    map[string][]checkpoint.Checkpoint
	maxPerApp int

	// restored counts checkpoints replayed from disk at open; skipped
	// counts records replay could not apply (e.g. a delta whose base
	// was lost) and dropped rather than failing recovery.
	restored int
	skipped  int

	// testCompactHook, when set, runs at the start of every compaction —
	// a seam for tests to hold a compaction open while asserting that
	// concurrent Puts are not blocked.
	testCompactHook func()
}

// sinkOp is one queued store event: a checkpoint append, a drop, or a
// flush barrier (flush != nil).
type sinkOp struct {
	cp    checkpoint.Checkpoint
	drop  bool
	app   string
	flush chan struct{}
}

// OpenCheckpointLog opens (or creates) the checkpoint WAL in dir,
// replays it into a fresh store bounded at maxPerApp (<=0 selects the
// store default of 64), and installs itself as the store's sink.
func OpenCheckpointLog(dir string, maxPerApp int, opts Options) (*CheckpointLog, error) {
	if maxPerApp <= 0 {
		maxPerApp = 64
	}
	w, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	l := &CheckpointLog{
		w:         w,
		store:     checkpoint.NewStore(maxPerApp),
		syncMode:  opts.SyncCheckpointSink,
		mirror:    make(map[string][]checkpoint.Checkpoint),
		maxPerApp: maxPerApp,
	}
	err = w.Replay(func(rec Record) error {
		switch rec.Type {
		case RecSnapshot:
			return l.replaySnapshot(rec.Payload)
		case recCheckpoint:
			return l.replayCheckpoint(rec.Payload)
		case recCheckpointDelta:
			return l.replayDelta(rec.Payload)
		case recDrop:
			return l.replayDrop(rec.Payload)
		default:
			return fmt.Errorf("durable: unknown checkpoint record type %d", rec.Type)
		}
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	l.store.SetSink(l)
	if !l.syncMode {
		l.qcond = sync.NewCond(&l.qmu)
		l.wg.Add(1)
		go l.worker()
	}
	return l, nil
}

// Store returns the restored store; every subsequent Put is journaled.
func (l *CheckpointLog) Store() *checkpoint.Store { return l.store }

// Restored reports how many checkpoints the open-time replay loaded;
// SkippedRecords how many records it had to drop as unapplyable.
func (l *CheckpointLog) Restored() int       { return l.restored }
func (l *CheckpointLog) SkippedRecords() int { return l.skipped }

// WAL exposes the underlying log for instrumentation.
func (l *CheckpointLog) WAL() *WAL { return l.w }

// Flush blocks until every sink event enqueued before the call is on
// disk — an explicit durability barrier for tests and benchmarks.
func (l *CheckpointLog) Flush() {
	if l.syncMode {
		return
	}
	ch := make(chan struct{})
	l.qmu.Lock()
	if l.qclosed {
		l.qmu.Unlock()
		return
	}
	l.queue = append(l.queue, sinkOp{flush: ch})
	l.qcond.Signal()
	l.qmu.Unlock()
	<-ch
}

// Close drains the queue, then syncs and closes the log. The store
// keeps working in memory.
func (l *CheckpointLog) Close() error {
	l.store.SetSink(nil)
	if !l.syncMode {
		l.qmu.Lock()
		if !l.qclosed {
			l.qclosed = true
			l.qcond.Broadcast()
		}
		l.qmu.Unlock()
		l.wg.Wait()
	}
	return l.w.Close()
}

// AppendCheckpoint implements checkpoint.Sink. Called under the
// store's lock — which fixes the on-disk order — but in async mode it
// only enqueues; the worker does the writing and fsyncing.
func (l *CheckpointLog) AppendCheckpoint(cp checkpoint.Checkpoint) error {
	// The state slice crosses into the worker goroutine; detach it from
	// anything the caller may hold.
	cp.State = append([]byte(nil), cp.State...)
	op := sinkOp{cp: cp}
	if l.syncMode {
		return l.applyOne(op)
	}
	return l.enqueue(op)
}

// AppendDrop implements checkpoint.Sink: journal the drop and purge
// the mirror, so compaction cannot resurrect the history.
func (l *CheckpointLog) AppendDrop(app string) error {
	op := sinkOp{drop: true, app: app}
	if l.syncMode {
		return l.applyOne(op)
	}
	return l.enqueue(op)
}

func (l *CheckpointLog) enqueue(op sinkOp) error {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if l.qclosed {
		return fmt.Errorf("durable: checkpoint log closed")
	}
	l.queue = append(l.queue, op)
	l.qcond.Signal()
	return nil
}

// worker drains the queue until Close, batching every op that arrived
// while the previous batch was on disk.
func (l *CheckpointLog) worker() {
	defer l.wg.Done()
	for {
		l.qmu.Lock()
		for len(l.queue) == 0 && !l.qclosed {
			l.qcond.Wait()
		}
		ops := l.queue
		l.queue = nil
		closed := l.qclosed
		l.qmu.Unlock()
		if len(ops) == 0 && closed {
			return
		}
		l.applyOps(ops)
		if closed {
			l.qmu.Lock()
			empty := len(l.queue) == 0
			l.qmu.Unlock()
			if empty {
				return
			}
		}
	}
}

// applyOne is the sync-mode path: one op, written and fsynced before
// the store's Put returns; errors go back to the store.
func (l *CheckpointLog) applyOne(op sinkOp) error {
	rec := encodeOp(op)
	if err := l.w.Append(rec.Type, rec.Payload); err != nil {
		return err
	}
	l.applyMirror(op)
	if l.w.SegmentCount() > compactAfterSegments {
		return l.compact()
	}
	return nil
}

// applyOps writes a drained batch. Records are flushed in sub-batches
// bounded by half a segment so the compaction check between sub-
// batches keeps the invariant that the log never exceeds
// compactAfterSegments+1 live segments — the same bound the
// synchronous path maintains.
func (l *CheckpointLog) applyOps(ops []sinkOp) {
	limit := l.w.opts.SegmentBytes / 2
	var pending []sinkOp
	var recs []Record
	var size int64

	flush := func() {
		if len(recs) > 0 {
			if err := l.w.AppendBatch(recs); err != nil {
				l.store.NoteSinkError(err)
			} else {
				for _, op := range pending {
					l.applyMirror(op)
				}
			}
			pending, recs, size = nil, nil, 0
		}
		if l.w.SegmentCount() > compactAfterSegments {
			if err := l.compact(); err != nil {
				l.store.NoteSinkError(err)
			}
		}
	}

	for _, op := range ops {
		if op.flush != nil {
			flush()
			close(op.flush)
			continue
		}
		rec := encodeOp(op)
		frameLen := int64(headerSize + len(rec.Payload))
		if size > 0 && size+frameLen > limit {
			flush()
		}
		pending = append(pending, op)
		recs = append(recs, rec)
		size += frameLen
	}
	flush()
}

func encodeOp(op sinkOp) Record {
	if op.drop {
		return Record{Type: recDrop, Payload: appendString(nil, op.app)}
	}
	cp := op.cp
	payload := appendString(nil, cp.App)
	payload = appendU64(payload, cp.Seq)
	if cp.Delta {
		payload = appendU64(payload, cp.BaseSeq)
		payload = appendI64(payload, cp.Taken.UnixNano())
		payload = appendBytes(payload, cp.State)
		return Record{Type: recCheckpointDelta, Payload: payload}
	}
	payload = appendI64(payload, cp.Taken.UnixNano())
	payload = appendBytes(payload, cp.State)
	return Record{Type: recCheckpoint, Payload: payload}
}

// applyMirror folds one durably-written op into the mirror. Delta
// checkpoints are reconstructed to full images here, so the mirror —
// and therefore every compaction snapshot — is chain-free.
func (l *CheckpointLog) applyMirror(op sinkOp) {
	if op.drop {
		delete(l.mirror, op.app)
		return
	}
	cp := op.cp
	if cp.Delta {
		h := l.mirror[cp.App]
		if len(h) == 0 || h[len(h)-1].Seq != cp.BaseSeq {
			l.store.NoteSinkError(fmt.Errorf("durable: delta checkpoint %s/%d has no base %d in mirror", cp.App, cp.Seq, cp.BaseSeq))
			return
		}
		full, err := checkpoint.ApplyDelta(h[len(h)-1].State, cp.State)
		if err != nil {
			l.store.NoteSinkError(fmt.Errorf("durable: reconstructing delta checkpoint %s/%d: %w", cp.App, cp.Seq, err))
			return
		}
		cp.State, cp.Delta, cp.BaseSeq = full, false, 0
	} else {
		cp.State = append([]byte(nil), cp.State...)
	}
	h := append(l.mirror[cp.App], cp)
	if len(h) > l.maxPerApp {
		h = h[len(h)-l.maxPerApp:]
	}
	l.mirror[cp.App] = h
}

// compact replaces the journal with a snapshot of the bounded mirror:
// the history the store itself retains, which is all recovery can ever
// restore. Snapshots hold only full images, so replaying one never
// depends on delta chains.
func (l *CheckpointLog) compact() error {
	if l.testCompactHook != nil {
		l.testCompactHook()
	}
	apps := make([]string, 0, len(l.mirror))
	for app := range l.mirror {
		apps = append(apps, app)
	}
	// Deterministic snapshot layout for same-seed reproducibility.
	for i := 1; i < len(apps); i++ {
		for j := i; j > 0 && apps[j] < apps[j-1]; j-- {
			apps[j], apps[j-1] = apps[j-1], apps[j]
		}
	}
	snap := appendU32(nil, uint32(len(apps)))
	for _, app := range apps {
		snap = appendString(snap, app)
		h := l.mirror[app]
		snap = appendU32(snap, uint32(len(h)))
		for _, cp := range h {
			snap = appendU64(snap, cp.Seq)
			snap = appendI64(snap, cp.Taken.UnixNano())
			snap = appendBytes(snap, cp.State)
		}
	}
	return l.w.Compact(snap)
}

func (l *CheckpointLog) replaySnapshot(payload []byte) error {
	r := &reader{b: payload}
	napps, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < napps; i++ {
		app, err := r.str()
		if err != nil {
			return err
		}
		ncps, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < ncps; j++ {
			if err := l.restoreOne(app, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *CheckpointLog) replayCheckpoint(payload []byte) error {
	r := &reader{b: payload}
	app, err := r.str()
	if err != nil {
		return err
	}
	return l.restoreOne(app, r)
}

// replayDelta reconstructs a delta record against the mirror's newest
// entry for the app. A delta whose base is missing (history damage) is
// skipped and counted rather than failing the whole recovery: every
// later full image resynchronizes the chain.
func (l *CheckpointLog) replayDelta(payload []byte) error {
	r := &reader{b: payload}
	app, err := r.str()
	if err != nil {
		return err
	}
	seq, err := r.u64()
	if err != nil {
		return err
	}
	baseSeq, err := r.u64()
	if err != nil {
		return err
	}
	takenNano, err := r.i64()
	if err != nil {
		return err
	}
	delta, err := r.bytes()
	if err != nil {
		return err
	}
	h := l.mirror[app]
	if len(h) == 0 || h[len(h)-1].Seq != baseSeq {
		l.skipped++
		return nil
	}
	state, err := checkpoint.ApplyDelta(h[len(h)-1].State, delta)
	if err != nil {
		l.skipped++
		return nil
	}
	taken := time.Unix(0, takenNano)
	l.store.RestorePut(app, seq, state, taken)
	l.applyMirror(sinkOp{cp: checkpoint.Checkpoint{App: app, Seq: seq, State: state, Taken: taken}})
	l.restored++
	return nil
}

func (l *CheckpointLog) replayDrop(payload []byte) error {
	r := &reader{b: payload}
	app, err := r.str()
	if err != nil {
		return err
	}
	l.store.Drop(app)
	delete(l.mirror, app)
	return nil
}

func (l *CheckpointLog) restoreOne(app string, r *reader) error {
	seq, err := r.u64()
	if err != nil {
		return err
	}
	takenNano, err := r.i64()
	if err != nil {
		return err
	}
	state, err := r.bytes()
	if err != nil {
		return err
	}
	taken := time.Unix(0, takenNano)
	l.store.RestorePut(app, seq, state, taken)
	l.applyMirror(sinkOp{cp: checkpoint.Checkpoint{App: app, Seq: seq, State: state, Taken: taken}})
	l.restored++
	return nil
}
