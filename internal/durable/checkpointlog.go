package durable

import (
	"fmt"
	"time"

	"legosdn/internal/checkpoint"
)

// recCheckpoint is one checkpoint.Store Put: app, seq, taken, state.
const recCheckpoint byte = 1

// compactAfterSegments is how many live segments a client WAL may
// accumulate before the next quiet moment triggers a snapshot+compact.
const compactAfterSegments = 3

// CheckpointLog is the checkpoint store's persistent backend: every
// Put is appended (and fsynced) to a WAL, and Open replays the log so
// per-app checkpoint histories survive a controller crash or upgrade —
// the state the paper's §3.4 ten-second-upgrade path restores apps
// from.
//
// The log keeps its own bounded mirror of the histories so compaction
// can serialize a snapshot without re-entering the store's lock (the
// sink is invoked synchronously under it).
type CheckpointLog struct {
	w     *WAL
	store *checkpoint.Store

	// mirror duplicates the store's bounded histories for snapshots;
	// guarded by the WAL's append serialization via its own methods —
	// all writes arrive through AppendCheckpoint, which the store
	// serializes under its lock.
	mirror    map[string][]checkpoint.Checkpoint
	maxPerApp int

	// restored counts checkpoints replayed from disk at open.
	restored int
}

// OpenCheckpointLog opens (or creates) the checkpoint WAL in dir,
// replays it into a fresh store bounded at maxPerApp (<=0 selects the
// store default of 64), and installs itself as the store's sink.
func OpenCheckpointLog(dir string, maxPerApp int, opts Options) (*CheckpointLog, error) {
	if maxPerApp <= 0 {
		maxPerApp = 64
	}
	w, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	l := &CheckpointLog{
		w:         w,
		store:     checkpoint.NewStore(maxPerApp),
		mirror:    make(map[string][]checkpoint.Checkpoint),
		maxPerApp: maxPerApp,
	}
	err = w.Replay(func(rec Record) error {
		switch rec.Type {
		case RecSnapshot:
			return l.replaySnapshot(rec.Payload)
		case recCheckpoint:
			return l.replayCheckpoint(rec.Payload)
		default:
			return fmt.Errorf("durable: unknown checkpoint record type %d", rec.Type)
		}
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	l.store.SetSink(l)
	return l, nil
}

// Store returns the restored store; every subsequent Put is journaled.
func (l *CheckpointLog) Store() *checkpoint.Store { return l.store }

// Restored reports how many checkpoints the open-time replay loaded.
func (l *CheckpointLog) Restored() int { return l.restored }

// WAL exposes the underlying log for instrumentation.
func (l *CheckpointLog) WAL() *WAL { return l.w }

// Close syncs and closes the log. The store keeps working in memory.
func (l *CheckpointLog) Close() error {
	l.store.SetSink(nil)
	return l.w.Close()
}

// AppendCheckpoint implements checkpoint.Sink. Called synchronously
// under the store's lock, so on-disk order matches history order.
func (l *CheckpointLog) AppendCheckpoint(cp checkpoint.Checkpoint) error {
	payload := appendString(nil, cp.App)
	payload = appendU64(payload, cp.Seq)
	payload = appendI64(payload, cp.Taken.UnixNano())
	payload = appendBytes(payload, cp.State)
	if err := l.w.Append(recCheckpoint, payload); err != nil {
		return err
	}
	l.noteMirror(cp)
	if l.w.SegmentCount() > compactAfterSegments {
		return l.compact()
	}
	return nil
}

func (l *CheckpointLog) noteMirror(cp checkpoint.Checkpoint) {
	cp.State = append([]byte(nil), cp.State...)
	h := append(l.mirror[cp.App], cp)
	if len(h) > l.maxPerApp {
		h = h[len(h)-l.maxPerApp:]
	}
	l.mirror[cp.App] = h
}

// compact replaces the journal with a snapshot of the bounded mirror:
// the history the store itself retains, which is all recovery can ever
// restore.
func (l *CheckpointLog) compact() error {
	apps := make([]string, 0, len(l.mirror))
	for app := range l.mirror {
		apps = append(apps, app)
	}
	// Deterministic snapshot layout for same-seed reproducibility.
	for i := 1; i < len(apps); i++ {
		for j := i; j > 0 && apps[j] < apps[j-1]; j-- {
			apps[j], apps[j-1] = apps[j-1], apps[j]
		}
	}
	snap := appendU32(nil, uint32(len(apps)))
	for _, app := range apps {
		snap = appendString(snap, app)
		h := l.mirror[app]
		snap = appendU32(snap, uint32(len(h)))
		for _, cp := range h {
			snap = appendU64(snap, cp.Seq)
			snap = appendI64(snap, cp.Taken.UnixNano())
			snap = appendBytes(snap, cp.State)
		}
	}
	return l.w.Compact(snap)
}

func (l *CheckpointLog) replaySnapshot(payload []byte) error {
	r := &reader{b: payload}
	napps, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < napps; i++ {
		app, err := r.str()
		if err != nil {
			return err
		}
		ncps, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < ncps; j++ {
			if err := l.restoreOne(app, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *CheckpointLog) replayCheckpoint(payload []byte) error {
	r := &reader{b: payload}
	app, err := r.str()
	if err != nil {
		return err
	}
	return l.restoreOne(app, r)
}

func (l *CheckpointLog) restoreOne(app string, r *reader) error {
	seq, err := r.u64()
	if err != nil {
		return err
	}
	takenNano, err := r.i64()
	if err != nil {
		return err
	}
	state, err := r.bytes()
	if err != nil {
		return err
	}
	taken := time.Unix(0, takenNano)
	l.store.RestorePut(app, seq, state, taken)
	l.noteMirror(checkpoint.Checkpoint{App: app, Seq: seq, State: state, Taken: taken})
	l.restored++
	return nil
}
